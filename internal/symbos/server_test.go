package symbos

import (
	"testing"

	"symfail/internal/sim"
)

func TestSendReceiveRoundTrip(t *testing.T) {
	k, proc := newTestKernel(t)
	srv := NewServer(k, "EchoSrv", true, func(m *Message) {
		m.Complete(len(m.Payload))
	})
	sess := srv.Connect(proc.Main())
	var code int
	k.Exec(proc.Main(), "call", func() {
		code = sess.SendReceive(1, "hello")
	})
	if code != 5 {
		t.Errorf("code = %d, want 5", code)
	}
	if srv.Served() != 1 {
		t.Errorf("Served = %d", srv.Served())
	}
	if !sess.Connected() {
		t.Error("session should be connected")
	}
	if srv.Name() != "EchoSrv" || !srv.Process().System() {
		t.Error("server identity wrong")
	}
}

func TestServerPanicDisconnectsClient(t *testing.T) {
	k, proc := newTestKernel(t)
	var panics []*Panic
	k.SubscribeRDebug(func(p *Panic) { panics = append(panics, p) })
	srv := NewServer(k, "BadSrv", true, func(m *Message) {
		NullPtr(k).Deref()
	})
	sess := srv.Connect(proc.Main())
	var code int
	k.Exec(proc.Main(), "call", func() {
		code = sess.SendReceive(1, "x")
	})
	if code != KErrDisconnected {
		t.Errorf("client code = %s, want KErrDisconnected", ErrName(code))
	}
	if len(panics) != 1 || panics[0].Process != "BadSrv" || !panics[0].System {
		t.Errorf("panics = %v", panics)
	}
	if proc.Alive() != true {
		t.Error("client should survive a server panic")
	}
}

func TestSendReceiveToDeadServer(t *testing.T) {
	k, proc := newTestKernel(t)
	srv := NewServer(k, "Gone", false, func(m *Message) { m.Complete(KErrNone) })
	sess := srv.Connect(proc.Main())
	k.TerminateProcess(srv.Process())
	var code int
	k.Exec(proc.Main(), "call", func() { code = sess.SendReceive(1, "") })
	if code != KErrDisconnected {
		t.Errorf("code = %s", ErrName(code))
	}
	if sess.Connected() {
		t.Error("session to dead server reports connected")
	}
}

func TestSendAsyncCompletesActiveObject(t *testing.T) {
	k, proc := newTestKernel(t)
	srv := NewServer(k, "Async", false, func(m *Message) { m.Complete(42) })
	sess := srv.Connect(proc.Main())
	var got int
	ao := proc.Main().NewActiveObject("reply", 0, func(code int) { got = code })
	k.Exec(proc.Main(), "call", func() { sess.SendAsync(7, "p", ao) })
	if err := k.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if got != 42 {
		t.Errorf("async code = %d", got)
	}
}

func TestSendAsyncServerPanicFailsRequest(t *testing.T) {
	k, proc := newTestKernel(t)
	srv := NewServer(k, "AsyncBad", false, func(m *Message) {
		NullPtr(k).Deref()
	})
	sess := srv.Connect(proc.Main())
	var got = 1
	ao := proc.Main().NewActiveObject("reply", 0, func(code int) { got = code })
	k.Exec(proc.Main(), "call", func() { sess.SendAsync(7, "p", ao) })
	if err := k.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if got != KErrDisconnected {
		t.Errorf("async code = %s", ErrName(got))
	}
}

func TestNullMessagePtrPanics(t *testing.T) {
	k, proc := newTestKernel(t)
	var panics []string
	k.SubscribeRDebug(func(p *Panic) { panics = append(panics, p.Key()) })
	srv := NewServer(k, "NullPtrSrv", false, func(m *Message) {
		m.NullifyPtr()
		m.Complete(KErrNone)
	})
	sess := srv.Connect(proc.Main())
	k.Exec(proc.Main(), "call", func() { sess.SendReceive(1, "") })
	if len(panics) != 1 || panics[0] != "USER 70" {
		t.Errorf("panics = %v, want [USER 70]", panics)
	}
}

func TestDoubleCompletePanics(t *testing.T) {
	k, proc := newTestKernel(t)
	var panics []string
	k.SubscribeRDebug(func(p *Panic) { panics = append(panics, p.Key()) })
	srv := NewServer(k, "DoubleSrv", false, func(m *Message) {
		m.Complete(KErrNone)
		m.Complete(KErrNone)
	})
	sess := srv.Connect(proc.Main())
	k.Exec(proc.Main(), "call", func() { sess.SendReceive(1, "") })
	if len(panics) != 1 || panics[0] != "USER 70" {
		t.Errorf("panics = %v", panics)
	}
}

func TestSessionCloseReleasesHandle(t *testing.T) {
	k, proc := newTestKernel(t)
	srv := NewServer(k, "S", false, func(m *Message) { m.Complete(KErrNone) })
	sess := srv.Connect(proc.Main())
	before := proc.HandleCount()
	k.Exec(proc.Main(), "close", func() { sess.Close() })
	if proc.HandleCount() != before-1 {
		t.Errorf("handle count %d -> %d", before, proc.HandleCount())
	}
	// Closing twice is a no-op, not a panic.
	if p := k.Exec(proc.Main(), "reclose", func() { sess.Close() }); p != nil {
		t.Errorf("second Close panicked: %v", p)
	}
}

func TestSendReceiveOnClosedSessionPanics(t *testing.T) {
	k, proc := newTestKernel(t)
	srv := NewServer(k, "S2", false, func(m *Message) { m.Complete(KErrNone) })
	sess := srv.Connect(proc.Main())
	k.Exec(proc.Main(), "close", func() { sess.Close() })
	p := k.Exec(proc.Main(), "use-after-close", func() { sess.SendReceive(1, "") })
	if p == nil || p.Key() != "KERN-EXEC 0" {
		t.Fatalf("panic = %v, want KERN-EXEC 0", p)
	}
}

func TestCorruptSessionHandleRaisesKernSvr(t *testing.T) {
	k, proc := newTestKernel(t)
	srv := NewServer(k, "S3", false, func(m *Message) { m.Complete(KErrNone) })
	sess := srv.Connect(proc.Main())
	sess.CorruptSessionHandle()
	p := k.Exec(proc.Main(), "bad-close", func() { sess.Close() })
	if p == nil || p.Key() != "KERN-SVR 0" {
		t.Fatalf("panic = %v, want KERN-SVR 0", p)
	}
}

func TestAdoptServer(t *testing.T) {
	k, proc := newTestKernel(t)
	app := k.StartProcess("AppWithService", false)
	srv := AdoptServer(app, func(m *Message) { m.Complete(9) })
	sess := srv.Connect(proc.Main())
	var code int
	k.Exec(proc.Main(), "call", func() { code = sess.SendReceive(0, "") })
	if code != 9 {
		t.Errorf("code = %d", code)
	}
}

func TestObjectIndexLifecycle(t *testing.T) {
	k, proc := newTestKernel(t)
	h := proc.OpenObject("mutex", "m1")
	k.Exec(proc.Main(), "find", func() {
		o := proc.FindObject(h)
		if o.Name() != "m1" || o.Kind() != "mutex" || o.Refs() != 1 || !o.Open() {
			t.Errorf("object = %+v", o)
		}
	})
	dup := Handle(0)
	k.Exec(proc.Main(), "dup", func() { dup = proc.DuplicateHandle(h) })
	k.Exec(proc.Main(), "close1", func() { proc.CloseHandle(h) })
	k.Exec(proc.Main(), "stillopen", func() {
		if o := proc.FindObject(dup); !o.Open() {
			t.Error("object closed while a duplicate handle remains")
		}
	})
	k.Exec(proc.Main(), "close2", func() { proc.CloseHandle(dup) })
	p := k.Exec(proc.Main(), "gone", func() { proc.FindObject(dup) })
	if p == nil || p.Key() != "KERN-EXEC 0" {
		t.Fatalf("panic = %v, want KERN-EXEC 0", p)
	}
}

func TestFindCorruptHandleRaisesKernExec0(t *testing.T) {
	k, proc := newTestKernel(t)
	bad := proc.CorruptHandle()
	p := k.Exec(proc.Main(), "find", func() { proc.FindObject(bad) })
	if p == nil || p.Key() != "KERN-EXEC 0" {
		t.Fatalf("panic = %v", p)
	}
}

func TestCloseCorruptHandleRaisesKernSvr0(t *testing.T) {
	k, proc := newTestKernel(t)
	bad := proc.CorruptHandle()
	p := k.Exec(proc.Main(), "close", func() { proc.CloseHandle(bad) })
	if p == nil || p.Key() != "KERN-SVR 0" {
		t.Fatalf("panic = %v", p)
	}
}

func TestCObjectLifecycle(t *testing.T) {
	k, proc := newTestKernel(t)
	o := NewCObject(k, "conn")
	o.AddRef()
	if o.Refs() != 2 {
		t.Errorf("Refs = %d", o.Refs())
	}
	o.Release()
	o.Release()
	if !o.Dead() {
		t.Error("object should be dead after releasing all refs")
	}
	// Deleting with refs remaining panics E32USER-CBase 33.
	o2 := NewCObject(k, "leaky")
	o2.AddRef()
	p := k.Exec(proc.Main(), "del", func() { o2.Delete() })
	if p == nil || p.Key() != "E32USER-CBase 33" {
		t.Fatalf("panic = %v, want E32USER-CBase 33", p)
	}
	// Deleting the sole reference is fine.
	o3 := NewCObject(k, "ok")
	if p := k.Exec(proc.Main(), "del-ok", func() { o3.Delete() }); p != nil {
		t.Fatalf("clean delete panicked: %v", p)
	}
	if !o3.Dead() {
		t.Error("o3 should be dead")
	}
	if o3.Name() != "ok" {
		t.Errorf("Name = %q", o3.Name())
	}
}

func TestControlsPanics(t *testing.T) {
	k, proc := newTestKernel(t)

	// Healthy list box usage.
	if p := k.Exec(proc.Main(), "lb", func() {
		lb := NewListBox(k)
		lb.AddItem("a")
		lb.AddItem("b")
		lb.SetCurrentItem(1)
		lb.Draw()
		if lb.Count() != 2 || lb.CurrentItem() != 1 {
			t.Error("list box state wrong")
		}
	}); p != nil {
		t.Fatalf("healthy listbox panicked: %v", p)
	}

	expectPanic(t, k, proc, CatEikonListbox, TypeListboxInvalidIndex, func() {
		lb := NewListBox(k)
		lb.AddItem("only")
		lb.SetCurrentItem(3)
	})
	expectPanic(t, k, proc, CatEikonListbox, TypeListboxNoView, func() {
		lb := NewListBox(k)
		lb.DetachView()
		lb.Draw()
	})
	expectPanic(t, k, proc, CatEikCoCtl, TypeEdwinCorrupt, func() {
		e := NewEdwin(k, 32)
		e.BeginInlineEdit()
		e.CorruptInlineState()
		e.CommitInlineEdit("hi")
	})
	if p := k.Exec(proc.Main(), "edwin-ok", func() {
		e := NewEdwin(k, 32)
		e.BeginInlineEdit()
		e.CommitInlineEdit("hi")
		if e.Text().String() != "hi" {
			t.Errorf("edwin text = %q", e.Text().String())
		}
		e.CommitInlineEdit("ignored") // no transaction open: no-op
		if e.Text().String() != "hi" {
			t.Error("commit without transaction mutated text")
		}
	}); p != nil {
		t.Fatalf("healthy edwin panicked: %v", p)
	}
	expectPanic(t, k, proc, CatMMFAudioClient, TypeVolumeOutOfRange, func() {
		NewAudioClient(k).SetVolume(10)
	})
	if p := k.Exec(proc.Main(), "vol-ok", func() {
		a := NewAudioClient(k)
		a.SetVolume(9)
		if a.Volume() != 9 {
			t.Errorf("Volume = %d", a.Volume())
		}
	}); p != nil {
		t.Fatalf("healthy audio client panicked: %v", p)
	}
}

func TestErrNames(t *testing.T) {
	cases := map[int]string{
		KErrNone:         "KErrNone",
		KErrNotFound:     "KErrNotFound",
		KErrGeneral:      "KErrGeneral",
		KErrNoMemory:     "KErrNoMemory",
		KErrNotSupported: "KErrNotSupported",
		KErrArgument:     "KErrArgument",
		KErrOverflow:     "KErrOverflow",
		KErrInUse:        "KErrInUse",
		KErrServerBusy:   "KErrServerBusy",
		KErrDisconnected: "KErrDisconnected",
		-999:             "KErr(-999)",
	}
	for code, want := range cases {
		if got := ErrName(code); got != want {
			t.Errorf("ErrName(%d) = %q, want %q", code, got, want)
		}
	}
}

var _ = sim.Epoch // keep the sim import for helpers above
