package stream

import (
	"encoding/json"
	"fmt"
	"strconv"
	"sync"

	"symfail/internal/core"
)

// LiveStudy is the live query tier of DESIGN.md §16: a concurrency-safe
// composite of the exact Tables and the windowed/decaying views, fed record
// by record from collect.ServerConfig.OnRecord and queried while the study
// is still running. Because the collection tap is at-least-once (a
// supervisor-restarted server replays records it acked before the crash) and
// only per-device ordered, LiveStudy deduplicates by serialized record and
// guards the cursor-fed Tables behind a per-device order check: a fresh but
// out-of-order record still feeds the order-insensitive windowed and
// decaying folds, but is excluded from the exact tables (and counted in
// Reordered) rather than corrupting their cursor state.
type LiveStudy struct {
	mu     sync.Mutex
	cfg    Config
	tables *Tables
	window *WindowAcc
	decay  *DecayAcc

	// seen is the dedup ledger: device -> serialized record -> true.
	seen map[string]map[string]bool
	// lastTime guards the exact tables' per-device time order.
	lastTime map[string]int64

	records   int // distinct records observed
	dups      int // duplicate deliveries dropped
	reordered int // fresh records excluded from the exact tables
}

// NewLiveStudy builds a live study with the given analysis thresholds.
func NewLiveStudy(cfg Config) *LiveStudy {
	cfg = cfg.WithDefaults()
	return &LiveStudy{
		cfg:      cfg,
		tables:   NewTables(cfg),
		window:   NewWindowAcc(cfg),
		decay:    NewDecayAcc(cfg),
		seen:     make(map[string]map[string]bool),
		lastTime: make(map[string]int64),
	}
}

// Observe folds one delivered record in. Safe for concurrent use; shaped to
// hang directly off collect.ServerConfig.OnRecord.
func (s *LiveStudy) Observe(deviceID string, r core.Record) {
	key := string(core.AppendRecordLine(nil, r))
	s.mu.Lock()
	defer s.mu.Unlock()
	recs := s.seen[deviceID]
	if recs == nil {
		recs = make(map[string]bool)
		s.seen[deviceID] = recs
		s.tables.AddDevice(deviceID)
		s.lastTime[deviceID] = r.Time
	}
	if recs[key] {
		s.dups++
		return
	}
	recs[key] = true
	s.records++
	s.window.Observe(deviceID, r)
	s.decay.Observe(deviceID, r)
	if r.Time >= s.lastTime[deviceID] {
		s.lastTime[deviceID] = r.Time
		s.tables.Observe(deviceID, r)
	} else {
		s.reordered++
	}
}

// Records returns the number of distinct records observed so far.
func (s *LiveStudy) Records() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.records
}

// Duplicates returns how many replayed deliveries were dropped.
func (s *LiveStudy) Duplicates() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dups
}

// Reordered returns how many fresh records the exact tables excluded.
func (s *LiveStudy) Reordered() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.reordered
}

// Tables returns the current epoch's exact table set.
func (s *LiveStudy) Tables() *TablesSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tables.Snapshot().(*TablesSnapshot)
}

// Window returns the current epoch's windowed view (0 = configured window).
func (s *LiveStudy) Window(days int) *WindowSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.window.Stats(days)
}

// Decay returns the current epoch's exponentially-decaying view.
func (s *LiveStudy) Decay() *DecaySnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.decay.Snapshot().(*DecaySnapshot)
}

// LiveStatus is the "status" query answer.
type LiveStatus struct {
	Devices    int `json:"devices"`
	Records    int `json:"records"`
	Duplicates int `json:"duplicates"`
	Reordered  int `json:"reordered"`
}

// LiveMTBF is the "mtbf" query answer: the exact-tables MTBF alongside the
// decaying view's, so a client sees both the whole-study and recency-biased
// numbers in one round-trip.
type LiveMTBF struct {
	Devices        int        `json:"devices"`
	MTBF           MTBFReport `json:"mtbf"`
	DecayMTBFHours float64    `json:"decayMtbfHours"`
	AsOfDay        int        `json:"asOfDay"`
}

// LivePanics is the "panics" query answer: the decaying panic-category
// leaderboard, most-recent-heavy first.
type LivePanics struct {
	AsOfDay int        `json:"asOfDay"`
	Total   float64    `json:"total"`
	Top     []DecayRow `json:"top"`
}

// LiveFreezeRate is the "freezerate" query answer over the last N days.
type LiveFreezeRate struct {
	FromDay       int     `json:"fromDay"`
	ToDay         int     `json:"toDay"`
	Records       int     `json:"records"`
	Freezes       int     `json:"freezes"`
	FreezesPerDay float64 `json:"freezesPerDay"`
	UptimeHours   float64 `json:"uptimeHours"`
	MTBFHours     float64 `json:"mtbfHours"`
}

// Query answers a named read-only query with compact single-line JSON —
// the collect.ServerConfig.Query hook. Supported:
//
//	status               device/record/duplicate/reorder counters
//	mtbf                 exact and decaying MTBF
//	panics [n]           top-n decaying panic leaderboard (default 5)
//	freezerate [days]    windowed freeze rate over the last days (default
//	                     the configured Config.Window)
func (s *LiveStudy) Query(name string, args []string) (string, error) {
	var v any
	switch name {
	case "status":
		s.mu.Lock()
		v = LiveStatus{
			Devices:    len(s.seen),
			Records:    s.records,
			Duplicates: s.dups,
			Reordered:  s.reordered,
		}
		s.mu.Unlock()
	case "mtbf":
		if len(args) != 0 {
			return "", fmt.Errorf("stream: mtbf takes no arguments")
		}
		tbl := s.Tables()
		dec := s.Decay()
		v = LiveMTBF{
			Devices:        len(tbl.Devices),
			MTBF:           tbl.MTBF,
			DecayMTBFHours: dec.MTBFHours,
			AsOfDay:        dec.AsOfDay,
		}
	case "panics":
		n, err := optInt(args, 5)
		if err != nil {
			return "", err
		}
		dec := s.Decay()
		top := dec.PanicTable
		if n > 0 && len(top) > n {
			top = top[:n]
		}
		v = LivePanics{AsOfDay: dec.AsOfDay, Total: dec.Panics, Top: top}
	case "freezerate":
		days, err := optInt(args, 0)
		if err != nil {
			return "", err
		}
		w := s.Window(days)
		v = LiveFreezeRate{
			FromDay:       w.FromDay,
			ToDay:         w.ToDay,
			Records:       w.Records,
			Freezes:       w.Freezes,
			FreezesPerDay: w.FreezesPerDay,
			UptimeHours:   w.UptimeHours,
			MTBFHours:     w.MTBF.MTBFHours,
		}
	default:
		return "", fmt.Errorf("stream: unknown query %q", name)
	}
	blob, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	return string(blob), nil
}

// optInt parses the single optional integer argument of a query.
func optInt(args []string, def int) (int, error) {
	switch len(args) {
	case 0:
		return def, nil
	case 1:
		n, err := strconv.Atoi(args[0])
		if err != nil || n < 0 {
			return 0, fmt.Errorf("stream: bad query argument %q", args[0])
		}
		return n, nil
	default:
		return 0, fmt.Errorf("stream: too many query arguments")
	}
}
