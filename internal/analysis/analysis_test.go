package analysis

import (
	"testing"
	"time"

	"symfail/internal/core"
	"symfail/internal/sim"
)

// rec builders for synthetic datasets.

func bootRec(at time.Duration, boot int, detected core.Detection, prev core.BeatKind, prevAt time.Duration) core.Record {
	return core.Record{
		Kind:       core.KindBoot,
		Time:       int64(sim.Epoch.Add(at)),
		Boot:       boot,
		Detected:   detected,
		PrevBeat:   prev,
		PrevTime:   int64(sim.Epoch.Add(prevAt)),
		OffSeconds: (at - prevAt).Seconds(),
	}
}

func panicRec(at time.Duration, cat string, typ int, activity string, apps ...string) core.Record {
	return core.Record{
		Kind:     core.KindPanic,
		Time:     int64(sim.Epoch.Add(at)),
		Category: cat,
		PType:    typ,
		Apps:     apps,
		Activity: activity,
	}
}

// syntheticDataset builds one device with a deterministic little history:
//
//	t=0h      first boot
//	t=1h      KERN-EXEC 3 panic (Messages running, voice-call) ─┐ 2 min gap
//	t=1h2m    USER 11 panic (burst follower)                    ─┘
//	t=1h3m    freeze (last ALIVE at 1h3m), battery pull, boot at 1h30m
//	t=5h      EIKON-LISTBOX 5 panic, isolated, idle
//	t=9h      self-shutdown: REBOOT beat at 9h, boot at 9h+90s
//	t=20h     user shutdown: REBOOT at 20h, boot at 28h (night)
//	t=40h     low-battery shutdown, boot at 41h
func syntheticDataset() map[string][]core.Record {
	return map[string][]core.Record{
		"p1": {
			{Kind: core.KindBoot, Time: int64(sim.Epoch), Boot: 1, Detected: core.DetectedFirstBoot},
			panicRec(time.Hour, "KERN-EXEC", 3, "voice-call", "Log", "Messages", "Telephone"),
			panicRec(time.Hour+2*time.Minute, "USER", 11, "voice-call", "Telephone"),
			bootRec(90*time.Minute, 2, core.DetectedFreeze, core.BeatAlive, time.Hour+3*time.Minute),
			panicRec(5*time.Hour, "EIKON-LISTBOX", 5, "unspecified", "Contacts"),
			bootRec(9*time.Hour+90*time.Second, 3, core.DetectedShutdown, core.BeatReboot, 9*time.Hour),
			bootRec(28*time.Hour, 4, core.DetectedShutdown, core.BeatReboot, 20*time.Hour),
			bootRec(41*time.Hour, 5, core.DetectedLowBattery, core.BeatLowBat, 40*time.Hour),
		},
	}
}

func newSyntheticStudy(t *testing.T) *Study {
	t.Helper()
	return New(syntheticDataset(), Options{})
}

func TestHLEventClassification(t *testing.T) {
	s := newSyntheticStudy(t)
	freezes := s.HLEvents(HLFreeze)
	if len(freezes) != 1 {
		t.Fatalf("freezes = %d", len(freezes))
	}
	if freezes[0].Time != sim.Epoch.Add(time.Hour+3*time.Minute) {
		t.Errorf("freeze time = %v (should be the last ALIVE beat)", freezes[0].Time)
	}
	selfs := s.HLEvents(HLSelfShutdown)
	if len(selfs) != 1 || selfs[0].OffSeconds != 90 {
		t.Fatalf("self-shutdowns = %+v", selfs)
	}
	users := s.HLEvents(HLUserShutdown)
	if len(users) != 1 || users[0].OffSeconds != (8*time.Hour).Seconds() {
		t.Fatalf("user shutdowns = %+v", users)
	}
	if all := s.HLEvents(); len(all) != 3 {
		t.Errorf("all HL events = %d", len(all))
	}
	if s.ExplainedShutdowns() != 1 {
		t.Errorf("explained shutdowns = %d", s.ExplainedShutdowns())
	}
}

func TestRebootDurationsOnlyOrderlyShutdowns(t *testing.T) {
	s := newSyntheticStudy(t)
	durs := s.RebootDurations()
	// The freeze (battery pull) and low-battery boots are not REBOOT
	// events; only the two REBOOT shutdowns count.
	if len(durs) != 2 {
		t.Fatalf("reboot durations = %v", durs)
	}
	h := s.RebootHistogram(0, 40000, 40)
	if h.N() != 2 {
		t.Errorf("histogram N = %d", h.N())
	}
}

func TestBurstGrouping(t *testing.T) {
	s := newSyntheticStudy(t)
	st := s.Bursts()
	if st.TotalPanics != 3 {
		t.Fatalf("total panics = %d", st.TotalPanics)
	}
	if st.TotalBursts != 2 {
		t.Fatalf("total bursts = %d (sizes %v)", st.TotalBursts, st.SizeCounts)
	}
	if st.SizeCounts[2] != 1 || st.SizeCounts[1] != 1 {
		t.Errorf("size counts = %v", st.SizeCounts)
	}
	want := 2.0 / 3.0
	if st.PanicsInBursts < want-1e-9 || st.PanicsInBursts > want+1e-9 {
		t.Errorf("panics in bursts = %v, want %v", st.PanicsInBursts, want)
	}
}

func TestCoalescence(t *testing.T) {
	s := newSyntheticStudy(t)
	st := s.Coalesce()
	if st.TotalPanics != 3 {
		t.Fatalf("total = %d", st.TotalPanics)
	}
	// The two burst panics relate to the freeze at 1h3m (1-3 minutes
	// away); the listbox panic is isolated.
	if st.RelatedPanics != 2 || st.ToFreeze != 2 || st.ToSelfShutdown != 0 {
		t.Errorf("coalescence = %+v", st)
	}
	if rc := st.ByCategory["KERN-EXEC 3"]; rc.Related != 1 || rc.ToFreeze != 1 {
		t.Errorf("KERN-EXEC 3 relation = %+v", rc)
	}
	if rc := st.ByCategory["EIKON-LISTBOX 5"]; rc.Related != 0 || rc.Total != 1 {
		t.Errorf("EIKON-LISTBOX 5 relation = %+v", rc)
	}
	// One HL event (the self-shutdown at 9h) has no panic nearby.
	if st.IsolatedHL != 1 {
		t.Errorf("isolated HL = %d", st.IsolatedHL)
	}
}

func TestCoalescenceWindowMatters(t *testing.T) {
	s := New(syntheticDataset(), Options{CoalescenceWindow: time.Second})
	st := s.Coalesce()
	if st.RelatedPanics != 0 {
		t.Errorf("with a 1 s window nothing should coalesce, got %d", st.RelatedPanics)
	}
}

func TestWindowSweepMonotone(t *testing.T) {
	s := newSyntheticStudy(t)
	points := s.WindowSweep([]time.Duration{
		time.Second, time.Minute, 5 * time.Minute, time.Hour, 10 * time.Hour,
	})
	prev := -1
	for _, pt := range points {
		if pt.Related < prev {
			t.Fatalf("window sweep not monotone: %+v", points)
		}
		prev = pt.Related
	}
	if points[0].Related != 0 {
		t.Errorf("1 s window relates %d", points[0].Related)
	}
	if points[len(points)-1].Related != 3 {
		t.Errorf("10 h window relates %d, want all 3", points[len(points)-1].Related)
	}
	// The sweep must leave the standard coalescence intact.
	if st := s.Coalesce(); st.RelatedPanics != 2 {
		t.Errorf("sweep corrupted state: related = %d", st.RelatedPanics)
	}
}

func TestRelatedPercentWithAllShutdowns(t *testing.T) {
	// Add a panic right before the user shutdown at 20h: it is isolated
	// under the standard rule but related when user shutdowns count.
	ds := syntheticDataset()
	ds["p1"] = append(ds["p1"], panicRec(20*time.Hour-time.Minute, "KERN-EXEC", 0, "unspecified"))
	s := New(ds, Options{})
	std := s.Coalesce().RelatedPercent
	all := s.RelatedPercentWithAllShutdowns()
	if all <= std {
		t.Errorf("all-shutdown related %% (%v) should exceed standard (%v)", all, std)
	}
	// And the standard view must be restored afterwards.
	if again := s.Coalesce().RelatedPercent; again != std {
		t.Errorf("state not restored: %v != %v", again, std)
	}
}

func TestPanicTable(t *testing.T) {
	s := newSyntheticStudy(t)
	rows := s.PanicTable()
	if len(rows) != 3 {
		t.Fatalf("rows = %+v", rows)
	}
	var totalPct float64
	for _, r := range rows {
		totalPct += r.Percent
		if r.Meaning == "" {
			t.Errorf("row %s has no meaning", r.Key)
		}
	}
	if totalPct < 99.9 || totalPct > 100.1 {
		t.Errorf("percent total = %v", totalPct)
	}
	if s.CategoryShare("KERN-EXEC") < 33 || s.CategoryShare("KERN-EXEC") > 34 {
		t.Errorf("KERN-EXEC share = %v", s.CategoryShare("KERN-EXEC"))
	}
	if s.CategoryShare("NOPE") != 0 {
		t.Error("unknown category share should be 0")
	}
}

func TestActivityTable(t *testing.T) {
	s := newSyntheticStudy(t)
	rows := s.ActivityTable()
	// Only related panics count: both are voice-call.
	if len(rows) != 1 || rows[0].Activity != "voice-call" {
		t.Fatalf("rows = %+v", rows)
	}
	if rows[0].Total < 99.9 || rows[0].Total > 100.1 {
		t.Errorf("row total = %v", rows[0].Total)
	}
	if s.RealTimeActivityShare() != 100 {
		t.Errorf("real-time share = %v", s.RealTimeActivityShare())
	}
}

func TestRunningAppsHistogram(t *testing.T) {
	s := newSyntheticStudy(t)
	h := s.RunningAppsHistogram(10)
	if h[3] != 1 || h[1] != 2 {
		t.Errorf("histogram = %v", h)
	}
}

func TestAppPanicTable(t *testing.T) {
	s := newSyntheticStudy(t)
	rows := s.AppPanicTable()
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	var foundFreezeKE3 bool
	for _, r := range rows {
		if r.Outcome == "freeze" && r.Category == "KERN-EXEC" {
			foundFreezeKE3 = true
			if r.ByApp["Messages"] <= 0 {
				t.Errorf("Messages share missing: %+v", r)
			}
		}
		if r.Outcome == "none" && r.Category == "EIKON-LISTBOX" {
			if r.ByApp["Contacts"] <= 0 {
				t.Errorf("Contacts share missing: %+v", r)
			}
		}
	}
	if !foundFreezeKE3 {
		t.Errorf("no freeze/KERN-EXEC row: %+v", rows)
	}
	tops := s.TopPanicApps(2)
	if len(tops) != 2 || tops[0].App != "Telephone" {
		t.Errorf("top apps = %+v", tops)
	}
}

func TestMTBFReport(t *testing.T) {
	s := newSyntheticStudy(t)
	rep := s.MTBF()
	if rep.Freezes != 1 || rep.SelfShutdowns != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.ObservedHours <= 0 {
		t.Fatalf("observed hours = %v", rep.ObservedHours)
	}
	// Uptime: sessions 0→1h03m, 1h30m→9h, 9h01m30s→20h, 28h→40h, 41h→41h.
	want := 1.05 + 7.5 + 10.975 + 12.0
	if rep.ObservedHours < want-0.2 || rep.ObservedHours > want+0.2 {
		t.Errorf("observed hours = %v, want ~%v", rep.ObservedHours, want)
	}
	if rep.MTBFrHours != rep.ObservedHours || rep.MTBSHours != rep.ObservedHours {
		t.Errorf("MTBFr/MTBS = %v/%v", rep.MTBFrHours, rep.MTBSHours)
	}
	if rep.MTBFHours != rep.ObservedHours/2 {
		t.Errorf("MTBF = %v", rep.MTBFHours)
	}
	if rep.FailureEveryDays <= 0 {
		t.Errorf("FailureEveryDays = %v", rep.FailureEveryDays)
	}
}

func TestEmptyDataset(t *testing.T) {
	s := New(nil, Options{})
	if len(s.Panics()) != 0 || len(s.HLEvents()) != 0 {
		t.Error("empty dataset produced events")
	}
	rep := s.MTBF()
	if rep.MTBFrHours != 0 || rep.FailureEveryDays != 0 {
		t.Errorf("empty MTBF = %+v", rep)
	}
	if st := s.Coalesce(); st.RelatedPercent != 0 {
		t.Errorf("empty coalescence = %+v", st)
	}
	if s.RealTimeActivityShare() != 0 {
		t.Error("empty real-time share nonzero")
	}
	if rows := s.AppPanicTable(); rows != nil {
		t.Errorf("empty app table = %v", rows)
	}
}

func TestRecordsOutOfOrderAreSorted(t *testing.T) {
	ds := syntheticDataset()
	// Reverse the records; ingest must sort.
	recs := ds["p1"]
	for i, j := 0, len(recs)-1; i < j; i, j = i+1, j-1 {
		recs[i], recs[j] = recs[j], recs[i]
	}
	s := New(ds, Options{})
	if len(s.HLEvents(HLFreeze)) != 1 || len(s.Panics()) != 3 {
		t.Error("out-of-order ingest broke derivation")
	}
	if st := s.Coalesce(); st.RelatedPanics != 2 {
		t.Errorf("related = %d", st.RelatedPanics)
	}
}

func TestThresholdSweepChangesClassification(t *testing.T) {
	ds := syntheticDataset()
	// With a 10 h threshold the 8 h night shutdown is (mis)classified as a
	// self-shutdown.
	s := New(ds, Options{SelfShutdownThreshold: 10 * time.Hour})
	if got := len(s.HLEvents(HLSelfShutdown)); got != 2 {
		t.Errorf("self-shutdowns at huge threshold = %d, want 2", got)
	}
	s = New(ds, Options{SelfShutdownThreshold: time.Second})
	if got := len(s.HLEvents(HLSelfShutdown)); got != 0 {
		t.Errorf("self-shutdowns at tiny threshold = %d, want 0", got)
	}
}

func TestDevicesAccessor(t *testing.T) {
	ds := syntheticDataset()
	ds["p0"] = []core.Record{{Kind: core.KindBoot, Time: 0, Boot: 1, Detected: core.DetectedFirstBoot}}
	s := New(ds, Options{})
	devs := s.Devices()
	if len(devs) != 2 || devs[0] != "p0" || devs[1] != "p1" {
		t.Errorf("devices = %v", devs)
	}
	if s.Options().CoalescenceWindow != 5*time.Minute {
		t.Errorf("options = %+v", s.Options())
	}
}
