package collect

import (
	"bufio"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"symfail/internal/core"
)

func newTestServer(t *testing.T) (*Server, *Dataset) {
	t.Helper()
	ds := NewDataset()
	s, err := NewServer("127.0.0.1:0", ds)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = s.Close() })
	return s, ds
}

func TestUploadRoundTrip(t *testing.T) {
	s, ds := newTestServer(t)
	payload := []byte("{\"kind\":\"boot\",\"time\":1}\n")
	if err := Upload(s.Addr(), "phone-01", payload); err != nil {
		t.Fatal(err)
	}
	got, ok := ds.Get("phone-01")
	if !ok || string(got) != string(payload) {
		t.Fatalf("dataset = %q ok=%v", got, ok)
	}
	if s.Uploads() != 1 {
		t.Errorf("Uploads = %d", s.Uploads())
	}
}

func TestUploadMergesAcrossMasterReset(t *testing.T) {
	s, ds := newTestServer(t)
	recA := core.EncodeRecord(core.Record{Kind: core.KindBoot, Time: 1, Boot: 1, Detected: core.DetectedFirstBoot})
	recB := core.EncodeRecord(core.Record{Kind: core.KindPanic, Time: 2, Category: "USER", PType: 11})
	recC := core.EncodeRecord(core.Record{Kind: core.KindBoot, Time: 3, Boot: 1, Detected: core.DetectedFirstBoot, OSVersion: "8.0"})
	// First upload: records A and B.
	if err := Upload(s.Addr(), "p", append(append([]byte(nil), recA...), recB...)); err != nil {
		t.Fatal(err)
	}
	// The phone is master-reset; it re-uploads a fresh log holding only C.
	if err := Upload(s.Addr(), "p", recC); err != nil {
		t.Fatal(err)
	}
	recs := ds.Records("p")
	if len(recs) != 3 {
		t.Fatalf("merged records = %d, want 3 (pre-reset history preserved)", len(recs))
	}
	// Time-ordered.
	for i := 1; i < len(recs); i++ {
		if recs[i].Time < recs[i-1].Time {
			t.Errorf("merged records out of order at %d", i)
		}
	}
	// Re-uploading the same log is idempotent.
	if err := Upload(s.Addr(), "p", recC); err != nil {
		t.Fatal(err)
	}
	if got := len(ds.Records("p")); got != 3 {
		t.Errorf("idempotent re-upload changed count to %d", got)
	}
}

func TestUploadEmptyBody(t *testing.T) {
	s, ds := newTestServer(t)
	if err := Upload(s.Addr(), "empty", nil); err != nil {
		t.Fatal(err)
	}
	got, ok := ds.Get("empty")
	if !ok || len(got) != 0 {
		t.Errorf("got %q ok=%v", got, ok)
	}
}

func TestUploadInvalidDeviceID(t *testing.T) {
	s, _ := newTestServer(t)
	for _, id := range []string{"", "has space", "has\nnewline"} {
		if err := Upload(s.Addr(), id, []byte("x")); err == nil {
			t.Errorf("id %q accepted", id)
		}
	}
}

func TestUploadTooLargeRejectedClientSide(t *testing.T) {
	if err := Upload("127.0.0.1:1", "p", make([]byte, MaxUploadBytes+1)); err != ErrTooLarge {
		t.Errorf("err = %v, want ErrTooLarge", err)
	}
}

func TestServerRejectsBadHeader(t *testing.T) {
	s, _ := newTestServer(t)
	cases := []string{
		"NOPE p 3 00000000\n",
		"UPLOAD p\n",
		"UPLOAD p 3\n", // missing checksum
		"UPLOAD p notanumber 00000000\n",
		"UPLOAD p -5 00000000\n",
		"UPLOAD p 3 nothex\n",
		fmt.Sprintf("UPLOAD p %d 00000000\n", MaxUploadBytes+1),
	}
	for _, h := range cases {
		conn, err := net.DialTimeout("tcp", s.Addr(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		fmt.Fprint(conn, h)
		reply, err := bufio.NewReader(conn).ReadString('\n')
		conn.Close()
		if err != nil {
			t.Fatalf("header %q: no reply: %v", h, err)
		}
		if !strings.HasPrefix(reply, "ERR") {
			t.Errorf("header %q accepted: %q", h, reply)
		}
	}
}

func TestConcurrentUploads(t *testing.T) {
	s, ds := newTestServer(t)
	const n = 20
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("phone-%02d", i)
			errs[i] = Upload(s.Addr(), id, []byte(id+" log"))
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("upload %d: %v", i, err)
		}
	}
	if got := len(ds.Devices()); got != n {
		t.Errorf("devices = %d, want %d", got, n)
	}
	ids := ds.Devices()
	if !sortedStrings(ids) {
		t.Errorf("Devices not sorted: %v", ids)
	}
}

func TestDatasetRecordsParsing(t *testing.T) {
	ds := NewDataset()
	var buf []byte
	buf = append(buf, core.EncodeRecord(core.Record{Kind: core.KindBoot, Time: 5, Boot: 1, Detected: core.DetectedFirstBoot})...)
	buf = append(buf, core.EncodeRecord(core.Record{Kind: core.KindPanic, Time: 9, Category: "USER", PType: 11})...)
	ds.Put("p1", buf)
	recs := ds.Records("p1")
	if len(recs) != 2 || recs[1].PanicKey() != "USER 11" {
		t.Fatalf("records = %+v", recs)
	}
	if ds.Records("missing") != nil {
		t.Error("missing device should parse to nil")
	}
	all := ds.AllRecords()
	if len(all) != 1 || len(all["p1"]) != 2 {
		t.Errorf("AllRecords = %v", all)
	}
}

func TestDatasetCopiesData(t *testing.T) {
	ds := NewDataset()
	orig := []byte("abc")
	ds.Put("p", orig)
	orig[0] = 'X'
	got, _ := ds.Get("p")
	if string(got) != "abc" {
		t.Error("Put did not copy")
	}
	got[0] = 'Y'
	again, _ := ds.Get("p")
	if string(again) != "abc" {
		t.Error("Get did not copy")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	ds := NewDataset()
	s, err := NewServer("127.0.0.1:0", ds)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if err := Upload(s.Addr(), "p", []byte("x")); err == nil {
		t.Error("upload to closed server succeeded")
	}
}

func sortedStrings(xs []string) bool {
	for i := 1; i < len(xs); i++ {
		if xs[i-1] > xs[i] {
			return false
		}
	}
	return true
}

func TestServerRejectsChecksumMismatch(t *testing.T) {
	s, ds := newTestServer(t)
	conn, err := net.DialTimeout("tcp", s.Addr(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	fmt.Fprint(conn, "UPLOAD p 3 deadbeef\nabc")
	reply, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(reply, "ERR checksum") {
		t.Errorf("reply = %q", reply)
	}
	if _, ok := ds.Get("p"); ok {
		t.Error("corrupt upload stored")
	}
}
