package phone

import (
	"testing"
	"time"

	"symfail/internal/sim"
)

// BenchmarkDeviceMonth measures the cost of simulating one phone-month of
// workload (no logger installed).
func BenchmarkDeviceMonth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		eng := sim.NewEngine()
		d := NewDevice("bench", eng, DefaultConfig(uint64(i+1)))
		d.Enroll(sim.Epoch)
		if err := eng.Run(sim.Epoch.Add(30 * 24 * time.Hour)); err != nil {
			b.Fatal(err)
		}
		d.Finalize()
	}
}

// BenchmarkFleetMonth measures a 25-phone fleet month on one engine.
func BenchmarkFleetMonth(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fl := NewFleet(FleetConfig{
			Seed:       uint64(i + 1),
			Phones:     25,
			Duration:   StudyMonth,
			JoinWindow: 0,
		})
		if err := fl.Run(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(25, "phone-months/op")
}

// BenchmarkBootShutdownCycle measures the device lifecycle machinery.
func BenchmarkBootShutdownCycle(b *testing.B) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(1)
	cfg.ActivitiesPerDay = 0.0001
	cfg.PanicOpportunityPerHour = 0
	cfg.SpontaneousFreezePerHour = 0
	cfg.SpontaneousShutdownPerHour = 0
	cfg.OutputFailurePerHour = 0
	cfg.NightOffProb = 0
	cfg.DayOffPerHour = 0
	d := NewDevice("cycle", eng, cfg)
	d.Enroll(sim.Epoch)
	eng.Step()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Shutdown(ReasonUser, time.Minute)
		if err := eng.Run(eng.Now().Add(2 * time.Minute)); err != nil {
			b.Fatal(err)
		}
	}
	if d.BootCount() < b.N {
		b.Fatalf("boots = %d", d.BootCount())
	}
}

// BenchmarkFaultTrigger measures one end-to-end defect trigger (injection,
// panic raise, recovery policy).
func BenchmarkFaultTrigger(b *testing.B) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(1)
	cfg.BurstProb = 0
	d := NewDevice("fault", eng, cfg)
	d.Enroll(sim.Epoch)
	eng.Step()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.faults.trigger()
		// Bounded drain: the workload perpetually reschedules itself, so a
		// full drain would never terminate.
		if err := eng.Run(eng.Now().Add(time.Second)); err != nil {
			b.Fatal(err)
		}
		if d.State() != StateOn {
			// An HL outcome took the phone down; let it come back.
			if err := eng.Run(eng.Now().Add(12 * time.Hour)); err != nil {
				b.Fatal(err)
			}
		}
	}
}
