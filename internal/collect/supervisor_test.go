package collect

import (
	"testing"
	"time"

	"symfail/internal/core"
	"symfail/internal/phone"
	"symfail/internal/sim"
)

// supervisedRun drives one quiet phone against a supervised server that is
// killed every few requests, and returns the supervisor and the dataset it
// fed. The uploader retries with backoff, so every injected crash is
// absorbed by the protocol, never by the test.
func supervisedRun(t *testing.T, seed uint64, days int) (*Supervisor, *Dataset, *Uploader) {
	t.Helper()
	ds := NewDataset()
	sup, err := NewSupervisor("127.0.0.1:0", ds, SupervisorConfig{
		Crash:        CrashFaults{KillEveryMin: 2, KillEveryMax: 5},
		CompactEvery: 2 << 10,
		Rng:          sim.NewRand(seed),
	})
	if err != nil {
		t.Fatal(err)
	}
	eng := sim.NewEngine()
	d := phone.NewDevice("sup-kill", eng, quietConfig(seed))
	l := core.Install(d, core.Config{})
	u := AttachUploaderWith(d, sup.Addr(), l.Config().LogPath, UploaderConfig{
		Every:     2 * time.Hour,
		RetryBase: 10 * time.Minute,
		RetryMax:  time.Hour,
	})
	d.Enroll(sim.Epoch)
	if err := eng.Run(sim.Epoch.Add(time.Duration(days) * 24 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	return sup, ds, u
}

func TestSupervisorKillsAndRecovers(t *testing.T) {
	sup, ds, u := supervisedRun(t, 1701, 10)
	defer sup.Close()

	if err := sup.Err(); err != nil {
		t.Fatalf("supervisor restart failed: %v", err)
	}
	if sup.Crashes() == 0 {
		t.Fatal("no crashes injected — the kill schedule is not reaching the server")
	}
	if sup.Restarts() != sup.Crashes() {
		t.Errorf("crashes %d != restarts %d: an incarnation never came back",
			sup.Crashes(), sup.Restarts())
	}
	if u.Successes() == 0 {
		t.Fatal("no upload ever succeeded across the crashes")
	}
	if sup.Compactions() == 0 {
		t.Error("WAL never compacted despite the tiny CompactEvery")
	}
	total := 0
	for p := Crashpoint(0); p < numCrashpoints; p++ {
		total += sup.Hits(p)
	}
	if total != sup.Crashes() {
		t.Errorf("crashpoint hits sum to %d, crashes = %d", total, sup.Crashes())
	}

	// The tentpole invariant: every record any incarnation acknowledged is
	// in the final dataset exactly once.
	counts := make(map[string]int)
	for _, r := range ds.Records("sup-kill") {
		counts[string(core.EncodeRecord(r))]++
	}
	acked := sup.AckedKeys("sup-kill")
	if len(acked) == 0 {
		t.Fatal("server never acknowledged a record")
	}
	for _, key := range acked {
		if counts[key] != 1 {
			t.Errorf("acknowledged record appears %d times in the dataset: %s", counts[key], key)
		}
	}
}

// TestSupervisorDeterministicRecovery: same seed, same kill schedule, same
// torn tails — the entire crash/recover history and the recovered dataset
// must be byte-identical across runs.
func TestSupervisorDeterministicRecovery(t *testing.T) {
	type witness struct {
		crashes, restarts, compact int
		hits                       [numCrashpoints]int
		crc                        uint32
		uploads                    int
	}
	run := func() witness {
		sup, ds, _ := supervisedRun(t, 31337, 8)
		defer sup.Close()
		if err := sup.Err(); err != nil {
			t.Fatal(err)
		}
		w := witness{
			crashes:  sup.Crashes(),
			restarts: sup.Restarts(),
			compact:  sup.Compactions(),
			crc:      ds.CRC32C(),
			uploads:  sup.Uploads(),
		}
		for p := Crashpoint(0); p < numCrashpoints; p++ {
			w.hits[p] = sup.Hits(p)
		}
		return w
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("crash/recover history is not a pure function of the seed.\n run 1: %+v\n run 2: %+v", a, b)
	}
	if a.crashes == 0 {
		t.Error("determinism check is vacuous: no crashes injected")
	}
}

// TestSupervisorRestartResumesExistingStore: a supervisor handed a prior
// store recovers its state before serving, so acknowledged records survive
// even a full process replacement (not just an in-process restart).
func TestSupervisorRestartResumesExistingStore(t *testing.T) {
	store := NewCrashStore(nil)
	data := walTestRecords(1, 2, 3)
	store.Append(walName, encodeWALEntry(walEntry{Op: opUpload, Dev: "dev-x", Data: data}))
	store.Sync(walName)

	ds := NewDataset()
	sup, err := NewSupervisor("127.0.0.1:0", ds, SupervisorConfig{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	got, ok := ds.Get("dev-x")
	if !ok || string(got) != string(data) {
		t.Errorf("recovered dataset = %q, want the WAL-logged upload %q", got, data)
	}
}
