package stream

import (
	"fmt"
	"slices"
	"sync"

	"symfail/internal/core"
)

// accBase carries the cursor plumbing shared by every cursor-fed
// accumulator: config, the per-device cursor set, and the seal flag.
type accBase struct {
	cfg    Config
	cs     *cursorSet
	sealed bool
}

func (b *accBase) observe(name, id string, r core.Record) {
	if b.sealed {
		panic("stream: " + name + ".Observe after Seal")
	}
	b.cs.observe(id, r)
}

func (b *accBase) addDevice(name, id string) {
	if b.sealed {
		panic("stream: " + name + ".AddDevice after Seal")
	}
	b.cs.add(id)
}

func (b *accBase) mergeBase(o *accBase, name string) error {
	if b.sealed || o.sealed {
		return fmt.Errorf("%w: %s", ErrSealed, name)
	}
	if b.cfg != o.cfg {
		return fmt.Errorf("%w: %s", ErrConfigMismatch, name)
	}
	if err := b.cs.merge(o.cs); err != nil {
		return err
	}
	o.sealed = true
	return nil
}

// seal finishes every cursor and returns the canonical device order.
func (b *accBase) seal() []string {
	b.sealed = true
	b.cs.finish()
	return b.cs.devices()
}

// ---- Tables: the composite accumulator behind `-stream` ----

// TablesSnapshot is every paper table and figure of the field study,
// computed in one streaming pass. RebootDurations is kept raw — O(shutdown
// events), the one deliberate exception to the O(devices + bins) envelope —
// so Figure 2 can be histogrammed at any binning and its median stays exact.
type TablesSnapshot struct {
	Config             Config
	Devices            []string
	RebootDurations    []float64
	ExplainedShutdowns int
	UserShutdowns      int
	MTBF               MTBFReport
	PanicTable         []PanicRow
	CategoryShare      map[string]float64
	Bursts             BurstStats
	Coalescence        CoalescenceStats
	// RelatedPercentAllShutdowns is the section 6 robustness check: the
	// related share when user shutdowns count as HL events too.
	RelatedPercentAllShutdowns float64
	Activity                   []ActivityRow
	RealTimeActivitySharePct   float64
	// RunningApps is Figure 6's histogram, folded at RunningAppsCap.
	RunningApps map[int]int
	AppTable    []AppPanicRow
	// TopApps is the full app-share ranking; renderers truncate.
	TopApps []AppShare
}

// Tables streams every experiment at once: one cursor set fanning finalized
// events out to all reducers.
type Tables struct {
	accBase
	panics   *panicRed
	reboots  *rebootRed
	mtbf     *mtbfRed
	coal     *coalRed
	bursts   *burstRed
	activity *activityRed
	apps     *appsRed
	snap     *TablesSnapshot
}

// NewTables builds the composite accumulator with the given thresholds.
func NewTables(cfg Config) *Tables {
	t := &Tables{
		panics:   newPanicRed(),
		reboots:  newRebootRed(),
		mtbf:     newMTBFRed(),
		coal:     newCoalRed(),
		bursts:   newBurstRed(),
		activity: newActivityRed(),
		apps:     newAppsRed(),
	}
	t.cfg = cfg.WithDefaults()
	t.cs = newCursorSet(t.cfg, t)
	return t
}

// Tables is its own event sink, fanning out to the reducers.

func (t *Tables) panicDone(id string, p *PanicEvent, relatedAll bool) {
	t.panics.panicDone(id, p, relatedAll)
	t.coal.panicDone(id, p, relatedAll)
	t.bursts.panicDone(id, p, relatedAll)
	t.activity.panicDone(id, p, relatedAll)
	t.apps.panicDone(id, p, relatedAll)
}

func (t *Tables) hlDone(id string, hl *HLEvent) {
	t.mtbf.hlDone(id, hl)
	t.coal.hlDone(id, hl)
}

func (t *Tables) rebootDone(id string, off float64)   { t.reboots.rebootDone(id, off) }
func (t *Tables) explainedDone(id string)             { t.reboots.explainedDone(id) }
func (t *Tables) uptimeDone(id string, hours float64) { t.mtbf.uptimeDone(id, hours) }

// Observe folds one record in.
func (t *Tables) Observe(deviceID string, r core.Record) { t.observe("Tables", deviceID, r) }

// AddDevice registers a device that may have zero records.
func (t *Tables) AddDevice(deviceID string) { t.addDevice("Tables", deviceID) }

// Merge absorbs a device-disjoint partial accumulator.
func (t *Tables) Merge(other Accumulator) error {
	o, ok := other.(*Tables)
	if !ok {
		return typeErr("Tables", other)
	}
	if err := t.mergeBase(&o.accBase, "Tables"); err != nil {
		return err
	}
	t.panics.merge(o.panics)
	t.reboots.merge(o.reboots)
	t.mtbf.merge(o.mtbf)
	t.coal.merge(o.coal)
	t.bursts.merge(o.bursts)
	t.activity.merge(o.activity)
	t.apps.merge(o.apps)
	return nil
}

// Snapshot returns the current epoch's *TablesSnapshot. On a live
// accumulator it deep-clones the pending cursor state, finishes the clone
// and renders from it — Observe may continue afterwards. On a sealed
// accumulator it returns the cached final snapshot.
func (t *Tables) Snapshot() any {
	if t.sealed {
		return t.Tables()
	}
	return t.epoch().Tables()
}

// Seal finalizes the accumulator destructively (the batch path): further
// Merges return ErrSealed and further Observes panic.
func (t *Tables) Seal() { t.Tables() }

// epoch deep-clones the live accumulator: reducers first, then the cursor
// set with the clone as its event sink.
func (t *Tables) epoch() *Tables {
	c := &Tables{
		panics:   t.panics.clone(),
		reboots:  t.reboots.clone(),
		mtbf:     t.mtbf.clone(),
		coal:     t.coal.clone(),
		bursts:   t.bursts.clone(),
		activity: t.activity.clone(),
		apps:     t.apps.clone(),
	}
	c.cfg = t.cfg
	c.cs = t.cs.clone(c)
	return c
}

// Tables finalizes (sealing the accumulator) and returns every table.
func (t *Tables) Tables() *TablesSnapshot {
	if t.snap != nil {
		return t.snap
	}
	devices := t.seal()
	hours := t.mtbf.hours(devices)
	t.snap = &TablesSnapshot{
		Config:                     t.cfg,
		Devices:                    devices,
		RebootDurations:            t.reboots.all(devices),
		ExplainedShutdowns:         t.reboots.explained,
		UserShutdowns:              t.mtbf.users,
		MTBF:                       MTBFOf(hours, t.mtbf.freezes, t.mtbf.selfs),
		PanicTable:                 t.panics.rows(),
		CategoryShare:              t.panics.shares(),
		Bursts:                     t.bursts.stats(),
		Coalescence:                t.coal.stats(),
		RelatedPercentAllShutdowns: t.coal.relatedAllPercent(),
		Activity:                   t.activity.rows(),
		RealTimeActivitySharePct:   t.activity.realTimeShare(),
		RunningApps:                t.apps.hist(),
		AppTable:                   t.apps.table(),
		TopApps:                    t.apps.top(0),
	}
	return t.snap
}

// Peek reports progress without sealing.
func (t *Tables) Peek() Peek {
	return Peek{
		Devices:  len(t.cs.cursors),
		Records:  t.cs.records,
		Panics:   t.panics.total,
		HLEvents: t.mtbf.freezes + t.mtbf.selfs + t.mtbf.users,
		Reboots:  t.reboots.count,
	}
}

// ---- Collect: the event-collecting accumulator behind the Study façade ----

// CollectSnapshot summarises a finished Collect.
type CollectSnapshot struct {
	Devices            []string
	Records            int
	Panics             int
	HLEvents           int
	Reboots            int
	ExplainedShutdowns int
	UptimeHours        float64
}

// Collect runs the device cursors and keeps the finalized events — it is
// the streaming builder behind analysis.Study (via analysis.FromCollect)
// and deliberately O(events), not O(bins): the façade's recomputable
// methods (window sweeps, refits) need the events themselves.
type Collect struct {
	accBase
	panics    map[string][]*PanicEvent
	hls       map[string][]*HLEvent
	durs      map[string][]float64
	uptime    map[string]float64
	explained int
	nPanics   int
	nHLs      int
	nReboots  int
}

// NewCollect builds an event-collecting accumulator.
func NewCollect(cfg Config) *Collect {
	c := &Collect{
		panics: make(map[string][]*PanicEvent),
		hls:    make(map[string][]*HLEvent),
		durs:   make(map[string][]float64),
		uptime: make(map[string]float64),
	}
	c.cfg = cfg.WithDefaults()
	c.cs = newCursorSet(c.cfg, c)
	return c
}

func (c *Collect) panicDone(id string, p *PanicEvent, _ bool) {
	c.panics[id] = append(c.panics[id], p)
	c.nPanics++
}

func (c *Collect) hlDone(id string, hl *HLEvent) {
	c.hls[id] = append(c.hls[id], hl)
	c.nHLs++
}

func (c *Collect) rebootDone(id string, off float64) {
	c.durs[id] = append(c.durs[id], off)
	c.nReboots++
}

func (c *Collect) explainedDone(string) { c.explained++ }

func (c *Collect) uptimeDone(id string, hours float64) { c.uptime[id] = hours }

// Observe folds one record in.
func (c *Collect) Observe(deviceID string, r core.Record) { c.observe("Collect", deviceID, r) }

// AddDevice registers a device that may have zero records.
func (c *Collect) AddDevice(deviceID string) { c.addDevice("Collect", deviceID) }

// Merge absorbs a device-disjoint partial accumulator.
func (c *Collect) Merge(other Accumulator) error {
	o, ok := other.(*Collect)
	if !ok {
		return typeErr("Collect", other)
	}
	if err := c.mergeBase(&o.accBase, "Collect"); err != nil {
		return err
	}
	for id, v := range o.panics {
		c.panics[id] = v
	}
	for id, v := range o.hls {
		c.hls[id] = v
	}
	for id, v := range o.durs {
		c.durs[id] = v
	}
	for id, v := range o.uptime {
		c.uptime[id] = v
	}
	c.explained += o.explained
	c.nPanics += o.nPanics
	c.nHLs += o.nHLs
	c.nReboots += o.nReboots
	return nil
}

// Finish seals the accumulator and flushes all pending cursor state so the
// event accessors are complete. Idempotent.
func (c *Collect) Finish() {
	c.sealed = true
	c.cs.finish()
}

// Seal is Finish: the destructive seal of the batch path.
func (c *Collect) Seal() { c.Finish() }

// epoch deep-clones the live accumulator. Finalized events are immutable
// once emitted, so the event slices copy their headers but share the
// events; the pending cursor graph is deep-copied.
func (c *Collect) epoch() *Collect {
	o := NewCollect(c.cfg)
	for id, v := range c.panics {
		o.panics[id] = slices.Clone(v)
	}
	for id, v := range c.hls {
		o.hls[id] = slices.Clone(v)
	}
	for id, v := range c.durs {
		o.durs[id] = slices.Clone(v)
	}
	for id, v := range c.uptime {
		o.uptime[id] = v
	}
	o.explained = c.explained
	o.nPanics = c.nPanics
	o.nHLs = c.nHLs
	o.nReboots = c.nReboots
	o.cs = c.cs.clone(o)
	return o
}

// Snapshot returns the current epoch's *CollectSnapshot; on a live
// accumulator the pending state is finished in a deep copy, so Observe may
// continue afterwards.
func (c *Collect) Snapshot() any {
	cc := c
	if !c.sealed {
		cc = c.epoch()
	}
	cc.Finish()
	devices := cc.cs.devices()
	var hours float64
	for _, id := range devices {
		hours += cc.uptime[id]
	}
	return &CollectSnapshot{
		Devices:            devices,
		Records:            cc.cs.records,
		Panics:             cc.nPanics,
		HLEvents:           cc.nHLs,
		Reboots:            cc.nReboots,
		ExplainedShutdowns: cc.explained,
		UptimeHours:        hours,
	}
}

// Peek reports progress without sealing.
func (c *Collect) Peek() Peek {
	return Peek{
		Devices:  len(c.cs.cursors),
		Records:  c.cs.records,
		Panics:   c.nPanics,
		HLEvents: c.nHLs,
		Reboots:  c.nReboots,
	}
}

// Config returns the thresholds in use (defaults applied).
func (c *Collect) Config() Config { return c.cfg }

// Devices returns the observed device IDs, sorted. Call Finish first.
func (c *Collect) Devices() []string { return c.cs.devices() }

// PanicsOf returns one device's finalized panics, time-ordered. The slice
// is owned by the caller after Finish; Collect never mutates it again.
func (c *Collect) PanicsOf(deviceID string) []*PanicEvent { return c.panics[deviceID] }

// HLEventsOf returns one device's finalized HL events, time-ordered.
func (c *Collect) HLEventsOf(deviceID string) []*HLEvent { return c.hls[deviceID] }

// RebootDurationsOf returns one device's reboot durations, record-ordered.
func (c *Collect) RebootDurationsOf(deviceID string) []float64 { return c.durs[deviceID] }

// ExplainedShutdowns returns the count of low-battery and logger-off boots.
func (c *Collect) ExplainedShutdowns() int { return c.explained }

// UptimeOf returns one device's uptime estimate in hours.
func (c *Collect) UptimeOf(deviceID string) float64 { return c.uptime[deviceID] }

// ---- Monitor: order-insensitive live counters ----

// MonitorSnapshot summarises what a Monitor saw.
type MonitorSnapshot struct {
	Devices int
	Records int
	ByKind  map[string]int
}

// Monitor counts records without any per-device ordering assumptions: safe
// to feed from the collection server's live record tap, where records of
// one device arrive as uploads land (out of order across devices, and
// again when a crash-recovered server replays an upload — a restarted
// incarnation's acked ledger starts empty, so OnRecord delivery is
// at-least-once). Monitor deduplicates by the record's serialized form per
// device, so replays across a checkpoint/resume or crash/restart boundary
// never double-count; the cost is O(distinct records) memory, the price of
// exact counts on an at-least-once tap. Monitor is the one accumulator
// that is safe for concurrent Observe calls.
type Monitor struct {
	mu      sync.Mutex
	devices map[string]map[string]string // device -> serialized record -> kind
	records int
	byKind  map[string]int
	sealed  bool
	snap    *MonitorSnapshot
}

// NewMonitor builds a live-tap counter.
func NewMonitor() *Monitor {
	return &Monitor{devices: make(map[string]map[string]string), byKind: make(map[string]int)}
}

// Observe counts one record; a record already seen for this device (an
// at-least-once replay) is ignored.
func (m *Monitor) Observe(deviceID string, r core.Record) {
	key := string(core.AppendRecordLine(nil, r))
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sealed {
		panic("stream: Monitor.Observe after Seal")
	}
	m.insertLocked(deviceID, key, r.Kind)
}

func (m *Monitor) insertLocked(deviceID, key, kind string) {
	seen := m.devices[deviceID]
	if seen == nil {
		seen = make(map[string]string)
		m.devices[deviceID] = seen
	}
	if _, dup := seen[key]; dup {
		return
	}
	seen[key] = kind
	m.records++
	m.byKind[kind]++
}

// Merge absorbs another Monitor. Device overlap is allowed: the seen sets
// union, so a record observed by both sides still counts once.
func (m *Monitor) Merge(other Accumulator) error {
	o, ok := other.(*Monitor)
	if !ok {
		return typeErr("Monitor", other)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	o.mu.Lock()
	defer o.mu.Unlock()
	if m.sealed || o.sealed {
		return fmt.Errorf("%w: Monitor", ErrSealed)
	}
	for id, seen := range o.devices {
		for key, kind := range seen {
			m.insertLocked(id, key, kind)
		}
	}
	o.sealed = true
	return nil
}

// Snapshot returns the *MonitorSnapshot for the current epoch. The monitor
// is naturally re-snapshottable — its state is a fold over a set — so a
// live monitor computes a fresh snapshot without sealing; a sealed monitor
// returns the cached final one.
func (m *Monitor) Snapshot() any {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.snap != nil {
		return m.snap
	}
	byKind := make(map[string]int, len(m.byKind))
	for k, n := range m.byKind {
		byKind[k] = n
	}
	snap := &MonitorSnapshot{Devices: len(m.devices), Records: m.records, ByKind: byKind}
	if m.sealed {
		m.snap = snap
	}
	return snap
}

// Seal freezes the monitor: further Observes panic, further Merges return
// ErrSealed, and Snapshot returns the cached final counts.
func (m *Monitor) Seal() {
	m.mu.Lock()
	m.sealed = true
	m.mu.Unlock()
	_ = m.Snapshot()
}

// Peek reports live progress without sealing.
func (m *Monitor) Peek() Peek {
	m.mu.Lock()
	defer m.mu.Unlock()
	return Peek{Devices: len(m.devices), Records: m.records, Panics: m.byKind[core.KindPanic]}
}

// ---- Single-experiment accumulators ----

// PanicTableAcc streams Table 2 (panic frequencies) alone.
type PanicTableAcc struct {
	accBase
	red  *panicRed
	snap []PanicRow
}

// NewPanicTableAcc builds the Table 2 accumulator.
func NewPanicTableAcc(cfg Config) *PanicTableAcc {
	a := &PanicTableAcc{red: newPanicRed()}
	a.cfg = cfg.WithDefaults()
	a.cs = newCursorSet(a.cfg, a.red)
	return a
}

// Observe folds one record in.
func (a *PanicTableAcc) Observe(deviceID string, r core.Record) {
	a.observe("PanicTableAcc", deviceID, r)
}

// Merge absorbs a device-disjoint partial accumulator.
func (a *PanicTableAcc) Merge(other Accumulator) error {
	o, ok := other.(*PanicTableAcc)
	if !ok {
		return typeErr("PanicTableAcc", other)
	}
	if err := a.mergeBase(&o.accBase, "PanicTableAcc"); err != nil {
		return err
	}
	a.red.merge(o.red)
	return nil
}

// Snapshot returns the current epoch's []PanicRow without sealing a live
// accumulator; a sealed one returns the cached final rows.
func (a *PanicTableAcc) Snapshot() any {
	if a.sealed {
		return a.Rows()
	}
	c := &PanicTableAcc{red: a.red.clone()}
	c.cfg = a.cfg
	c.cs = a.cs.clone(c.red)
	return c.Rows()
}

// Seal finalizes the accumulator destructively (the batch path).
func (a *PanicTableAcc) Seal() { a.Rows() }

// Rows finalizes (sealing the accumulator) and returns Table 2.
func (a *PanicTableAcc) Rows() []PanicRow {
	if a.snap == nil {
		a.seal()
		a.snap = a.red.rows()
	}
	return a.snap
}

// RebootAcc streams Figure 2's reboot durations and the explained-shutdown
// count alone.
type RebootAcc struct {
	accBase
	red  *rebootRed
	snap *RebootSnapshot
}

// RebootSnapshot is RebootAcc's result.
type RebootSnapshot struct {
	Durations          []float64
	ExplainedShutdowns int
}

// NewRebootAcc builds the Figure 2 accumulator.
func NewRebootAcc(cfg Config) *RebootAcc {
	a := &RebootAcc{red: newRebootRed()}
	a.cfg = cfg.WithDefaults()
	a.cs = newCursorSet(a.cfg, a.red)
	return a
}

// Observe folds one record in.
func (a *RebootAcc) Observe(deviceID string, r core.Record) { a.observe("RebootAcc", deviceID, r) }

// Merge absorbs a device-disjoint partial accumulator.
func (a *RebootAcc) Merge(other Accumulator) error {
	o, ok := other.(*RebootAcc)
	if !ok {
		return typeErr("RebootAcc", other)
	}
	if err := a.mergeBase(&o.accBase, "RebootAcc"); err != nil {
		return err
	}
	a.red.merge(o.red)
	return nil
}

// Snapshot returns the current epoch's *RebootSnapshot without sealing a
// live accumulator; a sealed one returns the cached final snapshot.
func (a *RebootAcc) Snapshot() any {
	if a.sealed {
		return a.finalize()
	}
	c := &RebootAcc{red: a.red.clone()}
	c.cfg = a.cfg
	c.cs = a.cs.clone(c.red)
	return c.finalize()
}

// Seal finalizes the accumulator destructively (the batch path).
func (a *RebootAcc) Seal() { a.finalize() }

func (a *RebootAcc) finalize() *RebootSnapshot {
	if a.snap == nil {
		devices := a.seal()
		a.snap = &RebootSnapshot{Durations: a.red.all(devices), ExplainedShutdowns: a.red.explained}
	}
	return a.snap
}

// MTBFAcc streams the section 6 headline alone.
type MTBFAcc struct {
	accBase
	red  *mtbfRed
	snap *MTBFReport
}

// NewMTBFAcc builds the MTBF/uptime accumulator.
func NewMTBFAcc(cfg Config) *MTBFAcc {
	a := &MTBFAcc{red: newMTBFRed()}
	a.cfg = cfg.WithDefaults()
	a.cs = newCursorSet(a.cfg, a.red)
	return a
}

// Observe folds one record in.
func (a *MTBFAcc) Observe(deviceID string, r core.Record) { a.observe("MTBFAcc", deviceID, r) }

// Merge absorbs a device-disjoint partial accumulator.
func (a *MTBFAcc) Merge(other Accumulator) error {
	o, ok := other.(*MTBFAcc)
	if !ok {
		return typeErr("MTBFAcc", other)
	}
	if err := a.mergeBase(&o.accBase, "MTBFAcc"); err != nil {
		return err
	}
	a.red.merge(o.red)
	return nil
}

// Snapshot returns the current epoch's MTBFReport without sealing a live
// accumulator; a sealed one returns the cached final report.
func (a *MTBFAcc) Snapshot() any {
	if a.sealed {
		return a.Report()
	}
	c := &MTBFAcc{red: a.red.clone()}
	c.cfg = a.cfg
	c.cs = a.cs.clone(c.red)
	return c.Report()
}

// Seal finalizes the accumulator destructively (the batch path).
func (a *MTBFAcc) Seal() { a.Report() }

// Report finalizes (sealing the accumulator) and returns the headline.
func (a *MTBFAcc) Report() MTBFReport {
	if a.snap == nil {
		devices := a.seal()
		rep := MTBFOf(a.red.hours(devices), a.red.freezes, a.red.selfs)
		a.snap = &rep
	}
	return *a.snap
}

// CoalescenceAcc streams Figure 5 alone.
type CoalescenceAcc struct {
	accBase
	red  *coalRed
	snap *CoalescenceStats
}

// NewCoalescenceAcc builds the Figure 5 accumulator.
func NewCoalescenceAcc(cfg Config) *CoalescenceAcc {
	a := &CoalescenceAcc{red: newCoalRed()}
	a.cfg = cfg.WithDefaults()
	a.cs = newCursorSet(a.cfg, a.red)
	return a
}

// Observe folds one record in.
func (a *CoalescenceAcc) Observe(deviceID string, r core.Record) {
	a.observe("CoalescenceAcc", deviceID, r)
}

// Merge absorbs a device-disjoint partial accumulator.
func (a *CoalescenceAcc) Merge(other Accumulator) error {
	o, ok := other.(*CoalescenceAcc)
	if !ok {
		return typeErr("CoalescenceAcc", other)
	}
	if err := a.mergeBase(&o.accBase, "CoalescenceAcc"); err != nil {
		return err
	}
	a.red.merge(o.red)
	return nil
}

// Snapshot returns the current epoch's CoalescenceStats without sealing a
// live accumulator; a sealed one returns the cached final stats.
func (a *CoalescenceAcc) Snapshot() any {
	if a.sealed {
		return a.Stats()
	}
	c := &CoalescenceAcc{red: a.red.clone()}
	c.cfg = a.cfg
	c.cs = a.cs.clone(c.red)
	return c.Stats()
}

// Seal finalizes the accumulator destructively (the batch path).
func (a *CoalescenceAcc) Seal() { a.Stats() }

// Stats finalizes (sealing the accumulator) and returns Figure 5's data.
func (a *CoalescenceAcc) Stats() CoalescenceStats {
	if a.snap == nil {
		a.seal()
		st := a.red.stats()
		a.snap = &st
	}
	return *a.snap
}

// BurstAcc streams Figure 3 alone.
type BurstAcc struct {
	accBase
	red  *burstRed
	snap *BurstStats
}

// NewBurstAcc builds the Figure 3 accumulator.
func NewBurstAcc(cfg Config) *BurstAcc {
	a := &BurstAcc{red: newBurstRed()}
	a.cfg = cfg.WithDefaults()
	a.cs = newCursorSet(a.cfg, a.red)
	return a
}

// Observe folds one record in.
func (a *BurstAcc) Observe(deviceID string, r core.Record) { a.observe("BurstAcc", deviceID, r) }

// Merge absorbs a device-disjoint partial accumulator.
func (a *BurstAcc) Merge(other Accumulator) error {
	o, ok := other.(*BurstAcc)
	if !ok {
		return typeErr("BurstAcc", other)
	}
	if err := a.mergeBase(&o.accBase, "BurstAcc"); err != nil {
		return err
	}
	a.red.merge(o.red)
	return nil
}

// Snapshot returns the current epoch's BurstStats without sealing a live
// accumulator; a sealed one returns the cached final stats.
func (a *BurstAcc) Snapshot() any {
	if a.sealed {
		return a.Stats()
	}
	c := &BurstAcc{red: a.red.clone()}
	c.cfg = a.cfg
	c.cs = a.cs.clone(c.red)
	return c.Stats()
}

// Seal finalizes the accumulator destructively (the batch path).
func (a *BurstAcc) Seal() { a.Stats() }

// Stats finalizes (sealing the accumulator) and returns Figure 3's data.
func (a *BurstAcc) Stats() BurstStats {
	if a.snap == nil {
		a.seal()
		st := a.red.stats()
		a.snap = &st
	}
	return *a.snap
}

// ActivityAcc streams Table 3 alone.
type ActivityAcc struct {
	accBase
	red  *activityRed
	snap []ActivityRow
}

// NewActivityAcc builds the Table 3 accumulator.
func NewActivityAcc(cfg Config) *ActivityAcc {
	a := &ActivityAcc{red: newActivityRed()}
	a.cfg = cfg.WithDefaults()
	a.cs = newCursorSet(a.cfg, a.red)
	return a
}

// Observe folds one record in.
func (a *ActivityAcc) Observe(deviceID string, r core.Record) {
	a.observe("ActivityAcc", deviceID, r)
}

// Merge absorbs a device-disjoint partial accumulator.
func (a *ActivityAcc) Merge(other Accumulator) error {
	o, ok := other.(*ActivityAcc)
	if !ok {
		return typeErr("ActivityAcc", other)
	}
	if err := a.mergeBase(&o.accBase, "ActivityAcc"); err != nil {
		return err
	}
	a.red.merge(o.red)
	return nil
}

// Snapshot returns the current epoch's []ActivityRow without sealing a
// live accumulator; a sealed one returns the cached final rows.
func (a *ActivityAcc) Snapshot() any {
	if a.sealed {
		return a.Rows()
	}
	c := &ActivityAcc{red: a.red.clone()}
	c.cfg = a.cfg
	c.cs = a.cs.clone(c.red)
	return c.Rows()
}

// Seal finalizes the accumulator destructively (the batch path).
func (a *ActivityAcc) Seal() { a.Rows() }

// Rows finalizes (sealing the accumulator) and returns Table 3.
func (a *ActivityAcc) Rows() []ActivityRow {
	if a.snap == nil {
		a.seal()
		a.snap = a.red.rows()
	}
	return a.snap
}

// AppsAcc streams Figure 6 and Table 4 alone.
type AppsAcc struct {
	accBase
	red  *appsRed
	snap *AppsSnapshot
}

// AppsSnapshot is AppsAcc's result.
type AppsSnapshot struct {
	RunningApps map[int]int
	AppTable    []AppPanicRow
	TopApps     []AppShare
}

// NewAppsAcc builds the Figure 6 / Table 4 accumulator.
func NewAppsAcc(cfg Config) *AppsAcc {
	a := &AppsAcc{red: newAppsRed()}
	a.cfg = cfg.WithDefaults()
	a.cs = newCursorSet(a.cfg, a.red)
	return a
}

// Observe folds one record in.
func (a *AppsAcc) Observe(deviceID string, r core.Record) { a.observe("AppsAcc", deviceID, r) }

// Merge absorbs a device-disjoint partial accumulator.
func (a *AppsAcc) Merge(other Accumulator) error {
	o, ok := other.(*AppsAcc)
	if !ok {
		return typeErr("AppsAcc", other)
	}
	if err := a.mergeBase(&o.accBase, "AppsAcc"); err != nil {
		return err
	}
	a.red.merge(o.red)
	return nil
}

// Snapshot returns the current epoch's *AppsSnapshot without sealing a
// live accumulator; a sealed one returns the cached final snapshot.
func (a *AppsAcc) Snapshot() any {
	if a.sealed {
		return a.finalize()
	}
	c := &AppsAcc{red: a.red.clone()}
	c.cfg = a.cfg
	c.cs = a.cs.clone(c.red)
	return c.finalize()
}

// Seal finalizes the accumulator destructively (the batch path).
func (a *AppsAcc) Seal() { a.finalize() }

func (a *AppsAcc) finalize() *AppsSnapshot {
	if a.snap == nil {
		a.seal()
		a.snap = &AppsSnapshot{RunningApps: a.red.hist(), AppTable: a.red.table(), TopApps: a.red.top(0)}
	}
	return a.snap
}
