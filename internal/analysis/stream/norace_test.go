//go:build !race

package stream_test

// raceEnabled gates allocation-count assertions, which the race detector's
// instrumentation distorts.
const raceEnabled = false
