//go:build !race

package symfail

// raceEnabled gates allocation-count assertions, which the race detector's
// instrumentation distorts.
const raceEnabled = false
