package collect

import (
	"bytes"
	"testing"

	"symfail/internal/sim"
)

func TestCrashStoreAppendSyncRead(t *testing.T) {
	s := NewCrashStore(nil)
	s.Append("f", []byte("hello "))
	s.Append("f", []byte("world"))
	if got := s.Read("f"); string(got) != "hello world" {
		t.Errorf("Read before sync = %q, want the full logical content", got)
	}
	if got := s.Size("f"); got != 11 {
		t.Errorf("Size = %d, want 11", got)
	}
	s.Sync("f")
	s.Append("f", []byte("!!!"))
	if got := s.Read("f"); string(got) != "hello world!!!" {
		t.Errorf("Read after sync+append = %q", got)
	}
	// A nil-RNG crash loses the whole un-synced tail, keeps the synced region.
	s.Crash()
	if got := s.Read("f"); string(got) != "hello world" {
		t.Errorf("after crash = %q, want only the synced region", got)
	}
	if s.Read("missing") != nil || s.Size("missing") != 0 {
		t.Error("missing file must read as nil/empty")
	}
}

func TestCrashStoreTornTailIsStrictPrefixAndDeterministic(t *testing.T) {
	run := func(seed uint64) []byte {
		s := NewCrashStore(sim.NewRand(seed))
		s.Append("f", []byte("synced region"))
		s.Sync("f")
		s.Append("f", []byte("this tail will tear"))
		s.Crash()
		return s.Read("f")
	}
	a, b := run(7), run(7)
	if !bytes.Equal(a, b) {
		t.Errorf("same seed, different torn tails: %q vs %q", a, b)
	}
	if !bytes.HasPrefix(a, []byte("synced region")) {
		t.Fatalf("crash damaged the synced region: %q", a)
	}
	tail := a[len("synced region"):]
	if len(tail) >= len("this tail will tear") {
		t.Errorf("torn tail kept %d bytes of %d — must be a strict prefix",
			len(tail), len("this tail will tear"))
	}
	if !bytes.HasPrefix([]byte("this tail will tear"), tail) {
		t.Errorf("kept tail %q is not a prefix of what was written", tail)
	}
}

func TestCrashStoreStagedReplacementIsAllOrNothing(t *testing.T) {
	s := NewCrashStore(nil)
	s.Append("f", []byte("old content"))
	s.Sync("f")

	// Staged but not synced: readable now, gone after a crash.
	s.WriteFile("f", []byte("NEW"))
	if got := s.Read("f"); string(got) != "NEW" {
		t.Errorf("Read of staged replacement = %q", got)
	}
	s.Crash()
	if got := s.Read("f"); string(got) != "old content" {
		t.Errorf("crash during staged replacement left %q, want the old synced content", got)
	}

	// Staged and synced: the replacement is durable.
	s.WriteFile("f", []byte("NEW2"))
	s.Sync("f")
	s.Crash()
	if got := s.Read("f"); string(got) != "NEW2" {
		t.Errorf("synced replacement lost in crash: %q", got)
	}

	// Appends after WriteFile extend the staged copy, and die with it.
	s.WriteFile("f", []byte("base"))
	s.Append("f", []byte("+more"))
	if got := s.Read("f"); string(got) != "base+more" {
		t.Errorf("append onto staged replacement = %q", got)
	}
	s.Crash()
	if got := s.Read("f"); string(got) != "NEW2" {
		t.Errorf("crash must drop the staged copy and its appends, got %q", got)
	}
}

func TestCrashStoreRenameRemoveDurable(t *testing.T) {
	s := NewCrashStore(nil)
	s.Append("tmp", []byte("snapshot bytes"))
	s.Sync("tmp")
	s.Append("target", []byte("old snapshot"))
	s.Sync("target")

	s.Rename("tmp", "target")
	s.Crash() // metadata ops are journalled: the rename survives
	if got := s.Read("target"); string(got) != "snapshot bytes" {
		t.Errorf("after rename+crash target = %q", got)
	}
	if s.Read("tmp") != nil {
		t.Error("old name still present after rename")
	}

	s.Remove("target")
	s.Crash()
	if s.Read("target") != nil {
		t.Error("removed file came back after a crash")
	}
	s.Rename("missing", "other") // renaming a missing file is a no-op
	if names := s.Names(); len(names) != 0 {
		t.Errorf("store should be empty, has %v", names)
	}
}
