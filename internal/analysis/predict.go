package analysis

import (
	"sort"
	"time"
)

// Failure prediction: the paper's Figure 5 observation — system panics
// usually precede freezes and self-shutdowns — suggests an online
// early-warning policy: raise an alarm when an alarming panic category is
// seen, predicting a high-level event within a horizon. This file
// evaluates such policies against the collected data, in the spirit of the
// failure-prediction literature the paper cites (BlueGene/L prediction
// models [11]).

// PredictorConfig is one alarm policy.
type PredictorConfig struct {
	// AlarmCategories are the panic categories that raise an alarm; empty
	// means every panic does.
	AlarmCategories []string
	// Horizon is how far ahead an alarm claims a failure will happen.
	Horizon time.Duration
	// LeadSlack tolerates the freeze-timestamp skew: a freeze's HL time is
	// the LAST heartbeat record, which can precede the panic by up to one
	// heartbeat period. An alarm still counts when the HL event's recorded
	// time is at most LeadSlack before the panic.
	LeadSlack time.Duration
}

// DefaultPredictorConfig alarms on the system-panic categories Figure 5
// singles out as failure-coupled, with a ten-minute horizon.
func DefaultPredictorConfig() PredictorConfig {
	return PredictorConfig{
		AlarmCategories: []string{"KERN-EXEC", "E32USER-CBase", "USER", "ViewSrv", "MSGS Client", "Phone.app"},
		Horizon:         10 * time.Minute,
		LeadSlack:       5 * time.Minute,
	}
}

// PredictionReport scores a policy.
type PredictionReport struct {
	Alarms        int // alarms raised
	TruePositives int // alarms followed by an HL event within the horizon
	HLTotal       int // high-level events in the data
	HLPredicted   int // HL events preceded by at least one alarm in the horizon
	Precision     float64
	Recall        float64
	// MedianWarningSeconds is the lead time the policy buys on predicted
	// events.
	MedianWarningSeconds float64
}

// EvaluatePredictor replays the panic stream against the high-level events
// and scores the alarm policy.
func (s *Study) EvaluatePredictor(cfg PredictorConfig) PredictionReport {
	alarmed := make(map[string]bool, len(cfg.AlarmCategories))
	for _, c := range cfg.AlarmCategories {
		alarmed[c] = true
	}
	isAlarm := func(p *PanicEvent) bool {
		if len(cfg.AlarmCategories) == 0 {
			return true
		}
		return alarmed[p.Category]
	}

	var rep PredictionReport
	var warnings []float64
	for _, id := range s.deviceIDs {
		var hls []*HLEvent
		for _, hl := range s.hlByDevice[id] {
			if hl.Kind == HLFreeze || hl.Kind == HLSelfShutdown {
				hls = append(hls, hl)
			}
		}
		rep.HLTotal += len(hls)
		predicted := make(map[*HLEvent]bool)
		for _, p := range s.panicsByDevice[id] {
			if !isAlarm(p) {
				continue
			}
			rep.Alarms++
			hit := false
			for _, hl := range hls {
				lead := hl.Time.Sub(p.Time)
				if lead >= -cfg.LeadSlack && lead <= cfg.Horizon {
					hit = true
					if !predicted[hl] {
						predicted[hl] = true
						warnings = append(warnings, lead.Seconds())
					}
				}
			}
			if hit {
				rep.TruePositives++
			}
		}
		rep.HLPredicted += len(predicted)
	}
	if rep.Alarms > 0 {
		rep.Precision = float64(rep.TruePositives) / float64(rep.Alarms)
	}
	if rep.HLTotal > 0 {
		rep.Recall = float64(rep.HLPredicted) / float64(rep.HLTotal)
	}
	if len(warnings) > 0 {
		sort.Float64s(warnings)
		rep.MedianWarningSeconds = warnings[len(warnings)/2]
	}
	return rep
}

// PredictorSweep evaluates the policy across horizons (the
// precision/recall trade-off curve).
func (s *Study) PredictorSweep(categories []string, horizons []time.Duration) []PredictionReport {
	out := make([]PredictionReport, 0, len(horizons))
	for _, h := range horizons {
		out = append(out, s.EvaluatePredictor(PredictorConfig{
			AlarmCategories: categories,
			Horizon:         h,
			LeadSlack:       DefaultPredictorConfig().LeadSlack,
		}))
	}
	return out
}
