package phone

import (
	"time"

	"symfail/internal/sim"
	"symfail/internal/symbos"
)

// meanInterval converts an hourly rate into a mean inter-arrival duration.
// Tiny rates would overflow time.Duration (int64 nanoseconds caps at ~292
// years); anything rarer than once per ~114 years is "never" within a
// study, reported as ok=false.
func meanInterval(ratePerHour float64) (time.Duration, bool) {
	if ratePerHour <= 0 {
		return 0, false
	}
	hours := 1 / ratePerHour
	const maxHours = 1e6
	if hours > maxHours {
		return 0, false
	}
	return time.Duration(hours * float64(time.Hour)), true
}

// startWorkload schedules everything that happens while the phone is on:
// user activities, the nightly power-off decision, deliberate daytime power
// cycles, battery drain, spontaneous failures and panic opportunities.
// Every scheduled callback is guarded by the boot generation so that events
// queued before a shutdown are inert afterwards.
func (d *Device) startWorkload() {
	gen := d.bootGen

	d.scheduleNextActivity(gen)
	d.scheduleNightCheck(gen)
	d.scheduleDayOff(gen)
	d.scheduleEveningCharge(gen)
	d.scheduleBatteryTick(gen)
	d.scheduleSpontaneous(gen, true)
	d.scheduleSpontaneous(gen, false)
	d.scheduleOutputFailures(gen)
	d.schedulePanicOpportunity(gen)
}

// live reports whether a callback scheduled in boot generation gen should
// still run.
func (d *Device) live(gen int) bool {
	return d.state == StateOn && d.bootGen == gen && !d.finalized
}

// weekend reports whether the current simulated day is a weekend day
// (days 5 and 6 of each 7-day week).
func (d *Device) weekend() bool {
	dow := d.eng.Now().Day() % 7
	return dow == 5 || dow == 6
}

// wakeHour returns today's wake hour (weekends start later).
func (d *Device) wakeHour() float64 {
	if d.weekend() {
		return d.cfg.WakeHour + d.cfg.WeekendWakeDelayHours
	}
	return d.cfg.WakeHour
}

// awake reports whether the user is in their waking window.
func (d *Device) awake() bool {
	h := d.eng.Now().TimeOfDay().Hours()
	return h >= d.wakeHour() && h < d.cfg.SleepHour
}

// untilWake returns the delay to the next waking window start.
func (d *Device) untilWake() time.Duration {
	tod := d.eng.Now().TimeOfDay()
	wake := time.Duration(d.wakeHour() * float64(time.Hour))
	if tod < wake {
		return wake - tod
	}
	return 24*time.Hour - tod + wake
}

// User activities ------------------------------------------------------

func (d *Device) scheduleNextActivity(gen int) {
	wakingHours := d.cfg.SleepHour - d.cfg.WakeHour
	rate := d.cfg.ActivitiesPerDay
	if d.weekend() && d.cfg.WeekendActivityFactor > 0 {
		rate *= d.cfg.WeekendActivityFactor
	}
	meanGap := time.Duration(wakingHours / rate * float64(time.Hour))
	delay := d.rng.ExpDuration(meanGap)
	if !d.awake() {
		delay = d.untilWake() + d.rng.ExpDuration(meanGap/2)
	}
	d.eng.After(delay, "activity "+d.id, func() {
		if !d.live(gen) {
			return
		}
		if d.awake() && d.currentActivity == ActIdle {
			d.beginActivity(gen, d.pickActivity())
		}
		d.scheduleNextActivity(gen)
	})
}

// pickActivity draws an activity class from the configured mix.
func (d *Device) pickActivity() Activity {
	kinds := make([]Activity, 0, len(d.cfg.ActivityMix))
	weights := make([]float64, 0, len(d.cfg.ActivityMix))
	// Deterministic order: iterate a fixed list, not the map.
	for _, a := range allActivities {
		if w, ok := d.cfg.ActivityMix[a]; ok && w > 0 {
			kinds = append(kinds, a)
			weights = append(weights, w)
		}
	}
	idx := d.rng.WeightedIndex(weights)
	if idx < 0 {
		return ActIdle
	}
	return kinds[idx]
}

// allActivities fixes the iteration order over activity classes.
var allActivities = []Activity{
	ActVoiceCall, ActMessage, ActContacts, ActCamera, ActBluetooth,
	ActNav, ActBrowseFS, ActClock, ActAudio,
}

// beginActivity opens the activity's applications, exercises their healthy
// code paths, and schedules the end of the activity.
func (d *Device) beginActivity(gen int, act Activity) {
	d.currentActivity = act
	d.activityToken++
	token := d.activityToken
	apps := activityApps[act]
	// The foreground application always opens; companion applications
	// (e.g. the call Log next to Telephone) only sometimes — on a real
	// phone the user does not open the log for every call. This keeps the
	// mode of Figure 6 at one application.
	d.LaunchApp(apps[0])
	for _, name := range apps[1:] {
		if d.rng.Bool(0.32) {
			d.LaunchApp(name)
		}
	}
	// Only voice calls and messages are registered on the Symbian
	// Database Log Server (Table 3: "the only ones registered").
	if act == ActVoiceCall || act == ActMessage {
		d.recordActivityStart(act)
	}
	if act == ActVoiceCall {
		d.props.Set(symbos.PropCallState, 1)
	}
	if a := d.apps[apps[0]]; a != nil && a.Alive() {
		a.perform(act)
	}
	// Battery: activities drain extra charge.
	d.battery -= 0.002
	median := d.cfg.ActivityMedianDuration[act]
	if median <= 0 {
		median = time.Minute
	}
	dur := d.rng.LogNormalDuration(median, d.cfg.ActivitySigma)
	d.eng.After(dur, "activity-end "+d.id, func() {
		if !d.live(gen) || d.activityToken != token {
			return
		}
		d.finishActivity(act)
	})
}

// finishActivity closes the database-log record and the activity's
// applications (each may linger in the background).
func (d *Device) finishActivity(act Activity) {
	if act == ActVoiceCall || act == ActMessage {
		d.recordActivityEnd(act)
	}
	if act == ActVoiceCall {
		d.props.Set(symbos.PropCallState, 0)
	}
	for _, name := range activityApps[act] {
		if !d.rng.Bool(d.cfg.LingerProb) {
			d.CloseApp(name)
		}
	}
	d.currentActivity = ActIdle
}

// endCurrentActivity force-closes the activity record on power loss.
func (d *Device) endCurrentActivity() {
	if d.currentActivity == ActVoiceCall || d.currentActivity == ActMessage {
		d.recordActivityEnd(d.currentActivity)
	}
	d.currentActivity = ActIdle
	d.activityToken++
}

// Night and day power cycles -------------------------------------------

func (d *Device) scheduleNightCheck(gen int) {
	tod := d.eng.Now().TimeOfDay()
	sleep := time.Duration(d.cfg.SleepHour * float64(time.Hour))
	delay := sleep - tod
	if delay <= 0 {
		delay += 24 * time.Hour
	}
	delay += d.rng.ExpDuration(10 * time.Minute)
	d.eng.After(delay, "night "+d.id, func() {
		if !d.live(gen) {
			return
		}
		if d.rng.Bool(d.cfg.NightOffProb) {
			off := d.cfg.NightOffDuration +
				time.Duration(d.rng.Norm(0, float64(d.cfg.NightOffJitter)))
			if off < time.Hour {
				off = time.Hour
			}
			d.oracle.record(TruthUserShutdown, d.eng.Now(), "night", d.currentActivity)
			d.Shutdown(ReasonUser, off)
			return
		}
		d.scheduleNightCheck(gen)
	})
}

func (d *Device) scheduleDayOff(gen int) {
	mean, ok := meanInterval(d.cfg.DayOffPerHour)
	if !ok {
		return
	}
	d.eng.After(d.rng.ExpDuration(mean), "dayoff "+d.id, func() {
		if !d.live(gen) {
			return
		}
		if !d.awake() {
			d.scheduleDayOff(gen)
			return
		}
		off := d.rng.LogNormalDuration(d.cfg.DayOffMedian, d.cfg.DayOffSigma)
		if d.rng.Bool(d.cfg.LoggerOffProb) {
			d.oracle.record(TruthLoggerOff, d.eng.Now(), "user stopped logger", d.currentActivity)
			d.Shutdown(ReasonLoggerOff, off)
			return
		}
		d.oracle.record(TruthUserShutdown, d.eng.Now(), "day", d.currentActivity)
		d.Shutdown(ReasonUser, off)
	})
}

// Battery ----------------------------------------------------------------

func (d *Device) scheduleEveningCharge(gen int) {
	tod := d.eng.Now().TimeOfDay()
	evening := 21 * time.Hour
	delay := evening - tod
	if delay <= 0 {
		delay += 24 * time.Hour
	}
	d.eng.After(delay, "charge "+d.id, func() {
		if !d.live(gen) {
			return
		}
		if d.rng.Bool(d.cfg.EveningChargeProb) {
			d.battery = 1
			d.publishBattery()
		}
		d.scheduleEveningCharge(gen)
	})
}

func (d *Device) scheduleBatteryTick(gen int) {
	d.eng.After(time.Hour, "battery "+d.id, func() {
		if !d.live(gen) {
			return
		}
		d.battery -= d.cfg.BatteryDrainPerHour
		d.publishBattery()
		if d.battery <= d.cfg.LowBatteryThreshold {
			d.battery = 0
			d.oracle.record(TruthLowBattery, d.eng.Now(), "battery exhausted", d.currentActivity)
			// Half the time the user notices quickly and charges; the
			// other half the phone stays off until the next morning.
			var off time.Duration
			if d.rng.Bool(0.5) {
				off = d.rng.LogNormalDuration(90*time.Minute, 0.5)
			} else {
				off = d.untilWake() + d.rng.ExpDuration(30*time.Minute)
			}
			d.battery = 1 // charged while off
			d.Shutdown(ReasonLowBattery, off)
			return
		}
		d.scheduleBatteryTick(gen)
	})
}

// Failures ----------------------------------------------------------------

// scheduleSpontaneous drives the freezes/self-shutdowns that happen with no
// panic record — causes the logger cannot observe.
func (d *Device) scheduleSpontaneous(gen int, freeze bool) {
	rate := d.cfg.SpontaneousShutdownPerHour
	if freeze {
		rate = d.cfg.SpontaneousFreezePerHour
	}
	mean, ok := meanInterval(rate)
	if !ok {
		return
	}
	d.eng.After(d.rng.ExpDuration(mean), "spontaneous "+d.id, func() {
		if !d.live(gen) {
			return
		}
		if freeze {
			d.Freeze("spontaneous")
		} else {
			d.SelfShutdown("spontaneous")
		}
	})
}

// outputFailureDetails are the value-failure manifestations the forum
// study quotes (section 4: "inaccuracy in charge indicator, ring or music
// volume different from the configured one, and event reminders going off
// at wrong times").
var outputFailureDetails = []string{
	"inaccurate charge indicator",
	"ring volume different from configured",
	"event reminder at the wrong time",
	"wallpaper reset to default",
	"wrong ringtone played",
}

// scheduleOutputFailures drives user-visible value failures. They do not
// stop the phone; they fire the output-failure hooks so optional observers
// (core.UserReporter) can model user-driven reporting.
func (d *Device) scheduleOutputFailures(gen int) {
	mean, ok := meanInterval(d.cfg.OutputFailurePerHour)
	if !ok {
		return
	}
	d.eng.After(d.rng.ExpDuration(mean), "output-failure "+d.id, func() {
		if !d.live(gen) {
			return
		}
		of := OutputFailure{
			Time:     d.eng.Now(),
			Detail:   outputFailureDetails[d.rng.Intn(len(outputFailureDetails))],
			Activity: d.currentActivity,
		}
		d.oracle.record(TruthOutputFailure, of.Time, of.Detail, of.Activity)
		for _, fn := range d.outputHooks {
			fn(of)
		}
		d.scheduleOutputFailures(gen)
	})
}

// schedulePanicOpportunity drives the fault model: defect-trigger
// opportunities arrive as a Poisson process whose intensity is modulated by
// the current activity's risk multiplier (thinning).
func (d *Device) schedulePanicOpportunity(gen int) {
	maxRate := d.cfg.PanicOpportunityPerHour * d.cfg.riskMax()
	mean, ok := meanInterval(maxRate)
	if !ok {
		return
	}
	d.eng.After(d.rng.ExpDuration(mean), "panic-op "+d.id, func() {
		if !d.live(gen) {
			return
		}
		accept := d.cfg.risk(d.currentActivity) / d.cfg.riskMax()
		if d.rng.Bool(accept) {
			d.faults.trigger()
		}
		d.schedulePanicOpportunity(gen)
	})
}

var _ = sim.Epoch
