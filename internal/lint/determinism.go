package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// forbiddenFuncs maps package path -> function name -> why it is forbidden
// inside the simulation packages. Each of these injects ambient, run-varying
// state into what must be a pure function of the seed.
var forbiddenFuncs = map[string]map[string]string{
	"time": {
		"Now":       "wall clock; use the sim.Engine virtual clock",
		"Since":     "wall clock; use the sim.Engine virtual clock",
		"Until":     "wall clock; use the sim.Engine virtual clock",
		"Sleep":     "real-time blocking; schedule a sim.Engine event instead",
		"Tick":      "real-time ticker; schedule repeating sim.Engine events",
		"After":     "real-time timer; schedule a sim.Engine event instead",
		"AfterFunc": "real-time timer; schedule a sim.Engine event instead",
		"NewTimer":  "real-time timer; schedule a sim.Engine event instead",
		"NewTicker": "real-time ticker; schedule repeating sim.Engine events",
	},
	"os": {
		"Getenv":    "ambient environment; pass configuration explicitly",
		"LookupEnv": "ambient environment; pass configuration explicitly",
		"Environ":   "ambient environment; pass configuration explicitly",
		"Hostname":  "ambient host identity; pass identity explicitly",
		"Getpid":    "ambient process identity varies per run",
		"Getppid":   "ambient process identity varies per run",
	},
	"runtime": {
		"NumGoroutine": "scheduler-dependent value varies per run",
	},
}

// forbiddenImports are packages whose mere use inside the simulation is a
// determinism leak: their entire API draws on unseeded or ambient entropy.
var forbiddenImports = map[string]string{
	"math/rand":    "global unseeded RNG; use *sim.Rand (xoshiro256**) from the engine",
	"math/rand/v2": "global unseeded RNG; use *sim.Rand (xoshiro256**) from the engine",
	"crypto/rand":  "OS entropy source; use *sim.Rand from the engine",
}

// DeterminismConfig scopes the determinism rules to package import-path
// prefixes. The default covers every simulation package in the module.
type DeterminismConfig struct {
	RestrictedPrefixes []string
}

// DefaultDeterminismPrefixes is the set of packages under the determinism
// contract: everything that feeds the golden fingerprint, plus the
// collection subsystem whose exports must be replayable.
var DefaultDeterminismPrefixes = []string{
	"symfail/internal/",
}

// NewDeterminism builds the determinism analyzer: inside restricted
// packages, wall-clock reads, real timers, ambient environment lookups, and
// unseeded RNG packages are forbidden. Virtual time (sim.Engine) and the
// seeded *sim.Rand are the only legitimate sources of time and randomness.
func NewDeterminism(cfg DeterminismConfig) *Analyzer {
	prefixes := cfg.RestrictedPrefixes
	if prefixes == nil {
		prefixes = DefaultDeterminismPrefixes
	}
	a := &Analyzer{
		Name: "determinism",
		Doc:  "forbid wall-clock, environment, and unseeded-RNG use in simulation packages",
	}
	a.Run = func(pass *Pass) {
		if !pathHasPrefix(pass.Pkg.Path, prefixes) {
			return
		}
		for _, f := range pass.Pkg.Files {
			checkDeterminismFile(pass, f)
		}
	}
	return a
}

func pathHasPrefix(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(path, p) || path == strings.TrimSuffix(p, "/") {
			return true
		}
	}
	return false
}

func checkDeterminismFile(pass *Pass, f *ast.File) {
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if why, bad := forbiddenImports[path]; bad {
			pass.Reportf(imp.Pos(), "import of %s: %s", path, why)
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.Pkg.Info.Uses[ident].(*types.PkgName)
		if !ok {
			return true
		}
		byName := forbiddenFuncs[pkgName.Imported().Path()]
		if byName == nil {
			return true
		}
		if why, bad := byName[sel.Sel.Name]; bad {
			pass.Reportf(sel.Pos(), "%s.%s: %s", pkgName.Imported().Path(), sel.Sel.Name, why)
		}
		return true
	})
}
