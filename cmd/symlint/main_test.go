package main

import (
	"strings"
	"testing"
)

func TestCleanPackageExitsZero(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"./internal/sim"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d on clean package, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected diagnostics:\n%s", out.String())
	}
}

func TestFixtureExitsNonZeroWithFileLineDiagnostic(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"./internal/lint/testdata/src/determinismfix"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d on fixture, want 1\nstderr:\n%s", code, errb.String())
	}
	// The diagnostic format is file:line: analyzer: message.
	want := "determinismfix/fix.go:15: determinism: time.Now"
	if !strings.Contains(out.String(), want) {
		t.Errorf("stdout missing %q:\n%s", want, out.String())
	}
}

func TestListAnalyzers(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d on -list, want 0", code)
	}
	for _, name := range []string{"determinism", "maporder", "panictaxonomy", "rngshare"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

func TestBadPatternExitsTwo(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"./no/such/dir"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d on bad pattern, want 2\nstderr:\n%s", code, errb.String())
	}
}
