package stream

import (
	"slices"
	"sort"

	"symfail/internal/symbos"
)

// This file holds the per-experiment reducers: small folds over finalized
// events with O(bins + devices) state. Each reducer is used twice — fed
// from a deviceCursor by the streaming accumulators, and fed from the
// event slices by the batch Study's table methods (via the exported *Of
// helpers) — so both paths share one implementation and stay byte-identical
// by construction. Merges only add integers and union device-keyed maps;
// every float is derived at finalize time in canonical order.

// ---- Table 2: panic frequencies ----

// PanicRow is one row of the Table 2 reproduction.
type PanicRow struct {
	Key     string
	Count   int
	Percent float64
	Meaning string
}

type panicID struct {
	cat   string
	ptype int
}

type panicRed struct {
	nopSink
	counts map[string]int
	ids    map[string]panicID // key -> (category, type); key is injective
	cats   map[string]int
	total  int
}

func newPanicRed() *panicRed {
	return &panicRed{
		counts: make(map[string]int),
		ids:    make(map[string]panicID),
		cats:   make(map[string]int),
	}
}

func (r *panicRed) panicDone(_ string, p *PanicEvent, _ bool) {
	key := p.Key()
	r.counts[key]++
	r.ids[key] = panicID{p.Category, p.Type}
	r.cats[p.Category]++
	r.total++
}

func (r *panicRed) merge(o *panicRed) {
	for k, n := range o.counts {
		r.counts[k] += n
	}
	for k, id := range o.ids {
		r.ids[k] = id
	}
	for c, n := range o.cats {
		r.cats[c] += n
	}
	r.total += o.total
}

func (r *panicRed) clone() *panicRed {
	c := newPanicRed()
	for k, n := range r.counts {
		c.counts[k] = n
	}
	for k, id := range r.ids {
		c.ids[k] = id
	}
	for k, n := range r.cats {
		c.cats[k] = n
	}
	c.total = r.total
	return c
}

func (r *panicRed) rows() []PanicRow { return panicRowsFrom(r.counts, r.ids, r.total) }

func meaningOf(id panicID) string { return symbos.Meaning(symbos.Category(id.cat), id.ptype) }

// panicRowsFrom renders a Table 2-shaped ranking from key counts: shared
// by the cumulative panic reducer and the windowed accumulators.
func panicRowsFrom(counts map[string]int, ids map[string]panicID, total int) []PanicRow {
	rows := make([]PanicRow, 0, len(counts))
	for key, c := range counts {
		id := ids[key]
		rows = append(rows, PanicRow{
			Key:     key,
			Count:   c,
			Percent: 100 * float64(c) / float64(total),
			Meaning: meaningOf(id),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Key < rows[j].Key
	})
	return rows
}

func (r *panicRed) shares() map[string]float64 {
	out := make(map[string]float64, len(r.cats))
	for cat, n := range r.cats {
		out[cat] = 100 * float64(n) / float64(r.total)
	}
	return out
}

// PanicTableRows reproduces Table 2 from an event slice (the batch path).
func PanicTableRows(panics []*PanicEvent) []PanicRow {
	red := newPanicRed()
	for _, p := range panics {
		red.panicDone(p.Device, p, false)
	}
	return red.rows()
}

// CategoryShareOf sums the percentage of panics in the given category.
func CategoryShareOf(panics []*PanicEvent, category string) float64 {
	var n, total int
	for _, p := range panics {
		total++
		if p.Category == category {
			n++
		}
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

// ---- Figure 2: reboot durations, plus explained shutdowns ----

type rebootRed struct {
	nopSink
	durs      map[string][]float64 // per device, record order
	count     int
	explained int
}

func newRebootRed() *rebootRed {
	return &rebootRed{durs: make(map[string][]float64)}
}

func (r *rebootRed) rebootDone(id string, off float64) {
	r.durs[id] = append(r.durs[id], off)
	r.count++
}

func (r *rebootRed) explainedDone(string) { r.explained++ }

func (r *rebootRed) merge(o *rebootRed) {
	for id, v := range o.durs {
		r.durs[id] = v
	}
	r.count += o.count
	r.explained += o.explained
}

// clone deep-copies the duration slices: the original keeps appending to
// them after an epoch snapshot, so sharing backing arrays would race.
func (r *rebootRed) clone() *rebootRed {
	c := newRebootRed()
	for id, v := range r.durs {
		c.durs[id] = slices.Clone(v)
	}
	c.count, c.explained = r.count, r.explained
	return c
}

// all concatenates the durations in the given (canonical) device order —
// the same order batch ingest appended them in.
func (r *rebootRed) all(devices []string) []float64 {
	var out []float64
	for _, id := range devices {
		out = append(out, r.durs[id]...)
	}
	return out
}

// ---- Section 6: MTBF / uptime ----

// MTBFReport is the section 6 headline: mean time between freezes, between
// self-shutdowns, and between failures of either kind.
type MTBFReport struct {
	ObservedHours float64
	Freezes       int
	SelfShutdowns int
	MTBFrHours    float64 // mean time between freezes
	MTBSHours     float64 // mean time between self-shutdowns
	MTBFHours     float64 // mean time between failures (either)
	// FailureEveryDays is the user-facing phrasing ("a failure every 11
	// days"), computed the way the paper phrases it: the average of the
	// per-kind inter-failure times, in days.
	FailureEveryDays float64
}

// MTBFOf computes the headline from observed hours and failure counts.
func MTBFOf(hours float64, freezes, selfShutdowns int) MTBFReport {
	rep := MTBFReport{ObservedHours: hours, Freezes: freezes, SelfShutdowns: selfShutdowns}
	if freezes > 0 {
		rep.MTBFrHours = hours / float64(freezes)
	}
	if selfShutdowns > 0 {
		rep.MTBSHours = hours / float64(selfShutdowns)
	}
	if freezes+selfShutdowns > 0 {
		rep.MTBFHours = hours / float64(freezes+selfShutdowns)
	}
	if rep.MTBFrHours > 0 && rep.MTBSHours > 0 {
		rep.FailureEveryDays = (rep.MTBFrHours + rep.MTBSHours) / 2 / 24
	}
	return rep
}

type mtbfRed struct {
	nopSink
	uptime  map[string]float64
	freezes int
	selfs   int
	users   int
}

func newMTBFRed() *mtbfRed { return &mtbfRed{uptime: make(map[string]float64)} }

func (r *mtbfRed) hlDone(_ string, hl *HLEvent) {
	switch hl.Kind {
	case HLFreeze:
		r.freezes++
	case HLSelfShutdown:
		r.selfs++
	case HLUserShutdown:
		r.users++
	}
}

func (r *mtbfRed) uptimeDone(id string, hours float64) { r.uptime[id] = hours }

func (r *mtbfRed) merge(o *mtbfRed) {
	for id, h := range o.uptime {
		r.uptime[id] = h
	}
	r.freezes += o.freezes
	r.selfs += o.selfs
	r.users += o.users
}

func (r *mtbfRed) clone() *mtbfRed {
	c := newMTBFRed()
	for id, h := range r.uptime {
		c.uptime[id] = h
	}
	c.freezes, c.selfs, c.users = r.freezes, r.selfs, r.users
	return c
}

// hours sums uptime in the given (canonical) device order so the
// floating-point total is deterministic.
func (r *mtbfRed) hours(devices []string) float64 {
	var total float64
	for _, id := range devices {
		total += r.uptime[id]
	}
	return total
}

// ---- Figure 3: panic bursts ----

// BurstStats reproduces Figure 3: the distribution of panic cascade sizes.
type BurstStats struct {
	// SizeCounts maps cascade size -> number of cascades of that size.
	SizeCounts map[int]int
	// PanicsInBursts is the fraction of panics that belong to a cascade
	// of two or more (the paper reports ~25%).
	PanicsInBursts float64
	// TotalPanics and TotalBursts are the denominators.
	TotalPanics, TotalBursts int
}

type burstRed struct {
	nopSink
	sizeCounts  map[int]int
	lastBurst   map[string]int // device -> last cascade index counted
	totalPanics int
	totalBursts int
	inBursts    int
}

func newBurstRed() *burstRed {
	return &burstRed{sizeCounts: make(map[int]int), lastBurst: make(map[string]int)}
}

func (r *burstRed) panicDone(id string, p *PanicEvent, _ bool) {
	r.totalPanics++
	if p.BurstLen >= 2 {
		r.inBursts++
	}
	// Cascade indices are 1-based and contiguous per device, so a change
	// of index marks the first panic of a new cascade.
	if r.lastBurst[id] != p.Burst {
		r.lastBurst[id] = p.Burst
		r.sizeCounts[p.BurstLen]++
		r.totalBursts++
	}
}

func (r *burstRed) merge(o *burstRed) {
	for sz, n := range o.sizeCounts {
		r.sizeCounts[sz] += n
	}
	for id, b := range o.lastBurst {
		r.lastBurst[id] = b
	}
	r.totalPanics += o.totalPanics
	r.totalBursts += o.totalBursts
	r.inBursts += o.inBursts
}

func (r *burstRed) clone() *burstRed {
	c := newBurstRed()
	for sz, n := range r.sizeCounts {
		c.sizeCounts[sz] = n
	}
	for id, b := range r.lastBurst {
		c.lastBurst[id] = b
	}
	c.totalPanics, c.totalBursts, c.inBursts = r.totalPanics, r.totalBursts, r.inBursts
	return c
}

func (r *burstRed) stats() BurstStats {
	st := BurstStats{
		SizeCounts:  make(map[int]int, len(r.sizeCounts)),
		TotalPanics: r.totalPanics,
		TotalBursts: r.totalBursts,
	}
	for sz, n := range r.sizeCounts {
		st.SizeCounts[sz] = n
	}
	if st.TotalPanics > 0 {
		st.PanicsInBursts = float64(r.inBursts) / float64(st.TotalPanics)
	}
	return st
}

// BurstStatsOf computes the cascade statistics from event slices (the
// batch path): deviceIDs in canonical order, panics per device time-ordered.
func BurstStatsOf(deviceIDs []string, panicsByDevice map[string][]*PanicEvent) BurstStats {
	red := newBurstRed()
	for _, id := range deviceIDs {
		for _, p := range panicsByDevice[id] {
			red.panicDone(id, p, false)
		}
	}
	return red.stats()
}

// ---- Figure 5: panic / HL-event coalescence ----

// CoalescenceStats reproduces Figure 5: how panics relate to high-level
// events.
type CoalescenceStats struct {
	TotalPanics    int
	RelatedPanics  int     // coalesced with a freeze or self-shutdown
	RelatedPercent float64 // the paper reports 51%
	// ToFreeze/ToSelfShutdown split the related panics by HL kind.
	ToFreeze, ToSelfShutdown int
	// ByCategory maps panic key -> (related, total) counts, the basis of
	// Figure 5b.
	ByCategory map[string]RelatedCount
	// IsolatedHL counts high-level events with no panic in the window —
	// failures the panic stream cannot explain.
	IsolatedHL int
}

// RelatedCount pairs related and total panic counts for one panic key.
type RelatedCount struct {
	Related, Total           int
	ToFreeze, ToSelfShutdown int
}

type coalRed struct {
	nopSink
	total    int
	related  int
	toFreeze int
	toSelf   int
	byCat    map[string]RelatedCount
	isolated int
	relAll   int
}

func newCoalRed() *coalRed { return &coalRed{byCat: make(map[string]RelatedCount)} }

func (r *coalRed) panicDone(_ string, p *PanicEvent, relatedAll bool) {
	r.total++
	rc := r.byCat[p.Key()]
	rc.Total++
	if p.Related != nil {
		r.related++
		rc.Related++
		switch p.Related.Kind {
		case HLFreeze:
			r.toFreeze++
			rc.ToFreeze++
		case HLSelfShutdown:
			r.toSelf++
			rc.ToSelfShutdown++
		}
	}
	r.byCat[p.Key()] = rc
	if relatedAll {
		r.relAll++
	}
}

func (r *coalRed) hlDone(_ string, hl *HLEvent) {
	if (hl.Kind == HLFreeze || hl.Kind == HLSelfShutdown) && !hl.refd {
		r.isolated++
	}
}

func (r *coalRed) merge(o *coalRed) {
	r.total += o.total
	r.related += o.related
	r.toFreeze += o.toFreeze
	r.toSelf += o.toSelf
	for k, rc := range o.byCat {
		cur := r.byCat[k]
		cur.Related += rc.Related
		cur.Total += rc.Total
		cur.ToFreeze += rc.ToFreeze
		cur.ToSelfShutdown += rc.ToSelfShutdown
		r.byCat[k] = cur
	}
	r.isolated += o.isolated
	r.relAll += o.relAll
}

func (r *coalRed) clone() *coalRed {
	c := newCoalRed()
	c.total, c.related, c.toFreeze, c.toSelf = r.total, r.related, r.toFreeze, r.toSelf
	for k, rc := range r.byCat {
		c.byCat[k] = rc
	}
	c.isolated, c.relAll = r.isolated, r.relAll
	return c
}

func (r *coalRed) stats() CoalescenceStats {
	st := CoalescenceStats{
		TotalPanics:    r.total,
		RelatedPanics:  r.related,
		ToFreeze:       r.toFreeze,
		ToSelfShutdown: r.toSelf,
		ByCategory:     make(map[string]RelatedCount, len(r.byCat)),
		IsolatedHL:     r.isolated,
	}
	for k, rc := range r.byCat {
		st.ByCategory[k] = rc
	}
	if st.TotalPanics > 0 {
		st.RelatedPercent = 100 * float64(st.RelatedPanics) / float64(st.TotalPanics)
	}
	return st
}

func (r *coalRed) relatedAllPercent() float64 {
	if r.total == 0 {
		return 0
	}
	return 100 * float64(r.relAll) / float64(r.total)
}

// CoalescenceStatsOf computes the Figure 5 statistics from event slices
// (the batch path). Relations are read from the Related pointers; isolated
// HL events are the freeze/self-shutdown events no panic points at.
func CoalescenceStatsOf(panics []*PanicEvent, hls []*HLEvent) CoalescenceStats {
	st := CoalescenceStats{ByCategory: make(map[string]RelatedCount)}
	relatedHL := make(map[*HLEvent]bool)
	for _, p := range panics {
		st.TotalPanics++
		rc := st.ByCategory[p.Key()]
		rc.Total++
		if p.Related != nil {
			st.RelatedPanics++
			rc.Related++
			relatedHL[p.Related] = true
			switch p.Related.Kind {
			case HLFreeze:
				st.ToFreeze++
				rc.ToFreeze++
			case HLSelfShutdown:
				st.ToSelfShutdown++
				rc.ToSelfShutdown++
			}
		}
		st.ByCategory[p.Key()] = rc
	}
	for _, hl := range hls {
		if (hl.Kind == HLFreeze || hl.Kind == HLSelfShutdown) && !relatedHL[hl] {
			st.IsolatedHL++
		}
	}
	if st.TotalPanics > 0 {
		st.RelatedPercent = 100 * float64(st.RelatedPanics) / float64(st.TotalPanics)
	}
	return st
}

// ---- Table 3: panic-activity relationship ----

// ActivityRow is one row of the Table 3 reproduction: HL-related panics by
// user activity.
type ActivityRow struct {
	Activity string
	// ByCategory maps panic category -> percent of all HL-related panics.
	ByCategory map[string]float64
	Total      float64
}

type activityRed struct {
	nopSink
	counts  map[string]map[string]int // activity -> category -> count
	related int
	rt      int // voice-call or message
}

func newActivityRed() *activityRed {
	return &activityRed{counts: make(map[string]map[string]int)}
}

func (r *activityRed) panicDone(_ string, p *PanicEvent, _ bool) {
	if p.Related == nil {
		return
	}
	r.related++
	act := p.Activity
	if act == "" {
		act = "unspecified"
	}
	if r.counts[act] == nil {
		r.counts[act] = make(map[string]int)
	}
	r.counts[act][p.Category]++
	if p.Activity == "voice-call" || p.Activity == "message" {
		r.rt++
	}
}

func (r *activityRed) merge(o *activityRed) {
	for act, byCat := range o.counts {
		if r.counts[act] == nil {
			r.counts[act] = make(map[string]int, len(byCat))
		}
		for cat, n := range byCat {
			r.counts[act][cat] += n
		}
	}
	r.related += o.related
	r.rt += o.rt
}

func (r *activityRed) clone() *activityRed {
	c := newActivityRed()
	for act, byCat := range r.counts {
		m := make(map[string]int, len(byCat))
		for cat, n := range byCat {
			m[cat] = n
		}
		c.counts[act] = m
	}
	c.related, c.rt = r.related, r.rt
	return c
}

// rows renders the table. Row totals are accumulated in sorted category
// order so the float sum is deterministic.
func (r *activityRed) rows() []ActivityRow {
	activities := make([]string, 0, len(r.counts))
	for act := range r.counts {
		activities = append(activities, act)
	}
	sort.Strings(activities)
	rows := make([]ActivityRow, 0, len(activities))
	for _, act := range activities {
		byCat := r.counts[act]
		cats := make([]string, 0, len(byCat))
		for cat := range byCat {
			cats = append(cats, cat)
		}
		sort.Strings(cats)
		row := ActivityRow{Activity: act, ByCategory: make(map[string]float64, len(cats))}
		for _, cat := range cats {
			pct := 100 * float64(byCat[cat]) / float64(r.related)
			row.ByCategory[cat] = pct
			row.Total += pct
		}
		rows = append(rows, row)
	}
	return rows
}

func (r *activityRed) realTimeShare() float64 {
	if r.related == 0 {
		return 0
	}
	return 100 * float64(r.rt) / float64(r.related)
}

// ActivityRowsOf reproduces Table 3 from an event slice (the batch path).
func ActivityRowsOf(panics []*PanicEvent) []ActivityRow {
	red := newActivityRed()
	for _, p := range panics {
		red.panicDone(p.Device, p, false)
	}
	return red.rows()
}

// RealTimeShareOf returns the percentage of HL-related panics during a
// voice call or message — the paper reports ~45%.
func RealTimeShareOf(panics []*PanicEvent) float64 {
	red := newActivityRed()
	for _, p := range panics {
		red.panicDone(p.Device, p, false)
	}
	return red.realTimeShare()
}

// ---- Figure 6 / Table 4: running applications ----

// RunningAppsCap is the histogram fold point used by Figure 6 and the
// streaming snapshot: panics with more running apps count into this bin.
const RunningAppsCap = 8

// AppPanicRow is one row of the Table 4 reproduction: for an outcome
// (freeze / self-shutdown / none) and panic category, the percentage of
// panics that had each application running.
type AppPanicRow struct {
	Outcome  string // "freeze", "self-shutdown", or "none"
	Category string
	// ByApp maps application name -> percent of all panics.
	ByApp map[string]float64
}

// AppShare pairs an application with its share of panics.
type AppShare struct {
	App     string
	Percent float64
}

type appCell struct{ outcome, cat, app string }

type appsRed struct {
	nopSink
	cells     map[appCell]int
	appCounts map[string]int
	runApps   map[int]int // folded at RunningAppsCap
	total     int
}

func newAppsRed() *appsRed {
	return &appsRed{
		cells:     make(map[appCell]int),
		appCounts: make(map[string]int),
		runApps:   make(map[int]int),
	}
}

func (r *appsRed) panicDone(_ string, p *PanicEvent, _ bool) {
	r.total++
	outcome := "none"
	if p.Related != nil {
		outcome = string(p.Related.Kind)
	}
	for _, app := range p.Apps {
		r.cells[appCell{outcome, p.Category, app}]++
		r.appCounts[app]++
	}
	n := len(p.Apps)
	if n > RunningAppsCap {
		n = RunningAppsCap
	}
	r.runApps[n]++
}

func (r *appsRed) merge(o *appsRed) {
	for c, n := range o.cells {
		r.cells[c] += n
	}
	for app, n := range o.appCounts {
		r.appCounts[app] += n
	}
	for k, n := range o.runApps {
		r.runApps[k] += n
	}
	r.total += o.total
}

func (r *appsRed) clone() *appsRed {
	c := newAppsRed()
	for cell, n := range r.cells {
		c.cells[cell] = n
	}
	for app, n := range r.appCounts {
		c.appCounts[app] = n
	}
	for k, n := range r.runApps {
		c.runApps[k] = n
	}
	c.total = r.total
	return c
}

func (r *appsRed) table() []AppPanicRow {
	if r.total == 0 {
		return nil
	}
	grouped := make(map[string]map[string]float64)
	for c, n := range r.cells {
		key := c.outcome + "\x00" + c.cat
		if grouped[key] == nil {
			grouped[key] = make(map[string]float64)
		}
		grouped[key][c.app] = 100 * float64(n) / float64(r.total)
	}
	keys := make([]string, 0, len(grouped))
	for k := range grouped {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rows := make([]AppPanicRow, 0, len(keys))
	for _, k := range keys {
		var outcome, cat string
		for i := 0; i < len(k); i++ {
			if k[i] == 0 {
				outcome, cat = k[:i], k[i+1:]
				break
			}
		}
		rows = append(rows, AppPanicRow{Outcome: outcome, Category: cat, ByApp: grouped[k]})
	}
	return rows
}

func (r *appsRed) top(n int) []AppShare {
	shares := make([]AppShare, 0, len(r.appCounts))
	for app, c := range r.appCounts {
		shares = append(shares, AppShare{App: app, Percent: 100 * float64(c) / float64(r.total)})
	}
	sort.Slice(shares, func(i, j int) bool {
		if shares[i].Percent != shares[j].Percent {
			return shares[i].Percent > shares[j].Percent
		}
		return shares[i].App < shares[j].App
	})
	if n > 0 && len(shares) > n {
		shares = shares[:n]
	}
	return shares
}

func (r *appsRed) hist() map[int]int {
	out := make(map[int]int, len(r.runApps))
	for k, n := range r.runApps {
		out[k] = n
	}
	return out
}

// AppPanicTableOf reproduces Table 4 from an event slice (the batch path).
func AppPanicTableOf(panics []*PanicEvent) []AppPanicRow {
	red := newAppsRed()
	for _, p := range panics {
		red.panicDone(p.Device, p, false)
	}
	return red.table()
}

// TopPanicAppsOf returns the applications most frequently running at panic
// time, sorted by share descending, truncated to n when n > 0.
func TopPanicAppsOf(panics []*PanicEvent, n int) []AppShare {
	red := newAppsRed()
	for _, p := range panics {
		red.panicDone(p.Device, p, false)
	}
	return red.top(n)
}

// RunningAppsHistogramOf reproduces Figure 6 from an event slice, folding
// panics with more than maxApps running applications into the maxApps bin.
func RunningAppsHistogramOf(panics []*PanicEvent, maxApps int) map[int]int {
	out := make(map[int]int)
	for _, p := range panics {
		n := len(p.Apps)
		if n > maxApps {
			n = maxApps
		}
		out[n]++
	}
	return out
}
