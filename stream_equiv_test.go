package symfail

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"symfail/internal/analysis"
	"symfail/internal/analysis/stream"
	"symfail/internal/collect"
	"symfail/internal/core"
	"symfail/internal/phone"
	"symfail/internal/report"
	"symfail/internal/sim"
)

// These tests are the streaming refactor's keystone: the batch Study, the
// single-pass Tables accumulator, and shard-merged accumulators built over
// random device splits must produce byte-identical tables — and those tables
// must agree with the pinned golden fingerprints, which predate the refactor
// and were NOT regenerated. `make stream` runs this file under -race.

// snapshotJSON marshals a tables snapshot; byte equality of these blobs is
// the equivalence criterion (field order, float formatting and all).
func snapshotJSON(t *testing.T, sn *stream.TablesSnapshot) []byte {
	t.Helper()
	blob, err := json.Marshal(sn)
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// streamSnapshot feeds a dataset through the composite accumulator the way
// cmd/analyze -stream does: one device at a time through a sorting Feeder.
func streamSnapshot(t *testing.T, ds *collect.Dataset, opts analysis.Options) *stream.TablesSnapshot {
	t.Helper()
	acc := stream.NewTables(opts)
	f := &stream.Feeder{AddDevice: acc.AddDevice, Observe: acc.Observe}
	if err := ds.Stream(f.Begin, f.Record); err != nil {
		t.Fatal(err)
	}
	f.Flush()
	return acc.Tables()
}

// shardedSnapshot splits the dataset's devices into shards at random, builds
// one accumulator per shard, and merges them in shuffled order.
func shardedSnapshot(t *testing.T, ds *collect.Dataset, opts analysis.Options, shards int, rng *sim.Rand) *stream.TablesSnapshot {
	t.Helper()
	devices := ds.Devices()
	parts := make([]*stream.Tables, shards)
	feeders := make([]*stream.Feeder, shards)
	for i := range parts {
		parts[i] = stream.NewTables(opts)
		feeders[i] = &stream.Feeder{AddDevice: parts[i].AddDevice, Observe: parts[i].Observe}
	}
	assign := make(map[string]int, len(devices))
	for _, id := range devices {
		assign[id] = rng.Intn(shards)
	}
	err := ds.Stream(
		func(id string) error { return feeders[assign[id]].Begin(id) },
		func(id string, r core.Record) error { return feeders[assign[id]].Record(id, r) },
	)
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range feeders {
		f.Flush()
	}
	// Merge in shuffled order.
	order := make([]int, shards)
	for i := range order {
		order[i] = i
	}
	for i := len(order) - 1; i > 0; i-- {
		j := rng.Intn(i + 1)
		order[i], order[j] = order[j], order[i]
	}
	root := parts[order[0]]
	for _, i := range order[1:] {
		if err := root.Merge(parts[i]); err != nil {
			t.Fatalf("merge shard %d: %v", i, err)
		}
	}
	return root.Tables()
}

// TestStreamEquivalence proves batch == stream == shard-merged on the pinned
// golden study, across worker counts, and anchors the streaming results to
// the pre-refactor golden fingerprint.
func TestStreamEquivalence(t *testing.T) {
	fs, err := RunFieldStudy(FieldStudyConfig{
		Seed:       424242,
		Phones:     6,
		Duration:   3 * phone.StudyMonth,
		JoinWindow: phone.StudyMonth / 2,
		Workers:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	batch := snapshotJSON(t, fs.Study.Snapshot())
	opts := fs.Study.Options()

	streamed := streamSnapshot(t, fs.Dataset, opts)
	if got := snapshotJSON(t, streamed); !bytes.Equal(got, batch) {
		t.Errorf("streaming snapshot differs from batch:\n got: %s\nwant: %s", got, batch)
	}

	rng := sim.NewRand(7)
	for _, shards := range []int{2, 3, 5} {
		sharded := shardedSnapshot(t, fs.Dataset, opts, shards, rng)
		if got := snapshotJSON(t, sharded); !bytes.Equal(got, batch) {
			t.Errorf("%d-shard merged snapshot differs from batch", shards)
		}
	}

	for _, workers := range []int{2, 4, 8} {
		fsw, err := RunFieldStudy(FieldStudyConfig{
			Seed:       424242,
			Phones:     6,
			Duration:   3 * phone.StudyMonth,
			JoinWindow: phone.StudyMonth / 2,
			Workers:    workers,
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := snapshotJSON(t, fsw.Study.Snapshot()); !bytes.Equal(got, batch) {
			t.Errorf("workers=%d snapshot differs from workers=1", workers)
		}
	}

	// Anchor to the pinned pre-refactor golden fingerprint: the streaming
	// counts must reproduce it without the golden ever being regenerated.
	blob, err := os.ReadFile(filepath.Join("testdata", "golden_fingerprint.json"))
	if err != nil {
		t.Fatalf("no golden fingerprint: %v", err)
	}
	var want fingerprint
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	if streamed.Coalescence.TotalPanics != want.Panics {
		t.Errorf("streamed panics = %d, golden %d", streamed.Coalescence.TotalPanics, want.Panics)
	}
	if streamed.MTBF.Freezes != want.Freezes {
		t.Errorf("streamed freezes = %d, golden %d", streamed.MTBF.Freezes, want.Freezes)
	}
	if streamed.MTBF.SelfShutdowns != want.SelfShutdowns {
		t.Errorf("streamed self-shutdowns = %d, golden %d", streamed.MTBF.SelfShutdowns, want.SelfShutdowns)
	}
	if streamed.MTBF.ObservedHours != want.ObservedHours {
		t.Errorf("streamed observed hours = %v, golden %v", streamed.MTBF.ObservedHours, want.ObservedHours)
	}
}

// TestStreamReportEquivalence proves the rendered paper report is
// byte-identical between the Study renderers and the FromSnapshot variants.
func TestStreamReportEquivalence(t *testing.T) {
	fs, err := RunFieldStudy(FieldStudyConfig{
		Seed:       424242,
		Phones:     6,
		Duration:   3 * phone.StudyMonth,
		JoinWindow: phone.StudyMonth / 2,
		Workers:    1,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := fs.Study
	sn := streamSnapshot(t, fs.Dataset, s.Options())
	pairs := []struct {
		name         string
		batch, strem string
	}{
		{"Figure2", report.Figure2(s), report.Figure2FromSnapshot(sn)},
		{"MTBF", report.MTBF(s), report.MTBFFromSnapshot(sn)},
		{"Table2", report.Table2(s), report.Table2FromSnapshot(sn)},
		{"Figure3", report.Figure3(s), report.Figure3FromSnapshot(sn)},
		{"Figure5", report.Figure5(s), report.Figure5FromSnapshot(sn)},
		{"Table3", report.Table3(s), report.Table3FromSnapshot(sn)},
		{"Figure6", report.Figure6(s), report.Figure6FromSnapshot(sn)},
		{"Table4", report.Table4(s), report.Table4FromSnapshot(sn)},
	}
	for _, p := range pairs {
		if p.batch != p.strem {
			t.Errorf("%s renders differently:\nbatch:\n%s\nstream:\n%s", p.name, p.batch, p.strem)
		}
	}
}

// TestStreamAdversityEquivalence runs the pinned adversity study (flash
// tears, network faults, TCP collection) and proves the same batch == stream
// == shard-merged equivalence over the dataset that travelled the wire.
func TestStreamAdversityEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("adversity study in -short mode")
	}
	cfg := adversityStudyConfig()
	cfg.Workers = 1
	fs, sup, err := RunFieldStudyWithCollector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	batch := snapshotJSON(t, fs.Study.Snapshot())
	opts := fs.Study.Options()

	if got := snapshotJSON(t, streamSnapshot(t, fs.Dataset, opts)); !bytes.Equal(got, batch) {
		t.Errorf("adversity streaming snapshot differs from batch:\n got: %s\nwant: %s", got, batch)
	}
	rng := sim.NewRand(11)
	for _, shards := range []int{2, 4} {
		if got := snapshotJSON(t, shardedSnapshot(t, fs.Dataset, opts, shards, rng)); !bytes.Equal(got, batch) {
			t.Errorf("adversity %d-shard merged snapshot differs from batch", shards)
		}
	}
}
