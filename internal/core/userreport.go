package core

import (
	"time"

	"symfail/internal/phone"
	"symfail/internal/sim"
)

// UserReporter is the paper's future-work extension (section 7): capturing
// output failures — value failures the logger cannot detect automatically —
// by involving the user. Section 5 explains why the authors did not rely on
// it for the main study: "users are quite unreliable and often neglect or
// forget to post the required information, thus biasing the results". This
// extension implements exactly that unreliable channel, with the
// unreliability modelled explicitly so its bias can be measured against the
// simulator's oracle (see ReportingCoverage).
//
// Model: when the device misbehaves in a user-visible way, the user notices
// with probability NoticeProb; a noticed failure is reported with
// probability ReportProb after a procrastination delay; if the phone is off
// (or frozen) when the user gets around to it, the report is lost.
type UserReporter struct {
	dev *phone.Device
	cfg UserReporterConfig
	rng *sim.Rand

	noticed int
	lost    int
}

// UserReporterConfig tunes the user model.
type UserReporterConfig struct {
	// NoticeProb is the chance the user notices a value failure at all.
	NoticeProb float64
	// ReportProb is the chance a noticed failure is eventually reported.
	ReportProb float64
	// ReportDelayMedian/Sigma shape the log-normal procrastination delay
	// between noticing and reporting.
	ReportDelayMedian time.Duration
	ReportDelaySigma  float64
	// LogPath is where user reports are appended (default: the logger's
	// consolidated Log File).
	LogPath string
}

// DefaultUserReporterConfig reflects the paper's experience with
// user-driven collection: most failures are noticed, barely half of the
// noticed ones ever get written down, and not promptly.
func DefaultUserReporterConfig() UserReporterConfig {
	return UserReporterConfig{
		NoticeProb:        0.8,
		ReportProb:        0.45,
		ReportDelayMedian: 40 * time.Minute,
		ReportDelaySigma:  1.0,
		LogPath:           DefaultLogPath,
	}
}

func (c UserReporterConfig) withDefaults() UserReporterConfig {
	d := DefaultUserReporterConfig()
	if c.NoticeProb <= 0 {
		c.NoticeProb = d.NoticeProb
	}
	if c.ReportProb <= 0 {
		c.ReportProb = d.ReportProb
	}
	if c.ReportDelayMedian <= 0 {
		c.ReportDelayMedian = d.ReportDelayMedian
	}
	if c.ReportDelaySigma <= 0 {
		c.ReportDelaySigma = d.ReportDelaySigma
	}
	if c.LogPath == "" {
		c.LogPath = d.LogPath
	}
	return c
}

// KindUserReport is the Log File record kind for user-reported failures.
const KindUserReport = "user-report"

// InstallUserReporter attaches the extension to a device. Call before the
// enrolment boot, like Install.
func InstallUserReporter(d *phone.Device, cfg UserReporterConfig) *UserReporter {
	u := &UserReporter{dev: d, cfg: cfg.withDefaults()}
	u.rng = u.deriveRand()
	d.OnBoot(u.startHook)
	return u
}

// Noticed returns how many value failures the simulated user noticed.
func (u *UserReporter) Noticed() int { return u.noticed }

// Lost returns how many noticed failures never became reports (forgotten,
// or the phone was down when the user got around to it).
func (u *UserReporter) Lost() int { return u.lost }

// Reports parses the user-report records currently on flash.
func (u *UserReporter) Reports() []Record {
	data, ok := u.dev.FS().Read(u.cfg.LogPath)
	if !ok {
		return nil
	}
	var out []Record
	for _, r := range ParseRecords(data) {
		if r.Kind == KindUserReport {
			out = append(out, r)
		}
	}
	return out
}

// ReportingCoverage returns the fraction of ground-truth output failures
// that ended up reported — the bias measurement the paper wished it had.
func (u *UserReporter) ReportingCoverage() float64 {
	truth := u.dev.Oracle().Count(phone.TruthOutputFailure)
	if truth == 0 {
		return 0
	}
	return float64(len(u.Reports())) / float64(truth)
}

// startHook re-registers the output-failure subscription on every boot.
// The random stream persists across boots (it belongs to the user, not to
// the phone's power state).
func (u *UserReporter) startHook(d *phone.Device) {
	rng := u.rng
	d.RegisterOutputFailureHook(func(of phone.OutputFailure) {
		if !rng.Bool(u.cfg.NoticeProb) {
			return
		}
		u.noticed++
		if !rng.Bool(u.cfg.ReportProb) {
			u.lost++
			return
		}
		delay := rng.LogNormalDuration(u.cfg.ReportDelayMedian, u.cfg.ReportDelaySigma)
		failTime := of.Time
		detail := of.Detail
		activity := string(of.Activity)
		d.Engine().After(delay, "user-report "+d.ID(), func() {
			// The report needs a working phone to be entered on.
			if d.State() != phone.StateOn {
				u.lost++
				return
			}
			rec := Record{
				Kind:     KindUserReport,
				Time:     int64(d.Now()),
				PrevTime: int64(failTime), // when the failure happened
				Detected: Detection(detail),
				Activity: activity,
			}
			// Best-effort by design: a user report that cannot be written is
			// simply lost, like a paper form nobody files.
			//symlint:allow errdrop user-report appends are deliberately lossy on full flash; the loss itself is modeled
			d.FS().Append(u.cfg.LogPath, FrameRecord(rec))
		})
	})
}

// deriveRand derives the reporter's own deterministic stream from the
// device identity (FNV-1a over the ID), so installing the extension does
// not perturb the main study's random decisions.
func (u *UserReporter) deriveRand() *sim.Rand {
	seed := uint64(14695981039346656037)
	for _, b := range []byte(u.dev.ID()) {
		seed = (seed ^ uint64(b)) * 1099511628211
	}
	return sim.NewRand(seed)
}
