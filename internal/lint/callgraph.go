package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// This file is the whole-program half of symlint: a static call graph over
// go/types that the interprocedural analyzers (transitive determinism,
// ackorder, errdrop) share. The graph is deliberately simple and honest
// about its approximations:
//
//   - Static calls (package functions, methods on concrete receivers) are
//     resolved exactly through types.Info.
//   - Interface-method calls are over-approximated: an edge is added to
//     every method in the analyzed package set with the same name whose
//     receiver type implements the called interface. Edges carry an Iface
//     marker so diagnostics can say "via interface dispatch".
//   - Calls through function values (closures handed around, struct fields
//     of func type) are NOT resolved. This is sound for the analyzers here
//     because a function literal's body is attributed to the function that
//     lexically declares it, so whatever the closure does is charged to its
//     creator — which is where the contract violation was written.
//   - Bodies exist only for functions declared in the analyzed package set;
//     external (stdlib) callees are leaf nodes matched by qualified name.
//
// Node and edge order is deterministic (package load order, then file,
// then declaration, then call-site order), so every diagnostic chain built
// from the graph is byte-stable across runs.

// CGNode is one function in the call graph.
type CGNode struct {
	Fn   *types.Func
	Pkg  *Package      // defining analyzed package; nil for external functions
	Decl *ast.FuncDecl // nil for external functions

	// Calls holds the resolved outgoing edges in call-site order, deduplicated
	// per callee (first site wins).
	Calls []CGEdge
}

// CGEdge is one resolved call.
type CGEdge struct {
	Callee *CGNode
	Pos    ast.Node // the call expression, for diagnostics
	Iface  bool     // true when this edge is an interface-dispatch over-approximation
}

// CallGraph is the static call graph over one analyzed package set.
type CallGraph struct {
	nodes map[*types.Func]*CGNode
	order []*CGNode // analyzed nodes in deterministic order

	// preds is the reverse adjacency (analyzed callers per node), used by
	// reverse-BFS reachability. Deterministic append order.
	preds map[*CGNode][]*CGNode

	// methodsByName indexes analyzed methods for interface-call resolution.
	methodsByName map[string][]*CGNode
}

// BuildCallGraph constructs the graph for the given packages. The packages
// must all come from one Loader (so types.Object identities agree across
// package boundaries).
func BuildCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{
		nodes:         make(map[*types.Func]*CGNode),
		preds:         make(map[*CGNode][]*CGNode),
		methodsByName: make(map[string][]*CGNode),
	}
	// Pass 1: index every declared function and method.
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := &CGNode{Fn: fn, Pkg: pkg, Decl: fd}
				g.nodes[fn] = n
				g.order = append(g.order, n)
				if fd.Recv != nil {
					g.methodsByName[fn.Name()] = append(g.methodsByName[fn.Name()], n)
				}
			}
		}
	}
	// Pass 2: resolve call sites.
	for _, n := range g.order {
		if n.Decl.Body == nil {
			continue
		}
		g.addEdges(n)
	}
	return g
}

// NodeOf returns the graph node for fn, or nil when fn was not declared in
// the analyzed set and is not referenced by it.
func (g *CallGraph) NodeOf(fn *types.Func) *CGNode { return g.nodes[fn] }

// FuncsOf returns the analyzed nodes declared in pkg, in declaration order.
func (g *CallGraph) FuncsOf(pkg *Package) []*CGNode {
	var out []*CGNode
	for _, n := range g.order {
		if n.Pkg == pkg {
			out = append(out, n)
		}
	}
	return out
}

// Nodes returns every analyzed node in deterministic order.
func (g *CallGraph) Nodes() []*CGNode { return g.order }

// addEdges walks one declared function's body (including the bodies of any
// function literals it declares — their effects are charged to the
// declaring function) and appends resolved edges.
func (g *CallGraph) addEdges(n *CGNode) {
	seen := make(map[*CGNode]bool)
	add := func(callee *CGNode, site ast.Node, iface bool) {
		if callee == nil || seen[callee] {
			return
		}
		seen[callee] = true
		n.Calls = append(n.Calls, CGEdge{Callee: callee, Pos: site, Iface: iface})
		if callee.Decl != nil {
			g.preds[callee] = append(g.preds[callee], n)
		}
	}
	ast.Inspect(n.Decl, func(node ast.Node) bool {
		call, ok := node.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeOf(n.Pkg.Info, call)
		if fn == nil {
			return true
		}
		callee := g.extern(fn)
		add(callee, call, false)
		// Interface dispatch: over-approximate to every analyzed method of
		// the same name whose receiver implements the called interface.
		if iface := interfaceOf(fn); iface != nil {
			for _, impl := range g.methodsByName[fn.Name()] {
				recv := recvNamed(impl.Fn)
				if recv == nil {
					continue
				}
				if types.Implements(recv, iface) || types.Implements(types.NewPointer(recv), iface) {
					add(impl, call, true)
				}
			}
		}
		return true
	})
}

// extern returns the node for fn, creating a leaf node when fn has no
// declaration in the analyzed set (stdlib or un-analyzed module code).
func (g *CallGraph) extern(fn *types.Func) *CGNode {
	if n, ok := g.nodes[fn]; ok {
		return n
	}
	n := &CGNode{Fn: fn}
	g.nodes[fn] = n
	return n
}

// calleeOf statically resolves a call expression to the *types.Func it
// invokes, or nil for builtins, conversions, and function-value calls.
func calleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			fn, _ := sel.Obj().(*types.Func)
			return fn
		}
		// Qualified package call (pkg.F) or method expression (T.M).
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	case *ast.IndexExpr: // generic instantiation f[T](...)
		if id, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			fn, _ := info.Uses[id].(*types.Func)
			return fn
		}
	}
	return nil
}

// interfaceOf returns the interface fn is declared on when fn is an
// abstract interface method, nil otherwise.
func interfaceOf(fn *types.Func) *types.Interface {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	iface, _ := sig.Recv().Type().Underlying().(*types.Interface)
	return iface
}

// recvNamed returns the named receiver type of a method (pointer stripped),
// or nil for package functions and interface methods.
func recvNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// shortFuncName renders a function compactly for diagnostic chains:
// "Type.Method" for methods, "pkg.Func" for package functions.
func shortFuncName(fn *types.Func) string {
	if n := recvNamed(fn); n != nil {
		return n.Obj().Name() + "." + fn.Name()
	}
	if iface := interfaceOf(fn); iface != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if named, ok := sig.Recv().Type().(*types.Named); ok {
				return named.Obj().Name() + "." + fn.Name()
			}
		}
	}
	if fn.Pkg() != nil {
		return pkgBase(fn.Pkg().Path()) + "." + fn.Name()
	}
	return fn.Name()
}

func pkgBase(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// reachTarget describes one step toward a reachability target: the next
// node on the shortest chain, and — when next is the target itself — the
// reason it matched.
type reachTarget struct {
	next *CGNode
	why  string // non-empty exactly when next is the matched target
}

// ReverseReach computes, for every analyzed node, whether it can reach a
// function matched by target, via breadth-first search over reverse edges
// (so each reaching node records its shortest next hop, deterministically).
// target is called on external and analyzed callees alike and returns a
// non-empty reason string on a match.
func (g *CallGraph) ReverseReach(target func(*types.Func) string) map[*CGNode]*reachTarget {
	reach := make(map[*CGNode]*reachTarget)
	var queue []*CGNode
	// Layer 0: nodes with a direct edge to a target.
	for _, n := range g.order {
		for _, e := range n.Calls {
			if why := target(e.Callee.Fn); why != "" {
				reach[n] = &reachTarget{next: e.Callee, why: why}
				queue = append(queue, n)
				break
			}
		}
	}
	// BFS over predecessors.
	for len(queue) > 0 {
		m := queue[0]
		queue = queue[1:]
		for _, p := range g.preds[m] {
			if reach[p] != nil {
				continue
			}
			reach[p] = &reachTarget{next: m}
			queue = append(queue, p)
		}
	}
	return reach
}

// ChainFrom reconstructs the shortest call chain from n to its matched
// target as rendered function names, ending with the target itself.
func ChainFrom(n *CGNode, reach map[*CGNode]*reachTarget) []string {
	var chain []string
	cur := n
	for {
		chain = append(chain, shortFuncName(cur.Fn))
		r := reach[cur]
		if r == nil {
			return chain // defensive: n did not reach a target
		}
		if r.why != "" {
			chain = append(chain, shortFuncName(r.next.Fn))
			return chain
		}
		cur = r.next
	}
}

// reachWhy returns the reason string at the end of n's chain.
func reachWhy(n *CGNode, reach map[*CGNode]*reachTarget) string {
	cur := n
	for reach[cur] != nil {
		r := reach[cur]
		if r.why != "" {
			return r.why
		}
		cur = r.next
	}
	return ""
}

// TypeRef names a type by package path and type name, so analyzer
// configurations can anchor themselves to module APIs instead of
// hard-coding call lists.
type TypeRef struct {
	Pkg  string
	Name string
}

// matchesRef reports whether t (pointer stripped) is the named type ref.
func matchesRef(t types.Type, refs []TypeRef) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	for _, ref := range refs {
		if obj.Name() == ref.Name && obj.Pkg().Path() == ref.Pkg {
			return true
		}
	}
	return false
}
