package symfail

import (
	"encoding/json"
	"sort"
	"testing"
	"time"

	"symfail/internal/analysis/stream"
	"symfail/internal/collect"
	"symfail/internal/core"
	"symfail/internal/phone"
)

// sortedStrings returns the map's keys in sorted order.
func sortedStrings(m map[string][]core.Record) []string {
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// TestMonitorAndLiveStudyAcrossServerCrashes is the at-least-once tap
// contract under real crashes: with the supervisor killing the collection
// server mid-study, records acked by a dead incarnation are re-sent and
// re-fire ServerConfig.OnRecord — yet both live consumers (Monitor and
// LiveStudy) must end with exactly the distinct record set the final merged
// dataset holds, and the live query tier must stay answerable over TCP the
// whole time, restarts included.
func TestMonitorAndLiveStudyAcrossServerCrashes(t *testing.T) {
	mon := stream.NewMonitor()
	live := stream.NewLiveStudy(stream.Config{})
	cfg := FieldStudyConfig{
		Seed:        20070801,
		Phones:      6,
		Duration:    3 * phone.StudyMonth,
		JoinWindow:  phone.StudyMonth / 2,
		UploadEvery: 3 * 24 * time.Hour,
		Monitor:     mon,
		LiveStudy:   live,
	}
	cfg.Adversity.ServerCrash = collect.CrashFaults{KillEveryMin: 6, KillEveryMax: 18}
	cfg.Adversity.ServerCompactWAL = 64 << 10

	fs, sup, err := RunFieldStudyWithCollector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	if sup.Crashes() == 0 {
		t.Fatal("no server crashes injected — the at-least-once replay path was not exercised")
	}

	all := fs.Dataset.AllRecords()
	total, devices := 0, 0
	for _, recs := range all {
		if len(recs) > 0 {
			devices++
		}
		total += len(recs)
	}

	// Satellite invariant: the monitor tolerates the duplicate deliveries a
	// restarted incarnation replays — its counts equal the distinct set.
	ms := mon.Snapshot().(*stream.MonitorSnapshot)
	if ms.Records != total || ms.Devices != devices {
		t.Errorf("monitor saw %d records on %d devices; dataset holds %d on %d",
			ms.Records, ms.Devices, total, devices)
	}

	// The live study deduplicates the same tap; with crashes injected the
	// replays actually happened, so the dedup did real work.
	if live.Records() != total {
		t.Errorf("live study saw %d distinct records, dataset holds %d", live.Records(), total)
	}
	if sup.Restarts() > 0 && live.Duplicates() == 0 {
		t.Logf("note: %d restarts but no duplicate deliveries this seed", sup.Restarts())
	}

	// The windowed fold is order-insensitive, so the live view must equal a
	// batch fold of the final dataset byte for byte.
	batch := stream.NewWindowAcc(stream.Config{})
	for id, recs := range all {
		for _, r := range recs {
			batch.Observe(id, r)
		}
	}
	gotW, _ := json.Marshal(live.Window(0))
	wantW, _ := json.Marshal(batch.Stats(0))
	if string(gotW) != string(wantW) {
		t.Errorf("live windowed view diverged from batch fold of the dataset:\n got %s\nwant %s", gotW, wantW)
	}

	// When every delivery arrived in per-device time order, the exact live
	// tables equal a batch fold of the final dataset too (fed the way
	// analysis.New feeds it: sorted devices, stable time order).
	if live.Reordered() == 0 {
		tables := stream.NewTables(stream.Config{})
		for _, id := range sortedStrings(all) {
			tables.AddDevice(id)
			recs := append([]core.Record(nil), all[id]...)
			sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time < recs[j].Time })
			for _, r := range recs {
				tables.Observe(id, r)
			}
		}
		gotT, _ := json.Marshal(live.Tables())
		wantT, _ := json.Marshal(tables.Snapshot())
		if string(gotT) != string(wantT) {
			t.Error("live exact tables diverged from the batch fold despite in-order delivery")
		}
	}

	// The query tier is still serving on the supervisor's address.
	out, err := collect.Query(sup.Addr(), "status")
	if err != nil {
		t.Fatalf("status query: %v", err)
	}
	var st stream.LiveStatus
	if err := json.Unmarshal([]byte(out), &st); err != nil {
		t.Fatalf("status answer %q: %v", out, err)
	}
	if st.Records != total {
		t.Errorf("status query reports %d records, dataset holds %d", st.Records, total)
	}
	for _, q := range []string{"mtbf", "panics", "freezerate"} {
		if out, err := collect.Query(sup.Addr(), q); err != nil || !json.Valid([]byte(out)) {
			t.Errorf("query %s: %q, %v", q, out, err)
		}
	}

	// Monitor dedup also holds against the ground-truth acked ledger.
	for id := range all {
		keys := sup.AckedKeys(id)
		recs := make(map[string]bool)
		for _, r := range fs.Dataset.Records(id) {
			recs[string(core.EncodeRecord(r))] = true
		}
		for _, k := range keys {
			if !recs[k] {
				t.Errorf("device %s: acked record missing from the dataset: %s", id, k)
			}
		}
	}
}
