package sim

import (
	"fmt"
	"testing"
	"time"
)

// --- differential testing: wheel vs reference heap -----------------------
//
// A byte script drives two engines — one on the timing wheel, one on the
// reference heap — through an identical sequence of Schedule / Cancel /
// Run / Step operations, including the shapes the wheel gets wrong first
// if it is wrong at all: same-tick ties (sub-tick ordering through the
// ready list), far-future events (overflow list and triple cascade),
// cancellation of events sitting mid-cascade, and callbacks that re-arm
// or cancel siblings while the queue is draining. After every operation
// the clocks, pending counts and cancel verdicts must agree; at the end
// the full fire traces must be byte-identical.

// diffDelays mixes every placement class: ready (0), level 0 (~ms..s),
// level 1 (~minutes), level 2 (~hours), and overflow (> ~3.26 days).
var diffDelays = []Duration{
	0,
	0, // twice: make same-instant ties common
	time.Millisecond,
	777 * time.Millisecond,
	3 * time.Second,
	90 * time.Second,
	2 * time.Hour,
	50 * time.Hour,
	100 * time.Hour,     // beyond the wheel horizon: overflow
	30 * 24 * time.Hour, // deep overflow
}

var diffRuns = []Duration{
	time.Second,
	70 * time.Second,  // crosses a level-0 window boundary
	75 * time.Minute,  // crosses a level-1 window boundary
	80 * time.Hour,    // crosses the overflow horizon
	24 * time.Hour * 7,
}

// diffRig is one engine plus the script-visible state around it.
type diffRig struct {
	eng   *Engine
	evs   []Event
	trace []string
}

func (r *diffRig) schedule(id int, d Duration, kind, aux byte) {
	var fn func()
	switch kind % 3 {
	case 0: // plain
		fn = func() { r.trace = append(r.trace, fmt.Sprintf("fire %d @%v", id, r.eng.Now())) }
	case 1: // re-arm once half a second later under a derived id
		fn = func() {
			r.trace = append(r.trace, fmt.Sprintf("fire %d @%v", id, r.eng.Now()))
			r.schedule(id+100000, 500*time.Millisecond, 0, 0)
		}
	case 2: // cancel a sibling from inside a callback (cancel-mid-drain)
		fn = func() {
			r.trace = append(r.trace, fmt.Sprintf("fire %d @%v", id, r.eng.Now()))
			if len(r.evs) > 0 {
				ok := r.eng.Cancel(r.evs[int(aux)%len(r.evs)])
				r.trace = append(r.trace, fmt.Sprintf("cb-cancel %d %v", id, ok))
			}
		}
	}
	r.evs = append(r.evs, r.eng.After(d, "diff", fn))
}

// runDiffScript interprets data against both rigs and fails t on the
// first divergence. It returns the (identical) traces for corpus checks.
func runDiffScript(t *testing.T, data []byte) []string {
	t.Helper()
	rigs := [2]*diffRig{
		{eng: NewEngine()},
		{eng: newEngineWithQueue(newHeapQueue())},
	}
	nextID := 0
	check := func(step int) {
		t.Helper()
		w, h := rigs[0], rigs[1]
		if w.eng.Now() != h.eng.Now() {
			t.Fatalf("step %d: clock diverged: wheel %v heap %v", step, w.eng.Now(), h.eng.Now())
		}
		if w.eng.Pending() != h.eng.Pending() {
			t.Fatalf("step %d: pending diverged: wheel %d heap %d", step, w.eng.Pending(), h.eng.Pending())
		}
		if w.eng.Fired() != h.eng.Fired() {
			t.Fatalf("step %d: fired diverged: wheel %d heap %d", step, w.eng.Fired(), h.eng.Fired())
		}
	}
	for i := 0; i+3 < len(data); i += 4 {
		op, a, b, c := data[i], data[i+1], data[i+2], data[i+3]
		switch op % 6 {
		case 0, 1, 2: // schedule (weighted: most common op)
			d := diffDelays[int(a)%len(diffDelays)]
			// Jitter below tick granularity so ties and near-ties both occur.
			d += Duration(b) * time.Millisecond
			id := nextID
			nextID++
			for _, r := range rigs {
				r.schedule(id, d, c%3, c/3)
			}
		case 3: // cancel an arbitrary (possibly fired) handle
			if len(rigs[0].evs) == 0 {
				continue
			}
			k := int(a) % len(rigs[0].evs)
			okW := rigs[0].eng.Cancel(rigs[0].evs[k])
			okH := rigs[1].eng.Cancel(rigs[1].evs[k])
			if okW != okH {
				t.Fatalf("step %d: Cancel(evs[%d]) diverged: wheel %v heap %v", i, k, okW, okH)
			}
		case 4: // bounded run
			d := diffRuns[int(a)%len(diffRuns)] + Duration(b)*time.Second
			until := rigs[0].eng.Now().Add(d)
			for _, r := range rigs {
				if err := r.eng.Run(until); err != nil {
					t.Fatalf("step %d: Run: %v", i, err)
				}
			}
		case 5: // single step
			sW := rigs[0].eng.Step()
			sH := rigs[1].eng.Step()
			if sW != sH {
				t.Fatalf("step %d: Step diverged: wheel %v heap %v", i, sW, sH)
			}
		}
		check(i)
	}
	for _, r := range rigs {
		if err := r.eng.RunAll(); err != nil {
			t.Fatalf("final RunAll: %v", err)
		}
	}
	check(len(data))
	w, h := rigs[0].trace, rigs[1].trace
	if len(w) != len(h) {
		t.Fatalf("trace length diverged: wheel %d heap %d", len(w), len(h))
	}
	for i := range w {
		if w[i] != h[i] {
			t.Fatalf("trace[%d] diverged:\n  wheel: %s\n  heap:  %s", i, w[i], h[i])
		}
	}
	return w
}

func TestWheelVsHeapDifferential(t *testing.T) {
	// Randomized scripts from a deterministic generator. Each seed yields
	// a few hundred operations across every delay class.
	n := 200
	if testing.Short() {
		n = 40
	}
	for seed := uint64(0); seed < uint64(n); seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			r := NewRand(seed ^ 0x77bee1)
			script := make([]byte, 400+r.Intn(800))
			for i := range script {
				script[i] = byte(r.Intn(256))
			}
			runDiffScript(t, script)
		})
	}
}

func TestWheelVsHeapTargetedScripts(t *testing.T) {
	// Hand-built worst cases, one op per 4 bytes: op, delayIdx, jitter, kind.
	cases := map[string][]byte{
		// A burst of same-instant events, then drain: sub-tick tie order.
		"same-tick-ties": {
			0, 0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 1, 0, 0,
			0, 0, 0, 1, 0, 0, 0, 2, 5, 0, 0, 0, 5, 0, 0, 0,
		},
		// Far-future overflow events, then a run crossing the horizon.
		"overflow-cascade": {
			0, 8, 0, 0, 0, 9, 10, 0, 0, 8, 200, 0, 0, 7, 0, 0,
			4, 3, 0, 0, 4, 4, 0, 0,
		},
		// Schedule hours out, cancel while the node sits in level 2,
		// then run across the boundaries that would have cascaded it.
		"cancel-mid-cascade": {
			0, 6, 0, 0, 0, 7, 0, 0, 0, 5, 0, 0,
			3, 0, 0, 0, 3, 1, 0, 0,
			4, 2, 0, 0, 4, 3, 0, 0,
		},
		// Callbacks that cancel siblings while the ready list drains.
		"cancel-from-callback": {
			0, 0, 0, 2, 0, 0, 0, 5, 0, 1, 0, 8, 0, 2, 0, 2,
			0, 0, 0, 1, 4, 0, 0, 0, 4, 1, 0, 0,
		},
		// Re-arming callbacks across an idle gap: cursor resync path.
		"idle-resync": {
			0, 3, 0, 1, 4, 4, 0, 0, 0, 2, 0, 1, 4, 4, 0, 0,
		},
	}
	for name, script := range cases {
		script := script
		t.Run(name, func(t *testing.T) {
			if trace := runDiffScript(t, script); len(trace) == 0 && name != "cancel-mid-cascade" {
				t.Fatalf("script fired no events — not exercising anything")
			}
		})
	}
}

func FuzzWheelVsHeap(f *testing.F) {
	// Seed corpus: the targeted scripts plus a couple of generator runs.
	f.Add([]byte{0, 0, 0, 0, 0, 1, 0, 0, 5, 0, 0, 0})
	f.Add([]byte{0, 8, 0, 0, 0, 9, 10, 0, 4, 3, 0, 0, 4, 4, 0, 0})
	f.Add([]byte{0, 6, 0, 0, 3, 0, 0, 0, 4, 2, 0, 0})
	f.Add([]byte{0, 0, 0, 2, 0, 1, 0, 8, 0, 2, 0, 2, 4, 0, 0, 0})
	f.Add([]byte{0, 3, 0, 1, 4, 4, 0, 0, 0, 2, 0, 1, 4, 4, 0, 0})
	r := NewRand(0xfeed)
	for i := 0; i < 4; i++ {
		script := make([]byte, 64)
		for j := range script {
			script[j] = byte(r.Intn(256))
		}
		f.Add(script)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 4096 {
			data = data[:4096]
		}
		runDiffScript(t, data)
	})
}

// --- event-pool aliasing --------------------------------------------------

// TestEventPoolAliasing proves a recycled node is never observable through
// a stale handle: after an event fires or is cancelled, its handle stays
// dead forever — Cancel through it is a no-op that cannot kill the node's
// next tenant, Pending stays false, and no callback ever double-fires.
func TestEventPoolAliasing(t *testing.T) {
	forEachQueue(t, func(t *testing.T, newEngine func() *Engine) {
		e := newEngine()
		r := NewRand(42)
		fires := map[int]int{}
		type slot struct {
			ev Event
			id int
		}
		var issued []slot
		nextID := 0
		for round := 0; round < 5000; round++ {
			switch r.Intn(4) {
			case 0, 1:
				id := nextID
				nextID++
				ev := e.After(Duration(r.Intn(5000))*time.Millisecond, "alias", func() { fires[id]++ })
				issued = append(issued, slot{ev, id})
			case 2:
				if len(issued) > 0 {
					s := issued[r.Intn(len(issued))]
					wasPending := s.ev.Pending()
					got := e.Cancel(s.ev)
					if got != wasPending {
						t.Fatalf("Cancel returned %v for handle with Pending=%v", got, wasPending)
					}
					if fires[s.id] > 0 && got {
						t.Fatalf("Cancel after fire succeeded for id %d", s.id)
					}
				}
			case 3:
				e.Run(e.Now().Add(Duration(r.Intn(3000)) * time.Millisecond))
			}
		}
		e.RunAll()
		for _, s := range issued {
			if fires[s.id] > 1 {
				t.Fatalf("event %d fired %d times", s.id, fires[s.id])
			}
			if s.ev.Pending() {
				t.Fatalf("handle %d still pending after RunAll", s.id)
			}
		}
	})
}

// TestEventPoolAliasingSharded runs the aliasing workload on four shards
// under RunShards with Workers:4 — each engine's pool is private to its
// shard, and the race detector (make check / chaos run -race) proves the
// recycling scheme involves no cross-goroutine traffic.
func TestEventPoolAliasingSharded(t *testing.T) {
	err := RunShards(8, 4, func(shard int) error {
		e := NewEngine()
		r := NewRand(uint64(shard) * 977)
		fired := make([]int, 0, 4096)
		var evs []Event
		for i := 0; i < 2000; i++ {
			i := i
			switch r.Intn(3) {
			case 0:
				evs = append(evs, e.After(Duration(r.Intn(2000))*time.Millisecond, "s", func() {
					fired = append(fired, i)
				}))
			case 1:
				if len(evs) > 0 {
					e.Cancel(evs[r.Intn(len(evs))])
				}
			case 2:
				if err := e.Run(e.Now().Add(Duration(r.Intn(1500)) * time.Millisecond)); err != nil {
					return err
				}
			}
		}
		if err := e.RunAll(); err != nil {
			return err
		}
		seen := map[int]bool{}
		for _, id := range fired {
			if seen[id] {
				return fmt.Errorf("shard %d: event %d double-fired", shard, id)
			}
			seen[id] = true
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

// --- allocation bounds ----------------------------------------------------

// TestEngineZeroAllocSteadyState pins the headline budget: once the pool
// is warm, a schedule+fire cycle allocates nothing at all — on either
// queue implementation.
func TestEngineZeroAllocSteadyState(t *testing.T) {
	forEachQueue(t, func(t *testing.T, newEngine func() *Engine) {
		e := newEngine()
		fn := func() {}
		// Warm the pool and the heap's slice capacity.
		for i := 0; i < 64; i++ {
			e.After(Duration(i)*time.Millisecond, "warm", fn)
		}
		for e.Step() {
		}
		avg := testing.AllocsPerRun(2000, func() {
			e.After(700*time.Millisecond, "steady", fn)
			e.Step()
		})
		if avg != 0 {
			t.Errorf("steady-state schedule+fire = %v allocs/event, want 0", avg)
		}
	})
}
