package symbos

import (
	"fmt"

	"symfail/internal/sim"
)

// KRequestPending is the TRequestStatus sentinel for an outstanding request.
const KRequestPending = -0x80000001

// ActiveObject is the upper level of Symbian's two-level multitasking
// model: an event handler scheduled non-preemptively by its thread's
// active scheduler. RunL is the event handler; RunError handles leaves
// from RunL (returning true when handled).
type ActiveObject struct {
	name     string
	priority int
	thread   *Thread
	active   bool
	complete bool
	status   int
	runL     func(code int)
	runError func(code int) bool
	cost     sim.Duration
	dead     bool
	runs     uint64
}

// ActiveScheduler serialises the active objects of one thread. It is
// non-preemptive and event driven: a RunL that never yields starves every
// other active object on the thread — including the View Server's, which
// is the mechanism behind ViewSrv 11 panics.
type ActiveScheduler struct {
	thread *Thread
	aos    []*ActiveObject
	seq    int
	down   bool

	// Interned wake-up event: Complete schedules the same label and
	// closure thousands of times per simulated hour, so both are built
	// once here instead of once per completion.
	wakeLabel  string
	wakeFn     func()
	dispatchFn func()
}

func newActiveScheduler(t *Thread) *ActiveScheduler {
	s := &ActiveScheduler{thread: t}
	s.wakeLabel = "active-scheduler " + t.name
	s.dispatchFn = s.dispatchOne
	s.wakeFn = func() {
		t.proc.kernel.Exec(t, "dispatch", s.dispatchFn)
	}
	return s
}

// Thread returns the owning thread.
func (s *ActiveScheduler) Thread() *Thread { return s.thread }

// Len returns the number of registered active objects.
func (s *ActiveScheduler) Len() int { return len(s.aos) }

func (s *ActiveScheduler) shutdown() {
	s.down = true
	for _, ao := range s.aos {
		ao.dead = true
	}
}

// NewActiveObject registers an active object on the thread's scheduler
// (CActiveScheduler::Add). Higher priority values run first.
func (t *Thread) NewActiveObject(name string, priority int, runL func(code int)) *ActiveObject {
	ao := &ActiveObject{
		name:     name,
		priority: priority,
		thread:   t,
		runL:     runL,
	}
	t.scheduler.aos = append(t.scheduler.aos, ao)
	return ao
}

// Name returns the active object's name.
func (ao *ActiveObject) Name() string { return ao.name }

// Priority returns the scheduling priority.
func (ao *ActiveObject) Priority() int { return ao.priority }

// Runs returns how many times RunL has executed.
func (ao *ActiveObject) Runs() uint64 { return ao.runs }

// IsActive reports whether a request is outstanding (CActive::IsActive).
func (ao *ActiveObject) IsActive() bool { return ao.active }

// SetRunError installs the leave handler for RunL (CActive::RunError via
// the scheduler's Error()). Without one, a leaving RunL raises
// E32USER-CBase 47.
func (ao *ActiveObject) SetRunError(fn func(code int) bool) { ao.runError = fn }

// SetCost declares how much CPU time each RunL invocation monopolises the
// scheduler for. Costs beyond the kernel's ViewSrvTimeout trigger the View
// Server watchdog on watched threads.
func (ao *ActiveObject) SetCost(d sim.Duration) { ao.cost = d }

// SetActive marks the request as issued (CActive::SetActive).
func (ao *ActiveObject) SetActive() {
	ao.status = KRequestPending
	ao.active = true
}

// Cancel withdraws an outstanding request (CActive::Cancel).
func (ao *ActiveObject) Cancel() {
	ao.active = false
	ao.complete = false
	ao.status = KErrNone
}

// Complete signals the request with the given code, as a service provider
// does, and schedules the thread's active scheduler to dispatch. Completing
// an active object that never called SetActive produces a stray signal —
// E32USER-CBase 46 — when the scheduler wakes up.
func (ao *ActiveObject) Complete(code int) {
	if ao.dead {
		return
	}
	ao.status = code
	ao.complete = true
	s := ao.thread.scheduler
	ao.thread.proc.kernel.eng.After(0, s.wakeLabel, s.wakeFn)
}

// dispatchOne runs the highest-priority completed active object, if any.
// It executes inside a kernel Exec context.
func (s *ActiveScheduler) dispatchOne() {
	if s.down {
		return
	}
	// Highest priority wins; registration order breaks ties (the first
	// maximum is exactly what the old stable descending sort picked, and
	// the argmax scan allocates nothing).
	var ao *ActiveObject
	for _, cand := range s.aos {
		if cand.complete && !cand.dead && (ao == nil || cand.priority > ao.priority) {
			ao = cand
		}
	}
	if ao == nil {
		return
	}
	ao.complete = false
	if !ao.active {
		s.thread.proc.kernel.Raise(CatE32UserCBase, TypeStraySignal,
			fmt.Sprintf("stray signal: completion for non-active object %q", ao.name))
	}
	ao.active = false
	code := ao.status
	ao.runs++
	k := s.thread.proc.kernel
	if leaveCode := s.thread.Trap(func() { ao.runL(code) }); leaveCode != KErrNone {
		handled := false
		if ao.runError != nil {
			handled = ao.runError(leaveCode)
		}
		if !handled {
			k.Raise(CatE32UserCBase, TypeRunLLeft,
				fmt.Sprintf("RunL of %q left with %s and Error() was not replaced", ao.name, ErrName(leaveCode)))
		}
	}
	if s.thread.viewSrvWatched && ao.cost > k.ViewSrvTimeout {
		k.Raise(CatViewSrv, TypeViewSrvStarved,
			fmt.Sprintf("event handler %q monopolised the active scheduler for %v", ao.name, ao.cost))
	}
}

// Timer is an asynchronous timer service (RTimer) bound to an active
// object. Requesting a timer event while one is outstanding raises
// KERN-EXEC 15.
type Timer struct {
	ao          *ActiveObject
	ev          sim.Event
	outstanding bool

	// Interned per-timer event label and callback: heartbeat timers
	// re-arm every simulated period, so After must not rebuild them.
	label  string
	fireFn func()
}

// NewTimer returns a timer completing into ao.
func NewTimer(ao *ActiveObject) *Timer {
	tm := &Timer{ao: ao}
	tm.label = "rtimer " + ao.name
	tm.fireFn = func() {
		tm.outstanding = false
		tm.ao.Complete(KErrNone)
	}
	return tm
}

// Outstanding reports whether a timer event is pending.
func (tm *Timer) Outstanding() bool { return tm.outstanding }

// After requests a timer event d from now (RTimer::After). The bound
// active object is marked active. A second request while the first is
// outstanding raises KERN-EXEC 15.
func (tm *Timer) After(d sim.Duration) {
	k := tm.ao.thread.proc.kernel
	if tm.outstanding {
		k.Raise(CatKernExec, TypeTimerInUse,
			fmt.Sprintf("timer event requested by %q while one is outstanding", tm.ao.name))
	}
	tm.outstanding = true
	tm.ao.SetActive()
	tm.ev = k.eng.After(d, tm.label, tm.fireFn)
}

// Cancel withdraws the pending timer event (RTimer::Cancel).
func (tm *Timer) Cancel() {
	if !tm.outstanding {
		return
	}
	tm.outstanding = false
	tm.ao.thread.proc.kernel.eng.Cancel(tm.ev)
	tm.ao.Cancel()
}
