package lint_test

import (
	"testing"

	"symfail/internal/lint"
)

// TestSymlintSelfCheck holds symlint to its own rules: the analyzer suite
// must come back clean over internal/lint and cmd/symlint. The linter being
// unable to pass its own lint would make every other green run meaningless.
func TestSymlintSelfCheck(t *testing.T) {
	l, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./internal/lint", "./cmd/symlint")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	for _, d := range lint.Run(pkgs, lint.DefaultAnalyzers()) {
		t.Errorf("symlint does not pass its own lint: %s", d)
	}
}

// TestWholeModuleClean runs the full default suite over every package in
// the module, mirroring the CI `symlint ./...` gate. It is also the
// stale-allow audit: Run reports any //symlint:allow directive that no
// longer suppresses a live diagnostic (pseudo-analyzer "directive"), so an
// annotation outliving its reason fails here.
func TestWholeModuleClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module load is slow; skipped with -short")
	}
	l, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("only %d packages loaded; the whole-module gate is not covering the tree", len(pkgs))
	}
	for _, d := range lint.Run(pkgs, lint.DefaultAnalyzers()) {
		t.Errorf("module is not symlint-clean: %s", d)
	}
}
