package stream

import (
	"time"

	"symfail/internal/core"
	"symfail/internal/sim"
)

// HLKind classifies high-level (user-perceived) failure events.
type HLKind string

// High-level event kinds. UserShutdown is not a failure; it is kept so the
// "include all shutdown events" robustness check of section 6 can run.
const (
	HLFreeze       HLKind = "freeze"
	HLSelfShutdown HLKind = "self-shutdown"
	HLUserShutdown HLKind = "user-shutdown"
)

// HLEvent is one reconstructed high-level event.
type HLEvent struct {
	Device     string
	Kind       HLKind
	Time       sim.Time // when the phone went down (last heartbeat record)
	OffSeconds float64  // reboot duration observed at the following boot

	// refd is set by the device cursor when a finalized panic coalesces
	// with this event, so the streaming CoalescenceAcc can count isolated
	// HL events without holding every panic pointer. The batch Study does
	// not use it (it recomputes relations from Related pointers).
	refd bool
}

// PanicEvent is one panic record enriched by the pipeline.
type PanicEvent struct {
	Device   string
	Time     sim.Time
	Category string
	Type     int
	Apps     []string
	Activity string

	// Burst is the 1-based index of the cascade this panic belongs to
	// (unique per device); BurstLen is the cascade size.
	Burst    int
	BurstLen int
	// Related points at the coalesced high-level event, nil if isolated.
	Related *HLEvent
}

// Key returns the "category type" identity used by the tables.
func (p *PanicEvent) Key() string {
	return core.Record{Kind: core.KindPanic, Category: p.Category, PType: p.Type}.PanicKey()
}

// CoalesceAt relates each panic to the nearest high-level event within the
// window (Figure 4's scheme), overwriting Related. With includeUser true,
// user shutdowns count as high-level events too — the robustness check of
// section 6. The device cursor reproduces exactly this relation online; the
// batch Study calls it directly for window sweeps and restores.
func CoalesceAt(panics []*PanicEvent, hls []*HLEvent, window time.Duration, includeUser bool) {
	for _, p := range panics {
		p.Related = nil
		var best *HLEvent
		var bestGap time.Duration
		for _, hl := range hls {
			if hl.Kind == HLUserShutdown && !includeUser {
				continue
			}
			gap := hl.Time.Sub(p.Time)
			if gap < 0 {
				gap = -gap
			}
			if gap <= window && (best == nil || gap < bestGap) {
				best = hl
				bestGap = gap
			}
		}
		p.Related = best
	}
}
