package symbos

import (
	"fmt"
	"sort"
)

// Publish & Subscribe (RProperty). The System Agent of the study-era
// Symbian exposes system state — battery level, signal strength, call
// state — as properties that clients can read or subscribe to. A
// subscription completes an active object whenever the property changes,
// which is how daemons like the logger's Power Manager learn about battery
// transitions without polling.

// PropertyKey identifies one property (category/key pair in real Symbian;
// a string is enough here).
type PropertyKey string

// Well-known property keys used by the phone model.
const (
	PropBatteryLevel  PropertyKey = "system/battery-level"  // integer percent
	PropBatteryStatus PropertyKey = "system/battery-status" // 0 ok, 1 low
	PropCallState     PropertyKey = "system/call-state"     // 0 idle, 1 in-call
)

// PropertyBus is the kernel-side property store.
type PropertyBus struct {
	kernel *Kernel
	values map[PropertyKey]int
	subs   map[PropertyKey][]*propertySub
}

type propertySub struct {
	ao        *ActiveObject
	active    bool
	cancelled bool
}

// NewPropertyBus creates the property store for one kernel.
func NewPropertyBus(k *Kernel) *PropertyBus {
	return &PropertyBus{
		kernel: k,
		values: make(map[PropertyKey]int),
		subs:   make(map[PropertyKey][]*propertySub),
	}
}

// Define sets a property's initial value (RProperty::Define).
func (b *PropertyBus) Define(key PropertyKey, value int) {
	b.values[key] = value
}

// Get reads a property (RProperty::Get). Reading an undefined property
// returns KErrNotFound.
func (b *PropertyBus) Get(key PropertyKey) (int, int) {
	v, ok := b.values[key]
	if !ok {
		return 0, KErrNotFound
	}
	return v, KErrNone
}

// Set publishes a new value (RProperty::Set), completing every outstanding
// subscription. Setting the same value is still a publication, as on real
// Symbian.
func (b *PropertyBus) Set(key PropertyKey, value int) {
	b.values[key] = value
	subs := b.subs[key]
	for _, s := range subs {
		if s.active && !s.cancelled {
			s.active = false
			s.ao.Complete(KErrNone)
		}
	}
	// Fired and cancelled subscriptions are one-shot; drop them so the
	// list does not grow with every publication.
	live := subs[:0]
	for _, s := range subs {
		if s.active && !s.cancelled {
			live = append(live, s)
		}
	}
	b.subs[key] = live
}

// Keys returns the defined property keys, sorted.
func (b *PropertyBus) Keys() []PropertyKey {
	out := make([]PropertyKey, 0, len(b.values))
	for k := range b.values {
		out = append(out, k)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Property is a client handle to one property (RProperty attached).
type Property struct {
	bus *PropertyBus
	key PropertyKey
	sub *propertySub
}

// Attach opens a handle to the property (RProperty::Attach).
func (b *PropertyBus) Attach(key PropertyKey) *Property {
	return &Property{bus: b, key: key}
}

// Key returns the property key.
func (p *Property) Key() PropertyKey { return p.key }

// Get reads the current value.
func (p *Property) Get() (int, int) { return p.bus.Get(p.key) }

// Subscribe registers interest: ao completes on the next publication
// (RProperty::Subscribe). Re-subscribing while a subscription is
// outstanding raises KERN-EXEC 15 — like every other "request while one is
// pending" misuse of an asynchronous service.
func (p *Property) Subscribe(ao *ActiveObject) {
	if p.sub != nil && p.sub.active && !p.sub.cancelled {
		p.bus.kernel.Raise(CatKernExec, TypeTimerInUse,
			fmt.Sprintf("property %q subscribed while a subscription is outstanding", p.key))
	}
	ao.SetActive()
	p.sub = &propertySub{ao: ao, active: true}
	p.bus.subs[p.key] = append(p.bus.subs[p.key], p.sub)
}

// Cancel withdraws the outstanding subscription (RProperty::Cancel).
func (p *Property) Cancel() {
	if p.sub == nil || !p.sub.active {
		return
	}
	p.sub.cancelled = true
	p.sub.active = false
	p.sub.ao.Cancel()
}
