package analysis

import (
	"sort"
	"time"

	"symfail/internal/analysis/stream"
)

// Every table method in this file delegates to the reducers in
// internal/analysis/stream — the same code the streaming accumulators run —
// so the batch and streaming paths cannot drift apart.

// KnownPanicKeys is the closed panic taxonomy of the study: every
// "Category Type" pair from Table 2 of the paper, i.e. every panic the
// simulator can mechanistically raise. The `symlint` panictaxonomy analyzer
// statically cross-checks this table against the raise sites in
// internal/symbos and internal/phone in both directions, so adding a panic
// to the simulator without classifying it here (or vice versa) fails
// `make lint`.
var KnownPanicKeys = map[string]bool{
	"KERN-EXEC 0":      true,
	"KERN-EXEC 3":      true,
	"KERN-EXEC 15":     true,
	"KERN-SVR 0":       true,
	"E32USER-CBase 33": true,
	"E32USER-CBase 46": true,
	"E32USER-CBase 47": true,
	"E32USER-CBase 69": true,
	"E32USER-CBase 91": true,
	"E32USER-CBase 92": true,
	"USER 10":          true,
	"USER 11":          true,
	"USER 70":          true,
	"ViewSrv 11":       true,
	"EIKON-LISTBOX 3":  true,
	"EIKON-LISTBOX 5":  true,
	"EIKCOCTL 70":      true,
	"Phone.app 2":      true,
	"MSGS Client 3":    true,
	"MMFAudioClient 4": true,
}

// UnclassifiedPanicKeys returns the observed panic keys that fall outside
// the taxonomy, sorted. A non-empty result means the event stream contains
// panics the study tables would report without a documented meaning — the
// dynamic counterpart of the static symlint check.
func (s *Study) UnclassifiedPanicKeys() []string {
	seen := make(map[string]bool)
	for _, p := range s.allPanics() {
		if key := p.Key(); !KnownPanicKeys[key] && !seen[key] {
			seen[key] = true
		}
	}
	keys := make([]string, 0, len(seen))
	for key := range seen {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys
}

// PanicRow is one row of the Table 2 reproduction.
type PanicRow = stream.PanicRow

// PanicTable reproduces Table 2: panic category/type frequencies with the
// Symbian documentation excerpts.
func (s *Study) PanicTable() []PanicRow {
	return stream.PanicTableRows(s.allPanics())
}

// CategoryShare sums the percentage of panics whose category matches
// (e.g. "E32USER-CBase" across all its types).
func (s *Study) CategoryShare(category string) float64 {
	return stream.CategoryShareOf(s.allPanics(), category)
}

// BurstStats reproduces Figure 3: the distribution of panic cascade sizes.
type BurstStats = stream.BurstStats

// Bursts computes the cascade statistics.
func (s *Study) Bursts() BurstStats {
	return stream.BurstStatsOf(s.deviceIDs, s.panicsByDevice)
}

// CoalescenceStats reproduces Figure 5: how panics relate to high-level
// events.
type CoalescenceStats = stream.CoalescenceStats

// RelatedCount pairs related and total panic counts for one panic key.
type RelatedCount = stream.RelatedCount

// Coalesce computes panic/HL-event relations at the configured window.
func (s *Study) Coalesce() CoalescenceStats {
	return stream.CoalescenceStatsOf(s.allPanics(), s.allHLs(HLFreeze, HLSelfShutdown))
}

// RelatedPercentWithAllShutdowns re-runs coalescence counting user
// shutdowns as high-level events — the paper's robustness check: the
// related share rises only ~4 points, confirming that the filtered events
// were user-triggered.
func (s *Study) RelatedPercentWithAllShutdowns() float64 {
	s.coalesceAll(s.opts.CoalescenceWindow, true)
	related, total := 0, 0
	for _, p := range s.allPanics() {
		total++
		if p.Related != nil {
			related++
		}
	}
	// Restore the standard coalescence.
	s.coalesceAll(s.opts.CoalescenceWindow, false)
	if total == 0 {
		return 0
	}
	return 100 * float64(related) / float64(total)
}

// WindowSweepPoint is one point of the Figure 4 window-size justification.
type WindowSweepPoint struct {
	Window  time.Duration
	Related int
}

// WindowSweep recomputes the number of related panics for each candidate
// coalescence window. The knee of this curve is why the paper fixes the
// window at five minutes.
func (s *Study) WindowSweep(windows []time.Duration) []WindowSweepPoint {
	out := make([]WindowSweepPoint, 0, len(windows))
	for _, w := range windows {
		s.coalesceAll(w, false)
		related := 0
		for _, p := range s.allPanics() {
			if p.Related != nil {
				related++
			}
		}
		out = append(out, WindowSweepPoint{Window: w, Related: related})
	}
	s.coalesceAll(s.opts.CoalescenceWindow, false)
	return out
}

// ActivityRow is one row of the Table 3 reproduction: HL-related panics by
// user activity.
type ActivityRow = stream.ActivityRow

// ActivityTable reproduces Table 3: the user activity at the time of
// HL-related panics. Percentages are of the total number of related panics.
func (s *Study) ActivityTable() []ActivityRow {
	return stream.ActivityRowsOf(s.allPanics())
}

// RealTimeActivityShare returns the percentage of HL-related panics that
// occurred during a voice call or message — the paper reports ~45%.
func (s *Study) RealTimeActivityShare() float64 {
	return stream.RealTimeShareOf(s.allPanics())
}

// RunningAppsHistogram reproduces Figure 6: the number of running
// applications at panic time.
func (s *Study) RunningAppsHistogram(maxApps int) map[int]int {
	return stream.RunningAppsHistogramOf(s.allPanics(), maxApps)
}

// AppPanicRow is one row of the Table 4 reproduction: for an outcome
// (freeze / self-shutdown / none) and panic category, the percentage of
// panics that had each application running.
type AppPanicRow = stream.AppPanicRow

// AppPanicTable reproduces Table 4: the panic/running-application
// relationship, split by high-level outcome.
func (s *Study) AppPanicTable() []AppPanicRow {
	return stream.AppPanicTableOf(s.allPanics())
}

// AppShare pairs an application with its share of panics.
type AppShare = stream.AppShare

// TopPanicApps returns the applications most frequently running at panic
// time, as (app, share-percent) pairs sorted descending — the paper singles
// out Messages, Camera, the Bluetooth browser and the call Log.
func (s *Study) TopPanicApps(n int) []AppShare {
	return stream.TopPanicAppsOf(s.allPanics(), n)
}

// Snapshot computes the full streaming table set from the batch study —
// the byte-identity bridge the equivalence tests compare against a
// stream.Tables snapshot of the same records.
func (s *Study) Snapshot() *stream.TablesSnapshot {
	_, hours := s.UptimeHours()
	return &stream.TablesSnapshot{
		Config:                     s.opts,
		Devices:                    s.Devices(),
		RebootDurations:            s.RebootDurations(),
		ExplainedShutdowns:         s.explainedShutdowns,
		UserShutdowns:              len(s.allHLs(HLUserShutdown)),
		MTBF:                       stream.MTBFOf(hours, len(s.allHLs(HLFreeze)), len(s.allHLs(HLSelfShutdown))),
		PanicTable:                 s.PanicTable(),
		CategoryShare:              s.categoryShares(),
		Bursts:                     s.Bursts(),
		Coalescence:                s.Coalesce(),
		RelatedPercentAllShutdowns: s.RelatedPercentWithAllShutdowns(),
		Activity:                   s.ActivityTable(),
		RealTimeActivitySharePct:   s.RealTimeActivityShare(),
		RunningApps:                s.RunningAppsHistogram(stream.RunningAppsCap),
		AppTable:                   s.AppPanicTable(),
		TopApps:                    s.TopPanicApps(0),
	}
}

// categoryShares mirrors the streaming panic reducer's per-category shares.
func (s *Study) categoryShares() map[string]float64 {
	counts := make(map[string]int)
	total := 0
	for _, p := range s.allPanics() {
		counts[p.Category]++
		total++
	}
	out := make(map[string]float64, len(counts))
	for cat, n := range counts {
		out[cat] = 100 * float64(n) / float64(total)
	}
	return out
}
