// Package maporderfix is a symlint golden-test fixture for the maporder
// analyzer: order-dependent effects inside map iteration.
package maporderfix

import (
	"fmt"
	"sort"
	"strings"
)

// Positive: append to an outer slice with no subsequent sort.
func collectUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want: append without sort
	}
	return keys
}

// Positive: printing inside the range leaks map order to the output.
func printAll(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want: output follows map order
	}
}

// Positive: string concatenation onto an outer variable.
func concat(m map[string]int) string {
	out := ""
	for k := range m {
		out += k // want: result depends on map order
	}
	return out
}

// Positive: a channel consumer observes map order.
func stream(m map[string]int, ch chan<- string) {
	for k := range m {
		ch <- k // want: channel send
	}
}

// Positive: writing to an outer builder.
func build(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want: output follows map order
	}
	return b.String()
}

// Negative: the canonical collect-then-sort idiom.
func collectSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// Negative: the slice is per-iteration, so its order is per-key.
func perKey(m map[string][]int) map[string]int {
	out := make(map[string]int)
	for k, vs := range m {
		var doubled []int
		for _, v := range vs {
			doubled = append(doubled, 2*v)
		}
		out[k] = len(doubled)
	}
	return out
}

// Negative: commutative accumulation does not depend on order.
func sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Negative: writer created inside the loop, order cannot leak out of it.
func perIterationWriter(m map[string]int) map[string]string {
	out := make(map[string]string)
	for k, v := range m {
		var b strings.Builder
		fmt.Fprintf(&b, "%s=%d", k, v)
		out[k] = b.String()
	}
	return out
}
