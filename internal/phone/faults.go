package phone

import (
	"sync"
	"time"

	"symfail/internal/symbos"
)

// faultProfile describes one defect class: the panic it manifests as (via a
// mechanistic misuse of a symbos API), how often it occurs relative to the
// other classes (Table 2 weights), which activity contexts it is bound to,
// and the probabilities that the resulting panic escalates into a
// high-level event (Figure 5b).
type faultProfile struct {
	cat    symbos.Category
	typ    int
	weight float64 // relative frequency, in Table 2 percentage points

	// freezeP/shutdownP is the chance the *primary* panic escalates into a
	// phone freeze / self-shutdown (the remainder terminates only the
	// offending application).
	freezeP, shutdownP float64

	inject func(f *faultModel)
}

// Context groups. USER descriptor panics and ViewSrv starvation manifest
// only during voice calls; Phone.app assertions only while a message is
// being sent or received (section 6, Table 3). Everything else can trigger
// anywhere, with the activity-risk multipliers doing the weighting.
type contextClass int

const (
	ctxAny contextClass = iota + 1
	ctxCallOnly
	ctxMessageOnly
)

// faultModel owns the defect classes of one device and orchestrates panic
// cascades (Figure 3) and their escalation into freezes and self-shutdowns.
type faultModel struct {
	d *Device

	// The profile tables and their weight vectors alias the shared
	// package-level tables — they are pure Table 2 constants, identical
	// for every device, and building them per device cost ~4KB × fleet
	// size at the million-phone scale.
	anyP, callP, msgP []faultProfile
	anyW, callW, msgW []float64

	inBurst        bool
	burstRemaining int
	outcomeByKey   map[string]faultProfile
}

// sharedFaultTables holds the device-independent defect-class tables,
// built once on first use. Read-only after construction, so sharing them
// across devices (and shards) is safe.
var sharedFaultTables struct {
	once              sync.Once
	anyP, callP, msgP []faultProfile
	anyW, callW, msgW []float64
	outcomeByKey      map[string]faultProfile
}

func newFaultModel(d *Device) *faultModel {
	t := &sharedFaultTables
	t.once.Do(buildFaultTables)
	return &faultModel{
		d:    d,
		anyP: t.anyP, callP: t.callP, msgP: t.msgP,
		anyW: t.anyW, callW: t.callW, msgW: t.msgW,
		outcomeByKey: t.outcomeByKey,
	}
}

func buildFaultTables() {
	t := &sharedFaultTables
	t.outcomeByKey = make(map[string]faultProfile)
	add := func(ctx contextClass, p faultProfile) {
		switch ctx {
		case ctxCallOnly:
			t.callP = append(t.callP, p)
			t.callW = append(t.callW, p.weight)
		case ctxMessageOnly:
			t.msgP = append(t.msgP, p)
			t.msgW = append(t.msgW, p.weight)
		default:
			t.anyP = append(t.anyP, p)
			t.anyW = append(t.anyW, p.weight)
		}
		t.outcomeByKey[symbos.PanicKey(p.cat, p.typ)] = p
	}

	// Weights are the paper's Table 2 percentages; outcome probabilities
	// are calibrated so that ~51% of panics relate to an HL event
	// (Figure 5a) with the per-category structure of Figure 5b: UI/audio
	// application panics never escalate, Phone.app and MSGS Client always
	// reboot the phone, KERN-EXEC 3 drives both freezes and shutdowns.
	add(ctxAny, faultProfile{symbos.CatKernExec, symbos.TypeBadHandle, 6.31, 0.40, 0.10, (*faultModel).injectBadHandle})
	add(ctxAny, faultProfile{symbos.CatKernExec, symbos.TypeUnhandledException, 56.31, 0.25, 0.20, (*faultModel).injectAccessViolation})
	add(ctxAny, faultProfile{symbos.CatKernExec, symbos.TypeTimerInUse, 0.51, 0.50, 0, (*faultModel).injectTimerInUse})
	add(ctxAny, faultProfile{symbos.CatE32UserCBase, symbos.TypeObjectRefsRemain, 5.56, 0.45, 0.10, (*faultModel).injectObjectRefsRemain})
	add(ctxAny, faultProfile{symbos.CatE32UserCBase, symbos.TypeStraySignal, 0.76, 0.45, 0.10, (*faultModel).injectStraySignal})
	add(ctxAny, faultProfile{symbos.CatE32UserCBase, symbos.TypeRunLLeft, 0.25, 0.45, 0.10, (*faultModel).injectRunLLeave})
	add(ctxAny, faultProfile{symbos.CatE32UserCBase, symbos.TypeNoTrapHandler, 10.10, 0.45, 0.10, (*faultModel).injectNoTrapHandler})
	add(ctxAny, faultProfile{symbos.CatE32UserCBase, symbos.TypeCBase91, 0.51, 0.45, 0.10, (*faultModel).injectPopUnderflow})
	add(ctxAny, faultProfile{symbos.CatE32UserCBase, symbos.TypeCBase92, 0.76, 0.45, 0.10, (*faultModel).injectPopDestroyUnderflow})
	add(ctxAny, faultProfile{symbos.CatUser, symbos.TypeNullMessageHandle, 0.76, 0.45, 0.10, (*faultModel).injectNullMessagePtr})
	add(ctxAny, faultProfile{symbos.CatKernSvr, symbos.TypeSvrBadHandle, 0.25, 0, 0, (*faultModel).injectCorruptClose})
	add(ctxAny, faultProfile{symbos.CatEikonListbox, symbos.TypeListboxNoView, 0.25, 0, 0, (*faultModel).injectListboxNoView})
	add(ctxAny, faultProfile{symbos.CatEikonListbox, symbos.TypeListboxInvalidIndex, 0.76, 0, 0, (*faultModel).injectListboxBadIndex})
	add(ctxAny, faultProfile{symbos.CatEikCoCtl, symbos.TypeEdwinCorrupt, 0.25, 0, 0, (*faultModel).injectEdwinCorrupt})
	add(ctxAny, faultProfile{symbos.CatMMFAudioClient, symbos.TypeVolumeOutOfRange, 0.25, 0, 0, (*faultModel).injectVolume})
	add(ctxAny, faultProfile{symbos.CatMsgsClient, symbos.TypeMsgsAsyncWrite, 6.31, 0, 1.0, (*faultModel).injectMsgsOverflow})

	add(ctxCallOnly, faultProfile{symbos.CatUser, symbos.TypeDesIndexOutOfRange, 1.52, 0.45, 0.10, (*faultModel).injectDesOutOfRange})
	add(ctxCallOnly, faultProfile{symbos.CatUser, symbos.TypeDesOverflow, 5.81, 0.45, 0.10, (*faultModel).injectDesOverflow})
	add(ctxCallOnly, faultProfile{symbos.CatViewSrv, symbos.TypeViewSrvStarved, 2.53, 0.60, 0, (*faultModel).injectViewSrvStarvation})

	add(ctxMessageOnly, faultProfile{symbos.CatPhoneApp, symbos.TypePhoneAppInternal, 0.25, 0, 1.0, (*faultModel).injectPhoneAppAssert})
}

// pick draws a profile from a set, weighted by Table 2 frequency. weights
// is the set's precomputed weight vector (same order).
func (f *faultModel) pick(set []faultProfile, weights []float64) faultProfile {
	return set[f.d.rng.WeightedIndex(weights)]
}

// trigger fires one primary defect opportunity: choose a defect class
// consistent with the current activity and execute its misuse.
func (f *faultModel) trigger() {
	d := f.d
	var p faultProfile
	switch d.currentActivity {
	case ActVoiceCall:
		if d.rng.Bool(d.cfg.CallOnlyBias) {
			p = f.pick(f.callP, f.callW)
		} else {
			p = f.pick(f.anyP, f.anyW)
		}
	case ActMessage:
		if d.rng.Bool(d.cfg.MessageOnlyBias) {
			p = f.pick(f.msgP, f.msgW)
		} else {
			p = f.pick(f.anyP, f.anyW)
		}
	default:
		p = f.pick(f.anyP, f.anyW)
	}
	f.inBurst = false
	p.inject(f)
}

// afterPanic is called by the device's kernel panic handler for every panic
// (primary or cascade follower). It terminates the offending application,
// decides whether the failure propagates into a cascade, and whether the
// phone freezes or reboots.
func (f *faultModel) afterPanic(p *symbos.Panic, proc *symbos.Process) {
	d := f.d
	if proc != nil && !proc.System() {
		d.kernel.TerminateProcess(proc)
	}
	if f.inBurst {
		// A follower in an ongoing cascade: maybe keep propagating.
		f.burstRemaining--
		if f.burstRemaining > 0 {
			f.scheduleFollower()
		}
		return
	}

	prof, known := f.outcomeByKey[p.Key()]
	freezeP, shutdownP := 0.0, 0.0
	if known {
		freezeP, shutdownP = prof.freezeP, prof.shutdownP
	}
	if p.System {
		// A panic inside a critical system server always reboots the
		// phone ("the OS kernel always reboots the phone if any of these
		// applications fails").
		freezeP, shutdownP = 0, 1
	}

	followers := 0
	if d.rng.Bool(d.cfg.BurstProb) {
		followers = 1 + d.rng.Geometric(1-d.cfg.BurstContinue)
		f.inBurst = true
		f.burstRemaining = followers
		f.scheduleFollower()
	}

	// The HL event, if any, lands after the cascade has played out.
	hlDelay := time.Duration(followers+2)*2*d.cfg.BurstGap + d.rng.ExpDuration(5*time.Second)
	gen := d.bootGen
	cause := "panic " + p.Key()
	switch r := d.rng.Float64(); {
	case r < freezeP:
		d.eng.After(hlDelay, "panic-freeze "+d.id, func() {
			if d.live(gen) {
				d.Freeze(cause)
			}
		})
	case r < freezeP+shutdownP:
		d.eng.After(hlDelay, "panic-shutdown "+d.id, func() {
			if d.live(gen) {
				d.SelfShutdown(cause)
			}
		})
	}
}

// scheduleFollower queues the next panic of a cascade: error propagation
// between applications, typically from real-time tasks into interactive
// applications (section 1).
func (f *faultModel) scheduleFollower() {
	d := f.d
	gen := d.bootGen
	gap := d.rng.LogNormalDuration(d.cfg.BurstGap, 0.5)
	d.eng.After(gap, "burst-panic "+d.id, func() {
		if !d.live(gen) {
			f.inBurst = false
			return
		}
		f.inBurst = true
		p := f.pick(f.anyP, f.anyW)
		p.inject(f)
		f.inBurst = false
	})
}

// victim returns the application that hosts the next misuse: the foreground
// application when an activity is in progress, otherwise a random running
// application, otherwise the idle shell.
func (f *faultModel) victim() *App {
	d := f.d
	if d.currentActivity != ActIdle {
		if names := activityApps[d.currentActivity]; len(names) > 0 {
			if a, ok := d.apps[names[0]]; ok && a.Alive() {
				return a
			}
		}
	}
	if a := d.randomRunningApp(); a != nil {
		return a
	}
	return d.shellApp()
}

// victimNamed makes sure a specific app hosts the misuse (launching it if
// necessary — e.g. the telephony stack is always resident).
func (f *faultModel) victimNamed(name string) *App {
	return f.d.LaunchApp(name)
}

// Injection methods: each performs the real API misuse behind its panic
// class, in the victim application's thread. The kernel's Exec boundary
// turns the misuse into a dispatched panic; nothing below fabricates a
// panic record directly.

func (f *faultModel) exec(a *App, fn func(k *symbos.Kernel, t *symbos.Thread)) {
	k := f.d.kernel
	t := a.proc.Main()
	k.Exec(t, "fault "+a.name, func() { fn(k, t) })
}

// injectAccessViolation: dereference NULL, dereference freed memory, or
// corrupt the heap with a double free — all KERN-EXEC 3.
func (f *faultModel) injectAccessViolation() {
	a := f.victim()
	f.exec(a, func(k *symbos.Kernel, t *symbos.Thread) {
		h := a.proc.Heap()
		switch f.d.rng.Intn(3) {
		case 0:
			symbos.NullPtr(k).Deref()
		case 1:
			c := h.AllocL(t, 16, "stale-view")
			p := symbos.PtrTo(k, c)
			h.Free(c)
			p.Deref()
		default:
			c := h.AllocL(t, 16, "shared-buffer")
			h.Free(c)
			h.Free(c)
		}
	})
}

// injectBadHandle: use a raw handle that is not in the object index
// (KERN-EXEC 0).
func (f *faultModel) injectBadHandle() {
	a := f.victim()
	f.exec(a, func(k *symbos.Kernel, t *symbos.Thread) {
		a.proc.FindObject(a.proc.CorruptHandle())
	})
}

// injectTimerInUse: request a timer event while one is outstanding
// (KERN-EXEC 15).
func (f *faultModel) injectTimerInUse() {
	a := f.victim()
	f.exec(a, func(k *symbos.Kernel, t *symbos.Thread) {
		ao := t.NewActiveObject("poll", 1, func(int) {})
		tm := symbos.NewTimer(ao)
		tm.After(time.Second)
		tm.After(time.Second)
	})
}

// injectObjectRefsRemain: delete a CObject while references remain
// (E32USER-CBase 33).
func (f *faultModel) injectObjectRefsRemain() {
	a := f.victim()
	f.exec(a, func(k *symbos.Kernel, t *symbos.Thread) {
		o := symbos.NewCObject(k, "session-container")
		o.AddRef()
		o.Delete()
	})
}

// injectStraySignal: complete an active object that never called SetActive
// (E32USER-CBase 46). The panic fires at the next scheduler dispatch.
func (f *faultModel) injectStraySignal() {
	a := f.victim()
	f.exec(a, func(k *symbos.Kernel, t *symbos.Thread) {
		ao := t.NewActiveObject("notifier", 1, func(int) {})
		ao.Complete(symbos.KErrNone)
	})
}

// injectRunLLeave: an active object whose RunL leaves with Error() not
// replaced (E32USER-CBase 47).
func (f *faultModel) injectRunLLeave() {
	a := f.victim()
	f.exec(a, func(k *symbos.Kernel, t *symbos.Thread) {
		ao := t.NewActiveObject("fetcher", 1, func(int) {
			t.Leave(symbos.KErrNoMemory)
		})
		ao.SetActive()
		ao.Complete(symbos.KErrNone)
	})
}

// injectNoTrapHandler: a worker thread that uses the cleanup stack without
// ever creating a CTrapCleanup (E32USER-CBase 69).
func (f *faultModel) injectNoTrapHandler() {
	a := f.victim()
	worker := a.proc.SpawnThread(a.name + "::Worker")
	worker.DropCleanupStack()
	f.d.kernel.Exec(worker, "fault "+a.name, func() {
		worker.PushL(func() {})
	})
}

// injectPopUnderflow / injectPopDestroyUnderflow: unbalanced cleanup-stack
// pops (the undocumented E32USER-CBase 91/92 internal assertions).
func (f *faultModel) injectPopUnderflow() {
	a := f.victim()
	f.exec(a, func(k *symbos.Kernel, t *symbos.Thread) {
		t.Pop(1)
	})
}

func (f *faultModel) injectPopDestroyUnderflow() {
	a := f.victim()
	f.exec(a, func(k *symbos.Kernel, t *symbos.Thread) {
		t.PopAndDestroy(2)
	})
}

// injectNullMessagePtr: the victim's in-process service completes a request
// through a null RMessagePtr (USER 70). The panic lands in the victim
// (server-side), driven by a request from the idle shell.
func (f *faultModel) injectNullMessagePtr() {
	a := f.victim()
	shell := f.d.shellApp()
	f.d.kernel.Exec(shell.proc.Main(), "fault-client", func() {
		sess := a.svc.Connect(shell.proc.Main())
		sess.SendReceive(OpCorruptComplete, "")
	})
}

// injectCorruptClose: close a session through a corrupt handle (KERN-SVR 0).
func (f *faultModel) injectCorruptClose() {
	a := f.victim()
	f.exec(a, func(k *symbos.Kernel, t *symbos.Thread) {
		sess := f.d.appArch.Connect(t)
		sess.CorruptSessionHandle()
		sess.Close()
	})
}

// injectListboxNoView / injectListboxBadIndex: eikon list box misuse
// (EIKON-LISTBOX 3 / 5).
func (f *faultModel) injectListboxNoView() {
	a := f.victim()
	f.exec(a, func(k *symbos.Kernel, t *symbos.Thread) {
		lb := symbos.NewListBox(k)
		lb.AddItem("entry")
		lb.DetachView()
		lb.Draw()
	})
}

func (f *faultModel) injectListboxBadIndex() {
	a := f.victim()
	f.exec(a, func(k *symbos.Kernel, t *symbos.Thread) {
		lb := symbos.NewListBox(k)
		lb.AddItem("only")
		lb.SetCurrentItem(1 + f.d.rng.Intn(5))
	})
}

// injectEdwinCorrupt: corrupt inline-editing state (EIKCOCTL 70).
func (f *faultModel) injectEdwinCorrupt() {
	a := f.victim()
	f.exec(a, func(k *symbos.Kernel, t *symbos.Thread) {
		ed := symbos.NewEdwin(k, 160)
		ed.BeginInlineEdit()
		ed.CorruptInlineState()
		ed.CommitInlineEdit("predictive")
	})
}

// injectVolume: SetVolume with a value of 10 or more (MMFAudioClient 4).
func (f *faultModel) injectVolume() {
	a := f.victim()
	f.exec(a, func(k *symbos.Kernel, t *symbos.Thread) {
		symbos.NewAudioClient(k).SetVolume(10 + f.d.rng.Intn(5))
	})
}

// injectMsgsOverflow: the messaging client passes an under-sized reply
// descriptor to the Message Server (MSGS Client 3). It always reboots the
// phone — the Messages application is a core application.
func (f *faultModel) injectMsgsOverflow() {
	a := f.victimNamed(AppMessages)
	f.exec(a, func(k *symbos.Kernel, t *symbos.Thread) {
		tiny := symbos.NewBuf(k, 8)
		a.msgsQueryInto(OpSendMessage, "status-query", tiny)
	})
}

// injectDesOutOfRange / injectDesOverflow: 16-bit descriptor misuse in the
// in-call UI (USER 10 / USER 11) — observed by the paper only during voice
// calls.
func (f *faultModel) injectDesOutOfRange() {
	a := f.victimNamed(AppTelephone)
	f.exec(a, func(k *symbos.Kernel, t *symbos.Thread) {
		number := symbos.NewBuf(k, 32)
		number.Copy("+390811234567")
		number.Mid(10, 8) // reads past the end of the caller-id string
	})
}

func (f *faultModel) injectDesOverflow() {
	a := f.victimNamed(AppTelephone)
	f.exec(a, func(k *symbos.Kernel, t *symbos.Thread) {
		name := symbos.NewBuf(k, 12)
		name.Copy("conference")
		name.Append(" with a very long participant list")
	})
}

// injectViewSrvStarvation: an event handler monopolises the active
// scheduler during a call, so the View Server declares the application
// unresponsive (ViewSrv 11).
func (f *faultModel) injectViewSrvStarvation() {
	a := f.victim()
	f.exec(a, func(k *symbos.Kernel, t *symbos.Thread) {
		ao := t.NewActiveObject("redraw-loop", 1, func(int) {})
		ao.SetCost(45 * time.Second)
		ao.SetActive()
		ao.Complete(symbos.KErrNone)
	})
}

// injectPhoneAppAssert: the undocumented telephony assertion (Phone.app 2),
// observed only while a short message is sent or received. Phone.app is a
// core application: the kernel reboots the phone when it fails.
func (f *faultModel) injectPhoneAppAssert() {
	a := f.victimNamed(AppTelephone)
	f.exec(a, func(k *symbos.Kernel, t *symbos.Thread) {
		k.Raise(symbos.CatPhoneApp, symbos.TypePhoneAppInternal,
			"telephony state assertion failed while delivering SMS PDU")
	})
}
