package phone

import (
	"bytes"
	"testing"

	"symfail/internal/sim"
)

func TestFSTornWriteOnCrash(t *testing.T) {
	fs := NewFS()
	fs.EnableFaults(FlashFaults{TornWriteProb: 1}, sim.NewRand(3))
	fs.Write("log", []byte("stable-prefix|"))
	fs.Append("log", []byte("in-flight-record"))
	fs.Crash()
	data, ok := fs.Read("log")
	if !ok {
		t.Fatal("file vanished")
	}
	if !bytes.HasPrefix(data, []byte("stable-prefix|")) {
		t.Fatalf("crash damaged the synced prefix: %q", data)
	}
	if len(data) >= len("stable-prefix|in-flight-record") {
		t.Fatalf("in-flight append survived the crash whole: %q", data)
	}
	if fs.TornWrites() != 1 {
		t.Errorf("TornWrites = %d", fs.TornWrites())
	}
	// A second crash with nothing in flight tears nothing further.
	before := len(data)
	fs.Crash()
	data, _ = fs.Read("log")
	if len(data) != before {
		t.Error("crash with no write in flight changed the file")
	}
}

func TestFSCrashWithoutFaultsIsNoop(t *testing.T) {
	fs := NewFS()
	fs.Write("log", []byte("hello"))
	fs.Crash()
	if data, _ := fs.Read("log"); string(data) != "hello" {
		t.Errorf("perfect flash tore a write: %q", data)
	}
}

func TestFSQuotaRejectsWholeWrites(t *testing.T) {
	fs := NewFS()
	fs.EnableFaults(FlashFaults{QuotaBytes: 10}, sim.NewRand(1))
	if !fs.Write("a", []byte("12345")) {
		t.Fatal("write within quota rejected")
	}
	if fs.Append("a", []byte("67890x")) {
		t.Fatal("append past quota accepted")
	}
	if data, _ := fs.Read("a"); string(data) != "12345" {
		t.Errorf("rejected append left partial data: %q", data)
	}
	// Replacing a file accounts for the bytes it frees.
	if !fs.Write("a", []byte("0123456789")) {
		t.Error("replacement within quota rejected")
	}
	if fs.Write("b", []byte("x")) {
		t.Error("write past quota accepted")
	}
	if fs.QuotaRejects() != 2 {
		t.Errorf("QuotaRejects = %d, want 2", fs.QuotaRejects())
	}
	if !fs.CanWrite("a", []byte("shorter")) || fs.CanAppend("a", []byte("y")) {
		t.Error("quota arithmetic wrong")
	}
}

func TestFSBitRotFlipsExactlyOneBit(t *testing.T) {
	fs := NewFS()
	fs.EnableFaults(FlashFaults{BitRotPerWrite: 1}, sim.NewRand(7))
	orig := []byte("the quick brown fox jumps over the lazy dog")
	fs.Write("f", orig)
	got, _ := fs.Read("f")
	if len(got) != len(orig) {
		t.Fatalf("bit rot changed the length: %d != %d", len(got), len(orig))
	}
	diff := 0
	for i := range got {
		for b := 0; b < 8; b++ {
			if (got[i]^orig[i])>>b&1 == 1 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Errorf("bit rot flipped %d bits, want exactly 1", diff)
	}
	if fs.BitFlips() != 1 {
		t.Errorf("BitFlips = %d", fs.BitFlips())
	}
}

// TestFSFaultsDeterministic: identical seeds produce identical damage.
func TestFSFaultsDeterministic(t *testing.T) {
	run := func() []byte {
		fs := NewFS()
		fs.EnableFaults(FlashFaults{TornWriteProb: 0.7, BitRotPerWrite: 0.3}, sim.NewRand(42))
		for i := 0; i < 20; i++ {
			fs.Append("log", []byte("record payload with enough bytes to tear\n"))
			if i%5 == 4 {
				fs.Crash()
			}
		}
		data, _ := fs.Read("log")
		return data
	}
	if !bytes.Equal(run(), run()) {
		t.Error("identical seeds produced different flash damage")
	}
}

// TestDeviceWithoutAdversityHasPerfectFlash guards the compatibility
// contract: a zero FlashFaults config must not arm the fault model (and,
// by extension, never draws from the device RNG stream).
func TestDeviceWithoutAdversityHasPerfectFlash(t *testing.T) {
	eng := sim.NewEngine()
	d := NewDevice("plain", eng, DefaultConfig(1))
	d.FS().Write("f", []byte("data"))
	d.FS().Crash()
	if data, _ := d.FS().Read("f"); string(data) != "data" {
		t.Error("unarmed fault model damaged the flash")
	}
	if d.FS().TornWrites() != 0 || d.FS().BitFlips() != 0 || d.FS().QuotaRejects() != 0 {
		t.Error("unarmed fault model counted faults")
	}
}
