package symfail

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"symfail/internal/collect"
	"symfail/internal/core"
)

// replicaChaosConfig is fleetChaosConfig with write-time quorum replication
// on: every ACK covers R durable copies and needs W of them WAL-synced,
// the fleet detects its own failures by heartbeat instead of trusting the
// kill harness, and below-quorum windows refuse writes with retryable
// ERRs the uploader's backoff absorbs. `make chaos-replica` runs the
// kill-anything variant under -race.
func replicaChaosConfig(seed uint64, r, w int) FieldStudyConfig {
	cfg := fleetChaosConfig(seed)
	cfg.Replicate = r
	cfg.Quorum = w
	return cfg
}

// TestReplicaKillAnythingNoAcknowledgedDataLoss is the quorum tentpole
// under full crossfire: kills over {shards, router} at every crashpoint,
// aborted handoffs, a join and a leave — with R=3/W=2 replication in the
// write path and the heartbeat detector doing the failure detection. The
// invariant is unchanged (every acknowledged record exactly once), and on
// top of it: restarts balance crashes, and no shard is ever *confirmed*
// dead — every kill here restarts, so the detector may suspect freely but
// confirmation requires process-level evidence that never materialises.
func TestReplicaKillAnythingNoAcknowledgedDataLoss(t *testing.T) {
	fs, fl, err := RunFieldStudyWithFleet(replicaChaosConfig(20070627, 3, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer fl.Close()

	if err := fl.Err(); err != nil {
		t.Fatalf("fleet failed to recover: %v", err)
	}
	// W < R: the last ACK can return while a lagging replica incarnation
	// is still mid-restart; let it land before balancing the ledger.
	fl.Quiesce(5 * time.Second)

	if fl.ReplicationFactor() != 3 || fl.WriteQuorum() != 2 {
		t.Fatalf("resolved R=%d W=%d, want R=3 W=2", fl.ReplicationFactor(), fl.WriteQuorum())
	}
	if fl.Crashes() == 0 {
		t.Fatal("no shard crashes injected — the harness is not killing anything")
	}
	if fl.Restarts() != fl.Crashes() {
		t.Errorf("crashes %d != restarts %d: a shard incarnation never came back",
			fl.Crashes(), fl.Restarts())
	}
	if fl.RouterKills() == 0 {
		t.Error("the router was never drawn into a kill subset")
	}
	if fl.Suspicions() == 0 {
		t.Error("the failure detector never suspected anyone across the kill schedule")
	}
	if fl.ConfirmedDead() != 0 {
		t.Errorf("%d shards confirmed dead — every kill here restarts, so confirmation means a healthy shard was declared dead",
			fl.ConfirmedDead())
	}
	if got := fl.Epoch(); got < 2 {
		t.Errorf("epoch %d after a join and a leave, want >= 2", got)
	}

	for _, d := range fs.Fleet.Devices {
		id := d.ID()
		counts := make(map[string]int)
		for _, r := range fs.Dataset.Records(id) {
			counts[string(core.EncodeRecord(r))]++
		}
		acked := fl.AckedKeys(id)
		if len(acked) == 0 {
			t.Errorf("%s: no record was ever acknowledged", id)
		}
		missing, duplicated := 0, 0
		for _, key := range acked {
			switch counts[key] {
			case 1:
			case 0:
				missing++
			default:
				duplicated++
			}
		}
		if missing > 0 || duplicated > 0 {
			t.Errorf("%s: of %d acknowledged records, %d missing and %d duplicated under R=3/W=2 crossfire",
				id, len(acked), missing, duplicated)
		}
	}
}

// TestReplicaEquivalenceSweep is the acceptance sweep: for both pinned
// golden studies, R in {1,2,3} (R=1 being the pre-quorum fleet — nil
// hooks, byte-identical router) and workers 1/4 on three shards with a
// join and a leave armed, the merged dataset CRC32C equals the pinned
// golden's. Replication only adds copies and the merge is canonical, so
// quorum machinery must be invisible in the collected bytes.
func TestReplicaEquivalenceSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("12 study runs; skipped in -short")
	}
	goldens := []struct {
		name string
		cfg  func() FieldStudyConfig
		file string
	}{
		{"adversity", adversityStudyConfig, "golden_fingerprint_adversity.json"},
		{"servercrash", serverCrashStudyConfig, "golden_fingerprint_servercrash.json"},
	}
	for _, g := range goldens {
		var pinned struct {
			DatasetCRC uint32 `json:"datasetCRC"`
		}
		blob, err := os.ReadFile(filepath.Join("testdata", g.file))
		if err != nil {
			t.Fatalf("no %s golden: %v", g.name, err)
		}
		if err := json.Unmarshal(blob, &pinned); err != nil {
			t.Fatal(err)
		}
		for _, r := range []int{1, 2, 3} {
			for _, workers := range []int{1, 4} {
				t.Run(fmt.Sprintf("%s/R=%d/workers=%d", g.name, r, workers), func(t *testing.T) {
					cfg := g.cfg()
					cfg.Workers = workers
					cfg.Servers = 3
					cfg.Replicate = r
					cfg.Adversity.FleetJoinAfter = 40
					cfg.Adversity.FleetLeaveAfter = 120
					fs, fl, err := RunFieldStudyWithFleet(cfg)
					if err != nil {
						t.Fatal(err)
					}
					defer fl.Close()
					if err := fl.Err(); err != nil {
						t.Fatal(err)
					}
					if got := fs.Dataset.CRC32C(); got != pinned.DatasetCRC {
						t.Errorf("dataset CRC %d != pinned %s golden %d — R=%d replication leaked into the collected bytes",
							got, g.name, pinned.DatasetCRC, r)
					}
				})
			}
		}
	}
}

// TestReplicaSweepTable measures what quorum replication costs and catches:
// kill rate × R on three shards, tabulating crashes, repairs, suspicions
// (false ones separately), below-quorum windows and the recovered record
// count. Every cell's CRC must equal the kill-free R=1 baseline — the
// source of the EXPERIMENTS.md quorum table.
func TestReplicaSweepTable(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is minutes of simulated uploads; skipped in -short")
	}
	type row struct {
		r, killEvery          int
		crashes               int
		suspicions, falseSusp int
		confirmed, repairs    int
		degradedWins          int
		records               int
		crc                   uint32
	}
	var rows []row
	for _, r := range []int{1, 2, 3} {
		for _, k := range []int{0, 24, 6} {
			cfg := adversityStudyConfig()
			cfg.Seed = 555555
			cfg.Workers = 1
			cfg.Servers = 3
			cfg.Replicate = r
			cfg.Adversity.FleetJoinAfter = 40
			cfg.Adversity.FleetLeaveAfter = 120
			if k > 0 {
				cfg.Adversity.ServerCrash = collect.CrashFaults{KillEveryMin: k / 2, KillEveryMax: k + k/2}
				cfg.Adversity.ServerCompactWAL = 32 << 10
			}
			fs, fl, err := RunFieldStudyWithFleet(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if err := fl.Err(); err != nil {
				t.Fatal(err)
			}
			fl.Quiesce(5 * time.Second)
			rw := row{
				r:            r,
				killEvery:    k,
				crashes:      fl.Crashes(),
				suspicions:   fl.Suspicions(),
				falseSusp:    fl.FalseSuspicions(),
				confirmed:    fl.ConfirmedDead(),
				repairs:      fl.Repairs(),
				degradedWins: fl.DegradedWindows(),
				crc:          fs.Dataset.CRC32C(),
			}
			for _, recs := range fs.Dataset.AllRecords() {
				rw.records += len(recs)
			}
			fl.Close()
			rows = append(rows, rw)
		}
	}

	t.Log("| R | kill every ~N requests | shard crashes | suspicions | false | confirmed dead | repairs | below-quorum windows | records lost |")
	t.Log("|---|---|---|---|---|---|---|---|---|")
	base := rows[0]
	for _, rw := range rows {
		label := "off"
		if rw.killEvery > 0 {
			label = fmt.Sprintf("%d", rw.killEvery)
		}
		lost := base.records - rw.records
		t.Logf("| %d | %s | %d | %d | %d | %d | %d | %d | %d |",
			rw.r, label, rw.crashes, rw.suspicions, rw.falseSusp, rw.confirmed, rw.repairs, rw.degradedWins, lost)
	}

	if base.crashes != 0 {
		t.Errorf("baseline row crashed %d times with injection off", base.crashes)
	}
	for _, rw := range rows[1:] {
		if rw.killEvery > 0 && rw.crashes == 0 {
			t.Errorf("R=%d kill-every-%d: no crashes fired", rw.r, rw.killEvery)
		}
		if rw.crc != base.crc {
			t.Errorf("R=%d kill-every-%d: dataset CRC %08x != baseline %08x — replication changed what was collected",
				rw.r, rw.killEvery, rw.crc, base.crc)
		}
		if rw.records != base.records {
			t.Errorf("R=%d kill-every-%d: %d records recovered, baseline had %d",
				rw.r, rw.killEvery, rw.records, base.records)
		}
		if rw.confirmed != 0 {
			t.Errorf("R=%d kill-every-%d: %d shards confirmed dead in a restart-everything schedule",
				rw.r, rw.killEvery, rw.confirmed)
		}
	}
}
