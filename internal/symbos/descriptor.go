package symbos

import "fmt"

// Buf is a modifiable 16-bit variant descriptor (TBuf/TDes16). Descriptors
// are Symbian's bounds-checked strings; the bounds checks are exactly what
// raises USER 10 ("position value ... out of bounds") and USER 11
// ("operation ... causes the length of that descriptor to exceed its
// maximum length") — together ~7% of the panics in Table 2.
type Buf struct {
	kernel *Kernel
	data   []rune
	max    int
}

// NewBuf returns an empty descriptor with the given maximum length.
func NewBuf(k *Kernel, max int) *Buf {
	if max < 0 {
		panic("symbos: negative descriptor capacity")
	}
	return &Buf{kernel: k, max: max}
}

// Len returns the current length.
func (b *Buf) Len() int { return len(b.data) }

// MaxLength returns the maximum length.
func (b *Buf) MaxLength() int { return b.max }

// String returns the contents.
func (b *Buf) String() string { return string(b.data) }

// Copy replaces the contents with s (TDes::Copy). Overflow raises USER 11.
func (b *Buf) Copy(s string) {
	rs := []rune(s)
	if len(rs) > b.max {
		b.overflow("Copy", len(rs))
	}
	b.data = append(b.data[:0], rs...)
}

// Append adds s at the end (TDes::Append). Overflow raises USER 11.
func (b *Buf) Append(s string) {
	rs := []rune(s)
	if len(b.data)+len(rs) > b.max {
		b.overflow("Append", len(b.data)+len(rs))
	}
	b.data = append(b.data, rs...)
}

// AppendFill adds n copies of ch (TDes::AppendFill). Overflow raises USER 11.
func (b *Buf) AppendFill(ch rune, n int) {
	if n < 0 {
		b.outOfRange("AppendFill", n)
	}
	if len(b.data)+n > b.max {
		b.overflow("AppendFill", len(b.data)+n)
	}
	for i := 0; i < n; i++ {
		b.data = append(b.data, ch)
	}
}

// Insert inserts s at pos (TDes::Insert). A position outside [0, Len]
// raises USER 10; overflow raises USER 11.
func (b *Buf) Insert(pos int, s string) {
	if pos < 0 || pos > len(b.data) {
		b.outOfRange("Insert", pos)
	}
	rs := []rune(s)
	if len(b.data)+len(rs) > b.max {
		b.overflow("Insert", len(b.data)+len(rs))
	}
	tail := append([]rune(nil), b.data[pos:]...)
	b.data = append(append(b.data[:pos], rs...), tail...)
}

// Delete removes length runes at pos (TDes::Delete). Out-of-bounds
// positions raise USER 10.
func (b *Buf) Delete(pos, length int) {
	if pos < 0 || length < 0 || pos+length > len(b.data) {
		b.outOfRange("Delete", pos)
	}
	b.data = append(b.data[:pos], b.data[pos+length:]...)
}

// Replace substitutes length runes at pos with s (TDes::Replace).
// Out-of-bounds positions raise USER 10; overflow raises USER 11.
func (b *Buf) Replace(pos, length int, s string) {
	if pos < 0 || length < 0 || pos+length > len(b.data) {
		b.outOfRange("Replace", pos)
	}
	rs := []rune(s)
	if len(b.data)-length+len(rs) > b.max {
		b.overflow("Replace", len(b.data)-length+len(rs))
	}
	tail := append([]rune(nil), b.data[pos+length:]...)
	b.data = append(append(b.data[:pos], rs...), tail...)
}

// Mid returns the length runes starting at pos (TDesC::Mid). Out-of-bounds
// raises USER 10.
func (b *Buf) Mid(pos, length int) string {
	if pos < 0 || length < 0 || pos+length > len(b.data) {
		b.outOfRange("Mid", pos)
	}
	return string(b.data[pos : pos+length])
}

// Left returns the leftmost n runes (TDesC::Left). n > Len raises USER 10.
func (b *Buf) Left(n int) string {
	if n < 0 || n > len(b.data) {
		b.outOfRange("Left", n)
	}
	return string(b.data[:n])
}

// Right returns the rightmost n runes (TDesC::Right). n > Len raises USER 10.
func (b *Buf) Right(n int) string {
	if n < 0 || n > len(b.data) {
		b.outOfRange("Right", n)
	}
	return string(b.data[len(b.data)-n:])
}

// SetLength truncates or zero-extends to n (TDes::SetLength). n beyond the
// maximum raises USER 11.
func (b *Buf) SetLength(n int) {
	if n < 0 || n > b.max {
		b.overflow("SetLength", n)
	}
	for len(b.data) < n {
		b.data = append(b.data, 0)
	}
	b.data = b.data[:n]
}

// ZeroTerminate appends a NUL (TDes::ZeroTerminate); like the real call it
// needs room for one extra element and raises USER 11 otherwise.
func (b *Buf) ZeroTerminate() {
	if len(b.data)+1 > b.max {
		b.overflow("ZeroTerminate", len(b.data)+1)
	}
	b.data = append(b.data, 0)
}

func (b *Buf) overflow(op string, want int) {
	b.kernel.Raise(CatUser, TypeDesOverflow,
		fmt.Sprintf("descriptor %s would need length %d, max is %d", op, want, b.max))
}

func (b *Buf) outOfRange(op string, pos int) {
	b.kernel.Raise(CatUser, TypeDesIndexOutOfRange,
		fmt.Sprintf("descriptor %s position %d out of bounds for length %d", op, pos, len(b.data)))
}
