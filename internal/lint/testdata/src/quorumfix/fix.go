// Package quorumfix exercises the ackorder analyzer on the fleet's
// write-time quorum path: the primary commits locally (WAL append+sync),
// forwards the committed state to its rendezvous successors, and only
// then acknowledges — so the OK on the wire covers W durable copies. The
// quorum refusal is an "ERR ..." string, which the analyzer deliberately
// does not treat as an acknowledgement: a retryable refusal promises
// nothing, so appends may trail it freely.
package quorumfix

import (
	"fmt"
	"net"
)

// WAL stands in for the primary shard's CrashStore.
type WAL struct{}

func (w *WAL) Append(name string, rec []byte) {}
func (w *WAL) Sync(name string)               {}

type shard struct {
	wal *WAL
}

// replicate forwards committed state to the rendezvous successors and
// reports whether the write quorum was met. Pure network — no WAL ops.
func (s *shard) replicate(dev string, payload []byte) bool {
	return len(payload) > 0
}

// Good: the real handler's shape — local commit first, quorum second, OK
// last. The ERR refusal needs no sync before it: it is not an ACK.
func (s *shard) handleUploadGood(conn net.Conn, dev string, payload []byte) {
	s.wal.Append(dev, payload)
	s.wal.Sync(dev)
	if !s.replicate(dev, payload) {
		fmt.Fprint(conn, "ERR quorum not met: committed locally, not replicated (retryable)\n")
		return
	}
	fmt.Fprint(conn, "OK\n")
}

// Bad: quorum met is not local durability — the OK races the primary's own
// sync, and a primary crash after the ACK strands a copy the successors
// may not cover (they hold state, not this shard's unsynced tail).
func (s *shard) handleUploadAckBeforeSync(conn net.Conn, dev string, payload []byte) {
	s.wal.Append(dev, payload)
	if s.replicate(dev, payload) {
		fmt.Fprint(conn, "OK\n") // want: reply before sync
	}
	s.wal.Sync(dev)
}

// Bad on the second device onward: a fan-out loop that acknowledges each
// device before appending the next — the OK on the wire cannot cover
// records appended after it.
func (s *shard) replicateThenAckLoop(conn net.Conn, devs []string, payloads map[string][]byte) {
	for _, dev := range devs {
		s.wal.Append(dev, payloads[dev]) // want: append after first-iteration reply
		s.wal.Sync(dev)
		s.replicate(dev, payloads[dev])
		fmt.Fprint(conn, "OK\n")
	}
}

// commitQuorum is the boolean-correlated idiom the real path uses: false
// means either the local commit died at a crashpoint or the quorum was
// not met — on both paths no OK may follow.
func (s *shard) commitQuorum(dev string, payload []byte, crashed bool) bool {
	s.wal.Append(dev, payload)
	if crashed {
		return false
	}
	s.wal.Sync(dev)
	return s.replicate(dev, payload)
}

// Good: only the synced-and-replicated path acknowledges.
func (s *shard) handleViaCommit(conn net.Conn, dev string, payload []byte, crashed bool) {
	if !s.commitQuorum(dev, payload, crashed) {
		return
	}
	fmt.Fprint(conn, "OK\n")
}
