// Robotcontrol: the paper's introduction motivates the study with critical
// applications — "robot control [15, 10], traffic control [2] and
// telemedicine [4]. In such scenarios, a phone failure affecting the
// application could result in a significant loss or hazard, e.g., a robot
// performing uncontrolled actions."
//
// This example builds that scenario: a tele-operation application on the
// simulated phone streams command refreshes to a robot every few seconds.
// When the phone freezes or reboots, the stream stops and the robot keeps
// executing its last command until its watchdog trips. The example
// measures how often that hazard window opens over six months of normal
// phone usage — and how the phone's everyday dependability (a failure
// every ~11 days) translates into uncontrolled-robot seconds.
package main

import (
	"fmt"
	"sort"
	"time"

	"symfail/internal/core"
	"symfail/internal/phone"
	"symfail/internal/sim"
	"symfail/internal/symbos"
)

// robot is the host-side consumer of the phone's command stream.
type robot struct {
	lastCommand sim.Time
	commands    int

	// Reconstructed hazards: stream gaps longer than the watchdog.
	hazards   []time.Duration
	watchdog  time.Duration
	safeStops int
}

// noteCommand records a command refresh, closing any open gap.
func (r *robot) noteCommand(at sim.Time) {
	if r.commands > 0 {
		gap := at.Sub(r.lastCommand)
		if gap > r.watchdog {
			// The robot ran uncontrolled from the last command until the
			// watchdog tripped, then safe-stopped until the stream came
			// back.
			r.hazards = append(r.hazards, r.watchdog)
			r.safeStops++
		}
	}
	r.commands++
	r.lastCommand = at
}

func main() {
	const (
		commandPeriod = 5 * time.Second
		watchdog      = 30 * time.Second
		months        = 6
	)

	eng := sim.NewEngine()
	dev := phone.NewDevice("operator-phone", eng, phone.DefaultConfig(2007))
	core.Install(dev, core.Config{})

	bot := &robot{watchdog: watchdog}

	// The tele-operation application: installed at every boot, it streams
	// command refreshes from an Active Object driven by an RTimer — the
	// same machinery every other app on the phone uses, so a freeze stops
	// it exactly the way a freeze stops everything.
	dev.OnBoot(func(d *phone.Device) {
		k := d.Kernel()
		proc := k.StartProcess("RobotLink", false)
		t := proc.Main()
		var ao *symbos.ActiveObject
		var tm *symbos.Timer
		ao = t.NewActiveObject("command-stream", 8, func(int) {
			bot.noteCommand(d.Now())
			tm.After(commandPeriod)
		})
		tm = symbos.NewTimer(ao)
		k.Exec(t, "arm", func() { tm.After(commandPeriod) })
	})

	dev.Enroll(sim.Epoch)
	if err := eng.Run(sim.Epoch.Add(months * 30 * 24 * time.Hour)); err != nil {
		fmt.Println("run:", err)
		return
	}
	dev.Finalize()

	o := dev.Oracle()
	fmt.Printf("six months of tele-operation from one phone (%.0f on-hours):\n\n", o.ObservedHours)
	fmt.Printf("commands streamed:        %d (every %v while the phone is up)\n", bot.commands, commandPeriod)
	fmt.Printf("phone failures:           %d freezes, %d self-shutdowns\n",
		o.Count(phone.TruthFreeze), o.Count(phone.TruthSelfShutdown))
	fmt.Printf("other stream interrupts:  %d user power-offs, %d low-battery\n",
		o.Count(phone.TruthUserShutdown), o.Count(phone.TruthLowBattery))
	fmt.Printf("\nhazard windows (robot uncontrolled until its %v watchdog): %d\n",
		watchdog, len(bot.hazards))
	var uncontrolled time.Duration
	for _, h := range bot.hazards {
		uncontrolled += h
	}
	fmt.Printf("total uncontrolled-robot time: %v (then safe-stopped %d times)\n",
		uncontrolled, bot.safeStops)
	perMonth := float64(len(bot.hazards)) / months
	fmt.Printf("hazard rate: %.1f per month\n", perMonth)

	// The gap distribution: most interruptions are long (night power-offs)
	// but every single one of them starts with a full watchdog window of
	// uncontrolled motion.
	gaps := interruptGaps(o)
	sort.Slice(gaps, func(i, j int) bool { return gaps[i] < gaps[j] })
	if len(gaps) > 0 {
		fmt.Printf("\nstream-outage durations: median %v, p90 %v, max %v\n",
			gaps[len(gaps)/2].Round(time.Second),
			gaps[int(float64(len(gaps)-1)*0.9)].Round(time.Second),
			gaps[len(gaps)-1].Round(time.Second))
	}

	fmt.Println("\nthe paper's conclusion, quantified: everyday dependability (a failure")
	fmt.Println("every ~11 days) is fine for phone calls and \"indicates potential")
	fmt.Println("limitations in using smart phones for critical applications\".")
}

// interruptGaps reconstructs phone-down intervals from the oracle.
func interruptGaps(o *phone.Oracle) []time.Duration {
	var gaps []time.Duration
	var downAt sim.Time = sim.Never
	for _, e := range o.Events {
		switch e.Kind {
		case phone.TruthBoot:
			if downAt != sim.Never {
				gaps = append(gaps, e.Time.Sub(downAt))
				downAt = sim.Never
			}
		case phone.TruthFreeze, phone.TruthSelfShutdown, phone.TruthUserShutdown, phone.TruthLowBattery:
			if downAt == sim.Never {
				downAt = e.Time
			}
		}
	}
	return gaps
}
