// Command symlint statically enforces the simulator's determinism and
// panic-taxonomy contracts. It is built on the standard library only
// (go/ast, go/parser, go/token, go/types); see internal/lint for the
// analyzers and DESIGN.md for the contracts.
//
// Usage:
//
//	symlint [-list] [package patterns]
//
// Patterns are module-relative: "./...", "./internal/...", "./internal/sim".
// With no patterns, "./..." is assumed. Diagnostics are printed one per
// line as "file:line: analyzer: message"; the exit status is 1 when any
// diagnostic is reported, 2 on a load or usage error, and 0 otherwise.
// Suppress a single finding with an explicit, reasoned escape hatch on the
// offending line or the line above:
//
//	//symlint:allow <analyzer> <reason>
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"symfail/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("symlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	list := fs.Bool("list", false, "list analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: symlint [-list] [package patterns]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.DefaultAnalyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(stderr, "symlint:", err)
		return 2
	}
	modRoot, err := lint.FindModRoot(cwd)
	if err != nil {
		fmt.Fprintln(stderr, "symlint:", err)
		return 2
	}
	loader, err := lint.NewLoader(modRoot)
	if err != nil {
		fmt.Fprintln(stderr, "symlint:", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintln(stderr, "symlint:", err)
		return 2
	}
	diags := lint.Run(pkgs, analyzers)
	for _, d := range diags {
		d.Pos.Filename = relPath(cwd, d.Pos.Filename)
		fmt.Fprintln(stdout, d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(stderr, "symlint: %d diagnostic(s) in %d package(s)\n", len(diags), len(pkgs))
		return 1
	}
	return 0
}

func relPath(base, path string) string {
	rel, err := filepath.Rel(base, path)
	if err != nil || len(rel) > len(path) {
		return path
	}
	return rel
}
