// Package phone models a Symbian smart phone of the study era as a
// discrete-event system: the device lifecycle (boots, shutdowns, freezes,
// battery), the firmware system servers, the stock applications, a
// stochastic user workload (voice calls, text messages, Bluetooth, camera,
// night power-offs, battery pulls), and a fault-injection model whose
// trigger rates are calibrated from the paper's Table 2 but whose
// manifestation goes through the real symbos code paths.
//
// A phone.Device is what the paper's logger (internal/core) is installed
// on; a phone.Fleet is the 25-phone deployment of section 6.
package phone

import (
	"sync"
	"time"

	"symfail/internal/sim"
)

// Activity identifies what the user is doing with the phone. The values
// mirror the activity classes of Tables 3 and 4 plus the additional
// workload classes the forum study mentions (section 4.1).
type Activity string

// Activity classes.
const (
	ActIdle      Activity = "idle"
	ActVoiceCall Activity = "voice-call"
	ActMessage   Activity = "message"
	ActBluetooth Activity = "bluetooth"
	ActCamera    Activity = "camera"
	ActNav       Activity = "navigation"
	ActBrowseFS  Activity = "file-browse"
	ActContacts  Activity = "contacts"
	ActClock     Activity = "clock"
	ActAudio     Activity = "audio"
)

// Config calibrates one simulated phone. The defaults reproduce the shape
// of the paper's findings; every knob is exposed so the benchmark harness
// can sweep them (ablations) and tests can pin them.
type Config struct {
	// Seed drives every random decision for the device.
	Seed uint64
	// OSVersion is the Symbian OS version the phone runs. The study's
	// phones ran versions 6.1 through 9.0, with 8.0 "the most popular on
	// the market at the time the analysis started" (section 6).
	OSVersion string
	// Persona records which user-heterogeneity profile shaped this config
	// (informational; set by ApplyPersona).
	Persona Persona

	// User workload --------------------------------------------------

	// ActivitiesPerDay is the mean number of user interactions per day;
	// individual activity classes are drawn from ActivityMix.
	ActivitiesPerDay float64
	// ActivityMix weighs the activity classes.
	ActivityMix map[Activity]float64
	// ActivityMedianDuration is the median duration per activity class;
	// durations are log-normal with ActivitySigma spread.
	ActivityMedianDuration map[Activity]time.Duration
	// ActivitySigma is the log-space spread of activity durations.
	ActivitySigma float64
	// LingerProb is the chance an application is left running in the
	// background after its activity ends (drives Figure 6's tail).
	LingerProb float64
	// WakeHour and SleepHour bound the user's waking day (hours 0-24).
	WakeHour, SleepHour float64
	// WeekendWakeDelayHours shifts the waking window later on weekends.
	WeekendWakeDelayHours float64
	// WeekendActivityFactor scales the activity rate on weekends (people
	// call less from the office chair, more from the couch).
	WeekendActivityFactor float64

	// Shutdown behaviour ----------------------------------------------

	// NightOffProb is the chance the user powers the phone off for the
	// night (producing the ~30000 s mode of Figure 2).
	NightOffProb float64
	// NightOffDuration and NightOffJitter shape the overnight off time.
	NightOffDuration, NightOffJitter time.Duration
	// DayOffPerHour is the rate of deliberate daytime power cycles.
	DayOffPerHour float64
	// DayOffMedian and DayOffSigma shape daytime off durations
	// (log-normal; the median keeps almost all of them above the 360 s
	// self-shutdown threshold, matching the paper's 4% contamination).
	DayOffMedian time.Duration
	DayOffSigma  float64
	// LoggerOffProb is the chance a daytime shutdown is preceded by the
	// user deliberately stopping the logger (a MAOFF record).
	LoggerOffProb float64

	// Self-shutdown and freeze dynamics --------------------------------

	// SelfShutdownOffMedian/Sigma shape the automatic reboot time after a
	// self-shutdown (the ~80 s mode of Figure 2).
	SelfShutdownOffMedian time.Duration
	SelfShutdownOffSigma  float64
	// FreezeImpatienceMedian/Sigma shape how long the user waits before
	// pulling the battery out of a frozen phone.
	FreezeImpatienceMedian time.Duration
	FreezeImpatienceSigma  float64
	// BatteryPullOffMedian/Sigma shape how long the phone stays off after
	// a battery pull.
	BatteryPullOffMedian time.Duration
	BatteryPullOffSigma  float64

	// Failure model ----------------------------------------------------

	// PanicOpportunityPerHour is the base hazard of a software defect
	// being triggered while the phone is idle; ActivityRisk multiplies it.
	PanicOpportunityPerHour float64
	// ActivityRisk multiplies the panic hazard per activity class. The
	// paper's observation that ~45% of panics happen during real-time
	// activities (voice calls, messaging) comes from these multipliers.
	ActivityRisk map[Activity]float64
	// CallOnlyBias is the chance that a defect triggered during a voice
	// call is one of the call-only classes (USER descriptor panics and
	// ViewSrv starvation — the paper's Table 3 observes these exclusively
	// during calls); MessageOnlyBias plays the same role for the
	// message-only classes (Phone.app).
	CallOnlyBias, MessageOnlyBias float64
	// BurstProb is the chance a primary panic propagates into a cascade
	// of follow-up panics (Figure 3: ~25% of panics arrive in bursts).
	BurstProb float64
	// BurstContinue is the chance each follow-up panic is itself followed
	// by another (geometric burst lengths).
	BurstContinue float64
	// BurstGap is the mean spacing of panics inside a burst.
	BurstGap time.Duration
	// SpontaneousFreezePerHour and SpontaneousShutdownPerHour are the
	// rates of freezes/self-shutdowns with no panic record — the causes
	// the logger cannot see (kernel-level lockups, drivers, hardware).
	SpontaneousFreezePerHour   float64
	SpontaneousShutdownPerHour float64
	// OutputFailurePerHour is the rate of value failures (wrong volume,
	// wrong reminder time, inaccurate charge indicator, ...). The base
	// logger cannot see them — automated detection would need a perfect
	// observer (section 5) — but the forum study finds them to be the
	// most frequent failure class, and the core.UserReporter extension
	// captures a user-reported subset.
	OutputFailurePerHour float64

	// Servicing ----------------------------------------------------------

	// ServiceFailureThreshold: when the user suffers this many failures
	// (freezes + self-shutdowns) within ServiceWindow, they take the
	// phone in for service with probability ServiceProb. Servicing means
	// a master reset — the flash is wiped, logger files included — plus a
	// firmware update that scales the failure rates by ServiceFixFactor.
	// Zero threshold disables servicing.
	ServiceFailureThreshold int
	ServiceWindow           time.Duration
	ServiceProb             float64
	// ServiceOffDuration is how long the phone is away at the shop.
	ServiceOffDuration time.Duration
	// ServiceFixFactor scales panic and spontaneous-failure rates after a
	// firmware update (1 = no effect).
	ServiceFixFactor float64

	// Battery ----------------------------------------------------------

	// BatteryDrainPerHour is the idle drain fraction per hour; activities
	// drain more.
	BatteryDrainPerHour float64
	// EveningChargeProb is the chance per day the user charges the phone
	// in the evening.
	EveningChargeProb float64
	// LowBatteryThreshold triggers a LOWBT shutdown.
	LowBatteryThreshold float64

	// Adversity ---------------------------------------------------------

	// Flash arms the flash fault model (torn writes on power loss, bit
	// rot, flash-full quota). The zero value keeps the flash perfect and
	// leaves every RNG stream untouched, so pre-adversity runs reproduce
	// bit for bit.
	Flash FlashFaults

	// Logger-visible plumbing -------------------------------------------

	// HeartbeatPeriod is how often the logger's Heartbeat AO writes an
	// ALIVE record (tunable; the ablation bench sweeps it).
	HeartbeatPeriod time.Duration
	// RunAppSamplePeriod is how often the Running Applications Detector
	// samples the Application Architecture Server.
	RunAppSamplePeriod time.Duration
}

// defaultCalibration holds the activity tables shared by every Config
// that DefaultConfig returns. Three per-device maps cost ~1.4KB each at
// fleet scale (and GC mark work proportional to it), yet their contents
// are identical for every phone, so they are built once and aliased.
// The maps are read-only by contract: code that wants a per-device
// variant must replace the map, never write through it — ApplyPersona
// clones ActivityMix before scaling it for exactly this reason.
var defaultCalibration struct {
	once   sync.Once
	mix    map[Activity]float64
	median map[Activity]time.Duration
	risk   map[Activity]float64
}

func defaultTables() (map[Activity]float64, map[Activity]time.Duration, map[Activity]float64) {
	c := &defaultCalibration
	c.once.Do(func() {
		c.mix = map[Activity]float64{
			ActVoiceCall: 6,
			ActMessage:   7,
			ActContacts:  2,
			ActCamera:    0.8,
			ActBluetooth: 0.5,
			ActNav:       0.25,
			ActBrowseFS:  0.35,
			ActClock:     0.8,
			ActAudio:     0.3,
		}
		c.median = map[Activity]time.Duration{
			ActVoiceCall: 2 * time.Minute,
			ActMessage:   50 * time.Second,
			ActContacts:  25 * time.Second,
			ActCamera:    90 * time.Second,
			ActBluetooth: 3 * time.Minute,
			ActNav:       12 * time.Minute,
			ActBrowseFS:  70 * time.Second,
			ActClock:     15 * time.Second,
			ActAudio:     4 * time.Minute,
		}
		c.risk = map[Activity]float64{
			ActIdle:      1,
			ActVoiceCall: 80,
			ActMessage:   28,
			ActBluetooth: 14,
			ActCamera:    12,
			ActNav:       8,
			ActBrowseFS:  6,
			ActContacts:  4,
			ActClock:     3,
			ActAudio:     8,
		}
	})
	return c.mix, c.median, c.risk
}

// DefaultConfig returns the calibration used for the headline reproduction.
//
// The activity maps in the returned Config are shared, immutable tables;
// to customise one, assign a fresh map rather than mutating in place.
func DefaultConfig(seed uint64) Config {
	mix, median, risk := defaultTables()
	return Config{
		Seed:      seed,
		OSVersion: "8.0",

		ActivitiesPerDay:       18,
		ActivityMix:            mix,
		ActivityMedianDuration: median,
		ActivitySigma:         0.7,
		LingerProb:            0.12,
		WakeHour:              7,
		SleepHour:             23.25,
		WeekendWakeDelayHours: 1.5,
		WeekendActivityFactor: 0.8,

		NightOffProb:     0.16,
		NightOffDuration: 30000 * time.Second,
		NightOffJitter:   70 * time.Minute,
		DayOffPerHour:    1.0 / 150,
		DayOffMedian:     25 * time.Minute,
		DayOffSigma:      0.8,
		LoggerOffProb:    0.02,

		SelfShutdownOffMedian: 80 * time.Second,
		SelfShutdownOffSigma:  0.35,

		FreezeImpatienceMedian: 3 * time.Minute,
		FreezeImpatienceSigma:  0.8,
		BatteryPullOffMedian:   4 * time.Minute,
		BatteryPullOffSigma:    0.7,

		PanicOpportunityPerHour: 1.0 / 700,
		ActivityRisk:            risk,
		CallOnlyBias:    0.26,
		MessageOnlyBias: 0.04,
		BurstProb:       0.13,
		BurstContinue:   0.40,
		BurstGap:        20 * time.Second,

		SpontaneousFreezePerHour:   1.0 / 425,
		SpontaneousShutdownPerHour: 1.0 / 268,
		// The forum study sees output failures ~1.4x as often as freezes;
		// scale the freeze rate accordingly.
		OutputFailurePerHour: 1.4 / 440,

		ServiceFailureThreshold: 6,
		ServiceWindow:           14 * 24 * time.Hour,
		ServiceProb:             0.15,
		ServiceOffDuration:      48 * time.Hour,
		ServiceFixFactor:        0.88,

		BatteryDrainPerHour: 0.013,
		EveningChargeProb:   0.8,
		LowBatteryThreshold: 0.03,

		HeartbeatPeriod:    5 * time.Minute,
		RunAppSamplePeriod: 10 * time.Minute,
	}
}

// riskMax returns the largest activity risk multiplier (for thinning).
func (c *Config) riskMax() float64 {
	max := 1.0
	for _, v := range c.ActivityRisk {
		if v > max {
			max = v
		}
	}
	return max
}

// risk returns the hazard multiplier for an activity.
func (c *Config) risk(a Activity) float64 {
	if v, ok := c.ActivityRisk[a]; ok {
		return v
	}
	return 1
}

// StudyMonth approximates one month of wall-clock study time.
const StudyMonth = 30 * 24 * time.Hour

// StudyDuration is the paper's observation window: 14 months.
const StudyDuration = 14 * StudyMonth

var _ = sim.Epoch
