package symfail

// BenchmarkResnapshotOverhead is the perf harness for the epoch-snapshot
// lifecycle: over a loaded mid-stream accumulator set (records folded in, not
// sealed) it measures the cost of one non-destructive Snapshot — the deep
// cursor/reducer clone for the exact Tables, the bucket re-render for the
// windowed and decaying views — and writes the grid to BENCH_resnapshot.json
// so `make bench-check` gates the live query tier's read path. Run it alone
// for stable numbers:
//
//	go test -bench BenchmarkResnapshotOverhead -benchtime 20x .

import (
	"encoding/json"
	"os"
	"runtime"
	"testing"

	"symfail/internal/analysis"
	"symfail/internal/analysis/stream"
	"symfail/internal/core"
	"symfail/internal/phone"
)

type resnapshotCell struct {
	Phones          int     `json:"phones"`
	Months          float64 `json:"months"`
	Records         int     `json:"records"`
	Mode            string  `json:"mode"` // which accumulator is snapshotted
	NsPerOp         float64 `json:"nsPerOp"`
	BytesPerOp      float64 `json:"bytesPerOp"`
	AllocsPerOp     float64 `json:"allocsPerOp"`
	SnapshotsPerSec float64 `json:"snapshotsPerSec"`
}

type resnapshotReport struct {
	GOMAXPROCS int              `json:"gomaxprocs"`
	GoVersion  string           `json:"goVersion"`
	Cells      []resnapshotCell `json:"cells"`
}

func BenchmarkResnapshotOverhead(b *testing.B) {
	const phones = 25
	duration := 2 * phone.StudyMonth
	ds, records := streamBenchDataset(b, phones, duration)

	opts := analysis.Options{}
	tables := stream.NewTables(opts)
	window := stream.NewWindowAcc(opts)
	decay := stream.NewDecayAcc(opts)
	f := &stream.Feeder{AddDevice: tables.AddDevice, Observe: func(id string, r core.Record) {
		tables.Observe(id, r)
		window.Observe(id, r)
		decay.Observe(id, r)
	}}
	if err := ds.Stream(f.Begin, f.Record); err != nil {
		b.Fatal(err)
	}
	f.Flush()

	report := resnapshotReport{GOMAXPROCS: runtime.GOMAXPROCS(0), GoVersion: runtime.Version()}
	modes := []struct {
		mode string
		snap func() any
	}{
		{"tables", func() any { return tables.Snapshot() }},
		{"window", func() any { return window.Snapshot() }},
		{"decay", func() any { return decay.Snapshot() }},
	}
	for _, m := range modes {
		var cell resnapshotCell
		b.Run(m.mode, func(b *testing.B) {
			b.ReportAllocs()
			var sink any
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sink = m.snap()
			}
			b.StopTimer()
			if sink == nil {
				b.Fatal("nil snapshot")
			}
			res := testing.BenchmarkResult{N: b.N, T: b.Elapsed()}
			cell = resnapshotCell{
				Phones:  phones,
				Months:  float64(duration) / float64(phone.StudyMonth),
				Records: records,
				Mode:    m.mode,
				NsPerOp: float64(res.NsPerOp()),
			}
			if secs := b.Elapsed().Seconds(); secs > 0 {
				cell.SnapshotsPerSec = float64(b.N) / secs
			}
			b.ReportMetric(cell.SnapshotsPerSec, "snapshots/s")
		})
		if cell.Phones == 0 {
			continue // sub-bench filtered out by -bench
		}
		// B/op and allocs/op for the JSON trajectory, measured outside the
		// timed loop (the harness prints its own via ReportAllocs).
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		_ = m.snap()
		runtime.ReadMemStats(&after)
		cell.BytesPerOp = float64(after.TotalAlloc - before.TotalAlloc)
		cell.AllocsPerOp = float64(after.Mallocs - before.Mallocs)
		report.Cells = append(report.Cells, cell)
	}
	if len(report.Cells) == 0 {
		return
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	// BENCH_RESNAPSHOT_OUT redirects the report so `make bench-check` can
	// measure fresh cells without clobbering the committed baseline.
	out := os.Getenv("BENCH_RESNAPSHOT_OUT")
	if out == "" {
		out = "BENCH_resnapshot.json"
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
