// Command symquery asks a running collection server a live analysis
// question over the QUERY verb and prints the single-line JSON answer.
// Start a server with `symfail -serve-queries ADDR` (optionally -tcp, so the
// query tier watched the study live) and point symquery at it.
//
// Usage:
//
//	symquery [-addr host:port] <name> [args...]
//
// Queries:
//
//	status               device/record/duplicate/reorder counters
//	mtbf                 exact and exponentially-decaying MTBF
//	panics [n]           top-n decaying panic leaderboard (default 5)
//	freezerate [days]    windowed freeze rate over the last N days
package main

import (
	"flag"
	"fmt"
	"os"

	"symfail/internal/collect"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "symquery:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("symquery", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:7070", "collection server address")
	if err := fs.Parse(args); err != nil {
		return err
	}
	rest := fs.Args()
	if len(rest) == 0 {
		return fmt.Errorf("usage: symquery [-addr host:port] <status|mtbf|panics|freezerate> [args...]")
	}
	out, err := collect.Query(*addr, rest[0], rest[1:]...)
	if err != nil {
		return err
	}
	fmt.Println(out)
	return nil
}
