// Package determinismfix is a symlint golden-test fixture: each "want"
// comment marks an expected determinism diagnostic; everything else must
// stay silent.
package determinismfix

import (
	"math/rand" // want: forbidden import
	"os"
	"time"
)

// Positive cases: ambient state inside a simulation package.

func wallClock() int64 {
	t := time.Now() // want: wall clock
	return t.Unix()
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want: wall clock
}

func env() string {
	return os.Getenv("SYMFAIL_SEED") // want: ambient environment
}

func sleepy() {
	time.Sleep(time.Millisecond) // want: real-time blocking
}

func globalRNG() int {
	return rand.Intn(6) // import line already flagged; the call itself is fine
}

// Negative cases: deterministic use of the time package's pure values.

func virtualBudget() time.Duration {
	return 3 * time.Hour // a Duration is just an int64; no clock involved
}

func epoch() time.Time {
	return time.Unix(0, 0) // pure function of its arguments
}

// Negative case: the reasoned escape hatch.

func deadline() time.Time {
	//symlint:allow determinism fixture exercising the escape hatch
	return time.Now().Add(30 * time.Second)
}
