package main

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestCleanPackageExitsZero(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"./internal/sim"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d on clean package, want 0\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	if out.Len() != 0 {
		t.Errorf("unexpected diagnostics:\n%s", out.String())
	}
}

func TestFixtureExitsNonZeroWithFileLineDiagnostic(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"./internal/lint/testdata/src/determinismfix"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d on fixture, want 1\nstderr:\n%s", code, errb.String())
	}
	// The diagnostic format is file:line: analyzer: message.
	want := "determinismfix/fix.go:15: determinism: time.Now"
	if !strings.Contains(out.String(), want) {
		t.Errorf("stdout missing %q:\n%s", want, out.String())
	}
}

func TestListAnalyzers(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d on -list, want 0", code)
	}
	for _, name := range []string{"determinism", "maporder", "panictaxonomy", "rngshare"} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out.String())
		}
	}
}

// TestJSONOutput checks the machine-readable mode: a parseable array with
// the documented fields, the same exit code as text mode, and a populated
// call chain on interprocedural findings.
func TestJSONOutput(t *testing.T) {
	var out, errb strings.Builder
	code := run([]string{"-json", "./internal/lint/testdata/src/determinismfix"}, &out, &errb)
	if code != 1 {
		t.Fatalf("exit %d on fixture with -json, want 1\nstderr:\n%s", code, errb.String())
	}
	var diags []jsonDiag
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, out.String())
	}
	if len(diags) == 0 {
		t.Fatal("JSON array is empty on a fixture with known findings")
	}
	for _, d := range diags {
		if d.File == "" || d.Line == 0 || d.Analyzer == "" || d.Message == "" {
			t.Errorf("diagnostic missing required fields: %+v", d)
		}
		if strings.Contains(d.File, "\\") {
			t.Errorf("file path %q not slash-normalized", d.File)
		}
	}
}

func TestJSONOutputCleanPackage(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"-json", "./internal/sim"}, &out, &errb); code != 0 {
		t.Fatalf("exit %d on clean package with -json, want 0\nstderr:\n%s", code, errb.String())
	}
	var diags []jsonDiag
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, out.String())
	}
	if len(diags) != 0 {
		t.Errorf("expected empty array, got %d diagnostics", len(diags))
	}
}

func TestBadPatternExitsTwo(t *testing.T) {
	var out, errb strings.Builder
	if code := run([]string{"./no/such/dir"}, &out, &errb); code != 2 {
		t.Fatalf("exit %d on bad pattern, want 2\nstderr:\n%s", code, errb.String())
	}
}
