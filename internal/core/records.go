// Package core implements the paper's primary contribution: the failure
// data logger for Symbian OS smart phones (section 5). The logger is a
// daemon application started at phone boot, built from Active Objects:
//
//   - Heartbeat: periodically writes ALIVE records and, via the shutdown
//     notification, REBOOT/LOWBT/MAOFF records, enabling freeze and
//     self-shutdown detection (section 5.2);
//   - Panic Detector: subscribes to the Kernel Server's RDebug panic
//     notifications and consolidates panic context into the Log File;
//   - Running Applications Detector: samples the Application Architecture
//     Server;
//   - Log Engine: collects phone activity (calls, messages) from the
//     Database Log Server;
//   - Power Manager: reads battery state from the System Agent Server to
//     tell low-battery shutdowns from failures.
//
// The logger observes the phone exclusively through the simulated OS
// services — it never peeks at simulator ground truth.
package core

import (
	"bytes"
	"encoding/json"
	"fmt"

	"symfail/internal/sim"
)

// Default on-flash paths for the logger's files (mirroring Figure 1).
const (
	DefaultLogPath      = "logs/logfile"
	DefaultBeatsPath    = "logs/beats"
	DefaultRunAppPath   = "logs/runapp"
	DefaultActivityPath = "logs/activity"
	DefaultPowerPath    = "logs/power"
)

// BeatKind is the heartbeat record type of section 5.2.
type BeatKind string

// Heartbeat record kinds.
const (
	BeatAlive  BeatKind = "ALIVE"  // normal execution
	BeatReboot BeatKind = "REBOOT" // orderly shutdown (self or user)
	BeatLowBat BeatKind = "LOWBT"  // shutdown due to low battery
	BeatMAOff  BeatKind = "MAOFF"  // user deliberately stopped the logger
)

// Beat is the single heartbeat record kept on flash. Only the most recent
// record matters to the boot-time detector, so the file holds exactly one.
type Beat struct {
	Kind BeatKind `json:"kind"`
	Time int64    `json:"time"` // sim.Time in nanoseconds
}

// Detection classifies what the boot-time detector concluded from the last
// heartbeat record (section 5.2).
type Detection string

// Boot-time detection outcomes.
const (
	// DetectedFreeze: the last record was ALIVE, so power was lost without
	// an orderly shutdown — the phone froze and the user pulled the
	// battery.
	DetectedFreeze Detection = "freeze"
	// DetectedShutdown: the last record was REBOOT — either a
	// self-shutdown or a user power cycle; the reboot-duration analysis
	// (Figure 2) separates the two.
	DetectedShutdown Detection = "shutdown"
	// DetectedLowBattery / DetectedLoggerOff: explained shutdowns.
	DetectedLowBattery Detection = "low-battery"
	DetectedLoggerOff  Detection = "logger-off"
	// DetectedFirstBoot: no heartbeat file yet.
	DetectedFirstBoot Detection = "first-boot"
)

// Record kinds in the consolidated Log File.
const (
	KindBoot  = "boot"
	KindPanic = "panic"
)

// Record is one entry of the consolidated Log File the Panic Detector
// maintains. Boot records carry the detection of what ended the previous
// session; panic records carry the panic with the phone context gathered
// from the other active objects.
type Record struct {
	Kind string `json:"kind"`
	Time int64  `json:"time"`

	// Boot records.
	Boot       int       `json:"boot,omitempty"`
	OSVersion  string    `json:"os,omitempty"`
	PrevBeat   BeatKind  `json:"prevBeat,omitempty"`
	PrevTime   int64     `json:"prevTime,omitempty"`
	OffSeconds float64   `json:"offSeconds,omitempty"`
	Detected   Detection `json:"detected,omitempty"`

	// Panic records.
	Category string   `json:"category,omitempty"`
	PType    int      `json:"ptype,omitempty"`
	Apps     []string `json:"apps,omitempty"`
	Activity string   `json:"activity,omitempty"`

	// Boot-time log recovery tally (set only when the previous session's
	// Log File was damaged — torn tail or bit rot — and had to be
	// repaired): how many records survived and how many corrupt regions
	// were excised.
	LogSalvaged int `json:"salvaged,omitempty"`
	LogLost     int `json:"lost,omitempty"`
}

// When returns the record timestamp as a sim.Time.
func (r Record) When() sim.Time { return sim.Time(r.Time) }

// PanicKey formats the panic identity the way the paper's tables do
// ("KERN-EXEC 3"). Empty for non-panic records.
func (r Record) PanicKey() string {
	if r.Kind != KindPanic {
		return ""
	}
	return fmt.Sprintf("%s %d", r.Category, r.PType)
}

// EncodeRecord serialises a record as one JSON line.
func EncodeRecord(r Record) []byte {
	return AppendRecordLine(make([]byte, 0, 96), r)
}

// ParseRecords parses a Log File. Framed logs (the on-flash format since
// crash-safe logging — first byte is FrameMagic) go through frame recovery
// so only checksum-verified records surface; legacy bare JSON lines are
// parsed line-wise with truncated or corrupt lines skipped — flash writes
// can be cut short by power loss, and a log analyser must survive that.
func ParseRecords(data []byte) []Record {
	var out []Record
	_ = ScanRecords(data, func(r Record) error {
		out = append(out, r)
		return nil
	})
	return out
}

// ScanRecords parses a Log File incrementally, calling fn once per record
// in log order without materialising the record slice — the streaming
// analysis path reads whole exported datasets this way with one device's
// log in memory at a time. Skip semantics are identical to ParseRecords
// (which is built on it): corrupt frames, blank lines and unparsable JSON
// lines are dropped. An error from fn stops the scan and is returned.
func ScanRecords(data []byte, fn func(Record) error) error {
	if len(data) > 0 && data[0] == FrameMagic {
		for _, payload := range RecoverLog(data).Payloads {
			var r Record
			if err := json.Unmarshal(payload, &r); err != nil {
				continue
			}
			if err := fn(r); err != nil {
				return err
			}
		}
		return nil
	}
	for len(data) > 0 {
		line := data
		if i := bytes.IndexByte(data, '\n'); i >= 0 {
			line, data = data[:i], data[i+1:]
		} else {
			data = nil
		}
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		var r Record
		if err := json.Unmarshal(line, &r); err != nil {
			continue
		}
		if err := fn(r); err != nil {
			return err
		}
	}
	return nil
}

// EncodeBeat serialises the heartbeat record.
func EncodeBeat(b Beat) []byte {
	return AppendBeat(make([]byte, 0, 48), b)
}

// ParseBeat parses the heartbeat file and returns the most recent valid
// beat. ok is false when the file is absent or corrupt (treated as a first
// boot). Framed files (the crash-safe append-only format) are scanned with
// frame recovery and the last intact beat wins — a torn append therefore
// falls back to the previous beat instead of destroying the detector's
// evidence; legacy single-JSON files parse directly.
func ParseBeat(data []byte) (Beat, bool) {
	if len(data) > 0 && data[0] == FrameMagic {
		payloads := RecoverLog(data).Payloads
		for i := len(payloads) - 1; i >= 0; i-- {
			if b, ok := parseBeatPayload(payloads[i]); ok {
				return b, true
			}
		}
		return Beat{}, false
	}
	return parseBeatPayload(data)
}

func parseBeatPayload(data []byte) (Beat, bool) {
	var b Beat
	if err := json.Unmarshal(data, &b); err != nil {
		return Beat{}, false
	}
	switch b.Kind {
	case BeatAlive, BeatReboot, BeatLowBat, BeatMAOff:
		return b, true
	default:
		return Beat{}, false
	}
}
