package symfail

import (
	"testing"

	"symfail/internal/analysis"
)

// TestHeadlineReproduction runs the full paper-scale study (25 phones,
// 14 months) and asserts the shape claims of EXPERIMENTS.md. It is the
// repository's reason to exist, stated as a test. Skipped under -short.
func TestHeadlineReproduction(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale study (~10 s); skipped with -short")
	}
	fs, err := RunFieldStudy(DefaultFieldStudyConfig(2007))
	if err != nil {
		t.Fatal(err)
	}
	s := fs.Study

	rep := s.MTBF()
	t.Logf("MTBFr=%.0f h MTBS=%.0f h failure-every=%.1f d panics=%d",
		rep.MTBFrHours, rep.MTBSHours, rep.FailureEveryDays, len(s.Panics()))

	// Section 6: failure rates in the paper's band.
	if rep.MTBFrHours < 230 || rep.MTBFrHours > 420 {
		t.Errorf("MTBFr = %.0f h, want near the paper's 313 h", rep.MTBFrHours)
	}
	if rep.MTBSHours < 180 || rep.MTBSHours > 330 {
		t.Errorf("MTBS = %.0f h, want near the paper's 250 h", rep.MTBSHours)
	}
	if rep.MTBSHours >= rep.MTBFrHours {
		t.Error("self-shutdowns should be more frequent than freezes")
	}
	if rep.FailureEveryDays < 8 || rep.FailureEveryDays > 16 {
		t.Errorf("failure every %.1f days, paper says ~11", rep.FailureEveryDays)
	}

	// Table 2: memory access violations dominate; heap management second.
	rows := s.PanicTable()
	if rows[0].Key != "KERN-EXEC 3" || rows[0].Percent < 45 || rows[0].Percent > 65 {
		t.Errorf("top panic = %s at %.1f%%, want KERN-EXEC 3 near 56%%", rows[0].Key, rows[0].Percent)
	}
	if share := s.CategoryShare("E32USER-CBase"); share < 12 || share > 27 {
		t.Errorf("E32USER-CBase share = %.1f%%, want ~18%%", share)
	}

	// Figure 2: bimodal reboot durations, clean 360 s separation.
	durs := s.RebootDurations()
	selfShare := 100 * float64(rep.SelfShutdowns) / float64(len(durs))
	if selfShare < 17 || selfShare > 32 {
		t.Errorf("self-shutdown share of shutdowns = %.1f%%, paper: 24.2%%", selfShare)
	}
	zoom := s.RebootHistogram(0, 500, 20)
	if m := zoom.ModeBin(); m >= 0 {
		_, lo, hi := zoom.Bin(m)
		if lo < 25 || hi > 150 {
			t.Errorf("zoom mode bin [%v, %v), want around 80 s", lo, hi)
		}
	}

	// Figure 3: a visible minority of panics arrive in cascades.
	if bursts := 100 * s.Bursts().PanicsInBursts; bursts < 14 || bursts > 38 {
		t.Errorf("panics in bursts = %.1f%%, paper: ~25%%", bursts)
	}

	// Figure 5: about half the panics relate to HL events, and user
	// shutdowns barely move the number.
	co := s.Coalesce()
	if co.RelatedPercent < 38 || co.RelatedPercent > 66 {
		t.Errorf("related panics = %.1f%%, paper: 51%%", co.RelatedPercent)
	}
	if all := s.RelatedPercentWithAllShutdowns(); all-co.RelatedPercent > 10 {
		t.Errorf("all-shutdown check moved the relation by %.1f points, paper: ~4", all-co.RelatedPercent)
	}

	// Table 3 constraints: USER and ViewSrv only in calls; Phone.app only
	// in messaging (primaries can be asserted through the logger data by
	// checking the activity tags of those categories).
	for _, p := range s.Panics() {
		switch p.Category {
		case "ViewSrv":
			if p.Activity == "message" {
				t.Errorf("ViewSrv panic tagged message (call-only class)")
			}
		case "Phone.app":
			if p.Activity == "voice-call" {
				t.Errorf("Phone.app panic tagged voice-call (message-only class)")
			}
		}
	}

	// Figure 6: concurrency does not drive panics — the mode is 0 or 1.
	hist := s.RunningAppsHistogram(8)
	mode, best := -1, 0
	for n, c := range hist {
		if c > best {
			mode, best = n, c
		}
	}
	if mode > 1 {
		t.Errorf("running-apps mode = %d, paper observes mostly one", mode)
	}

	// Table 4: Messages is among the top applications at panic time.
	tops := s.TopPanicApps(4)
	foundMessages := false
	for _, a := range tops {
		if a.App == "Messages" {
			foundMessages = true
		}
	}
	if !foundMessages {
		t.Errorf("Messages missing from top panic apps: %+v", tops)
	}
	_ = analysis.DefaultOptions()
}
