package core

import (
	"bytes"
	"fmt"
	"testing"

	"symfail/internal/sim"
)

func frameCorpus() [][]byte {
	recs := []Record{
		{Kind: KindBoot, Time: 1, Boot: 1, Detected: DetectedFirstBoot, OSVersion: "8.0"},
		{Kind: KindPanic, Time: 2, Category: "KERN-EXEC", PType: 3, Apps: []string{"Phone.app"}},
		{Kind: KindBoot, Time: 3, Boot: 2, Detected: DetectedFreeze, PrevBeat: BeatAlive, LogSalvaged: 2, LogLost: 1},
	}
	var log []byte
	for _, r := range recs {
		log = append(log, FrameRecord(r)...)
	}
	return [][]byte{
		log,
		EncodeFrame(nil),
		EncodeFrame([]byte("{}")),
		[]byte("~00000000:000000:\n"),
		[]byte("~deadbeef:ffffff:"),
		[]byte("garbage" + string(log) + "more garbage"),
	}
}

func TestEncodeFrameRoundTrip(t *testing.T) {
	for _, payload := range [][]byte{nil, []byte("x"), []byte(`{"kind":"boot"}`), bytes.Repeat([]byte("ab"), 5000)} {
		frame := EncodeFrame(payload)
		got, size, ok := decodeFrame(frame)
		if !ok || size != len(frame) || !bytes.Equal(got, payload) {
			t.Errorf("round trip failed for %d-byte payload: ok=%v size=%d", len(payload), ok, size)
		}
	}
}

// TestRecoverLogTruncationAtEveryOffset is the torn-tail exhaustive check:
// however many trailing bytes power loss shaves off a valid log, recovery
// must neither panic nor invent a record, and every frame fully inside the
// prefix must survive.
func TestRecoverLogTruncationAtEveryOffset(t *testing.T) {
	var log []byte
	var boundaries []int // log offsets at which a frame ends
	for i := 0; i < 8; i++ {
		log = append(log, FrameRecord(Record{Kind: KindPanic, Time: int64(i), Category: "USER", PType: i})...)
		boundaries = append(boundaries, len(log))
	}
	for cut := 0; cut <= len(log); cut++ {
		rec := RecoverLog(log[:cut])
		wantFrames := 0
		for _, b := range boundaries {
			if b <= cut {
				wantFrames++
			}
		}
		if rec.Salvaged != wantFrames {
			t.Fatalf("cut at %d: salvaged %d frames, want %d", cut, rec.Salvaged, wantFrames)
		}
		if len(rec.Payloads) != wantFrames {
			t.Fatalf("cut at %d: %d payloads, want %d", cut, len(rec.Payloads), wantFrames)
		}
		atBoundary := cut == 0
		for _, b := range boundaries {
			if b == cut {
				atBoundary = true
			}
		}
		if rec.Dirty == atBoundary {
			t.Fatalf("cut at %d: Dirty=%v, boundary=%v", cut, rec.Dirty, atBoundary)
		}
	}
}

// TestRecoverLogSingleBitFlips flips every bit of a framed log in turn: the
// damaged frame must be dropped (never a phantom payload) and all other
// frames must survive.
func TestRecoverLogSingleBitFlips(t *testing.T) {
	var log []byte
	var payloads [][]byte
	for i := 0; i < 4; i++ {
		r := Record{Kind: KindPanic, Time: int64(i), Category: "E32USER-CBase", PType: 40 + i}
		log = append(log, FrameRecord(r)...)
		p, _, _ := decodeFrame(FrameRecord(r))
		payloads = append(payloads, p)
	}
	for bit := 0; bit < len(log)*8; bit++ {
		bad := append([]byte(nil), log...)
		bad[bit/8] ^= 1 << (bit % 8)
		rec := RecoverLog(bad)
		if rec.Salvaged > len(payloads) {
			t.Fatalf("bit %d: salvaged %d frames from a %d-frame log", bit, rec.Salvaged, len(payloads))
		}
		// Whatever survived must be one of the original payloads: a flip
		// may destroy a frame but never alter one undetected.
		for _, got := range rec.Payloads {
			known := false
			for _, want := range payloads {
				if bytes.Equal(got, want) {
					known = true
					break
				}
			}
			if !known {
				t.Fatalf("bit %d: recovery surfaced a phantom payload %q", bit, got)
			}
		}
		if rec.Salvaged < len(payloads)-1 {
			t.Fatalf("bit %d: flip destroyed %d frames, at most 1 possible", bit, len(payloads)-rec.Salvaged)
		}
	}
}

// TestRecoverLogIdempotent is the recovery fixpoint property: recovering
// the cleaned bytes changes nothing, reports no damage, and yields the
// same payloads — for torn, bit-flipped and garbage-injected inputs alike.
func TestRecoverLogIdempotent(t *testing.T) {
	rng := sim.NewRand(7)
	for trial := 0; trial < 500; trial++ {
		var log []byte
		for i, n := 0, rng.Intn(6); i < n; i++ {
			log = append(log, FrameRecord(Record{Kind: KindPanic, Time: int64(trial*10 + i), Category: "USER", PType: i})...)
		}
		// Random damage: truncate, flip bits, splice garbage.
		if len(log) > 0 && rng.Bool(0.5) {
			log = log[:rng.Intn(len(log))]
		}
		for i, n := 0, rng.Intn(4); i < n && len(log) > 0; i++ {
			bit := rng.Intn(len(log) * 8)
			log[bit/8] ^= 1 << (bit % 8)
		}
		if rng.Bool(0.3) {
			at := 0
			if len(log) > 0 {
				at = rng.Intn(len(log))
			}
			garbage := []byte(fmt.Sprintf("~~junk%d{", trial))
			log = append(log[:at:at], append(garbage, log[at:]...)...)
		}
		first := RecoverLog(log)
		second := RecoverLog(first.Clean)
		if second.Dirty || second.Lost != 0 {
			t.Fatalf("trial %d: recovery of clean bytes dirty=%v lost=%d", trial, second.Dirty, second.Lost)
		}
		if !bytes.Equal(second.Clean, first.Clean) || len(second.Payloads) != len(first.Payloads) {
			t.Fatalf("trial %d: recovery is not idempotent", trial)
		}
		for i := range first.Payloads {
			if !bytes.Equal(first.Payloads[i], second.Payloads[i]) {
				t.Fatalf("trial %d: payload %d changed across recoveries", trial, i)
			}
		}
	}
}

// FuzzRecoverLog hammers the recovery scanner with arbitrary bytes: it
// must never panic, never surface a payload whose frame does not verify,
// and always reach the idempotent fixpoint in one pass.
func FuzzRecoverLog(f *testing.F) {
	for _, seed := range frameCorpus() {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rec := RecoverLog(data)
		if rec.Salvaged != len(rec.Payloads) {
			t.Fatalf("salvaged %d != %d payloads", rec.Salvaged, len(rec.Payloads))
		}
		if len(rec.Clean) > len(data) {
			t.Fatalf("clean output longer than input: %d > %d", len(rec.Clean), len(data))
		}
		// Every surfaced payload must re-verify: re-encoding it yields a
		// frame whose checksum matches, i.e. no phantom records.
		var reencoded []byte
		for _, p := range rec.Payloads {
			reencoded = append(reencoded, EncodeFrame(p)...)
		}
		if !bytes.Equal(reencoded, rec.Clean) {
			t.Fatalf("clean bytes are not the concatenation of the salvaged frames")
		}
		second := RecoverLog(rec.Clean)
		if second.Dirty || second.Salvaged != rec.Salvaged {
			t.Fatalf("recovery not idempotent: dirty=%v salvaged %d -> %d", second.Dirty, rec.Salvaged, second.Salvaged)
		}
	})
}

// FuzzParseRecordsAndBeat guards the analyser entry points: arbitrary
// on-flash bytes (framed, legacy, or trash) must parse without panicking
// and without inventing records of unknown kinds.
func FuzzParseRecordsAndBeat(f *testing.F) {
	for _, seed := range frameCorpus() {
		f.Add(seed)
	}
	f.Add(EncodeRecord(Record{Kind: KindBoot, Time: 9, Detected: DetectedShutdown}))
	f.Add([]byte(`{"kind":"ALIVE","time":3}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		_ = ParseRecords(data)
		if b, ok := ParseBeat(data); ok {
			switch b.Kind {
			case BeatAlive, BeatReboot, BeatLowBat, BeatMAOff:
			default:
				t.Fatalf("ParseBeat surfaced unknown kind %q", b.Kind)
			}
		}
	})
}

func TestRotateFramedKeepsNewestVerifiableFrames(t *testing.T) {
	var log []byte
	for i := 0; i < 40; i++ {
		log = append(log, FrameRecord(Record{Kind: KindPanic, Time: int64(i), Category: "USER", PType: i})...)
	}
	keep := len(log) / 3
	rotated := rotateFramed(log, keep)
	if len(rotated) > keep {
		t.Fatalf("rotated %d bytes > keep %d", len(rotated), keep)
	}
	rec := RecoverLog(rotated)
	if rec.Dirty {
		t.Fatal("rotation produced a dirty log")
	}
	recs := ParseRecords(rotated)
	if len(recs) == 0 {
		t.Fatal("rotation dropped everything")
	}
	// The survivors are the newest records, in order.
	for i := 1; i < len(recs); i++ {
		if recs[i].Time != recs[i-1].Time+1 {
			t.Fatalf("rotation left a gap: %d then %d", recs[i-1].Time, recs[i].Time)
		}
	}
	if recs[len(recs)-1].Time != 39 {
		t.Fatalf("newest record lost: last time %d", recs[len(recs)-1].Time)
	}
}
