// Package lint is a dependency-free static-analysis driver for the symfail
// module, modeled on the golang.org/x/tools/go/analysis shape but built
// entirely on the standard library (go/ast, go/parser, go/token, go/types).
//
// The simulator's scientific claims rest on statically checkable
// contracts: bit-for-bit determinism (no ambient time, environment, or
// global randomness inside the simulation packages — enforced both
// file-locally and transitively over a whole-program call graph), a closed
// panic taxonomy (every mechanistically raised (Category, Type) pair is
// known to the analysis layer), single-owner engines, registered mergeable
// accumulators, WAL-before-ACK ordering in the collection server, and
// never-discarded durability results. The analyzers in this package
// enforce all of them, so a future refactor cannot silently break the
// paper reproduction.
//
// Diagnostics can be suppressed one line at a time with an explicit,
// reasoned escape hatch:
//
//	//symlint:allow <analyzer> <reason>
//
// placed either on the offending line or on the line directly above it.
// The reason is mandatory; an allow without one is itself a diagnostic.
package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// Diagnostic is one finding, rendered as "file:line: analyzer: message".
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Chain, when set, is the call chain behind an interprocedural finding:
	// the function containing the flagged call site first, the offending
	// sink last. Rendered in brackets after the message.
	Chain []string
}

func (d Diagnostic) String() string {
	s := fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
	if len(d.Chain) > 0 {
		s += " [" + strings.Join(d.Chain, " -> ") + "]"
	}
	return s
}

// Analyzer is one named check. Run is invoked once per loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// runState is shared by every (analyzer, package) pass of one Run call. It
// lazily builds the whole-program call graph so interprocedural analyzers
// pay for it once and file-local analyzers never do.
type runState struct {
	pkgs  []*Package
	graph *CallGraph
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	// All is every package in the current run, for whole-program checks
	// such as the panic-taxonomy cross-reference.
	All []*Package

	run   *runState
	diags *[]Diagnostic
}

// Graph returns the call graph over the run's package set, building it on
// first use and sharing it across every subsequent pass of the same Run.
func (p *Pass) Graph() *CallGraph {
	if p.run.graph == nil {
		p.run.graph = BuildCallGraph(p.run.pkgs)
	}
	return p.run.graph
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportChainf records a diagnostic carrying an interprocedural call chain.
func (p *Pass) ReportChainf(pos token.Pos, chain []string, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Chain:    chain,
	})
}

// DefaultAnalyzers returns the full analyzer suite with module defaults:
// determinism (file-local + transitive), maporder, panictaxonomy, rngshare,
// engineshare, accmerge, ackorder, and errdrop.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		NewDeterminism(DeterminismConfig{}),
		NewMapOrder(),
		NewPanicTaxonomy(TaxonomyConfig{}),
		NewRNGShare(RNGConfig{}),
		NewEngineShare(EngineConfig{}),
		NewAccMerge(AccMergeConfig{}),
		NewAckOrder(AckOrderConfig{}),
		NewErrDrop(ErrDropConfig{}),
	}
}

// Run applies every analyzer to every package, then filters the findings
// through the //symlint:allow directives found in the analyzed sources.
// Malformed or unused allow directives are reported under the pseudo-analyzer
// name "directive".
//
// The result order is a contract: diagnostics are sorted by position
// (filename, line, column), then analyzer name, then message, so the output
// is byte-identical regardless of package or analyzer iteration order —
// the lint tool meets the determinism bar it enforces (pinned by
// TestRunDeterministicOrder).
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	rs := &runState{pkgs: pkgs}
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			pass := &Pass{Analyzer: a, Fset: pkgFset(pkg), Pkg: pkg, All: pkgs, run: rs, diags: &diags}
			a.Run(pass)
		}
	}

	idx := newDirectiveIndex(pkgs)
	diags = append(diags, idx.malformed...)

	kept := diags[:0]
	for _, d := range diags {
		if d.Analyzer != "directive" && idx.suppress(d) {
			continue
		}
		kept = append(kept, d)
	}
	diags = kept

	active := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		active[a.Name] = true
	}
	diags = append(diags, idx.unused(active)...)

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// pkgFset digs the FileSet out of a package by finding any file position.
// All packages from one Loader share a single FileSet, which the Loader
// stores; passes get it through the package's loader-assigned set.
func pkgFset(pkg *Package) *token.FileSet {
	return pkg.fset
}
