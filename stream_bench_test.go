package symfail

// BenchmarkStudyStreamVsBatch is the perf harness for the streaming
// analysis tier: over a 25-phone and a 1000-phone dataset it measures the
// batch pipeline (materialise AllRecords, build a Study) against the
// single-pass streaming pipeline (Dataset.Stream through a Feeder into the
// composite Tables accumulator), reporting ns/op, B/op and records/sec, and
// writes the grid to BENCH_analysis.json so future PRs have a perf
// trajectory to compare against. Run it alone for stable numbers:
//
//	go test -bench BenchmarkStudyStreamVsBatch -benchtime 5x .

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"symfail/internal/analysis"
	"symfail/internal/analysis/stream"
	"symfail/internal/collect"
	"symfail/internal/phone"
)

// analysisCell is one measured (dataset, pipeline) point.
type analysisCell struct {
	Phones        int     `json:"phones"`
	Months        float64 `json:"months"`
	Records       int     `json:"records"`
	Mode          string  `json:"mode"` // "batch" or "stream"
	NsPerOp       float64 `json:"nsPerOp"`
	BytesPerOp    float64 `json:"bytesPerOp"`
	AllocsPerOp   float64 `json:"allocsPerOp"`
	RecordsPerSec float64 `json:"recordsPerSec"`
}

type analysisReport struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	GoVersion  string         `json:"goVersion"`
	Cells      []analysisCell `json:"cells"`
}

// streamBenchDataset simulates one fleet and returns its collected dataset plus
// the total record count.
func streamBenchDataset(b *testing.B, phones int, duration time.Duration) (*collect.Dataset, int) {
	b.Helper()
	fs, err := RunFieldStudy(FieldStudyConfig{
		Seed:       2007,
		Phones:     phones,
		Duration:   duration,
		JoinWindow: duration / 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	records := 0
	for _, recs := range fs.Dataset.AllRecords() {
		records += len(recs)
	}
	return fs.Dataset, records
}

func BenchmarkStudyStreamVsBatch(b *testing.B) {
	grid := []struct {
		phones   int
		duration time.Duration
	}{
		{25, 2 * phone.StudyMonth},
		{1000, phone.StudyMonth / 4},
	}
	opts := analysis.Options{}
	report := analysisReport{GOMAXPROCS: runtime.GOMAXPROCS(0), GoVersion: runtime.Version()}
	for _, g := range grid {
		ds, records := streamBenchDataset(b, g.phones, g.duration)
		pipelines := []struct {
			mode string
			run  func() *stream.TablesSnapshot
		}{
			{"batch", func() *stream.TablesSnapshot {
				return analysis.New(ds.AllRecords(), opts).Snapshot()
			}},
			{"stream", func() *stream.TablesSnapshot {
				acc := stream.NewTables(opts)
				f := &stream.Feeder{AddDevice: acc.AddDevice, Observe: acc.Observe}
				if err := ds.Stream(f.Begin, f.Record); err != nil {
					b.Fatal(err)
				}
				f.Flush()
				return acc.Tables()
			}},
		}
		for _, p := range pipelines {
			name := fmt.Sprintf("phones=%d/%s", g.phones, p.mode)
			var cell analysisCell
			b.Run(name, func(b *testing.B) {
				b.ReportAllocs()
				var sink *stream.TablesSnapshot
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					sink = p.run()
				}
				b.StopTimer()
				if sink == nil || len(sink.Devices) != g.phones {
					b.Fatalf("snapshot covers %d devices, want %d", len(sink.Devices), g.phones)
				}
				res := testing.BenchmarkResult{N: b.N, T: b.Elapsed()}
				cell = analysisCell{
					Phones:  g.phones,
					Months:  float64(g.duration) / float64(phone.StudyMonth),
					Records: records,
					Mode:    p.mode,
					NsPerOp: float64(res.NsPerOp()),
				}
				if secs := b.Elapsed().Seconds(); secs > 0 {
					cell.RecordsPerSec = float64(records) * float64(b.N) / secs
				}
				b.ReportMetric(cell.RecordsPerSec, "records/s")
			})
			if cell.Phones == 0 {
				continue // sub-bench filtered out by -bench
			}
			// B/op and allocs/op for the JSON trajectory, measured outside
			// the timed loop (the harness prints its own via ReportAllocs).
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			_ = p.run()
			runtime.ReadMemStats(&after)
			cell.BytesPerOp = float64(after.TotalAlloc - before.TotalAlloc)
			cell.AllocsPerOp = float64(after.Mallocs - before.Mallocs)
			report.Cells = append(report.Cells, cell)
		}
	}
	if len(report.Cells) == 0 {
		return
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	// BENCH_ANALYSIS_OUT redirects the report so `make bench-check` can
	// measure a fresh grid without clobbering the committed baseline.
	out := os.Getenv("BENCH_ANALYSIS_OUT")
	if out == "" {
		out = "BENCH_analysis.json"
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
}
