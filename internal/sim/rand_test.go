package sim

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func TestRandDeterminism(t *testing.T) {
	a := NewRand(42)
	b := NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestRandSeedsIndependent(t *testing.T) {
	a := NewRand(1)
	b := NewRand(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between seed 1 and seed 2 streams", same)
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRandFloat64Mean(t *testing.T) {
	r := NewRand(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", mean)
	}
}

func TestRandIntnBounds(t *testing.T) {
	r := NewRand(3)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Errorf("only %d of 10 values seen", len(seen))
	}
}

func TestRandIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) did not panic")
		}
	}()
	NewRand(1).Intn(0)
}

func TestRandBoolExtremes(t *testing.T) {
	r := NewRand(5)
	for i := 0; i < 100; i++ {
		if r.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !r.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestRandBoolFrequency(t *testing.T) {
	r := NewRand(9)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	got := float64(hits) / n
	if math.Abs(got-0.3) > 0.01 {
		t.Errorf("Bool(0.3) frequency = %v", got)
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(13)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(5)
	}
	mean := sum / n
	if math.Abs(mean-5) > 0.1 {
		t.Errorf("Exp mean = %v, want ~5", mean)
	}
}

func TestRandExpDurationPositive(t *testing.T) {
	r := NewRand(17)
	for i := 0; i < 10000; i++ {
		if d := r.ExpDuration(time.Hour); d < 0 {
			t.Fatalf("negative exponential duration %v", d)
		}
	}
}

func TestRandNormMoments(t *testing.T) {
	r := NewRand(19)
	var sum, sumSq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Norm(10, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Errorf("Norm mean = %v", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Errorf("Norm stddev = %v", math.Sqrt(variance))
	}
}

func TestRandNormDurationClamp(t *testing.T) {
	r := NewRand(23)
	for i := 0; i < 10000; i++ {
		if d := r.NormDuration(time.Second, 10*time.Second, 0); d < 0 {
			t.Fatalf("NormDuration below clamp: %v", d)
		}
	}
}

func TestRandLogNormalMedian(t *testing.T) {
	r := NewRand(29)
	samples := make([]float64, 0, 50001)
	for i := 0; i < 50001; i++ {
		samples = append(samples, r.LogNormal(80, 0.5))
	}
	// Median should sit near 80.
	h := NewHistogram(0, 1000, 100)
	for _, s := range samples {
		h.Add(s)
	}
	med := h.Quantile(0.5)
	if med < 70 || med > 90 {
		t.Errorf("LogNormal median = %v, want ~80", med)
	}
}

func TestRandGeometricMean(t *testing.T) {
	r := NewRand(31)
	var sum int
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Geometric(0.5)
	}
	mean := float64(sum) / n
	// E[failures before success] = (1-p)/p = 1.
	if math.Abs(mean-1) > 0.05 {
		t.Errorf("Geometric(0.5) mean = %v, want ~1", mean)
	}
}

func TestRandGeometricExtremes(t *testing.T) {
	r := NewRand(37)
	if r.Geometric(1) != 0 {
		t.Error("Geometric(1) != 0")
	}
	if r.Geometric(0) != 0 {
		t.Error("Geometric(0) != 0 (degenerate guard)")
	}
}

func TestRandWeightedIndex(t *testing.T) {
	r := NewRand(41)
	weights := []float64{0, 1, 3, 0}
	counts := make([]int, len(weights))
	const n = 100000
	for i := 0; i < n; i++ {
		idx := r.WeightedIndex(weights)
		if idx < 0 || idx >= len(weights) {
			t.Fatalf("index out of range: %d", idx)
		}
		counts[idx]++
	}
	if counts[0] != 0 || counts[3] != 0 {
		t.Errorf("zero-weight indices chosen: %v", counts)
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if math.Abs(ratio-3) > 0.2 {
		t.Errorf("weight ratio = %v, want ~3", ratio)
	}
}

func TestRandWeightedIndexDegenerate(t *testing.T) {
	r := NewRand(43)
	if got := r.WeightedIndex(nil); got != -1 {
		t.Errorf("WeightedIndex(nil) = %d", got)
	}
	if got := r.WeightedIndex([]float64{0, 0}); got != -1 {
		t.Errorf("WeightedIndex(zeros) = %d", got)
	}
}

func TestRandShuffleIsPermutation(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		xs := make([]int, 30)
		for i := range xs {
			xs[i] = i
		}
		r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
		seen := make([]bool, len(xs))
		for _, v := range xs {
			if v < 0 || v >= len(xs) || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRandSplitIndependence(t *testing.T) {
	parent := NewRand(55)
	child := parent.Split()
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d collisions between parent and child streams", same)
	}
}
