package symfail

import (
	"testing"
	"time"

	"symfail/internal/phone"
)

func TestValidateDetection(t *testing.T) {
	fs, err := RunFieldStudy(smallCfg(47))
	if err != nil {
		t.Fatal(err)
	}
	rep := ValidateDetection(fs)
	if rep.PhonesCompared == 0 {
		t.Fatal("no unserviced phones to compare")
	}
	if rep.TruthFreezes == 0 || rep.TruthSelfShutdowns == 0 {
		t.Fatalf("degenerate truth counts: %+v", rep)
	}
	// Freeze recall: at most one missed freeze per phone (the final one).
	if rep.FreezeRecall < 0.8 || rep.FreezeRecall > 1.0 {
		t.Errorf("freeze recall = %.3f", rep.FreezeRecall)
	}
	// Self-shutdown identification within a few percent.
	if rep.SelfShutdownRatio < 0.85 || rep.SelfShutdownRatio > 1.15 {
		t.Errorf("self-shutdown ratio = %.3f", rep.SelfShutdownRatio)
	}
	// RDebug misses nothing — but serviced phones lose pre-reset panic
	// records from flash, so the capture rate can dip below 1 when any
	// phone was serviced.
	anyServiced := false
	for _, d := range fs.Fleet.Devices {
		if d.ServiceVisits() > 0 {
			anyServiced = true
		}
	}
	if !anyServiced && rep.PanicCaptureRate != 1.0 {
		t.Errorf("panic capture = %.3f with no serviced phones", rep.PanicCaptureRate)
	}
	if rep.PanicCaptureRate > 1.0 || rep.PanicCaptureRate < 0.5 {
		t.Errorf("panic capture = %.3f out of plausible range", rep.PanicCaptureRate)
	}
}

func TestUploadFrequencyImprovesPanicCapture(t *testing.T) {
	// Master resets destroy everything logged since the last upload, so
	// capture improves monotonically with upload frequency — the
	// quantitative argument for the study's periodic transfer
	// infrastructure. Records already uploaded always survive resets
	// (PutMerged), so even infrequent uploads beat final-only collection.
	capture := func(every time.Duration) float64 {
		cfg := FieldStudyConfig{
			Seed:        53,
			Phones:      4,
			Duration:    3 * phone.StudyMonth,
			JoinWindow:  0,
			UploadEvery: every,
			Device: func(seed uint64) phone.Config {
				c := phone.DefaultConfig(seed)
				c.ServiceFailureThreshold = 2
				c.ServiceProb = 1
				return c
			},
		}
		fs, srv, err := RunFieldStudyWithCollector(cfg)
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		return ValidateDetection(fs).PanicCaptureRate
	}
	weekly := capture(7 * 24 * time.Hour)
	hourly := capture(time.Hour)
	if hourly < weekly {
		t.Errorf("hourly uploads captured less than weekly: %.3f < %.3f", hourly, weekly)
	}
	if hourly < 0.9 {
		t.Errorf("hourly capture = %.3f, want near-complete", hourly)
	}
	if weekly <= 0.2 {
		t.Errorf("weekly capture = %.3f, suspiciously low", weekly)
	}
}
