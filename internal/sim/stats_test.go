package sim

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBinning(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for _, v := range []float64{0, 5, 9.99, 10, 55, 99.99, 100, 150, -1} {
		h.Add(v)
	}
	if got, _, _ := h.Bin(0); got != 3 {
		t.Errorf("bin 0 = %d, want 3", got)
	}
	if got, _, _ := h.Bin(1); got != 1 {
		t.Errorf("bin 1 = %d, want 1", got)
	}
	if got, _, _ := h.Bin(5); got != 1 {
		t.Errorf("bin 5 = %d, want 1", got)
	}
	if h.Overflow() != 2 {
		t.Errorf("overflow = %d, want 2", h.Overflow())
	}
	if h.Underflow() != 1 {
		t.Errorf("underflow = %d, want 1", h.Underflow())
	}
	if h.N() != 9 {
		t.Errorf("N = %d, want 9", h.N())
	}
}

func TestHistogramBinEdges(t *testing.T) {
	h := NewHistogram(10, 20, 5)
	_, lo, hi := h.Bin(2)
	if lo != 14 || hi != 16 {
		t.Errorf("bin 2 range = [%v, %v), want [14, 16)", lo, hi)
	}
	if h.Bins() != 5 {
		t.Errorf("Bins = %d", h.Bins())
	}
}

func TestHistogramMeanQuantile(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	for _, v := range []float64{1, 2, 3, 4, 5} {
		h.Add(v)
	}
	if h.Mean() != 3 {
		t.Errorf("Mean = %v", h.Mean())
	}
	if q := h.Quantile(0.5); q != 3 {
		t.Errorf("median = %v", q)
	}
	if q := h.Quantile(0); q != 1 {
		t.Errorf("min = %v", q)
	}
	if q := h.Quantile(1); q != 5 {
		t.Errorf("max = %v", q)
	}
}

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram(0, 1, 4)
	if h.Mean() != 0 || h.Quantile(0.5) != 0 || h.N() != 0 {
		t.Error("empty histogram should report zeros")
	}
	if h.ModeBin() != -1 {
		t.Errorf("ModeBin of empty = %d", h.ModeBin())
	}
}

func TestHistogramModeAndMaxima(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	// Two peaks: bin 1 (10-20) and bin 7 (70-80).
	for i := 0; i < 30; i++ {
		h.Add(15)
	}
	for i := 0; i < 20; i++ {
		h.Add(75)
	}
	for i := 0; i < 3; i++ {
		h.Add(45)
	}
	if h.ModeBin() != 1 {
		t.Errorf("ModeBin = %d, want 1", h.ModeBin())
	}
	maxima := h.LocalMaxima(5)
	if len(maxima) != 2 || maxima[0] != 1 || maxima[1] != 7 {
		t.Errorf("LocalMaxima = %v, want [1 7]", maxima)
	}
}

func TestHistogramQuantileMonotone(t *testing.T) {
	f := func(seed uint64) bool {
		r := NewRand(seed)
		h := NewHistogram(0, 1, 10)
		for i := 0; i < 100; i++ {
			h.Add(r.Float64())
		}
		prev := h.Quantile(0)
		for q := 0.1; q <= 1.0; q += 0.1 {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramRender(t *testing.T) {
	h := NewHistogram(0, 10, 2)
	h.Add(1)
	h.Add(2)
	h.Add(7)
	h.Add(20)
	out := h.Render(10, func(lo, hi float64) string { return "x" })
	if !strings.Contains(out, "#") {
		t.Errorf("render has no bars:\n%s", out)
	}
	if !strings.Contains(out, ">= upper") {
		t.Errorf("render missing overflow row:\n%s", out)
	}
}

func TestCounterBasics(t *testing.T) {
	c := NewCounter()
	c.Add("a")
	c.Add("a")
	c.AddN("b", 3)
	if c.Count("a") != 2 || c.Count("b") != 3 || c.Count("zzz") != 0 {
		t.Error("counts wrong")
	}
	if c.Total() != 5 {
		t.Errorf("Total = %d", c.Total())
	}
	if p := c.Percent("b"); p != 60 {
		t.Errorf("Percent(b) = %v", p)
	}
}

func TestCounterEmptyPercent(t *testing.T) {
	c := NewCounter()
	if c.Percent("x") != 0 {
		t.Error("empty counter percent should be 0")
	}
}

func TestCounterSortedStable(t *testing.T) {
	c := NewCounter()
	c.AddN("beta", 2)
	c.AddN("alpha", 2)
	c.AddN("gamma", 5)
	got := c.Sorted()
	if got[0].Key != "gamma" {
		t.Errorf("first = %v", got[0])
	}
	if got[1].Key != "alpha" || got[2].Key != "beta" {
		t.Errorf("tie order wrong: %v", got)
	}
	keys := c.Keys()
	if len(keys) != 3 || keys[0] != "alpha" || keys[2] != "gamma" {
		t.Errorf("Keys = %v", keys)
	}
}
