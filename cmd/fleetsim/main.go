// Command fleetsim simulates an instrumented phone fleet and dumps the raw
// study data: ground truth versus logger view, per device. It is the tool
// for inspecting the simulator itself rather than the paper's tables.
//
// Usage:
//
//	fleetsim [-seed N] [-phones N] [-months N] [-v]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"symfail"
	"symfail/internal/analysis"
	"symfail/internal/core"
	"symfail/internal/phone"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fleetsim", flag.ContinueOnError)
	var (
		seed    = fs.Uint64("seed", 1, "random seed")
		phones  = fs.Int("phones", 5, "number of phones")
		months  = fs.Int("months", 3, "months simulated")
		verbose = fs.Bool("v", false, "print every logged record")
		dump    = fs.String("dump", "", "write ground truth + logger records as JSON to this file")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := symfail.FieldStudyConfig{
		Seed:       *seed,
		Phones:     *phones,
		Duration:   time.Duration(*months) * phone.StudyMonth,
		JoinWindow: phone.StudyMonth / 2,
	}
	study, err := symfail.RunFieldStudy(cfg)
	if err != nil {
		return err
	}

	fmt.Printf("%-10s %8s %7s %7s %7s %7s %8s %8s\n",
		"device", "hours", "boots", "freeze", "self", "panics", "log-frz", "log-shut")
	for i, d := range study.Fleet.Devices {
		o := d.Oracle()
		recs := study.Loggers[i].Records()
		var logFreeze, logShut, logPanic int
		for _, r := range recs {
			switch {
			case r.Kind == core.KindPanic:
				logPanic++
			case r.Detected == core.DetectedFreeze:
				logFreeze++
			case r.Detected == core.DetectedShutdown:
				logShut++
			}
		}
		fmt.Printf("%-10s %8.0f %7d %7d %7d %7d %8d %8d\n",
			d.ID(), o.ObservedHours, o.Count(phone.TruthBoot),
			o.Count(phone.TruthFreeze), o.Count(phone.TruthSelfShutdown),
			o.PanicCount(), logFreeze, logShut)
		if *verbose {
			for _, r := range recs {
				if r.Kind == core.KindPanic {
					fmt.Printf("    %s panic %s apps=%v activity=%s\n",
						r.When(), r.PanicKey(), r.Apps, r.Activity)
				} else {
					fmt.Printf("    %s boot#%d detected=%s off=%.0fs\n",
						r.When(), r.Boot, r.Detected, r.OffSeconds)
				}
			}
		}
	}

	rep := study.Study.MTBF()
	fmt.Printf("\nlogger view: %d freezes (MTBFr %.0f h), %d self-shutdowns (MTBS %.0f h)\n",
		rep.Freezes, rep.MTBFrHours, rep.SelfShutdowns, rep.MTBSHours)
	fmt.Printf("coalescence: %.1f%% of panics relate to HL events\n",
		study.Study.Coalesce().RelatedPercent)
	_ = analysis.DefaultOptions()

	if *dump != "" {
		if err := dumpJSON(*dump, study); err != nil {
			return err
		}
		fmt.Printf("trace dumped to %s\n", *dump)
	}
	return nil
}

// deviceDump is the per-device JSON trace: the simulator's ground truth
// side by side with what the logger recorded.
type deviceDump struct {
	Device        string             `json:"device"`
	OSVersion     string             `json:"osVersion"`
	Persona       string             `json:"persona"`
	ObservedHours float64            `json:"observedHours"`
	Truth         []phone.TruthEvent `json:"truth"`
	TruthPanics   []phone.TruthPanic `json:"truthPanics"`
	Records       []core.Record      `json:"records"`
}

func dumpJSON(path string, study *symfail.FieldStudy) error {
	dumps := make([]deviceDump, 0, len(study.Fleet.Devices))
	for i, d := range study.Fleet.Devices {
		dumps = append(dumps, deviceDump{
			Device:        d.ID(),
			OSVersion:     d.OSVersion(),
			Persona:       string(d.Config().Persona),
			ObservedHours: d.Oracle().ObservedHours,
			Truth:         d.Oracle().Events,
			TruthPanics:   d.Oracle().Panics,
			Records:       study.Loggers[i].Records(),
		})
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	enc := json.NewEncoder(f)
	enc.SetIndent("", " ")
	return enc.Encode(dumps)
}
