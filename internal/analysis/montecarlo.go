package analysis

import (
	"math"
	"sort"
)

// Monte-Carlo aggregation: the paper reports one deployment; the simulator
// can rerun the whole study across independent seeds and attach sampling
// distributions to every headline metric, which is how EXPERIMENTS.md
// quantifies seed noise.

// MetricSample aggregates one metric across replicated studies.
type MetricSample struct {
	Name   string
	Values []float64
}

// Mean returns the sample mean.
func (m MetricSample) Mean() float64 {
	if len(m.Values) == 0 {
		return 0
	}
	var sum float64
	for _, v := range m.Values {
		sum += v
	}
	return sum / float64(len(m.Values))
}

// StdDev returns the sample standard deviation (n-1 denominator).
func (m MetricSample) StdDev() float64 {
	n := len(m.Values)
	if n < 2 {
		return 0
	}
	mean := m.Mean()
	var ss float64
	for _, v := range m.Values {
		ss += (v - mean) * (v - mean)
	}
	return math.Sqrt(ss / float64(n-1))
}

// CI95 returns a normal-approximation 95% confidence interval for the mean.
func (m MetricSample) CI95() (lo, hi float64) {
	n := len(m.Values)
	if n == 0 {
		return 0, 0
	}
	mean := m.Mean()
	half := 1.96 * m.StdDev() / math.Sqrt(float64(n))
	return mean - half, mean + half
}

// Quantile returns the q-quantile of the samples.
func (m MetricSample) Quantile(q float64) float64 {
	if len(m.Values) == 0 {
		return 0
	}
	s := append([]float64(nil), m.Values...)
	sort.Float64s(s)
	return s[quantileIndex(len(s), q)]
}

// HeadlineMetrics extracts the reproduction's headline numbers from one
// study, keyed by stable metric names.
func HeadlineMetrics(s *Study) map[string]float64 {
	rep := s.MTBF()
	co := s.Coalesce()
	bu := s.Bursts()
	out := map[string]float64{
		"mtbfr_hours":          rep.MTBFrHours,
		"mtbs_hours":           rep.MTBSHours,
		"failure_every_days":   rep.FailureEveryDays,
		"related_pct":          co.RelatedPercent,
		"bursts_pct":           100 * bu.PanicsInBursts,
		"realtime_pct":         s.RealTimeActivityShare(),
		"panics":               float64(co.TotalPanics),
		"freezes":              float64(rep.Freezes),
		"self_shutdowns":       float64(rep.SelfShutdowns),
		"observed_hours":       rep.ObservedHours,
		"selfshutdown_sharepc": 0,
	}
	if durs := s.RebootDurations(); len(durs) > 0 {
		out["selfshutdown_sharepc"] = 100 * float64(rep.SelfShutdowns) / float64(len(durs))
	}
	if rows := s.PanicTable(); len(rows) > 0 && rows[0].Key == "KERN-EXEC 3" {
		out["kernexec3_pct"] = rows[0].Percent
	}
	return out
}

// MetricNames is the stable presentation order of HeadlineMetrics keys.
var MetricNames = []string{
	"mtbfr_hours", "mtbs_hours", "failure_every_days",
	"kernexec3_pct", "related_pct", "bursts_pct", "realtime_pct",
	"selfshutdown_sharepc", "panics", "freezes", "self_shutdowns",
	"observed_hours",
}

// Aggregate folds per-study metric maps into MetricSamples keyed by name.
func Aggregate(runs []map[string]float64) map[string]MetricSample {
	out := make(map[string]MetricSample)
	for _, run := range runs {
		for name, v := range run {
			s := out[name]
			s.Name = name
			//symlint:allow maporder Values order follows the runs slice, not map order: each key gets exactly one append per run
			s.Values = append(s.Values, v)
			out[name] = s
		}
	}
	return out
}
