package symfail

import (
	"testing"

	"symfail/internal/collect"
	"symfail/internal/core"
)

// killChaosConfig is chaosConfig with the server's own survival on the
// line: on top of the ~20% composite network fault rate and the flash
// faults, the supervisor kills the collection server every handful of
// requests at a drawn crashpoint, and the tiny compaction bound makes the
// kills land on the snapshot path too. Workers:4 keeps the sharded engine
// in the mix — `make chaos-kill` runs this under -race.
func killChaosConfig(seed uint64) FieldStudyConfig {
	cfg := chaosConfig(seed)
	cfg.Adversity.ServerCrash = collect.CrashFaults{KillEveryMin: 6, KillEveryMax: 18}
	cfg.Adversity.ServerCompactWAL = 64 << 10
	return cfg
}

// TestKillAnythingNoAcknowledgedDataLoss is the tentpole invariant with
// everything failing at once — network, flash and the collection server
// itself: every record any server incarnation ever acknowledged is present
// exactly once in the final merged dataset.
func TestKillAnythingNoAcknowledgedDataLoss(t *testing.T) {
	fs, sup, err := RunFieldStudyWithCollector(killChaosConfig(20070627))
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()

	if err := sup.Err(); err != nil {
		t.Fatalf("supervisor failed to restart the server: %v", err)
	}
	// The run must actually have been adversarial on every axis.
	if sup.Crashes() == 0 {
		t.Fatal("no server crashes injected — the kill-anything harness is not killing anything")
	}
	if sup.Restarts() != sup.Crashes() {
		t.Errorf("crashes %d != restarts %d: an incarnation never came back",
			sup.Crashes(), sup.Restarts())
	}
	var torn uint64
	for _, d := range fs.Fleet.Devices {
		torn += d.FS().TornWrites()
	}
	if torn == 0 {
		t.Error("no torn flash writes injected")
	}
	var retransmitted int64
	for _, u := range fs.Uploaders {
		retransmitted += u.BytesRetransmitted()
	}
	if retransmitted == 0 {
		t.Error("no bytes were ever retransmitted — the crash/resume path was not exercised")
	}

	for _, d := range fs.Fleet.Devices {
		id := d.ID()
		counts := make(map[string]int)
		for _, r := range fs.Dataset.Records(id) {
			counts[string(core.EncodeRecord(r))]++
		}
		acked := sup.AckedKeys(id)
		if len(acked) == 0 {
			t.Errorf("%s: no record was ever acknowledged", id)
		}
		missing, duplicated := 0, 0
		for _, key := range acked {
			switch counts[key] {
			case 1:
			case 0:
				missing++
			default:
				duplicated++
			}
		}
		if missing > 0 || duplicated > 0 {
			t.Errorf("%s: of %d acknowledged records, %d missing and %d duplicated after %d server crashes",
				id, len(acked), missing, duplicated, sup.Crashes())
		}
	}

	// Recovery may only ever surface well-formed records.
	for id, recs := range fs.Dataset.AllRecords() {
		for _, r := range recs {
			if r.Kind != core.KindBoot && r.Kind != core.KindPanic {
				t.Errorf("%s: unknown record kind %q surfaced from WAL recovery: %+v", id, r.Kind, r)
			}
		}
	}
}

// TestKillAnythingHeadlineWithinBands: the paper's headline measurements
// must survive the server being killed out from under the study — same
// bands as the network/flash-only chaos harness.
func TestKillAnythingHeadlineWithinBands(t *testing.T) {
	fs, sup, err := RunFieldStudyWithCollector(killChaosConfig(20070629))
	if err != nil {
		t.Fatal(err)
	}
	defer sup.Close()
	if sup.Crashes() == 0 {
		t.Fatal("no server crashes injected")
	}

	rep := ValidateDetection(fs)
	if rep.TruthPanics == 0 || rep.TruthFreezes == 0 {
		t.Fatalf("degenerate kill-chaos run: %+v", rep)
	}
	if rep.PanicCaptureRate < 0.85 {
		t.Errorf("panic capture rate %.3f under server crashes, want >= 0.85 (%d/%d)",
			rep.PanicCaptureRate, rep.LoggedPanics, rep.TruthPanics)
	}
	if rep.FreezeRecall < 0.80 {
		t.Errorf("freeze recall %.3f under server crashes, want >= 0.80 (%d/%d)",
			rep.FreezeRecall, rep.LoggedFreezes, rep.TruthFreezes)
	}
	if rep.SelfShutdownRatio < 0.6 || rep.SelfShutdownRatio > 1.6 {
		t.Errorf("self-shutdown ratio %.3f, want within [0.6, 1.6]", rep.SelfShutdownRatio)
	}
	if got := len(fs.Dataset.Devices()); got != len(fs.Fleet.Devices) {
		t.Errorf("dataset holds %d devices, fleet has %d — a phone's log never survived the crashes",
			got, len(fs.Fleet.Devices))
	}
}
