package symbos

import "fmt"

// defaultHeapLimit is each process's heap quota in bytes. Symbian phones of
// the study era shipped with single-digit megabytes of RAM per application.
const defaultHeapLimit = 1 << 20

// Process is a Symbian process: an address space with one heap, an object
// index (handle table) and one or more threads.
type Process struct {
	name    string
	system  bool
	alive   bool
	kernel  *Kernel
	heap    *Heap
	objs    map[Handle]*KObject
	nextH   Handle
	main    *Thread
	threads []*Thread
}

// Name returns the process name (the application name in the logs).
func (p *Process) Name() string { return p.name }

// System reports whether this is a critical system server process.
func (p *Process) System() bool { return p.system }

// Alive reports whether the process is still running.
func (p *Process) Alive() bool { return p.alive }

// Heap returns the process heap.
func (p *Process) Heap() *Heap { return p.heap }

// Main returns the process's main thread.
func (p *Process) Main() *Thread { return p.main }

// Kernel returns the owning kernel.
func (p *Process) Kernel() *Kernel { return p.kernel }

// SpawnThread adds a thread to the process. Threads come with an active
// scheduler (CActiveScheduler::Install) and an installed cleanup stack
// (CTrapCleanup::New), matching what well-formed Symbian code does first
// thing; faults may explicitly remove the cleanup stack.
func (p *Process) SpawnThread(name string) *Thread {
	t := &Thread{
		name:             name,
		proc:             p,
		cleanupInstalled: true,
	}
	t.scheduler = newActiveScheduler(t)
	p.threads = append(p.threads, t)
	return t
}

// Thread is a Symbian thread: the lower, preemptively scheduled level of
// the two-level multitasking model. Active Objects run on its active
// scheduler. The simulation does not model instruction-level preemption;
// it models what matters to the study — which panics are raised where, and
// how long handlers monopolise the scheduler.
type Thread struct {
	name             string
	proc             *Process
	scheduler        *ActiveScheduler
	cleanup          []func()
	cleanupInstalled bool
	trapDepth        int
	viewSrvWatched   bool
}

// Name returns the thread name.
func (t *Thread) Name() string { return t.name }

// Process returns the owning process.
func (t *Thread) Process() *Process { return t.proc }

// Scheduler returns the thread's active scheduler.
func (t *Thread) Scheduler() *ActiveScheduler { return t.scheduler }

// WatchViewSrv marks the thread as hosting a View Server active object —
// i.e. it is a UI application the View Server monitors for responsiveness.
func (t *Thread) WatchViewSrv() { t.viewSrvWatched = true }

// DropCleanupStack removes the thread's trap cleanup (a modelled defect:
// the code path never called CTrapCleanup::New). The next PushL raises
// E32USER-CBase 69, as documented in Table 2.
func (t *Thread) DropCleanupStack() { t.cleanupInstalled = false }

// Trap executes fn under a trap harness (the TRAP macro). If fn leaves,
// Trap unwinds the cleanup stack to its depth at entry, destroying every
// item pushed inside the trap (this is how Symbian avoids leaks on error
// paths), and returns the leave code. Symbian panics are not caught — they
// propagate to the kernel's Exec boundary.
func (t *Thread) Trap(fn func()) (code int) {
	mark := len(t.cleanup)
	t.trapDepth++
	defer func() { t.trapDepth-- }()
	defer func() {
		r := recover()
		if r == nil {
			return
		}
		lv, ok := r.(leave)
		if !ok {
			panic(r)
		}
		t.unwindCleanup(mark)
		code = lv.code
	}()
	fn()
	return KErrNone
}

// Leave transfers control to the nearest enclosing trap with the given
// error code (User::Leave).
func (t *Thread) Leave(code int) {
	panic(leave{code: code})
}

// InTrap reports whether a trap harness is currently active.
func (t *Thread) InTrap() bool { return t.trapDepth > 0 }

// PushL pushes a cleanup item (CleanupStack::PushL). If the thread has no
// trap cleanup installed this raises E32USER-CBase 69.
func (t *Thread) PushL(destroy func()) {
	if !t.cleanupInstalled {
		t.proc.kernel.Raise(CatE32UserCBase, TypeNoTrapHandler,
			"cleanup stack used before CTrapCleanup::New()")
	}
	t.cleanup = append(t.cleanup, destroy)
}

// Pop removes the top n cleanup items without destroying them
// (CleanupStack::Pop).
func (t *Thread) Pop(n int) {
	if n < 0 || n > len(t.cleanup) {
		t.proc.kernel.Raise(CatE32UserCBase, TypeCBase91,
			fmt.Sprintf("cleanup stack pop of %d with depth %d", n, len(t.cleanup)))
	}
	t.cleanup = t.cleanup[:len(t.cleanup)-n]
}

// PopAndDestroy removes the top n cleanup items and runs their destructors
// (CleanupStack::PopAndDestroy).
func (t *Thread) PopAndDestroy(n int) {
	if n < 0 || n > len(t.cleanup) {
		t.proc.kernel.Raise(CatE32UserCBase, TypeCBase92,
			fmt.Sprintf("cleanup stack pop-and-destroy of %d with depth %d", n, len(t.cleanup)))
	}
	for i := 0; i < n; i++ {
		top := t.cleanup[len(t.cleanup)-1]
		t.cleanup = t.cleanup[:len(t.cleanup)-1]
		top()
	}
}

// CleanupDepth returns the number of items on the cleanup stack.
func (t *Thread) CleanupDepth() int { return len(t.cleanup) }

// unwindCleanup destroys items down to the given mark (leave processing).
func (t *Thread) unwindCleanup(mark int) {
	for len(t.cleanup) > mark {
		top := t.cleanup[len(t.cleanup)-1]
		t.cleanup = t.cleanup[:len(t.cleanup)-1]
		top()
	}
}
