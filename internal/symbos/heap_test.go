package symbos

import (
	"testing"
	"testing/quick"

	"symfail/internal/sim"
)

func TestHeapAllocFree(t *testing.T) {
	k, proc := newTestKernel(t)
	h := proc.Heap()
	k.Exec(proc.Main(), "alloc", func() {
		c := h.AllocL(proc.Main(), 100, "buf")
		if h.Allocated() != 100 || h.LiveCells() != 1 {
			t.Errorf("allocated=%d live=%d", h.Allocated(), h.LiveCells())
		}
		h.Free(c)
		if h.Allocated() != 0 || h.LiveCells() != 0 {
			t.Errorf("after free: allocated=%d live=%d", h.Allocated(), h.LiveCells())
		}
		if !c.Freed() {
			t.Error("cell not marked freed")
		}
	})
	allocs, frees := h.Counts()
	if allocs != 1 || frees != 1 {
		t.Errorf("counts = %d/%d", allocs, frees)
	}
}

func TestHeapExhaustionLeaves(t *testing.T) {
	k, proc := newTestKernel(t)
	h := proc.Heap()
	h.SetLimit(64)
	var code int
	k.Exec(proc.Main(), "oom", func() {
		code = proc.Main().Trap(func() {
			h.AllocL(proc.Main(), 65, "big")
		})
	})
	if code != KErrNoMemory {
		t.Errorf("leave code = %s", ErrName(code))
	}
	if h.Allocated() != 0 {
		t.Errorf("failed alloc leaked %d bytes", h.Allocated())
	}
}

func TestHeapDoubleFreeIsAccessViolation(t *testing.T) {
	k, proc := newTestKernel(t)
	h := proc.Heap()
	var c *Cell
	k.Exec(proc.Main(), "setup", func() {
		c = h.AllocL(proc.Main(), 10, "x")
		h.Free(c)
	})
	expectPanic(t, k, proc, CatKernExec, TypeUnhandledException, func() {
		h.Free(c)
	})
}

func TestHeapFreeNilIsNoop(t *testing.T) {
	k, proc := newTestKernel(t)
	if p := k.Exec(proc.Main(), "freenil", func() { proc.Heap().Free(nil) }); p != nil {
		t.Fatalf("User::Free(NULL) panicked: %v", p)
	}
}

func TestHeapForeignFreeIsAccessViolation(t *testing.T) {
	k, proc := newTestKernel(t)
	other := k.StartProcess("Other", false)
	var c *Cell
	k.Exec(other.Main(), "alloc", func() {
		c = other.Heap().AllocL(other.Main(), 8, "foreign")
	})
	expectPanic(t, k, proc, CatKernExec, TypeUnhandledException, func() {
		proc.Heap().Free(c)
	})
}

func TestHeapZeroSizeAllocPanics(t *testing.T) {
	k, proc := newTestKernel(t)
	expectPanic(t, k, proc, CatE32UserCBase, TypeCBase91, func() {
		proc.Heap().AllocL(proc.Main(), 0, "zero")
	})
}

func TestNullPtrDeref(t *testing.T) {
	k, proc := newTestKernel(t)
	p := NullPtr(k)
	if !p.Nil() || p.Dangling() {
		t.Error("null pointer misclassified")
	}
	expectPanic(t, k, proc, CatKernExec, TypeUnhandledException, func() { p.Deref() })
}

func TestDanglingPtrDeref(t *testing.T) {
	k, proc := newTestKernel(t)
	h := proc.Heap()
	var ptr Ptr
	k.Exec(proc.Main(), "setup", func() {
		c := h.AllocL(proc.Main(), 4, "d")
		ptr = PtrTo(k, c)
		if ptr.Deref() != c {
			t.Error("live pointer should deref to its cell")
		}
		h.Free(c)
	})
	if !ptr.Dangling() {
		t.Error("pointer should be dangling after free")
	}
	expectPanic(t, k, proc, CatKernExec, TypeUnhandledException, func() { ptr.Deref() })
}

func TestTwoPhaseConstructionSuccess(t *testing.T) {
	k, proc := newTestKernel(t)
	h := proc.Heap()
	k.Exec(proc.Main(), "2phase", func() {
		c := TwoPhaseConstructL(proc.Main(), h, 32, "obj", func(*Cell) {})
		if c.Freed() {
			t.Error("constructed object was freed")
		}
		if proc.Main().CleanupDepth() != 0 {
			t.Errorf("cleanup depth = %d after successful construction", proc.Main().CleanupDepth())
		}
		h.Free(c)
	})
}

func TestTwoPhaseConstructionLeaveFreesViaCleanupStack(t *testing.T) {
	// This is the exact scenario section 2 describes: "when errors occur
	// during the construction of an object, the dynamic extension is freed
	// using the clean-up stack mechanism".
	k, proc := newTestKernel(t)
	h := proc.Heap()
	k.Exec(proc.Main(), "2phase-fail", func() {
		main := proc.Main()
		code := main.Trap(func() {
			TwoPhaseConstructL(main, h, 32, "obj", func(*Cell) {
				main.Leave(KErrGeneral)
			})
		})
		if code != KErrGeneral {
			t.Errorf("leave code = %s", ErrName(code))
		}
		if h.Allocated() != 0 {
			t.Errorf("construction failure leaked %d bytes", h.Allocated())
		}
	})
}

func TestTrapUnwindsOnlyItemsPushedInsideTrap(t *testing.T) {
	k, proc := newTestKernel(t)
	main := proc.Main()
	destroyedOuter := false
	k.Exec(main, "nest", func() {
		main.PushL(func() { destroyedOuter = true })
		code := main.Trap(func() {
			main.PushL(func() {})
			main.Leave(KErrNotFound)
		})
		if code != KErrNotFound {
			t.Errorf("leave code = %s", ErrName(code))
		}
		if destroyedOuter {
			t.Error("trap destroyed an item pushed before the trap")
		}
		if main.CleanupDepth() != 1 {
			t.Errorf("cleanup depth = %d, want 1", main.CleanupDepth())
		}
		main.PopAndDestroy(1)
	})
	if !destroyedOuter {
		t.Error("PopAndDestroy did not run the destructor")
	}
}

func TestNestedTraps(t *testing.T) {
	k, proc := newTestKernel(t)
	main := proc.Main()
	k.Exec(main, "nested", func() {
		outer := main.Trap(func() {
			inner := main.Trap(func() { main.Leave(KErrOverflow) })
			if inner != KErrOverflow {
				t.Errorf("inner leave = %s", ErrName(inner))
			}
			main.Leave(KErrArgument)
		})
		if outer != KErrArgument {
			t.Errorf("outer leave = %s", ErrName(outer))
		}
		if main.InTrap() {
			t.Error("InTrap true outside all traps")
		}
	})
}

func TestPushLWithoutCleanupStackPanics(t *testing.T) {
	k, proc := newTestKernel(t)
	worker := proc.SpawnThread("worker")
	worker.DropCleanupStack()
	p := k.Exec(worker, "nocleanup", func() {
		worker.PushL(func() {})
	})
	if p == nil || p.Key() != "E32USER-CBase 69" {
		t.Fatalf("panic = %v, want E32USER-CBase 69", p)
	}
}

func TestCleanupPopUnderflowPanics(t *testing.T) {
	k, proc := newTestKernel(t)
	expectPanic(t, k, proc, CatE32UserCBase, TypeCBase91, func() {
		proc.Main().Pop(1)
	})
	expectPanic(t, k, proc, CatE32UserCBase, TypeCBase92, func() {
		proc.Main().PopAndDestroy(3)
	})
}

func TestHeapNeverLeaksUnderTrappedAllocationStorm(t *testing.T) {
	// Property: whatever interleaving of allocations, pushes and leaves a
	// trapped workload performs, a leave never strands bytes that were
	// protected by the cleanup stack.
	f := func(seed uint64) bool {
		eng := sim.NewEngine()
		k := NewKernel(eng)
		proc := k.StartProcess("Prop", false)
		main := proc.Main()
		r := sim.NewRand(seed)
		ok := true
		k.Exec(main, "storm", func() {
			main.Trap(func() {
				for i := 0; i < 50; i++ {
					c := proc.Heap().AllocL(main, 1+r.Intn(64), "s")
					main.PushL(func() { proc.Heap().Free(c) })
					if r.Bool(0.05) {
						main.Leave(KErrGeneral)
					}
				}
				main.PopAndDestroy(50)
			})
			ok = proc.Heap().Allocated() == 0
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
