package symfail_test

import (
	"fmt"
	"time"

	"symfail"
	"symfail/internal/core"
	"symfail/internal/forum"
	"symfail/internal/phone"
	"symfail/internal/sim"
	"symfail/internal/symbos"
)

// ExampleRunFieldStudy runs a small deterministic deployment and prints
// stable facts about it.
func ExampleRunFieldStudy() {
	study, err := symfail.RunFieldStudy(symfail.FieldStudyConfig{
		Seed:       1,
		Phones:     3,
		Duration:   30 * 24 * time.Hour,
		JoinWindow: 0,
	})
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	fmt.Println("phones:", len(study.Fleet.Devices))
	fmt.Println("logs collected:", len(study.Dataset.Devices()))
	// Output:
	// phones: 3
	// logs collected: 3
}

// ExampleInstall shows the single-device quickstart: instrument, simulate,
// read the Log File.
func ExampleInstall() {
	eng := sim.NewEngine()
	cfg := phone.DefaultConfig(7)
	cfg.PanicOpportunityPerHour = 0
	cfg.SpontaneousFreezePerHour = 0
	cfg.SpontaneousShutdownPerHour = 0
	cfg.NightOffProb = 0
	cfg.DayOffPerHour = 0
	dev := phone.NewDevice("demo", eng, cfg)
	logger := core.Install(dev, core.Config{})
	dev.Enroll(sim.Epoch)
	if err := eng.Run(sim.Epoch.Add(24 * time.Hour)); err != nil {
		fmt.Println("error:", err)
		return
	}
	recs := logger.Records()
	fmt.Println("first record:", recs[0].Kind, recs[0].Detected)
	// Output:
	// first record: boot first-boot
}

// ExampleClassify labels one of the paper's verbatim forum reports.
func ExampleClassify() {
	c := forum.Classify(forum.Post{
		Text: "the phone freezes whenever I try to write a text message, and stays frozen until I take the battery out",
	})
	fmt.Println(c.Type, "/", c.Recovery, "/", c.Severity)
	// Output:
	// freeze / battery-removal / medium
}

// ExampleMeaning looks up the Symbian documentation excerpt for the
// dominant panic of Table 2.
func ExampleMeaning() {
	m := symbos.Meaning(symbos.CatKernExec, symbos.TypeUnhandledException)
	fmt.Println(m[:24])
	// Output:
	// an unhandled exception o
}

// ExampleParseRecords parses a Log File fragment, skipping a torn line.
func ExampleParseRecords() {
	log := []byte(`{"kind":"boot","time":0,"boot":1,"detected":"first-boot"}
{"kind":"panic","time":5,"category":"USER","ptype":11}
{"kind":"boot","ti`) // torn by power loss
	for _, r := range core.ParseRecords(log) {
		if r.Kind == core.KindPanic {
			fmt.Println(r.PanicKey())
		} else {
			fmt.Println(r.Kind, r.Detected)
		}
	}
	// Output:
	// boot first-boot
	// USER 11
}
