package lint

import (
	"go/ast"
	"go/types"
)

// ErrDropConfig anchors the errdrop analyzer to the module's durability
// APIs. The critical-call set is derived from these references at analysis
// time — methods are enumerated from the named types' method sets, not
// hard-coded — so a durability API growing a new fallible operation is
// covered automatically.
type ErrDropConfig struct {
	// StoreTypes are the durable-medium types (structs or interfaces).
	// Every method on one of them that accepts payload bytes ([]byte) and
	// reports acceptance through a final bool or error result is a
	// durability-critical call.
	StoreTypes []TypeRef
	// ResultTypes are result types that carry a recovery or durability
	// outcome; any function returning one is a durability-critical call
	// regardless of where it is declared.
	ResultTypes []TypeRef
}

// DefaultErrDropConfig matches the symfail module: the collection tier's
// crash-faithful store, the phone's flash filesystem and the Symbian file
// server's medium interface, plus the framed-log recovery outcome.
var DefaultErrDropConfig = ErrDropConfig{
	StoreTypes: []TypeRef{
		{Pkg: "symfail/internal/collect", Name: "CrashStore"},
		{Pkg: "symfail/internal/phone", Name: "FS"},
		{Pkg: "symfail/internal/symbos", Name: "Store"},
	},
	ResultTypes: []TypeRef{
		{Pkg: "symfail/internal/core", Name: "Recovery"},
	},
}

// NewErrDrop builds the errdrop analyzer: the result of a
// durability-critical call must not be discarded. A dropped Write/Append
// bool is a record silently lost on a full flash; a dropped Recovery is a
// salvage/loss tally the boot record never sees. Three discard forms are
// flagged: a critical call as a bare expression statement, as the operand
// of go/defer, and an assignment that sends every critical result to the
// blank identifier.
//
// The critical set is closed over wrappers through the call graph: an
// analyzed function whose final result is bool or error and whose return
// statements hand back a critical call's result directly is itself
// critical, so `persist(...)` cannot launder `fs.Append(...)`.
func NewErrDrop(cfg ErrDropConfig) *Analyzer {
	if cfg.StoreTypes == nil && cfg.ResultTypes == nil {
		cfg = DefaultErrDropConfig
	}
	a := &Analyzer{
		Name: "errdrop",
		Doc:  "forbid discarding durability-critical results (store write/append acceptance, sync outcomes, log-recovery tallies)",
	}
	a.Run = func(pass *Pass) {
		critical := criticalSet(pass, cfg)
		for _, f := range pass.Pkg.Files {
			checkErrDropFile(pass, f, critical)
		}
	}
	return a
}

// criticalSet derives the durability-critical functions visible to this
// run: base calls from the configured APIs, closed over direct-return
// wrappers via the call graph. The set is computed once per Run and cached
// on the graph's run state through memoization on the pass.
func criticalSet(pass *Pass, cfg ErrDropConfig) map[*types.Func]bool {
	g := pass.Graph()
	critical := make(map[*types.Func]bool)
	isBase := func(fn *types.Func) bool {
		sig, ok := fn.Type().(*types.Signature)
		if !ok {
			return false
		}
		for i := 0; i < sig.Results().Len(); i++ {
			if matchesRef(sig.Results().At(i).Type(), cfg.ResultTypes) {
				return true
			}
		}
		if sig.Recv() == nil || !matchesRef(sig.Recv().Type(), cfg.StoreTypes) {
			return false
		}
		if !hasFinalBoolOrError(sig) {
			return false
		}
		for i := 0; i < sig.Params().Len(); i++ {
			if isByteSlice(sig.Params().At(i).Type()) {
				return true
			}
		}
		return false
	}
	// Seed with every function the graph saw (declared or external leaf).
	for _, n := range g.Nodes() {
		if isBase(n.Fn) {
			critical[n.Fn] = true
		}
		for _, e := range n.Calls {
			if isBase(e.Callee.Fn) {
				critical[e.Callee.Fn] = true
			}
		}
	}
	// Close over wrappers: a bool/error-returning function whose return
	// statement directly hands back a critical call. Iterate to fixpoint.
	for changed := true; changed; {
		changed = false
		for _, n := range g.Nodes() {
			if critical[n.Fn] || n.Decl.Body == nil {
				continue
			}
			sig, ok := n.Fn.Type().(*types.Signature)
			if !ok || !hasFinalBoolOrError(sig) {
				continue
			}
			if returnsCriticalCall(n, critical) {
				critical[n.Fn] = true
				changed = true
			}
		}
	}
	return critical
}

// returnsCriticalCall reports whether any return statement in n's body
// returns the result of a critical call directly.
func returnsCriticalCall(n *CGNode, critical map[*types.Func]bool) bool {
	found := false
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if found {
			return false
		}
		ret, ok := node.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			call, ok := ast.Unparen(res).(*ast.CallExpr)
			if !ok {
				continue
			}
			if fn := calleeOf(n.Pkg.Info, call); fn != nil && critical[fn] {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func hasFinalBoolOrError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	t := res.At(res.Len() - 1).Type()
	if basic, ok := t.Underlying().(*types.Basic); ok && basic.Kind() == types.Bool {
		return true
	}
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

func isByteSlice(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	basic, ok := s.Elem().Underlying().(*types.Basic)
	return ok && basic.Kind() == types.Byte
}

func checkErrDropFile(pass *Pass, f *ast.File, critical map[*types.Func]bool) {
	info := pass.Pkg.Info
	criticalCall := func(e ast.Expr) *types.Func {
		call, ok := ast.Unparen(e).(*ast.CallExpr)
		if !ok {
			return nil
		}
		if fn := calleeOf(info, call); fn != nil && critical[fn] {
			return fn
		}
		return nil
	}
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if fn := criticalCall(n.X); fn != nil {
				pass.Reportf(n.Pos(), "result of %s discarded: durability-critical outcomes must be checked or explicitly allowed", shortFuncName(fn))
			}
		case *ast.GoStmt:
			if fn := calleeOf(info, n.Call); fn != nil && critical[fn] {
				pass.Reportf(n.Pos(), "result of %s discarded by go statement: durability-critical outcomes must be checked or explicitly allowed", shortFuncName(fn))
			}
		case *ast.DeferStmt:
			if fn := calleeOf(info, n.Call); fn != nil && critical[fn] {
				pass.Reportf(n.Pos(), "result of %s discarded by defer: durability-critical outcomes must be checked or explicitly allowed", shortFuncName(fn))
			}
		case *ast.AssignStmt:
			checkErrDropAssign(pass, n, criticalCall)
		}
		return true
	})
}

// checkErrDropAssign flags `_ = criticalCall(...)` and multi-assign forms
// where every result of interest lands in the blank identifier. For a
// single critical call on the right-hand side of a tuple assignment
// (`v, ok := fs.Read(...)` style), only the final bool/error position and
// any critical-result-typed positions count as "of interest".
func checkErrDropAssign(pass *Pass, as *ast.AssignStmt, criticalCall func(ast.Expr) *types.Func) {
	isBlank := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "_"
	}
	if len(as.Rhs) == 1 && len(as.Lhs) > 1 {
		// Tuple assignment from one call: critical iff the final result
		// position is blank (that is where acceptance is reported).
		fn := criticalCall(as.Rhs[0])
		if fn == nil {
			return
		}
		if isBlank(as.Lhs[len(as.Lhs)-1]) {
			pass.Reportf(as.Pos(), "final result of %s assigned to _: durability-critical outcomes must be checked or explicitly allowed", shortFuncName(fn))
		}
		return
	}
	for i, rhs := range as.Rhs {
		if i >= len(as.Lhs) || !isBlank(as.Lhs[i]) {
			continue
		}
		if fn := criticalCall(rhs); fn != nil {
			pass.Reportf(as.Pos(), "result of %s assigned to _: durability-critical outcomes must be checked or explicitly allowed", shortFuncName(fn))
		}
	}
}
