// Package report renders the reproduction's tables and figures as aligned
// text, one renderer per table/figure of the paper. The cmd tools and the
// benchmark harness print these.
package report

import (
	"fmt"
	"sort"
	"strings"
)

// Table renders an aligned ASCII table.
func Table(title string, headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// Pct formats a percentage the way the paper's tables do.
func Pct(v float64) string {
	if v == 0 {
		return "."
	}
	return fmt.Sprintf("%.2f", v)
}

// F1 formats a float with one decimal.
func F1(v float64) string { return fmt.Sprintf("%.1f", v) }

// Bar renders a proportional hash bar.
func Bar(value, max float64, width int) string {
	if max <= 0 || value <= 0 {
		return ""
	}
	n := int(value / max * float64(width))
	if n < 1 {
		n = 1
	}
	if n > width {
		n = width
	}
	return strings.Repeat("#", n)
}

// IntHistogram renders a map[int]int distribution (e.g. Figure 3's burst
// sizes, Figure 6's running applications) with percentage bars.
func IntHistogram(title, xlabel string, counts map[int]int, width int) string {
	keys := make([]int, 0, len(counts))
	total := 0
	for k, v := range counts {
		keys = append(keys, k)
		total += v
	}
	sort.Ints(keys)
	var b strings.Builder
	if title != "" {
		fmt.Fprintf(&b, "%s\n", title)
	}
	max := 0
	for _, v := range counts {
		if v > max {
			max = v
		}
	}
	for _, k := range keys {
		v := counts[k]
		pct := 0.0
		if total > 0 {
			pct = 100 * float64(v) / float64(total)
		}
		fmt.Fprintf(&b, "%s=%-4d %6d (%5.1f%%) %s\n", xlabel, k, v, pct, Bar(float64(v), float64(max), width))
	}
	return b.String()
}
