// Package analysis implements the paper's failure-data analysis pipeline on
// collected logger datasets: self-shutdown identification by
// reboot-duration thresholding (Figure 2), MTBF estimation (section 6),
// panic classification (Table 2), panic-burst detection (Figure 3),
// panic/high-level-event coalescence (Figures 4 and 5), panic-activity
// correlation (Table 3), and running-application correlation (Figure 6 and
// Table 4).
//
// The pipeline consumes only what the logger recorded — the same position
// the paper's authors were in. The simulator's oracle is used exclusively
// by tests to validate the pipeline.
package analysis

import (
	"sort"
	"time"

	"symfail/internal/core"
	"symfail/internal/sim"
)

// Options tunes the analysis thresholds, defaulting to the paper's choices.
type Options struct {
	// SelfShutdownThreshold separates self-shutdowns (short automatic
	// reboots) from user-triggered power cycles. The paper picks 360 s
	// after inspecting Figure 2.
	SelfShutdownThreshold time.Duration
	// CoalescenceWindow groups panics with high-level events. The paper
	// picks five minutes after the window sweep of Figure 4.
	CoalescenceWindow time.Duration
	// BurstWindow groups panics into cascades: two panics closer than the
	// window belong to the same burst.
	BurstWindow time.Duration
}

// DefaultOptions returns the paper's thresholds.
func DefaultOptions() Options {
	return Options{
		SelfShutdownThreshold: 360 * time.Second,
		CoalescenceWindow:     5 * time.Minute,
		BurstWindow:           2 * time.Minute,
	}
}

func (o Options) withDefaults() Options {
	d := DefaultOptions()
	if o.SelfShutdownThreshold <= 0 {
		o.SelfShutdownThreshold = d.SelfShutdownThreshold
	}
	if o.CoalescenceWindow <= 0 {
		o.CoalescenceWindow = d.CoalescenceWindow
	}
	if o.BurstWindow <= 0 {
		o.BurstWindow = d.BurstWindow
	}
	return o
}

// HLKind classifies high-level (user-perceived) failure events.
type HLKind string

// High-level event kinds. UserShutdown is not a failure; it is kept so the
// "include all shutdown events" robustness check of section 6 can run.
const (
	HLFreeze       HLKind = "freeze"
	HLSelfShutdown HLKind = "self-shutdown"
	HLUserShutdown HLKind = "user-shutdown"
)

// HLEvent is one reconstructed high-level event.
type HLEvent struct {
	Device     string
	Kind       HLKind
	Time       sim.Time // when the phone went down (last heartbeat record)
	OffSeconds float64  // reboot duration observed at the following boot
}

// PanicEvent is one panic record enriched by the pipeline.
type PanicEvent struct {
	Device   string
	Time     sim.Time
	Category string
	Type     int
	Apps     []string
	Activity string

	// Burst is the 1-based index of the cascade this panic belongs to
	// (unique per device); BurstLen is the cascade size.
	Burst    int
	BurstLen int
	// Related points at the coalesced high-level event, nil if isolated.
	Related *HLEvent
}

// Key returns the "category type" identity used by the tables.
func (p *PanicEvent) Key() string {
	return core.Record{Kind: core.KindPanic, Category: p.Category, PType: p.Type}.PanicKey()
}

// Study is a parsed, per-device-ordered dataset with derived events.
type Study struct {
	opts Options

	deviceIDs []string
	// Per-device, time-ordered.
	hlByDevice     map[string][]*HLEvent
	panicsByDevice map[string][]*PanicEvent
	// Reboot durations of every orderly shutdown (Figure 2's data set).
	rebootDurations []float64
	// lowBattery / loggerOff boots, excluded from the failure data.
	explainedShutdowns int
	// Uptime estimate per device, in hours.
	uptime map[string]float64
}

// New builds a study from collected per-device records, computing derived
// events, bursts and coalescence once.
func New(dataset map[string][]core.Record, opts Options) *Study {
	s := &Study{
		opts:           opts.withDefaults(),
		hlByDevice:     make(map[string][]*HLEvent),
		panicsByDevice: make(map[string][]*PanicEvent),
		uptime:         make(map[string]float64),
	}
	for id := range dataset {
		s.deviceIDs = append(s.deviceIDs, id)
	}
	sort.Strings(s.deviceIDs)
	for _, id := range s.deviceIDs {
		s.ingest(id, dataset[id])
	}
	for _, id := range s.deviceIDs {
		s.markBursts(id)
		s.coalesce(id, s.opts.CoalescenceWindow, false)
	}
	return s
}

// ingest derives HL events, panics, reboot durations and uptime from one
// device's records.
func (s *Study) ingest(id string, recs []core.Record) {
	ordered := append([]core.Record(nil), recs...)
	sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Time < ordered[j].Time })

	var sessionStart sim.Time = sim.Never
	var lastSeen sim.Time
	for _, r := range ordered {
		if r.Time > int64(lastSeen) {
			lastSeen = sim.Time(r.Time)
		}
		switch r.Kind {
		case core.KindPanic:
			s.panicsByDevice[id] = append(s.panicsByDevice[id], &PanicEvent{
				Device:   id,
				Time:     r.When(),
				Category: r.Category,
				Type:     r.PType,
				Apps:     r.Apps,
				Activity: r.Activity,
			})
		case core.KindBoot:
			// Close the previous session for the uptime estimate.
			if sessionStart != sim.Never && r.PrevTime > int64(sessionStart) {
				s.uptime[id] += sim.Time(r.PrevTime).Sub(sessionStart).Hours()
			}
			sessionStart = r.When()
			switch r.Detected {
			case core.DetectedFreeze:
				s.hlByDevice[id] = append(s.hlByDevice[id], &HLEvent{
					Device: id, Kind: HLFreeze, Time: sim.Time(r.PrevTime), OffSeconds: r.OffSeconds,
				})
			case core.DetectedShutdown:
				s.rebootDurations = append(s.rebootDurations, r.OffSeconds)
				kind := HLUserShutdown
				if r.OffSeconds <= s.opts.SelfShutdownThreshold.Seconds() {
					kind = HLSelfShutdown
				}
				s.hlByDevice[id] = append(s.hlByDevice[id], &HLEvent{
					Device: id, Kind: kind, Time: sim.Time(r.PrevTime), OffSeconds: r.OffSeconds,
				})
			case core.DetectedLowBattery, core.DetectedLoggerOff:
				s.explainedShutdowns++
			}
		}
	}
	// The final session runs until the last record seen.
	if sessionStart != sim.Never && lastSeen > sessionStart {
		s.uptime[id] += lastSeen.Sub(sessionStart).Hours()
	}
	sort.SliceStable(s.hlByDevice[id], func(i, j int) bool {
		return s.hlByDevice[id][i].Time < s.hlByDevice[id][j].Time
	})
}

// markBursts groups each device's panics into cascades: consecutive panics
// closer than the burst window share a burst.
func (s *Study) markBursts(id string) {
	panics := s.panicsByDevice[id]
	burst := 0
	for i := range panics {
		if i == 0 || panics[i].Time.Sub(panics[i-1].Time) > s.opts.BurstWindow {
			burst++
		}
		panics[i].Burst = burst
	}
	sizes := make(map[int]int)
	for _, p := range panics {
		sizes[p.Burst]++
	}
	for _, p := range panics {
		p.BurstLen = sizes[p.Burst]
	}
}

// coalesce relates each panic to the nearest high-level event within the
// window (Figure 4's scheme). With includeUser true, user shutdowns count
// as high-level events too — the robustness check of section 6.
func (s *Study) coalesce(id string, window time.Duration, includeUser bool) {
	hls := s.hlByDevice[id]
	for _, p := range s.panicsByDevice[id] {
		p.Related = nil
		var best *HLEvent
		var bestGap time.Duration
		for _, hl := range hls {
			if hl.Kind == HLUserShutdown && !includeUser {
				continue
			}
			gap := hl.Time.Sub(p.Time)
			if gap < 0 {
				gap = -gap
			}
			if gap <= window && (best == nil || gap < bestGap) {
				best = hl
				bestGap = gap
			}
		}
		p.Related = best
	}
}

// Devices returns the device IDs in the study.
func (s *Study) Devices() []string { return append([]string(nil), s.deviceIDs...) }

// Options returns the thresholds in use.
func (s *Study) Options() Options { return s.opts }

// Panics returns every panic event, ordered by device then time.
func (s *Study) Panics() []*PanicEvent {
	var out []*PanicEvent
	for _, id := range s.deviceIDs {
		out = append(out, s.panicsByDevice[id]...)
	}
	return out
}

// HLEvents returns every high-level event of the given kinds (all kinds
// when none specified), ordered by device then time.
func (s *Study) HLEvents(kinds ...HLKind) []*HLEvent {
	want := make(map[HLKind]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	var out []*HLEvent
	for _, id := range s.deviceIDs {
		for _, hl := range s.hlByDevice[id] {
			if len(kinds) == 0 || want[hl.Kind] {
				out = append(out, hl)
			}
		}
	}
	return out
}

// RebootDurations returns the reboot duration (seconds) of every orderly
// shutdown event — the data behind Figure 2.
func (s *Study) RebootDurations() []float64 {
	return append([]float64(nil), s.rebootDurations...)
}

// RebootHistogram bins the reboot durations (Figure 2); lo/hi in seconds.
func (s *Study) RebootHistogram(lo, hi float64, bins int) *sim.Histogram {
	h := sim.NewHistogram(lo, hi, bins)
	for _, v := range s.rebootDurations {
		h.Add(v)
	}
	return h
}

// ExplainedShutdowns returns the count of low-battery and logger-off boots.
func (s *Study) ExplainedShutdowns() int { return s.explainedShutdowns }

// UptimeHours returns the estimated powered-on hours, per device and total.
func (s *Study) UptimeHours() (perDevice map[string]float64, total float64) {
	perDevice = make(map[string]float64, len(s.uptime))
	// Sum in sorted device order so the floating-point total is
	// deterministic across runs.
	for _, id := range s.deviceIDs {
		h := s.uptime[id]
		perDevice[id] = h
		total += h
	}
	return perDevice, total
}

// MTBFReport is the section 6 headline: mean time between freezes, between
// self-shutdowns, and between failures of either kind.
type MTBFReport struct {
	ObservedHours float64
	Freezes       int
	SelfShutdowns int
	MTBFrHours    float64 // mean time between freezes
	MTBSHours     float64 // mean time between self-shutdowns
	MTBFHours     float64 // mean time between failures (either)
	// FailureEveryDays is the user-facing phrasing ("a failure every 11
	// days"), computed the way the paper phrases it: the average of the
	// per-kind inter-failure times, in days.
	FailureEveryDays float64
}

// MTBF computes the study's failure-rate headline.
func (s *Study) MTBF() MTBFReport {
	_, hours := s.UptimeHours()
	freezes := len(s.HLEvents(HLFreeze))
	shutdowns := len(s.HLEvents(HLSelfShutdown))
	rep := MTBFReport{ObservedHours: hours, Freezes: freezes, SelfShutdowns: shutdowns}
	if freezes > 0 {
		rep.MTBFrHours = hours / float64(freezes)
	}
	if shutdowns > 0 {
		rep.MTBSHours = hours / float64(shutdowns)
	}
	if freezes+shutdowns > 0 {
		rep.MTBFHours = hours / float64(freezes+shutdowns)
	}
	if rep.MTBFrHours > 0 && rep.MTBSHours > 0 {
		rep.FailureEveryDays = (rep.MTBFrHours + rep.MTBSHours) / 2 / 24
	}
	return rep
}
