// Package handofffix exercises the ackorder analyzer on the fleet's
// handoff path: a peer accepting a HANDOFF verb is accepting custody of
// records another shard already acknowledged, so its OK must follow the
// WAL append+sync exactly like a first-hand upload's — a handoff acked
// from memory evaporates if the receiving shard dies next.
package handofffix

import (
	"fmt"
	"net"
)

// WAL stands in for the receiving shard's CrashStore.
type WAL struct{}

func (w *WAL) Append(name string, rec []byte) {}
func (w *WAL) Sync(name string)               {}

type peer struct {
	wal *WAL
}

// Good: the migrated payload is durable before the donor hears OK.
func (p *peer) handleHandoffGood(conn net.Conn, dev string, payload []byte) {
	p.wal.Append(dev, payload)
	p.wal.Sync(dev)
	fmt.Fprint(conn, "OK\n")
}

// Bad: the donor is told OK while the payload is still in memory; if this
// shard dies before the sync, both copies of the handed-off records are
// gone — the donor believes custody transferred.
func (p *peer) handleHandoffEarlyAck(conn net.Conn, dev string, payload []byte) {
	p.wal.Append(dev, payload)
	fmt.Fprint(conn, "OK\n") // want: reply before sync
	p.wal.Sync(dev)
}

// Bad on the second device onward: the migration loop acknowledges each
// device, then the next append trails that reply — the OK on the wire
// cannot cover records appended after it.
func (p *peer) replicateLoop(conn net.Conn, devs []string, payloads map[string][]byte) {
	for _, dev := range devs {
		p.wal.Append(dev, payloads[dev]) // want: append after first-iteration reply
		p.wal.Sync(dev)
		fmt.Fprint(conn, "OK\n")
	}
}

// commit is the real handler's boolean-correlated idiom: the crashed path
// returns false with the append possibly unsynced.
func (p *peer) commit(dev string, payload []byte, crashed bool) bool {
	p.wal.Append(dev, payload)
	if crashed {
		return false
	}
	p.wal.Sync(dev)
	return true
}

// Good: only the synced path acknowledges the handoff.
func (p *peer) handleViaCommit(conn net.Conn, dev string, payload []byte, crashed bool) {
	if !p.commit(dev, payload, crashed) {
		return
	}
	fmt.Fprint(conn, "OK\n")
}

// Good: the live-stream-outranks skip — a stale handoff is acknowledged
// without committing anything, and an OK that covers no append needs no
// sync before it.
func (p *peer) handleOutranked(conn net.Conn, dev string) {
	fmt.Fprint(conn, "OK skipped\n")
}
