// Package symbos is a behavioural simulator of the Symbian OS mechanisms the
// paper's failure study depends on: the micro-kernel object index and
// handles, the preemptive thread / non-preemptive Active Object two-level
// multitasking model, the heap with cleanup stack and trap-leave memory
// management, 16-bit variant descriptors, the client/server IPC framework,
// and — centrally — the panic machinery: every panic category and type that
// appears in Table 2 of the paper is raised by the same API misuse that
// raises it on a real phone (a dangling handle, an over-long descriptor
// copy, a stray signal, ...), not by sampling a label.
//
// The simulator is driven entirely by virtual time (package sim); no
// goroutines and no wall clock are involved.
package symbos

import (
	"fmt"

	"symfail/internal/sim"
)

// Category is a Symbian panic category string, as delivered to the kernel
// alongside the panic type.
type Category string

// The panic categories observed in the paper's Table 2.
const (
	CatKernExec       Category = "KERN-EXEC"
	CatKernSvr        Category = "KERN-SVR"
	CatE32UserCBase   Category = "E32USER-CBase"
	CatUser           Category = "USER"
	CatViewSrv        Category = "ViewSrv"
	CatEikonListbox   Category = "EIKON-LISTBOX"
	CatEikCoCtl       Category = "EIKCOCTL"
	CatPhoneApp       Category = "Phone.app"
	CatMsgsClient     Category = "MSGS Client"
	CatMMFAudioClient Category = "MMFAudioClient"
)

// Panic types within the categories above, named after the condition that
// raises them. The numeric values match the Symbian OS documentation quoted
// in the paper.
const (
	// KERN-EXEC types.
	TypeBadHandle          = 0  // object not found in the object index
	TypeUnhandledException = 3  // access violation, e.g. dereferencing NULL
	TypeTimerInUse         = 15 // timer event requested while one outstanding

	// E32USER-CBase types.
	TypeObjectRefsRemain = 33 // CObject destroyed with non-zero ref count
	TypeStraySignal      = 46 // completion for a non-active active object
	TypeRunLLeft         = 47 // RunL left and Error() was not replaced
	TypeNoTrapHandler    = 69 // cleanup stack used before CTrapCleanup::New
	TypeCBase91          = 91 // undocumented internal CBase assertion
	TypeCBase92          = 92 // undocumented internal CBase assertion

	// USER types.
	TypeDesIndexOutOfRange = 10 // descriptor position out of bounds
	TypeDesOverflow        = 11 // descriptor exceeds its maximum length
	TypeNullMessageHandle  = 70 // completing a request via null RMessagePtr

	// KERN-SVR types.
	TypeSvrBadHandle = 0 // Close() on a kernel object that cannot be found

	// ViewSrv types.
	TypeViewSrvStarved = 11 // an event handler monopolised the scheduler

	// EIKON-LISTBOX types.
	TypeListboxNoView       = 3 // no view defined to display the list box
	TypeListboxInvalidIndex = 5 // invalid current item index

	// Phone.app types.
	TypePhoneAppInternal = 2 // undocumented telephony assertion

	// EIKCOCTL types.
	TypeEdwinCorrupt = 70 // corrupt edwin state during inline editing

	// MSGS Client types.
	TypeMsgsAsyncWrite = 3 // failed writing into an async call descriptor

	// MMFAudioClient types.
	TypeVolumeOutOfRange = 4 // SetVolume(TInt) called with value >= 10
)

// Panic is a non-recoverable error condition signalled to the kernel by a
// user or system application, together with the context the kernel records.
type Panic struct {
	Category Category
	Type     int
	Reason   string
	Time     sim.Time
	Process  string // panicking process (application) name
	Thread   string // panicking thread name
	System   bool   // true when raised inside a system server process
}

// Error makes *Panic usable as an error at simulation boundaries.
func (p *Panic) Error() string {
	return fmt.Sprintf("panic %s %d in %s/%s at %s: %s",
		p.Category, p.Type, p.Process, p.Thread, p.Time, p.Reason)
}

// Key returns the "category type" identifier used throughout the analysis,
// e.g. "KERN-EXEC 3".
func (p *Panic) Key() string { return PanicKey(p.Category, p.Type) }

// PanicKey formats a category/type pair the way the paper's tables do.
func PanicKey(cat Category, typ int) string { return fmt.Sprintf("%s %d", cat, typ) }

// Meaning returns the Symbian OS documentation excerpt for a panic
// category/type, as reproduced in Table 2 of the paper. Unknown pairs get
// "not documented", which is also what the paper reports for some types.
func Meaning(cat Category, typ int) string {
	if m, ok := meanings[PanicKey(cat, typ)]; ok {
		return m
	}
	return "not documented"
}

var meanings = map[string]string{
	"KERN-EXEC 0":      "the Kernel Executive cannot find an object in the object index for the current process or thread using the specified object index number (the raw handle number)",
	"KERN-EXEC 3":      "an unhandled exception occurred; the most common causes are access violations such as dereferencing NULL",
	"KERN-EXEC 15":     "a timer event was requested from an asynchronous timer service (RTimer) while a timer event is already outstanding",
	"E32USER-CBase 33": "raised by the destructor of a CObject when an attempt is made to delete it while the reference count is not zero",
	"E32USER-CBase 46": "raised by an active scheduler on a stray signal",
	"E32USER-CBase 47": "raised by the Error() virtual member function of an active scheduler when an active object's RunL() function leaves and Error() was not replaced",
	"E32USER-CBase 69": "raised if no trap handler has been installed; in practice CTrapCleanup::New() has not been called before using the cleanup stack",
	"USER 10":          "the position value passed to a 16-bit variant descriptor member function is out of bounds",
	"USER 11":          "an operation moving or copying data to a 16-bit variant descriptor caused its length to exceed its maximum length",
	"USER 70":          "attempted to complete a client/server request when the RMessagePtr is null",
	"KERN-SVR 0":       "raised by the Kernel Server when it attempts to close a kernel object that cannot be found; the most likely cause is a corrupt handle",
	"ViewSrv 11":       "an active object's event handler monopolised the thread's active scheduler loop and the application's ViewSrv active object could not respond in time",
	"EIKON-LISTBOX 3":  "a listbox object from the eikon framework is used and no view is defined to display the object",
	"EIKON-LISTBOX 5":  "a listbox object from the eikon framework is used and an invalid Current Item Index is specified",
	"EIKCOCTL 70":      "corrupt edwin state for inline editing",
	"MSGS Client 3":    "failed to write data into an asynchronous call descriptor to be passed back to the client",
	"MMFAudioClient 4": "the TInt value passed to SetVolume(TInt) is 10 or more",
	"Phone.app 2":      "not documented",
	"E32USER-CBase 91": "not documented",
	"E32USER-CBase 92": "not documented",
}
