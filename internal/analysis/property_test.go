package analysis

import (
	"testing"
	"testing/quick"
	"time"

	"symfail/internal/core"
	"symfail/internal/sim"
)

// randomDataset builds a random-but-plausible per-device record set.
func randomDataset(seed uint64) map[string][]core.Record {
	r := sim.NewRand(seed)
	ds := make(map[string][]core.Record)
	devices := 1 + r.Intn(4)
	for d := 0; d < devices; d++ {
		id := string(rune('a' + d))
		recs := []core.Record{{Kind: core.KindBoot, Time: 0, Boot: 1, Detected: core.DetectedFirstBoot}}
		now := sim.Epoch
		boot := 1
		for i := 0; i < 5+r.Intn(40); i++ {
			now = now.Add(time.Duration(r.Exp(float64(6 * time.Hour))))
			if r.Bool(0.4) {
				recs = append(recs, core.Record{
					Kind: core.KindPanic, Time: int64(now),
					Category: []string{"KERN-EXEC", "USER", "E32USER-CBase"}[r.Intn(3)],
					PType:    r.Intn(100),
					Activity: []string{"voice-call", "message", "unspecified"}[r.Intn(3)],
					Apps:     []string{"Messages"}[:r.Intn(2)],
				})
				continue
			}
			boot++
			off := r.Exp(float64(10 * time.Minute))
			detected := core.DetectedShutdown
			prev := core.BeatReboot
			if r.Bool(0.3) {
				detected = core.DetectedFreeze
				prev = core.BeatAlive
			}
			bootAt := now.Add(time.Duration(off))
			recs = append(recs, core.Record{
				Kind: core.KindBoot, Time: int64(bootAt), Boot: boot,
				Detected: detected, PrevBeat: prev, PrevTime: int64(now),
				OffSeconds: time.Duration(off).Seconds(),
			})
			now = bootAt
		}
		ds[id] = recs
	}
	return ds
}

func TestPropertyCoalescenceInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(randomDataset(seed), Options{})
		st := s.Coalesce()
		if st.RelatedPanics > st.TotalPanics {
			return false
		}
		if st.ToFreeze+st.ToSelfShutdown != st.RelatedPanics {
			return false
		}
		// Per-category counts sum to the totals.
		var rel, tot int
		for _, rc := range st.ByCategory {
			rel += rc.Related
			tot += rc.Total
		}
		return rel == st.RelatedPanics && tot == st.TotalPanics
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyBurstPartition(t *testing.T) {
	// Bursts partition the panics: the burst sizes, weighted by count,
	// sum to the total number of panics.
	f := func(seed uint64) bool {
		s := New(randomDataset(seed), Options{})
		st := s.Bursts()
		sum := 0
		for size, count := range st.SizeCounts {
			sum += size * count
		}
		return sum == st.TotalPanics
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyWindowMonotonicity(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(randomDataset(seed), Options{})
		points := s.WindowSweep([]time.Duration{
			time.Second, time.Minute, 10 * time.Minute, time.Hour, 6 * time.Hour,
		})
		prev := -1
		for _, p := range points {
			if p.Related < prev {
				return false
			}
			prev = p.Related
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestPropertyUptimeNonNegative(t *testing.T) {
	f := func(seed uint64) bool {
		s := New(randomDataset(seed), Options{})
		per, total := s.UptimeHours()
		var sum float64
		for _, h := range per {
			if h < 0 {
				return false
			}
			sum += h
		}
		// Summation order differs (map iteration vs sorted), so compare
		// with a relative tolerance.
		diff := sum - total
		if diff < 0 {
			diff = -diff
		}
		return total >= 0 && diff <= 1e-9*(1+total)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyThresholdMonotonicity(t *testing.T) {
	// More generous thresholds can only grow the self-shutdown count.
	f := func(seed uint64) bool {
		ds := randomDataset(seed)
		prev := -1
		for _, thr := range []time.Duration{time.Second, time.Minute, 10 * time.Minute, time.Hour} {
			s := New(ds, Options{SelfShutdownThreshold: thr})
			n := len(s.HLEvents(HLSelfShutdown))
			if n < prev {
				return false
			}
			prev = n
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
