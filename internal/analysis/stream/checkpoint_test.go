package stream_test

import (
	"encoding/json"
	"testing"
	"testing/quick"

	"symfail/internal/analysis/stream"
	"symfail/internal/core"
	"symfail/internal/sim"
)

// TestCheckpointRoundTrip is the codec's exactness property: marshal a live
// accumulator mid-stream (pending bursts, open coalescence windows and all),
// restore it, feed the remainder into both the original and the restored
// copy, and the sealed snapshots must be byte-identical — and identical to
// an uninterrupted run.
func TestCheckpointRoundTrip(t *testing.T) {
	type op struct {
		id string
		r  core.Record
	}
	f := func(seed uint64) bool {
		ds := randomDevices(seed)
		ids := sortedIDs(ds)
		var ops []op
		for i := 0; ; i++ {
			fed := false
			for _, id := range ids {
				if i < len(ds[id]) {
					ops = append(ops, op{id, ds[id][i]})
					fed = true
				}
			}
			if !fed {
				break
			}
		}
		r := sim.NewRand(seed ^ 0xcafe)
		cut := r.Intn(len(ops) + 1)
		cfg := stream.Config{}

		type acc = stream.Accumulator
		restoreTables := func(b []byte) (acc, error) { return stream.NewTablesFromState(b) }
		restoreWindow := func(b []byte) (acc, error) { return stream.NewWindowAccFromState(b) }
		restoreDecay := func(b []byte) (acc, error) { return stream.NewDecayAccFromState(b) }
		cases := []struct {
			name    string
			mk      func() acc
			marshal func(acc) ([]byte, error)
			restore func([]byte) (acc, error)
		}{
			{"Tables", func() acc { return stream.NewTables(cfg) },
				func(a acc) ([]byte, error) { return a.(*stream.Tables).MarshalState() }, restoreTables},
			{"WindowAcc", func() acc { return stream.NewWindowAcc(cfg) },
				func(a acc) ([]byte, error) { return a.(*stream.WindowAcc).MarshalState() }, restoreWindow},
			{"DecayAcc", func() acc { return stream.NewDecayAcc(cfg) },
				func(a acc) ([]byte, error) { return a.(*stream.DecayAcc).MarshalState() }, restoreDecay},
		}

		ok := true
		for _, tc := range cases {
			orig := tc.mk()
			if ad, _ := orig.(addDevicer); ad != nil {
				for _, id := range ids {
					ad.AddDevice(id)
				}
			}
			for _, o := range ops[:cut] {
				orig.Observe(o.id, o.r)
			}
			blob, err := tc.marshal(orig)
			if err != nil {
				t.Fatalf("seed %d %s: marshal: %v", seed, tc.name, err)
			}
			restored, err := tc.restore(blob)
			if err != nil {
				t.Fatalf("seed %d %s: restore: %v", seed, tc.name, err)
			}
			// The restored state must serialize back to an equivalent image.
			blob2, err := tc.marshal(restored)
			if err != nil {
				t.Fatalf("seed %d %s: re-marshal: %v", seed, tc.name, err)
			}
			var v1, v2 any
			if json.Unmarshal(blob, &v1) != nil || json.Unmarshal(blob2, &v2) != nil {
				t.Fatalf("seed %d %s: state not valid JSON", seed, tc.name)
			}
			c1, _ := json.Marshal(v1)
			c2, _ := json.Marshal(v2)
			if string(c1) != string(c2) {
				t.Errorf("seed %d %s: restore changed the state image", seed, tc.name)
				ok = false
			}
			for _, o := range ops[cut:] {
				orig.Observe(o.id, o.r)
				restored.Observe(o.id, o.r)
			}
			whole := tc.mk()
			if ad, _ := whole.(addDevicer); ad != nil {
				for _, id := range ids {
					ad.AddDevice(id)
				}
			}
			for _, o := range ops {
				whole.Observe(o.id, o.r)
			}
			orig.Seal()
			restored.Seal()
			whole.Seal()
			want := snapJSON(t, whole)
			if got := snapJSON(t, orig); string(got) != string(want) {
				t.Errorf("seed %d %s cut %d: original diverged after marshal", seed, tc.name, cut)
				ok = false
			}
			if got := snapJSON(t, restored); string(got) != string(want) {
				t.Errorf("seed %d %s cut %d: restored run differs from uninterrupted:\n got %s\nwant %s",
					seed, tc.name, cut, got, want)
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestCheckpointSealedRefused: a sealed accumulator has no live state to
// checkpoint.
func TestCheckpointSealedRefused(t *testing.T) {
	tb := stream.NewTables(stream.Config{})
	tb.Seal()
	if _, err := tb.MarshalState(); err == nil {
		t.Error("sealed Tables.MarshalState succeeded, want error")
	}
	w := stream.NewWindowAcc(stream.Config{})
	w.Seal()
	if _, err := w.MarshalState(); err == nil {
		t.Error("sealed WindowAcc.MarshalState succeeded, want error")
	}
	d := stream.NewDecayAcc(stream.Config{})
	d.Seal()
	if _, err := d.MarshalState(); err == nil {
		t.Error("sealed DecayAcc.MarshalState succeeded, want error")
	}
}
