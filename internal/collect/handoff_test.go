package collect

import (
	"bytes"
	"reflect"
	"testing"

	"symfail/internal/sim"
)

// TestHandoffDurableBeforeAck: a HANDOFF OK is the same durable promise as
// an UPLOAD OK — the replicated payload must be WAL-synced before the peer
// is told OK, so a crash right after the reply cannot lose it.
func TestHandoffDurableBeforeAck(t *testing.T) {
	store := NewCrashStore(sim.NewRand(1))
	ds := NewDataset()
	srv, err := NewServerWith("127.0.0.1:0", ds, ServerConfig{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	logBytes := walTestRecords(1, 2, 3)
	if err := Handoff(srv.Addr(), "dev", HandoffLog, logBytes); err != nil {
		t.Fatalf("handoff: %v", err)
	}
	if got := srv.Handoffs(); got != 1 {
		t.Errorf("Handoffs() = %d, want 1", got)
	}
	if data, ok := ds.Get("dev"); !ok || !bytes.Equal(data, logBytes) {
		t.Errorf("dataset after handoff = %q, want %q", data, logBytes)
	}
	if keys := srv.AckedKeys("dev"); len(keys) != 3 {
		t.Errorf("handoff acked %d record keys, want 3", len(keys))
	}

	// The OK is on the wire; tear every un-synced tail and recover.
	srv.Close()
	store.Crash()
	files, _ := RecoverState(store)
	if !bytes.Equal(files["dev"], logBytes) {
		t.Errorf("recovered log = %q, want %q — the OK outran the WAL sync", files["dev"], logBytes)
	}
}

// TestHandoffStreamInstallAndOutrank: a replicated chunk stream installs
// only when the receiver has no live stream for the device; a later replica
// is skipped (OK, no commit, no WAL append) because the live stream — the
// one an uploader is actually mid-conversation with — outranks it.
func TestHandoffStreamInstallAndOutrank(t *testing.T) {
	store := NewCrashStore(sim.NewRand(2))
	srv, err := NewServerWith("127.0.0.1:0", NewDataset(), ServerConfig{Store: store})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	first := walTestRecords(10, 11)
	if err := Handoff(srv.Addr(), "dev", HandoffStream, first); err != nil {
		t.Fatalf("first stream handoff: %v", err)
	}
	if st, ok := srv.Stream("dev"); !ok || !bytes.Equal(st, first) {
		t.Fatalf("stream not installed: %q", st)
	}

	appends := store.Appends()
	second := walTestRecords(20)
	if err := Handoff(srv.Addr(), "dev", HandoffStream, second); err != nil {
		t.Fatalf("second stream handoff: %v", err)
	}
	if st, _ := srv.Stream("dev"); !bytes.Equal(st, first) {
		t.Errorf("live stream replaced by a migrated copy: %q", st)
	}
	if got := store.Appends(); got != appends {
		t.Errorf("skipped handoff appended to the WAL (%d -> %d appends)", appends, got)
	}
	if got := srv.Handoffs(); got != 1 {
		t.Errorf("Handoffs() = %d after a skip, want 1", got)
	}
}

// TestMigratedWALDoubleRecoveryWriteFree mirrors PR 4's recovery
// normalisation test for the handoff entries: recovering a store whose WAL
// holds migrated state (log and stream replicas, plus a torn tail) once
// normalises it; recovering it again returns the same maps byte for byte
// and writes nothing — the fleet reads a dying shard's state this way and
// the restart's own recovery must then find a clean store.
func TestMigratedWALDoubleRecoveryWriteFree(t *testing.T) {
	store := NewCrashStore(sim.NewRand(3))
	append2 := func(e walEntry) { store.Append(walName, encodeWALEntry(e)) }
	append2(walEntry{Op: opHandoff, Dev: "a", Data: walTestRecords(1, 2)})
	append2(walEntry{Op: opHandoffStream, Dev: "b", Data: walTestRecords(5)})
	// A second stream replica for b must be a replay no-op: the first
	// install made the live stream non-empty.
	append2(walEntry{Op: opHandoffStream, Dev: "b", Data: walTestRecords(6, 7)})
	store.Sync(walName)
	// Torn tail: an append the crash cut short.
	store.Append(walName, encodeWALEntry(walEntry{Op: opHandoff, Dev: "c", Data: walTestRecords(9)}))
	store.Crash()

	files1, streams1 := RecoverState(store)
	if !bytes.Equal(streams1["b"], walTestRecords(5)) {
		t.Errorf("stream replay guard broken: %q", streams1["b"])
	}
	if _, ok := files1["c"]; ok {
		t.Error("torn (never-synced, never-acked) handoff resurrected")
	}
	state1 := storeState(store)
	appends, syncs := store.Appends(), store.Syncs()

	files2, streams2 := RecoverState(store)
	if !reflect.DeepEqual(files1, files2) || !reflect.DeepEqual(streams1, streams2) {
		t.Error("double recovery of a migrated WAL is not byte-identical")
	}
	if !reflect.DeepEqual(state1, storeState(store)) {
		t.Error("second recovery changed the medium")
	}
	if store.Appends() != appends || store.Syncs() != syncs {
		t.Errorf("second recovery wrote: appends %d->%d, syncs %d->%d",
			appends, store.Appends(), syncs, store.Syncs())
	}
}
