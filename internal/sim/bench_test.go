package sim

import (
	"testing"
	"time"
)

func BenchmarkEngineScheduleAndFire(b *testing.B) {
	e := NewEngine()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.After(time.Duration(i%1000)*time.Millisecond, "b", func() {})
		if e.Pending() > 1024 {
			for e.Pending() > 0 {
				e.Step()
			}
		}
	}
}

func BenchmarkEngineTimerWheelPattern(b *testing.B) {
	// The dominant workload shape in the study: a self-re-arming periodic
	// callback (the heartbeat).
	e := NewEngine()
	ticks := 0
	var tick func()
	tick = func() {
		ticks++
		e.After(time.Minute, "tick", tick)
	}
	e.After(time.Minute, "tick", tick)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
	if ticks == 0 {
		b.Fatal("no ticks")
	}
}

func BenchmarkEngineCancel(b *testing.B) {
	e := NewEngine()
	evs := make([]Event, 0, 1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(evs) == cap(evs) {
			for _, ev := range evs {
				e.Cancel(ev)
			}
			evs = evs[:0]
		}
		evs = append(evs, e.After(time.Hour, "c", func() {}))
	}
}

func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	var x uint64
	for i := 0; i < b.N; i++ {
		x ^= r.Uint64()
	}
	_ = x
}

func BenchmarkRandExpDuration(b *testing.B) {
	r := NewRand(1)
	var x time.Duration
	for i := 0; i < b.N; i++ {
		x ^= r.ExpDuration(time.Hour)
	}
	_ = x
}

func BenchmarkRandWeightedIndex(b *testing.B) {
	r := NewRand(1)
	weights := []float64{56.31, 10.1, 6.31, 6.31, 5.81, 5.56, 2.53, 1.52, 0.76, 0.76, 0.76, 0.51, 0.51, 0.25, 0.25, 0.25, 0.25, 0.25}
	var x int
	for i := 0; i < b.N; i++ {
		x ^= r.WeightedIndex(weights)
	}
	_ = x
}

func BenchmarkHistogramAdd(b *testing.B) {
	h := NewHistogram(0, 50000, 100)
	r := NewRand(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(r.Float64() * 60000)
	}
}
