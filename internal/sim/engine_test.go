package sim

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

// queueImpls enumerates the event-queue implementations behind the engine.
// Every engine contract test below runs against each of them: the timing
// wheel (the default) and the reference heap must be observably identical.
var queueImpls = []struct {
	name string
	mk   func() *Engine
}{
	{"wheel", NewEngine},
	{"heap", func() *Engine { return newEngineWithQueue(newHeapQueue()) }},
}

func forEachQueue(t *testing.T, f func(t *testing.T, newEngine func() *Engine)) {
	for _, impl := range queueImpls {
		impl := impl
		t.Run(impl.name, func(t *testing.T) { f(t, impl.mk) })
	}
}

func TestEngineFiresInTimeOrder(t *testing.T) {
	forEachQueue(t, func(t *testing.T, newEngine func() *Engine) {
		e := newEngine()
		var got []int
		e.After(3*time.Second, "c", func() { got = append(got, 3) })
		e.After(1*time.Second, "a", func() { got = append(got, 1) })
		e.After(2*time.Second, "b", func() { got = append(got, 2) })
		if err := e.RunAll(); err != nil {
			t.Fatalf("RunAll: %v", err)
		}
		want := []int{1, 2, 3}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("order = %v, want %v", got, want)
			}
		}
		if e.Now() != Epoch.Add(3*time.Second) {
			t.Errorf("Now = %v, want 3s", e.Now())
		}
	})
}

func TestEngineEqualTimesFireInScheduleOrder(t *testing.T) {
	forEachQueue(t, func(t *testing.T, newEngine func() *Engine) {
		e := newEngine()
		var got []int
		for i := 0; i < 10; i++ {
			i := i
			e.At(Epoch.Add(time.Second), "tie", func() { got = append(got, i) })
		}
		if err := e.RunAll(); err != nil {
			t.Fatalf("RunAll: %v", err)
		}
		for i := range got {
			if got[i] != i {
				t.Fatalf("tie order = %v", got)
			}
		}
	})
}

func TestEngineCancel(t *testing.T) {
	forEachQueue(t, func(t *testing.T, newEngine func() *Engine) {
		e := newEngine()
		fired := false
		ev := e.After(time.Second, "x", func() { fired = true })
		if !ev.Pending() {
			t.Fatal("event should be pending")
		}
		if !e.Cancel(ev) {
			t.Fatal("Cancel should report success")
		}
		if e.Cancel(ev) {
			t.Fatal("double Cancel should report failure")
		}
		if err := e.RunAll(); err != nil {
			t.Fatalf("RunAll: %v", err)
		}
		if fired {
			t.Error("cancelled event fired")
		}
	})
}

func TestEngineCancelMiddleOfQueue(t *testing.T) {
	forEachQueue(t, func(t *testing.T, newEngine func() *Engine) {
		e := newEngine()
		var got []int
		evs := make([]Event, 0, 20)
		for i := 0; i < 20; i++ {
			i := i
			evs = append(evs, e.After(time.Duration(i)*time.Second, "n", func() { got = append(got, i) }))
		}
		for i := 5; i < 15; i++ {
			e.Cancel(evs[i])
		}
		if err := e.RunAll(); err != nil {
			t.Fatalf("RunAll: %v", err)
		}
		if len(got) != 10 {
			t.Fatalf("fired %d events, want 10 (%v)", len(got), got)
		}
		for _, v := range got {
			if v >= 5 && v < 15 {
				t.Fatalf("cancelled event %d fired", v)
			}
		}
	})
}

func TestEngineRunUntil(t *testing.T) {
	forEachQueue(t, func(t *testing.T, newEngine func() *Engine) {
		e := newEngine()
		count := 0
		var tick func()
		tick = func() {
			count++
			e.After(time.Minute, "tick", tick)
		}
		e.After(time.Minute, "tick", tick)
		if err := e.Run(Epoch.Add(time.Hour)); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if count != 60 {
			t.Errorf("count = %d, want 60", count)
		}
		if e.Now() != Epoch.Add(time.Hour) {
			t.Errorf("Now = %v, want 1h", e.Now())
		}
	})
}

func TestEngineRunAdvancesToUntilWhenDrained(t *testing.T) {
	forEachQueue(t, func(t *testing.T, newEngine func() *Engine) {
		e := newEngine()
		e.After(time.Second, "only", func() {})
		if err := e.Run(Epoch.Add(time.Hour)); err != nil {
			t.Fatalf("Run: %v", err)
		}
		if e.Now() != Epoch.Add(time.Hour) {
			t.Errorf("Now = %v, want 1h", e.Now())
		}
	})
}

func TestEngineStop(t *testing.T) {
	forEachQueue(t, func(t *testing.T, newEngine func() *Engine) {
		e := newEngine()
		count := 0
		var tick func()
		tick = func() {
			count++
			if count == 5 {
				e.Stop()
			}
			e.After(time.Second, "tick", tick)
		}
		e.After(time.Second, "tick", tick)
		if err := e.RunAll(); err != ErrStopped {
			t.Fatalf("RunAll err = %v, want ErrStopped", err)
		}
		if count != 5 {
			t.Errorf("count = %d, want 5", count)
		}
	})
}

func TestEngineSchedulingInPastClampsToNow(t *testing.T) {
	forEachQueue(t, func(t *testing.T, newEngine func() *Engine) {
		e := newEngine()
		var at Time = Never
		e.After(10*time.Second, "outer", func() {
			e.At(Epoch, "past", func() { at = e.Now() })
		})
		if err := e.RunAll(); err != nil {
			t.Fatalf("RunAll: %v", err)
		}
		if at != Epoch.Add(10*time.Second) {
			t.Errorf("past event fired at %v, want 10s", at)
		}
	})
}

func TestEngineStringNamesQueue(t *testing.T) {
	forEachQueue(t, func(t *testing.T, newEngine func() *Engine) {
		e := newEngine()
		e.After(time.Second, "x", func() {})
		s := e.String()
		if !strings.Contains(s, "pending=1") {
			t.Errorf("String = %q, want pending=1", s)
		}
		if !strings.Contains(s, "queue="+e.queue.name()) {
			t.Errorf("String = %q, want queue=%s", s, e.queue.name())
		}
	})
}

func TestEngineHandleOutlivesFire(t *testing.T) {
	// The value handle keeps reporting the original When/Label after the
	// node behind it has been recycled for another event.
	forEachQueue(t, func(t *testing.T, newEngine func() *Engine) {
		e := newEngine()
		ev := e.After(time.Second, "first", func() {})
		if err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
		if ev.Pending() {
			t.Error("fired event still pending")
		}
		// Recycle the node.
		ev2 := e.After(time.Minute, "second", func() {})
		if ev.Pending() {
			t.Error("stale handle pending after node reuse")
		}
		if ev.When() != Epoch.Add(time.Second) || ev.Label() != "first" {
			t.Errorf("stale handle When/Label = %v/%q", ev.When(), ev.Label())
		}
		if e.Cancel(ev) {
			t.Error("Cancel through stale handle succeeded")
		}
		if !ev2.Pending() {
			t.Error("live event not pending — stale Cancel hit the recycled node")
		}
	})
}

func TestTimeHelpers(t *testing.T) {
	tm := Epoch.Add(26*time.Hour + 3*time.Minute)
	if tm.Day() != 1 {
		t.Errorf("Day = %d, want 1", tm.Day())
	}
	if tod := tm.TimeOfDay(); tod != 2*time.Hour+3*time.Minute {
		t.Errorf("TimeOfDay = %v", tod)
	}
	if s := tm.String(); s != "1d02:03:00" {
		t.Errorf("String = %q", s)
	}
	if Never.String() != "never" {
		t.Errorf("Never.String = %q", Never.String())
	}
	if !Epoch.Before(tm) || !tm.After(Epoch) {
		t.Error("Before/After broken")
	}
	if tm.Sub(Epoch) != 26*time.Hour+3*time.Minute {
		t.Errorf("Sub = %v", tm.Sub(Epoch))
	}
}

func TestEngineRandomScheduleOrderProperty(t *testing.T) {
	// Property: whatever order events are scheduled in, they fire in
	// non-decreasing time order, and equal-time events fire in schedule
	// order.
	forEachQueue(t, func(t *testing.T, newEngine func() *Engine) {
		f := func(seed uint64) bool {
			r := NewRand(seed)
			e := newEngine()
			type fired struct {
				at  Time
				seq int
			}
			var log []fired
			n := 50 + r.Intn(100)
			for i := 0; i < n; i++ {
				i := i
				at := Epoch.Add(time.Duration(r.Intn(20)) * time.Second)
				e.At(at, "p", func() { log = append(log, fired{e.Now(), i}) })
			}
			if err := e.RunAll(); err != nil {
				return false
			}
			if len(log) != n {
				return false
			}
			for i := 1; i < len(log); i++ {
				if log[i].at < log[i-1].at {
					return false
				}
				if log[i].at == log[i-1].at && log[i].seq < log[i-1].seq {
					return false
				}
			}
			return true
		}
		if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
			t.Error(err)
		}
	})
}

func TestEngineEventsScheduledDuringRunFire(t *testing.T) {
	forEachQueue(t, func(t *testing.T, newEngine func() *Engine) {
		e := newEngine()
		depth := 0
		var recurse func()
		recurse = func() {
			depth++
			if depth < 10 {
				e.After(time.Second, "deeper", recurse)
			}
		}
		e.After(time.Second, "start", recurse)
		if err := e.RunAll(); err != nil {
			t.Fatal(err)
		}
		if depth != 10 {
			t.Errorf("depth = %d", depth)
		}
	})
}
