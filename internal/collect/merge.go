package collect

import (
	"hash/crc32"
	"sort"

	"symfail/internal/core"
)

// MergeRecords is the canonical per-device record merge: it combines any
// number of record batches into one deduplicated, totally ordered sequence.
// The operation is idempotent, commutative and associative — any
// interleaving of the same batches, in any order, across any number of
// calls, merges to the identical sequence — which is what makes the
// collected dataset independent of upload scheduling: re-sends after lost
// acknowledgements, rewound streams and concurrent per-shard uploads all
// collapse to the same bytes.
//
// Records deduplicate by their exact serialized form and order by
// (timestamp, serialized bytes). The byte tie-break gives equal-time
// records a total order no arrival schedule can perturb; device identity,
// the outermost key of the merge order, lives in the Dataset keying above
// this level.
func MergeRecords(batches ...[]core.Record) []core.Record {
	seen := make(map[string]bool)
	type keyed struct {
		rec core.Record
		key string
	}
	var all []keyed
	var scratch []byte
	for _, batch := range batches {
		for _, r := range batch {
			scratch = core.AppendRecordLine(scratch[:0], r)
			if seen[string(scratch)] { // alloc-free lookup; the key string is built only for new records
				continue
			}
			key := string(scratch)
			seen[key] = true
			all = append(all, keyed{rec: r, key: key})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].rec.Time != all[j].rec.Time {
			return all[i].rec.Time < all[j].rec.Time
		}
		return all[i].key < all[j].key
	})
	out := make([]core.Record, len(all))
	for i, k := range all {
		out[i] = k.rec
	}
	return out
}

// EncodeRecords serialises a record sequence as the dataset stores it: one
// JSON line per record.
func EncodeRecords(recs []core.Record) []byte {
	var out []byte
	for _, r := range recs {
		out = core.AppendRecordLine(out, r)
	}
	return out
}

// CRC32C is the dataset's canonical fingerprint: a CRC-32C over every
// device ID and its log bytes, in sorted device order. Two datasets with
// the same fingerprint hold byte-identical logs for the same devices — the
// serial-vs-parallel equivalence tests compare whole runs through this one
// number.
func (ds *Dataset) CRC32C() uint32 {
	var sum uint32
	for _, id := range ds.Devices() {
		data, _ := ds.Get(id)
		sum = crc32.Update(sum, castagnoli, []byte(id))
		sum = crc32.Update(sum, castagnoli, data)
	}
	return sum
}
