package lint_test

import (
	"testing"

	"symfail/internal/lint"
)

// TestSymlintSelfCheck holds symlint to its own rules: the analyzer suite
// must come back clean over internal/lint and cmd/symlint. The linter being
// unable to pass its own lint would make every other green run meaningless.
func TestSymlintSelfCheck(t *testing.T) {
	l, err := sharedLoader()
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load("./internal/lint", "./cmd/symlint")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	for _, d := range lint.Run(pkgs, lint.DefaultAnalyzers()) {
		t.Errorf("symlint does not pass its own lint: %s", d)
	}
}
