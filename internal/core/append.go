package core

import (
	"fmt"
	"hash/crc32"
	"math"
	"strconv"
	"unicode/utf8"
)

// Flattened, append-style encoders for the record hot path. The logger
// appends a framed record per heartbeat and per panic on every device, the
// collection tier keys its dedup maps on encoded records, and the analysis
// tier re-encodes records while merging — at fleet scale the reflective
// encoding/json walk and its per-call allocations dominate. These encoders
// produce byte-identical output to encoding/json (same field order, same
// omitempty, same HTML-escaping rules, same float format — pinned by a
// differential test and fuzzer against the stdlib) while appending into a
// caller-owned buffer, so steady-state encoding allocates only when the
// scratch has to grow.

// AppendRecord appends r's JSON object (exactly json.Marshal's bytes, no
// trailing newline) to dst and returns the extended buffer.
func AppendRecord(dst []byte, r Record) []byte {
	dst = append(dst, `{"kind":`...)
	dst = appendJSONString(dst, r.Kind)
	dst = append(dst, `,"time":`...)
	dst = strconv.AppendInt(dst, r.Time, 10)
	if r.Boot != 0 {
		dst = append(dst, `,"boot":`...)
		dst = strconv.AppendInt(dst, int64(r.Boot), 10)
	}
	if r.OSVersion != "" {
		dst = append(dst, `,"os":`...)
		dst = appendJSONString(dst, r.OSVersion)
	}
	if r.PrevBeat != "" {
		dst = append(dst, `,"prevBeat":`...)
		dst = appendJSONString(dst, string(r.PrevBeat))
	}
	if r.PrevTime != 0 {
		dst = append(dst, `,"prevTime":`...)
		dst = strconv.AppendInt(dst, r.PrevTime, 10)
	}
	if r.OffSeconds != 0 {
		dst = append(dst, `,"offSeconds":`...)
		dst = appendJSONFloat(dst, r.OffSeconds)
	}
	if r.Detected != "" {
		dst = append(dst, `,"detected":`...)
		dst = appendJSONString(dst, string(r.Detected))
	}
	if r.Category != "" {
		dst = append(dst, `,"category":`...)
		dst = appendJSONString(dst, r.Category)
	}
	if r.PType != 0 {
		dst = append(dst, `,"ptype":`...)
		dst = strconv.AppendInt(dst, int64(r.PType), 10)
	}
	if len(r.Apps) > 0 {
		dst = append(dst, `,"apps":[`...)
		for i, app := range r.Apps {
			if i > 0 {
				dst = append(dst, ',')
			}
			dst = appendJSONString(dst, app)
		}
		dst = append(dst, ']')
	}
	if r.Activity != "" {
		dst = append(dst, `,"activity":`...)
		dst = appendJSONString(dst, r.Activity)
	}
	if r.LogSalvaged != 0 {
		dst = append(dst, `,"salvaged":`...)
		dst = strconv.AppendInt(dst, int64(r.LogSalvaged), 10)
	}
	if r.LogLost != 0 {
		dst = append(dst, `,"lost":`...)
		dst = strconv.AppendInt(dst, int64(r.LogLost), 10)
	}
	return append(dst, '}')
}

// AppendRecordLine appends r as one JSON line (EncodeRecord's bytes).
func AppendRecordLine(dst []byte, r Record) []byte {
	return append(AppendRecord(dst, r), '\n')
}

// AppendBeat appends b's JSON object to dst (json.Marshal's bytes; Beat
// has no omitempty fields).
func AppendBeat(dst []byte, b Beat) []byte {
	dst = append(dst, `{"kind":`...)
	dst = appendJSONString(dst, string(b.Kind))
	dst = append(dst, `,"time":`...)
	dst = strconv.AppendInt(dst, b.Time, 10)
	return append(dst, '}')
}

// AppendFrame appends payload wrapped in a checksummed frame (EncodeFrame's
// bytes) to dst.
func AppendFrame(dst, payload []byte) []byte {
	if len(payload) > MaxFramePayload {
		// Records are small JSON objects; a payload this large is a
		// programming error, not flash damage.
		panic(fmt.Sprintf("core: frame payload %d bytes exceeds %d", len(payload), MaxFramePayload))
	}
	dst = append(dst, FrameMagic)
	dst = appendHex(dst, uint32(crc32.Checksum(payload, frameTable)), 8)
	dst = append(dst, ':')
	dst = appendHex(dst, uint32(len(payload)), 6)
	dst = append(dst, ':')
	dst = append(dst, payload...)
	return append(dst, '\n')
}

const hexDigits = "0123456789abcdef"

// appendHex appends v as exactly width lowercase hex digits.
func appendHex(dst []byte, v uint32, width int) []byte {
	for i := width - 1; i >= 0; i-- {
		dst = append(dst, hexDigits[(v>>(uint(i)*4))&0xf])
	}
	return dst
}

// appendJSONFloat matches encoding/json's float64 encoder: %f in the
// mid-range, %e with a trimmed two-digit exponent outside it. Non-finite
// values panic, mirroring json.Marshal's unsupported-value error (the
// logger never produces them).
func appendJSONFloat(dst []byte, f float64) []byte {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		panic(fmt.Sprintf("core: unsupported float value %v in record", f))
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	dst = strconv.AppendFloat(dst, f, format, -1, 64)
	if format == 'e' {
		// Trim "e-07" style exponents to "e-7", as the stdlib does.
		if n := len(dst); n >= 4 && dst[n-4] == 'e' && dst[n-3] == '-' && dst[n-2] == '0' {
			dst[n-2] = dst[n-1]
			dst = dst[:n-1]
		}
	}
	return dst
}

// appendJSONString matches encoding/json's default (HTML-escaping) string
// encoder: printable ASCII passes through except ", \, <, >, &; control
// bytes use the short escapes or \u00xx; invalid UTF-8 becomes �;
// U+2028/U+2029 are escaped for JS embedding.
func appendJSONString(dst []byte, s string) []byte {
	dst = append(dst, '"')
	start := 0
	for i := 0; i < len(s); {
		if b := s[i]; b < utf8.RuneSelf {
			if b >= ' ' && b != '"' && b != '\\' && b != '<' && b != '>' && b != '&' {
				i++
				continue
			}
			dst = append(dst, s[start:i]...)
			switch b {
			case '\\', '"':
				dst = append(dst, '\\', b)
			case '\b':
				dst = append(dst, '\\', 'b')
			case '\f':
				dst = append(dst, '\\', 'f')
			case '\n':
				dst = append(dst, '\\', 'n')
			case '\r':
				dst = append(dst, '\\', 'r')
			case '\t':
				dst = append(dst, '\\', 't')
			default:
				dst = append(dst, '\\', 'u', '0', '0', hexDigits[b>>4], hexDigits[b&0xf])
			}
			i++
			start = i
			continue
		}
		c, size := utf8.DecodeRuneInString(s[i:])
		if c == utf8.RuneError && size == 1 {
			dst = append(dst, s[start:i]...)
			dst = append(dst, `\ufffd`...)
			i += size
			start = i
			continue
		}
		if c == ' ' || c == ' ' {
			dst = append(dst, s[start:i]...)
			dst = append(dst, '\\', 'u', '2', '0', '2', hexDigits[c&0xf])
			i += size
			start = i
			continue
		}
		i += size
	}
	dst = append(dst, s[start:]...)
	return append(dst, '"')
}
