package phone

import (
	"fmt"
	"time"

	"symfail/internal/sim"
	"symfail/internal/symbos"
)

// DeviceState is the coarse phone state.
type DeviceState int

// Device states.
const (
	StateOff DeviceState = iota + 1
	StateOn
	StateFrozen
)

// String renders the state.
func (s DeviceState) String() string {
	switch s {
	case StateOff:
		return "off"
	case StateOn:
		return "on"
	case StateFrozen:
		return "frozen"
	default:
		return fmt.Sprintf("DeviceState(%d)", int(s))
	}
}

// ShutdownReason tells shutdown hooks why the phone is going down. Battery
// pulls never reach the hooks — power is simply gone, which is what lets
// the logger infer a freeze from a trailing ALIVE record.
type ShutdownReason string

// Shutdown reasons, mirroring the heartbeat record types of section 5.2.
const (
	ReasonSelfShutdown ShutdownReason = "self"
	ReasonUser         ShutdownReason = "user"
	ReasonLowBattery   ShutdownReason = "low-battery"
	ReasonLoggerOff    ShutdownReason = "logger-off"
)

// Device is one simulated smart phone across its whole study enrolment:
// boots, shutdowns, freezes, battery pulls, user workload and injected
// faults. A fresh symbos kernel is created on every boot; the flash
// filesystem and the oracle persist across boots.
type Device struct {
	id     string
	eng    *sim.Engine
	rng    *sim.Rand
	cfg    Config
	fs     *FS
	oracle *Oracle
	faults *faultModel

	state      DeviceState
	bootGen    int
	battery    float64
	kernel     *symbos.Kernel
	apps       map[string]*App
	lastBootAt sim.Time
	enrolledAt sim.Time
	finalized  bool

	appArch  *symbos.Server
	dbLog    *symbos.Server
	sysAgent *symbos.Server
	msgSrv   *symbos.Server
	fileSrv  *symbos.FileServer
	props    *symbos.PropertyBus

	// srvScratch is reused by the firmware server handlers to build
	// response descriptors without per-request formatting garbage. Handlers
	// run synchronously on the device's single simulated CPU, so one buffer
	// per device suffices.
	srvScratch []byte

	activityLog     []ActivityRecord
	currentActivity Activity
	activityToken   int

	onBoot        []func(*Device)
	shutdownHooks []func(ShutdownReason)
	outputHooks   []func(OutputFailure)

	// recentFailures holds the instants of recent freezes/self-shutdowns
	// for the service-visit decision; servicePending survives the reboot
	// that the triggering failure causes.
	recentFailures []sim.Time
	servicePending bool
	serviced       int
}

// OutputFailure is a user-visible value failure: the device delivered the
// wrong output (wrong volume, wrong reminder time, inaccurate charge
// indicator, ...). The base logger cannot detect these automatically;
// the core.UserReporter extension subscribes to them through the hook.
type OutputFailure struct {
	Time     sim.Time
	Detail   string
	Activity Activity
}

// NewDevice creates a phone. It is off until Enroll schedules its first
// boot.
func NewDevice(id string, eng *sim.Engine, cfg Config) *Device {
	d := &Device{
		id:              id,
		eng:             eng,
		rng:             sim.NewRand(cfg.Seed),
		cfg:             cfg,
		fs:              NewFS(),
		oracle:          &Oracle{},
		state:           StateOff,
		battery:         1,
		apps:            make(map[string]*App),
		currentActivity: ActIdle,
	}
	// Split only when faults are armed: an idle adversity config must not
	// perturb the device's RNG stream.
	if cfg.Flash.Enabled() {
		d.fs.EnableFaults(cfg.Flash, d.rng.Split())
	}
	return d
}

// SplitRand derives an independent child RNG from the device stream (for
// per-device adversity consumers like the faulty network transport). Call
// order is part of the deterministic contract.
func (d *Device) SplitRand() *sim.Rand { return d.rng.Split() }

// ID returns the device identifier.
func (d *Device) ID() string { return d.id }

// Engine returns the discrete-event engine.
func (d *Device) Engine() *sim.Engine { return d.eng }

// Now returns the current virtual time.
func (d *Device) Now() sim.Time { return d.eng.Now() }

// Config returns the device calibration.
func (d *Device) Config() Config { return d.cfg }

// OSVersion returns the Symbian OS version the phone runs.
func (d *Device) OSVersion() string { return d.cfg.OSVersion }

// FS returns the flash filesystem.
func (d *Device) FS() *FS { return d.fs }

// Oracle returns the ground-truth recorder.
func (d *Device) Oracle() *Oracle { return d.oracle }

// State returns the coarse device state.
func (d *Device) State() DeviceState { return d.state }

// Battery returns the battery level in [0, 1].
func (d *Device) Battery() float64 { return d.battery }

// Kernel returns the kernel of the current boot (nil before first boot).
func (d *Device) Kernel() *symbos.Kernel { return d.kernel }

// Properties returns the publish-and-subscribe property bus of the current
// boot (battery level/status, call state).
func (d *Device) Properties() *symbos.PropertyBus { return d.props }

// CurrentActivity returns what the user is doing right now.
func (d *Device) CurrentActivity() Activity { return d.currentActivity }

// BootCount returns how many times the phone has booted.
func (d *Device) BootCount() int { return d.bootGen }

// EnrolledAt returns the study enrolment instant.
func (d *Device) EnrolledAt() sim.Time { return d.enrolledAt }

// OnBoot registers an installer invoked at every boot (the failure logger
// uses this to start its daemon). Installers registered after enrolment
// take effect from the next boot.
func (d *Device) OnBoot(fn func(*Device)) { d.onBoot = append(d.onBoot, fn) }

// RegisterShutdownHook registers a callback invoked when the phone shuts
// down in an orderly fashion (self-shutdown, user power-off, low battery).
// Hooks are cleared at every boot; daemons re-register from their OnBoot
// installer. Battery pulls bypass the hooks entirely.
func (d *Device) RegisterShutdownHook(fn func(ShutdownReason)) {
	d.shutdownHooks = append(d.shutdownHooks, fn)
}

// RegisterOutputFailureHook registers a callback invoked when the user
// *could notice* a value failure (the device misbehaved in a user-visible
// way). Like shutdown hooks, these are cleared at every boot. Whether the
// user actually notices and reports is the subscriber's model to apply.
func (d *Device) RegisterOutputFailureHook(fn func(OutputFailure)) {
	d.outputHooks = append(d.outputHooks, fn)
}

// Enroll schedules the phone's first boot of the study at the given time.
func (d *Device) Enroll(at sim.Time) {
	d.enrolledAt = at
	d.faults = newFaultModel(d)
	d.eng.At(at, "enroll "+d.id, d.boot)
}

// boot powers the phone on: fresh kernel, firmware servers, daemon
// installers, workload.
func (d *Device) boot() {
	if d.state == StateOn || d.finalized {
		return
	}
	d.bootGen++
	d.state = StateOn
	d.lastBootAt = d.eng.Now()
	d.shutdownHooks = nil
	d.outputHooks = nil
	d.apps = make(map[string]*App)
	d.currentActivity = ActIdle
	d.kernel = symbos.NewKernel(d.eng)
	d.kernel.SetPanicHandler(d.handlePanic)
	d.props = symbos.NewPropertyBus(d.kernel)
	d.startServers()
	// Phones on the charger overnight come up full in the morning.
	if tod := d.eng.Now().TimeOfDay(); tod > 4*time.Hour && tod < 11*time.Hour {
		d.battery = 1
	}
	d.oracle.record(TruthBoot, d.eng.Now(), "", ActIdle)
	for _, fn := range d.onBoot {
		fn(d)
	}
	if d.servicePending {
		d.scheduleServiceVisit()
	}
	d.startWorkload()
}

// accountUptime accumulates powered-on hours into the oracle.
func (d *Device) accountUptime() {
	d.oracle.ObservedHours += d.eng.Now().Sub(d.lastBootAt).Hours()
}

// Shutdown powers the phone off in an orderly fashion: Symbian lets
// applications complete their tasks before the power drops, which is the
// window in which the logger's heartbeat records the shutdown reason. The
// phone boots again offFor later.
func (d *Device) Shutdown(reason ShutdownReason, offFor time.Duration) {
	if d.state != StateOn {
		return
	}
	for _, fn := range d.shutdownHooks {
		fn(reason)
	}
	d.powerDown(offFor)
}

// powerDown is the common tail of every way the phone loses power.
func (d *Device) powerDown(offFor time.Duration) {
	d.endCurrentActivity()
	d.accountUptime()
	d.kernel.Halt()
	d.state = StateOff
	d.eng.After(offFor, "boot "+d.id, d.boot)
}

// SelfShutdown reboots the phone on its own initiative (a silent failure).
func (d *Device) SelfShutdown(cause string) {
	if d.state != StateOn {
		return
	}
	d.oracle.record(TruthSelfShutdown, d.eng.Now(), cause, d.currentActivity)
	d.noteFailureForService()
	off := d.rng.LogNormalDuration(d.cfg.SelfShutdownOffMedian, d.cfg.SelfShutdownOffSigma)
	d.Shutdown(ReasonSelfShutdown, off)
}

// noteFailureForService tracks failure clustering; a fed-up user takes the
// phone in for service (the highest-severity recovery of section 4).
func (d *Device) noteFailureForService() {
	if d.cfg.ServiceFailureThreshold <= 0 {
		return
	}
	now := d.eng.Now()
	d.recentFailures = append(d.recentFailures, now)
	keep := d.recentFailures[:0]
	for _, t := range d.recentFailures {
		if now.Sub(t) <= d.cfg.ServiceWindow {
			keep = append(keep, t)
		}
	}
	d.recentFailures = keep
	if len(d.recentFailures) < d.cfg.ServiceFailureThreshold {
		return
	}
	if !d.rng.Bool(d.cfg.ServiceProb) {
		return
	}
	d.recentFailures = nil
	// The failure that tripped the decision takes the phone down first;
	// the visit is scheduled from the next boot.
	d.servicePending = true
}

// scheduleServiceVisit runs the pending service trip within the next day
// or so of phone-on time.
func (d *Device) scheduleServiceVisit() {
	gen := d.bootGen
	d.eng.After(d.rng.ExpDuration(18*time.Hour), "service "+d.id, func() {
		if !d.live(gen) {
			return // retried from the next boot; servicePending persists
		}
		if d.servicePending {
			d.servicePending = false
			d.ServicePhone()
		}
	})
}

// ServicePhone models the service-centre visit: master reset (the flash is
// wiped — the logger's files are gone, which is exactly why the study's
// collection infrastructure uploads periodically) plus a firmware update
// that reduces the defect rates.
func (d *Device) ServicePhone() {
	if d.state != StateOn {
		return
	}
	d.serviced++
	d.oracle.record(TruthServiceVisit, d.eng.Now(), "master reset + firmware update", d.currentActivity)
	d.cfg.PanicOpportunityPerHour *= d.cfg.ServiceFixFactor
	d.cfg.SpontaneousFreezePerHour *= d.cfg.ServiceFixFactor
	d.cfg.SpontaneousShutdownPerHour *= d.cfg.ServiceFixFactor
	off := d.cfg.ServiceOffDuration + d.rng.ExpDuration(12*time.Hour)
	// The shutdown hooks run first (the heartbeat records REBOOT), but
	// the subsequent master reset wipes that record with everything else.
	d.Shutdown(ReasonUser, off)
	d.fs.MasterReset()
}

// ServiceVisits returns how many times the phone has been serviced.
func (d *Device) ServiceVisits() int { return d.serviced }

// Freeze locks the phone up: the kernel halts, nothing (including the
// logger) runs, and after an impatience delay the user pulls the battery.
func (d *Device) Freeze(cause string) {
	if d.state != StateOn {
		return
	}
	d.oracle.record(TruthFreeze, d.eng.Now(), cause, d.currentActivity)
	d.noteFailureForService()
	d.accountUptime()
	d.state = StateFrozen
	d.kernel.Halt()
	wait := d.rng.LogNormalDuration(d.cfg.FreezeImpatienceMedian, d.cfg.FreezeImpatienceSigma)
	d.eng.After(wait, "battery-pull "+d.id, func() {
		if d.state != StateFrozen {
			return
		}
		d.oracle.record(TruthBatteryPull, d.eng.Now(), cause, d.currentActivity)
		// Power vanishes mid-write: the write in flight may tear.
		d.fs.Crash()
		d.state = StateOff
		off := d.rng.LogNormalDuration(d.cfg.BatteryPullOffMedian, d.cfg.BatteryPullOffSigma)
		d.eng.After(off, "boot "+d.id, d.boot)
	})
}

// Finalize ends the device's participation in the study: remaining uptime
// is accounted and no further boot will happen. Call once, at study end.
func (d *Device) Finalize() {
	if d.finalized {
		return
	}
	if d.state == StateOn {
		d.accountUptime()
		d.state = StateOff
		if d.kernel != nil {
			d.kernel.Halt()
		}
	}
	d.finalized = true
}

// handlePanic is the kernel recovery policy: record the panic with its
// ground-truth context, then let the fault model decide the outcome
// (terminate the application, cascade, freeze, or reboot).
func (d *Device) handlePanic(p *symbos.Panic, proc *symbos.Process) {
	if d.state != StateOn {
		return
	}
	d.oracle.Panics = append(d.oracle.Panics, TruthPanic{
		Panic:    *p,
		Activity: d.currentActivity,
		Apps:     d.RunningApps(),
		Burst:    d.faults.inBurst,
	})
	d.faults.afterPanic(p, proc)
}
