// Command benchdiff compares two benchmark report files (BENCH_parallel.json
// or BENCH_analysis.json) and exits non-zero when the new run regresses the
// baseline: any throughput metric (*PerSec) more than -threshold below the
// baseline, or any allocation count (allocsPerOp) above it at all. It is the
// engine behind `make bench-check`.
//
//	benchdiff [-threshold 0.10] baseline.json new.json
//
// Cells are matched by their identity fields (phones, workers, months, mode,
// records); cells present in only one file are reported but never fail the
// gate, so baselines can grow new cells without ceremony.
package main

import (
	"flag"
	"fmt"
	"os"
)

func main() {
	threshold := flag.Float64("threshold", 0.10, "allowed fractional throughput regression")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.10] baseline.json new.json")
		os.Exit(2)
	}
	basePath, newPath := flag.Arg(0), flag.Arg(1)
	base, err := os.ReadFile(basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fresh, err := os.ReadFile(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	result, err := Compare(base, fresh, *threshold)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	for _, n := range result.Notes {
		fmt.Println("note:", n)
	}
	for _, l := range result.OK {
		fmt.Println("ok:  ", l)
	}
	for _, r := range result.Regressions {
		fmt.Println("FAIL:", r)
	}
	if len(result.Regressions) > 0 {
		fmt.Printf("benchdiff: %d regression(s) comparing %s -> %s\n", len(result.Regressions), basePath, newPath)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: no regressions (%d cells compared)\n", len(result.OK))
}
