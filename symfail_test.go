package symfail

import (
	"math"
	"testing"
	"time"

	"symfail/internal/analysis"
	"symfail/internal/phone"
)

// smallCfg is a reduced field study: enough data for shape assertions,
// fast enough for `go test`.
func smallCfg(seed uint64) FieldStudyConfig {
	return FieldStudyConfig{
		Seed:       seed,
		Phones:     10,
		Duration:   5 * phone.StudyMonth,
		JoinWindow: phone.StudyMonth,
	}
}

func TestFieldStudyEndToEnd(t *testing.T) {
	fs, err := RunFieldStudy(smallCfg(42))
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Loggers) != 10 || len(fs.Fleet.Devices) != 10 {
		t.Fatalf("fleet size wrong")
	}
	if got := len(fs.Dataset.Devices()); got != 10 {
		t.Fatalf("dataset devices = %d", got)
	}
	rep := fs.Study.MTBF()
	if rep.Freezes == 0 || rep.SelfShutdowns == 0 {
		t.Fatalf("no failures detected: %+v", rep)
	}
	// Shape: MTBFr and MTBS within the paper's order of magnitude.
	if rep.MTBFrHours < 150 || rep.MTBFrHours > 700 {
		t.Errorf("MTBFr = %.0f h (paper: 313)", rep.MTBFrHours)
	}
	if rep.MTBSHours < 120 || rep.MTBSHours > 550 {
		t.Errorf("MTBS = %.0f h (paper: 250)", rep.MTBSHours)
	}
	if rep.MTBSHours >= rep.MTBFrHours {
		t.Errorf("self-shutdowns should out-rate freezes (MTBS %.0f vs MTBFr %.0f)",
			rep.MTBSHours, rep.MTBFrHours)
	}
	if rep.FailureEveryDays < 4 || rep.FailureEveryDays > 25 {
		t.Errorf("failure every %.1f days (paper: ~11)", rep.FailureEveryDays)
	}
}

func TestFieldStudyLoggerAgreesWithOracle(t *testing.T) {
	fs, err := RunFieldStudy(smallCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	// The logger's freeze count must track ground truth closely on phones
	// that were never serviced (a master reset wipes the pre-service log
	// from flash; each phone may additionally miss its final, un-rebooted
	// freeze).
	loggedByDevice := make(map[string]int)
	for _, hl := range fs.Study.HLEvents(analysis.HLFreeze) {
		loggedByDevice[hl.Device]++
	}
	truthFreezes, logged, unserviced := 0, 0, 0
	for _, d := range fs.Fleet.Devices {
		if d.ServiceVisits() > 0 {
			continue
		}
		unserviced++
		truthFreezes += d.Oracle().Count(phone.TruthFreeze)
		logged += loggedByDevice[d.ID()]
	}
	if unserviced == 0 {
		t.Skip("every phone was serviced; nothing to compare")
	}
	if diff := truthFreezes - logged; diff < 0 || diff > unserviced {
		t.Errorf("oracle freezes = %d, logged = %d over %d unserviced phones",
			truthFreezes, logged, unserviced)
	}
	// Self-shutdown identification: the threshold should classify with
	// only a few percent of cross-contamination.
	selfByDevice := make(map[string]int)
	for _, hl := range fs.Study.HLEvents(analysis.HLSelfShutdown) {
		selfByDevice[hl.Device]++
	}
	truthSelf, loggedSelf := 0, 0
	for _, d := range fs.Fleet.Devices {
		if d.ServiceVisits() > 0 {
			continue
		}
		truthSelf += d.Oracle().Count(phone.TruthSelfShutdown)
		loggedSelf += selfByDevice[d.ID()]
	}
	if truthSelf == 0 {
		t.Fatal("no ground-truth self-shutdowns")
	}
	ratio := float64(loggedSelf) / float64(truthSelf)
	if math.Abs(ratio-1) > 0.15 {
		t.Errorf("self-shutdown identification ratio = %.2f (logged %d / truth %d)",
			ratio, loggedSelf, truthSelf)
	}
}

func TestFieldStudyDominantPanicIsKernExec3(t *testing.T) {
	fs, err := RunFieldStudy(smallCfg(11))
	if err != nil {
		t.Fatal(err)
	}
	rows := fs.Study.PanicTable()
	if len(rows) == 0 {
		t.Fatal("no panics")
	}
	if rows[0].Key != "KERN-EXEC 3" {
		t.Errorf("dominant panic = %s, want KERN-EXEC 3", rows[0].Key)
	}
	if rows[0].Percent < 35 {
		t.Errorf("KERN-EXEC 3 share = %.1f%%, want dominant", rows[0].Percent)
	}
}

func TestFieldStudyCoalescenceNearPaper(t *testing.T) {
	fs, err := RunFieldStudy(smallCfg(13))
	if err != nil {
		t.Fatal(err)
	}
	st := fs.Study.Coalesce()
	if st.TotalPanics < 30 {
		t.Fatalf("too few panics: %d", st.TotalPanics)
	}
	if st.RelatedPercent < 30 || st.RelatedPercent > 72 {
		t.Errorf("related panics = %.1f%% (paper: 51%%)", st.RelatedPercent)
	}
	all := fs.Study.RelatedPercentWithAllShutdowns()
	if all < st.RelatedPercent {
		t.Errorf("all-shutdowns related %.1f%% < standard %.1f%%", all, st.RelatedPercent)
	}
	if all-st.RelatedPercent > 15 {
		t.Errorf("including user shutdowns moved the relation by %.1f points (paper: ~4)",
			all-st.RelatedPercent)
	}
}

func TestFieldStudyOverTCPCollector(t *testing.T) {
	cfg := smallCfg(17)
	cfg.Phones = 4
	cfg.Duration = 2 * phone.StudyMonth
	fs, srv, err := RunFieldStudyWithCollector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	// Weekly periodic uploads plus the final one per phone.
	if srv.Uploads() < 4 {
		t.Errorf("uploads = %d, want at least one per phone", srv.Uploads())
	}
	if got := len(fs.Dataset.Devices()); got != 4 {
		t.Errorf("dataset devices = %d", got)
	}
	if len(fs.Study.Panics()) == 0 && len(fs.Study.HLEvents()) == 0 {
		t.Error("TCP-collected study is empty")
	}
}

func TestFieldStudyDeterminism(t *testing.T) {
	a, err := RunFieldStudy(smallCfg(23))
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunFieldStudy(smallCfg(23))
	if err != nil {
		t.Fatal(err)
	}
	ra, rb := a.Study.MTBF(), b.Study.MTBF()
	if ra != rb {
		t.Errorf("MTBF reports diverged: %+v vs %+v", ra, rb)
	}
	if len(a.Study.Panics()) != len(b.Study.Panics()) {
		t.Error("panic counts diverged")
	}
}

func TestForumStudyFacade(t *testing.T) {
	rep := RunForumStudy(5)
	if rep.FailureReports < 500 || rep.FailureReports > 560 {
		t.Errorf("failure reports = %d", rep.FailureReports)
	}
	posts := ForumCorpus(5)
	if len(posts) <= rep.FailureReports {
		t.Errorf("corpus (%d) should include noise beyond the %d reports",
			len(posts), rep.FailureReports)
	}
}

func TestDefaultFieldStudyConfig(t *testing.T) {
	cfg := DefaultFieldStudyConfig(1)
	if cfg.Phones != 25 || cfg.Duration != 14*phone.StudyMonth {
		t.Errorf("defaults = %+v", cfg)
	}
	if cfg.JoinWindow != 9*phone.StudyMonth {
		t.Errorf("join window = %v", cfg.JoinWindow)
	}
}

var _ = time.Second

func TestFieldStudyWithExtensions(t *testing.T) {
	cfg := smallCfg(31)
	cfg.Phones = 4
	cfg.Duration = 2 * phone.StudyMonth
	cfg.WithUserReporter = true
	cfg.WithDExc = true
	fs, err := RunFieldStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Reporters) != 4 {
		t.Errorf("reporters = %d", len(fs.Reporters))
	}
	if fs.BaselineDataset == nil || len(fs.BaselineDataset.Devices()) != 4 {
		t.Fatal("baseline dataset missing")
	}
	// D_EXC captured the same panic stream the full logger did.
	base := analysis.New(fs.BaselineDataset.AllRecords(), analysis.Options{})
	if got, want := len(base.Panics()), len(fs.Study.Panics()); got != want {
		t.Errorf("baseline panics = %d, full = %d", got, want)
	}
	if len(base.HLEvents()) != 0 {
		t.Error("baseline reconstructed HL events without a heartbeat")
	}
}

func TestFieldStudyRejectsNegativeJoinWindow(t *testing.T) {
	cfg := smallCfg(1)
	cfg.JoinWindow = -time.Hour
	if _, err := RunFieldStudy(cfg); err == nil {
		t.Error("negative join window accepted")
	}
}

func TestFieldStudyDefaultsApplied(t *testing.T) {
	// Zero Phones/Duration fall back to the paper's deployment shape; use
	// a tiny duration override to keep the test fast.
	fs, err := RunFieldStudy(FieldStudyConfig{Seed: 3, Duration: phone.StudyMonth / 2, JoinWindow: 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(fs.Fleet.Devices) != 25 {
		t.Errorf("default fleet size = %d", len(fs.Fleet.Devices))
	}
}

func TestCollectorUploadFailureSurfaces(t *testing.T) {
	cfg := smallCfg(5)
	cfg.Phones = 2
	cfg.Duration = phone.StudyMonth / 2
	cfg.CollectorAddr = "127.0.0.1:1" // nothing listens there
	if _, err := RunFieldStudy(cfg); err == nil {
		t.Error("upload to dead collector did not error")
	}
}

func TestPeriodicUploadsSurviveMasterReset(t *testing.T) {
	// Force frequent service visits; the server-side (merged, periodically
	// uploaded) dataset must retain records the final flash lost to the
	// master reset.
	cfg := FieldStudyConfig{
		Seed:       19,
		Phones:     5,
		Duration:   4 * phone.StudyMonth,
		JoinWindow: 0,
		Device: func(seed uint64) phone.Config {
			c := phone.DefaultConfig(seed)
			c.ServiceFailureThreshold = 2
			c.ServiceProb = 1
			return c
		},
	}
	fs, srv, err := RunFieldStudyWithCollector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	serviced := 0
	for _, d := range fs.Fleet.Devices {
		serviced += d.ServiceVisits()
	}
	if serviced == 0 {
		t.Fatal("no phone was serviced; the scenario did not trigger")
	}

	// Flash-only view: what a final-collection-only study would see.
	flash := 0
	for _, l := range fs.Loggers {
		flash += len(l.Records())
	}
	server := 0
	for _, id := range fs.Dataset.Devices() {
		server += len(fs.Dataset.Records(id))
	}
	if server <= flash {
		t.Errorf("server records (%d) should exceed final flash records (%d) after %d master resets",
			server, flash, serviced)
	}
}
