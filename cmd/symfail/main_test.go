package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

// captureStdout redirects os.Stdout around fn.
func captureStdout(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := fn()
	_ = w.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

func TestRunQuickPrintsEveryArtefact(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-quick", "-seed", "5"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"Table 1", "Section 4.1", "Figure 2", "Section 6",
		"Table 2", "Figure 3", "Figure 4", "Figure 5",
		"Table 3", "Figure 6", "Table 4",
		"MTBFr", "KERN-EXEC 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunExtras(t *testing.T) {
	out, err := captureStdout(t, func() error {
		return run([]string{"-quick", "-seed", "5", "-extras"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "Extras — analyses beyond the paper") {
		t.Error("extras section missing")
	}
	if !strings.Contains(out, "user-reported output failures") {
		t.Error("user-report section missing")
	}
}

func TestRunBadFlag(t *testing.T) {
	_, err := captureStdout(t, func() error {
		return run([]string{"-definitely-not-a-flag"})
	})
	if err == nil {
		t.Error("bad flag accepted")
	}
}

// TestRunWorkersEquivalent runs the same quick study serially and sharded
// and requires identical output — every table, figure and headline number —
// modulo the one line that reports wall-clock time, which is exactly the
// only thing -workers may change.
func TestRunWorkersEquivalent(t *testing.T) {
	strip := func(out string) string {
		var kept []string
		for _, line := range strings.Split(out, "\n") {
			if strings.Contains(line, "wall-clock") {
				continue
			}
			kept = append(kept, line)
		}
		return strings.Join(kept, "\n")
	}
	serial, err := captureStdout(t, func() error {
		return run([]string{"-quick", "-seed", "5", "-workers", "1"})
	})
	if err != nil {
		t.Fatal(err)
	}
	sharded, err := captureStdout(t, func() error {
		return run([]string{"-quick", "-seed", "5", "-workers", "4"})
	})
	if err != nil {
		t.Fatal(err)
	}
	if strip(serial) != strip(sharded) {
		t.Error("-workers 4 changed the printed study; parallelism must be output-invariant")
	}
}
