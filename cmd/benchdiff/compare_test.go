package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func load(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// TestCompareCatchesThroughputRegression is the committed negative test the
// ISSUE requires: a 20% phone-hours/s drop must fail the 10% gate.
func TestCompareCatchesThroughputRegression(t *testing.T) {
	res, err := Compare(load(t, "parallel_base.json"), load(t, "parallel_regressed.json"), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 1 {
		t.Fatalf("regressions = %v, want exactly the 25-phone throughput drop", res.Regressions)
	}
	if !strings.Contains(res.Regressions[0], "phoneHoursPerSec") || !strings.Contains(res.Regressions[0], "phones=25") {
		t.Errorf("unexpected regression line: %s", res.Regressions[0])
	}
	// The 1000-phone cell dropped <2%: inside the allowance, reported ok.
	found := false
	for _, l := range res.OK {
		if strings.Contains(l, "phones=1000") && strings.Contains(l, "phoneHoursPerSec") {
			found = true
		}
	}
	if !found {
		t.Errorf("1000-phone cell not reported ok: %v", res.OK)
	}
}

// TestCompareCatchesAllocIncrease: the fixture leaks one allocation per
// record (8801 -> 9469 over 668 records, +7.6%) — far beyond allocSlack —
// and fails even though every throughput metric improved.
func TestCompareCatchesAllocIncrease(t *testing.T) {
	res, err := Compare(load(t, "analysis_base.json"), load(t, "analysis_alloc_up.json"), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 1 || !strings.Contains(res.Regressions[0], "allocsPerOp") {
		t.Fatalf("regressions = %v, want exactly the allocsPerOp increase", res.Regressions)
	}
}

// TestCompareAllocJitterTolerated: ±1 alloc in ~9k (a lazy init averaged
// across bench iterations) stays inside allocSlack and does not trip the
// gate; the slack is two orders of magnitude below a real per-record leak.
func TestCompareAllocJitterTolerated(t *testing.T) {
	base := load(t, "analysis_base.json")
	jittered := strings.Replace(string(base), `"allocsPerOp": 8801`, `"allocsPerOp": 8802`, 1)
	if jittered == string(base) {
		t.Fatal("fixture edit did not apply; check analysis_base.json")
	}
	res, err := Compare(base, []byte(jittered), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 0 {
		t.Fatalf("regressions = %v, want none for +1 alloc jitter", res.Regressions)
	}
}

// TestCompareSelfIsClean: a report against itself has no regressions, and
// every gated metric shows up in the ok list.
func TestCompareSelfIsClean(t *testing.T) {
	for _, name := range []string{"parallel_base.json", "analysis_base.json"} {
		data := load(t, name)
		res, err := Compare(data, data, 0.10)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Regressions) != 0 {
			t.Errorf("%s vs itself: regressions %v", name, res.Regressions)
		}
		if len(res.OK) == 0 {
			t.Errorf("%s vs itself: nothing compared", name)
		}
	}
}

// TestCompareCellChurn: cells on one side only are notes, never failures —
// baselines may grow cells (new benchmark points) or temporarily lack them
// (a filtered -bench run).
func TestCompareCellChurn(t *testing.T) {
	res, err := Compare(load(t, "parallel_base.json"), load(t, "analysis_base.json"), 0.10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Regressions) != 0 {
		t.Errorf("disjoint grids regressed: %v", res.Regressions)
	}
	if len(res.Notes) != 3 {
		t.Errorf("notes = %v, want 2 missing + 1 new", res.Notes)
	}
}

// TestCompareRealBaselines: the committed BENCH_*.json at the repo root
// must each be self-clean through the gate — guards against the tool and
// the reports drifting apart schema-wise.
func TestCompareRealBaselines(t *testing.T) {
	for _, name := range []string{"BENCH_parallel.json", "BENCH_analysis.json"} {
		data, err := os.ReadFile(filepath.Join("..", "..", name))
		if err != nil {
			t.Skipf("%s not present: %v", name, err)
		}
		res, err := Compare(data, data, 0.10)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if len(res.Regressions) != 0 || len(res.OK) == 0 {
			t.Errorf("%s vs itself: regressions=%v ok=%d", name, res.Regressions, len(res.OK))
		}
	}
}
