package phone

import (
	"sort"
	"strings"

	"symfail/internal/symbos"
)

// Stock application names, matching the applications of the paper's
// Table 4.
const (
	AppTelephone = "Telephone"
	AppMessages  = "Messages"
	AppContacts  = "Contacts"
	AppCamera    = "Camera"
	AppClock     = "Clock"
	AppLog       = "Log"
	AppFExplorer = "FExplorer"
	AppBTBrowser = "BT_Browser"
	AppTomTom    = "TomTom"
	AppMenu      = "Menu"
)

// activityApps maps each activity class to the applications it opens. The
// first entry is the foreground application (the fault victim by default).
var activityApps = map[Activity][]string{
	ActVoiceCall: {AppTelephone, AppLog},
	ActMessage:   {AppMessages},
	ActContacts:  {AppContacts},
	ActCamera:    {AppCamera},
	ActBluetooth: {AppBTBrowser},
	ActNav:       {AppTomTom},
	ActBrowseFS:  {AppFExplorer},
	ActClock:     {AppClock},
	ActAudio:     {AppMessages},
}

// App is one running application: a process with a UI flag (UI applications
// are watched by the View Server) and a tiny in-process service so that the
// client/server defect paths (USER 70, KERN-SVR 0) have somewhere to live.
type App struct {
	name    string
	ui      bool
	visible bool // listed by the Application Architecture Server
	dev     *Device
	proc    *symbos.Process
	svc     *symbos.Server
}

// Name returns the application name.
func (a *App) Name() string { return a.name }

// Proc returns the application's process.
func (a *App) Proc() *symbos.Process { return a.proc }

// Alive reports whether the application is still running.
func (a *App) Alive() bool { return a.proc.Alive() }

// LaunchApp starts (or returns the already-running) named application.
func (d *Device) LaunchApp(name string) *App {
	return d.launch(name, true)
}

// shellApp returns the resident idle shell (the standby screen). It is not
// a user-visible application, so the Application Architecture Server does
// not list it.
func (d *Device) shellApp() *App {
	return d.launch("Shell", false)
}

func (d *Device) launch(name string, visible bool) *App {
	if a, ok := d.apps[name]; ok && a.Alive() {
		return a
	}
	proc := d.kernel.StartProcess(name, false)
	proc.Main().WatchViewSrv() // all stock apps are UI applications
	a := &App{name: name, ui: true, visible: visible, dev: d, proc: proc}
	a.svc = symbos.AdoptServer(proc, func(m *symbos.Message) {
		switch m.Op {
		case OpPing:
			m.Complete(symbos.KErrNone)
		case OpCorruptComplete:
			m.NullifyPtr()
			m.Complete(symbos.KErrNone)
		default:
			m.Complete(symbos.KErrNotSupported)
		}
	})
	d.apps[name] = a
	return a
}

// CloseApp exits the named application if it is running.
func (d *Device) CloseApp(name string) {
	a, ok := d.apps[name]
	if !ok {
		return
	}
	delete(d.apps, name)
	if a.Alive() {
		d.kernel.TerminateProcess(a.proc)
	}
}

// AppRunning reports whether the named application is currently running.
func (d *Device) AppRunning(name string) bool {
	a, ok := d.apps[name]
	return ok && a.Alive()
}

// RunningApps returns the user-visible applications currently running, in
// lexical order — this is what the Application Architecture Server reports
// to the logger's Running Applications Detector.
func (d *Device) RunningApps() []string {
	out := make([]string, 0, len(d.apps))
	for name, a := range d.apps {
		if a.Alive() && a.visible {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// runningAppsList joins RunningApps for log records.
func (d *Device) runningAppsList() string {
	return strings.Join(d.RunningApps(), ",")
}

// randomRunningApp picks a running application uniformly (nil when none).
func (d *Device) randomRunningApp() *App {
	names := d.RunningApps()
	if len(names) == 0 {
		return nil
	}
	return d.apps[names[d.rng.Intn(len(names))]]
}

// perform exercises the healthy code path of an application for the given
// activity. These are not placebo calls: they run real symbos operations
// (descriptors, list boxes, heap, client/server) so that the phone is
// "using" the OS exactly where the fault model later misuses it.
func (a *App) perform(act Activity) {
	d := a.dev
	k := d.kernel
	k.Exec(a.proc.Main(), string(act), func() {
		t := a.proc.Main()
		switch act {
		case ActVoiceCall:
			num := symbos.NewBuf(k, 32)
			num.Copy("+3908112345")
			num.Append("67")
			sess := d.dbLog.Connect(t)
			sess.SendReceive(OpPing, "call "+num.String())
			sess.Close()
		case ActMessage:
			ed := symbos.NewEdwin(k, 160)
			ed.BeginInlineEdit()
			ed.CommitInlineEdit("see you at the lab at ")
			ed.BeginInlineEdit()
			ed.CommitInlineEdit("9:30")
			reply := symbos.NewBuf(k, 128)
			a.msgsQueryInto(OpSendMessage, ed.Text().String(), reply)
		case ActContacts:
			lb := symbos.NewListBox(k)
			for _, n := range []string{"alice", "bob", "carol", "dave"} {
				lb.AddItem(n)
			}
			lb.SetCurrentItem(d.rng.Intn(lb.Count()))
			lb.Draw()
		case ActCamera:
			frame := a.proc.Heap().AllocL(t, 64<<10, "viewfinder")
			shot := a.proc.Heap().AllocL(t, 128<<10, "jpeg")
			a.proc.Heap().Free(frame)
			a.proc.Heap().Free(shot)
		case ActBluetooth:
			sess := d.appArch.Connect(t)
			sess.SendReceive(OpPing, "inquiry")
			sess.Close()
		case ActNav:
			route := symbos.TwoPhaseConstructL(t, a.proc.Heap(), 32<<10, "route", func(*symbos.Cell) {})
			a.proc.Heap().Free(route)
		case ActBrowseFS:
			path := symbos.NewBuf(k, 64)
			path.Copy("C:\\Documents\\photos")
			path.Append("\\2006")
			_ = path.Mid(3, 9)
		case ActClock:
			ao := t.NewActiveObject("alarm", 1, func(int) {})
			tm := symbos.NewTimer(ao)
			tm.After(d.rng.ExpDuration(30 * 60e9))
			tm.Cancel()
		case ActAudio:
			ac := symbos.NewAudioClient(k)
			ac.SetVolume(1 + d.rng.Intn(9))
		}
	})
}

// msgsQueryInto is the messaging client library: it issues a request to the
// Message Server and writes the asynchronous reply into the caller's
// descriptor. A reply longer than the descriptor is the defect behind
// "MSGS Client 3: failed to write data into asynchronous call descriptor to
// be passed back to client".
func (a *App) msgsQueryInto(op int, payload string, into *symbos.Buf) int {
	d := a.dev
	sess := d.msgSrv.Connect(a.proc.Main())
	defer sess.Close()
	resp, code := sess.Query(op, payload)
	if code != symbos.KErrNone {
		return code
	}
	if len(resp) > into.MaxLength() {
		d.kernel.Raise(symbos.CatMsgsClient, symbos.TypeMsgsAsyncWrite,
			"failed to write data into asynchronous call descriptor to be passed back to client")
	}
	into.Copy(resp)
	return symbos.KErrNone
}
