package symbos

import "fmt"

// Heap is a process heap. It models the two properties the study cares
// about: allocation failure must be recoverable via leave (memory is
// scarce on a phone), and misuse — double frees, dangling pointers —
// manifests as KERN-EXEC 3 access violations, the dominant panic in
// Table 2.
type Heap struct {
	kernel    *Kernel
	limit     int
	allocated int
	nextID    int
	cells     map[int]*Cell
	allocs    uint64
	frees     uint64
}

func newHeap(k *Kernel, limit int) *Heap {
	return &Heap{
		kernel: k,
		limit:  limit,
		cells:  make(map[int]*Cell),
	}
}

// Cell is one heap allocation.
type Cell struct {
	id    int
	size  int
	freed bool
	heap  *Heap
	tag   string
}

// Size returns the cell's size in bytes.
func (c *Cell) Size() int { return c.size }

// Freed reports whether the cell has been released.
func (c *Cell) Freed() bool { return c.freed }

// Tag returns the allocation tag (for diagnostics and leak reports).
func (c *Cell) Tag() string { return c.tag }

// AllocL allocates size bytes, leaving with KErrNoMemory when the heap
// quota is exhausted (User::AllocL semantics). It must be called from a
// thread context so the leave can be trapped.
func (h *Heap) AllocL(t *Thread, size int, tag string) *Cell {
	if size <= 0 {
		h.kernel.Raise(CatE32UserCBase, TypeCBase91,
			fmt.Sprintf("heap alloc of non-positive size %d", size))
	}
	if h.allocated+size > h.limit {
		t.Leave(KErrNoMemory)
	}
	h.nextID++
	c := &Cell{id: h.nextID, size: size, heap: h, tag: tag}
	h.cells[c.id] = c
	h.allocated += size
	h.allocs++
	return c
}

// Free releases a cell. Releasing a cell twice, or a cell from another
// heap, is heap corruption: on real hardware this turns into an access
// violation sooner or later, so the kernel raises KERN-EXEC 3.
func (h *Heap) Free(c *Cell) {
	if c == nil {
		return // Symbian User::Free(NULL) is a no-op
	}
	if c.heap != h {
		h.kernel.Raise(CatKernExec, TypeUnhandledException,
			"access violation: freeing a cell owned by another heap")
	}
	if c.freed {
		h.kernel.Raise(CatKernExec, TypeUnhandledException,
			"access violation: double free of heap cell "+c.tag)
	}
	c.freed = true
	h.allocated -= c.size
	delete(h.cells, c.id)
	h.frees++
}

// Allocated returns the number of live bytes.
func (h *Heap) Allocated() int { return h.allocated }

// Limit returns the heap quota in bytes.
func (h *Heap) Limit() int { return h.limit }

// SetLimit adjusts the quota (used to model memory pressure).
func (h *Heap) SetLimit(n int) { h.limit = n }

// LiveCells returns the number of outstanding allocations — nonzero at
// application exit means a leak, the defect class the forum study blames
// for "random wallpaper disappearing and power cycling".
func (h *Heap) LiveCells() int { return len(h.cells) }

// Counts returns cumulative allocation and free counts.
func (h *Heap) Counts() (allocs, frees uint64) { return h.allocs, h.frees }

// Ptr is a simulated pointer: possibly nil, possibly dangling. Its Deref
// is the mechanistic source of KERN-EXEC 3 — the paper's most frequent
// panic, "caused, for example, by dereferencing NULL".
type Ptr struct {
	cell   *Cell
	kernel *Kernel
}

// NullPtr returns a nil pointer whose dereference raises KERN-EXEC 3.
func NullPtr(k *Kernel) Ptr { return Ptr{kernel: k} }

// PtrTo returns a pointer to the given cell.
func PtrTo(k *Kernel, c *Cell) Ptr { return Ptr{cell: c, kernel: k} }

// Nil reports whether the pointer is null.
func (p Ptr) Nil() bool { return p.cell == nil }

// Dangling reports whether the pointer refers to freed memory.
func (p Ptr) Dangling() bool { return p.cell != nil && p.cell.freed }

// Deref accesses the pointed-to memory. A null or dangling pointer raises
// KERN-EXEC 3 (unhandled exception / access violation).
func (p Ptr) Deref() *Cell {
	if p.cell == nil {
		p.kernel.Raise(CatKernExec, TypeUnhandledException,
			"access violation: dereferencing NULL")
	}
	if p.cell.freed {
		p.kernel.Raise(CatKernExec, TypeUnhandledException,
			"access violation: dereferencing freed cell "+p.cell.tag)
	}
	return p.cell
}

// TwoPhaseConstructL models Symbian's two-phase construction paradigm
// (section 2): allocate the object, push it on the cleanup stack, run the
// second-phase constructor (which may leave), then pop. If construction
// leaves, the cleanup stack frees the partially constructed object, so no
// memory leaks even on the error path.
func TwoPhaseConstructL(t *Thread, h *Heap, size int, tag string, constructL func(*Cell)) *Cell {
	c := h.AllocL(t, size, tag)
	t.PushL(func() { h.Free(c) })
	constructL(c)
	t.Pop(1)
	return c
}
