package stream_test

import (
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"testing/quick"
	"time"

	"symfail/internal/analysis"
	"symfail/internal/analysis/stream"
	"symfail/internal/core"
	"symfail/internal/sim"
)

// randomDevices builds a random-but-plausible per-device record set obeying
// the stream input contract (per-device non-decreasing Time and PrevTime).
// More devices than analysis's randomDataset so shard splits are meaningful.
func randomDevices(seed uint64) map[string][]core.Record {
	r := sim.NewRand(seed)
	ds := make(map[string][]core.Record)
	devices := 4 + r.Intn(5)
	for d := 0; d < devices; d++ {
		id := string(rune('a' + d))
		recs := []core.Record{{Kind: core.KindBoot, Time: 0, Boot: 1, Detected: core.DetectedFirstBoot}}
		now := sim.Epoch
		boot := 1
		for i := 0; i < 5+r.Intn(40); i++ {
			now = now.Add(time.Duration(r.Exp(float64(6 * time.Hour))))
			if r.Bool(0.4) {
				recs = append(recs, core.Record{
					Kind: core.KindPanic, Time: int64(now),
					Category: []string{"KERN-EXEC", "USER", "E32USER-CBase"}[r.Intn(3)],
					PType:    r.Intn(100),
					Activity: []string{"voice-call", "message", "unspecified"}[r.Intn(3)],
					Apps:     []string{"Messages"}[:r.Intn(2)],
				})
				continue
			}
			boot++
			off := r.Exp(float64(10 * time.Minute))
			detected := core.DetectedShutdown
			prev := core.BeatReboot
			if r.Bool(0.3) {
				detected = core.DetectedFreeze
				prev = core.BeatAlive
			}
			bootAt := now.Add(time.Duration(off))
			recs = append(recs, core.Record{
				Kind: core.KindBoot, Time: int64(bootAt), Boot: boot,
				Detected: detected, PrevBeat: prev, PrevTime: int64(now),
				OffSeconds: time.Duration(off).Seconds(),
			})
			now = bootAt
		}
		ds[id] = recs
	}
	return ds
}

// sortedIDs returns the dataset's device IDs in sorted (generation) order.
func sortedIDs(ds map[string][]core.Record) []string {
	ids := make([]string, 0, len(ds))
	for d := 0; d < len(ds); d++ {
		ids = append(ids, string(rune('a'+d)))
	}
	return ids
}

// feedAll feeds every device of ds into acc in sorted-device order.
func feedAll(ds map[string][]core.Record, add func(string), observe func(string, core.Record)) {
	for _, id := range sortedIDs(ds) {
		if add != nil {
			add(id)
		}
		for _, r := range ds[id] {
			observe(id, r)
		}
	}
}

// addDevicer is implemented by the accumulators that track zero-record
// devices (Tables, Collect).
type addDevicer interface{ AddDevice(string) }

// feedAcc feeds the given devices into an accumulator, using AddDevice when
// the type supports it.
func feedAcc(acc stream.Accumulator, ds map[string][]core.Record, ids []string) {
	ad, _ := acc.(addDevicer)
	for _, id := range ids {
		if ad != nil {
			ad.AddDevice(id)
		}
		for _, r := range ds[id] {
			acc.Observe(id, r)
		}
	}
}

// snapJSON is the equivalence criterion: snapshots must marshal to
// identical bytes.
func snapJSON(t *testing.T, acc stream.Accumulator) []byte {
	t.Helper()
	blob, err := json.Marshal(acc.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestStreamRegisteredAccumulators cross-checks NewRegistered against the
// RegisteredAccumulators table: same keys, and each key names its concrete
// type (the dynamic half of symlint's accmerge check).
func TestStreamRegisteredAccumulators(t *testing.T) {
	accs := stream.NewRegistered(stream.Config{})
	if len(accs) != len(stream.RegisteredAccumulators) {
		t.Errorf("NewRegistered has %d entries, RegisteredAccumulators %d", len(accs), len(stream.RegisteredAccumulators))
	}
	for name := range stream.RegisteredAccumulators {
		acc, ok := accs[name]
		if !ok {
			t.Errorf("registered type %s missing from NewRegistered", name)
			continue
		}
		if got := reflect.TypeOf(acc).Elem().Name(); got != name {
			t.Errorf("NewRegistered[%q] builds a %s", name, got)
		}
	}
	for name := range accs {
		if !stream.RegisteredAccumulators[name] {
			t.Errorf("NewRegistered key %s not in RegisteredAccumulators", name)
		}
	}
}

// TestStreamMergeOrderInsensitive is the merge-law property: for every
// registered accumulator, any device-disjoint sharding merged in any order
// through any merge tree snapshots to the same bytes as one accumulator fed
// everything.
func TestStreamMergeOrderInsensitive(t *testing.T) {
	cfg := stream.Config{}
	f := func(seed uint64) bool {
		ds := randomDevices(seed)
		ids := sortedIDs(ds)
		r := sim.NewRand(seed ^ 0x5eed)
		shards := 2 + r.Intn(3)
		assign := make([][]string, shards)
		for _, id := range ids {
			s := r.Intn(shards)
			assign[s] = append(assign[s], id)
		}
		ok := true
		for name, whole := range stream.NewRegistered(cfg) {
			feedAcc(whole, ds, ids)
			want := snapJSON(t, whole)

			// Left fold in shuffled order.
			order := make([]int, shards)
			for i := range order {
				order[i] = i
			}
			r.Shuffle(shards, func(i, j int) { order[i], order[j] = order[j], order[i] })
			accs := make([]stream.Accumulator, shards)
			for i := range accs {
				accs[i] = stream.NewRegistered(cfg)[name]
				feedAcc(accs[i], ds, assign[order[i]])
			}
			root := accs[0]
			for _, part := range accs[1:] {
				if err := root.Merge(part); err != nil {
					t.Errorf("seed %d %s: merge: %v", seed, name, err)
					ok = false
				}
			}
			if got := snapJSON(t, root); string(got) != string(want) {
				t.Errorf("seed %d %s: left-fold merge differs from whole:\n got %s\nwant %s", seed, name, got, want)
				ok = false
			}

			// Associativity: a right-leaning merge tree over a different
			// 2-way split gives the same bytes.
			mk := func(devs []string) stream.Accumulator {
				a := stream.NewRegistered(cfg)[name]
				feedAcc(a, ds, devs)
				return a
			}
			cut := 1 + r.Intn(len(ids)-1)
			left, right := mk(ids[:cut]), mk(ids[cut:])
			if err := right.Merge(left); err != nil {
				t.Errorf("seed %d %s: tree merge: %v", seed, name, err)
				ok = false
			}
			if got := snapJSON(t, right); string(got) != string(want) {
				t.Errorf("seed %d %s: right-absorbing merge differs from whole", seed, name)
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestStreamMergeAfterSealErrors: Seal is destructive, and a sealed
// accumulator can neither merge nor be merged. Snapshot, by contrast, is an
// epoch read — it must leave the accumulator live and mergeable.
func TestStreamMergeAfterSealErrors(t *testing.T) {
	ds := randomDevices(3)
	for name := range stream.RegisteredAccumulators {
		cfg := stream.Config{}
		sealed := stream.NewRegistered(cfg)[name]
		feedAcc(sealed, ds, []string{"a"})
		_ = sealed.Snapshot() // epoch snapshot: must NOT seal
		other := stream.NewRegistered(cfg)[name]
		feedAcc(other, ds, []string{"c"})
		if err := sealed.Merge(other); err != nil {
			t.Errorf("%s: Merge after epoch Snapshot = %v, want nil", name, err)
		}
		sealed.Seal()
		live := stream.NewRegistered(cfg)[name]
		feedAcc(live, ds, []string{"b"})
		if err := sealed.Merge(live); !errors.Is(err, stream.ErrSealed) {
			t.Errorf("%s: sealed.Merge(live) = %v, want ErrSealed", name, err)
		}
		if err := live.Merge(sealed); !errors.Is(err, stream.ErrSealed) {
			t.Errorf("%s: live.Merge(sealed) = %v, want ErrSealed", name, err)
		}
	}
}

// TestStreamResnapshotLaw is the epoch-snapshot property: for every
// registered accumulator, a Snapshot taken mid-stream (cursors still holding
// pending events) is byte-identical to the sealed snapshot of a fresh
// accumulator fed exactly the same prefix — and taking it does not perturb
// the result of anything observed afterwards.
func TestStreamResnapshotLaw(t *testing.T) {
	type op struct {
		id string
		r  core.Record
	}
	f := func(seed uint64) bool {
		ds := randomDevices(seed)
		ids := sortedIDs(ds)
		// Flatten to one interleaved feed order (round-robin across devices).
		var ops []op
		for i := 0; ; i++ {
			fed := false
			for _, id := range ids {
				if i < len(ds[id]) {
					ops = append(ops, op{id, ds[id][i]})
					fed = true
				}
			}
			if !fed {
				break
			}
		}
		r := sim.NewRand(seed ^ 0xc0de)
		cut := r.Intn(len(ops) + 1)
		ok := true
		for name, acc := range stream.NewRegistered(stream.Config{}) {
			mk := func(n int, seal bool) []byte {
				a := stream.NewRegistered(stream.Config{})[name]
				ad, _ := a.(addDevicer)
				for _, id := range ids {
					if ad != nil {
						ad.AddDevice(id)
					}
				}
				for _, o := range ops[:n] {
					a.Observe(o.id, o.r)
				}
				if seal {
					a.Seal()
				}
				return snapJSON(t, a)
			}
			if ad, _ := acc.(addDevicer); ad != nil {
				for _, id := range ids {
					ad.AddDevice(id)
				}
			}
			for _, o := range ops[:cut] {
				acc.Observe(o.id, o.r)
			}
			// Epoch snapshot mid-stream == sealed snapshot of the prefix.
			if mid, want := snapJSON(t, acc), mk(cut, true); string(mid) != string(want) {
				t.Errorf("seed %d %s cut %d/%d: epoch snapshot differs from sealed prefix:\n got %s\nwant %s",
					seed, name, cut, len(ops), mid, want)
				ok = false
			}
			// Snapshotting must not have perturbed the live accumulator.
			for _, o := range ops[cut:] {
				acc.Observe(o.id, o.r)
			}
			if got, want := snapJSON(t, acc), mk(len(ops), false); string(got) != string(want) {
				t.Errorf("seed %d %s cut %d/%d: feeding past an epoch snapshot diverged:\n got %s\nwant %s",
					seed, name, cut, len(ops), got, want)
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

// TestStreamMergeDeviceOverlap: shards must be device-disjoint (Monitor, a
// lossy tap fed at-least-once, is the documented exception).
func TestStreamMergeDeviceOverlap(t *testing.T) {
	ds := randomDevices(4)
	for name := range stream.RegisteredAccumulators {
		cfg := stream.Config{}
		a := stream.NewRegistered(cfg)[name]
		b := stream.NewRegistered(cfg)[name]
		feedAcc(a, ds, []string{"a", "b"})
		feedAcc(b, ds, []string{"b", "c"})
		err := a.Merge(b)
		if name == "Monitor" {
			if err != nil {
				t.Errorf("Monitor overlap merge = %v, want nil (overlap allowed)", err)
			}
			continue
		}
		if !errors.Is(err, stream.ErrDeviceOverlap) {
			t.Errorf("%s: overlap merge = %v, want ErrDeviceOverlap", name, err)
		}
	}
}

// TestStreamMergeTypeAndConfigMismatch: merging across concrete types or
// across thresholds is refused.
func TestStreamMergeTypeAndConfigMismatch(t *testing.T) {
	tbl := stream.NewTables(stream.Config{})
	col := stream.NewCollect(stream.Config{})
	if err := tbl.Merge(col); !errors.Is(err, stream.ErrTypeMismatch) {
		t.Errorf("Tables.Merge(Collect) = %v, want ErrTypeMismatch", err)
	}
	narrow := stream.NewTables(stream.Config{CoalescenceWindow: time.Minute})
	if err := tbl.Merge(narrow); !errors.Is(err, stream.ErrConfigMismatch) {
		t.Errorf("config mismatch merge = %v, want ErrConfigMismatch", err)
	}
	// WithDefaults-equal configs are the same config.
	filled := stream.NewTables(stream.Config{}.WithDefaults())
	if err := tbl.Merge(filled); err != nil {
		t.Errorf("defaulted-config merge = %v, want nil", err)
	}
}

// TestStreamTablesMatchesStudy: the composite accumulator fed interleaved
// records reproduces the batch Study snapshot byte for byte.
func TestStreamTablesMatchesStudy(t *testing.T) {
	f := func(seed uint64) bool {
		ds := randomDevices(seed)
		ids := sortedIDs(ds)
		want, err := json.Marshal(analysis.New(ds, analysis.Options{}).Snapshot())
		if err != nil {
			t.Fatal(err)
		}
		acc := stream.NewTables(stream.Config{})
		for _, id := range ids {
			acc.AddDevice(id)
		}
		// Round-robin across devices: arbitrary interleaving, per-device
		// order preserved.
		for i := 0; ; i++ {
			fed := false
			for _, id := range ids {
				if i < len(ds[id]) {
					acc.Observe(id, ds[id][i])
					fed = true
				}
			}
			if !fed {
				break
			}
		}
		got, err := json.Marshal(acc.Tables())
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("seed %d: stream snapshot differs from batch:\n got %s\nwant %s", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// TestStreamMonitor: the live tap deduplicates at-least-once delivery —
// replayed records and overlap merges count each distinct record once.
func TestStreamMonitor(t *testing.T) {
	m := stream.NewMonitor()
	rec := core.Record{Kind: core.KindPanic, Time: 1, Category: "KERN-EXEC", PType: 3}
	m.Observe("a", rec)
	m.Observe("a", rec) // duplicate delivery: counted once
	m.Observe("b", core.Record{Kind: core.KindBoot, Time: 2, Boot: 2})
	o := stream.NewMonitor()
	o.Observe("a", rec) // overlapping device, same record: still once
	o.Observe("a", core.Record{Kind: core.KindPanic, Time: 5, Category: "USER", PType: 7})
	if err := m.Merge(o); err != nil {
		t.Fatalf("overlap merge: %v", err)
	}
	ms := m.Snapshot().(*stream.MonitorSnapshot)
	if ms.Devices != 2 || ms.Records != 3 || ms.ByKind[core.KindPanic] != 2 {
		t.Errorf("monitor snapshot = %+v, want 2 devices, 3 records, 2 panics", ms)
	}
	// Live snapshots are fresh epoch values; after Seal the final one is cached.
	m.Seal()
	ms = m.Snapshot().(*stream.MonitorSnapshot)
	if m.Snapshot().(*stream.MonitorSnapshot) != ms {
		t.Error("second Snapshot after Seal returned a different value")
	}
}

// TestStreamPeek: progress counters grow as records are fed and never
// exceed the final totals.
func TestStreamPeek(t *testing.T) {
	ds := randomDevices(9)
	acc := stream.NewCollect(stream.Config{})
	last := stream.Peek{}
	feedAll(ds, acc.AddDevice, func(id string, r core.Record) {
		acc.Observe(id, r)
		p := acc.Peek()
		if p.Records != last.Records+1 {
			t.Fatalf("Peek.Records = %d after %d records", p.Records, last.Records+1)
		}
		if p.Panics < last.Panics || p.HLEvents < last.HLEvents || p.Reboots < last.Reboots {
			t.Fatal("Peek counters went backwards")
		}
		last = p
	})
	sn := acc.Snapshot().(*stream.CollectSnapshot)
	if last.Panics > sn.Panics || last.HLEvents > sn.HLEvents || last.Reboots > sn.Reboots {
		t.Errorf("final Peek %+v exceeds snapshot %+v", last, sn)
	}
	if len(sn.Devices) != len(ds) || sn.Records != last.Records {
		t.Errorf("snapshot devices/records = %d/%d, want %d/%d", len(sn.Devices), sn.Records, len(ds), last.Records)
	}
}

// TestStreamObserveAllocs bounds the steady-state per-record cost of the
// composite accumulator: observing a record must not allocate per record
// beyond the events it finalizes. Skipped under -race (instrumentation
// allocates).
func TestStreamObserveAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	acc := stream.NewTables(stream.Config{})
	acc.AddDevice("a")
	acc.Observe("a", core.Record{Kind: core.KindBoot, Time: 0, Boot: 1, Detected: core.DetectedFirstBoot})
	// Warm up so cursor buffers reach steady state.
	now := int64(sim.Epoch)
	boot := 1
	step := func() {
		boot++
		prev := now
		now += int64(time.Hour)
		acc.Observe("a", core.Record{
			Kind: core.KindBoot, Time: now, Boot: boot,
			Detected: core.DetectedFreeze, PrevBeat: core.BeatAlive,
			PrevTime: prev, OffSeconds: 30,
		})
	}
	for i := 0; i < 64; i++ {
		step()
	}
	// Each reboot an hour apart: every Observe finalizes exactly one prior
	// event, so steady state is reached; the budget covers the finalized
	// HLEvent plus bounded map/slice churn, not O(records) growth. The
	// budget is a ratchet — it has come down from 12 and must not creep
	// back up.
	if avg := testing.AllocsPerRun(200, step); avg > 6 {
		t.Errorf("Observe allocates %.1f objects/boot record in steady state, budget 6", avg)
	}
	// Panic records carry an Apps slice and an activity string; the
	// accumulator may retain a copy of each but nothing more.
	apps := []string{"phone", "camera"}
	panicStep := func() {
		now += int64(time.Minute)
		acc.Observe("a", core.Record{
			Kind: core.KindPanic, Time: now, Category: "KERN-EXEC", PType: 3,
			Apps: apps, Activity: "voice-call",
		})
	}
	for i := 0; i < 64; i++ {
		panicStep()
	}
	if avg := testing.AllocsPerRun(200, panicStep); avg > 6 {
		t.Errorf("Observe allocates %.1f objects/panic record in steady state, budget 6", avg)
	}
}
