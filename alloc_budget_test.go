package symfail

import (
	"testing"
	"time"

	"symfail/internal/analysis/stream"
	"symfail/internal/core"
	"symfail/internal/sim"
)

// TestAllocBudgets is the repo-wide allocation ratchet: every hot path gets
// a named steady-state budget, and a change that regresses one fails here
// with the subsystem spelled out. Budgets only ever go down — when an
// optimisation lands, tighten the number in this table so the gain cannot
// silently erode. Skipped under -race (instrumentation allocates).
func TestAllocBudgets(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are distorted under -race")
	}
	cases := []struct {
		name   string
		budget float64
		// setup returns the op to measure, already warmed to steady state.
		setup func() func()
	}{
		{
			// The tentpole contract: scheduling and firing an event on the
			// timing-wheel engine reuses pooled nodes and interned closures,
			// so the simulation hot loop allocates nothing at all.
			name: "sim/engine: schedule+fire one event", budget: 0,
			setup: func() func() {
				eng := sim.NewEngine()
				fn := func() {}
				op := func() {
					eng.After(time.Second, "tick", fn)
					eng.Step()
				}
				for i := 0; i < 256; i++ {
					op()
				}
				return op
			},
		},
		{
			name: "core: AppendRecord into warm scratch", budget: 0,
			setup: func() func() {
				rec := core.Record{
					Kind: core.KindPanic, Time: 1234567890, Category: "KERN-EXEC",
					PType: 3, Apps: []string{"phone", "camera"}, Activity: "voice-call",
				}
				buf := make([]byte, 0, 256)
				return func() { buf = core.AppendRecordLine(buf[:0], rec) }
			},
		},
		{
			name: "core: AppendFrame into warm scratch", budget: 0,
			setup: func() func() {
				payload := core.AppendRecord(nil, core.Record{Kind: core.KindBoot, Time: 7, Boot: 2})
				buf := make([]byte, 0, 256)
				return func() { buf = core.AppendFrame(buf[:0], payload) }
			},
		},
		{
			// Down from 12 when the accumulators still round-tripped
			// through encoding/json; the remaining allocs are the finalized
			// HLEvent and its retained strings.
			name: "analysis/stream: Observe boot record", budget: 6,
			setup: func() func() {
				acc := stream.NewTables(stream.Config{})
				acc.AddDevice("a")
				now, boot := int64(sim.Epoch), 1
				acc.Observe("a", core.Record{Kind: core.KindBoot, Time: now, Boot: boot, Detected: core.DetectedFirstBoot})
				op := func() {
					boot++
					prev := now
					now += int64(time.Hour)
					acc.Observe("a", core.Record{
						Kind: core.KindBoot, Time: now, Boot: boot,
						Detected: core.DetectedFreeze, PrevBeat: core.BeatAlive,
						PrevTime: prev, OffSeconds: 30,
					})
				}
				for i := 0; i < 64; i++ {
					op()
				}
				return op
			},
		},
		{
			name: "analysis/stream: Observe panic record", budget: 6,
			setup: func() func() {
				acc := stream.NewTables(stream.Config{})
				acc.AddDevice("a")
				acc.Observe("a", core.Record{Kind: core.KindBoot, Time: 0, Boot: 1, Detected: core.DetectedFirstBoot})
				now := int64(sim.Epoch)
				apps := []string{"phone", "camera"}
				op := func() {
					now += int64(time.Minute)
					acc.Observe("a", core.Record{
						Kind: core.KindPanic, Time: now, Category: "KERN-EXEC",
						PType: 3, Apps: apps, Activity: "voice-call",
					})
				}
				for i := 0; i < 64; i++ {
					op()
				}
				return op
			},
		},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			op := tc.setup()
			if avg := testing.AllocsPerRun(500, op); avg > tc.budget {
				t.Errorf("%s: %.1f allocs/op in steady state, budget %.0f", tc.name, avg, tc.budget)
			}
		})
	}
}
