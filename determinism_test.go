package symfail

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"symfail/internal/analysis"
	"symfail/internal/phone"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden determinism fingerprint")

// fingerprint is a compact cross-process determinism witness: if any code
// path lets Go's per-process map iteration order (or any other ambient
// nondeterminism) leak into the simulation, this drifts between processes
// even though same-process double runs agree.
type fingerprint struct {
	Panics        int     `json:"panics"`
	Freezes       int     `json:"freezes"`
	SelfShutdowns int     `json:"selfShutdowns"`
	Boots         int     `json:"boots"`
	ObservedHours float64 `json:"observedHours"`
	FirstPanicKey string  `json:"firstPanicKey"`
	FirstPanicAt  int64   `json:"firstPanicAt"`
	LogBytes      int     `json:"logBytes"`
}

func computeFingerprint(t *testing.T) fingerprint {
	t.Helper()
	fs, err := RunFieldStudy(FieldStudyConfig{
		Seed:       424242,
		Phones:     6,
		Duration:   3 * phone.StudyMonth,
		JoinWindow: phone.StudyMonth / 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := fs.Study.MTBF()
	fp := fingerprint{
		Panics:        len(fs.Study.Panics()),
		Freezes:       rep.Freezes,
		SelfShutdowns: rep.SelfShutdowns,
		ObservedHours: rep.ObservedHours,
	}
	for _, d := range fs.Fleet.Devices {
		fp.Boots += d.BootCount()
	}
	if ps := fs.Study.Panics(); len(ps) > 0 {
		fp.FirstPanicKey = ps[0].Key()
		fp.FirstPanicAt = int64(ps[0].Time)
	}
	for _, l := range fs.Loggers {
		fp.LogBytes += len(l.LogBytes())
	}
	return fp
}

func TestGoldenDeterminismFingerprint(t *testing.T) {
	path := filepath.Join("testdata", "golden_fingerprint.json")
	got := computeFingerprint(t)
	if *updateGolden {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %+v", got)
		return
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no golden fingerprint (run `go test -run Golden -update .`): %v", err)
	}
	var want fingerprint
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("fingerprint drifted.\n got: %+v\nwant: %+v\n"+
			"If the simulation changed intentionally, refresh with `go test -run Golden -update .`;"+
			" otherwise nondeterminism (e.g. map iteration) leaked into the model.", got, want)
	}
	_ = analysis.DefaultOptions()
}

// TestGoldenFingerprintByteIdentical re-marshals the computed fingerprint
// and compares it byte for byte against the golden file, a stricter check
// than the field-wise one above: JSON encoding, field order, and float
// formatting are all part of the witness. It guards that behaviour-neutral
// sweeps (such as the symlint-driven cleanup) stay behaviour-neutral.
//
// `make check` runs this same test in a -race build; the race-enabled run
// path must produce the identical bytes, since instrumentation may not
// perturb the simulation (only the scheduler, which the engine never
// consults).
func TestGoldenFingerprintByteIdentical(t *testing.T) {
	if *updateGolden {
		t.Skip("golden being rewritten by TestGoldenDeterminismFingerprint")
	}
	path := filepath.Join("testdata", "golden_fingerprint.json")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no golden fingerprint (run `go test -run Golden -update .`): %v", err)
	}
	got := computeFingerprint(t)
	blob, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	blob = append(blob, '\n')
	if !bytes.Equal(blob, want) {
		t.Errorf("golden fingerprint is not byte-identical.\n got: %s\nwant: %s", blob, want)
	}
}

// TestNoUnclassifiedPanics asserts the dynamic side of the panictaxonomy
// contract on a real run: every panic the field study produced is in
// analysis.KnownPanicKeys (symlint proves the same for every *possible*
// raise site, statically).
func TestNoUnclassifiedPanics(t *testing.T) {
	fs, err := RunFieldStudy(FieldStudyConfig{
		Seed:       424242,
		Phones:     6,
		Duration:   3 * phone.StudyMonth,
		JoinWindow: phone.StudyMonth / 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if keys := fs.Study.UnclassifiedPanicKeys(); len(keys) != 0 {
		t.Errorf("panics outside the Table 2 taxonomy: %v", keys)
	}
}
