package symfail

import (
	"testing"
	"time"

	"symfail/internal/collect"
	"symfail/internal/core"
	"symfail/internal/phone"
)

// chaosConfig runs a mid-size fleet under the full adversity menu: torn
// flash writes on every battery pull, bit rot, a flash quota, and a ~20%
// total network-fault rate (refusals, mid-transfer drops, payload
// corruption, lost ACKs) with backoff-and-retry enabled. The fleet runs
// sharded (Workers > 1) so fault injection and parallel execution are
// exercised together — `make chaos` runs this under -race, which is the
// harness the CI uses to prove the sharded adversity path is race-free.
func chaosConfig(seed uint64) FieldStudyConfig {
	return FieldStudyConfig{
		Seed:        seed,
		Phones:      6,
		Workers:     4,
		Duration:    3 * phone.StudyMonth,
		JoinWindow:  phone.StudyMonth / 2,
		UploadEvery: 3 * 24 * time.Hour,
		Adversity: AdversityConfig{
			Flash: phone.FlashFaults{
				TornWriteProb:  0.7,
				BitRotPerWrite: 0.002,
				QuotaBytes:     1 << 20,
			},
			Net: collect.NetFaults{
				RefuseProb:  0.08,
				DropProb:    0.04,
				CorruptProb: 0.04,
				DropAckProb: 0.04,
			},
			RetryBase: 20 * time.Minute,
			RetryMax:  12 * time.Hour,
		},
	}
}

// TestChaosNoAcknowledgedDataLoss is the adversity layer's headline
// invariant: whatever the network and the flash do, every record the
// collection server ever acknowledged is present exactly once in the final
// merged dataset, and recovery never surfaces a corrupt record to the
// analysis.
func TestChaosNoAcknowledgedDataLoss(t *testing.T) {
	fs, srv, err := RunFieldStudyWithCollector(chaosConfig(20070625))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	// The run must actually have been adversarial, or the invariant is
	// vacuous.
	var torn, flips uint64
	for _, d := range fs.Fleet.Devices {
		torn += d.FS().TornWrites()
		flips += d.FS().BitFlips()
	}
	if torn == 0 {
		t.Error("no torn writes injected — chaos config is not reaching the flash")
	}
	if flips == 0 {
		t.Error("no bit rot injected")
	}

	// No acknowledged record may be missing from, or duplicated in, the
	// final merged dataset.
	for _, d := range fs.Fleet.Devices {
		id := d.ID()
		counts := make(map[string]int)
		for _, r := range fs.Dataset.Records(id) {
			counts[string(core.EncodeRecord(r))]++
		}
		acked := srv.AckedKeys(id)
		if len(acked) == 0 {
			t.Errorf("%s: server never acknowledged a record", id)
		}
		missing, duplicated := 0, 0
		for _, key := range acked {
			switch counts[key] {
			case 1:
			case 0:
				missing++
			default:
				duplicated++
			}
		}
		if missing > 0 || duplicated > 0 {
			t.Errorf("%s: of %d acknowledged records, %d missing and %d duplicated in the merged dataset",
				id, len(acked), missing, duplicated)
		}
	}

	// Recovery must never surface a corrupt record: everything in the
	// dataset is a well-formed record of a known kind.
	for id, recs := range fs.Dataset.AllRecords() {
		for _, r := range recs {
			switch r.Kind {
			case core.KindBoot:
				if r.Detected == "" {
					t.Errorf("%s: boot record with no detection: %+v", id, r)
				}
			case core.KindPanic:
				if r.Category == "" || r.Time <= 0 {
					t.Errorf("%s: malformed panic record: %+v", id, r)
				}
			default:
				t.Errorf("%s: unknown record kind %q surfaced from recovery: %+v", id, r.Kind, r)
			}
		}
	}
}

// TestChaosHeadlineWithinBands asserts the study's measurement chain stays
// trustworthy under adversity: the analysed tables remain close to the
// simulator's ground truth even while flash tears and the network drops
// every fifth transfer.
func TestChaosHeadlineWithinBands(t *testing.T) {
	fs, srv, err := RunFieldStudyWithCollector(chaosConfig(20070626))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	rep := ValidateDetection(fs)
	if rep.TruthPanics == 0 || rep.TruthFreezes == 0 {
		t.Fatalf("degenerate chaos run: %+v", rep)
	}
	// RDebug sees every panic; losses can only come from torn appends and
	// records the collector never saw. A torn append costs at most the
	// in-flight record, so capture must stay near-perfect.
	if rep.PanicCaptureRate < 0.85 {
		t.Errorf("panic capture rate %.3f under chaos, want >= 0.85 (%d/%d)",
			rep.PanicCaptureRate, rep.LoggedPanics, rep.TruthPanics)
	}
	// Freeze detection relies on the last intact heartbeat; a torn beat
	// append falls back to the previous beat, so recall survives chaos.
	if rep.FreezeRecall < 0.80 {
		t.Errorf("freeze recall %.3f under chaos, want >= 0.80 (%d/%d)",
			rep.FreezeRecall, rep.LoggedFreezes, rep.TruthFreezes)
	}
	if rep.SelfShutdownRatio < 0.6 || rep.SelfShutdownRatio > 1.6 {
		t.Errorf("self-shutdown ratio %.3f under chaos, want within [0.6, 1.6]", rep.SelfShutdownRatio)
	}
	// The uploader's resumable protocol must have delivered a usable
	// dataset: every phone present, with boot history.
	if got := len(fs.Dataset.Devices()); got != len(fs.Fleet.Devices) {
		t.Errorf("dataset holds %d devices, fleet has %d", got, len(fs.Fleet.Devices))
	}
}
