package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Duration aliases time.Duration so that sim-facing code can express delays
// without importing both packages.
type Duration = time.Duration

// ErrStopped is returned by Engine.Run when Stop was called before the run
// limit was reached.
var ErrStopped = errors.New("sim: engine stopped")

// Event is a scheduled callback. Handles returned by the scheduling methods
// can be used to cancel the event before it fires.
type Event struct {
	when   Time
	seq    uint64 // tie-break so equal-time events fire in schedule order
	index  int    // heap index, -1 once fired or cancelled
	fn     func()
	label  string
	cancel bool
}

// When returns the instant the event is (or was) scheduled for.
func (e *Event) When() Time { return e.when }

// Label returns the diagnostic label given at scheduling time.
func (e *Event) Label() string { return e.label }

// Pending reports whether the event is still waiting to fire.
func (e *Event) Pending() bool { return e != nil && e.index >= 0 && !e.cancel }

// Engine is a single-threaded discrete-event scheduler.
//
// Ownership contract: an Engine and everything scheduled on it belong to
// exactly one goroutine at a time. The simulation is deterministic
// precisely because a single goroutine advances each engine; nothing in
// the Engine is locked, and nothing may be. Parallelism is achieved by
// sharding, never by sharing: give each independent shard of the world its
// own Engine (and its own RNG streams — see Rand.Split) and run whole
// shards on separate workers, e.g. via RunShards. Two shards must not
// share an engine, schedule onto each other's engines, or touch each
// other's state; cross-shard results are combined only after the shards
// finish, through an order-independent merge (see internal/collect).
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool
	fired   uint64
}

// NewEngine returns an engine whose clock reads Epoch.
func NewEngine() *Engine {
	return &Engine{}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// Fired returns the number of events executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending returns the number of events still queued.
func (e *Engine) Pending() int { return e.queue.Len() }

// At schedules fn to run at instant t. Scheduling in the past (before Now)
// is an error in the model, so it fires immediately at the current time
// instead of silently rewinding the clock.
func (e *Engine) At(t Time, label string, fn func()) *Event {
	if t < e.now {
		t = e.now
	}
	ev := &Event{when: t, seq: e.seq, fn: fn, label: label}
	e.seq++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d after the current time.
func (e *Engine) After(d Duration, label string, fn func()) *Event {
	return e.At(e.now.Add(d), label, fn)
}

// Cancel removes a pending event. Cancelling a fired or already-cancelled
// event is a no-op. It reports whether the event was actually cancelled.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.cancel || ev.index < 0 {
		return false
	}
	ev.cancel = true
	heap.Remove(&e.queue, ev.index)
	return true
}

// Step fires the next event, advancing the clock to its timestamp.
// It reports whether an event was available.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	if ev.cancel {
		return e.Step()
	}
	e.now = ev.when
	e.fired++
	ev.fn()
	return true
}

// Run executes events until the queue drains, the clock passes until, or
// Stop is called. The clock is left at min(until, last event time); if the
// queue drained first, the clock is advanced to until so that callers can
// reason about "the simulation covered [0, until)".
func (e *Engine) Run(until Time) error {
	e.stopped = false
	for {
		if e.stopped {
			return ErrStopped
		}
		if e.queue.Len() == 0 {
			if e.now < until {
				e.now = until
			}
			return nil
		}
		next := e.queue[0].when
		if next > until {
			e.now = until
			return nil
		}
		e.Step()
	}
}

// RunAll executes events until the queue is empty or Stop is called.
func (e *Engine) RunAll() error {
	e.stopped = false
	for e.Step() {
		if e.stopped {
			return ErrStopped
		}
	}
	return nil
}

// Stop halts a Run in progress after the current event returns.
func (e *Engine) Stop() { e.stopped = true }

// String summarises engine state for diagnostics.
func (e *Engine) String() string {
	return fmt.Sprintf("engine{now=%s pending=%d fired=%d}", e.now, e.queue.Len(), e.fired)
}

// eventQueue implements container/heap ordered by (when, seq).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev := x.(*Event)
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}
