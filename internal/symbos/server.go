package symbos

import "fmt"

// Handler processes one client message inside the server's thread context.
type Handler func(*Message)

// Server is a Symbian system-server application: all system services are
// provided by server processes, and clients reach them through kernel
// message passing (section 2). A server created with system=true is a
// critical server — the paper observes that panics in such servers reboot
// the phone.
type Server struct {
	name    string
	proc    *Process
	handler Handler
	served  uint64
}

// NewServer starts a server process with the given message handler.
func NewServer(k *Kernel, name string, system bool, handler Handler) *Server {
	proc := k.StartProcess(name, system)
	return &Server{name: name, proc: proc, handler: handler}
}

// AdoptServer wraps an existing process as a server (used when an
// application exposes a service from its own process).
func AdoptServer(proc *Process, handler Handler) *Server {
	return &Server{name: proc.name, proc: proc, handler: handler}
}

// Name returns the server name.
func (s *Server) Name() string { return s.name }

// Process returns the server's process.
func (s *Server) Process() *Process { return s.proc }

// Served returns the number of messages processed.
func (s *Server) Served() uint64 { return s.served }

// Message is one client/server request (RMessage). Complete answers it; a
// null RMessagePtr raises USER 70, as does answering twice.
type Message struct {
	Op       int
	Payload  string
	Client   string
	Response string // set by Respond before Complete

	server    *Server
	kernel    *Kernel
	replied   bool
	nullPtr   bool
	replyCode int           // completion code, read back by the sender
	replyAO   *ActiveObject // async requests complete this on reply
}

// NullifyPtr corrupts the message's RMessagePtr (a modelled defect): the
// next Complete raises USER 70.
func (m *Message) NullifyPtr() { m.nullPtr = true }

// Respond sets the reply payload written back into the client's descriptor
// when the request completes.
func (m *Message) Respond(s string) { m.Response = s }

// Complete answers the request with the given code.
func (m *Message) Complete(code int) {
	if m.nullPtr {
		m.kernel.Raise(CatUser, TypeNullMessageHandle,
			"completing a client/server request through a null RMessagePtr")
	}
	if m.replied {
		m.kernel.Raise(CatUser, TypeNullMessageHandle,
			fmt.Sprintf("message op %d completed twice", m.Op))
	}
	m.replied = true
	m.server.served++
	m.replyCode = code
	if m.replyAO != nil {
		m.replyAO.Complete(code)
	}
}

// Session is a client connection to a server, held in the client process's
// object index like any other kernel object.
type Session struct {
	server *Server
	client *Thread
	handle Handle
	open   bool

	// Synchronous requests are the hottest IPC path in the simulator, so
	// each session interns its Exec label/closure and keeps one scratch
	// Message. cur points serveFn at the request being dispatched; the
	// busy flag falls nested (re-entrant) requests back to a fresh
	// allocation, and every handler in the tree replies before returning
	// (Exec recovers server panics), so the scratch never outlives a call.
	serveLabel string
	ipcLabel   string
	serveFn    func()
	cur        *Message
	scratch    Message
	busy       bool
}

// Connect opens a session from the client thread to the server
// (RSessionBase::CreateSession).
func (s *Server) Connect(client *Thread) *Session {
	h := client.proc.OpenObject("session", s.name)
	sess := &Session{server: s, client: client, handle: h, open: true}
	sess.serveLabel = "serve " + s.name
	sess.ipcLabel = "ipc " + s.name
	sess.serveFn = func() { sess.server.handler(sess.cur) }
	return sess
}

// acquire readies a Message for one request — the session scratch when
// free, a fresh allocation when a handler re-entered the same session.
func (sess *Session) acquire(k *Kernel, op int, payload string) *Message {
	m := &sess.scratch
	if sess.busy {
		m = &Message{}
	} else {
		sess.busy = true
	}
	*m = Message{
		Op:        op,
		Payload:   payload,
		Client:    sess.client.proc.name,
		server:    sess.server,
		kernel:    k,
		replyCode: KErrDisconnected, // a panicking server never replies
	}
	return m
}

func (sess *Session) release(m *Message) {
	if m == &sess.scratch {
		sess.busy = false
	}
}

// dispatch runs the server handler on m in the server's thread context.
func (sess *Session) dispatch(k *Kernel, m *Message) {
	prev := sess.cur
	sess.cur = m
	k.Exec(sess.server.proc.main, sess.serveLabel, sess.serveFn)
	sess.cur = prev
}

// Handle returns the session's raw handle in the client's object index.
func (sess *Session) Handle() Handle { return sess.handle }

// Connected reports whether the session is usable.
func (sess *Session) Connected() bool {
	return sess.open && sess.server.proc.alive
}

// SendReceive issues a synchronous request (RSessionBase::SendReceive).
// The handler runs in the server's thread context; if the server panics
// before replying, the client sees KErrDisconnected — this is how a panic
// in one process propagates an error (not a panic) into another.
func (sess *Session) SendReceive(op int, payload string) int {
	k := sess.server.proc.kernel
	if !sess.open {
		k.Raise(CatKernExec, TypeBadHandle,
			fmt.Sprintf("SendReceive on closed session to %q", sess.server.name))
	}
	if !sess.server.proc.alive {
		return KErrDisconnected
	}
	m := sess.acquire(k, op, payload)
	sess.dispatch(k, m)
	code := m.replyCode
	sess.release(m)
	return code
}

// Query is SendReceive for requests that carry a reply payload: it returns
// the server's Response alongside the completion code.
func (sess *Session) Query(op int, payload string) (string, int) {
	k := sess.server.proc.kernel
	if !sess.open {
		k.Raise(CatKernExec, TypeBadHandle,
			fmt.Sprintf("Query on closed session to %q", sess.server.name))
	}
	if !sess.server.proc.alive {
		return "", KErrDisconnected
	}
	m := sess.acquire(k, op, payload)
	sess.dispatch(k, m)
	resp, code := m.Response, m.replyCode
	sess.release(m)
	return resp, code
}

// SendAsync issues an asynchronous request whose reply completes ao. The
// server handler runs on the next engine tick, modelling the kernel's
// message queueing.
func (sess *Session) SendAsync(op int, payload string, ao *ActiveObject) {
	k := sess.server.proc.kernel
	if !sess.open {
		k.Raise(CatKernExec, TypeBadHandle,
			fmt.Sprintf("SendAsync on closed session to %q", sess.server.name))
	}
	ao.SetActive()
	// Async requests outlive this call, so the message cannot come from
	// the session scratch.
	m := &Message{
		Op:      op,
		Payload: payload,
		Client:  sess.client.proc.name,
		server:  sess.server,
		kernel:  k,
		replyAO: ao,
	}
	k.eng.After(0, sess.ipcLabel, func() {
		if !sess.server.proc.alive {
			ao.Complete(KErrDisconnected)
			return
		}
		sess.dispatch(k, m)
		if !m.replied {
			// The server panicked mid-request; fail the client request.
			ao.Complete(KErrDisconnected)
		}
	})
}

// Close releases the session (RHandleBase::Close), going through the
// Kernel Server handle path so a corrupted handle raises KERN-SVR 0.
func (sess *Session) Close() {
	if !sess.open {
		return
	}
	sess.open = false
	sess.client.proc.CloseHandle(sess.handle)
}

// CorruptSessionHandle replaces the session's handle with one that does not
// resolve (a modelled defect): the next Close raises KERN-SVR 0.
func (sess *Session) CorruptSessionHandle() {
	sess.handle = sess.client.proc.CorruptHandle()
}
