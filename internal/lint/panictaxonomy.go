package lint

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// TaxonomyConfig wires the panictaxonomy analyzer to the module layout.
type TaxonomyConfig struct {
	// SourcePrefixes are the packages whose panic-raise sites form the
	// mechanistic side of the contract.
	SourcePrefixes []string
	// TablePkg / TableVar locate the classification table: a
	// map[string]bool whose keys are "Category Type" strings.
	TablePkg string
	TableVar string
}

// DefaultTaxonomyConfig matches the symfail module: panics are raised in
// the OS and device layers and classified by internal/analysis.
var DefaultTaxonomyConfig = TaxonomyConfig{
	SourcePrefixes: []string{"symfail/internal/symbos", "symfail/internal/phone"},
	TablePkg:       "symfail/internal/analysis",
	TableVar:       "KnownPanicKeys",
}

// raiseSite is one statically extracted (Category, Type) panic origin.
type raiseSite struct {
	key string
	pos ast.Node
}

// NewPanicTaxonomy builds the panictaxonomy analyzer. It statically
// extracts every (Category, Type) pair the simulator can raise — calls to a
// Kernel-style Raise(cat, typ, ...) method and Panic{Category:, Type:}
// composite literals — and cross-checks the set against the analysis
// layer's classification table, in both directions: a raise site missing
// from the table would be silently dropped by the study tables, and a table
// entry with no raise site is a taxonomy row the simulator can never
// produce. The check runs once, anchored at the table package, so it needs
// the table package in the analyzed set (e.g. symlint ./...).
func NewPanicTaxonomy(cfg TaxonomyConfig) *Analyzer {
	if cfg.SourcePrefixes == nil {
		cfg = DefaultTaxonomyConfig
	}
	a := &Analyzer{
		Name: "panictaxonomy",
		Doc:  "cross-check raised (Category, Type) panic pairs against the analysis classification table",
	}
	a.Run = func(pass *Pass) {
		if pass.Pkg.Path != cfg.TablePkg {
			return
		}
		table, tablePos := loadPanicTable(pass.Pkg, cfg.TableVar)
		if table == nil {
			pass.Reportf(pass.Pkg.Files[0].Pos(),
				"classification table %s.%s not found or not a map[string]... literal", cfg.TablePkg, cfg.TableVar)
			return
		}
		var sites []raiseSite
		for _, pkg := range pass.All {
			if !pathHasPrefix(pkg.Path, cfg.SourcePrefixes) {
				continue
			}
			sites = append(sites, extractRaiseSites(pass, pkg)...)
		}
		raised := make(map[string]bool, len(sites))
		for _, s := range sites {
			raised[s.key] = true
			if !table[s.key] {
				pass.Reportf(s.pos.Pos(),
					"panic %q raised here is missing from %s.%s: the analysis layer would tabulate it without a documented meaning", s.key, cfg.TablePkg, cfg.TableVar)
			}
		}
		// Reverse direction: dead taxonomy rows. Only meaningful when at
		// least one source package was in the analyzed set.
		if len(sites) == 0 {
			return
		}
		keys := make([]string, 0, len(table))
		for k := range table {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if !raised[k] {
				pass.Reportf(tablePos[k].Pos(),
					"taxonomy key %q has no raise site in %s: the simulator can never produce it", k, strings.Join(cfg.SourcePrefixes, ", "))
			}
		}
	}
	return a
}

// loadPanicTable finds `var <name> = map[string]...{...}` in pkg and returns
// its constant-folded keys plus each key's position.
func loadPanicTable(pkg *Package, name string) (map[string]bool, map[string]ast.Node) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if id.Name != name || i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						return nil, nil
					}
					table := make(map[string]bool)
					pos := make(map[string]ast.Node)
					for _, elt := range cl.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if s, ok := constString(pkg.Info, kv.Key); ok {
							table[s] = true
							pos[s] = kv.Key
						}
					}
					return table, pos
				}
			}
		}
	}
	return nil, nil
}

// extractRaiseSites finds every statically resolvable panic origin in pkg.
func extractRaiseSites(pass *Pass, pkg *Package) []raiseSite {
	var sites []raiseSite
	info := pkg.Info
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "Raise" || len(n.Args) < 2 {
					return true
				}
				cat, okCat := constString(info, n.Args[0])
				typ, okTyp := constInt(info, n.Args[1])
				if !okCat || !okTyp {
					// A dynamic category or type defeats static
					// classification — the contract requires panics to be
					// mechanistically enumerable.
					pass.Reportf(n.Pos(), "Raise with non-constant category or type cannot be statically cross-checked against the taxonomy")
					return true
				}
				sites = append(sites, raiseSite{key: fmt.Sprintf("%s %d", cat, typ), pos: n})
			case *ast.CompositeLit:
				if site, ok := panicLiteralSite(info, n); ok {
					sites = append(sites, site)
				}
			}
			return true
		})
	}
	return sites
}

// panicLiteralSite extracts a key from a Panic{Category: ..., Type: ...}
// composite literal with constant fields.
func panicLiteralSite(info *types.Info, cl *ast.CompositeLit) (raiseSite, bool) {
	t := info.TypeOf(cl)
	if t == nil {
		return raiseSite{}, false
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Name() != "Panic" {
		return raiseSite{}, false
	}
	var cat string
	var typ int64
	var haveCat, haveTyp bool
	for _, elt := range cl.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		switch key.Name {
		case "Category":
			cat, haveCat = constString(info, kv.Value)
		case "Type":
			typ, haveTyp = constInt(info, kv.Value)
		}
	}
	if !haveCat || !haveTyp {
		return raiseSite{}, false
	}
	return raiseSite{key: fmt.Sprintf("%s %d", cat, typ), pos: cl}, true
}

func constString(info *types.Info, e ast.Expr) (string, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.String {
		return "", false
	}
	return constant.StringVal(tv.Value), true
}

func constInt(info *types.Info, e ast.Expr) (int64, bool) {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil || tv.Value.Kind() != constant.Int {
		return 0, false
	}
	v, ok := constant.Int64Val(tv.Value)
	return v, ok
}
