// Package forum reproduces the paper's preliminary study (section 4): a
// high-level failure characterisation of mobile phones from publicly
// available web-forum posts. The original 533 reports (January 2003 –
// March 2006, howardforums.com and friends) are not available, so the
// package generates a synthetic corpus with the same joint structure —
// free-format posts, a minority of which are failure reports — and then
// runs the full pipeline the paper implies: filter the failure reports,
// classify failure type / user-initiated recovery / severity / activity,
// and tabulate Table 1 and the section 4.1 marginals.
//
// The generator and the classifier are deliberately decoupled: the
// generator writes varied colloquial text from a vocabulary, and the
// classifier recovers labels with keyword rules, so the pipeline is a real
// text-classification exercise rather than a bookkeeping identity.
package forum

import (
	"fmt"
	"strings"

	"symfail/internal/sim"
)

// FailureType is the high-level failure manifestation of section 4.
type FailureType string

// Failure types (the taxonomy of Avizienis et al. / Bondavalli-Simoncini
// citations are in the paper).
const (
	Freeze       FailureType = "freeze"
	SelfShutdown FailureType = "self-shutdown"
	Unstable     FailureType = "unstable-behavior"
	OutputFail   FailureType = "output-failure"
	InputFail    FailureType = "input-failure"
)

// Recovery is the user-initiated recovery action of section 4.
type Recovery string

// Recovery actions.
const (
	RecRepeat     Recovery = "repeat"
	RecWait       Recovery = "wait"
	RecReboot     Recovery = "reboot"
	RecBattery    Recovery = "battery-removal"
	RecService    Recovery = "service-phone"
	RecUnreported Recovery = "unreported"
)

// Severity grades the difficulty of recovery, from the user's perspective.
type Severity string

// Severity levels.
const (
	SevHigh    Severity = "high"   // service personnel needed
	SevMedium  Severity = "medium" // reboot or battery removal
	SevLow     Severity = "low"    // repeating or waiting was enough
	SevUnknown Severity = "unknown"
)

// SeverityOf maps a recovery action to the paper's severity level.
func SeverityOf(r Recovery) Severity {
	switch r {
	case RecService:
		return SevHigh
	case RecReboot, RecBattery:
		return SevMedium
	case RecRepeat, RecWait:
		return SevLow
	default:
		return SevUnknown
	}
}

// ActivityTag is the user activity mentioned in a report (section 4.1).
type ActivityTag string

// Activity tags with nonzero correlation in the paper.
const (
	ActNone      ActivityTag = ""
	ActCall      ActivityTag = "voice-call"
	ActText      ActivityTag = "text-message"
	ActBluetooth ActivityTag = "bluetooth"
	ActImages    ActivityTag = "images"
)

// Post is one forum post. Failure reports carry hidden ground-truth labels
// (unexported from the classifier's point of view; tests use them to score
// classification accuracy).
type Post struct {
	ID     int
	Forum  string
	Vendor string
	Model  string
	Smart  bool // a smart phone, as opposed to voice-centric/rich-experience
	Text   string

	// Ground truth, set only for generated failure reports.
	IsFailure    bool
	TrueType     FailureType
	TrueRecovery Recovery
	TrueActivity ActivityTag
}

// Table1Target is the joint failure-type × recovery distribution of the
// paper's Table 1, in percent of the total number of failures.
var Table1Target = map[FailureType]map[Recovery]float64{
	Freeze:       {RecReboot: 2.36, RecBattery: 9.01, RecWait: 4.29, RecRepeat: 0, RecService: 3.65, RecUnreported: 6.01},
	OutputFail:   {RecReboot: 8.80, RecBattery: 0.43, RecWait: 0.64, RecRepeat: 5.79, RecService: 6.87, RecUnreported: 13.73},
	SelfShutdown: {RecReboot: 0, RecBattery: 2.15, RecWait: 0.43, RecRepeat: 0, RecService: 6.65, RecUnreported: 7.73},
	Unstable:     {RecReboot: 1.72, RecBattery: 0.21, RecWait: 0.21, RecRepeat: 0.64, RecService: 6.87, RecUnreported: 8.80},
	InputFail:    {RecReboot: 0.64, RecBattery: 0.21, RecWait: 0, RecRepeat: 0.64, RecService: 0.64, RecUnreported: 0.86},
}

// Activity mention probabilities (section 4.1: 13% voice calls, 5.4% text
// messages, 3.6% Bluetooth, 2.4% images).
var activityTarget = []struct {
	tag ActivityTag
	p   float64
}{
	{ActCall, 0.13},
	{ActText, 0.054},
	{ActBluetooth, 0.036},
	{ActImages, 0.024},
}

// SmartPhoneShare is the fraction of failure reports from smart phones
// (22.3% in the paper, against a 6.3% market share).
const SmartPhoneShare = 0.223

// GeneratorConfig shapes a synthetic corpus.
type GeneratorConfig struct {
	Seed uint64
	// FailureReports is the number of failure reports (533 in the paper).
	FailureReports int
	// NoisePosts is the number of non-failure posts interleaved (forum
	// chatter the filter must reject).
	NoisePosts int
}

// DefaultGeneratorConfig matches the paper's report count with a realistic
// amount of chatter around it.
func DefaultGeneratorConfig(seed uint64) GeneratorConfig {
	return GeneratorConfig{Seed: seed, FailureReports: 533, NoisePosts: 3500}
}

var (
	forums = []string{"howardforums.com", "cellphoneforums.net", "phonescoop.com", "mobiledia.com"}

	// Vendor -> (voice/rich models, smart models). Vendor mix follows the
	// paper's enumeration.
	vendors = []struct {
		name   string
		plain  []string
		smart  []string
		weight float64
	}{
		{"Nokia", []string{"3310", "6230", "2600"}, []string{"6600", "N70", "6680"}, 26},
		{"Motorola", []string{"RAZR V3", "C650"}, []string{"A1000"}, 22},
		{"Samsung", []string{"E700", "X480"}, []string{"SGH-D730"}, 16},
		{"Sony-Ericsson", []string{"T610", "K700i"}, []string{"P910i"}, 14},
		{"LG", []string{"U8180", "C1100"}, nil, 8},
		{"Kyocera", []string{"KX414"}, nil, 3},
		{"Audiovox", []string{"CDM-8900"}, nil, 3},
		{"HP", nil, []string{"iPAQ h6315"}, 2},
		{"Blackberry", nil, []string{"7290"}, 3},
		{"Handspring", nil, []string{"Treo 600"}, 2},
		{"Danger", nil, []string{"Hiptop"}, 1},
	}
)

// Generate produces the synthetic corpus: failure reports drawn from the
// Table 1 joint distribution plus noise posts, shuffled deterministically.
func Generate(cfg GeneratorConfig) []Post {
	r := sim.NewRand(cfg.Seed)
	posts := make([]Post, 0, cfg.FailureReports+cfg.NoisePosts)

	// Flatten the joint target for weighted sampling.
	type cell struct {
		ft  FailureType
		rec Recovery
		w   float64
	}
	var cells []cell
	for _, ft := range []FailureType{Freeze, OutputFail, SelfShutdown, Unstable, InputFail} {
		for _, rec := range []Recovery{RecReboot, RecBattery, RecWait, RecRepeat, RecService, RecUnreported} {
			if w := Table1Target[ft][rec]; w > 0 {
				cells = append(cells, cell{ft, rec, w})
			}
		}
	}
	weights := make([]float64, len(cells))
	for i, c := range cells {
		weights[i] = c.w
	}

	for i := 0; i < cfg.FailureReports; i++ {
		c := cells[r.WeightedIndex(weights)]
		act := pickActivity(r)
		vendor, model, smart := pickPhone(r)
		posts = append(posts, Post{
			Forum:        forums[r.Intn(len(forums))],
			Vendor:       vendor,
			Model:        model,
			Smart:        smart,
			Text:         failureText(r, c.ft, c.rec, act, vendor, model),
			IsFailure:    true,
			TrueType:     c.ft,
			TrueRecovery: c.rec,
			TrueActivity: act,
		})
	}
	for i := 0; i < cfg.NoisePosts; i++ {
		vendor, model, smart := pickPhone(r)
		posts = append(posts, Post{
			Forum:  forums[r.Intn(len(forums))],
			Vendor: vendor,
			Model:  model,
			Smart:  smart,
			Text:   noiseText(r, vendor, model),
		})
	}
	r.Shuffle(len(posts), func(i, j int) { posts[i], posts[j] = posts[j], posts[i] })
	for i := range posts {
		posts[i].ID = i + 1
	}
	return posts
}

func pickActivity(r *sim.Rand) ActivityTag {
	x := r.Float64()
	for _, a := range activityTarget {
		if x < a.p {
			return a.tag
		}
		x -= a.p
	}
	return ActNone
}

func pickPhone(r *sim.Rand) (vendor, model string, smart bool) {
	weights := make([]float64, len(vendors))
	for i, v := range vendors {
		weights[i] = v.weight
	}
	smart = r.Bool(SmartPhoneShare)
	// Re-draw until the vendor has a model of the wanted class.
	for {
		v := vendors[r.WeightedIndex(weights)]
		pool := v.plain
		if smart {
			pool = v.smart
		}
		if len(pool) == 0 {
			continue
		}
		return v.name, pool[r.Intn(len(pool))], smart
	}
}

// Text generation ---------------------------------------------------------

func pickStr(r *sim.Rand, options []string) string {
	return options[r.Intn(len(options))]
}

var typePhrases = map[FailureType][]string{
	Freeze: {
		"the phone freezes and stays frozen",
		"my %s locks up completely, screen stuck",
		"it just froze, totally unresponsive",
		"handset hangs and won't respond to anything",
	},
	SelfShutdown: {
		"the phone shuts down by itself",
		"my %s turns itself off randomly",
		"it powers off on its own for no reason",
		"random power-off, screen goes black and it is off",
	},
	Unstable: {
		"weird erratic behavior, backlight flashing on its own",
		"apps keep launching by themselves, really flaky",
		"random wallpaper disappearing and power cycling, looks like ui memory leaks",
		"it behaves erratically without me touching it",
	},
	OutputFail: {
		"the charge indicator is totally inaccurate",
		"ring volume is different from what i configured",
		"event reminders go off at the wrong time",
		"the output is wrong: wrong ringtone, wrong volume, wrong time",
	},
	InputFail: {
		"the soft keys do not work at all",
		"keypad presses have no effect on the phone",
		"pressing buttons does nothing, inputs are ignored",
	},
}

var recoveryPhrases = map[Recovery][]string{
	RecRepeat: {
		"if i repeat the action it eventually works",
		"doing it again usually gets it working, seems transient",
	},
	RecWait: {
		"after waiting a while it came back on its own",
		"i just wait some minutes and it starts responding again",
	},
	RecReboot: {
		"a reboot fixes it until the next time",
		"i have to power cycle the phone to get it back",
		"turning it off and on again restores it",
	},
	RecBattery: {
		"only pulling the battery out brings it back",
		"i have to take the battery out because the power button does nothing",
		"battery removal is the only thing that works",
	},
	RecService: {
		"took it to the service center, they did a master reset",
		"the shop had to flash new firmware to fix it",
		"sent it in for service, they replaced the handset",
	},
}

var activityPhrases = map[ActivityTag][]string{
	ActCall:      {"it happens during a voice call", "always in the middle of a call"},
	ActText:      {"whenever i try to write a text message", "happens while sending an sms"},
	ActBluetooth: {"while using bluetooth to send files", "during a bluetooth transfer"},
	ActImages:    {"when manipulating images from the camera", "while browsing my pictures"},
}

var (
	openers = []string{
		"hi all,", "hey folks,", "long time lurker here.", "ok so,",
		"posting from work,", "first post, be gentle.",
	}
	closers = []string{
		"anyone else seeing this? is it a known bug?",
		"any help appreciated!!", "cheers.", "tia.",
		"should i return it while it is under warranty?",
	}
)

func failureText(r *sim.Rand, ft FailureType, rec Recovery, act ActivityTag, vendor, model string) string {
	var parts []string
	if r.Bool(0.4) {
		parts = append(parts, pickStr(r, openers))
	}
	parts = append(parts, fmt.Sprintf("just got a %s %s a few months ago.", vendor, model))
	tp := pickStr(r, typePhrases[ft])
	if strings.Contains(tp, "%s") {
		tp = fmt.Sprintf(tp, model)
	}
	parts = append(parts, tp+".")
	if act != ActNone {
		parts = append(parts, pickStr(r, activityPhrases[act])+".")
	}
	if rec != RecUnreported {
		parts = append(parts, pickStr(r, recoveryPhrases[rec])+".")
	}
	if r.Bool(0.25) {
		parts = append(parts, pickStr(r, closers))
	}
	text := strings.Join(parts, " ")
	// Forum text is messy: occasional shouting and fat-fingered typos. The
	// classifier has to live with a small induced error rate, like the
	// paper's human coders did.
	if r.Bool(0.04) {
		text = strings.ToUpper(text)
	}
	if r.Bool(0.03) {
		text = swapTypo(r, text)
	}
	return text
}

// swapTypo transposes two adjacent letters in one random word.
func swapTypo(r *sim.Rand, text string) string {
	words := strings.Fields(text)
	if len(words) == 0 {
		return text
	}
	i := r.Intn(len(words))
	w := []byte(words[i])
	if len(w) >= 3 {
		j := 1 + r.Intn(len(w)-2)
		w[j], w[j+1] = w[j+1], w[j]
		words[i] = string(w)
	}
	return strings.Join(words, " ")
}

var noiseTemplates = []string{
	"what is the best ringtone site for a %s %s? thanks",
	"thinking of upgrading from my %s %s, any recommendations?",
	"how do i transfer contacts to my new %s %s?",
	"the camera on the %s %s takes great pictures in daylight",
	"anyone know when the %s %s firmware update ships? just curious",
	"selling my %s %s, mint condition, pm me",
	"which case do you use for the %s %s?",
	"battery life on the %s %s is about two days for me, normal usage",
}

func noiseText(r *sim.Rand, vendor, model string) string {
	return fmt.Sprintf(pickStr(r, noiseTemplates), vendor, model)
}
