package analysis

import (
	"sort"
	"time"

	"symfail/internal/symbos"
)

// KnownPanicKeys is the closed panic taxonomy of the study: every
// "Category Type" pair from Table 2 of the paper, i.e. every panic the
// simulator can mechanistically raise. The `symlint` panictaxonomy analyzer
// statically cross-checks this table against the raise sites in
// internal/symbos and internal/phone in both directions, so adding a panic
// to the simulator without classifying it here (or vice versa) fails
// `make lint`.
var KnownPanicKeys = map[string]bool{
	"KERN-EXEC 0":      true,
	"KERN-EXEC 3":      true,
	"KERN-EXEC 15":     true,
	"KERN-SVR 0":       true,
	"E32USER-CBase 33": true,
	"E32USER-CBase 46": true,
	"E32USER-CBase 47": true,
	"E32USER-CBase 69": true,
	"E32USER-CBase 91": true,
	"E32USER-CBase 92": true,
	"USER 10":          true,
	"USER 11":          true,
	"USER 70":          true,
	"ViewSrv 11":       true,
	"EIKON-LISTBOX 3":  true,
	"EIKON-LISTBOX 5":  true,
	"EIKCOCTL 70":      true,
	"Phone.app 2":      true,
	"MSGS Client 3":    true,
	"MMFAudioClient 4": true,
}

// UnclassifiedPanicKeys returns the observed panic keys that fall outside
// the taxonomy, sorted. A non-empty result means the event stream contains
// panics the study tables would report without a documented meaning — the
// dynamic counterpart of the static symlint check.
func (s *Study) UnclassifiedPanicKeys() []string {
	seen := make(map[string]bool)
	for _, p := range s.Panics() {
		if key := p.Key(); !KnownPanicKeys[key] && !seen[key] {
			seen[key] = true
		}
	}
	keys := make([]string, 0, len(seen))
	for key := range seen {
		keys = append(keys, key)
	}
	sort.Strings(keys)
	return keys
}

// PanicRow is one row of the Table 2 reproduction.
type PanicRow struct {
	Key     string
	Count   int
	Percent float64
	Meaning string
}

// PanicTable reproduces Table 2: panic category/type frequencies with the
// Symbian documentation excerpts.
func (s *Study) PanicTable() []PanicRow {
	counts := make(map[string]int)
	cats := make(map[string]*PanicEvent)
	total := 0
	for _, p := range s.Panics() {
		counts[p.Key()]++
		cats[p.Key()] = p
		total++
	}
	rows := make([]PanicRow, 0, len(counts))
	for key, c := range counts {
		p := cats[key]
		rows = append(rows, PanicRow{
			Key:     key,
			Count:   c,
			Percent: 100 * float64(c) / float64(total),
			Meaning: symbos.Meaning(symbos.Category(p.Category), p.Type),
		})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Count != rows[j].Count {
			return rows[i].Count > rows[j].Count
		}
		return rows[i].Key < rows[j].Key
	})
	return rows
}

// CategoryShare sums the percentage of panics whose category matches
// (e.g. "E32USER-CBase" across all its types).
func (s *Study) CategoryShare(category string) float64 {
	var n, total int
	for _, p := range s.Panics() {
		total++
		if p.Category == category {
			n++
		}
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(n) / float64(total)
}

// BurstStats reproduces Figure 3: the distribution of panic cascade sizes.
type BurstStats struct {
	// SizeCounts maps cascade size -> number of cascades of that size.
	SizeCounts map[int]int
	// PanicsInBursts is the fraction of panics that belong to a cascade
	// of two or more (the paper reports ~25%).
	PanicsInBursts float64
	// TotalPanics and TotalBursts are the denominators.
	TotalPanics, TotalBursts int
}

// Bursts computes the cascade statistics.
func (s *Study) Bursts() BurstStats {
	st := BurstStats{SizeCounts: make(map[int]int)}
	for _, id := range s.deviceIDs {
		seen := make(map[int]bool)
		for _, p := range s.panicsByDevice[id] {
			st.TotalPanics++
			if p.BurstLen >= 2 {
				st.PanicsInBursts++
			}
			if !seen[p.Burst] {
				seen[p.Burst] = true
				st.SizeCounts[p.BurstLen]++
				st.TotalBursts++
			}
		}
	}
	if st.TotalPanics > 0 {
		st.PanicsInBursts /= float64(st.TotalPanics)
	}
	return st
}

// CoalescenceStats reproduces Figure 5: how panics relate to high-level
// events.
type CoalescenceStats struct {
	TotalPanics    int
	RelatedPanics  int     // coalesced with a freeze or self-shutdown
	RelatedPercent float64 // the paper reports 51%
	// ToFreeze/ToSelfShutdown split the related panics by HL kind.
	ToFreeze, ToSelfShutdown int
	// ByCategory maps panic key -> (related, total) counts, the basis of
	// Figure 5b.
	ByCategory map[string]RelatedCount
	// IsolatedHL counts high-level events with no panic in the window —
	// failures the panic stream cannot explain.
	IsolatedHL int
}

// RelatedCount pairs related and total panic counts for one panic key.
type RelatedCount struct {
	Related, Total           int
	ToFreeze, ToSelfShutdown int
}

// Coalesce computes panic/HL-event relations at the configured window.
func (s *Study) Coalesce() CoalescenceStats {
	st := CoalescenceStats{ByCategory: make(map[string]RelatedCount)}
	relatedHL := make(map[*HLEvent]bool)
	for _, p := range s.Panics() {
		st.TotalPanics++
		rc := st.ByCategory[p.Key()]
		rc.Total++
		if p.Related != nil {
			st.RelatedPanics++
			rc.Related++
			relatedHL[p.Related] = true
			switch p.Related.Kind {
			case HLFreeze:
				st.ToFreeze++
				rc.ToFreeze++
			case HLSelfShutdown:
				st.ToSelfShutdown++
				rc.ToSelfShutdown++
			}
		}
		st.ByCategory[p.Key()] = rc
	}
	for _, hl := range s.HLEvents(HLFreeze, HLSelfShutdown) {
		if !relatedHL[hl] {
			st.IsolatedHL++
		}
	}
	if st.TotalPanics > 0 {
		st.RelatedPercent = 100 * float64(st.RelatedPanics) / float64(st.TotalPanics)
	}
	return st
}

// RelatedPercentWithAllShutdowns re-runs coalescence counting user
// shutdowns as high-level events — the paper's robustness check: the
// related share rises only ~4 points, confirming that the filtered events
// were user-triggered.
func (s *Study) RelatedPercentWithAllShutdowns() float64 {
	for _, id := range s.deviceIDs {
		s.coalesce(id, s.opts.CoalescenceWindow, true)
	}
	related, total := 0, 0
	for _, p := range s.Panics() {
		total++
		if p.Related != nil {
			related++
		}
	}
	// Restore the standard coalescence.
	for _, id := range s.deviceIDs {
		s.coalesce(id, s.opts.CoalescenceWindow, false)
	}
	if total == 0 {
		return 0
	}
	return 100 * float64(related) / float64(total)
}

// WindowSweepPoint is one point of the Figure 4 window-size justification.
type WindowSweepPoint struct {
	Window  time.Duration
	Related int
}

// WindowSweep recomputes the number of related panics for each candidate
// coalescence window. The knee of this curve is why the paper fixes the
// window at five minutes.
func (s *Study) WindowSweep(windows []time.Duration) []WindowSweepPoint {
	out := make([]WindowSweepPoint, 0, len(windows))
	for _, w := range windows {
		for _, id := range s.deviceIDs {
			s.coalesce(id, w, false)
		}
		related := 0
		for _, p := range s.Panics() {
			if p.Related != nil {
				related++
			}
		}
		out = append(out, WindowSweepPoint{Window: w, Related: related})
	}
	for _, id := range s.deviceIDs {
		s.coalesce(id, s.opts.CoalescenceWindow, false)
	}
	return out
}

// ActivityRow is one row of the Table 3 reproduction: HL-related panics by
// user activity.
type ActivityRow struct {
	Activity string
	// ByCategory maps panic category -> percent of all HL-related panics.
	ByCategory map[string]float64
	Total      float64
}

// ActivityTable reproduces Table 3: the user activity at the time of
// HL-related panics. Percentages are of the total number of related panics.
func (s *Study) ActivityTable() []ActivityRow {
	counts := make(map[string]map[string]int)
	total := 0
	for _, p := range s.Panics() {
		if p.Related == nil {
			continue
		}
		total++
		act := p.Activity
		if act == "" {
			act = "unspecified"
		}
		if counts[act] == nil {
			counts[act] = make(map[string]int)
		}
		counts[act][p.Category]++
	}
	activities := make([]string, 0, len(counts))
	for act := range counts {
		activities = append(activities, act)
	}
	sort.Strings(activities)
	rows := make([]ActivityRow, 0, len(activities))
	for _, act := range activities {
		row := ActivityRow{Activity: act, ByCategory: make(map[string]float64)}
		for cat, n := range counts[act] {
			pct := 100 * float64(n) / float64(total)
			row.ByCategory[cat] = pct
			row.Total += pct
		}
		rows = append(rows, row)
	}
	return rows
}

// RealTimeActivityShare returns the percentage of HL-related panics that
// occurred during a voice call or message — the paper reports ~45%.
func (s *Study) RealTimeActivityShare() float64 {
	related, rt := 0, 0
	for _, p := range s.Panics() {
		if p.Related == nil {
			continue
		}
		related++
		if p.Activity == "voice-call" || p.Activity == "message" {
			rt++
		}
	}
	if related == 0 {
		return 0
	}
	return 100 * float64(rt) / float64(related)
}

// RunningAppsHistogram reproduces Figure 6: the number of running
// applications at panic time.
func (s *Study) RunningAppsHistogram(maxApps int) map[int]int {
	out := make(map[int]int)
	for _, p := range s.Panics() {
		n := len(p.Apps)
		if n > maxApps {
			n = maxApps
		}
		out[n]++
	}
	return out
}

// AppPanicRow is one row of the Table 4 reproduction: for an outcome
// (freeze / self-shutdown / none) and panic category, the percentage of
// panics that had each application running.
type AppPanicRow struct {
	Outcome  string // "freeze", "self-shutdown", or "none"
	Category string
	// ByApp maps application name -> percent of all panics.
	ByApp map[string]float64
}

// AppPanicTable reproduces Table 4: the panic/running-application
// relationship, split by high-level outcome.
func (s *Study) AppPanicTable() []AppPanicRow {
	type cell struct{ outcome, cat, app string }
	counts := make(map[cell]int)
	total := 0
	for _, p := range s.Panics() {
		total++
		outcome := "none"
		if p.Related != nil {
			outcome = string(p.Related.Kind)
		}
		for _, app := range p.Apps {
			counts[cell{outcome, p.Category, app}]++
		}
	}
	if total == 0 {
		return nil
	}
	grouped := make(map[string]map[string]float64)
	for c, n := range counts {
		key := c.outcome + "\x00" + c.cat
		if grouped[key] == nil {
			grouped[key] = make(map[string]float64)
		}
		grouped[key][c.app] = 100 * float64(n) / float64(total)
	}
	keys := make([]string, 0, len(grouped))
	for k := range grouped {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	rows := make([]AppPanicRow, 0, len(keys))
	for _, k := range keys {
		var outcome, cat string
		for i := 0; i < len(k); i++ {
			if k[i] == 0 {
				outcome, cat = k[:i], k[i+1:]
				break
			}
		}
		rows = append(rows, AppPanicRow{Outcome: outcome, Category: cat, ByApp: grouped[k]})
	}
	return rows
}

// TopPanicApps returns the applications most frequently running at panic
// time, as (app, share-percent) pairs sorted descending — the paper singles
// out Messages, Camera, the Bluetooth browser and the call Log.
func (s *Study) TopPanicApps(n int) []AppShare {
	counts := make(map[string]int)
	total := 0
	for _, p := range s.Panics() {
		total++
		for _, app := range p.Apps {
			counts[app]++
		}
	}
	shares := make([]AppShare, 0, len(counts))
	for app, c := range counts {
		shares = append(shares, AppShare{App: app, Percent: 100 * float64(c) / float64(total)})
	}
	sort.Slice(shares, func(i, j int) bool {
		if shares[i].Percent != shares[j].Percent {
			return shares[i].Percent > shares[j].Percent
		}
		return shares[i].App < shares[j].App
	})
	if n > 0 && len(shares) > n {
		shares = shares[:n]
	}
	return shares
}

// AppShare pairs an application with its share of panics.
type AppShare struct {
	App     string
	Percent float64
}
