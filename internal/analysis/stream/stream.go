// Package stream implements the analysis tier as a pipeline of mergeable,
// single-pass accumulators (DESIGN.md §11).
//
// The batch pipeline in internal/analysis materialises the whole dataset
// and re-scans it per table. This package computes the same tables online:
// records are Observed one at a time, per-device ingest/coalesce state lives
// in a small deviceCursor that emits finalized PanicEvent/HLEvents, and each
// experiment folds those events into O(devices + bins) reducer state.
// Partial accumulators built over disjoint device shards Merge into one,
// and every floating-point result is computed at Snapshot time in canonical
// (sorted-device, sorted-key) order, so streaming, batch, and shard-merged
// runs produce byte-identical tables.
//
// Input contract: per device, records must be fed in non-decreasing Time
// order with non-decreasing down-event (PrevTime) order — the natural order
// of a logger's log, of an exported dataset, and of collect.MergeRecords
// output. Devices may be interleaved arbitrarily.
package stream

import (
	"errors"
	"fmt"
	"time"

	"symfail/internal/core"
)

// Accumulator is the contract every streaming experiment implements.
//
// Observe folds one record into the accumulator; per device, records must
// arrive in the package's input order (see the package comment). Merge
// absorbs another accumulator of the same concrete type built over a
// disjoint device set, leaving the argument sealed; it reports ErrSealed,
// ErrTypeMismatch, ErrConfigMismatch or ErrDeviceOverlap without modifying
// either side.
//
// Snapshot is an epoch snapshot: a repeatable, read-only seal of the
// current epoch. On a live accumulator it finalizes a deep copy of the
// pending per-device state and renders the experiment's result from the
// copy, so Observe and Merge may continue afterwards and a later Snapshot
// reflects the records observed since. Snapshot of a fully-fed accumulator
// is byte-identical to the snapshot after Seal.
//
// Seal finalizes the accumulator destructively — the batch path: pending
// cursor state is flushed in place, further Merges return ErrSealed,
// further Observes panic, and Snapshot returns the cached final result.
// The batch finalizers (Tables, Rows, Report, Stats, Finish) seal
// implicitly.
//
// Merge is associative and order-insensitive: any merge tree over any
// device-disjoint sharding of the same observations snapshots to identical
// bytes, because all cross-device floating-point arithmetic is deferred to
// Snapshot and performed in canonical order.
type Accumulator interface {
	Observe(deviceID string, r core.Record)
	Merge(other Accumulator) error
	Snapshot() any
	Seal()
}

// Config tunes the analysis thresholds, defaulting to the paper's choices.
// It is the streaming twin of (and aliased by) analysis.Options.
type Config struct {
	// SelfShutdownThreshold separates self-shutdowns (short automatic
	// reboots) from user-triggered power cycles. The paper picks 360 s
	// after inspecting Figure 2.
	SelfShutdownThreshold time.Duration
	// CoalescenceWindow groups panics with high-level events. The paper
	// picks five minutes after the window sweep of Figure 4.
	CoalescenceWindow time.Duration
	// BurstWindow groups panics into cascades: two panics closer than the
	// window belong to the same burst.
	BurstWindow time.Duration
	// Window is the hard-cutoff horizon of the windowed accumulators
	// (WindowAcc): a snapshot covers the last Window of simulated time,
	// in whole simulated days, ending at the latest observed day.
	Window time.Duration
	// DecayHalfLife is the exponential-decay horizon of the decaying
	// accumulators (DecayAcc): a bucket one half-life old weighs half as
	// much as today's.
	DecayHalfLife time.Duration
}

// DefaultConfig returns the paper's thresholds, a 30-day window and a
// 7-day half-life for the continuous-operation accumulators.
func DefaultConfig() Config {
	return Config{
		SelfShutdownThreshold: 360 * time.Second,
		CoalescenceWindow:     5 * time.Minute,
		BurstWindow:           2 * time.Minute,
		Window:                30 * 24 * time.Hour,
		DecayHalfLife:         7 * 24 * time.Hour,
	}
}

// WithDefaults fills unset (non-positive) thresholds with the paper's.
func (c Config) WithDefaults() Config {
	d := DefaultConfig()
	if c.SelfShutdownThreshold <= 0 {
		c.SelfShutdownThreshold = d.SelfShutdownThreshold
	}
	if c.CoalescenceWindow <= 0 {
		c.CoalescenceWindow = d.CoalescenceWindow
	}
	if c.BurstWindow <= 0 {
		c.BurstWindow = d.BurstWindow
	}
	if c.Window <= 0 {
		c.Window = d.Window
	}
	if c.DecayHalfLife <= 0 {
		c.DecayHalfLife = d.DecayHalfLife
	}
	return c
}

// Merge errors. All are wrapped, so errors.Is works on the results.
var (
	// ErrSealed: the accumulator (or its argument) has been sealed by
	// Seal (or a batch finalizer) and can no longer change.
	ErrSealed = errors.New("stream: accumulator sealed")
	// ErrDeviceOverlap: both sides observed the same device. Shards must
	// be device-disjoint; records of one device cannot be split.
	ErrDeviceOverlap = errors.New("stream: device observed by both merge sides")
	// ErrTypeMismatch: Merge was handed a different accumulator type.
	ErrTypeMismatch = errors.New("stream: cannot merge different accumulator types")
	// ErrConfigMismatch: both sides must use identical thresholds.
	ErrConfigMismatch = errors.New("stream: cannot merge accumulators with different configs")
)

// RegisteredAccumulators is the closed set of Accumulator implementations,
// keyed by type name. The symlint accmerge analyzer statically cross-checks
// this table against the types in this package that implement Accumulator,
// in both directions, and TestRegisteredAccumulators cross-checks it against
// NewRegistered — adding an implementation without registering it here (or
// vice versa) fails `make lint` and the test suite.
var RegisteredAccumulators = map[string]bool{
	"Tables":         true,
	"Collect":        true,
	"Monitor":        true,
	"PanicTableAcc":  true,
	"RebootAcc":      true,
	"MTBFAcc":        true,
	"CoalescenceAcc": true,
	"BurstAcc":       true,
	"ActivityAcc":    true,
	"AppsAcc":        true,
	"WindowAcc":      true,
	"DecayAcc":       true,
}

// NewRegistered constructs one accumulator of every registered type, keyed
// exactly like RegisteredAccumulators. Tests use it to run the merge-law
// suite over every implementation without hand-maintaining a second list.
func NewRegistered(cfg Config) map[string]Accumulator {
	return map[string]Accumulator{
		"Tables":         NewTables(cfg),
		"Collect":        NewCollect(cfg),
		"Monitor":        NewMonitor(),
		"PanicTableAcc":  NewPanicTableAcc(cfg),
		"RebootAcc":      NewRebootAcc(cfg),
		"MTBFAcc":        NewMTBFAcc(cfg),
		"CoalescenceAcc": NewCoalescenceAcc(cfg),
		"BurstAcc":       NewBurstAcc(cfg),
		"ActivityAcc":    NewActivityAcc(cfg),
		"AppsAcc":        NewAppsAcc(cfg),
		"WindowAcc":      NewWindowAcc(cfg),
		"DecayAcc":       NewDecayAcc(cfg),
	}
}

// Peek is a cheap, non-sealing progress summary of an accumulator. Counts
// cover finalized events only: the per-device cursors may still hold a few
// events whose coalescence window has not passed.
type Peek struct {
	Devices  int
	Records  int
	Panics   int
	HLEvents int
	Reboots  int
}

func typeErr(want string, got Accumulator) error {
	return fmt.Errorf("%w: %s vs %T", ErrTypeMismatch, want, got)
}
