package stream_test

import (
	"encoding/json"
	"strings"
	"testing"
	"testing/quick"

	"symfail/internal/analysis/stream"
	"symfail/internal/core"
	"symfail/internal/sim"
)

// TestLiveStudyMatchesBatchPrefix is the live query tier's correctness
// property: a LiveStudy fed an arbitrary prefix of the record stream — with
// duplicate deliveries injected, the at-least-once tap's failure mode — must
// answer exactly like a fresh batch accumulator set fed the same prefix
// once. Snapshots are compared as marshalled bytes, the repo-wide
// equivalence criterion.
func TestLiveStudyMatchesBatchPrefix(t *testing.T) {
	type op struct {
		id string
		r  core.Record
	}
	f := func(seed uint64) bool {
		ds := randomDevices(seed)
		ids := sortedIDs(ds)
		var ops []op
		for i := 0; ; i++ {
			fed := false
			for _, id := range ids {
				if i < len(ds[id]) {
					ops = append(ops, op{id, ds[id][i]})
					fed = true
				}
			}
			if !fed {
				break
			}
		}
		r := sim.NewRand(seed ^ 0x11fe)
		cut := r.Intn(len(ops) + 1)
		cfg := stream.Config{}

		live := stream.NewLiveStudy(cfg)
		for i, o := range ops[:cut] {
			live.Observe(o.id, o.r)
			// Replay every third delivery, and occasionally an arbitrary
			// earlier one — out-of-order duplicates included.
			if i%3 == 0 {
				live.Observe(o.id, o.r)
			}
			if i > 0 && r.Bool(0.2) {
				p := ops[r.Intn(i)]
				live.Observe(p.id, p.r)
			}
		}
		if live.Records() != cut {
			t.Errorf("seed %d: live saw %d distinct records, fed %d", seed, live.Records(), cut)
			return false
		}
		if cut > 1 && live.Duplicates() == 0 {
			t.Errorf("seed %d: no duplicates recorded despite injected replays", seed)
			return false
		}

		tables := stream.NewTables(cfg)
		window := stream.NewWindowAcc(cfg)
		decay := stream.NewDecayAcc(cfg)
		seen := make(map[string]bool)
		for _, o := range ops[:cut] {
			if !seen[o.id] {
				seen[o.id] = true
				tables.AddDevice(o.id)
			}
			tables.Observe(o.id, o.r)
			window.Observe(o.id, o.r)
			decay.Observe(o.id, o.r)
		}

		ok := true
		check := func(name string, got, want any) {
			g, err := json.Marshal(got)
			if err != nil {
				t.Fatal(err)
			}
			w, err := json.Marshal(want)
			if err != nil {
				t.Fatal(err)
			}
			if string(g) != string(w) {
				t.Errorf("seed %d cut %d: live %s differs from batch prefix:\n got %s\nwant %s",
					seed, cut, name, g, w)
				ok = false
			}
		}
		check("tables", live.Tables(), tables.Snapshot())
		check("window", live.Window(0), window.Snapshot())
		check("window30", live.Window(30), window.Stats(30))
		check("decay", live.Decay(), decay.Snapshot())
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// TestLiveStudyQueries exercises the query surface itself: every supported
// name answers single-line JSON consistent with the snapshots, unknown names
// and bad arguments error.
func TestLiveStudyQueries(t *testing.T) {
	ds := randomDevices(42)
	live := stream.NewLiveStudy(stream.Config{})
	feedAll(ds, nil, live.Observe)

	for _, q := range []struct {
		name string
		args []string
	}{
		{"status", nil},
		{"mtbf", nil},
		{"panics", nil},
		{"panics", []string{"2"}},
		{"freezerate", nil},
		{"freezerate", []string{"30"}},
	} {
		out, err := live.Query(q.name, q.args)
		if err != nil {
			t.Fatalf("query %s %v: %v", q.name, q.args, err)
		}
		if strings.Contains(out, "\n") || !json.Valid([]byte(out)) {
			t.Fatalf("query %s %v: answer not single-line JSON: %q", q.name, q.args, out)
		}
	}

	var st stream.LiveStatus
	out, err := live.Query("status", nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(out), &st); err != nil {
		t.Fatal(err)
	}
	if st.Records != live.Records() || st.Devices != len(ds) || st.Duplicates != 0 {
		t.Errorf("status answer %+v inconsistent with study (%d records, %d devices)",
			st, live.Records(), len(ds))
	}

	var pan stream.LivePanics
	out, err = live.Query("panics", []string{"2"})
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal([]byte(out), &pan); err != nil {
		t.Fatal(err)
	}
	if want := live.Decay().PanicTable; len(want) > 2 && len(pan.Top) != 2 {
		t.Errorf("panics 2 returned %d rows, want 2 (of %d)", len(pan.Top), len(want))
	}

	if _, err := live.Query("bogus", nil); err == nil {
		t.Error("unknown query name did not error")
	}
	if _, err := live.Query("panics", []string{"x"}); err == nil {
		t.Error("non-integer argument did not error")
	}
	if _, err := live.Query("mtbf", []string{"1"}); err == nil {
		t.Error("mtbf with an argument did not error")
	}
}
