// Package collect implements the study's log-collection infrastructure:
// instrumented phones periodically upload their consolidated Log Files to a
// collection server, where the analysis pipeline picks them up (the paper
// references an automated software infrastructure for transferring Log
// Files from the phones [1]).
//
// The transfer protocol is a deliberately simple line-oriented TCP
// exchange:
//
//	client: UPLOAD <device-id> <n-bytes> <crc32c-hex>\n  then n raw bytes
//	server: OK\n     on success
//	        ERR <reason>\n otherwise
//
// The CRC-32C trailer field guards against truncated or corrupted
// transfers — phones upload over flaky bearers.
//
// Uploads are idempotent per device: each upload replaces the previous one,
// because devices always upload their full Log File.
package collect

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"net"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"symfail/internal/core"
)

// castagnoli is the CRC-32C table used for upload integrity.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// MaxUploadBytes bounds a single upload (a phone's full study log is well
// under a megabyte; anything larger is a protocol violation).
const MaxUploadBytes = 16 << 20

// ErrTooLarge is returned when an upload exceeds MaxUploadBytes.
var ErrTooLarge = errors.New("collect: upload too large")

// Dataset is the collected study data: the raw Log File bytes per device.
type Dataset struct {
	mu    sync.Mutex
	files map[string][]byte
}

// NewDataset returns an empty dataset.
func NewDataset() *Dataset {
	return &Dataset{files: make(map[string][]byte)}
}

// Put stores (replaces) a device's log.
func (ds *Dataset) Put(deviceID string, data []byte) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	ds.files[deviceID] = append([]byte(nil), data...)
}

// Get returns a copy of a device's log.
func (ds *Dataset) Get(deviceID string) ([]byte, bool) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	data, ok := ds.files[deviceID]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), data...), true
}

// Devices returns the device IDs present, sorted.
func (ds *Dataset) Devices() []string {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	out := make([]string, 0, len(ds.files))
	for id := range ds.files {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Records parses a device's log into records.
func (ds *Dataset) Records(deviceID string) []core.Record {
	data, ok := ds.Get(deviceID)
	if !ok {
		return nil
	}
	return core.ParseRecords(data)
}

// AllRecords parses every device's log, keyed by device ID.
func (ds *Dataset) AllRecords() map[string][]core.Record {
	out := make(map[string][]core.Record)
	for _, id := range ds.Devices() {
		out[id] = ds.Records(id)
	}
	return out
}

// Server is the collection server.
type Server struct {
	ds       *Dataset
	listener net.Listener
	wg       sync.WaitGroup
	mu       sync.Mutex
	closed   bool
	uploads  int
}

// NewServer starts a collection server on addr ("127.0.0.1:0" picks a free
// port) feeding the given dataset.
func NewServer(addr string, ds *Dataset) (*Server, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("collect: listen: %w", err)
	}
	s := &Server{ds: ds, listener: l}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Uploads returns the number of successful uploads served.
func (s *Server) Uploads() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.uploads
}

// Close stops accepting connections and waits for in-flight uploads.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.listener.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			return // listener closed
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			s.handle(conn)
		}()
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	//symlint:allow determinism network I/O deadline on a real socket, not simulated time
	if err := conn.SetDeadline(time.Now().Add(30 * time.Second)); err != nil {
		return
	}
	r := bufio.NewReader(conn)
	header, err := r.ReadString('\n')
	if err != nil {
		return
	}
	id, size, sum, err := parseHeader(header)
	if err != nil {
		fmt.Fprintf(conn, "ERR %v\n", err)
		return
	}
	data := make([]byte, size)
	if _, err := io.ReadFull(r, data); err != nil {
		fmt.Fprintf(conn, "ERR short body: %v\n", err)
		return
	}
	if got := crc32.Checksum(data, castagnoli); got != sum {
		fmt.Fprintf(conn, "ERR checksum mismatch: got %08x want %08x\n", got, sum)
		return
	}
	s.ds.PutMerged(id, data)
	s.mu.Lock()
	s.uploads++
	s.mu.Unlock()
	fmt.Fprint(conn, "OK\n")
}

func parseHeader(line string) (id string, size int, sum uint32, err error) {
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) != 4 || fields[0] != "UPLOAD" {
		return "", 0, 0, errors.New("bad header")
	}
	id = fields[1]
	size, err = strconv.Atoi(fields[2])
	if err != nil || size < 0 {
		return "", 0, 0, errors.New("bad size")
	}
	if size > MaxUploadBytes {
		return "", 0, 0, ErrTooLarge
	}
	crc, err := strconv.ParseUint(fields[3], 16, 32)
	if err != nil {
		return "", 0, 0, errors.New("bad checksum")
	}
	return id, size, uint32(crc), nil
}

// Upload sends a device's log to the collection server at addr.
func Upload(addr, deviceID string, data []byte) error {
	if len(data) > MaxUploadBytes {
		return ErrTooLarge
	}
	if strings.ContainsAny(deviceID, " \n\t") || deviceID == "" {
		return fmt.Errorf("collect: invalid device id %q", deviceID)
	}
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return fmt.Errorf("collect: dial %s: %w", addr, err)
	}
	defer conn.Close()
	//symlint:allow determinism network I/O deadline on a real socket, not simulated time
	if err := conn.SetDeadline(time.Now().Add(30 * time.Second)); err != nil {
		return fmt.Errorf("collect: deadline: %w", err)
	}
	if _, err := fmt.Fprintf(conn, "UPLOAD %s %d %08x\n", deviceID, len(data), crc32.Checksum(data, castagnoli)); err != nil {
		return fmt.Errorf("collect: send header: %w", err)
	}
	if _, err := conn.Write(data); err != nil {
		return fmt.Errorf("collect: send body: %w", err)
	}
	reply, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return fmt.Errorf("collect: read reply: %w", err)
	}
	reply = strings.TrimSpace(reply)
	if reply != "OK" {
		return fmt.Errorf("collect: server rejected upload: %s", reply)
	}
	return nil
}

// PutMerged stores a device's log, preserving records the previous copy
// had but the new one lost — after a master reset the phone re-uploads a
// freshly started log, and the server must not forget the pre-reset study
// data. Records are deduplicated by their exact serialized form and kept
// in timestamp order.
func (ds *Dataset) PutMerged(deviceID string, data []byte) {
	ds.mu.Lock()
	defer ds.mu.Unlock()
	old, ok := ds.files[deviceID]
	if !ok {
		ds.files[deviceID] = append([]byte(nil), data...)
		return
	}
	seen := make(map[string]bool)
	var recs []core.Record
	for _, blob := range [][]byte{old, data} {
		for _, r := range core.ParseRecords(blob) {
			key := string(core.EncodeRecord(r))
			if seen[key] {
				continue
			}
			seen[key] = true
			recs = append(recs, r)
		}
	}
	sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time < recs[j].Time })
	var merged []byte
	for _, r := range recs {
		merged = append(merged, core.EncodeRecord(r)...)
	}
	ds.files[deviceID] = merged
}
