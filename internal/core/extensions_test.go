package core_test

import (
	"testing"
	"time"

	"symfail/internal/analysis"
	"symfail/internal/core"
	"symfail/internal/phone"
	"symfail/internal/sim"
)

func TestUserReporterCapturesSomeOutputFailures(t *testing.T) {
	eng := sim.NewEngine()
	cfg := phone.DefaultConfig(21)
	cfg.PanicOpportunityPerHour = 0
	cfg.SpontaneousFreezePerHour = 0
	cfg.SpontaneousShutdownPerHour = 0
	cfg.OutputFailurePerHour = 1.0 / 10 // frequent, for test statistics
	d := phone.NewDevice("ur-test", eng, cfg)
	core.Install(d, core.Config{})
	u := core.InstallUserReporter(d, core.UserReporterConfig{})
	d.Enroll(sim.Epoch)
	if err := eng.Run(sim.Epoch.Add(30 * 24 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	d.Finalize()

	truth := d.Oracle().Count(phone.TruthOutputFailure)
	if truth < 20 {
		t.Fatalf("too few ground-truth output failures: %d", truth)
	}
	reports := u.Reports()
	if len(reports) == 0 {
		t.Fatal("no user reports at all")
	}
	cov := u.ReportingCoverage()
	// The channel must be lossy (that is the point), but not useless:
	// defaults are notice 0.8 x report 0.45 ~ 36%, minus phone-off losses.
	if cov <= 0.10 || cov >= 0.60 {
		t.Errorf("reporting coverage = %.2f, want lossy-but-useful (~0.3)", cov)
	}
	if u.Noticed() < len(reports) {
		t.Errorf("noticed (%d) < reported (%d)", u.Noticed(), len(reports))
	}
	for _, r := range reports {
		if r.Kind != core.KindUserReport {
			t.Fatalf("wrong kind %q", r.Kind)
		}
		if r.Time < r.PrevTime {
			t.Errorf("report at %d precedes its failure at %d", r.Time, r.PrevTime)
		}
		if r.Detected == "" {
			t.Error("report lacks a detail")
		}
	}
}

func TestUserReporterDoesNotPerturbStudy(t *testing.T) {
	run := func(withReporter bool) int {
		eng := sim.NewEngine()
		d := phone.NewDevice("fixed-id", eng, phone.DefaultConfig(33))
		core.Install(d, core.Config{})
		if withReporter {
			core.InstallUserReporter(d, core.UserReporterConfig{})
		}
		d.Enroll(sim.Epoch)
		if err := eng.Run(sim.Epoch.Add(40 * 24 * time.Hour)); err != nil {
			t.Fatal(err)
		}
		d.Finalize()
		return d.Oracle().PanicCount() + d.Oracle().Failures()*1000
	}
	if a, b := run(false), run(true); a != b {
		t.Errorf("installing the reporter changed the study: %d vs %d", a, b)
	}
}

func TestDExcCapturesPanicsButNoContext(t *testing.T) {
	eng := sim.NewEngine()
	cfg := phone.DefaultConfig(27)
	d := phone.NewDevice("dexc-test", eng, cfg)
	l := core.Install(d, core.Config{})
	x := core.InstallDExc(d, "")
	d.Enroll(sim.Epoch)
	if err := eng.Run(sim.Epoch.Add(60 * 24 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	d.Finalize()

	var fullPanics []core.Record
	for _, r := range l.Records() {
		if r.Kind == core.KindPanic {
			fullPanics = append(fullPanics, r)
		}
	}
	dexc := x.Records()
	if len(dexc) == 0 {
		t.Fatal("D_EXC captured nothing")
	}
	if len(dexc) != len(fullPanics) {
		t.Errorf("D_EXC panics = %d, full logger = %d (both subscribe to RDebug)",
			len(dexc), len(fullPanics))
	}
	for _, r := range dexc {
		if len(r.Apps) != 0 || r.Activity != "" {
			t.Fatalf("D_EXC record has context it cannot have: %+v", r)
		}
	}
}

func TestDExcAnalysisCapabilityGap(t *testing.T) {
	// The quantitative version of the paper's section 3 argument: feed
	// both logs through the same pipeline and compare what each can
	// answer.
	eng := sim.NewEngine()
	d := phone.NewDevice("gap-test", eng, phone.DefaultConfig(31))
	l := core.Install(d, core.Config{})
	x := core.InstallDExc(d, "")
	d.Enroll(sim.Epoch)
	// Half a year so that panic-induced failures are statistically certain.
	if err := eng.Run(sim.Epoch.Add(180 * 24 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	d.Finalize()

	full := analysis.New(map[string][]core.Record{"p": l.Records()}, analysis.Options{})
	base := analysis.New(map[string][]core.Record{"p": x.Records()}, analysis.Options{})

	// Both reproduce Table 2 (same panic stream).
	if len(full.PanicTable()) == 0 || len(base.PanicTable()) == 0 {
		t.Fatal("panic tables empty")
	}
	if len(full.Panics()) != len(base.Panics()) {
		t.Errorf("panic counts differ: %d vs %d", len(full.Panics()), len(base.Panics()))
	}
	// Only the full logger can relate panics to failures, activities and
	// applications.
	if full.Coalesce().RelatedPanics == 0 {
		t.Error("full logger found no panic/HL relations (unexpected for 90 days)")
	}
	if got := base.Coalesce().RelatedPanics; got != 0 {
		t.Errorf("D_EXC somehow related %d panics to HL events", got)
	}
	if len(base.HLEvents()) != 0 {
		t.Error("D_EXC reconstructed HL events without a heartbeat")
	}
	if rows := base.ActivityTable(); len(rows) != 0 {
		t.Errorf("D_EXC produced an activity table: %v", rows)
	}
	if hist := base.RunningAppsHistogram(8); hist[0] != len(base.Panics()) {
		t.Errorf("D_EXC running-apps histogram should be all-zeros bucket: %v", hist)
	}
}
