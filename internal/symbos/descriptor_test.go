package symbos

import (
	"testing"
	"testing/quick"

	"symfail/internal/sim"
)

func TestBufCopyAppend(t *testing.T) {
	k, proc := newTestKernel(t)
	k.Exec(proc.Main(), "buf", func() {
		b := NewBuf(k, 10)
		b.Copy("hello")
		if b.String() != "hello" || b.Len() != 5 {
			t.Errorf("after Copy: %q len %d", b.String(), b.Len())
		}
		b.Append("12345")
		if b.String() != "hello12345" {
			t.Errorf("after Append: %q", b.String())
		}
		if b.MaxLength() != 10 {
			t.Errorf("MaxLength = %d", b.MaxLength())
		}
		b.Copy("x") // Copy replaces
		if b.String() != "x" {
			t.Errorf("Copy did not replace: %q", b.String())
		}
	})
}

func TestBufCopyOverflowPanics(t *testing.T) {
	k, proc := newTestKernel(t)
	expectPanic(t, k, proc, CatUser, TypeDesOverflow, func() {
		NewBuf(k, 3).Copy("abcd")
	})
}

func TestBufAppendOverflowPanics(t *testing.T) {
	k, proc := newTestKernel(t)
	expectPanic(t, k, proc, CatUser, TypeDesOverflow, func() {
		b := NewBuf(k, 4)
		b.Copy("abc")
		b.Append("de")
	})
}

func TestBufInsertDeleteReplace(t *testing.T) {
	k, proc := newTestKernel(t)
	k.Exec(proc.Main(), "ops", func() {
		b := NewBuf(k, 20)
		b.Copy("hello world")
		b.Insert(5, ",")
		if b.String() != "hello, world" {
			t.Errorf("Insert: %q", b.String())
		}
		b.Delete(5, 1)
		if b.String() != "hello world" {
			t.Errorf("Delete: %q", b.String())
		}
		b.Replace(6, 5, "there")
		if b.String() != "hello there" {
			t.Errorf("Replace: %q", b.String())
		}
	})
}

func TestBufPositionPanics(t *testing.T) {
	k, proc := newTestKernel(t)
	cases := []struct {
		name string
		fn   func(b *Buf)
	}{
		{"Insert", func(b *Buf) { b.Insert(99, "x") }},
		{"InsertNegative", func(b *Buf) { b.Insert(-1, "x") }},
		{"Delete", func(b *Buf) { b.Delete(4, 5) }},
		{"Replace", func(b *Buf) { b.Replace(3, 9, "y") }},
		{"Mid", func(b *Buf) { b.Mid(2, 10) }},
		{"Left", func(b *Buf) { b.Left(9) }},
		{"Right", func(b *Buf) { b.Right(-2) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectPanic(t, k, proc, CatUser, TypeDesIndexOutOfRange, func() {
				b := NewBuf(k, 16)
				b.Copy("abcdef")
				tc.fn(b)
			})
		})
	}
}

func TestBufExtraction(t *testing.T) {
	k, proc := newTestKernel(t)
	k.Exec(proc.Main(), "extract", func() {
		b := NewBuf(k, 16)
		b.Copy("abcdef")
		if got := b.Mid(2, 3); got != "cde" {
			t.Errorf("Mid = %q", got)
		}
		if got := b.Left(2); got != "ab" {
			t.Errorf("Left = %q", got)
		}
		if got := b.Right(2); got != "ef" {
			t.Errorf("Right = %q", got)
		}
	})
}

func TestBufSetLengthAndZeroTerminate(t *testing.T) {
	k, proc := newTestKernel(t)
	k.Exec(proc.Main(), "setlen", func() {
		b := NewBuf(k, 8)
		b.Copy("abc")
		b.SetLength(6)
		if b.Len() != 6 {
			t.Errorf("Len = %d", b.Len())
		}
		b.SetLength(2)
		if b.String() != "ab" {
			t.Errorf("truncate: %q", b.String())
		}
		b.ZeroTerminate()
		if b.Len() != 3 {
			t.Errorf("after ZeroTerminate len = %d", b.Len())
		}
	})
	expectPanic(t, k, proc, CatUser, TypeDesOverflow, func() {
		NewBuf(k, 4).SetLength(5)
	})
	expectPanic(t, k, proc, CatUser, TypeDesOverflow, func() {
		b := NewBuf(k, 2)
		b.Copy("ab")
		b.ZeroTerminate()
	})
}

func TestBufAppendFill(t *testing.T) {
	k, proc := newTestKernel(t)
	k.Exec(proc.Main(), "fill", func() {
		b := NewBuf(k, 6)
		b.AppendFill('z', 3)
		if b.String() != "zzz" {
			t.Errorf("AppendFill: %q", b.String())
		}
	})
	expectPanic(t, k, proc, CatUser, TypeDesOverflow, func() {
		NewBuf(k, 2).AppendFill('x', 3)
	})
	expectPanic(t, k, proc, CatUser, TypeDesIndexOutOfRange, func() {
		NewBuf(k, 2).AppendFill('x', -1)
	})
}

func TestBufLengthNeverExceedsMaxProperty(t *testing.T) {
	// Property: any sequence of descriptor operations either panics with a
	// USER panic or leaves Len() <= MaxLength(). This is the invariant the
	// bounds checks defend.
	f := func(seed uint64) bool {
		eng := sim.NewEngine()
		k := NewKernel(eng)
		proc := k.StartProcess("Prop", false)
		r := sim.NewRand(seed)
		b := NewBuf(k, 8)
		ok := true
		for i := 0; i < 40; i++ {
			k.Exec(proc.Main(), "op", func() {
				switch r.Intn(5) {
				case 0:
					b.Copy(randString(r, 12))
				case 1:
					b.Append(randString(r, 6))
				case 2:
					b.Insert(r.Intn(10)-1, randString(r, 4))
				case 3:
					if b.Len() > 0 {
						b.Delete(r.Intn(b.Len()+2), r.Intn(4))
					}
				case 4:
					b.SetLength(r.Intn(12))
				}
			})
			if b.Len() > b.MaxLength() {
				ok = false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func randString(r *sim.Rand, maxLen int) string {
	n := r.Intn(maxLen + 1)
	out := make([]rune, n)
	for i := range out {
		out[i] = rune('a' + r.Intn(26))
	}
	return string(out)
}
