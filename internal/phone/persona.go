package phone

// Persona captures per-user heterogeneity: the study's 25 phones belonged
// to students, researchers and professors whose usage differed widely.
// A persona scales the balanced calibration; the fleet draws personas so
// aggregate rates stay near the calibrated mean while per-device failure
// rates disperse realistically (see analysis.MTBFDispersion).
type Persona string

// Personas.
const (
	PersonaBalanced Persona = "balanced"
	PersonaCaller   Persona = "caller" // lives on the phone, mostly voice
	PersonaTexter   Persona = "texter" // heavy messaging, lighter calls
	PersonaLight    Persona = "light"  // rare use, phone often off at night
	PersonaPower    Persona = "power"  // heavy everything, experiments with apps
)

// personaMix weighs the personas in a default fleet. The scales are chosen
// so the weighted means stay close to 1.0 on every axis.
var personaMix = []struct {
	p Persona
	w float64
}{
	{PersonaBalanced, 36},
	{PersonaCaller, 18},
	{PersonaTexter, 18},
	{PersonaLight, 14},
	{PersonaPower, 14},
}

// ApplyPersona rescales a balanced config in place. Personas that adjust
// the activity mix replace cfg.ActivityMix with a scaled clone rather
// than writing through it: DefaultConfig hands out a shared table, and a
// write there would leak one device's persona into every other phone.
func ApplyPersona(cfg *Config, p Persona) {
	cfg.Persona = p
	switch p {
	case PersonaCaller:
		cfg.ActivitiesPerDay *= 1.25
		cfg.ActivityMix = scaledMix(cfg.ActivityMix, map[Activity]float64{ActVoiceCall: 1.8, ActMessage: 0.7})
		cfg.NightOffProb *= 0.8
	case PersonaTexter:
		cfg.ActivitiesPerDay *= 1.15
		cfg.ActivityMix = scaledMix(cfg.ActivityMix, map[Activity]float64{ActVoiceCall: 0.6, ActMessage: 1.9})
	case PersonaLight:
		cfg.ActivitiesPerDay *= 0.55
		cfg.NightOffProb = minF(1, cfg.NightOffProb*2.2)
		cfg.PanicOpportunityPerHour *= 0.8
		cfg.SpontaneousFreezePerHour *= 0.85
		cfg.SpontaneousShutdownPerHour *= 0.85
	case PersonaPower:
		cfg.ActivitiesPerDay *= 1.5
		cfg.ActivityMix = scaledMix(cfg.ActivityMix, map[Activity]float64{ActCamera: 1.6, ActBluetooth: 1.8, ActNav: 1.7})
		cfg.PanicOpportunityPerHour *= 1.3
		cfg.SpontaneousFreezePerHour *= 1.2
		cfg.SpontaneousShutdownPerHour *= 1.2
		cfg.LingerProb = minF(1, cfg.LingerProb*1.6)
	default:
		cfg.Persona = PersonaBalanced
	}
}

// scaledMix clones a mix and multiplies the weights of the listed
// activities by the paired factors. Activities absent from the mix stay
// absent — a zero-weight entry and a missing one are equivalent to the
// workload sampler.
func scaledMix(m map[Activity]float64, scales map[Activity]float64) map[Activity]float64 {
	out := make(map[Activity]float64, len(m))
	for a, w := range m {
		if f, ok := scales[a]; ok {
			w *= f
		}
		out[a] = w
	}
	return out
}

func minF(a, b float64) float64 {
	if a < b {
		return a
	}
	return b
}
