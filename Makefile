# symfail — reproduction of "How Do Mobile Phones Fail?" (DSN 2007).

GO ?= go

.PHONY: all build vet lint lint-json check chaos chaos-kill chaos-fleet chaos-replica chaos-checkpoint fuzz parallel stream test test-short bench bench-parallel bench-analysis bench-resnapshot bench-check repro repro-quick montecarlo cover clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static enforcement of the determinism and panic-taxonomy contracts
# (see DESIGN.md "Determinism contract & static enforcement").
lint:
	$(GO) run ./cmd/symlint ./...

# Machine-readable lint report (CI archives this as an artifact). The exit
# code is preserved: 1 when findings exist, so `make lint-json` still gates.
lint-json:
	$(GO) run ./cmd/symlint -json ./... > symlint-report.json; status=$$?; cat symlint-report.json; exit $$status

# The CI gate: vet, contract lint, and race-enabled short tests.
check: vet lint
	$(GO) test -race -short ./...

# The chaos harness: the fleet under deterministic flash + network fault
# injection, sharded across workers, under the race detector (see
# DESIGN.md §8, §9).
chaos:
	$(GO) test -race -run 'TestChaos' -v .

# The kill-anything harness: chaos plus injected collection-server crashes
# — the supervisor kills the server at drawn crashpoints mid-study and
# recovers it from its write-ahead log; no acknowledged record may be lost
# or duplicated (DESIGN.md §10).
chaos-kill:
	$(GO) test -race -run 'TestKillAnything' -v .

# The fleet kill-any-subset harness: the collection tier sharded across
# three servers behind the device-hash router, with RNG-drawn subsets of
# {shards, router} killed at every crashpoint (handoff and rebalance
# aborts included), one shard joining and one leaving mid-study — every
# acknowledged record exactly once, whatever dies (DESIGN.md §13).
chaos-fleet:
	$(GO) test -race -run 'TestFleetKillAnything' -v .

# The quorum replication harness: the three-shard fleet with write-time
# R=3/W=2 replication, heartbeat failure detection and below-quorum
# refusal, under the same kill-any-subset crossfire (plus Workers:4 and
# the race detector) — zero acknowledged loss without crash handoff, and
# no healthy shard ever confirmed dead (DESIGN.md §15).
chaos-replica:
	$(GO) test -race -run 'TestReplicaKillAnything' -v .

# The checkpoint/resume harness: a continuous study over a Workers:4 fleet
# dataset, killed at RNG-drawn points — mid-record-stream and inside the
# checkpoint write/sync/rename protocol itself — and resumed from the
# crash-surviving store; the eventual tables must be byte-identical to an
# uninterrupted run (DESIGN.md §16).
chaos-checkpoint:
	$(GO) test -race -run 'TestCheckpoint' -v .

# Fuzz the collection server's wire protocol end to end for a short burst
# (panics and wedged servers fail the run; CI uses the seed corpus only).
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzServerHeader -fuzztime 30s ./internal/collect/

# Serial-vs-parallel equivalence: workers 1/2/4/8 must reproduce the
# golden fingerprints byte-for-byte, under the race detector (DESIGN.md §9).
parallel:
	$(GO) test -race -run 'ParallelEquivalence' -v .

# Streaming-vs-batch equivalence: the single-pass accumulators, the batch
# Study, and shard-merged partial accumulators must snapshot to identical
# bytes, anchored to the pinned golden fingerprints, under the race
# detector (DESIGN.md §11).
stream:
	$(GO) test -race -run 'Stream' -v . ./internal/analysis/...

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Fleet-scaling grid (phones x workers) -> BENCH_parallel.json.
bench-parallel:
	$(GO) test -run xxx -bench BenchmarkFleetScaling -benchtime 1x .

# Batch-vs-stream analysis pipelines -> BENCH_analysis.json.
bench-analysis:
	$(GO) test -run xxx -bench BenchmarkStudyStreamVsBatch -benchtime 5x .

# Epoch-snapshot overhead on loaded live accumulators -> BENCH_resnapshot.json.
bench-resnapshot:
	$(GO) test -run xxx -bench BenchmarkResnapshotOverhead -benchtime 20x .

# Perf-regression gate: re-measure the quick benchmark cells into fresh
# reports (committed baselines untouched) and diff against the committed
# BENCH_*.json. Allocs/op always gates at benchdiff's 0.5% slack — wide
# enough for one-off lazy-init jitter, two orders of magnitude below a
# per-record leak. Throughput gates at BENCH_THRESHOLD, which
# defaults wide (50%) because the committed baselines come from the
# reference container and CI/dev hosts differ in both hardware and load
# (measured same-host noise alone spans ±20%): the wide default catches
# a lost fast path or accidental O(n^2), not scheduler jitter. For a
# same-host before/after comparison, tighten it:
# `make bench-check BENCH_THRESHOLD=0.10` (benchdiff's own default).
# The large-fleet cells (100k/1M phones) are skipped here — their
# anchored regex keeps this target CI-sized; refresh them with
# `make bench-parallel` when touching the engine hot path.
BENCH_THRESHOLD ?= 0.5
bench-check:
	BENCH_PARALLEL_OUT=.bench_new_parallel.json \
		$(GO) test -run xxx -bench 'BenchmarkFleetScaling/phones=(25|100|1000)$$/' -benchtime 1x .
	BENCH_ANALYSIS_OUT=.bench_new_analysis.json \
		$(GO) test -run xxx -bench BenchmarkStudyStreamVsBatch -benchtime 5x .
	BENCH_RESNAPSHOT_OUT=.bench_new_resnapshot.json \
		$(GO) test -run xxx -bench BenchmarkResnapshotOverhead -benchtime 20x .
	$(GO) run ./cmd/benchdiff -threshold $(BENCH_THRESHOLD) BENCH_parallel.json .bench_new_parallel.json
	$(GO) run ./cmd/benchdiff -threshold $(BENCH_THRESHOLD) BENCH_analysis.json .bench_new_analysis.json
	$(GO) run ./cmd/benchdiff -threshold $(BENCH_THRESHOLD) BENCH_resnapshot.json .bench_new_resnapshot.json
	rm -f .bench_new_parallel.json .bench_new_analysis.json .bench_new_resnapshot.json

# The whole paper: sections 4-6, every table and figure (~10 s).
repro:
	$(GO) run ./cmd/symfail -extras

repro-quick:
	$(GO) run ./cmd/symfail -quick

# Seed-noise quantification: replicate the study, report CIs per metric.
montecarlo:
	$(GO) run ./cmd/montecarlo -runs 20 -phones 10 -months 6

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
