package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// AccMergeConfig wires the accmerge analyzer to the module layout.
type AccMergeConfig struct {
	// StreamPkg is the package defining the streaming accumulators.
	StreamPkg string
	// IfaceName is the accumulator interface inside StreamPkg.
	IfaceName string
	// TableVar is the map[string]bool registry of implementations inside
	// StreamPkg, keyed by concrete type name.
	TableVar string
	// RecordPkg / RecordName locate the raw record type accumulators must
	// not retain past Observe.
	RecordPkg  string
	RecordName string
}

// DefaultAccMergeConfig matches the symfail module.
var DefaultAccMergeConfig = AccMergeConfig{
	StreamPkg:  "symfail/internal/analysis/stream",
	IfaceName:  "Accumulator",
	TableVar:   "RegisteredAccumulators",
	RecordPkg:  "symfail/internal/core",
	RecordName: "Record",
}

// NewAccMerge builds the accmerge analyzer. It enforces the streaming
// accumulator contract statically, anchored at the stream package:
//
//   - registry closure, both directions: every concrete type in the package
//     implementing the Accumulator interface must be a key of the
//     RegisteredAccumulators table (so the merge-law test suite exercises
//     it), and every table key must name such a type;
//   - bounded memory: no accumulator — nor any same-package struct reachable
//     from one through its fields — may declare a field retaining the raw
//     record type (a Record, []Record, map of Records, ...). Records must be
//     folded into O(devices + bins) state inside Observe, not hoarded.
//     Non-accumulator types (e.g. the one-device Feeder buffer) are exempt.
func NewAccMerge(cfg AccMergeConfig) *Analyzer {
	if cfg.StreamPkg == "" {
		cfg = DefaultAccMergeConfig
	}
	a := &Analyzer{
		Name: "accmerge",
		Doc:  "cross-check stream accumulator implementations against the registry and forbid raw-record retention",
	}
	a.Run = func(pass *Pass) {
		if pass.Pkg.Path != cfg.StreamPkg {
			return
		}
		scope := pass.Pkg.Types.Scope()
		ifaceObj, ok := scope.Lookup(cfg.IfaceName).(*types.TypeName)
		if !ok {
			pass.Reportf(pass.Pkg.Files[0].Pos(),
				"interface %s.%s not found", cfg.StreamPkg, cfg.IfaceName)
			return
		}
		iface, ok := ifaceObj.Type().Underlying().(*types.Interface)
		if !ok {
			pass.Reportf(ifaceObj.Pos(), "%s is not an interface", cfg.IfaceName)
			return
		}
		table, tablePos := loadPanicTable(pass.Pkg, cfg.TableVar)
		if table == nil {
			pass.Reportf(pass.Pkg.Files[0].Pos(),
				"registry %s.%s not found or not a map[string]... literal", cfg.StreamPkg, cfg.TableVar)
			return
		}
		record := lookupRecordType(pass.Pkg, cfg)

		// Collect the concrete implementations declared in the package.
		var implNames []string
		impls := make(map[string]*types.TypeName)
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn == ifaceObj || tn.IsAlias() {
				continue
			}
			if _, isIface := tn.Type().Underlying().(*types.Interface); isIface {
				continue
			}
			if types.Implements(tn.Type(), iface) || types.Implements(types.NewPointer(tn.Type()), iface) {
				implNames = append(implNames, name)
				impls[name] = tn
			}
		}
		sort.Strings(implNames)

		for _, name := range implNames {
			if !table[name] {
				pass.Reportf(impls[name].Pos(),
					"%s implements %s but is not registered in %s: the merge-law test suite will not exercise it", name, cfg.IfaceName, cfg.TableVar)
			}
		}
		keys := make([]string, 0, len(table))
		for k := range table {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if impls[k] == nil {
				pass.Reportf(tablePos[k].Pos(),
					"registered accumulator %q has no implementation in %s", k, cfg.StreamPkg)
			}
		}

		if record == nil {
			pass.Reportf(pass.Pkg.Files[0].Pos(),
				"record type %s.%s not found (is the package imported?)", cfg.RecordPkg, cfg.RecordName)
			return
		}
		checkRetention(pass, cfg, impls, implNames, record)
	}
	return a
}

// lookupRecordType resolves the raw record type, either from the stream
// package itself or from one of its imports.
func lookupRecordType(pkg *Package, cfg AccMergeConfig) types.Type {
	lookup := func(p *types.Package) types.Type {
		if tn, ok := p.Scope().Lookup(cfg.RecordName).(*types.TypeName); ok {
			return tn.Type()
		}
		return nil
	}
	if pkg.Path == cfg.RecordPkg {
		return lookup(pkg.Types)
	}
	for _, imp := range pkg.Types.Imports() {
		if imp.Path() == cfg.RecordPkg {
			return lookup(imp)
		}
	}
	return nil
}

// checkRetention reports every struct field that would hold raw records in
// accumulator state: the fields of each implementation, plus the fields of
// every same-package named struct reachable from one through field types.
func checkRetention(pass *Pass, cfg AccMergeConfig, impls map[string]*types.TypeName, implNames []string, record types.Type) {
	// Walk the reachable same-package named structs, breadth-first.
	reach := make(map[*types.TypeName]bool)
	var queue []*types.TypeName
	for _, name := range implNames {
		if !reach[impls[name]] {
			reach[impls[name]] = true
			queue = append(queue, impls[name])
		}
	}
	enqueue := func(tn *types.TypeName) {
		if tn.Pkg() == pass.Pkg.Types && !reach[tn] {
			if _, ok := tn.Type().Underlying().(*types.Struct); ok {
				reach[tn] = true
				queue = append(queue, tn)
			}
		}
	}
	for len(queue) > 0 {
		tn := queue[0]
		queue = queue[1:]
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		for i := 0; i < st.NumFields(); i++ {
			walkNamed(st.Field(i).Type(), enqueue, nil)
		}
	}

	// Report offending fields at their declaration sites.
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			tn, ok := pass.Pkg.Info.Defs[ts.Name].(*types.TypeName)
			if !ok || !reach[tn] {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				ft := pass.Pkg.Info.TypeOf(field.Type)
				if ft != nil && retainsType(ft, record, nil) {
					pass.Reportf(field.Pos(),
						"accumulator state %s retains %s.%s past Observe: fold records into O(devices + bins) state instead", tn.Name(), cfg.RecordPkg, cfg.RecordName)
				}
			}
			return true
		})
	}
}

// walkNamed visits every named type referenced by t, recursing through
// composite types and struct fields.
func walkNamed(t types.Type, visit func(*types.TypeName), seen map[types.Type]bool) {
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	if seen[t] {
		return
	}
	seen[t] = true
	switch t := t.(type) {
	case *types.Named:
		visit(t.Obj())
	case *types.Pointer:
		walkNamed(t.Elem(), visit, seen)
	case *types.Slice:
		walkNamed(t.Elem(), visit, seen)
	case *types.Array:
		walkNamed(t.Elem(), visit, seen)
	case *types.Map:
		walkNamed(t.Key(), visit, seen)
		walkNamed(t.Elem(), visit, seen)
	case *types.Chan:
		walkNamed(t.Elem(), visit, seen)
	}
}

// retainsType reports whether t can hold a value of record: it is the record
// type itself or a container (slice, array, map, pointer, chan, anonymous
// struct) ultimately holding one. Named non-record types are not descended
// into here — their own fields are checked at their declaration.
func retainsType(t, record types.Type, seen map[types.Type]bool) bool {
	if seen == nil {
		seen = make(map[types.Type]bool)
	}
	if seen[t] {
		return false
	}
	seen[t] = true
	if types.Identical(t, record) {
		return true
	}
	switch t := t.(type) {
	case *types.Pointer:
		return retainsType(t.Elem(), record, seen)
	case *types.Slice:
		return retainsType(t.Elem(), record, seen)
	case *types.Array:
		return retainsType(t.Elem(), record, seen)
	case *types.Map:
		return retainsType(t.Key(), record, seen) || retainsType(t.Elem(), record, seen)
	case *types.Chan:
		return retainsType(t.Elem(), record, seen)
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if retainsType(t.Field(i).Type(), record, seen) {
				return true
			}
		}
	}
	return false
}
