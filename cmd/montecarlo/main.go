// Command montecarlo reruns the whole field study across independent seeds
// and reports the sampling distribution of every headline metric — the
// seed-noise quantification behind EXPERIMENTS.md. Replicas run in
// parallel (each on its own discrete-event engine, so determinism per seed
// is preserved).
//
// Usage:
//
//	montecarlo [-runs N] [-seed S] [-phones N] [-months N] [-parallel P]
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"time"

	"symfail"
	"symfail/internal/analysis"
	"symfail/internal/phone"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "montecarlo:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("montecarlo", flag.ContinueOnError)
	var (
		runs     = fs.Int("runs", 20, "independent replicas")
		seed     = fs.Uint64("seed", 1, "base seed (replica i uses seed+i)")
		phones   = fs.Int("phones", 25, "phones per replica")
		months   = fs.Int("months", 14, "months per replica")
		parallel = fs.Int("parallel", runtime.GOMAXPROCS(0), "concurrent replicas")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *runs <= 0 {
		return fmt.Errorf("-runs must be positive")
	}
	if *parallel <= 0 {
		*parallel = 1
	}

	start := time.Now()
	results := make([]map[string]float64, *runs)
	errs := make([]error, *runs)
	sem := make(chan struct{}, *parallel)
	var wg sync.WaitGroup
	for i := 0; i < *runs; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			study, err := symfail.RunFieldStudy(symfail.FieldStudyConfig{
				Seed:       *seed + uint64(i),
				Phones:     *phones,
				Duration:   time.Duration(*months) * phone.StudyMonth,
				JoinWindow: 9 * phone.StudyMonth,
			})
			if err != nil {
				errs[i] = err
				return
			}
			results[i] = analysis.HeadlineMetrics(study.Study)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}

	agg := analysis.Aggregate(results)
	fmt.Printf("%d replicas x %d phones x %d months in %v\n\n",
		*runs, *phones, *months, time.Since(start).Round(time.Millisecond))
	fmt.Printf("%-22s %10s %10s %10s %10s %10s\n", "metric", "mean", "stddev", "ci95-lo", "ci95-hi", "median")
	for _, name := range analysis.MetricNames {
		s, ok := agg[name]
		if !ok {
			continue
		}
		lo, hi := s.CI95()
		fmt.Printf("%-22s %10.1f %10.2f %10.1f %10.1f %10.1f\n",
			name, s.Mean(), s.StdDev(), lo, hi, s.Quantile(0.5))
	}
	fmt.Println("\npaper reference: mtbfr 313 h, mtbs 250 h, failure every ~11 d,")
	fmt.Println("kern-exec-3 56.3%, related 51%, bursts ~25%, realtime ~45%, self-shutdown share 24.2%")
	return nil
}
