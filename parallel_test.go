package symfail

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// equivalenceWorkerCounts is the sweep the serial-equivalence harness runs:
// 1 is the fully serial pre-sharding path, the rest exercise the bounded
// worker pool at, below and above typical core counts.
var equivalenceWorkerCounts = []int{1, 2, 4, 8}

// TestParallelEquivalence is the sharding tentpole's contract: the worker
// count may change nothing but wall-clock time. It runs the pinned reduced
// study at every worker count and requires the marshalled fingerprint —
// panic counts, observed hours, first-panic identity, log bytes — to be
// byte-identical across all of them AND to the committed serial golden, so
// the parallel path is anchored to the exact bytes the serial code
// produced before sharding existed.
func TestParallelEquivalence(t *testing.T) {
	if *updateGolden {
		t.Skip("golden being rewritten by TestGoldenDeterminismFingerprint")
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "golden_fingerprint.json"))
	if err != nil {
		t.Fatalf("no golden fingerprint (run `go test -run Golden -update .`): %v", err)
	}
	for _, workers := range equivalenceWorkerCounts {
		fp := computeFingerprint(t, workers)
		blob, err := json.MarshalIndent(fp, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		blob = append(blob, '\n')
		if !bytes.Equal(blob, golden) {
			t.Errorf("workers=%d: fingerprint differs from the serial golden.\n got: %s\nwant: %s",
				workers, blob, golden)
		}
	}
}

// TestParallelEquivalenceAdversity holds the same contract under the full
// adversity menu and the TCP collection pipeline: concurrent shards
// injecting faults, retrying uploads, and merging into one server must
// still be a pure function of the seed, down to the merged dataset's CRC,
// at every worker count.
func TestParallelEquivalenceAdversity(t *testing.T) {
	if *updateGolden {
		t.Skip("golden being rewritten by TestGoldenAdversityFingerprint")
	}
	if testing.Short() {
		t.Skip("adversity equivalence sweep is slow; the plain sweep covers -short")
	}
	golden, err := os.ReadFile(filepath.Join("testdata", "golden_fingerprint_adversity.json"))
	if err != nil {
		t.Fatalf("no adversity golden (run `go test -run Golden -update .`): %v", err)
	}
	for _, workers := range equivalenceWorkerCounts {
		fp := computeAdversityFingerprint(t, workers)
		blob, err := json.MarshalIndent(fp, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		blob = append(blob, '\n')
		if !bytes.Equal(blob, golden) {
			t.Errorf("workers=%d: adversity fingerprint differs from the serial golden.\n got: %s\nwant: %s",
				workers, blob, golden)
		}
	}
}
