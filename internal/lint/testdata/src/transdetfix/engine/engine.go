// Package engine is the restricted root of the transitive-determinism
// fixture: its functions must not reach a nondeterminism source through
// any chain of calls.
package engine

import "symfail/internal/lint/testdata/src/transdetfix/sched"

// Ticker abstracts the engine's time source.
type Ticker interface{ Tick() int64 }

// Step leaks through two intermediate hops: sched.Next -> clock.Wall -> time.Now.
func Step() int64 { return sched.Next() } // want: transitive leak via sched

// Drive leaks through interface dispatch: the only analyzed implementation
// of Ticker is clock.WallTicker, which reads the wall clock.
func Drive(t Ticker) int64 { return t.Tick() } // want: leak via interface over-approximation

// Pure calls only pure unrestricted code; no diagnostic.
func Pure() int64 { return sched.Deadline(5) }

// Profile demonstrates the reasoned escape hatch for a transitive leak.
func Profile() int64 {
	//symlint:allow determinism fixture demonstrates a reasoned transitive suppression
	return sched.Next()
}
