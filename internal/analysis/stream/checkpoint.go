package stream

import (
	"encoding/json"
	"fmt"
	"sort"

	"symfail/internal/sim"
)

// This file is the checkpoint codec: an exact, JSON-serialized image of a
// live accumulator's internal state — reducer folds, per-device cursor
// graphs, pending coalescence windows — so a killed study can resume
// mid-month and still produce byte-identical eventual tables. Exactness
// hinges on two properties: every float crosses the boundary through Go's
// shortest-round-trip JSON encoding (bit-exact for finite float64), and the
// cursor DTO rebuilds the pending event graph pointer-for-pointer (best by
// index into the open HL window, bestAll by a nil-ness-preserving sentinel,
// open bursts from their burstOpen flags).

// ---- cursor graph DTOs ----

type hlState struct {
	Kind       HLKind  `json:"kind"`
	Time       int64   `json:"time"`
	OffSeconds float64 `json:"off"`
	Refd       bool    `json:"refd,omitempty"`
}

// bestAll index sentinels: the nearest any-kind HL event may have been
// emitted already (only its nil-ness is ever read), so it cannot be an
// index into the open window.
const (
	bestNone    = -1 // no candidate within the window
	bestEmitted = -2 // candidate existed but has left the cursor
)

type panicState struct {
	Time         int64    `json:"time"`
	Category     string   `json:"cat"`
	Type         int      `json:"type"`
	Apps         []string `json:"apps,omitempty"`
	Activity     string   `json:"act,omitempty"`
	Burst        int      `json:"burst"`
	BurstLen     int      `json:"burstLen"`
	BurstOpen    bool     `json:"burstOpen,omitempty"`
	Best         int      `json:"best"`
	BestGapNs    int64    `json:"bestGap,omitempty"`
	BestAll      int      `json:"bestAll"`
	BestAllGapNs int64    `json:"bestAllGap,omitempty"`
}

type cursorState struct {
	SessionStart int64        `json:"sessionStart"`
	LastSeen     int64        `json:"lastSeen"`
	Uptime       float64      `json:"uptime"`
	HLs          []hlState    `json:"hls,omitempty"`
	LastHL       int64        `json:"lastHL"`
	HasHL        bool         `json:"hasHL,omitempty"`
	Panics       []panicState `json:"panics,omitempty"`
	Burst        int          `json:"burst"`
	LastPanic    int64        `json:"lastPanic"`
	HasPanic     bool         `json:"hasPanic,omitempty"`
	Finished     bool         `json:"finished,omitempty"`
}

type cursorSetState struct {
	Records  int                    `json:"records"`
	Finished bool                   `json:"finished,omitempty"`
	Cursors  map[string]cursorState `json:"cursors"`
}

func (c *deviceCursor) state() cursorState {
	st := cursorState{
		SessionStart: int64(c.sessionStart),
		LastSeen:     int64(c.lastSeen),
		Uptime:       c.uptime,
		LastHL:       int64(c.lastHL),
		HasHL:        c.hasHL,
		Burst:        c.burst,
		LastPanic:    int64(c.lastPanic),
		HasPanic:     c.hasPanic,
		Finished:     c.finished,
	}
	idx := make(map[*HLEvent]int, len(c.hls))
	for i, hl := range c.hls {
		idx[hl] = i
		st.HLs = append(st.HLs, hlState{Kind: hl.Kind, Time: int64(hl.Time), OffSeconds: hl.OffSeconds, Refd: hl.refd})
	}
	for _, pp := range c.panics {
		ps := panicState{
			Time:      int64(pp.ev.Time),
			Category:  pp.ev.Category,
			Type:      pp.ev.Type,
			Apps:      pp.ev.Apps,
			Activity:  pp.ev.Activity,
			Burst:     pp.ev.Burst,
			BurstLen:  pp.ev.BurstLen,
			BurstOpen: pp.burstOpen,
			Best:      bestNone,
			BestAll:   bestNone,
		}
		if pp.best != nil {
			// best always lives in the open window: hlDone refuses to emit
			// an event a pending panic still holds.
			ps.Best = idx[pp.best]
			ps.BestGapNs = int64(pp.bestGap)
		}
		if pp.bestAll != nil {
			ps.BestAll = bestEmitted
			if i, ok := idx[pp.bestAll]; ok {
				ps.BestAll = i
			}
			ps.BestAllGapNs = int64(pp.bestAllGap)
		}
		st.Panics = append(st.Panics, ps)
	}
	return st
}

func cursorFromState(id string, cfg Config, sink evsink, st cursorState) *deviceCursor {
	c := newCursor(id, cfg, sink)
	c.sessionStart = sim.Time(st.SessionStart)
	c.lastSeen = sim.Time(st.LastSeen)
	c.uptime = st.Uptime
	c.lastHL = sim.Time(st.LastHL)
	c.hasHL = st.HasHL
	c.burst = st.Burst
	c.lastPanic = sim.Time(st.LastPanic)
	c.hasPanic = st.HasPanic
	c.finished = st.Finished
	for _, h := range st.HLs {
		c.hls = append(c.hls, &HLEvent{Device: id, Kind: h.Kind, Time: sim.Time(h.Time), OffSeconds: h.OffSeconds, refd: h.Refd})
	}
	for _, ps := range st.Panics {
		pp := &pendingPanic{
			ev: &PanicEvent{
				Device:   id,
				Time:     sim.Time(ps.Time),
				Category: ps.Category,
				Type:     ps.Type,
				Apps:     ps.Apps,
				Activity: ps.Activity,
				Burst:    ps.Burst,
				BurstLen: ps.BurstLen,
			},
			burstOpen: ps.BurstOpen,
		}
		if ps.Best >= 0 {
			pp.best = c.hls[ps.Best]
			pp.bestGap = sim.Duration(ps.BestGapNs)
		}
		switch {
		case ps.BestAll >= 0:
			pp.bestAll = c.hls[ps.BestAll]
			pp.bestAllGap = sim.Duration(ps.BestAllGapNs)
		case ps.BestAll == bestEmitted:
			// The event left the cursor; only nil-ness (and the gap, for
			// later consider calls) is ever read.
			pp.bestAll = &HLEvent{}
			pp.bestAllGap = sim.Duration(ps.BestAllGapNs)
		}
		c.panics = append(c.panics, pp)
		if pp.burstOpen {
			c.open = append(c.open, pp)
		}
	}
	return c
}

func (cs *cursorSet) state() cursorSetState {
	st := cursorSetState{Records: cs.records, Finished: cs.finished, Cursors: make(map[string]cursorState, len(cs.cursors))}
	for id, c := range cs.cursors {
		st.Cursors[id] = c.state()
	}
	return st
}

func cursorSetFromState(cfg Config, sink evsink, st cursorSetState) *cursorSet {
	cs := newCursorSet(cfg, sink)
	cs.records = st.Records
	cs.finished = st.Finished
	for id, c := range st.Cursors {
		cs.cursors[id] = cursorFromState(id, cfg, sink, c)
	}
	return cs
}

// ---- reducer DTOs ----

type panicIDState struct {
	Cat  string `json:"cat"`
	Type int    `json:"type"`
}

func idsState(ids map[string]panicID) map[string]panicIDState {
	out := make(map[string]panicIDState, len(ids))
	for k, id := range ids {
		out[k] = panicIDState{Cat: id.cat, Type: id.ptype}
	}
	return out
}

func idsFromState(st map[string]panicIDState) map[string]panicID {
	out := make(map[string]panicID, len(st))
	for k, id := range st {
		out[k] = panicID{cat: id.Cat, ptype: id.Type}
	}
	return out
}

type panicRedState struct {
	Counts map[string]int          `json:"counts"`
	IDs    map[string]panicIDState `json:"ids"`
	Cats   map[string]int          `json:"cats"`
	Total  int                     `json:"total"`
}

func (r *panicRed) state() panicRedState {
	return panicRedState{Counts: r.counts, IDs: idsState(r.ids), Cats: r.cats, Total: r.total}
}

func panicRedFromState(st panicRedState) *panicRed {
	r := newPanicRed()
	for k, n := range st.Counts {
		r.counts[k] = n
	}
	r.ids = idsFromState(st.IDs)
	for k, n := range st.Cats {
		r.cats[k] = n
	}
	r.total = st.Total
	return r
}

type rebootRedState struct {
	Durs      map[string][]float64 `json:"durs"`
	Count     int                  `json:"count"`
	Explained int                  `json:"explained"`
}

func (r *rebootRed) state() rebootRedState {
	return rebootRedState{Durs: r.durs, Count: r.count, Explained: r.explained}
}

func rebootRedFromState(st rebootRedState) *rebootRed {
	r := newRebootRed()
	for id, v := range st.Durs {
		r.durs[id] = v
	}
	r.count, r.explained = st.Count, st.Explained
	return r
}

type mtbfRedState struct {
	Uptime  map[string]float64 `json:"uptime"`
	Freezes int                `json:"freezes"`
	Selfs   int                `json:"selfs"`
	Users   int                `json:"users"`
}

func (r *mtbfRed) state() mtbfRedState {
	return mtbfRedState{Uptime: r.uptime, Freezes: r.freezes, Selfs: r.selfs, Users: r.users}
}

func mtbfRedFromState(st mtbfRedState) *mtbfRed {
	r := newMTBFRed()
	for id, h := range st.Uptime {
		r.uptime[id] = h
	}
	r.freezes, r.selfs, r.users = st.Freezes, st.Selfs, st.Users
	return r
}

type burstRedState struct {
	SizeCounts  map[int]int    `json:"sizeCounts"`
	LastBurst   map[string]int `json:"lastBurst"`
	TotalPanics int            `json:"totalPanics"`
	TotalBursts int            `json:"totalBursts"`
	InBursts    int            `json:"inBursts"`
}

func (r *burstRed) state() burstRedState {
	return burstRedState{SizeCounts: r.sizeCounts, LastBurst: r.lastBurst,
		TotalPanics: r.totalPanics, TotalBursts: r.totalBursts, InBursts: r.inBursts}
}

func burstRedFromState(st burstRedState) *burstRed {
	r := newBurstRed()
	for sz, n := range st.SizeCounts {
		r.sizeCounts[sz] = n
	}
	for id, b := range st.LastBurst {
		r.lastBurst[id] = b
	}
	r.totalPanics, r.totalBursts, r.inBursts = st.TotalPanics, st.TotalBursts, st.InBursts
	return r
}

type coalRedState struct {
	Total    int                     `json:"total"`
	Related  int                     `json:"related"`
	ToFreeze int                     `json:"toFreeze"`
	ToSelf   int                     `json:"toSelf"`
	ByCat    map[string]RelatedCount `json:"byCat"`
	Isolated int                     `json:"isolated"`
	RelAll   int                     `json:"relAll"`
}

func (r *coalRed) state() coalRedState {
	return coalRedState{Total: r.total, Related: r.related, ToFreeze: r.toFreeze,
		ToSelf: r.toSelf, ByCat: r.byCat, Isolated: r.isolated, RelAll: r.relAll}
}

func coalRedFromState(st coalRedState) *coalRed {
	r := newCoalRed()
	r.total, r.related, r.toFreeze, r.toSelf = st.Total, st.Related, st.ToFreeze, st.ToSelf
	for k, rc := range st.ByCat {
		r.byCat[k] = rc
	}
	r.isolated, r.relAll = st.Isolated, st.RelAll
	return r
}

type activityRedState struct {
	Counts  map[string]map[string]int `json:"counts"`
	Related int                       `json:"related"`
	RT      int                       `json:"rt"`
}

func (r *activityRed) state() activityRedState {
	return activityRedState{Counts: r.counts, Related: r.related, RT: r.rt}
}

func activityRedFromState(st activityRedState) *activityRed {
	r := newActivityRed()
	for act, byCat := range st.Counts {
		m := make(map[string]int, len(byCat))
		for cat, n := range byCat {
			m[cat] = n
		}
		r.counts[act] = m
	}
	r.related, r.rt = st.Related, st.RT
	return r
}

type appCellState struct {
	Outcome string `json:"outcome"`
	Cat     string `json:"cat"`
	App     string `json:"app"`
	Count   int    `json:"count"`
}

type appsRedState struct {
	Cells     []appCellState `json:"cells"`
	AppCounts map[string]int `json:"appCounts"`
	RunApps   map[int]int    `json:"runApps"`
	Total     int            `json:"total"`
}

func (r *appsRed) state() appsRedState {
	st := appsRedState{AppCounts: r.appCounts, RunApps: r.runApps, Total: r.total}
	for c, n := range r.cells {
		st.Cells = append(st.Cells, appCellState{Outcome: c.outcome, Cat: c.cat, App: c.app, Count: n})
	}
	sort.Slice(st.Cells, func(i, j int) bool {
		a, b := st.Cells[i], st.Cells[j]
		if a.Outcome != b.Outcome {
			return a.Outcome < b.Outcome
		}
		if a.Cat != b.Cat {
			return a.Cat < b.Cat
		}
		return a.App < b.App
	})
	return st
}

func appsRedFromState(st appsRedState) *appsRed {
	r := newAppsRed()
	for _, c := range st.Cells {
		r.cells[appCell{outcome: c.Outcome, cat: c.Cat, app: c.App}] = c.Count
	}
	for app, n := range st.AppCounts {
		r.appCounts[app] = n
	}
	for k, n := range st.RunApps {
		r.runApps[k] = n
	}
	r.total = st.Total
	return r
}

// ---- Tables ----

type tablesState struct {
	Config   Config           `json:"config"`
	Cursors  cursorSetState   `json:"cursors"`
	Panics   panicRedState    `json:"panics"`
	Reboots  rebootRedState   `json:"reboots"`
	MTBF     mtbfRedState     `json:"mtbf"`
	Coal     coalRedState     `json:"coal"`
	Bursts   burstRedState    `json:"bursts"`
	Activity activityRedState `json:"activity"`
	Apps     appsRedState     `json:"apps"`
}

// MarshalState serializes the live accumulator's full internal state —
// reducers and the pending cursor graph — for a checkpoint. A sealed
// accumulator cannot be checkpointed.
func (t *Tables) MarshalState() ([]byte, error) {
	if t.sealed {
		return nil, fmt.Errorf("%w: Tables.MarshalState", ErrSealed)
	}
	return json.Marshal(tablesState{
		Config:   t.cfg,
		Cursors:  t.cs.state(),
		Panics:   t.panics.state(),
		Reboots:  t.reboots.state(),
		MTBF:     t.mtbf.state(),
		Coal:     t.coal.state(),
		Bursts:   t.bursts.state(),
		Activity: t.activity.state(),
		Apps:     t.apps.state(),
	})
}

// NewTablesFromState reconstructs a live accumulator from MarshalState
// output: feeding the restored accumulator the remaining records produces
// byte-identical tables to the uninterrupted run.
func NewTablesFromState(data []byte) (*Tables, error) {
	var st tablesState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("stream: Tables state: %w", err)
	}
	t := &Tables{
		panics:   panicRedFromState(st.Panics),
		reboots:  rebootRedFromState(st.Reboots),
		mtbf:     mtbfRedFromState(st.MTBF),
		coal:     coalRedFromState(st.Coal),
		bursts:   burstRedFromState(st.Bursts),
		activity: activityRedFromState(st.Activity),
		apps:     appsRedFromState(st.Apps),
	}
	t.cfg = st.Config
	t.cs = cursorSetFromState(t.cfg, t, st.Cursors)
	return t, nil
}

// ---- WindowAcc / DecayAcc ----

type bucketsState struct {
	Session  map[string]int64        `json:"session"`
	IDs      map[string]panicIDState `json:"ids"`
	Panics   map[int]map[string]int  `json:"panics"`
	Records  map[int]int             `json:"records"`
	Freezes  map[int]int             `json:"freezes"`
	Selfs    map[int]int             `json:"selfs"`
	Users    map[int]int             `json:"users"`
	UptimeNs map[int]int64           `json:"uptimeNs"`
	MaxDay   int                     `json:"maxDay"`
	HasData  bool                    `json:"hasData"`
}

func (b *dayBuckets) state() bucketsState {
	session := make(map[string]int64, len(b.session))
	for id, s := range b.session {
		session[id] = int64(s)
	}
	return bucketsState{
		Session: session, IDs: idsState(b.ids), Panics: b.panics,
		Records: b.records, Freezes: b.freezes, Selfs: b.selfs, Users: b.users,
		UptimeNs: b.uptimeNs, MaxDay: b.maxDay, HasData: b.hasData,
	}
}

func bucketsFromState(st bucketsState) *dayBuckets {
	b := newDayBuckets()
	for id, s := range st.Session {
		b.session[id] = sim.Time(s)
	}
	b.ids = idsFromState(st.IDs)
	for d, m := range st.Panics {
		dst := make(map[string]int, len(m))
		for k, n := range m {
			dst[k] = n
		}
		b.panics[d] = dst
	}
	for d, n := range st.Records {
		b.records[d] = n
	}
	for d, n := range st.Freezes {
		b.freezes[d] = n
	}
	for d, n := range st.Selfs {
		b.selfs[d] = n
	}
	for d, n := range st.Users {
		b.users[d] = n
	}
	for d, ns := range st.UptimeNs {
		b.uptimeNs[d] = ns
	}
	b.maxDay, b.hasData = st.MaxDay, st.HasData
	return b
}

type windowState struct {
	Config  Config       `json:"config"`
	Buckets bucketsState `json:"buckets"`
}

// MarshalState serializes the windowed accumulator's bucket state.
func (a *WindowAcc) MarshalState() ([]byte, error) {
	if a.sealed {
		return nil, fmt.Errorf("%w: WindowAcc.MarshalState", ErrSealed)
	}
	return json.Marshal(windowState{Config: a.cfg, Buckets: a.b.state()})
}

// NewWindowAccFromState reconstructs a live windowed accumulator.
func NewWindowAccFromState(data []byte) (*WindowAcc, error) {
	var st windowState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("stream: WindowAcc state: %w", err)
	}
	return &WindowAcc{cfg: st.Config, b: bucketsFromState(st.Buckets)}, nil
}

// MarshalState serializes the decaying accumulator's bucket state.
func (a *DecayAcc) MarshalState() ([]byte, error) {
	if a.sealed {
		return nil, fmt.Errorf("%w: DecayAcc.MarshalState", ErrSealed)
	}
	return json.Marshal(windowState{Config: a.cfg, Buckets: a.b.state()})
}

// NewDecayAccFromState reconstructs a live decaying accumulator.
func NewDecayAccFromState(data []byte) (*DecayAcc, error) {
	var st windowState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("stream: DecayAcc state: %w", err)
	}
	return &DecayAcc{cfg: st.Config, b: bucketsFromState(st.Buckets)}, nil
}
