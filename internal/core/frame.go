package core

import "hash/crc32"

// Crash-safe record framing. The consolidated Log File lives on flash that
// can lose power mid-write: an append interrupted by a battery pull persists
// only a prefix, and worn cells flip bits at rest. The logger therefore
// writes every record inside a self-checking frame and recovers the file at
// boot from nothing but the on-flash bytes — exactly what a real logger
// could see.
//
// Frame layout (ASCII, so a torn flash dump stays human-inspectable):
//
//	'~' <crc32c(payload) 8 hex> ':' <len(payload) 6 hex> ':' <payload> '\n'
//
// The CRC-32C is over the payload only; the header is implicitly protected
// because any damage to it makes the checksum or length check fail. A torn
// tail is a frame whose length field promises more bytes than the file
// holds; bit rot is a checksum mismatch. Both are detected, skipped, and
// counted — never surfaced as records.

// FrameMagic is the first byte of every frame. Legacy logs (bare JSON
// lines) start with '{', so the first byte of a file tells the two formats
// apart.
const FrameMagic = '~'

// frameHeaderLen is '~' + 8 hex CRC + ':' + 6 hex length + ':'.
const frameHeaderLen = 1 + 8 + 1 + 6 + 1

// MaxFramePayload bounds a single frame payload (6 hex digits of length).
const MaxFramePayload = 1<<24 - 1

// frameTable is the CRC-32C (Castagnoli) table shared by framing and the
// upload protocol.
var frameTable = crc32.MakeTable(crc32.Castagnoli)

// EncodeFrame wraps payload in a checksummed frame.
func EncodeFrame(payload []byte) []byte {
	return AppendFrame(make([]byte, 0, frameHeaderLen+len(payload)+1), payload)
}

// FrameRecord serialises a record as one checksummed frame (the on-flash
// form the Log Engine appends).
func FrameRecord(r Record) []byte {
	return EncodeFrame(AppendRecord(nil, r))
}

// decodeFrame tries to decode one frame at the start of data. It returns
// the payload, the total encoded size, and whether the frame is intact.
func decodeFrame(data []byte) (payload []byte, size int, ok bool) {
	if len(data) < frameHeaderLen+1 || data[0] != FrameMagic || data[9] != ':' || data[16] != ':' {
		return nil, 0, false
	}
	var sum uint32
	var n int
	if !parseHex32(data[1:9], &sum) || !parseHex24(data[10:16], &n) {
		return nil, 0, false
	}
	size = frameHeaderLen + n + 1
	if len(data) < size || data[size-1] != '\n' {
		return nil, 0, false // torn tail: the write stopped before the payload landed
	}
	payload = data[frameHeaderLen : frameHeaderLen+n]
	if crc32.Checksum(payload, frameTable) != sum {
		return nil, 0, false // bit rot or a corrupted length field
	}
	return payload, size, true
}

// parseHex32 / parseHex24 parse fixed-width lowercase hex without
// allocating (the recovery scan runs these on every candidate byte).
func parseHex32(b []byte, out *uint32) bool {
	var v uint32
	for _, c := range b {
		d, ok := hexDigit(c)
		if !ok {
			return false
		}
		v = v<<4 | uint32(d)
	}
	*out = v
	return true
}

func parseHex24(b []byte, out *int) bool {
	var v int
	for _, c := range b {
		d, ok := hexDigit(c)
		if !ok {
			return false
		}
		v = v<<4 | int(d)
	}
	*out = v
	return true
}

func hexDigit(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	default:
		return 0, false
	}
}

// Recovery is the outcome of scanning a framed log: the records that
// survived, the clean re-encoding to truncate the file to, and the damage
// tally for the boot record.
type Recovery struct {
	// Payloads holds the payload bytes of every intact frame, in order.
	Payloads [][]byte
	// Clean is the concatenation of the intact frames — writing it back
	// truncates torn tails and excises corrupt regions.
	Clean []byte
	// Salvaged counts intact frames; Lost counts contiguous corrupt
	// regions skipped (each region is at least one destroyed record).
	Salvaged, Lost int
	// Dirty reports whether Clean differs from the scanned bytes (the
	// file needs rewriting).
	Dirty bool
}

// RecoverLog scans a framed log byte range and salvages every intact
// frame. It never panics and never invents a record: a frame is accepted
// only when its length lands inside the data and its CRC-32C matches.
// Recovery is idempotent — RecoverLog(rec.Clean) salvages the same frames
// and reports no damage.
func RecoverLog(data []byte) Recovery {
	var rec Recovery
	i := 0
	inGarbage := false
	for i < len(data) {
		if data[i] == FrameMagic {
			if payload, size, ok := decodeFrame(data[i:]); ok {
				rec.Payloads = append(rec.Payloads, payload)
				rec.Clean = append(rec.Clean, data[i:i+size]...)
				rec.Salvaged++
				i += size
				inGarbage = false
				continue
			}
		}
		if !inGarbage {
			rec.Lost++
			inGarbage = true
		}
		i++
	}
	rec.Dirty = rec.Lost > 0 || len(rec.Clean) != len(data)
	return rec
}

// rotateFramed drops the oldest frames so at most keep bytes remain,
// cutting at frame boundaries so the survivors still verify.
func rotateFramed(data []byte, keep int) []byte {
	if len(data) <= keep {
		return data
	}
	rec := RecoverLog(data)
	clean := rec.Clean
	for len(clean) > keep {
		_, size, ok := decodeFrame(clean)
		if !ok {
			break // unreachable: Clean is made of intact frames
		}
		clean = clean[size:]
	}
	return append([]byte(nil), clean...)
}
