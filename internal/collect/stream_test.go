package collect

import (
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"symfail/internal/core"
)

// encodeLog serialises records into one log blob.
func encodeLog(recs ...core.Record) []byte {
	var out []byte
	for _, r := range recs {
		out = append(out, core.EncodeRecord(r)...)
	}
	return out
}

// streamTestDataset builds a small three-device dataset, including a
// zero-record device.
func streamTestDataset() *Dataset {
	ds := NewDataset()
	ds.Put("phone-01", encodeLog(
		core.Record{Kind: core.KindBoot, Time: 1, Boot: 1, Detected: core.DetectedFirstBoot},
		core.Record{Kind: core.KindPanic, Time: 5, Category: "KERN-EXEC", PType: 3},
	))
	ds.Put("phone-02", encodeLog(
		core.Record{Kind: core.KindBoot, Time: 2, Boot: 1, Detected: core.DetectedFirstBoot},
	))
	ds.Put("phone-03", nil) // joined the study, produced nothing
	return ds
}

// collectStream drains a streaming source into per-device slices plus the
// begin order.
func collectStream(t *testing.T, streamFn func(func(string) error, func(string, core.Record) error) error) ([]string, map[string][]core.Record) {
	t.Helper()
	var order []string
	got := make(map[string][]core.Record)
	err := streamFn(
		func(id string) error {
			order = append(order, id)
			got[id] = nil
			return nil
		},
		func(id string, r core.Record) error {
			got[id] = append(got[id], r)
			return nil
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return order, got
}

func TestDatasetStreamMatchesAllRecords(t *testing.T) {
	ds := streamTestDataset()
	order, got := collectStream(t, ds.Stream)
	if want := []string{"phone-01", "phone-02", "phone-03"}; !reflect.DeepEqual(order, want) {
		t.Errorf("begin order = %v, want %v", order, want)
	}
	want := ds.AllRecords()
	if len(got) != len(want) {
		t.Fatalf("streamed %d devices, AllRecords has %d", len(got), len(want))
	}
	for id, recs := range want {
		if !reflect.DeepEqual(got[id], recs) && !(len(got[id]) == 0 && len(recs) == 0) {
			t.Errorf("%s: streamed %v, batch %v", id, got[id], recs)
		}
	}
}

func TestDatasetStreamStopsOnCallbackError(t *testing.T) {
	ds := streamTestDataset()
	boom := errors.New("boom")
	var seen int
	err := ds.Stream(nil, func(string, core.Record) error {
		seen++
		return boom
	})
	if !errors.Is(err, boom) {
		t.Errorf("err = %v, want boom", err)
	}
	if seen != 1 {
		t.Errorf("callback ran %d times after erroring, want 1", seen)
	}
	// nil callbacks are allowed: visiting without consuming.
	if err := ds.Stream(nil, nil); err != nil {
		t.Errorf("Stream(nil, nil) = %v", err)
	}
}

func TestStreamDirMatchesImportDir(t *testing.T) {
	ds := streamTestDataset()
	dir := t.TempDir()
	if err := ExportDir(ds, dir); err != nil {
		t.Fatal(err)
	}
	imported, err := ImportDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	order, got := collectStream(t, func(begin func(string) error, fn func(string, core.Record) error) error {
		return StreamDir(dir, begin, fn)
	})
	if want := imported.Devices(); !reflect.DeepEqual(order, want) {
		t.Errorf("begin order = %v, want %v", order, want)
	}
	for id, want := range imported.AllRecords() {
		if !reflect.DeepEqual(got[id], want) && !(len(got[id]) == 0 && len(want) == 0) {
			t.Errorf("%s: streamed %v, imported %v", id, got[id], want)
		}
	}
}

func TestStreamDirDetectsTruncation(t *testing.T) {
	ds := streamTestDataset()
	dir := t.TempDir()
	if err := ExportDir(ds, dir); err != nil {
		t.Fatal(err)
	}
	name, err := deviceFileName("phone-01")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob[:len(blob)-1], 0o644); err != nil {
		t.Fatal(err)
	}
	err = StreamDir(dir, nil, nil)
	if err == nil || !strings.Contains(err.Error(), "truncated") {
		t.Errorf("StreamDir on truncated file = %v, want truncation error", err)
	}
}

// TestServerOnRecordFiresOncePerUniqueRecord: the live tap sees each
// acknowledged record exactly once per server incarnation — duplicate
// uploads and overlapping re-uploads do not re-fire it.
func TestServerOnRecordFiresOncePerUniqueRecord(t *testing.T) {
	recA := core.Record{Kind: core.KindBoot, Time: 1, Boot: 1, Detected: core.DetectedFirstBoot}
	recB := core.Record{Kind: core.KindPanic, Time: 2, Category: "USER", PType: 11}
	recC := core.Record{Kind: core.KindPanic, Time: 3, Category: "KERN-EXEC", PType: 3}

	ds := NewDataset()
	var tapped []core.Record
	var devices []string
	srv, err := NewServerWith("127.0.0.1:0", ds, ServerConfig{
		OnRecord: func(id string, r core.Record) {
			devices = append(devices, id)
			tapped = append(tapped, r)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	if err := Upload(srv.Addr(), "p", encodeLog(recA, recB)); err != nil {
		t.Fatal(err)
	}
	if err := Upload(srv.Addr(), "p", encodeLog(recA, recB)); err != nil { // pure duplicate
		t.Fatal(err)
	}
	if err := Upload(srv.Addr(), "p", encodeLog(recB, recC)); err != nil { // overlap + one new
		t.Fatal(err)
	}
	want := []core.Record{recA, recB, recC}
	if !reflect.DeepEqual(tapped, want) {
		t.Errorf("tap saw %v, want each unique record once: %v", tapped, want)
	}
	for _, id := range devices {
		if id != "p" {
			t.Errorf("tap reported device %q, want p", id)
		}
	}
}
