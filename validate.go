package symfail

import (
	"symfail/internal/analysis"
	"symfail/internal/phone"
)

// DetectionReport scores the logger against the simulator's ground truth —
// the validation the original study could not perform (it had no oracle).
// Phones that were serviced are excluded from the freeze/self-shutdown
// comparison, because a master reset wipes their pre-service log from
// flash (use RunFieldStudyWithCollector with periodic uploads to keep that
// data server-side).
type DetectionReport struct {
	// PhonesCompared is the number of never-serviced phones scored.
	PhonesCompared int

	// Freeze detection: every battery-pulled freeze that was followed by
	// a reboot appears in the log; only a final, never-rebooted freeze can
	// be missed.
	TruthFreezes  int
	LoggedFreezes int
	FreezeRecall  float64

	// Self-shutdown identification through the reboot-duration threshold.
	TruthSelfShutdowns  int
	LoggedSelfShutdowns int
	SelfShutdownRatio   float64 // logged / truth (can exceed 1 on misclassification)

	// Panic capture: RDebug sees every panic, so this should be 1.0 even
	// on serviced phones as long as logs survive collection.
	TruthPanics      int
	LoggedPanics     int
	PanicCaptureRate float64
}

// ValidateDetection compares the analysed study against the fleet oracle.
func ValidateDetection(fs *FieldStudy) DetectionReport {
	var rep DetectionReport

	freezeByDevice := make(map[string]int)
	for _, hl := range fs.Study.HLEvents(analysis.HLFreeze) {
		freezeByDevice[hl.Device]++
	}
	selfByDevice := make(map[string]int)
	for _, hl := range fs.Study.HLEvents(analysis.HLSelfShutdown) {
		selfByDevice[hl.Device]++
	}
	panicsByDevice := make(map[string]int)
	for _, p := range fs.Study.Panics() {
		panicsByDevice[p.Device]++
	}

	for _, d := range fs.Fleet.Devices {
		rep.TruthPanics += d.Oracle().PanicCount()
		rep.LoggedPanics += panicsByDevice[d.ID()]
		if d.ServiceVisits() > 0 {
			continue
		}
		rep.PhonesCompared++
		rep.TruthFreezes += d.Oracle().Count(phone.TruthFreeze)
		rep.LoggedFreezes += freezeByDevice[d.ID()]
		rep.TruthSelfShutdowns += d.Oracle().Count(phone.TruthSelfShutdown)
		rep.LoggedSelfShutdowns += selfByDevice[d.ID()]
	}
	if rep.TruthFreezes > 0 {
		rep.FreezeRecall = float64(rep.LoggedFreezes) / float64(rep.TruthFreezes)
	}
	if rep.TruthSelfShutdowns > 0 {
		rep.SelfShutdownRatio = float64(rep.LoggedSelfShutdowns) / float64(rep.TruthSelfShutdowns)
	}
	if rep.TruthPanics > 0 {
		rep.PanicCaptureRate = float64(rep.LoggedPanics) / float64(rep.TruthPanics)
	}
	return rep
}
