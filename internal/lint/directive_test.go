package lint

import (
	"strings"
	"testing"
)

func TestParseAllow(t *testing.T) {
	cases := []struct {
		comment string
		rule    string
		reason  string
		ok      bool
		wantErr bool
	}{
		{"//symlint:allow determinism network deadline, not sim time", "determinism", "network deadline, not sim time", true, false},
		{"//symlint:allow maporder per-key append preserves run order", "maporder", "per-key append preserves run order", true, false},
		{"//symlint:allow rng-share legacy worker", "rng-share", "legacy worker", true, false},
		{"//symlint:allow determinism \t padded reason", "determinism", "padded reason", true, false},
		{"// ordinary comment", "", "", false, false},
		{"//symlint is mentioned here casually", "", "", false, false},
		{"//symlint:allow determinism", "", "", false, true},             // missing reason
		{"//symlint:allow", "", "", false, true},                         // missing rule
		{"//symlint:allow  ", "", "", false, true},                       // missing rule
		{"//symlint:deny determinism because", "", "", false, true},      // unknown verb
		{"//symlint:", "", "", false, true},                              // empty verb
		{"// symlint:allow determinism spaced out", "", "", false, true}, // space before directive
		{"//symlint:allow bad/rule reason", "", "", false, true},         // invalid rule chars
	}
	for _, tc := range cases {
		allow, ok, err := ParseAllow(tc.comment)
		if ok != tc.ok || (err != nil) != tc.wantErr {
			t.Errorf("ParseAllow(%q) = ok %v err %v, want ok %v err %v", tc.comment, ok, err, tc.ok, tc.wantErr)
			continue
		}
		if ok && (allow.Rule != tc.rule || allow.Reason != tc.reason) {
			t.Errorf("ParseAllow(%q) = %+v, want rule %q reason %q", tc.comment, allow, tc.rule, tc.reason)
		}
	}
}

// FuzzParseAllow checks the parser over arbitrary comment bytes: it must
// never panic, a successful parse always yields a valid rule and non-empty
// reason, and re-rendering a parsed directive parses back to itself.
func FuzzParseAllow(f *testing.F) {
	f.Add("//symlint:allow determinism network deadline")
	f.Add("//symlint:allow maporder x")
	f.Add("//symlint:deny nothing")
	f.Add("//symlint:")
	f.Add("// symlint:allow determinism oops")
	f.Add("//symlint:allow a\tb")
	f.Add("/*symlint:allow block comments are not directives*/")
	f.Add("//symlint:allow rng_share underscores-and-dashes ok")
	f.Fuzz(func(t *testing.T, comment string) {
		allow, ok, err := ParseAllow(comment)
		if ok && err != nil {
			t.Fatalf("ParseAllow(%q): both ok and error", comment)
		}
		if !ok {
			return
		}
		if allow.Rule == "" || !validRuleName(allow.Rule) {
			t.Fatalf("ParseAllow(%q): invalid rule %q accepted", comment, allow.Rule)
		}
		if strings.TrimSpace(allow.Reason) == "" {
			t.Fatalf("ParseAllow(%q): empty reason accepted", comment)
		}
		rendered := "//symlint:allow " + allow.Rule + " " + allow.Reason
		again, ok2, err2 := ParseAllow(rendered)
		if !ok2 || err2 != nil {
			t.Fatalf("round-trip of %q failed: %v", rendered, err2)
		}
		if again.Rule != allow.Rule || again.Reason != allow.Reason {
			t.Fatalf("round-trip drifted: %+v -> %+v", allow, again)
		}
	})
}
