// Package sim provides the discrete-event simulation substrate used by the
// whole reproduction: a virtual clock, an event queue, a deterministic random
// number generator, and small statistics helpers (histograms, counters).
//
// Nothing in this package (or anything built on it) reads the wall clock;
// fourteen simulated months of a 25-phone fleet execute in a few hundred
// milliseconds of real time, and identical seeds yield identical runs.
package sim

import (
	"fmt"
	"time"
)

// Time is a virtual instant, expressed as nanoseconds since the start of the
// simulation. It is deliberately not time.Time: simulated time has no
// calendar, no zone, and no relation to the host clock.
type Time int64

// Common instants.
const (
	// Epoch is the start of simulated time.
	Epoch Time = 0
	// Never is a sentinel meaning "no such instant".
	Never Time = -1 << 62
)

// Add returns t shifted by d.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration t-u.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Before reports whether t precedes u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t follows u.
func (t Time) After(u Time) bool { return t > u }

// Seconds returns t as a floating-point number of seconds since Epoch.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// Hours returns t as a floating-point number of hours since Epoch.
func (t Time) Hours() float64 { return t.Seconds() / 3600 }

// String renders the instant as days+clock time, e.g. "12d03:45:09".
func (t Time) String() string {
	if t == Never {
		return "never"
	}
	neg := ""
	if t < 0 {
		neg, t = "-", -t
	}
	d := time.Duration(t)
	days := int(d / (24 * time.Hour))
	d -= time.Duration(days) * 24 * time.Hour
	h := int(d / time.Hour)
	d -= time.Duration(h) * time.Hour
	m := int(d / time.Minute)
	d -= time.Duration(m) * time.Minute
	s := int(d / time.Second)
	return fmt.Sprintf("%s%dd%02d:%02d:%02d", neg, days, h, m, s)
}

// TimeOfDay returns the offset of t within its simulated 24-hour day.
func (t Time) TimeOfDay() time.Duration {
	day := Time(24 * time.Hour)
	rem := t % day
	if rem < 0 {
		rem += day
	}
	return time.Duration(rem)
}

// Day returns the zero-based index of the simulated day containing t.
func (t Time) Day() int { return int(t / Time(24*time.Hour)) }
