package symfail

import (
	"encoding/json"
	"errors"
	"testing"

	"symfail/internal/analysis"
	"symfail/internal/collect"
	"symfail/internal/core"
	"symfail/internal/phone"
	"symfail/internal/sim"
)

// checkpointChaosDataset collects a Workers:4 field study (the PR 4 chaos
// harness fleet shape) whose records the checkpointed study re-analyses.
func checkpointChaosDataset(t *testing.T, seed uint64) map[string][]core.Record {
	t.Helper()
	fs, err := RunFieldStudy(FieldStudyConfig{
		Seed:       seed,
		Phones:     6,
		Workers:    4,
		Duration:   6 * phone.StudyMonth,
		JoinWindow: phone.StudyMonth / 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	return fs.Dataset.AllRecords()
}

// continuousFingerprint marshals the three continuous-operation views —
// full tables, windowed, decaying — as the byte-identity criterion.
func continuousFingerprint(t *testing.T, c *analysis.Continuous) string {
	t.Helper()
	blob, err := json.Marshal(map[string]any{
		"tables": c.Tables(),
		"window": c.Window(),
		"decay":  c.Decay(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return string(blob)
}

// TestCheckpointKillAnywhereResume is the checkpoint/resume invariant: a
// continuous study killed at RNG-drawn points — mid-record-stream and inside
// the checkpoint write/sync/rename protocol itself — and resumed from the
// crash-surviving store converges to tables byte-identical to an
// uninterrupted run. `make chaos-checkpoint` runs this under -race.
func TestCheckpointKillAnywhereResume(t *testing.T) {
	ds := checkpointChaosDataset(t, 20070701)

	// Baseline: one uninterrupted run.
	base, err := analysis.NewContinuous(analysis.ContinuousConfig{
		Store: collect.NewCrashStore(nil), CheckpointEvery: 48, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := base.Feed(ds); err != nil {
		t.Fatal(err)
	}
	want := continuousFingerprint(t, base)

	// Chaos: the same study over a crash-faithful store, killed 12 times at
	// RNG-drawn points. Every third kill lands inside the checkpoint
	// protocol (staged / synced / installed — the final checkpoint always
	// visits all three, so a draw in [1,3] is guaranteed to fire); the rest
	// land mid-record-stream, drawn over the records this incarnation will
	// actually re-feed.
	total := 0
	for _, recs := range ds {
		total += len(recs)
	}
	killRng := sim.NewRand(20070702)
	store := collect.NewCrashStore(sim.NewRand(20070703))
	const kills = 12
	killsFired, ckptKills, resumes := 0, 0, 0
	var c *analysis.Continuous
	for {
		c, err = analysis.NewContinuous(analysis.ContinuousConfig{Store: store, CheckpointEvery: 48, Seed: 1})
		if err != nil {
			t.Fatalf("resume %d: %v", resumes, err)
		}
		if resumes > 0 && store.Size(analysis.CheckpointFile) > 0 && !c.Resumed() {
			t.Fatalf("resume %d: checkpoint present but run did not resume", resumes)
		}
		if killsFired < kills {
			remaining := total - c.Fed()
			ckpt := killsFired%3 == 1 || remaining <= 0
			at := 1 + killRng.Intn(3)
			if !ckpt {
				at = 1 + killRng.Intn(remaining)
			}
			nObs, nCkpt := 0, 0
			c, err = analysis.NewContinuous(analysis.ContinuousConfig{
				Store: store, CheckpointEvery: 48, Seed: 1,
				Crashpoint: func(point string) bool {
					if point == "observe" {
						nObs++
						return !ckpt && nObs == at
					}
					nCkpt++
					return ckpt && nCkpt == at
				},
			})
			if err != nil {
				t.Fatalf("resume %d: %v", resumes, err)
			}
			if err = c.Feed(ds); err != nil {
				if !errors.Is(err, analysis.ErrKilled) {
					t.Fatalf("resume %d: %v", resumes, err)
				}
				if ckpt {
					ckptKills++
				}
				killsFired++
				resumes++
				// The process died: staged checkpoint writes are lost,
				// synced ones survive — the collection server's crash model.
				store.Crash()
				continue
			}
			t.Fatalf("kill %d (ckpt=%v at=%d, %d remaining) never fired", killsFired, ckpt, at, remaining)
		}
		if err = c.Feed(ds); err != nil {
			t.Fatalf("final run: %v", err)
		}
		break
	}

	if killsFired < kills {
		t.Fatalf("only %d kills fired — the kill-anywhere harness is not killing anywhere", killsFired)
	}
	if ckptKills == 0 {
		t.Fatal("no kill landed inside the checkpoint protocol")
	}
	if got := continuousFingerprint(t, c); got != want {
		t.Errorf("resumed study diverged from uninterrupted run after %d kills (%d mid-checkpoint)",
			killsFired, ckptKills)
	}
	if c.Fed() != base.Fed() {
		t.Errorf("resumed study fed %d records, uninterrupted fed %d", c.Fed(), base.Fed())
	}
}

// TestCheckpointResumeAcrossRuns: the checkpoint also carries the epoch
// forward across orderly stops — a second Feed over the same dataset from a
// restored run observes nothing new, and its views match the first run's.
func TestCheckpointResumeAcrossRuns(t *testing.T) {
	ds := checkpointChaosDataset(t, 20070704)
	store := collect.NewCrashStore(nil)
	first, err := analysis.NewContinuous(analysis.ContinuousConfig{Store: store, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := first.Feed(ds); err != nil {
		t.Fatal(err)
	}
	want := continuousFingerprint(t, first)

	second, err := analysis.NewContinuous(analysis.ContinuousConfig{Store: store, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Resumed() {
		t.Fatal("second run did not resume from the installed checkpoint")
	}
	if err := second.Feed(ds); err != nil {
		t.Fatal(err)
	}
	if second.Fed() != first.Fed() {
		t.Errorf("resumed run re-fed records: %d vs %d", second.Fed(), first.Fed())
	}
	if got := continuousFingerprint(t, second); got != want {
		t.Error("restored run's views differ from the original's")
	}
}
