package symfail

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"symfail/internal/analysis"
	"symfail/internal/collect"
	"symfail/internal/phone"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden determinism fingerprint")

// fingerprint is a compact cross-process determinism witness: if any code
// path lets Go's per-process map iteration order (or any other ambient
// nondeterminism) leak into the simulation, this drifts between processes
// even though same-process double runs agree.
type fingerprint struct {
	Panics        int     `json:"panics"`
	Freezes       int     `json:"freezes"`
	SelfShutdowns int     `json:"selfShutdowns"`
	Boots         int     `json:"boots"`
	ObservedHours float64 `json:"observedHours"`
	FirstPanicKey string  `json:"firstPanicKey"`
	FirstPanicAt  int64   `json:"firstPanicAt"`
	LogBytes      int     `json:"logBytes"`
}

// computeFingerprint runs the pinned reduced study with the given worker
// count. The golden tests pin workers=1 (the fully serial path); the
// parallel-equivalence test sweeps worker counts and requires the same
// bytes from every one.
func computeFingerprint(t *testing.T, workers int) fingerprint {
	t.Helper()
	fs, err := RunFieldStudy(FieldStudyConfig{
		Seed:       424242,
		Phones:     6,
		Duration:   3 * phone.StudyMonth,
		JoinWindow: phone.StudyMonth / 2,
		Workers:    workers,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep := fs.Study.MTBF()
	fp := fingerprint{
		Panics:        len(fs.Study.Panics()),
		Freezes:       rep.Freezes,
		SelfShutdowns: rep.SelfShutdowns,
		ObservedHours: rep.ObservedHours,
	}
	for _, d := range fs.Fleet.Devices {
		fp.Boots += d.BootCount()
	}
	if ps := fs.Study.Panics(); len(ps) > 0 {
		fp.FirstPanicKey = ps[0].Key()
		fp.FirstPanicAt = int64(ps[0].Time)
	}
	for _, l := range fs.Loggers {
		fp.LogBytes += len(l.LogBytes())
	}
	return fp
}

func TestGoldenDeterminismFingerprint(t *testing.T) {
	path := filepath.Join("testdata", "golden_fingerprint.json")
	got := computeFingerprint(t, 1)
	if *updateGolden {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %+v", got)
		return
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no golden fingerprint (run `go test -run Golden -update .`): %v", err)
	}
	var want fingerprint
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("fingerprint drifted.\n got: %+v\nwant: %+v\n"+
			"If the simulation changed intentionally, refresh with `go test -run Golden -update .`;"+
			" otherwise nondeterminism (e.g. map iteration) leaked into the model.", got, want)
	}
	_ = analysis.DefaultOptions()
}

// TestGoldenFingerprintByteIdentical re-marshals the computed fingerprint
// and compares it byte for byte against the golden file, a stricter check
// than the field-wise one above: JSON encoding, field order, and float
// formatting are all part of the witness. It guards that behaviour-neutral
// sweeps (such as the symlint-driven cleanup) stay behaviour-neutral.
//
// `make check` runs this same test in a -race build; the race-enabled run
// path must produce the identical bytes, since instrumentation may not
// perturb the simulation (only the scheduler, which the engine never
// consults).
func TestGoldenFingerprintByteIdentical(t *testing.T) {
	if *updateGolden {
		t.Skip("golden being rewritten by TestGoldenDeterminismFingerprint")
	}
	path := filepath.Join("testdata", "golden_fingerprint.json")
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no golden fingerprint (run `go test -run Golden -update .`): %v", err)
	}
	got := computeFingerprint(t, 1)
	blob, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	blob = append(blob, '\n')
	if !bytes.Equal(blob, want) {
		t.Errorf("golden fingerprint is not byte-identical.\n got: %s\nwant: %s", blob, want)
	}
}

// advFingerprint witnesses an adversity-enabled run: same seed + same
// fault config must reproduce not only the simulation but the injected
// faults, the recovery tallies and the exact bytes of the merged dataset.
type advFingerprint struct {
	fingerprint
	// DatasetCRC is a CRC-32C over the merged dataset (device IDs and log
	// bytes, in sorted device order) — "byte-identical dataset" in one
	// number.
	DatasetCRC uint32 `json:"datasetCRC"`
	// Injected-fault and recovery ground truth.
	TornWrites uint64 `json:"tornWrites"`
	BitFlips   uint64 `json:"bitFlips"`
	Salvaged   int    `json:"salvaged"`
	Lost       int    `json:"lost"`
}

// adversityStudyConfig is the pinned fault calibration for the golden
// adversity run.
func adversityStudyConfig() FieldStudyConfig {
	return FieldStudyConfig{
		Seed:        979797,
		Phones:      4,
		Duration:    2 * phone.StudyMonth,
		JoinWindow:  phone.StudyMonth / 4,
		UploadEvery: 2 * 24 * time.Hour,
		Adversity: AdversityConfig{
			Flash: phone.FlashFaults{
				TornWriteProb:  0.6,
				BitRotPerWrite: 0.004,
				QuotaBytes:     512 << 10,
			},
			Net: collect.NetFaults{
				RefuseProb:  0.08,
				DropProb:    0.04,
				CorruptProb: 0.04,
				DropAckProb: 0.04,
			},
			RetryBase: 30 * time.Minute,
			RetryMax:  8 * time.Hour,
		},
	}
}

func computeAdversityFingerprint(t *testing.T, workers int) advFingerprint {
	t.Helper()
	cfg := adversityStudyConfig()
	cfg.Workers = workers
	fs, srv, err := RunFieldStudyWithCollector(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rep := fs.Study.MTBF()
	fp := advFingerprint{fingerprint: fingerprint{
		Panics:        len(fs.Study.Panics()),
		Freezes:       rep.Freezes,
		SelfShutdowns: rep.SelfShutdowns,
		ObservedHours: rep.ObservedHours,
	}}
	for _, d := range fs.Fleet.Devices {
		fp.Boots += d.BootCount()
		fp.TornWrites += d.FS().TornWrites()
		fp.BitFlips += d.FS().BitFlips()
	}
	if ps := fs.Study.Panics(); len(ps) > 0 {
		fp.FirstPanicKey = ps[0].Key()
		fp.FirstPanicAt = int64(ps[0].Time)
	}
	for _, l := range fs.Loggers {
		fp.LogBytes += len(l.LogBytes())
	}
	for _, id := range fs.Dataset.Devices() {
		for _, r := range fs.Dataset.Records(id) {
			fp.Salvaged += r.LogSalvaged
			fp.Lost += r.LogLost
		}
	}
	fp.DatasetCRC = fs.Dataset.CRC32C()
	return fp
}

// TestGoldenAdversityFingerprint pins the adversity-enabled run: fault
// injection (flash tears, bit rot, network refusals/drops/corruption/lost
// ACKs), crash-safe recovery and the hardened collection pipeline must all
// be pure functions of the seed, down to the merged dataset's bytes.
func TestGoldenAdversityFingerprint(t *testing.T) {
	path := filepath.Join("testdata", "golden_fingerprint_adversity.json")
	got := computeAdversityFingerprint(t, 1)
	if got.TornWrites == 0 {
		t.Error("adversity run injected no torn writes — the fault config is not reaching the flash")
	}
	if got.Salvaged == 0 {
		t.Error("no boot-time recovery happened — torn logs are not being repaired")
	}
	if *updateGolden {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("adversity golden updated: %+v", got)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no adversity golden (run `go test -run Golden -update .`): %v", err)
	}
	blob, err := json.MarshalIndent(got, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	blob = append(blob, '\n')
	if !bytes.Equal(blob, want) {
		t.Errorf("adversity fingerprint drifted.\n got: %s\nwant: %s\n"+
			"If the adversity model changed intentionally, refresh with `go test -run Golden -update .`;"+
			" otherwise fault injection is not a pure function of the seed.", blob, want)
	}
}

// TestNoUnclassifiedPanics asserts the dynamic side of the panictaxonomy
// contract on a real run: every panic the field study produced is in
// analysis.KnownPanicKeys (symlint proves the same for every *possible*
// raise site, statically).
func TestNoUnclassifiedPanics(t *testing.T) {
	fs, err := RunFieldStudy(FieldStudyConfig{
		Seed:       424242,
		Phones:     6,
		Duration:   3 * phone.StudyMonth,
		JoinWindow: phone.StudyMonth / 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if keys := fs.Study.UnclassifiedPanicKeys(); len(keys) != 0 {
		t.Errorf("panics outside the Table 2 taxonomy: %v", keys)
	}
}
