package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed, and type-checked package of the module.
type Package struct {
	Path  string // import path, e.g. "symfail/internal/sim"
	Dir   string // absolute directory
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	fset *token.FileSet // shared across all packages from one Loader
}

// Loader loads module packages from source with full type information using
// only the standard library: module-internal imports resolve against the
// module tree, everything else goes through the compiler's source importer.
// One Loader instance caches packages across Load calls, so repeated loads
// (and the transitive closure of stdlib imports) are paid for once.
type Loader struct {
	ModRoot string // absolute path of the directory containing go.mod
	ModPath string // module path declared in go.mod
	Fset    *token.FileSet

	pkgs    map[string]*Package // by import path; nil entry = load in progress
	std     types.ImporterFrom
	loading map[string]bool
}

// NewLoader creates a loader for the module rooted at modRoot (the directory
// holding go.mod).
func NewLoader(modRoot string) (*Loader, error) {
	abs, err := filepath.Abs(modRoot)
	if err != nil {
		return nil, err
	}
	data, err := os.ReadFile(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, fmt.Errorf("lint: not a module root: %w", err)
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			modPath = strings.Trim(strings.TrimSpace(rest), `"`)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("lint: no module line in %s/go.mod", abs)
	}
	fset := token.NewFileSet()
	l := &Loader{
		ModRoot: abs,
		ModPath: modPath,
		Fset:    fset,
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	l.std = std
	return l, nil
}

// FindModRoot walks up from dir looking for a go.mod.
func FindModRoot(dir string) (string, error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}

// Load resolves patterns into packages. Supported patterns, all relative to
// the module root: "./..." (every package), "./dir/..." (subtree), and
// "./dir" (single package). Test files (_test.go) are not loaded: the
// contract symlint enforces is about simulator code, and test scaffolding
// legitimately touches the wall clock.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := make([]string, 0, len(patterns))
	seen := make(map[string]bool)
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		switch {
		case pat == "./..." || pat == "...":
			subs, err := l.walk(l.ModRoot)
			if err != nil {
				return nil, err
			}
			for _, d := range subs {
				add(d)
			}
		case strings.HasSuffix(pat, "/..."):
			root := filepath.Join(l.ModRoot, strings.TrimSuffix(pat, "/..."))
			subs, err := l.walk(root)
			if err != nil {
				return nil, err
			}
			for _, d := range subs {
				add(d)
			}
		default:
			add(filepath.Join(l.ModRoot, pat))
		}
	}
	sort.Strings(dirs)
	out := make([]*Package, 0, len(dirs))
	for _, dir := range dirs {
		pkg, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		if pkg != nil {
			out = append(out, pkg)
		}
	}
	return out, nil
}

// walk returns every directory under root containing at least one non-test
// .go file, skipping testdata, vendor, hidden, and underscore directories.
func (l *Loader) walk(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" ||
			strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	return dirs, err
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// importPathFor maps an absolute module directory to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModPath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModRoot)
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

func (l *Loader) loadDir(dir string) (*Package, error) {
	path, err := l.importPathFor(dir)
	if err != nil {
		return nil, err
	}
	return l.loadPath(path, dir)
}

func (l *Loader) loadPath(path, dir string) (*Package, error) {
	if pkg, ok := l.pkgs[path]; ok {
		return pkg, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %s", path)
	}
	l.loading[path] = true
	defer func() { l.loading[path] = false }()

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		n := e.Name()
		if e.IsDir() || !strings.HasSuffix(n, ".go") || strings.HasSuffix(n, "_test.go") {
			continue
		}
		names = append(names, n)
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, nil
	}
	files := make([]*ast.File, 0, len(names))
	for _, n := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, n), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var typeErrs []error
	conf := types.Config{
		Importer: l,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, _ := conf.Check(path, l.Fset, files, info)
	if len(typeErrs) > 0 {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, typeErrs[0])
	}
	pkg := &Package{Path: path, Dir: dir, Files: files, Types: tpkg, Info: info, fset: l.Fset}
	l.pkgs[path] = pkg
	return pkg, nil
}

// Import implements types.Importer: module-internal paths load from the
// module tree, anything else comes from the toolchain's source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModPath), "/")
		pkg, err := l.loadPath(path, filepath.Join(l.ModRoot, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		if pkg == nil {
			return nil, fmt.Errorf("lint: no Go files in %s", path)
		}
		return pkg.Types, nil
	}
	return l.std.ImportFrom(path, l.ModRoot, 0)
}
