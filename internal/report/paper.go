package report

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"symfail/internal/analysis"
	"symfail/internal/analysis/stream"
	"symfail/internal/forum"
	"symfail/internal/sim"
)

// Each paper renderer below is split into a data-level core that consumes
// the stream package's table types and a thin *analysis.Study wrapper. The
// FromSnapshot variants render the same text from a stream.TablesSnapshot —
// the `-stream` path — and, because the batch table methods and the
// streaming accumulators share one reducer implementation, the two paths
// print byte-identical reports.

// Table1 renders the forum study's failure-type × recovery-action joint
// distribution (paper Table 1).
func Table1(rep *forum.Report) string {
	headers := []string{"failure type", "reboot", "battery", "wait", "repeat", "service", "unrep.", "total"}
	var rows [][]string
	for _, ft := range forum.FailureTypes {
		row := []string{string(ft)}
		var total float64
		for _, rec := range forum.Recoveries {
			v := rep.JointPercent[ft][rec]
			total += v
			row = append(row, Pct(v))
		}
		row = append(row, fmt.Sprintf("%.1f", total))
		rows = append(rows, row)
	}
	title := fmt.Sprintf("Table 1 — failure type x recovery action (%% of %d forum failures)", rep.FailureReports)
	return Table(title, headers, rows)
}

// Section41 renders the forum study marginals of section 4.1.
func Section41(rep *forum.Report) string {
	var b strings.Builder
	b.WriteString("Section 4.1 — forum study marginals\n")
	fmt.Fprintf(&b, "posts scanned: %d, failure reports: %d, smart-phone share: %.1f%%\n",
		rep.PostsScanned, rep.FailureReports, 100*rep.SmartShare)
	b.WriteString("failure types by frequency:\n")
	for _, ft := range rep.TypesByFrequency() {
		fmt.Fprintf(&b, "  %-18s %5.1f%%\n", ft, rep.TypePercent[ft])
	}
	b.WriteString("severity:\n")
	for _, sev := range []forum.Severity{forum.SevHigh, forum.SevMedium, forum.SevLow, forum.SevUnknown} {
		fmt.Fprintf(&b, "  %-8s %5.1f%%\n", sev, rep.SeverityPercent[sev])
	}
	b.WriteString("failures correlated with user activity:\n")
	for _, act := range []forum.ActivityTag{forum.ActCall, forum.ActText, forum.ActBluetooth, forum.ActImages} {
		fmt.Fprintf(&b, "  %-14s %5.1f%%\n", act, rep.ActivityPercent[act])
	}
	return b.String()
}

// Figure2 renders the reboot-duration distribution with the paper's two
// views: the full range and the sub-500 s zoom.
func Figure2(s *analysis.Study) string {
	return figure2Core(s.RebootDurations(), len(s.HLEvents(analysis.HLSelfShutdown)),
		s.Options().SelfShutdownThreshold)
}

// Figure2FromSnapshot renders Figure 2 from a streaming snapshot.
func Figure2FromSnapshot(sn *stream.TablesSnapshot) string {
	return figure2Core(sn.RebootDurations, sn.MTBF.SelfShutdowns, sn.Config.SelfShutdownThreshold)
}

func figure2Core(durs []float64, selfs int, threshold time.Duration) string {
	var b strings.Builder
	b.WriteString("Figure 2 — distribution of reboot durations\n")
	fmt.Fprintf(&b, "shutdown events: %d\n", len(durs))
	if len(durs) > 0 {
		fmt.Fprintf(&b, "self-shutdowns (<= %v): %d (%.1f%% of shutdown events)\n",
			threshold, selfs, 100*float64(selfs)/float64(len(durs)))
	}
	b.WriteString("\nfull range (bin = 2500 s):\n")
	b.WriteString(rebootHistogram(durs, 0, 50000, 20).Render(40, func(lo, hi float64) string {
		return fmt.Sprintf("[%5.0f,%5.0f)s", lo, hi)
	}))
	b.WriteString("\nzoom, duration < 500 s (bin = 25 s):\n")
	b.WriteString(rebootHistogram(durs, 0, 500, 20).Render(40, func(lo, hi float64) string {
		return fmt.Sprintf("[%3.0f,%3.0f)s", lo, hi)
	}))
	if med := medianOf(durs, 360); med > 0 {
		fmt.Fprintf(&b, "median self-shutdown duration: %.0f s (paper: ~80 s)\n", med)
	}
	return b.String()
}

// rebootHistogram mirrors Study.RebootHistogram on a raw duration slice.
func rebootHistogram(durs []float64, lo, hi float64, bins int) *sim.Histogram {
	h := sim.NewHistogram(lo, hi, bins)
	for _, v := range durs {
		h.Add(v)
	}
	return h
}

func medianOf(durs []float64, below float64) float64 {
	var xs []float64
	for _, d := range durs {
		if d <= below {
			xs = append(xs, d)
		}
	}
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	return xs[len(xs)/2]
}

// MTBF renders the section 6 headline numbers.
func MTBF(s *analysis.Study) string { return mtbfCore(s.MTBF()) }

// MTBFFromSnapshot renders the section 6 headline from a streaming snapshot.
func MTBFFromSnapshot(sn *stream.TablesSnapshot) string { return mtbfCore(sn.MTBF) }

func mtbfCore(rep stream.MTBFReport) string {
	var b strings.Builder
	b.WriteString("Section 6 — freezes and self-shutdowns\n")
	fmt.Fprintf(&b, "observed phone-hours: %.0f\n", rep.ObservedHours)
	fmt.Fprintf(&b, "freezes: %d        MTBFr: %.0f h (paper: 313 h)\n", rep.Freezes, rep.MTBFrHours)
	fmt.Fprintf(&b, "self-shutdowns: %d  MTBS:  %.0f h (paper: 250 h)\n", rep.SelfShutdowns, rep.MTBSHours)
	fmt.Fprintf(&b, "a failure every %.1f days on average (paper: ~11 days)\n", rep.FailureEveryDays)
	return b.String()
}

// Table2 renders the collected panic events with frequencies and meanings.
func Table2(s *analysis.Study) string { return table2Core(s.PanicTable()) }

// Table2FromSnapshot renders Table 2 from a streaming snapshot.
func Table2FromSnapshot(sn *stream.TablesSnapshot) string { return table2Core(sn.PanicTable) }

func table2Core(rows []stream.PanicRow) string {
	out := make([][]string, 0, len(rows))
	for _, r := range rows {
		meaning := r.Meaning
		if len(meaning) > 72 {
			meaning = meaning[:69] + "..."
		}
		out = append(out, []string{r.Key, fmt.Sprintf("%d", r.Count), fmt.Sprintf("%.2f", r.Percent), meaning})
	}
	return Table("Table 2 — collected panic events", []string{"panic", "count", "%", "meaning"}, out)
}

// Figure3 renders the distribution of panic cascade sizes.
func Figure3(s *analysis.Study) string { return figure3Core(s.Bursts()) }

// Figure3FromSnapshot renders Figure 3 from a streaming snapshot.
func Figure3FromSnapshot(sn *stream.TablesSnapshot) string { return figure3Core(sn.Bursts) }

func figure3Core(st stream.BurstStats) string {
	var b strings.Builder
	b.WriteString(IntHistogram("Figure 3 — distribution of subsequent panics (cascade sizes)", "size", st.SizeCounts, 40))
	fmt.Fprintf(&b, "panics in cascades of >= 2: %.1f%% (paper: ~25%%)\n", 100*st.PanicsInBursts)
	return b.String()
}

// Figure5 renders the panic / high-level-event coalescence.
func Figure5(s *analysis.Study) string {
	return figure5Core(s.Coalesce(), s.Options().CoalescenceWindow, s.RelatedPercentWithAllShutdowns())
}

// Figure5FromSnapshot renders Figure 5 from a streaming snapshot.
func Figure5FromSnapshot(sn *stream.TablesSnapshot) string {
	return figure5Core(sn.Coalescence, sn.Config.CoalescenceWindow, sn.RelatedPercentAllShutdowns)
}

func figure5Core(st stream.CoalescenceStats, window time.Duration, allPct float64) string {
	var b strings.Builder
	b.WriteString("Figure 5 — panics and high-level events (window ")
	fmt.Fprintf(&b, "%v)\n", window)
	fmt.Fprintf(&b, "panics: %d, related to HL events: %d (%.1f%%, paper: 51%%)\n",
		st.TotalPanics, st.RelatedPanics, st.RelatedPercent)
	fmt.Fprintf(&b, "  -> freezes: %d, -> self-shutdowns: %d, isolated HL events: %d\n",
		st.ToFreeze, st.ToSelfShutdown, st.IsolatedHL)
	fmt.Fprintf(&b, "with ALL shutdown events included: %.1f%% related (paper: 55%%)\n", allPct)
	b.WriteString("\nper category (Figure 5b):\n")
	keys := make([]string, 0, len(st.ByCategory))
	for k := range st.ByCategory {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if st.ByCategory[keys[i]].Total != st.ByCategory[keys[j]].Total {
			return st.ByCategory[keys[i]].Total > st.ByCategory[keys[j]].Total
		}
		return keys[i] < keys[j]
	})
	rows := make([][]string, 0, len(keys))
	for _, k := range keys {
		rc := st.ByCategory[k]
		rows = append(rows, []string{
			k,
			fmt.Sprintf("%d", rc.Total),
			fmt.Sprintf("%d", rc.ToFreeze),
			fmt.Sprintf("%d", rc.ToSelfShutdown),
			fmt.Sprintf("%d", rc.Total-rc.Related),
		})
	}
	b.WriteString(Table("", []string{"panic", "total", "->freeze", "->self-shutdown", "isolated"}, rows))
	return b.String()
}

// Figure4Sweep renders the coalescence-window justification.
func Figure4Sweep(s *analysis.Study, windows []time.Duration) string {
	points := s.WindowSweep(windows)
	var b strings.Builder
	b.WriteString("Figure 4 — coalescence window sweep (why 5 minutes)\n")
	max := 0
	for _, p := range points {
		if p.Related > max {
			max = p.Related
		}
	}
	for _, p := range points {
		fmt.Fprintf(&b, "window %-8v related %5d %s\n", p.Window, p.Related, Bar(float64(p.Related), float64(max), 40))
	}
	return b.String()
}

// Table3 renders the panic-activity relationship.
func Table3(s *analysis.Study) string {
	return table3Core(s.ActivityTable(), s.RealTimeActivityShare())
}

// Table3FromSnapshot renders Table 3 from a streaming snapshot.
func Table3FromSnapshot(sn *stream.TablesSnapshot) string {
	return table3Core(sn.Activity, sn.RealTimeActivitySharePct)
}

func table3Core(rows []stream.ActivityRow, rtShare float64) string {
	cats := []string{"E32USER-CBase", "KERN-EXEC", "MSGS Client", "Phone.app", "USER", "ViewSrv"}
	var out [][]string
	for _, r := range rows {
		row := []string{r.Activity}
		for _, c := range cats {
			row = append(row, Pct(r.ByCategory[c]))
		}
		row = append(row, fmt.Sprintf("%.1f", r.Total))
		out = append(out, row)
	}
	headers := append([]string{"activity"}, append(cats, "total")...)
	var b strings.Builder
	b.WriteString(Table("Table 3 — panic-activity relationship (% of HL-related panics)", headers, out))
	fmt.Fprintf(&b, "panics during real-time activity (call/message): %.1f%% (paper: ~45%%)\n", rtShare)
	return b.String()
}

// Figure6 renders the running-applications-at-panic distribution.
func Figure6(s *analysis.Study) string {
	return figure6Core(s.RunningAppsHistogram(stream.RunningAppsCap))
}

// Figure6FromSnapshot renders Figure 6 from a streaming snapshot.
func Figure6FromSnapshot(sn *stream.TablesSnapshot) string { return figure6Core(sn.RunningApps) }

func figure6Core(hist map[int]int) string {
	return IntHistogram("Figure 6 — number of running applications at panic time", "apps", hist, 40)
}

// Table4 renders the panic / running-application relationship.
func Table4(s *analysis.Study) string {
	return table4Core(s.AppPanicTable(), s.TopPanicApps(5))
}

// Table4FromSnapshot renders Table 4 from a streaming snapshot.
func Table4FromSnapshot(sn *stream.TablesSnapshot) string {
	top := sn.TopApps
	if len(top) > 5 {
		top = top[:5]
	}
	return table4Core(sn.AppTable, top)
}

func table4Core(rows []stream.AppPanicRow, top []stream.AppShare) string {
	appSet := make(map[string]bool)
	for _, r := range rows {
		for app := range r.ByApp {
			appSet[app] = true
		}
	}
	apps := make([]string, 0, len(appSet))
	for app := range appSet {
		apps = append(apps, app)
	}
	sort.Strings(apps)
	var out [][]string
	for _, r := range rows {
		row := []string{r.Outcome, r.Category}
		for _, app := range apps {
			row = append(row, Pct(r.ByApp[app]))
		}
		out = append(out, row)
	}
	headers := append([]string{"HL event", "panic"}, apps...)
	var b strings.Builder
	b.WriteString(Table("Table 4 — panic-running applications relationship (% of all panics)", headers, out))
	b.WriteString("applications most often running at panic time:\n")
	for _, t := range top {
		fmt.Fprintf(&b, "  %-12s %5.1f%%\n", t.App, t.Percent)
	}
	return b.String()
}
