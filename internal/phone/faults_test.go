package phone

import (
	"strings"
	"testing"
	"time"

	"symfail/internal/sim"
	"symfail/internal/symbos"
)

// forceInject runs one injection method on a booted device and returns the
// panic keys captured by RDebug (some injections defer the panic to the
// next engine tick, so the engine is drained).
func forceInject(t *testing.T, inject func(*faultModel)) []string {
	t.Helper()
	eng := sim.NewEngine()
	cfg := DefaultConfig(77)
	// Silence stochastic sources so only the forced injection panics.
	cfg.PanicOpportunityPerHour = 0
	cfg.SpontaneousFreezePerHour = 0
	cfg.SpontaneousShutdownPerHour = 0
	cfg.OutputFailurePerHour = 0
	cfg.ActivitiesPerDay = 0.0001
	cfg.NightOffProb = 0
	cfg.DayOffPerHour = 0
	cfg.BurstProb = 0 // no cascades: exactly one panic per injection
	d := NewDevice("inject-test", eng, cfg)
	d.Enroll(sim.Epoch)
	eng.Step() // boot

	var keys []string
	d.Kernel().SubscribeRDebug(func(p *symbos.Panic) { keys = append(keys, p.Key()) })
	inject(d.faults)
	// Drain deferred dispatches without advancing past scheduled HL
	// reactions (they are guarded anyway).
	if err := eng.Run(eng.Now().Add(time.Minute)); err != nil {
		t.Fatal(err)
	}
	return keys
}

func TestEveryInjectionRaisesItsPanic(t *testing.T) {
	cases := []struct {
		want   string
		inject func(*faultModel)
	}{
		{"KERN-EXEC 3", (*faultModel).injectAccessViolation},
		{"KERN-EXEC 0", (*faultModel).injectBadHandle},
		{"KERN-EXEC 15", (*faultModel).injectTimerInUse},
		{"E32USER-CBase 33", (*faultModel).injectObjectRefsRemain},
		{"E32USER-CBase 46", (*faultModel).injectStraySignal},
		{"E32USER-CBase 47", (*faultModel).injectRunLLeave},
		{"E32USER-CBase 69", (*faultModel).injectNoTrapHandler},
		{"E32USER-CBase 91", (*faultModel).injectPopUnderflow},
		{"E32USER-CBase 92", (*faultModel).injectPopDestroyUnderflow},
		{"USER 70", (*faultModel).injectNullMessagePtr},
		{"KERN-SVR 0", (*faultModel).injectCorruptClose},
		{"EIKON-LISTBOX 3", (*faultModel).injectListboxNoView},
		{"EIKON-LISTBOX 5", (*faultModel).injectListboxBadIndex},
		{"EIKCOCTL 70", (*faultModel).injectEdwinCorrupt},
		{"MMFAudioClient 4", (*faultModel).injectVolume},
		{"MSGS Client 3", (*faultModel).injectMsgsOverflow},
		{"USER 10", (*faultModel).injectDesOutOfRange},
		{"USER 11", (*faultModel).injectDesOverflow},
		{"ViewSrv 11", (*faultModel).injectViewSrvStarvation},
		{"Phone.app 2", (*faultModel).injectPhoneAppAssert},
	}
	for _, tc := range cases {
		t.Run(tc.want, func(t *testing.T) {
			keys := forceInject(t, tc.inject)
			if len(keys) != 1 {
				t.Fatalf("captured %v, want exactly one %s", keys, tc.want)
			}
			if keys[0] != tc.want {
				t.Errorf("panic = %s, want %s", keys[0], tc.want)
			}
		})
	}
}

func TestInjectionCoversEveryTable2Row(t *testing.T) {
	// The profile table must cover all 20 Table 2 rows with weights that
	// sum to ~100 percentage points.
	eng := sim.NewEngine()
	d := NewDevice("cov", eng, DefaultConfig(1))
	d.Enroll(sim.Epoch)
	eng.Step()
	f := d.faults
	var total float64
	n := 0
	for _, set := range [][]faultProfile{f.anyP, f.callP, f.msgP} {
		for _, p := range set {
			total += p.weight
			n++
			if p.inject == nil {
				t.Errorf("%s has no injection", symbos.PanicKey(p.cat, p.typ))
			}
		}
	}
	if n != 20 {
		t.Errorf("profiles = %d, want 20 (Table 2 rows)", n)
	}
	if total < 99.5 || total > 100.5 {
		t.Errorf("weights sum to %.2f, want ~100", total)
	}
}

func TestPanicHandlerTerminatesVictimApp(t *testing.T) {
	keysSeen := forceInject(t, func(f *faultModel) {
		// Launch an app, make it the victim by injecting into it.
		f.d.LaunchApp(AppCamera)
		f.exec(f.d.apps[AppCamera], func(k *symbos.Kernel, th *symbos.Thread) {
			symbos.NullPtr(k).Deref()
		})
		if f.d.AppRunning(AppCamera) {
			t.Error("victim app survived its panic")
		}
	})
	if len(keysSeen) != 1 || keysSeen[0] != "KERN-EXEC 3" {
		t.Fatalf("keys = %v", keysSeen)
	}
}

func TestSystemServerPanicRebootsPhone(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(88)
	cfg.PanicOpportunityPerHour = 0
	cfg.SpontaneousFreezePerHour = 0
	cfg.SpontaneousShutdownPerHour = 0
	cfg.NightOffProb = 0
	cfg.DayOffPerHour = 0
	cfg.BurstProb = 0
	d := NewDevice("sysrv", eng, cfg)
	d.Enroll(sim.Epoch)
	eng.Step()
	// Panic inside a critical system server.
	srv := d.AppArchServer()
	d.Kernel().Exec(srv.Process().Main(), "die", func() {
		symbos.NullPtr(d.Kernel()).Deref()
	})
	if err := eng.Run(eng.Now().Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	if d.Oracle().Count(TruthSelfShutdown) != 1 {
		t.Errorf("system-server panic did not reboot the phone (self-shutdowns = %d)",
			d.Oracle().Count(TruthSelfShutdown))
	}
	if d.BootCount() != 2 {
		t.Errorf("BootCount = %d", d.BootCount())
	}
}

func TestBurstProducesMultiplePanics(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(99)
	cfg.PanicOpportunityPerHour = 0
	cfg.SpontaneousFreezePerHour = 0
	cfg.SpontaneousShutdownPerHour = 0
	cfg.NightOffProb = 0
	cfg.DayOffPerHour = 0
	cfg.BurstProb = 1 // force a cascade
	cfg.BurstContinue = 0
	d := NewDevice("burst", eng, cfg)
	d.Enroll(sim.Epoch)
	eng.Step()
	var keys []string
	d.Kernel().SubscribeRDebug(func(p *symbos.Panic) { keys = append(keys, p.Key()) })
	d.faults.trigger()
	if err := eng.Run(eng.Now().Add(10 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if len(keys) < 2 {
		t.Errorf("forced burst produced %d panics: %v", len(keys), keys)
	}
	// The oracle marks followers.
	followers := 0
	for _, p := range d.Oracle().Panics {
		if p.Burst {
			followers++
		}
	}
	if followers == 0 {
		t.Error("no follower marked in oracle")
	}
}

func TestOutputFailureHookFires(t *testing.T) {
	eng := sim.NewEngine()
	cfg := DefaultConfig(55)
	cfg.PanicOpportunityPerHour = 0
	cfg.SpontaneousFreezePerHour = 0
	cfg.SpontaneousShutdownPerHour = 0
	cfg.NightOffProb = 0
	cfg.DayOffPerHour = 0
	cfg.OutputFailurePerHour = 1 // one per hour on average
	d := NewDevice("output", eng, cfg)
	d.Enroll(sim.Epoch)
	eng.Step()
	var seen []OutputFailure
	d.RegisterOutputFailureHook(func(of OutputFailure) { seen = append(seen, of) })
	if err := eng.Run(eng.Now().Add(12 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if len(seen) == 0 {
		t.Fatal("no output failures in 12 h at rate 1/h")
	}
	truth := d.Oracle().Count(TruthOutputFailure)
	if truth < len(seen) {
		t.Errorf("oracle (%d) < hook count (%d)", truth, len(seen))
	}
	for _, of := range seen {
		if of.Detail == "" {
			t.Error("output failure without detail")
		}
		if !strings.Contains(strings.Join(outputFailureDetails, "|"), of.Detail) {
			t.Errorf("unknown detail %q", of.Detail)
		}
	}
}

func TestMsgsClientPanicAlwaysSelfShutdown(t *testing.T) {
	// MSGS Client and Phone.app panics correspond to core applications:
	// "the OS kernel always reboots the phone if any of these applications
	// fails" (section 6).
	for _, inject := range []func(*faultModel){
		(*faultModel).injectMsgsOverflow,
		(*faultModel).injectPhoneAppAssert,
	} {
		eng := sim.NewEngine()
		cfg := DefaultConfig(66)
		cfg.PanicOpportunityPerHour = 0
		cfg.SpontaneousFreezePerHour = 0
		cfg.SpontaneousShutdownPerHour = 0
		cfg.NightOffProb = 0
		cfg.DayOffPerHour = 0
		cfg.BurstProb = 0
		d := NewDevice("core-app", eng, cfg)
		d.Enroll(sim.Epoch)
		eng.Step()
		inject(d.faults)
		if err := eng.Run(eng.Now().Add(time.Hour)); err != nil {
			t.Fatal(err)
		}
		if d.Oracle().Count(TruthSelfShutdown) != 1 {
			t.Errorf("core-application panic did not reboot (self-shutdowns = %d)",
				d.Oracle().Count(TruthSelfShutdown))
		}
	}
}
