package symbos

import (
	"testing"
	"time"

	"symfail/internal/sim"
)

func benchKernel(b *testing.B) (*Kernel, *Process) {
	b.Helper()
	eng := sim.NewEngine()
	k := NewKernel(eng)
	k.SetPanicHandler(func(*Panic, *Process) {})
	return k, k.StartProcess("BenchApp", false)
}

func BenchmarkExecNoPanic(b *testing.B) {
	k, proc := benchKernel(b)
	t := proc.Main()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Exec(t, "noop", func() {})
	}
}

func BenchmarkExecWithPanic(b *testing.B) {
	k, proc := benchKernel(b)
	t := proc.Main()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Exec(t, "boom", func() { NullPtr(k).Deref() })
	}
}

func BenchmarkSendReceive(b *testing.B) {
	k, proc := benchKernel(b)
	srv := NewServer(k, "BenchSrv", true, func(m *Message) { m.Complete(KErrNone) })
	sess := srv.Connect(proc.Main())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Exec(proc.Main(), "call", func() {
			sess.SendReceive(OpBenchPing, "payload")
		})
	}
}

// OpBenchPing is a bench-local op code.
const OpBenchPing = 1

func BenchmarkActiveObjectDispatch(b *testing.B) {
	k, proc := benchKernel(b)
	t := proc.Main()
	runs := 0
	ao := t.NewActiveObject("bench", 1, func(int) { runs++ })
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Exec(t, "arm", func() { ao.SetActive() })
		ao.Complete(KErrNone)
		for k.Engine().Step() {
		}
	}
	if runs != b.N {
		b.Fatalf("runs = %d, want %d", runs, b.N)
	}
}

func BenchmarkTimerArmFire(b *testing.B) {
	k, proc := benchKernel(b)
	t := proc.Main()
	ao := t.NewActiveObject("tick", 1, func(int) {})
	tm := NewTimer(ao)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k.Exec(t, "arm", func() { tm.After(time.Second) })
		for k.Engine().Step() {
		}
	}
}

func BenchmarkHeapAllocFree(b *testing.B) {
	k, proc := benchKernel(b)
	t := proc.Main()
	h := proc.Heap()
	b.ReportAllocs()
	b.ResetTimer()
	k.Exec(t, "alloc", func() {
		for i := 0; i < b.N; i++ {
			c := h.AllocL(t, 64, "bench")
			h.Free(c)
		}
	})
}

func BenchmarkDescriptorOps(b *testing.B) {
	k, proc := benchKernel(b)
	b.ReportAllocs()
	b.ResetTimer()
	k.Exec(proc.Main(), "desc", func() {
		buf := NewBuf(k, 64)
		for i := 0; i < b.N; i++ {
			buf.Copy("+390811234567")
			buf.Append(" ext 42")
			_ = buf.Mid(3, 6)
			buf.Delete(0, 2)
		}
	})
}

func BenchmarkTrapLeave(b *testing.B) {
	k, proc := benchKernel(b)
	t := proc.Main()
	b.ReportAllocs()
	b.ResetTimer()
	k.Exec(t, "trap", func() {
		for i := 0; i < b.N; i++ {
			t.Trap(func() {
				t.PushL(func() {})
				t.Leave(KErrNoMemory)
			})
		}
	})
}
