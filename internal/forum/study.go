package forum

import "sort"

// FailureTypes lists the failure types in the paper's frequency order.
var FailureTypes = []FailureType{OutputFail, Freeze, Unstable, SelfShutdown, InputFail}

// Recoveries lists the recovery actions in Table 1's column order.
var Recoveries = []Recovery{RecReboot, RecBattery, RecWait, RecRepeat, RecService, RecUnreported}

// Report is the outcome of running the section 4 pipeline over a corpus.
type Report struct {
	PostsScanned   int
	FailureReports int

	// Joint counts and percentages: Table 1.
	Joint        map[FailureType]map[Recovery]int
	JointPercent map[FailureType]map[Recovery]float64

	// Marginals of section 4.1.
	TypePercent     map[FailureType]float64
	RecoveryPercent map[Recovery]float64
	SeverityPercent map[Severity]float64
	// ActivityPercent is the share of failures correlated to an activity.
	ActivityPercent map[ActivityTag]float64
	// SmartShare is the share of failure reports from smart phones.
	SmartShare float64
	// VendorPercent is each vendor's share of the failure reports —
	// section 4.1 lists "phone models from all major vendors".
	VendorPercent map[string]float64
}

// Analyze filters and classifies a corpus and tabulates the study.
func Analyze(posts []Post) *Report {
	rep := &Report{
		PostsScanned:    len(posts),
		Joint:           make(map[FailureType]map[Recovery]int),
		JointPercent:    make(map[FailureType]map[Recovery]float64),
		TypePercent:     make(map[FailureType]float64),
		RecoveryPercent: make(map[Recovery]float64),
		SeverityPercent: make(map[Severity]float64),
		ActivityPercent: make(map[ActivityTag]float64),
		VendorPercent:   make(map[string]float64),
	}
	for _, ft := range FailureTypes {
		rep.Joint[ft] = make(map[Recovery]int)
		rep.JointPercent[ft] = make(map[Recovery]float64)
	}
	smart := 0
	for _, p := range posts {
		c := Classify(p)
		if !c.IsFailure {
			continue
		}
		rep.FailureReports++
		rep.Joint[c.Type][c.Recovery]++
		rep.TypePercent[c.Type]++
		rep.RecoveryPercent[c.Recovery]++
		rep.SeverityPercent[c.Severity]++
		if c.Activity != ActNone {
			rep.ActivityPercent[c.Activity]++
		}
		if p.Smart {
			smart++
		}
		rep.VendorPercent[p.Vendor]++
	}
	if rep.FailureReports == 0 {
		return rep
	}
	n := float64(rep.FailureReports)
	for ft, recs := range rep.Joint {
		for rec, c := range recs {
			rep.JointPercent[ft][rec] = 100 * float64(c) / n
		}
	}
	scale := func(m map[FailureType]float64) {
		for k := range m {
			m[k] = 100 * m[k] / n
		}
	}
	scale(rep.TypePercent)
	for k := range rep.RecoveryPercent {
		rep.RecoveryPercent[k] = 100 * rep.RecoveryPercent[k] / n
	}
	for k := range rep.SeverityPercent {
		rep.SeverityPercent[k] = 100 * rep.SeverityPercent[k] / n
	}
	for k := range rep.ActivityPercent {
		rep.ActivityPercent[k] = 100 * rep.ActivityPercent[k] / n
	}
	for k := range rep.VendorPercent {
		rep.VendorPercent[k] = 100 * rep.VendorPercent[k] / n
	}
	rep.SmartShare = float64(smart) / n
	return rep
}

// TypesByFrequency returns the failure types sorted by descending share —
// the paper's ordering is output > freeze > unstable > self-shutdown >
// input.
func (r *Report) TypesByFrequency() []FailureType {
	out := append([]FailureType(nil), FailureTypes...)
	sort.SliceStable(out, func(i, j int) bool {
		return r.TypePercent[out[i]] > r.TypePercent[out[j]]
	})
	return out
}

// ClassificationAccuracy scores the classifier against the generator's
// ground truth: the fraction of posts whose filter decision, type and
// recovery all match. Used by tests and reported in EXPERIMENTS.md.
func ClassificationAccuracy(posts []Post) float64 {
	if len(posts) == 0 {
		return 0
	}
	correct := 0
	for _, p := range posts {
		c := Classify(p)
		switch {
		case !p.IsFailure:
			if !c.IsFailure {
				correct++
			}
		case c.IsFailure && c.Type == p.TrueType && c.Recovery == p.TrueRecovery:
			correct++
		}
	}
	return float64(correct) / float64(len(posts))
}
