package collect

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"symfail/internal/core"
	"symfail/internal/sim"
)

// Crashpoint names a place in the server's commit path where the
// supervisor may kill the process. The points bracket every durability
// decision: before the WAL sync (the un-synced entry dies with the
// process), after it (durable but unacknowledged), after the ACK (durable
// and acknowledged — the client must not need to care), and on either side
// of compaction's atomic rename commit point.
type Crashpoint int

const (
	// CrashBeforeWALSync kills after the WAL append, before the sync
	// barrier: the entry is an un-synced tail and dies (torn) with the
	// process. The client never got an ACK, so nothing acknowledged is
	// lost — this is the point that would expose a sync-after-ACK bug.
	CrashBeforeWALSync Crashpoint = iota
	// CrashAfterWALSync kills between the sync barrier and the ACK: the
	// verb is durable but the client treats the upload as failed and
	// re-sends; the idempotent merge makes the re-send harmless.
	CrashAfterWALSync
	// CrashAfterAck kills once the ACK is on the wire: the client moves on
	// and recovery alone must reproduce the acknowledged state.
	CrashAfterAck
	// CrashDuringCompaction kills after snapshot.tmp is written and synced
	// but before the rename commit point: recovery must ignore the orphan
	// tmp and replay the old snapshot + full WAL.
	CrashDuringCompaction
	// CrashAfterSnapshotInstall kills after the rename but before the WAL
	// truncation: recovery replays the WAL against a snapshot that already
	// contains its effects, which must be a no-op.
	CrashAfterSnapshotInstall

	numCrashpoints
)

// NumCrashpoints is the number of server-level crashpoints, exported for
// the fleet supervisor: its per-shard kill draws cover these five plus its
// own fleet-level points (handoff and rebalance aborts) without changing
// this enum — extending the enum would shift every existing crashpoint
// draw and silently re-seed the pinned server-crash golden.
const NumCrashpoints = int(numCrashpoints)

// String names the crashpoint for logs and experiment tables.
func (p Crashpoint) String() string {
	switch p {
	case CrashBeforeWALSync:
		return "before-wal-sync"
	case CrashAfterWALSync:
		return "after-wal-sync"
	case CrashAfterAck:
		return "after-ack"
	case CrashDuringCompaction:
		return "during-compaction"
	case CrashAfterSnapshotInstall:
		return "after-snapshot-install"
	default:
		return fmt.Sprintf("crashpoint(%d)", int(p))
	}
}

// CrashFaults calibrates server crash injection. The zero value never
// kills. A kill is scheduled every KillEveryMin..KillEveryMax recognised
// requests (uniform draw), at a uniformly drawn crashpoint.
type CrashFaults struct {
	KillEveryMin int
	KillEveryMax int
}

// Enabled reports whether crash injection is armed.
func (c CrashFaults) Enabled() bool { return c.KillEveryMin > 0 || c.KillEveryMax > 0 }

// SupervisorConfig calibrates a supervised, durable collection server.
type SupervisorConfig struct {
	// MaxStreamBytes / CompactEvery pass through to ServerConfig.
	MaxStreamBytes int
	CompactEvery   int
	// Crash schedules injected kills; requires Rng when enabled.
	Crash CrashFaults
	// Rng drives the kill schedule, the crashpoint draws and (via a Split
	// child) the store's torn-tail lengths. With Workers:1 the whole
	// crash/recover history is a pure function of this stream; with
	// parallel workers the request interleaving — and therefore which
	// request each kill lands on — is scheduling-dependent, and only the
	// invariants (no acknowledged loss, canonical recovery) are stable.
	Rng *sim.Rand
	// Store, when set, resumes an existing medium (a prior supervisor's
	// state); nil creates a fresh one.
	Store *CrashStore
	// OnRecord passes through to ServerConfig.OnRecord for every
	// incarnation, restarts included. See the delivery caveats there: with
	// crash injection a restarted server's acked ledger starts empty, so
	// re-sent records fire the tap again — consumers must be order- and
	// duplicate-tolerant.
	OnRecord func(deviceID string, r core.Record)
	// Query passes through to ServerConfig.Query for every incarnation,
	// restarts included, so the live query tier survives injected crashes
	// (the answers come from the OnRecord-fed accumulators, which outlive
	// any one server incarnation).
	Query func(name string, args []string) (string, error)
	// OnCrash, when set, runs after an injected kill has been harvested but
	// before the replacement server is constructed — the window in which a
	// real operator would fail the dead shard's data over to a peer. It runs
	// on the dying incarnation's goroutine with no supervisor locks held, so
	// it may read the store (RecoverState) and talk to other servers; it
	// must not call back into this supervisor's request path. Not invoked
	// when the supervisor is already disarmed (shutdown).
	OnCrash func()
	// Replicate passes through to ServerConfig.Replicate for every
	// incarnation: the write-time quorum hook a fleet shard uses to forward
	// committed state to its rendezvous successors before acknowledging.
	// See ServerConfig.Replicate for the calling contract.
	Replicate func(op, deviceID string, state []byte) bool
}

// Supervisor owns a durable collection server across injected crashes: it
// schedules kills from its RNG, lets the dying incarnation tear its store,
// then recovers the store (snapshot + WAL replay), rebinds the listener on
// the same address and carries the upload and acked-record accounting
// across incarnations. It is the process supervisor a real collection
// service would run under, with the restart loop made deterministic.
type Supervisor struct {
	ds    *Dataset
	addr  string
	store *CrashStore
	scfg  ServerConfig
	crash CrashFaults

	// cur is the live incarnation; armed holds 1+Crashpoint when a kill is
	// pending (0 means none). Both are lock-free so a handler holding its
	// server's mutex can consult them without ordering against mu.
	cur   atomic.Pointer[Server]
	armed atomic.Int32

	mu            sync.Mutex
	rng           *sim.Rand
	onCrash       func()
	disarmed      bool
	untilKill     int
	point         Crashpoint
	armedAge      int
	crashes       int
	restarts      int
	pointHits     [numCrashpoints]int
	uploadsBefore int
	compactBefore int
	handoffBefore int
	ackedBefore   map[string]map[string]bool
	lastErr       error
}

// NewSupervisor starts a supervised durable server on addr. The dataset is
// reset to whatever the store recovers (empty for a fresh store).
func NewSupervisor(addr string, ds *Dataset, cfg SupervisorConfig) (*Supervisor, error) {
	if cfg.Crash.Enabled() && cfg.Rng == nil {
		return nil, fmt.Errorf("collect: crash injection needs a sim.Rand")
	}
	sup := &Supervisor{
		ds:          ds,
		crash:       cfg.Crash,
		rng:         cfg.Rng,
		onCrash:     cfg.OnCrash,
		ackedBefore: make(map[string]map[string]bool),
	}
	sup.store = cfg.Store
	if sup.store == nil {
		var storeRng *sim.Rand
		if cfg.Rng != nil {
			// The torn-tail draws get their own stream so a crash's damage
			// does not perturb the kill schedule.
			storeRng = cfg.Rng.Split()
		}
		sup.store = NewCrashStore(storeRng)
	}
	sup.scfg = ServerConfig{
		MaxStreamBytes: cfg.MaxStreamBytes,
		CompactEvery:   cfg.CompactEvery,
		Store:          sup.store,
		OnRecord:       cfg.OnRecord,
		Query:          cfg.Query,
		Replicate:      cfg.Replicate,
		monitor:        sup,
	}
	srv, err := NewServerWith(addr, ds, sup.scfg)
	if err != nil {
		return nil, err
	}
	sup.addr = srv.Addr() // pin the resolved port: restarts rebind it
	sup.cur.Store(srv)
	if sup.crash.Enabled() {
		sup.mu.Lock()
		sup.drawKillLocked()
		sup.mu.Unlock()
	}
	return sup, nil
}

// Addr returns the pinned listen address (stable across restarts).
func (s *Supervisor) Addr() string { return s.addr }

// Server returns the live incarnation (nil only after a failed restart or
// Close during a crash).
func (s *Supervisor) Server() *Server { return s.cur.Load() }

// Store returns the durable medium shared by every incarnation.
func (s *Supervisor) Store() *CrashStore { return s.store }

// Err returns the first restart failure, if any.
func (s *Supervisor) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.lastErr
}

// Crashes returns how many injected kills fired; Restarts how many
// incarnations came back up (equal unless a restart failed or Close raced
// a crash).
func (s *Supervisor) Crashes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.crashes
}

// Restarts returns the number of successful restarts.
func (s *Supervisor) Restarts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.restarts
}

// Hits returns how many kills fired at the given crashpoint.
func (s *Supervisor) Hits(p Crashpoint) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p < 0 || p >= numCrashpoints {
		return 0
	}
	return s.pointHits[p]
}

// Disarm stops scheduling further kills (already-armed ones still fire).
func (s *Supervisor) Disarm() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.disarmed = true
}

// Settle cancels any armed-but-unfired kill and waits (bounded host time)
// for an in-flight crash-restart cycle to complete, reporting whether the
// supervisor reached quiescence. Callers must first stop new kills from
// arming (a fleet does so by taking the shard out of its kill draw) but
// must NOT Disarm before settling: serverDied skips the restart when it
// observes a disarmed supervisor, which is exactly the stranded-crash
// ledger imbalance settling exists to prevent. Settle before Close when
// retiring a shard whose crash/restart ledger must stay balanced.
func (s *Supervisor) Settle(timeout time.Duration) bool {
	//symlint:allow determinism host-time settle for a real TCP shard's restart; the simulation never observes it
	deadline := time.Now().Add(timeout)
	for {
		// Cancel a pending kill: the shard is being retired, so firing it
		// now would only manufacture a crash nobody needs to survive.
		s.armed.Store(0)
		if s.settledNow() {
			return true
		}
		//symlint:allow determinism host-time settle for a real TCP shard's restart; the simulation never observes it
		if time.Now().After(deadline) {
			return false
		}
		//symlint:allow determinism host-time settle for a real TCP shard's restart; the simulation never observes it
		time.Sleep(2 * time.Millisecond)
	}
}

// settledNow reports whether no kill is armed, no incarnation is mid-death,
// and every harvested crash has its restart. A nil current incarnation
// (failed restart or shutdown) counts as settled: nothing further will
// happen, and the caller's Err check owns that story.
func (s *Supervisor) settledNow() bool {
	if s.armed.Load() != 0 {
		return false
	}
	srv := s.cur.Load()
	if srv == nil {
		return true
	}
	dying := srv.isDead()
	s.mu.Lock()
	defer s.mu.Unlock()
	return !dying && s.crashes == s.restarts
}

// Close disarms the supervisor and shuts the live incarnation down.
func (s *Supervisor) Close() error {
	s.mu.Lock()
	s.disarmed = true
	s.mu.Unlock()
	if srv := s.cur.Load(); srv != nil {
		return srv.Close()
	}
	return nil
}

// Uploads returns the successful uploads served across every incarnation.
func (s *Supervisor) Uploads() int {
	srv := s.cur.Load()
	s.mu.Lock()
	n := s.uploadsBefore
	s.mu.Unlock()
	if srv != nil {
		n += srv.Uploads()
	}
	return n
}

// Compactions returns snapshot compactions run across every incarnation.
func (s *Supervisor) Compactions() int {
	srv := s.cur.Load()
	s.mu.Lock()
	n := s.compactBefore
	s.mu.Unlock()
	if srv != nil {
		n += srv.Compactions()
	}
	return n
}

// Handoffs returns the peer handoffs accepted across every incarnation.
func (s *Supervisor) Handoffs() int {
	srv := s.cur.Load()
	s.mu.Lock()
	n := s.handoffBefore
	s.mu.Unlock()
	if srv != nil {
		n += srv.Handoffs()
	}
	return n
}

// Stream returns a copy of a device's live chunk stream on the current
// incarnation, if any — the fleet supervisor reads it when rebalancing a
// device onto a newly joined shard.
func (s *Supervisor) Stream(id string) ([]byte, bool) {
	srv := s.cur.Load()
	if srv == nil {
		return nil, false
	}
	return srv.Stream(id)
}

// AckedKeys returns the serialized form of every record any incarnation
// ever acknowledged for a device, sorted — the exact wire-level ground
// truth for the no-acknowledged-data-loss invariant across crashes.
func (s *Supervisor) AckedKeys(id string) []string {
	srv := s.cur.Load()
	set := make(map[string]bool)
	s.mu.Lock()
	for k := range s.ackedBefore[id] {
		set[k] = true
	}
	s.mu.Unlock()
	if srv != nil {
		for _, k := range srv.AckedKeys(id) {
			set[k] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// AckedDevices returns every device any incarnation acknowledged records
// for, sorted.
func (s *Supervisor) AckedDevices() []string {
	srv := s.cur.Load()
	set := make(map[string]bool)
	s.mu.Lock()
	for id := range s.ackedBefore {
		set[id] = true
	}
	s.mu.Unlock()
	if srv != nil {
		for id := range srv.ackedSnapshot() {
			set[id] = true
		}
	}
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// repointWindow is how many further requests an armed kill may wait for
// its crashpoint before being repointed at the commit path: a kill drawn
// for a compaction crashpoint stalls forever if the WAL never reaches the
// compaction bound, and a stalled kill would silently disable injection —
// or, kept too long, quietly halve the effective kill rate.
const repointWindow = 16

// beginRequest is the server's per-request hook (called with no locks
// held). It advances the kill countdown and arms the crashpoint atomics
// when the countdown reaches zero.
func (s *Supervisor) beginRequest(srv *Server) {
	if s.cur.Load() != srv {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disarmed || !s.crash.Enabled() || s.rng == nil {
		return
	}
	if s.armed.Load() != 0 {
		// A kill is pending; if its crashpoint never comes up (compaction
		// that never triggers), deterministically repoint it at the next
		// WAL sync so injection cannot stall.
		s.armedAge++
		if s.armedAge > repointWindow && s.point != CrashBeforeWALSync {
			if s.armed.CompareAndSwap(1+int32(s.point), 1+int32(CrashBeforeWALSync)) {
				s.point = CrashBeforeWALSync
				s.armedAge = 0
			}
		}
		return
	}
	if s.untilKill <= 0 {
		return // consumed, waiting for serverDied to redraw
	}
	s.untilKill--
	if s.untilKill == 0 {
		s.armedAge = 0
		s.armed.Store(1 + int32(s.point))
	}
}

// atCrashpoint reports whether the armed kill fires here, consuming it.
// Lock-free: handlers call this while holding their server's mutex.
func (s *Supervisor) atCrashpoint(srv *Server, p Crashpoint) bool {
	if s.cur.Load() != srv {
		return false
	}
	return s.armed.CompareAndSwap(1+int32(p), 0)
}

// InjectKill arms a kill at the given crashpoint on the live incarnation,
// the fleet supervisor's entry point: fleet-level subset kills arrive here
// instead of through this supervisor's own (disabled) schedule. Returns
// false when a kill is already armed, the supervisor is disarmed, or no
// incarnation is live — the caller's draw is simply consumed.
func (s *Supervisor) InjectKill(p Crashpoint) bool {
	if p < 0 || p >= numCrashpoints {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.disarmed || s.cur.Load() == nil {
		return false
	}
	if !s.armed.CompareAndSwap(0, 1+int32(p)) {
		return false
	}
	s.point = p
	s.armedAge = 0
	return true
}

// KillArmed reports whether an injected kill is armed but not yet fired.
func (s *Supervisor) KillArmed() bool { return s.armed.Load() != 0 }

// RepointKill moves an armed-but-stalled kill to a different crashpoint —
// the fleet supervisor's analogue of the internal repointWindow logic: a
// kill armed for a crashpoint the shard never reaches (compaction on a
// quiet shard) would otherwise wait forever. Returns false when nothing is
// armed or the kill already points there.
func (s *Supervisor) RepointKill(p Crashpoint) bool {
	if p < 0 || p >= numCrashpoints {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.armed.Load()
	if cur == 0 || Crashpoint(cur-1) == p {
		return false
	}
	if !s.armed.CompareAndSwap(cur, 1+int32(p)) {
		return false
	}
	s.point = p
	s.armedAge = 0
	return true
}

// drawKillLocked schedules the next kill: a request countdown in
// [KillEveryMin, KillEveryMax] and a uniformly drawn crashpoint. Caller
// holds s.mu.
func (s *Supervisor) drawKillLocked() {
	lo, hi := s.crash.KillEveryMin, s.crash.KillEveryMax
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	s.untilKill = lo + s.rng.Intn(hi-lo+1)
	s.point = Crashpoint(s.rng.Intn(int(numCrashpoints)))
}

// serverDied is called by the dying incarnation (no locks held) after it
// marked itself dead, closed its listener and crashed the store. The
// supervisor harvests the incarnation's accounting, recovers the store by
// constructing a replacement on the pinned address, and rearms the kill
// schedule.
func (s *Supervisor) serverDied(old *Server) {
	deadUploads := old.Uploads()
	deadCompactions := old.Compactions()
	deadHandoffs := old.Handoffs()
	deadAcked := old.ackedSnapshot()

	s.mu.Lock()
	s.crashes++
	s.pointHits[s.point]++
	s.uploadsBefore += deadUploads
	s.compactBefore += deadCompactions
	s.handoffBefore += deadHandoffs
	for id, keys := range deadAcked {
		dst := s.ackedBefore[id]
		if dst == nil {
			dst = make(map[string]bool, len(keys))
			s.ackedBefore[id] = dst
		}
		for k := range keys {
			dst[k] = true
		}
	}
	disarmed := s.disarmed
	s.mu.Unlock()

	if disarmed {
		s.cur.Store(nil)
		return
	}

	if s.onCrash != nil {
		// Crash handoff window: the store holds the dead incarnation's
		// synced state and no replacement is listening yet.
		s.onCrash()
	}

	var next *Server
	var err error
	for attempt := 0; attempt < 10; attempt++ {
		next, err = NewServerWith(s.addr, s.ds, s.scfg)
		if err == nil {
			break
		}
	}

	s.mu.Lock()
	if err != nil {
		s.lastErr = fmt.Errorf("collect: supervisor restart: %w", err)
		s.cur.Store(nil)
		s.mu.Unlock()
		return
	}
	if s.disarmed {
		// Close raced the restart; do not leak the new incarnation.
		s.cur.Store(nil)
		s.mu.Unlock()
		_ = next.Close()
		return
	}
	s.restarts++
	s.cur.Store(next)
	if s.crash.Enabled() {
		// Fleet-injected kills (InjectKill) arrive on supervisors whose own
		// schedule — and RNG — is absent; only a self-scheduling supervisor
		// redraws here.
		s.drawKillLocked()
	}
	s.mu.Unlock()
}
