package sim

import (
	"math"
	"time"
)

// Rand is a small, fast, deterministic pseudo-random generator
// (xoshiro256** seeded via SplitMix64). It is the only source of randomness
// in the simulation; seeding it identically reproduces a run bit-for-bit.
//
// The zero value is not useful; construct with NewRand.
type Rand struct {
	s [4]uint64
}

// NewRand returns a generator seeded from seed via SplitMix64, so that
// nearby seeds still yield well-separated streams.
func NewRand(seed uint64) *Rand {
	r := &Rand{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	// xoshiro must not start from the all-zero state.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// State returns the generator's full internal state, for checkpointing.
// NewRandFromState(r.State()) continues the stream bit-for-bit.
func (r *Rand) State() [4]uint64 { return r.s }

// NewRandFromState reconstructs a generator from a State() value.
func NewRandFromState(s [4]uint64) *Rand {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		s[0] = 0x9e3779b97f4a7c15
	}
	return &Rand{s: s}
}

// Split derives an independent child generator. The child stream is a pure
// function of the parent state at the time of the call, so the order of
// Split calls is part of the deterministic contract.
func (r *Rand) Split() *Rand {
	return NewRand(r.Uint64() ^ 0xd1b54a32d192ed03)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *Rand) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Float64 returns a uniform value in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). n must be positive.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Bool returns true with probability p.
func (r *Rand) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// Exp returns an exponentially distributed value with the given mean.
func (r *Rand) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// ExpDuration returns an exponentially distributed duration with the given
// mean (a Poisson-process inter-arrival time).
func (r *Rand) ExpDuration(mean time.Duration) time.Duration {
	return time.Duration(r.Exp(float64(mean)))
}

// Norm returns a normally distributed value (Box–Muller).
func (r *Rand) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// NormDuration returns a normally distributed duration clamped at min.
func (r *Rand) NormDuration(mean, stddev, min time.Duration) time.Duration {
	d := time.Duration(r.Norm(float64(mean), float64(stddev)))
	if d < min {
		return min
	}
	return d
}

// LogNormal returns a log-normally distributed value parameterised by the
// median and a multiplicative spread sigma (the stddev of the underlying
// normal in log space).
func (r *Rand) LogNormal(median, sigma float64) float64 {
	return median * math.Exp(sigma*r.Norm(0, 1))
}

// LogNormalDuration returns a log-normally distributed duration with the
// given median and log-space sigma.
func (r *Rand) LogNormalDuration(median time.Duration, sigma float64) time.Duration {
	return time.Duration(r.LogNormal(float64(median), sigma))
}

// Geometric returns the number of Bernoulli(p) failures before the first
// success (support {0,1,2,...}); used for burst lengths.
func (r *Rand) Geometric(p float64) int {
	if p <= 0 {
		return 0
	}
	if p >= 1 {
		return 0
	}
	n := 0
	for !r.Bool(p) {
		n++
		if n > 1<<20 { // defensive bound; unreachable for sane p
			break
		}
	}
	return n
}

// Shuffle permutes the first n elements using swap (Fisher–Yates).
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// WeightedIndex returns an index in [0, len(weights)) chosen with probability
// proportional to weights[i]. All-zero or empty weights return -1.
func (r *Rand) WeightedIndex(weights []float64) int {
	var total float64
	for _, w := range weights {
		if w > 0 {
			total += w
		}
	}
	if total <= 0 {
		return -1
	}
	x := r.Float64() * total
	for i, w := range weights {
		if w <= 0 {
			continue
		}
		if x < w {
			return i
		}
		x -= w
	}
	// Floating-point slack: fall back to the last positive weight.
	for i := len(weights) - 1; i >= 0; i-- {
		if weights[i] > 0 {
			return i
		}
	}
	return -1
}
