package main

import (
	"bytes"
	"os"
	"strings"
	"testing"
)

func capture(t *testing.T, fn func() error) (string, error) {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	runErr := fn()
	_ = w.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	return buf.String(), runErr
}

func TestForumStudyRun(t *testing.T) {
	out, err := capture(t, func() error {
		return run([]string{"-seed", "3", "-reports", "200", "-noise", "100", "-samples", "2"})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 1", "classifier accuracy", "example report"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q", want)
		}
	}
	if strings.Count(out, "example report") != 2 {
		t.Errorf("sample count wrong:\n%s", out)
	}
}

func TestForumStudyBadFlag(t *testing.T) {
	if _, err := capture(t, func() error { return run([]string{"-nope"}) }); err == nil {
		t.Error("bad flag accepted")
	}
}
