package stream

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"symfail/internal/core"
	"symfail/internal/sim"
)

// This file holds the continuous-operation accumulators: time-windowed and
// exponentially-decaying views of the failure stream. Unlike the cursor-fed
// accumulators they fold raw records straight into integer per-sim-day
// buckets — no pending event graph, no coalescence — so their state is a
// pure set union: Merge only adds integers, Snapshot applies every cutoff
// and every floating-point weight in canonical (ascending-day, sorted-key)
// order, and both accumulators are naturally re-snapshottable without
// cloning. The price is cursor-free semantics: a freeze or self-shutdown is
// classified directly from its boot record, and uptime counts closed
// boot-to-down sessions only (the open tail of a live device is still
// moving, so it belongs to no bucket yet).

// simDay is the bucket width of the windowed accumulators.
const simDay = int64(24 * time.Hour)

// dayBuckets is the integer per-day fold shared by WindowAcc and DecayAcc.
type dayBuckets struct {
	session  map[string]sim.Time // device -> current session start (doubles as the device set)
	ids      map[string]panicID
	panics   map[int]map[string]int // day -> panic key -> count
	records  map[int]int
	freezes  map[int]int
	selfs    map[int]int
	users    map[int]int
	uptimeNs map[int]int64
	maxDay   int
	hasData  bool
}

func newDayBuckets() *dayBuckets {
	return &dayBuckets{
		session:  make(map[string]sim.Time),
		ids:      make(map[string]panicID),
		panics:   make(map[int]map[string]int),
		records:  make(map[int]int),
		freezes:  make(map[int]int),
		selfs:    make(map[int]int),
		users:    make(map[int]int),
		uptimeNs: make(map[int]int64),
	}
}

func (b *dayBuckets) see(day int) {
	if !b.hasData || day > b.maxDay {
		b.maxDay = day
	}
	b.hasData = true
}

func (b *dayBuckets) observe(cfg Config, id string, r core.Record) {
	if _, ok := b.session[id]; !ok {
		b.session[id] = sim.Never
	}
	t := sim.Time(r.Time)
	day := t.Day()
	b.see(day)
	b.records[day]++
	switch r.Kind {
	case core.KindPanic:
		m := b.panics[day]
		if m == nil {
			m = make(map[string]int)
			b.panics[day] = m
		}
		key := r.PanicKey()
		m[key]++
		b.ids[key] = panicID{r.Category, r.PType}
	case core.KindBoot:
		if start := b.session[id]; start != sim.Never && r.PrevTime > int64(start) {
			b.addUptime(int64(start), r.PrevTime)
		}
		b.session[id] = t
		down := sim.Time(r.PrevTime).Day()
		switch r.Detected {
		case core.DetectedFreeze:
			b.freezes[down]++
			b.see(down)
		case core.DetectedShutdown:
			if r.OffSeconds <= cfg.SelfShutdownThreshold.Seconds() {
				b.selfs[down]++
			} else {
				b.users[down]++
			}
			b.see(down)
		}
	}
}

// addUptime splits the closed session [lo, hi) across its day buckets as
// integer nanoseconds, so merged uptime stays exact.
func (b *dayBuckets) addUptime(lo, hi int64) {
	for lo < hi {
		d := lo / simDay
		end := (d + 1) * simDay
		if end > hi {
			end = hi
		}
		b.uptimeNs[int(d)] += end - lo
		lo = end
	}
}

// merge unions the other fold in; the device sets must be disjoint.
func (b *dayBuckets) merge(o *dayBuckets) error {
	var overlap []string
	for id := range o.session {
		if _, ok := b.session[id]; ok {
			overlap = append(overlap, id)
		}
	}
	if len(overlap) > 0 {
		sort.Strings(overlap)
		return fmt.Errorf("%w: %s", ErrDeviceOverlap, strings.Join(overlap, ", "))
	}
	for id, s := range o.session {
		b.session[id] = s
	}
	for k, id := range o.ids {
		b.ids[k] = id
	}
	for d, m := range o.panics {
		dst := b.panics[d]
		if dst == nil {
			dst = make(map[string]int, len(m))
			b.panics[d] = dst
		}
		for k, n := range m {
			dst[k] += n
		}
	}
	for d, n := range o.records {
		b.records[d] += n
	}
	for d, n := range o.freezes {
		b.freezes[d] += n
	}
	for d, n := range o.selfs {
		b.selfs[d] += n
	}
	for d, n := range o.users {
		b.users[d] += n
	}
	for d, ns := range o.uptimeNs {
		b.uptimeNs[d] += ns
	}
	if o.hasData {
		b.see(o.maxDay)
	}
	return nil
}

func (b *dayBuckets) devices() []string {
	if len(b.session) == 0 {
		return nil
	}
	ids := make([]string, 0, len(b.session))
	for id := range b.session {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// ---- WindowAcc: hard-cutoff view over the last N simulated days ----

// WindowSnapshot is the windowed view: every count covers the whole days
// [FromDay, ToDay], the last Config.Window of simulated time ending at the
// latest observed day. An empty accumulator snapshots to ToDay = -1.
type WindowSnapshot struct {
	Config        Config
	Devices       []string
	FromDay       int
	ToDay         int
	Records       int
	Panics        int
	Freezes       int
	SelfShutdowns int
	UserShutdowns int
	// UptimeHours counts closed boot-to-down sessions inside the window;
	// the open tail of a live device belongs to no bucket yet.
	UptimeHours   float64
	MTBF          MTBFReport
	PanicTable    []PanicRow
	FreezesPerDay float64
}

// WindowAcc folds records into per-day integer buckets and snapshots the
// last Config.Window of them: the freeze-rate-over-last-N-days view of the
// live query tier. Unlike the cursor-fed accumulators it tolerates records
// arriving out of order (the fold is order-insensitive), and Snapshot never
// needs to clone.
type WindowAcc struct {
	cfg    Config
	b      *dayBuckets
	sealed bool
	snap   *WindowSnapshot
}

// NewWindowAcc builds a windowed accumulator.
func NewWindowAcc(cfg Config) *WindowAcc {
	return &WindowAcc{cfg: cfg.WithDefaults(), b: newDayBuckets()}
}

// Observe folds one record in.
func (a *WindowAcc) Observe(deviceID string, r core.Record) {
	if a.sealed {
		panic("stream: WindowAcc.Observe after Seal")
	}
	a.b.observe(a.cfg, deviceID, r)
}

// Merge absorbs a device-disjoint partial accumulator.
func (a *WindowAcc) Merge(other Accumulator) error {
	o, ok := other.(*WindowAcc)
	if !ok {
		return typeErr("WindowAcc", other)
	}
	if a.sealed || o.sealed {
		return fmt.Errorf("%w: WindowAcc", ErrSealed)
	}
	if a.cfg != o.cfg {
		return fmt.Errorf("%w: WindowAcc", ErrConfigMismatch)
	}
	if err := a.b.merge(o.b); err != nil {
		return err
	}
	o.sealed = true
	return nil
}

// Snapshot returns the *WindowSnapshot over the configured window; live
// accumulators recompute it from the bucket state without sealing.
func (a *WindowAcc) Snapshot() any {
	if a.snap != nil {
		return a.snap
	}
	return a.Stats(0)
}

// Seal freezes the accumulator and caches the final snapshot.
func (a *WindowAcc) Seal() {
	if a.sealed && a.snap != nil {
		return
	}
	a.snap = a.Stats(0)
	a.sealed = true
}

// Stats renders the window over the last `days` whole simulated days
// (0 = the configured Config.Window), ending at the latest observed day —
// the live query tier uses it for freeze-rate-over-last-N-days requests.
func (a *WindowAcc) Stats(days int) *WindowSnapshot {
	if days <= 0 {
		days = int(a.cfg.Window / time.Duration(simDay))
		if days < 1 {
			days = 1
		}
	}
	snap := &WindowSnapshot{Config: a.cfg, Devices: a.b.devices(), ToDay: -1}
	if !a.b.hasData {
		return snap
	}
	snap.ToDay = a.b.maxDay
	snap.FromDay = a.b.maxDay - days + 1
	if snap.FromDay < 0 {
		snap.FromDay = 0
	}
	counts := make(map[string]int)
	var uptime int64
	for d := snap.FromDay; d <= snap.ToDay; d++ {
		snap.Records += a.b.records[d]
		snap.Freezes += a.b.freezes[d]
		snap.SelfShutdowns += a.b.selfs[d]
		snap.UserShutdowns += a.b.users[d]
		uptime += a.b.uptimeNs[d]
		for k, n := range a.b.panics[d] {
			counts[k] += n
			snap.Panics += n
		}
	}
	snap.UptimeHours = float64(uptime) / float64(time.Second) / 3600
	snap.MTBF = MTBFOf(snap.UptimeHours, snap.Freezes, snap.SelfShutdowns)
	if snap.Panics > 0 {
		snap.PanicTable = panicRowsFrom(counts, a.b.ids, snap.Panics)
	}
	snap.FreezesPerDay = float64(snap.Freezes) / float64(days)
	return snap
}

// ---- DecayAcc: exponentially-decaying view ----

// DecayRow is one row of the decaying panic leaderboard.
type DecayRow struct {
	Key     string
	Weight  float64
	Percent float64
	Meaning string
}

// DecaySnapshot is the exponentially-decaying view as of the latest
// observed day: a bucket d days old weighs 2^(-d/halfLifeDays).
type DecaySnapshot struct {
	Config        Config
	Devices       []string
	AsOfDay       int
	Panics        float64
	Freezes       float64
	SelfShutdowns float64
	UserShutdowns float64
	UptimeHours   float64
	MTBFHours     float64
	PanicTable    []DecayRow
}

// DecayAcc folds records into the same per-day integer buckets as
// WindowAcc but snapshots them under exponential half-life weights. The
// weights are applied only at Snapshot, in ascending-day order over the
// exact merged integer state, so the merge law holds byte-for-byte.
type DecayAcc struct {
	cfg    Config
	b      *dayBuckets
	sealed bool
	snap   *DecaySnapshot
}

// NewDecayAcc builds a decaying accumulator.
func NewDecayAcc(cfg Config) *DecayAcc {
	return &DecayAcc{cfg: cfg.WithDefaults(), b: newDayBuckets()}
}

// Observe folds one record in.
func (a *DecayAcc) Observe(deviceID string, r core.Record) {
	if a.sealed {
		panic("stream: DecayAcc.Observe after Seal")
	}
	a.b.observe(a.cfg, deviceID, r)
}

// Merge absorbs a device-disjoint partial accumulator.
func (a *DecayAcc) Merge(other Accumulator) error {
	o, ok := other.(*DecayAcc)
	if !ok {
		return typeErr("DecayAcc", other)
	}
	if a.sealed || o.sealed {
		return fmt.Errorf("%w: DecayAcc", ErrSealed)
	}
	if a.cfg != o.cfg {
		return fmt.Errorf("%w: DecayAcc", ErrConfigMismatch)
	}
	if err := a.b.merge(o.b); err != nil {
		return err
	}
	o.sealed = true
	return nil
}

// Snapshot returns the *DecaySnapshot; live accumulators recompute it from
// the bucket state without sealing.
func (a *DecayAcc) Snapshot() any {
	if a.snap != nil {
		return a.snap
	}
	return a.stats()
}

// Seal freezes the accumulator and caches the final snapshot.
func (a *DecayAcc) Seal() {
	if a.sealed && a.snap != nil {
		return
	}
	a.snap = a.stats()
	a.sealed = true
}

func (a *DecayAcc) stats() *DecaySnapshot {
	snap := &DecaySnapshot{Config: a.cfg, Devices: a.b.devices(), AsOfDay: -1}
	if !a.b.hasData {
		return snap
	}
	snap.AsOfDay = a.b.maxDay
	halfDays := a.cfg.DecayHalfLife.Hours() / 24
	weights := make(map[string]float64)
	var uptimeHours float64
	for d := 0; d <= a.b.maxDay; d++ {
		w := math.Exp2(-float64(a.b.maxDay-d) / halfDays)
		snap.Freezes += w * float64(a.b.freezes[d])
		snap.SelfShutdowns += w * float64(a.b.selfs[d])
		snap.UserShutdowns += w * float64(a.b.users[d])
		uptimeHours += w * (float64(a.b.uptimeNs[d]) / float64(time.Second) / 3600)
		if m := a.b.panics[d]; len(m) > 0 {
			keys := make([]string, 0, len(m))
			for k := range m {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				weights[k] += w * float64(m[k])
				snap.Panics += w * float64(m[k])
			}
		}
	}
	snap.UptimeHours = uptimeHours
	if f := snap.Freezes + snap.SelfShutdowns; f > 0 {
		snap.MTBFHours = uptimeHours / f
	}
	rows := make([]DecayRow, 0, len(weights))
	for k, w := range weights {
		row := DecayRow{Key: k, Weight: w, Meaning: meaningOf(a.b.ids[k])}
		if snap.Panics > 0 {
			row.Percent = 100 * w / snap.Panics
		}
		rows = append(rows, row)
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].Weight != rows[j].Weight {
			return rows[i].Weight > rows[j].Weight
		}
		return rows[i].Key < rows[j].Key
	})
	snap.PanicTable = rows
	return snap
}
