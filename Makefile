# symfail — reproduction of "How Do Mobile Phones Fail?" (DSN 2007).

GO ?= go

.PHONY: all build vet lint check chaos test test-short bench repro repro-quick montecarlo cover clean

all: build vet lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Static enforcement of the determinism and panic-taxonomy contracts
# (see DESIGN.md "Determinism contract & static enforcement").
lint:
	$(GO) run ./cmd/symlint ./...

# The CI gate: vet, contract lint, and race-enabled short tests.
check: vet lint
	$(GO) test -race -short ./...

# The chaos harness: the fleet under deterministic flash + network fault
# injection, under the race detector (see DESIGN.md §8).
chaos:
	$(GO) test -race -run 'Chaos' -v .

test:
	$(GO) test ./...

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# The whole paper: sections 4-6, every table and figure (~10 s).
repro:
	$(GO) run ./cmd/symfail -extras

repro-quick:
	$(GO) run ./cmd/symfail -quick

# Seed-noise quantification: replicate the study, report CIs per metric.
montecarlo:
	$(GO) run ./cmd/montecarlo -runs 20 -phones 10 -months 6

cover:
	$(GO) test -cover ./...

clean:
	$(GO) clean ./...
