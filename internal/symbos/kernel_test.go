package symbos

import (
	"strings"
	"testing"

	"symfail/internal/sim"
)

// newTestKernel returns a kernel with one ordinary app process. A keep-alive
// panic handler is installed so that tests can exercise several panics in a
// row without the default policy terminating the process between them; tests
// of the default policy itself construct their own kernel.
func newTestKernel(t *testing.T) (*Kernel, *Process) {
	t.Helper()
	eng := sim.NewEngine()
	k := NewKernel(eng)
	k.SetPanicHandler(func(*Panic, *Process) {})
	proc := k.StartProcess("TestApp", false)
	return k, proc
}

// expectPanic runs fn in proc's main thread and asserts it panics with the
// given category and type.
func expectPanic(t *testing.T, k *Kernel, proc *Process, cat Category, typ int, fn func()) *Panic {
	t.Helper()
	p := k.Exec(proc.Main(), "test", fn)
	if p == nil {
		t.Fatalf("expected panic %s %d, got none", cat, typ)
	}
	if p.Category != cat || p.Type != typ {
		t.Fatalf("got panic %s %d (%s), want %s %d", p.Category, p.Type, p.Reason, cat, typ)
	}
	return p
}

func TestExecCompletesWithoutPanic(t *testing.T) {
	k, proc := newTestKernel(t)
	ran := false
	if p := k.Exec(proc.Main(), "ok", func() { ran = true }); p != nil {
		t.Fatalf("unexpected panic: %v", p)
	}
	if !ran {
		t.Error("fn did not run")
	}
}

func TestExecRecordsPanicContext(t *testing.T) {
	k, proc := newTestKernel(t)
	p := expectPanic(t, k, proc, CatKernExec, TypeUnhandledException, func() {
		NullPtr(k).Deref()
	})
	if p.Process != "TestApp" {
		t.Errorf("Process = %q", p.Process)
	}
	if p.Thread != "TestApp::Main" {
		t.Errorf("Thread = %q", p.Thread)
	}
	if p.System {
		t.Error("app panic marked System")
	}
	if p.Time != k.Now() {
		t.Errorf("Time = %v, want %v", p.Time, k.Now())
	}
	if !strings.Contains(p.Error(), "KERN-EXEC 3") {
		t.Errorf("Error() = %q", p.Error())
	}
}

func TestDefaultPolicyTerminatesProcess(t *testing.T) {
	k := NewKernel(sim.NewEngine())
	proc := k.StartProcess("TestApp", false)
	expectPanic(t, k, proc, CatKernExec, TypeUnhandledException, func() {
		NullPtr(k).Deref()
	})
	if proc.Alive() {
		t.Error("process still alive after panic with default policy")
	}
	if k.PanicsRaised() != 1 {
		t.Errorf("PanicsRaised = %d", k.PanicsRaised())
	}
}

func TestPanicHandlerOverridesDefault(t *testing.T) {
	k, proc := newTestKernel(t)
	var seen *Panic
	k.SetPanicHandler(func(p *Panic, pr *Process) { seen = p })
	expectPanic(t, k, proc, CatKernExec, TypeUnhandledException, func() {
		NullPtr(k).Deref()
	})
	if seen == nil {
		t.Fatal("handler not called")
	}
	if !proc.Alive() {
		t.Error("handler installed, yet default termination still applied")
	}
}

func TestRDebugSubscribersSeeEveryPanic(t *testing.T) {
	k, proc := newTestKernel(t)
	var keys []string
	k.SubscribeRDebug(func(p *Panic) { keys = append(keys, p.Key()) })
	k.Exec(proc.Main(), "a", func() { NullPtr(k).Deref() })
	proc2 := k.StartProcess("Other", false)
	k.Exec(proc2.Main(), "b", func() { NewBuf(k, 1).Copy("toolong") })
	if len(keys) != 2 || keys[0] != "KERN-EXEC 3" || keys[1] != "USER 11" {
		t.Errorf("rdebug keys = %v", keys)
	}
}

func TestExecOnDeadProcessIsNoop(t *testing.T) {
	k, proc := newTestKernel(t)
	k.TerminateProcess(proc)
	ran := false
	if p := k.Exec(proc.Main(), "dead", func() { ran = true }); p != nil {
		t.Fatalf("panic from dead process: %v", p)
	}
	if ran {
		t.Error("code ran in dead process")
	}
}

func TestExecOnHaltedKernelIsNoop(t *testing.T) {
	k, proc := newTestKernel(t)
	k.Halt()
	if !k.Halted() {
		t.Fatal("Halted() false after Halt")
	}
	ran := false
	k.Exec(proc.Main(), "frozen", func() { ran = true })
	if ran {
		t.Error("code ran on halted kernel (freeze should stop everything)")
	}
}

func TestNestedExecRestoresContext(t *testing.T) {
	k, proc := newTestKernel(t)
	srvProc := k.StartProcess("Srv", true)
	var inner, outer *Panic
	outer = k.Exec(proc.Main(), "outer", func() {
		inner = k.Exec(srvProc.Main(), "inner", func() {
			NullPtr(k).Deref()
		})
		// After the inner boundary recovered, the outer context must be
		// restored: a panic here belongs to TestApp again.
		NewBuf(k, 0).Append("x")
	})
	if inner == nil || inner.Process != "Srv" || !inner.System {
		t.Fatalf("inner panic = %+v", inner)
	}
	if outer == nil || outer.Process != "TestApp" || outer.Key() != "USER 11" {
		t.Fatalf("outer panic = %+v", outer)
	}
}

func TestLeaveWithoutTrapBecomesNoTrapHandlerPanic(t *testing.T) {
	k, proc := newTestKernel(t)
	p := expectPanic(t, k, proc, CatE32UserCBase, TypeNoTrapHandler, func() {
		proc.Main().Leave(KErrNoMemory)
	})
	if !strings.Contains(p.Reason, "KErrNoMemory") {
		t.Errorf("Reason = %q", p.Reason)
	}
}

func TestGoBugsAreNotMasked(t *testing.T) {
	k, proc := newTestKernel(t)
	defer func() {
		if recover() == nil {
			t.Error("simulator bug was swallowed by Exec")
		}
	}()
	k.Exec(proc.Main(), "bug", func() {
		panic("plain Go panic, not a symbian one")
	})
}

func TestProcessesDeterministicOrder(t *testing.T) {
	eng := sim.NewEngine()
	k := NewKernel(eng)
	for _, n := range []string{"zeta", "alpha", "mid"} {
		k.StartProcess(n, false)
	}
	got := k.Processes()
	if len(got) != 3 || got[0].Name() != "alpha" || got[1].Name() != "mid" || got[2].Name() != "zeta" {
		names := make([]string, 0, len(got))
		for _, p := range got {
			names = append(names, p.Name())
		}
		t.Errorf("order = %v", names)
	}
	k.TerminateProcess(k.Process("mid"))
	if got := k.Processes(); len(got) != 2 {
		t.Errorf("live processes = %d, want 2", len(got))
	}
}

func TestDuplicateProcessNamePanics(t *testing.T) {
	eng := sim.NewEngine()
	k := NewKernel(eng)
	k.StartProcess("App", false)
	defer func() {
		if recover() == nil {
			t.Error("duplicate StartProcess did not panic")
		}
	}()
	k.StartProcess("App", false)
}

func TestMeaningLookups(t *testing.T) {
	if m := Meaning(CatKernExec, TypeUnhandledException); !strings.Contains(m, "access violation") {
		t.Errorf("KERN-EXEC 3 meaning = %q", m)
	}
	if m := Meaning(CatPhoneApp, TypePhoneAppInternal); m != "not documented" {
		t.Errorf("Phone.app 2 meaning = %q", m)
	}
	if m := Meaning(Category("NOPE"), 99); m != "not documented" {
		t.Errorf("unknown meaning = %q", m)
	}
}

func TestPanicKeyFormat(t *testing.T) {
	if got := PanicKey(CatViewSrv, TypeViewSrvStarved); got != "ViewSrv 11" {
		t.Errorf("PanicKey = %q", got)
	}
}

func TestExecNilThreadIsNoop(t *testing.T) {
	k, _ := newTestKernel(t)
	ran := false
	if p := k.Exec(nil, "nil", func() { ran = true }); p != nil || ran {
		t.Error("Exec(nil) should be a no-op")
	}
}

func TestRaiseOutsideExecUsesUnknownContext(t *testing.T) {
	k, _ := newTestKernel(t)
	defer func() {
		r := recover()
		p, ok := r.(*Panic)
		if !ok {
			t.Fatalf("recover = %v", r)
		}
		if p.Process != "?" || p.Thread != "?" {
			t.Errorf("context = %s/%s, want ?/?", p.Process, p.Thread)
		}
	}()
	k.Raise(CatUser, TypeDesOverflow, "outside any Exec")
}

func TestStartProcessReusesDeadName(t *testing.T) {
	k, _ := newTestKernel(t)
	a := k.StartProcess("Reborn", false)
	k.TerminateProcess(a)
	b := k.StartProcess("Reborn", false)
	if b == a || !b.Alive() {
		t.Error("dead process name not reusable")
	}
	if k.Process("Reborn") != b {
		t.Error("kernel map not updated")
	}
}

func TestTerminateProcessIdempotent(t *testing.T) {
	k, proc := newTestKernel(t)
	k.TerminateProcess(proc)
	k.TerminateProcess(proc) // second call is harmless
	k.TerminateProcess(nil)  // nil is harmless
	if proc.Alive() {
		t.Error("process alive after terminate")
	}
}

func TestPanicErrorStringMentionsEverything(t *testing.T) {
	p := &Panic{Category: CatViewSrv, Type: 11, Reason: "starved", Process: "App", Thread: "App::Main"}
	s := p.Error()
	for _, want := range []string{"ViewSrv", "11", "App", "starved"} {
		if !strings.Contains(s, want) {
			t.Errorf("Error() = %q missing %q", s, want)
		}
	}
}
