// Package panicfix is a symlint golden-test fixture for the panictaxonomy
// analyzer. It is a self-contained miniature of the real layout: a
// Kernel.Raise API plus a Panic literal on the raising side, and a
// KnownPanicKeys classification table standing in for internal/analysis.
package panicfix

// Category mirrors symbos.Category.
type Category string

const (
	CatKernExec Category = "KERN-EXEC"
	CatUser     Category = "USER"
	CatGhost    Category = "GHOST" // never classified: raising it must lint
)

const (
	TypeBadHandle   = 0
	TypeDesOverflow = 11
	TypeGhost       = 99
)

// Panic mirrors symbos.Panic.
type Panic struct {
	Category Category
	Type     int
	Reason   string
}

// Kernel mirrors the symbos kernel's Raise API.
type Kernel struct{}

func (k *Kernel) Raise(cat Category, typ int, reason string) {
	panic(&Panic{Category: cat, Type: typ, Reason: reason})
}

// KnownPanicKeys stands in for analysis.KnownPanicKeys. "USER 70" has no
// raise site below, so the reverse check must flag it as unreachable.
var KnownPanicKeys = map[string]bool{
	"KERN-EXEC 0": true,
	"USER 11":     true,
	"USER 70":     true, // want: no raise site
}

// Negative cases: classified raise sites.

func closeBadHandle(k *Kernel) {
	k.Raise(CatKernExec, TypeBadHandle, "object not found in index")
}

func overflow(k *Kernel) *Panic {
	return &Panic{Category: CatUser, Type: TypeDesOverflow, Reason: "descriptor exceeds max length"}
}

// Positive cases: panics the classification table has never heard of.

func ghostRaise(k *Kernel) {
	k.Raise(CatGhost, TypeGhost, "unclassified category") // want: missing from table
}

func ghostLiteral() *Panic {
	return &Panic{Category: CatKernExec, Type: 42, Reason: "unclassified type"} // want: missing from table
}

// Positive case: a dynamic pair defeats static classification entirely.

func dynamic(k *Kernel, cat Category, typ int) {
	k.Raise(cat, typ, "runtime-chosen panic") // want: non-constant
}
