package phone

import (
	"math"
	"testing"
	"time"

	"symfail/internal/sim"
	"symfail/internal/symbos"
)

// runSmallFleet simulates a reduced fleet (enough events for shape
// assertions, fast enough for unit tests).
func runSmallFleet(t *testing.T, seed uint64) *Fleet {
	t.Helper()
	cfg := FleetConfig{
		Seed:       seed,
		Phones:     8,
		Duration:   4 * StudyMonth,
		JoinWindow: StudyMonth,
	}
	fl := NewFleet(cfg)
	if err := fl.Run(); err != nil {
		t.Fatal(err)
	}
	return fl
}

func TestFleetDeterminism(t *testing.T) {
	a := runSmallFleet(t, 99)
	b := runSmallFleet(t, 99)
	if a.ObservedHours() != b.ObservedHours() {
		t.Errorf("observed hours diverged: %v vs %v", a.ObservedHours(), b.ObservedHours())
	}
	if a.TruthFailures() != b.TruthFailures() {
		t.Errorf("failures diverged: %d vs %d", a.TruthFailures(), b.TruthFailures())
	}
	for i := range a.Devices {
		pa, pb := a.Devices[i].Oracle().PanicCount(), b.Devices[i].Oracle().PanicCount()
		if pa != pb {
			t.Errorf("device %d panic counts diverged: %d vs %d", i, pa, pb)
		}
	}
}

func TestFleetSeedsDiffer(t *testing.T) {
	a := runSmallFleet(t, 1)
	b := runSmallFleet(t, 2)
	if a.TruthFailures() == b.TruthFailures() && a.ObservedHours() == b.ObservedHours() {
		t.Error("different seeds produced identical fleets (suspicious)")
	}
}

func TestFleetFailureRatesInPaperBallpark(t *testing.T) {
	fl := runSmallFleet(t, 7)
	hours := fl.ObservedHours()
	if hours < 1000 {
		t.Fatalf("observed hours = %v, fleet barely ran", hours)
	}
	var freezes, shutdowns int
	for _, d := range fl.Devices {
		freezes += d.Oracle().Count(TruthFreeze)
		shutdowns += d.Oracle().Count(TruthSelfShutdown)
	}
	if freezes == 0 || shutdowns == 0 {
		t.Fatalf("no failures at all (freezes=%d shutdowns=%d)", freezes, shutdowns)
	}
	mtbfr := hours / float64(freezes)
	mtbs := hours / float64(shutdowns)
	// The paper reports MTBFr = 313 h and MTBS = 250 h. A small fleet is
	// noisy; assert the right order of magnitude and the right ordering
	// (self-shutdowns more frequent than freezes).
	if mtbfr < 150 || mtbfr > 650 {
		t.Errorf("MTBFr = %.0f h, want within [150, 650] (paper: 313)", mtbfr)
	}
	if mtbs < 120 || mtbs > 520 {
		t.Errorf("MTBS = %.0f h, want within [120, 520] (paper: 250)", mtbs)
	}
	if mtbs >= mtbfr {
		t.Errorf("MTBS (%.0f) should be below MTBFr (%.0f): self-shutdowns are more frequent", mtbs, mtbfr)
	}
}

func TestFleetPanicMixShape(t *testing.T) {
	fl := runSmallFleet(t, 11)
	counts := make(map[string]int)
	total := 0
	for _, d := range fl.Devices {
		for _, p := range d.Oracle().Panics {
			counts[p.Panic.Key()]++
			total++
		}
	}
	if total < 20 {
		t.Fatalf("only %d panics; too few to check the mix", total)
	}
	ke3 := float64(counts["KERN-EXEC 3"]) / float64(total)
	if ke3 < 0.35 || ke3 > 0.75 {
		t.Errorf("KERN-EXEC 3 share = %.2f, want dominant (~0.56)", ke3)
	}
	// KERN-EXEC 3 must dominate every other category, as in Table 2.
	for k, c := range counts {
		if k != "KERN-EXEC 3" && c > counts["KERN-EXEC 3"] {
			t.Errorf("%s (%d) out-counts KERN-EXEC 3 (%d)", k, c, counts["KERN-EXEC 3"])
		}
	}
	// Heap-management panics (E32USER-CBase) should be the second large
	// block, ~18% in the paper.
	var cbase int
	for k, c := range counts {
		if len(k) > 13 && k[:13] == "E32USER-CBase" {
			cbase += c
		}
	}
	share := float64(cbase) / float64(total)
	if share < 0.06 || share > 0.40 {
		t.Errorf("E32USER-CBase share = %.2f, want ~0.18", share)
	}
}

func TestFleetActivityContextConstraints(t *testing.T) {
	fl := runSmallFleet(t, 13)
	for _, d := range fl.Devices {
		for _, p := range d.Oracle().Panics {
			key := p.Panic.Key()
			switch key {
			case "USER 10", "USER 11", "ViewSrv 11":
				if !p.Burst && p.Activity != ActVoiceCall {
					t.Errorf("%s outside a voice call (activity %s)", key, p.Activity)
				}
			case "Phone.app 2":
				if !p.Burst && p.Activity != ActMessage {
					t.Errorf("%s outside messaging (activity %s)", key, p.Activity)
				}
			}
		}
	}
}

func TestFleetBurstsExist(t *testing.T) {
	fl := runSmallFleet(t, 17)
	var bursts, total int
	for _, d := range fl.Devices {
		for _, p := range d.Oracle().Panics {
			total++
			if p.Burst {
				bursts++
			}
		}
	}
	if total == 0 {
		t.Fatal("no panics")
	}
	share := float64(bursts) / float64(total)
	// Followers alone should be a visible minority (paper: ~25% of panics
	// sit in cascades of two or more, so followers are ~15%).
	if share <= 0.01 || share >= 0.5 {
		t.Errorf("burst-follower share = %.3f, want a visible minority", share)
	}
}

func TestFleetRebootDurationBimodality(t *testing.T) {
	fl := runSmallFleet(t, 19)
	var selfOff, nightOff []float64
	for _, d := range fl.Devices {
		events := d.Oracle().Events
		for i, e := range events {
			var next *TruthEvent
			for j := i + 1; j < len(events); j++ {
				if events[j].Kind == TruthBoot {
					next = &events[j]
					break
				}
			}
			if next == nil {
				continue
			}
			off := next.Time.Sub(e.Time).Seconds()
			switch {
			case e.Kind == TruthSelfShutdown:
				selfOff = append(selfOff, off)
			case e.Kind == TruthUserShutdown && e.Cause == "night":
				nightOff = append(nightOff, off)
			}
		}
	}
	if len(selfOff) < 10 || len(nightOff) < 5 {
		t.Fatalf("too few events: self=%d night=%d", len(selfOff), len(nightOff))
	}
	medianSelf := median(selfOff)
	medianNight := median(nightOff)
	if medianSelf < 30 || medianSelf > 250 {
		t.Errorf("self-shutdown off median = %.0f s, want ~80 s", medianSelf)
	}
	if math.Abs(medianNight-30000) > 9000 {
		t.Errorf("night off median = %.0f s, want ~30000 s", medianNight)
	}
	// The 360 s threshold should separate the populations almost cleanly.
	var selfAbove, nightBelow int
	for _, v := range selfOff {
		if v > 360 {
			selfAbove++
		}
	}
	for _, v := range nightOff {
		if v < 360 {
			nightBelow++
		}
	}
	if frac := float64(selfAbove) / float64(len(selfOff)); frac > 0.05 {
		t.Errorf("%.1f%% of self-shutdown offs exceed 360 s", 100*frac)
	}
	if nightBelow > 0 {
		t.Errorf("%d night offs below 360 s", nightBelow)
	}
}

func TestFleetRunningAppsModeIsSmall(t *testing.T) {
	fl := runSmallFleet(t, 23)
	counts := make(map[int]int)
	for _, d := range fl.Devices {
		for _, p := range d.Oracle().Panics {
			counts[len(p.Apps)]++
		}
	}
	mode, best := -1, 0
	for n, c := range counts {
		if c > best {
			mode, best = n, c
		}
	}
	if mode > 2 {
		t.Errorf("mode of running-apps-at-panic = %d, paper observes mostly one", mode)
	}
}

func TestFleetUptimeAccounting(t *testing.T) {
	fl := runSmallFleet(t, 29)
	for _, d := range fl.Devices {
		obs := d.Oracle().ObservedHours
		window := StudyDuration.Hours() // upper bound
		if obs <= 0 || obs > window {
			t.Errorf("%s observed %v h, outside (0, %v]", d.ID(), obs, window)
		}
		// Phones are mostly on: observed time should be a large share of
		// the enrolment window.
		enrolled := 4*StudyMonth.Hours() - d.EnrolledAt().Hours()
		if obs < 0.5*enrolled {
			t.Errorf("%s observed %.0f h of %.0f enrolled, suspiciously low", d.ID(), obs, enrolled)
		}
	}
}

func TestActivityRiskConcentratesPanics(t *testing.T) {
	fl := runSmallFleet(t, 31)
	var during, total int
	for _, d := range fl.Devices {
		for _, p := range d.Oracle().Panics {
			total++
			if p.Activity == ActVoiceCall || p.Activity == ActMessage {
				during++
			}
		}
	}
	if total < 20 {
		t.Fatalf("too few panics: %d", total)
	}
	share := float64(during) / float64(total)
	// Paper: ~45% of panics during calls/messages, despite those being a
	// tiny share of wall-clock time.
	if share < 0.20 || share > 0.75 {
		t.Errorf("call/message panic share = %.2f, want ~0.45", share)
	}
}

func TestHiddenShellNeverInOracleApps(t *testing.T) {
	fl := runSmallFleet(t, 37)
	for _, d := range fl.Devices {
		for _, p := range d.Oracle().Panics {
			for _, a := range p.Apps {
				if a == "Shell" {
					t.Fatal("shell leaked into the running-apps snapshot")
				}
			}
		}
	}
}

func median(xs []float64) float64 {
	s := append([]float64(nil), xs...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	return s[len(s)/2]
}

var _ = time.Second
var _ = symbos.KErrNone

func TestApplyPersonaScalesRates(t *testing.T) {
	base := DefaultConfig(1)
	for _, p := range []Persona{PersonaCaller, PersonaTexter, PersonaLight, PersonaPower} {
		cfg := DefaultConfig(1)
		ApplyPersona(&cfg, p)
		if cfg.Persona != p {
			t.Errorf("persona not recorded: %q", cfg.Persona)
		}
		if cfg.ActivitiesPerDay == base.ActivitiesPerDay {
			t.Errorf("%s did not change activity rate", p)
		}
		if cfg.NightOffProb > 1 || cfg.LingerProb > 1 {
			t.Errorf("%s pushed a probability beyond 1: %+v", p, cfg)
		}
	}
	cfg := DefaultConfig(1)
	ApplyPersona(&cfg, Persona("unknown"))
	if cfg.Persona != PersonaBalanced {
		t.Errorf("unknown persona mapped to %q", cfg.Persona)
	}
	if cfg.ActivitiesPerDay != base.ActivitiesPerDay {
		t.Error("balanced persona changed rates")
	}
}

func TestFleetDrawsMixedPersonas(t *testing.T) {
	fl := NewFleet(FleetConfig{Seed: 5, Phones: 40, Duration: time.Hour, JoinWindow: 0})
	personas := make(map[Persona]int)
	for _, d := range fl.Devices {
		personas[d.Config().Persona]++
	}
	if len(personas) < 3 {
		t.Errorf("only %d personas drawn across 40 phones: %v", len(personas), personas)
	}
	uniform := NewFleet(FleetConfig{Seed: 5, Phones: 10, Duration: time.Hour, JoinWindow: 0, UniformPersonas: true})
	for _, d := range uniform.Devices {
		if p := d.Config().Persona; p != "" && p != PersonaBalanced {
			t.Errorf("uniform fleet drew persona %q", p)
		}
	}
}

func TestPersonasIncreaseDispersion(t *testing.T) {
	run := func(uniform bool) float64 {
		fl := NewFleet(FleetConfig{
			Seed: 9, Phones: 16, Duration: 5 * StudyMonth, JoinWindow: 0,
			UniformPersonas: uniform,
		})
		if err := fl.Run(); err != nil {
			t.Fatal(err)
		}
		// Coefficient of variation of per-device failure rates.
		var rates []float64
		for _, d := range fl.Devices {
			if d.Oracle().ObservedHours > 0 {
				rates = append(rates, float64(d.Oracle().Failures())/d.Oracle().ObservedHours)
			}
		}
		var sum float64
		for _, r := range rates {
			sum += r
		}
		mean := sum / float64(len(rates))
		var ss float64
		for _, r := range rates {
			ss += (r - mean) * (r - mean)
		}
		return math.Sqrt(ss/float64(len(rates))) / mean
	}
	mixed := run(false)
	uniform := run(true)
	if mixed <= uniform*0.9 {
		t.Errorf("persona mix did not increase dispersion: mixed CV %.3f vs uniform %.3f", mixed, uniform)
	}
}

// TestFleetShardIsolation enforces the shard ownership contract at
// runtime: no two devices may share an engine or an RNG stream, every
// device must be driven by its own fleet engine, and the faulty flash's
// RNG must be a Split() child rather than an alias of the device stream.
// symlint's engineshare/rngshare analyzers prove the same statically for
// goroutine hand-offs; this test covers construction.
func TestFleetShardIsolation(t *testing.T) {
	fl := NewFleet(FleetConfig{
		Seed:       31,
		Phones:     12,
		Duration:   StudyMonth,
		JoinWindow: StudyMonth / 2,
		Flash:      FlashFaults{TornWriteProb: 0.5},
	})
	if len(fl.Engines) != len(fl.Devices) {
		t.Fatalf("%d engines for %d devices, want one engine per device shard", len(fl.Engines), len(fl.Devices))
	}
	engines := make(map[*sim.Engine]int)
	rngs := make(map[*sim.Rand]int)
	for i, d := range fl.Devices {
		if d.Engine() != fl.Engines[i] {
			t.Errorf("device %d is not driven by its shard engine", i)
		}
		if prev, dup := engines[d.Engine()]; dup {
			t.Errorf("devices %d and %d share an engine", prev, i)
		}
		engines[d.Engine()] = i
		if prev, dup := rngs[d.rng]; dup {
			t.Errorf("devices %d and %d share an RNG stream", prev, i)
		}
		rngs[d.rng] = i
		if d.fs.rng == d.rng {
			t.Errorf("device %d: flash fault RNG aliases the device stream instead of a Split() child", i)
		}
	}
}

// TestFleetWorkersByteIdentical is the package-level serial-equivalence
// check (the full-study version lives in the root package): every worker
// count must produce identical per-device ground truth.
func TestFleetWorkersByteIdentical(t *testing.T) {
	base := runSmallFleetWorkers(t, 77, 1)
	for _, workers := range []int{0, 2, 4, 8} {
		fl := runSmallFleetWorkers(t, 77, workers)
		if got, want := fl.ObservedHours(), base.ObservedHours(); got != want {
			t.Errorf("workers=%d: observed hours %v, want %v", workers, got, want)
		}
		for i := range base.Devices {
			ga, gb := fl.Devices[i].Oracle(), base.Devices[i].Oracle()
			if ga.PanicCount() != gb.PanicCount() || ga.Failures() != gb.Failures() || ga.ObservedHours != gb.ObservedHours {
				t.Errorf("workers=%d: device %d ground truth diverged from serial", workers, i)
			}
		}
	}
}

func runSmallFleetWorkers(t *testing.T, seed uint64, workers int) *Fleet {
	t.Helper()
	fl := NewFleet(FleetConfig{
		Seed:       seed,
		Phones:     8,
		Duration:   2 * StudyMonth,
		JoinWindow: StudyMonth / 2,
		Workers:    workers,
	})
	if err := fl.Run(); err != nil {
		t.Fatal(err)
	}
	return fl
}
