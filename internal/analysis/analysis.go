// Package analysis implements the paper's failure-data analysis pipeline on
// collected logger datasets: self-shutdown identification by
// reboot-duration thresholding (Figure 2), MTBF estimation (section 6),
// panic classification (Table 2), panic-burst detection (Figure 3),
// panic/high-level-event coalescence (Figures 4 and 5), panic-activity
// correlation (Table 3), and running-application correlation (Figure 6 and
// Table 4).
//
// The pipeline consumes only what the logger recorded — the same position
// the paper's authors were in. The simulator's oracle is used exclusively
// by tests to validate the pipeline.
//
// Since the streaming refactor (DESIGN.md §11) the package is a façade over
// internal/analysis/stream: Study is built by feeding records through a
// stream.Collect accumulator (the same per-device cursors the online path
// uses), and every table method delegates to the stream package's reducers,
// so the batch and streaming paths share one implementation and produce
// byte-identical results.
package analysis

import (
	"sort"
	"time"

	"symfail/internal/analysis/stream"
	"symfail/internal/core"
	"symfail/internal/sim"
)

// Options tunes the analysis thresholds, defaulting to the paper's choices.
// It is an alias of stream.Config: batch and streaming runs share one
// threshold type.
type Options = stream.Config

// DefaultOptions returns the paper's thresholds.
func DefaultOptions() Options { return stream.DefaultConfig() }

// HLKind classifies high-level (user-perceived) failure events.
type HLKind = stream.HLKind

// High-level event kinds. UserShutdown is not a failure; it is kept so the
// "include all shutdown events" robustness check of section 6 can run.
const (
	HLFreeze       = stream.HLFreeze
	HLSelfShutdown = stream.HLSelfShutdown
	HLUserShutdown = stream.HLUserShutdown
)

// HLEvent is one reconstructed high-level event.
type HLEvent = stream.HLEvent

// PanicEvent is one panic record enriched by the pipeline.
type PanicEvent = stream.PanicEvent

// MTBFReport is the section 6 headline: mean time between freezes, between
// self-shutdowns, and between failures of either kind.
type MTBFReport = stream.MTBFReport

// Study is a parsed, per-device-ordered dataset with derived events.
type Study struct {
	opts Options

	deviceIDs []string
	// Per-device, time-ordered.
	hlByDevice     map[string][]*HLEvent
	panicsByDevice map[string][]*PanicEvent
	// Reboot durations of every orderly shutdown (Figure 2's data set).
	rebootDurations []float64
	// lowBattery / loggerOff boots, excluded from the failure data.
	explainedShutdowns int
	// Uptime estimate per device, in hours.
	uptime map[string]float64
}

// New builds a study from collected per-device records, computing derived
// events, bursts and coalescence once — by streaming each device's records
// (time-ordered) through the same cursor pipeline the online path uses.
func New(dataset map[string][]core.Record, opts Options) *Study {
	c := stream.NewCollect(opts)
	ids := make([]string, 0, len(dataset))
	for id := range dataset {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		c.AddDevice(id)
		ordered := append([]core.Record(nil), dataset[id]...)
		sort.SliceStable(ordered, func(i, j int) bool { return ordered[i].Time < ordered[j].Time })
		for _, r := range ordered {
			c.Observe(id, r)
		}
	}
	return FromCollect(c)
}

// FromCollect adopts a stream.Collect accumulator's finalized events as a
// Study, finishing the accumulator first. The events transfer ownership:
// the sealed accumulator never touches them again.
func FromCollect(c *stream.Collect) *Study {
	c.Finish()
	s := &Study{
		opts:           c.Config(),
		hlByDevice:     make(map[string][]*HLEvent),
		panicsByDevice: make(map[string][]*PanicEvent),
		uptime:         make(map[string]float64),
	}
	for _, id := range c.Devices() {
		s.deviceIDs = append(s.deviceIDs, id)
		if evs := c.PanicsOf(id); len(evs) > 0 {
			s.panicsByDevice[id] = evs
		}
		if hls := c.HLEventsOf(id); len(hls) > 0 {
			s.hlByDevice[id] = hls
		}
		s.uptime[id] = c.UptimeOf(id)
		s.rebootDurations = append(s.rebootDurations, c.RebootDurationsOf(id)...)
	}
	s.explainedShutdowns = c.ExplainedShutdowns()
	return s
}

// Devices returns the device IDs in the study.
func (s *Study) Devices() []string { return append([]string(nil), s.deviceIDs...) }

// Options returns the thresholds in use.
func (s *Study) Options() Options { return s.opts }

// allPanics returns the internal panic events (shared pointers), ordered by
// device then time. Internal use only: mutating them would corrupt the
// study's coalescence state.
func (s *Study) allPanics() []*PanicEvent {
	var out []*PanicEvent
	for _, id := range s.deviceIDs {
		out = append(out, s.panicsByDevice[id]...)
	}
	return out
}

// allHLs returns the internal high-level events of the given kinds (all
// kinds when none specified), ordered by device then time. Shared pointers;
// internal use only.
func (s *Study) allHLs(kinds ...HLKind) []*HLEvent {
	want := make(map[HLKind]bool, len(kinds))
	for _, k := range kinds {
		want[k] = true
	}
	var out []*HLEvent
	for _, id := range s.deviceIDs {
		for _, hl := range s.hlByDevice[id] {
			if len(kinds) == 0 || want[hl.Kind] {
				out = append(out, hl)
			}
		}
	}
	return out
}

// hlCopies deep-copies every high-level event, returning the copy map so
// panic copies can re-point their Related fields consistently.
func (s *Study) hlCopies() map[*HLEvent]*HLEvent {
	copies := make(map[*HLEvent]*HLEvent)
	for _, id := range s.deviceIDs {
		for _, hl := range s.hlByDevice[id] {
			cp := *hl
			copies[hl] = &cp
		}
	}
	return copies
}

// Panics returns every panic event, ordered by device then time.
//
// The events are deep copies: the study's internal coalescence state cannot
// be mutated through them, and pointer identity is not preserved across
// calls (a panic's Related points at a copy consistent within this call's
// result, not at an event returned by HLEvents).
func (s *Study) Panics() []*PanicEvent {
	copies := s.hlCopies()
	var out []*PanicEvent
	for _, id := range s.deviceIDs {
		for _, p := range s.panicsByDevice[id] {
			cp := *p
			cp.Apps = append([]string(nil), p.Apps...)
			if p.Related != nil {
				cp.Related = copies[p.Related]
			}
			out = append(out, &cp)
		}
	}
	return out
}

// HLEvents returns every high-level event of the given kinds (all kinds
// when none specified), ordered by device then time.
//
// The events are deep copies; see Panics.
func (s *Study) HLEvents(kinds ...HLKind) []*HLEvent {
	var out []*HLEvent
	for _, hl := range s.allHLs(kinds...) {
		cp := *hl
		out = append(out, &cp)
	}
	return out
}

// RebootDurations returns the reboot duration (seconds) of every orderly
// shutdown event — the data behind Figure 2.
func (s *Study) RebootDurations() []float64 {
	return append([]float64(nil), s.rebootDurations...)
}

// RebootHistogram bins the reboot durations (Figure 2); lo/hi in seconds.
func (s *Study) RebootHistogram(lo, hi float64, bins int) *sim.Histogram {
	h := sim.NewHistogram(lo, hi, bins)
	for _, v := range s.rebootDurations {
		h.Add(v)
	}
	return h
}

// ExplainedShutdowns returns the count of low-battery and logger-off boots.
func (s *Study) ExplainedShutdowns() int { return s.explainedShutdowns }

// UptimeHours returns the estimated powered-on hours, per device and total.
func (s *Study) UptimeHours() (perDevice map[string]float64, total float64) {
	perDevice = make(map[string]float64, len(s.uptime))
	// Sum in sorted device order so the floating-point total is
	// deterministic across runs.
	for _, id := range s.deviceIDs {
		h := s.uptime[id]
		perDevice[id] = h
		total += h
	}
	return perDevice, total
}

// MTBF computes the study's failure-rate headline.
func (s *Study) MTBF() MTBFReport {
	_, hours := s.UptimeHours()
	return stream.MTBFOf(hours, len(s.allHLs(HLFreeze)), len(s.allHLs(HLSelfShutdown)))
}

// coalesceAll re-runs coalescence over every device at the given window.
func (s *Study) coalesceAll(window time.Duration, includeUser bool) {
	for _, id := range s.deviceIDs {
		stream.CoalesceAt(s.panicsByDevice[id], s.hlByDevice[id], window, includeUser)
	}
}
