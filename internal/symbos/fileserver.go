package symbos

import (
	"strconv"
	"strings"
)

// The file server (F32). On Symbian every file operation is a
// client/server request to the file server process; the paper's logger
// persists its heartbeat and Log File through it. Modelling it as a real
// server matters for fidelity: file I/O exercises the IPC machinery, and a
// file-server panic is a critical-server failure (the phone reboots).

// File server operation codes.
const (
	FsOpWrite = iota + 100
	FsOpAppend
	FsOpRead
	FsOpDelete
	FsOpExists
	FsOpSize
)

// Store is the backing medium the file server manages (the phone package's
// flash filesystem implements it). Write and Append report false when the
// medium rejects the operation — a full flash — which the file server
// surfaces as KErrDiskFull.
type Store interface {
	Write(path string, data []byte) bool
	Append(path string, data []byte) bool
	Read(path string) ([]byte, bool)
	Delete(path string)
	Exists(path string) bool
}

// FileServer is the F32 file server process.
type FileServer struct {
	srv   *Server
	store Store
}

// NewFileServer starts the file server as a critical system server over the
// given store.
func NewFileServer(k *Kernel, store Store) *FileServer {
	f := &FileServer{store: store}
	f.srv = NewServer(k, "F32Srv", true, f.handle)
	return f
}

// Server returns the underlying server (for process-level access).
func (f *FileServer) Server() *Server { return f.srv }

// handle serves one file request. The payload is "<path>\x00<data>" for
// writes and "<path>" for the rest; responses carry file contents.
func (f *FileServer) handle(m *Message) {
	switch m.Op {
	case FsOpWrite, FsOpAppend:
		path, data, ok := splitPathPayload(m.Payload)
		if !ok || path == "" {
			m.Complete(KErrArgument)
			return
		}
		var stored bool
		if m.Op == FsOpWrite {
			stored = f.store.Write(path, []byte(data))
		} else {
			stored = f.store.Append(path, []byte(data))
		}
		if !stored {
			m.Complete(KErrDiskFull)
			return
		}
		m.Complete(KErrNone)
	case FsOpRead:
		data, ok := f.store.Read(m.Payload)
		if !ok {
			m.Complete(KErrNotFound)
			return
		}
		m.Respond(string(data))
		m.Complete(KErrNone)
	case FsOpDelete:
		f.store.Delete(m.Payload)
		m.Complete(KErrNone)
	case FsOpExists:
		if f.store.Exists(m.Payload) {
			m.Complete(KErrNone)
		} else {
			m.Complete(KErrNotFound)
		}
	case FsOpSize:
		if !f.store.Exists(m.Payload) {
			m.Complete(KErrNotFound)
			return
		}
		if sz, ok := f.store.(interface{ Size(path string) int }); ok {
			m.Respond(strconv.Itoa(sz.Size(m.Payload)))
		} else {
			data, _ := f.store.Read(m.Payload)
			m.Respond(strconv.Itoa(len(data)))
		}
		m.Complete(KErrNone)
	default:
		m.Complete(KErrNotSupported)
	}
}

func splitPathPayload(payload string) (path, data string, ok bool) {
	i := strings.IndexByte(payload, 0)
	if i < 0 {
		return "", "", false
	}
	return payload[:i], payload[i+1:], true
}

// FileSession is a client connection to the file server (RFs).
type FileSession struct {
	sess *Session
}

// Connect opens a file-server session from the client thread
// (RFs::Connect).
func (f *FileServer) Connect(t *Thread) *FileSession {
	return &FileSession{sess: f.srv.Connect(t)}
}

// WriteFile replaces path's contents.
func (s *FileSession) WriteFile(path string, data []byte) int {
	return s.sess.SendReceive(FsOpWrite, path+"\x00"+string(data))
}

// AppendFile adds data to the end of path.
func (s *FileSession) AppendFile(path string, data []byte) int {
	return s.sess.SendReceive(FsOpAppend, path+"\x00"+string(data))
}

// ReadFile returns path's contents (KErrNotFound when absent).
func (s *FileSession) ReadFile(path string) ([]byte, int) {
	resp, code := s.sess.Query(FsOpRead, path)
	if code != KErrNone {
		return nil, code
	}
	return []byte(resp), KErrNone
}

// SizeFile returns path's length in bytes without transferring its
// contents (KErrNotFound when absent). Size-gated appenders — the
// heartbeat and Log File writers check a rotation budget on every
// append — must use this instead of ReadFile, which copies the file.
func (s *FileSession) SizeFile(path string) (int, int) {
	resp, code := s.sess.Query(FsOpSize, path)
	if code != KErrNone {
		return 0, code
	}
	n, err := strconv.Atoi(resp)
	if err != nil {
		return 0, KErrArgument
	}
	return n, KErrNone
}

// DeleteFile removes path.
func (s *FileSession) DeleteFile(path string) int {
	return s.sess.SendReceive(FsOpDelete, path)
}

// FileExists reports whether path is present.
func (s *FileSession) FileExists(path string) bool {
	return s.sess.SendReceive(FsOpExists, path) == KErrNone
}

// Close releases the session.
func (s *FileSession) Close() { s.sess.Close() }
