package sim

import "math/bits"

// Hierarchical timing wheel — the engine's default event queue.
//
// Virtual time is bucketed into ticks of 2^tickShift ns (~1.07 s). Three
// levels of 64 slots each cover, per level, a window of 64, 64², and 64³
// ticks (~69 s, ~73 min, ~78 h); events beyond the day level go to a
// sorted overflow list. An event's level is the highest 6-bit tick group
// in which it differs from the cursor, so a slot never mixes ticks from
// two windows: by the time the cursor reaches a level-0 slot, every node
// in it has tick == cur exactly.
//
// The cursor advances lazily, driven by PeekWhen/PopMin. Within a window
// it jumps straight to the next occupied slot via the per-level occupancy
// bitmap; at each 64-tick boundary it cascades one slot down from the
// level above (and, at the larger boundaries, from level 2 and from the
// overflow prefix that newly fits the wheel — overflow first, so a far
// event can fall through every level in one crossing). Events whose tick
// has been reached sit in "ready", a doubly linked list kept sorted by
// (when, seq): a tick is ~1.07 s wide, so same-tick events still need
// sub-tick ordering, and the sorted list is what restores it. Pops are
// O(1) off the ready head.
//
// Costs: Schedule and Remove are O(1) except for sorted inserts into
// ready (tail-scan — same-instant bursts append in seq order, so the
// common case is O(1)) and into overflow (rare: only events > ~3.26 days
// out). Advance is amortised O(1) per event plus O(idle-gap / 64) for
// boundary crossings, which is negligible at simulation density.
type wheel struct {
	cur   int64 // current tick (when >> tickShift); never decreases while events are pending
	count int   // total pending nodes across ready, slots, and overflow

	ready     *eventNode // sorted (when, seq); every node has tick <= cur
	readyTail *eventNode

	// Slot lists are prepend-only (LIFO) so no per-slot tail pointer is
	// needed — with a wheel per device, a second [3][64] pointer array
	// costs 1.5KB × fleet size. Drain reverses the list before re-placing
	// so downstream sorted inserts still see near-FIFO input.
	slots [wheelLevels][slotsPerLevel]*eventNode
	occ   [wheelLevels]uint64 // bit s set iff slots[lvl][s] is non-empty

	of     *eventNode // sorted (when, seq); every node has tick >= cur + 64^3
	ofTail *eventNode
}

const (
	tickShift     = 30 // tick width 2^30 ns ≈ 1.07 s
	slotBits      = 6
	slotsPerLevel = 1 << slotBits
	slotMask      = slotsPerLevel - 1
	wheelLevels   = 3
)

func newWheel() *wheel { return &wheel{} }

func (w *wheel) name() string { return "wheel" }

func (w *wheel) Len() int { return w.count }

func (w *wheel) Schedule(n *eventNode, now Time) {
	if w.count == 0 {
		// Nothing pending constrains the cursor, so resync it to the
		// clock: after an idle gap this skips the dead windows instead
		// of cascading through them one boundary at a time.
		w.cur = int64(now) >> tickShift
	}
	w.place(n)
	w.count++
}

// place links a node into the structure that matches its distance from
// the cursor. Levels are chosen by the highest differing 6-bit tick
// group, not by raw delta: mid-window, a delta-based rule would wrap a
// near-boundary event into a slot the cursor has already passed this
// rotation, and it would fire a full rotation late.
func (w *wheel) place(n *eventNode) {
	tick := int64(n.when) >> tickShift
	switch {
	case tick <= w.cur:
		w.insertReady(n)
	case tick>>slotBits == w.cur>>slotBits:
		w.insertSlot(n, 0, int(tick&slotMask))
	case tick>>(2*slotBits) == w.cur>>(2*slotBits):
		w.insertSlot(n, 1, int((tick>>slotBits)&slotMask))
	case tick>>(3*slotBits) == w.cur>>(3*slotBits):
		w.insertSlot(n, 2, int((tick>>(2*slotBits))&slotMask))
	default:
		w.insertOverflow(n)
	}
}

func nodeLess(a, b *eventNode) bool {
	if a.when != b.when {
		return a.when < b.when
	}
	return a.seq < b.seq
}

// insertReady does a sorted insert scanning from the tail: drains feed
// nodes in seq order and same-instant schedules carry increasing seqs,
// so new nodes nearly always belong at or near the end.
func (w *wheel) insertReady(n *eventNode) {
	n.home = homeReady
	p := w.readyTail
	for p != nil && nodeLess(n, p) {
		p = p.prev
	}
	if p == nil {
		n.prev = nil
		n.next = w.ready
		if w.ready != nil {
			w.ready.prev = n
		} else {
			w.readyTail = n
		}
		w.ready = n
		return
	}
	n.prev = p
	n.next = p.next
	if p.next != nil {
		p.next.prev = n
	} else {
		w.readyTail = n
	}
	p.next = n
}

func (w *wheel) insertOverflow(n *eventNode) {
	n.home = homeOverflow
	p := w.ofTail
	for p != nil && nodeLess(n, p) {
		p = p.prev
	}
	if p == nil {
		n.prev = nil
		n.next = w.of
		if w.of != nil {
			w.of.prev = n
		} else {
			w.ofTail = n
		}
		w.of = n
		return
	}
	n.prev = p
	n.next = p.next
	if p.next != nil {
		p.next.prev = n
	} else {
		w.ofTail = n
	}
	p.next = n
}

// insertSlot prepends to the slot's list. Order within a slot is free:
// sub-tick ordering is restored by the sorted ready insert at drain time.
func (w *wheel) insertSlot(n *eventNode, lvl, slot int) {
	n.home = homeSlot
	n.lvl, n.slot = int8(lvl), int8(slot)
	n.prev = nil
	n.next = w.slots[lvl][slot]
	if n.next != nil {
		n.next.prev = n
	} else {
		w.occ[lvl] |= 1 << uint(slot)
	}
	w.slots[lvl][slot] = n
}

func (w *wheel) Remove(n *eventNode) {
	switch n.home {
	case homeReady:
		if n.prev != nil {
			n.prev.next = n.next
		} else {
			w.ready = n.next
		}
		if n.next != nil {
			n.next.prev = n.prev
		} else {
			w.readyTail = n.prev
		}
	case homeOverflow:
		if n.prev != nil {
			n.prev.next = n.next
		} else {
			w.of = n.next
		}
		if n.next != nil {
			n.next.prev = n.prev
		} else {
			w.ofTail = n.prev
		}
	case homeSlot:
		lvl, slot := int(n.lvl), int(n.slot)
		if n.prev != nil {
			n.prev.next = n.next
		} else {
			w.slots[lvl][slot] = n.next
		}
		if n.next != nil {
			n.next.prev = n.prev
		}
		if w.slots[lvl][slot] == nil {
			w.occ[lvl] &^= 1 << uint(slot)
		}
	}
	n.next, n.prev = nil, nil
	w.count--
}

func (w *wheel) PopMin() *eventNode {
	w.advance()
	n := w.ready
	if n == nil {
		return nil
	}
	w.ready = n.next
	if w.ready != nil {
		w.ready.prev = nil
	} else {
		w.readyTail = nil
	}
	n.next = nil
	w.count--
	return n
}

func (w *wheel) PeekWhen() (Time, bool) {
	w.advance()
	if w.ready == nil {
		return 0, false
	}
	return w.ready.when, true
}

// advance moves the cursor forward until the earliest pending event sits
// in ready (or nothing is pending). It only rearranges nodes between the
// wheel's internal lists — the pending set and its fire order are
// unchanged, which is what lets PeekWhen share it.
func (w *wheel) advance() {
	for w.ready == nil && w.count > 0 {
		if w.occ[0] != 0 {
			// Occupied level-0 slots always lie strictly ahead of the
			// cursor's position in the current window (a tick at or
			// behind the cursor would have been placed in ready), so
			// the lowest set bit is the next event's slot.
			s := bits.TrailingZeros64(w.occ[0])
			w.cur = w.cur&^slotMask | int64(s)
			w.drain(0, s)
			continue
		}
		// Level 0 exhausted: cross into the next window and cascade.
		w.cur = w.cur&^slotMask + slotsPerLevel
		w.cascade()
	}
}

// cascade runs at a window boundary (cur is a multiple of 64). Larger
// structures are drained before smaller ones so that a node can fall the
// whole way — overflow into level 2, level 2 into level 1, level 1 into
// level 0 or ready — within this one crossing.
func (w *wheel) cascade() {
	c := w.cur
	if c&(1<<(3*slotBits)-1) == 0 {
		// Entered a new day-level window: the overflow prefix whose
		// ticks now share cur's top group fits the wheel. The list is
		// sorted, so the prefix is exactly the nodes below the window
		// end.
		limit := c + 1<<(3*slotBits)
		for w.of != nil && int64(w.of.when)>>tickShift < limit {
			n := w.of
			w.of = n.next
			if w.of != nil {
				w.of.prev = nil
			} else {
				w.ofTail = nil
			}
			n.next = nil
			w.place(n)
		}
	}
	if c&(1<<(2*slotBits)-1) == 0 {
		w.drain(2, int(c>>(2*slotBits))&slotMask)
	}
	w.drain(1, int(c>>slotBits)&slotMask)
}

// drain empties one slot and re-places every node. For a level-0 slot the
// cursor has just reached, every node has tick == cur, so place routes
// them into ready; for higher levels they drop one level (or further).
func (w *wheel) drain(lvl, slot int) {
	n := w.slots[lvl][slot]
	if n == nil {
		return
	}
	w.slots[lvl][slot] = nil
	w.occ[lvl] &^= 1 << uint(slot)
	// The slot list is LIFO; reverse it so nodes re-place in insertion
	// order and the tail-scanning sorted inserts below stay O(1) for the
	// common ascending-seq case.
	var rev *eventNode
	for n != nil {
		next := n.next
		n.next = rev
		rev = n
		n = next
	}
	for rev != nil {
		next := rev.next
		rev.next, rev.prev = nil, nil
		w.place(rev)
		rev = next
	}
}
