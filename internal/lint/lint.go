// Package lint is a dependency-free static-analysis driver for the symfail
// module, modeled on the golang.org/x/tools/go/analysis shape but built
// entirely on the standard library (go/ast, go/parser, go/token, go/types).
//
// The simulator's scientific claims rest on two statically checkable
// contracts: bit-for-bit determinism (no ambient time, environment, or
// global randomness inside the simulation packages) and a closed panic
// taxonomy (every mechanistically raised (Category, Type) pair is known to
// the analysis layer). The analyzers in this package enforce both, so a
// future refactor cannot silently break the paper reproduction.
//
// Diagnostics can be suppressed one line at a time with an explicit,
// reasoned escape hatch:
//
//	//symlint:allow <analyzer> <reason>
//
// placed either on the offending line or on the line directly above it.
// The reason is mandatory; an allow without one is itself a diagnostic.
package lint

import (
	"fmt"
	"go/token"
	"sort"
)

// Diagnostic is one finding, rendered as "file:line: analyzer: message".
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Analyzer is one named check. Run is invoked once per loaded package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// Pass carries one (analyzer, package) unit of work.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Pkg      *Package
	// All is every package in the current run, for whole-program checks
	// such as the panic-taxonomy cross-reference.
	All []*Package

	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// DefaultAnalyzers returns the full analyzer suite with module defaults:
// determinism, maporder, panictaxonomy, rngshare, engineshare, and accmerge.
func DefaultAnalyzers() []*Analyzer {
	return []*Analyzer{
		NewDeterminism(DeterminismConfig{}),
		NewMapOrder(),
		NewPanicTaxonomy(TaxonomyConfig{}),
		NewRNGShare(RNGConfig{}),
		NewEngineShare(EngineConfig{}),
		NewAccMerge(AccMergeConfig{}),
	}
}

// Run applies every analyzer to every package, then filters the findings
// through the //symlint:allow directives found in the analyzed sources.
// Malformed or unused allow directives are reported under the pseudo-analyzer
// name "directive". The result is sorted by position.
func Run(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range pkgs {
			pass := &Pass{Analyzer: a, Fset: pkgFset(pkg), Pkg: pkg, All: pkgs, diags: &diags}
			a.Run(pass)
		}
	}

	idx := newDirectiveIndex(pkgs)
	diags = append(diags, idx.malformed...)

	kept := diags[:0]
	for _, d := range diags {
		if d.Analyzer != "directive" && idx.suppress(d) {
			continue
		}
		kept = append(kept, d)
	}
	diags = kept

	active := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		active[a.Name] = true
	}
	diags = append(diags, idx.unused(active)...)

	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags
}

// pkgFset digs the FileSet out of a package by finding any file position.
// All packages from one Loader share a single FileSet, which the Loader
// stores; passes get it through the package's loader-assigned set.
func pkgFset(pkg *Package) *token.FileSet {
	return pkg.fset
}
