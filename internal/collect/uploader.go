package collect

import (
	"errors"
	"hash/crc32"
	"syscall"
	"time"

	"symfail/internal/phone"
	"symfail/internal/sim"
)

// UploaderConfig calibrates the hardened uploader.
type UploaderConfig struct {
	// Every is the periodic upload interval in simulated time.
	Every time.Duration
	// RetryBase enables retry-with-backoff when non-zero: after a failed
	// attempt the uploader retries after RetryBase, doubling per
	// consecutive failure up to RetryMax, with multiplicative jitter when
	// Rng is set. Retries are scheduled on the sim clock, between the
	// periodic ticks.
	RetryBase time.Duration
	// RetryMax caps the backoff delay (defaults to Every when zero).
	RetryMax time.Duration
	// Rng drives the retry jitter (a Split() child of the device stream).
	// Nil means deterministic backoff without jitter.
	Rng *sim.Rand
	// Transport carries the bytes; nil means the real NetTransport.
	Transport Transport
}

// Uploader periodically pushes a device's Log File to the collection
// server while the phone is on — the paper's automated software
// infrastructure for transferring Log Files from the phones [1]. Uploads
// are resumable: the uploader tracks the server-acknowledged offset and
// ships only the tail past it, so a long study log is not re-sent on every
// tick and a failed transfer only costs the tail. The server's idempotent
// merge makes re-sends after a lost acknowledgement harmless.
type Uploader struct {
	dev  *phone.Device
	addr string
	path string
	cfg  UploaderConfig

	// acked is how much of the local file the server has acknowledged;
	// ackedCRC is the CRC-32C of that prefix, which detects rotation or a
	// master reset having rewritten history underneath the offset.
	acked    int
	ackedCRC uint32
	// resync asks the next attempt to query the server's offset first —
	// set after any failure, because a lost acknowledgement means the
	// server may be further along than we think.
	resync bool

	attempts     int
	successes    int
	failStreak   int
	retryPending bool
	bytesSent    int64
	lastErr      error

	// Observability counters (see the accessors for semantics).
	retries        int
	resumes        int
	reconnects     int
	quorumRefusals int
	retransmitted  int64
	// sentHigh is the high-water end offset of every chunk that reached
	// the wire for the current file identity; bytes offered again below it
	// count as retransmission. Reset when rotation or a master reset gives
	// the file a new identity.
	sentHigh int

	// Interned event labels and callbacks: the periodic tick and the retry
	// re-arm on every fire, and a per-arm closure would allocate at fleet
	// scale. Built once in AttachUploaderWith.
	tickLabel  string
	tickFn     func()
	retryLabel string
	retryFn    func()
}

// AttachUploader installs a periodic uploader on a device. path is the
// on-flash Log File to ship (the logger's LogPath); every is the upload
// period in simulated time. The schedule is anchored to the collection
// infrastructure, not to the phone's boot cycle: a tick that finds the
// phone off (or frozen) is skipped and the next one fires a period later,
// so reboots never silence the uploads. The TCP transfer itself happens in
// host time inside the simulation event, which is how a transfer that is
// near-instant relative to phone timescales should behave.
func AttachUploader(d *phone.Device, addr, path string, every time.Duration) *Uploader {
	return AttachUploaderWith(d, addr, path, UploaderConfig{Every: every})
}

// AttachUploaderWith installs an uploader with full calibration.
func AttachUploaderWith(d *phone.Device, addr, path string, cfg UploaderConfig) *Uploader {
	if cfg.Transport == nil {
		cfg.Transport = NetTransport{}
	}
	if cfg.RetryMax <= 0 {
		cfg.RetryMax = cfg.Every
	}
	u := &Uploader{dev: d, addr: addr, path: path, cfg: cfg}
	u.tickLabel = "upload " + d.ID()
	u.tickFn = func() {
		if u.dev.State() == phone.StateOn {
			u.uploadNow()
		}
		u.loop()
	}
	u.retryLabel = "upload-retry " + d.ID()
	u.retryFn = func() {
		u.retryPending = false
		if u.dev.State() == phone.StateOn {
			u.retries++
			u.uploadNow()
		}
	}
	u.loop()
	return u
}

// Attempts returns how many uploads were tried (retries included).
func (u *Uploader) Attempts() int { return u.attempts }

// Successes returns how many uploads the server acknowledged.
func (u *Uploader) Successes() int { return u.successes }

// BytesSent returns the cumulative payload bytes shipped. With resumable
// uploads this tracks the log's growth, not successes × file size.
func (u *Uploader) BytesSent() int64 { return u.bytesSent }

// LastErr returns the most recent upload error. Any successful server
// round-trip — OFFSET included — clears it to nil, so a non-nil value
// means "currently failing", not "failed once ever".
func (u *Uploader) LastErr() error { return u.lastErr }

// Retries counts upload attempts fired by the backoff timer (between
// periodic ticks), as opposed to the ticks themselves.
func (u *Uploader) Retries() int { return u.retries }

// Resumes counts successful OFFSET renegotiations: after a failure the
// uploader asked the server where it stands and resumed from the server's
// authoritative offset instead of re-sending blind.
func (u *Uploader) Resumes() int { return u.resumes }

// Reconnects counts uploads that succeeded immediately after one or more
// failures — the connection came back.
func (u *Uploader) Reconnects() int { return u.reconnects }

// QuorumRefusals counts upload attempts the fleet rejected with its
// retryable below-quorum ERR: the write would have been durable on fewer
// than W shards, so the fleet refused to acknowledge it at all.
func (u *Uploader) QuorumRefusals() int { return u.quorumRefusals }

// BytesRetransmitted counts payload bytes put on the wire again below the
// high-water mark of what had already been sent: the cost of lost
// acknowledgements and of offset regression, where a crashed server lost
// an un-synced stream tail and the client rewound to the server's
// authoritative offset. Refused connections carry no bytes and do not
// count; an attempt that reaches the wire counts its declared tail even if
// the transfer then dies. Rotation and master resets reset the high-water
// mark — a fresh file re-sent from zero is new data, not retransmission.
func (u *Uploader) BytesRetransmitted() int64 { return u.retransmitted }

func (u *Uploader) loop() {
	u.dev.Engine().After(u.cfg.Every, u.tickLabel, u.tickFn)
}

// scheduleRetry arms a one-shot retry between periodic ticks, with
// exponential backoff and jitter. Disabled retries (RetryBase zero) and
// backoffs that would land past the next periodic tick are skipped — the
// tick itself is the retry of last resort.
func (u *Uploader) scheduleRetry() {
	if u.cfg.RetryBase <= 0 || u.retryPending {
		return
	}
	delay := u.cfg.RetryBase << (u.failStreak - 1)
	if u.failStreak > 20 || delay > u.cfg.RetryMax || delay <= 0 {
		delay = u.cfg.RetryMax
	}
	if u.cfg.Rng != nil {
		// Jitter in [0.5, 1.5): phones that failed together (a server
		// outage) must not retry in lockstep.
		delay = time.Duration(float64(delay) * (0.5 + u.cfg.Rng.Float64()))
	}
	if delay >= u.cfg.Every {
		return
	}
	u.retryPending = true
	u.dev.Engine().After(delay, u.retryLabel, u.retryFn)
}

func (u *Uploader) fail(err error) {
	if IsBelowQuorum(err) {
		// The fleet answered honestly that it cannot make the write durable
		// on W shards right now. Count it — the degradation experiments
		// read this — and back off like any other failure.
		u.quorumRefusals++
	}
	u.lastErr = err
	u.failStreak++
	u.resync = true
	u.scheduleRetry()
}

func (u *Uploader) uploadNow() {
	data, ok := u.dev.FS().Read(u.path)
	if !ok {
		return // nothing logged yet
	}
	u.attempts++
	// The acknowledged prefix must still be the file's prefix; rotation or
	// a master reset rewrites history and forces a full re-send (the
	// server's merge dedups whatever it already had). The file has a new
	// identity, so the retransmission high-water mark resets with it.
	if u.acked > len(data) || crc32.Checksum(data[:u.acked], castagnoli) != u.ackedCRC {
		u.acked, u.ackedCRC = 0, 0
		u.sentHigh = 0
	}
	if u.resync {
		n, sum, err := u.cfg.Transport.Offset(u.addr, u.dev.ID())
		if err != nil {
			u.fail(err)
			return
		}
		// The server answered: whatever the last failure was, the link is
		// back. A non-nil LastErr must mean "currently failing", so every
		// successful verb clears it.
		u.lastErr = nil
		u.resumes++
		if n <= len(data) && crc32.Checksum(data[:n], castagnoli) == sum {
			// The server is exactly n bytes into our file; resume from
			// there. n above our record means a lost ACK left the server
			// ahead of us; n below it is offset regression — the server
			// lost un-synced stream tail in a crash and its word is the
			// authoritative one, so rewind and re-send from n.
			u.acked, u.ackedCRC = n, sum
		} else {
			// The server's stream is not a prefix of our file (master
			// reset, rotation, or the server lost the stream wholesale):
			// start the stream over from 0.
			u.acked, u.ackedCRC = 0, 0
		}
		u.resync = false
	}
	tail := data[u.acked:]
	start, end := u.acked, u.acked+len(tail)
	_, err := u.cfg.Transport.UploadChunk(u.addr, u.dev.ID(), start, tail)
	if err == nil || !isRefused(err) {
		// The chunk reached the wire (even if the transfer then died);
		// anything below the sent high-water mark is retransmission.
		if start < u.sentHigh && len(tail) > 0 {
			over := u.sentHigh - start
			if over > len(tail) {
				over = len(tail)
			}
			u.retransmitted += int64(over)
		}
		if end > u.sentHigh {
			u.sentHigh = end
		}
	}
	if err != nil {
		// Flaky networks must not crash the phone; back off and retry.
		u.fail(err)
		return
	}
	u.bytesSent += int64(len(tail))
	u.acked = len(data)
	u.ackedCRC = crc32.Checksum(data, castagnoli)
	u.successes++
	if u.failStreak > 0 {
		u.reconnects++
	}
	u.failStreak = 0
	u.lastErr = nil
}

// isRefused reports whether an upload error means the connection never
// happened — no bytes flowed, so nothing was (re)transmitted.
func isRefused(err error) bool {
	return errors.Is(err, ErrRefused) || errors.Is(err, syscall.ECONNREFUSED)
}
