package fleet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"symfail/internal/collect"
	"symfail/internal/core"
	"symfail/internal/sim"
)

// Config calibrates a collection fleet.
type Config struct {
	// Servers is the initial shard count. 1 degenerates to exactly the
	// single-supervisor collector of PR 4: same construction, same RNG
	// consumption, no router in the path.
	Servers int
	// MaxStreamBytes / CompactEvery pass through to every shard's
	// SupervisorConfig.
	MaxStreamBytes int
	CompactEvery   int
	// Crash schedules fleet-level kills: every KillEveryMin..KillEveryMax
	// routed requests a non-empty RNG-drawn subset of {shards..., router}
	// dies. Requires Rng when enabled.
	Crash collect.CrashFaults
	// Rng drives the kill schedule, subset draws, crashpoint draws, handoff
	// and rebalance abort cuts, and (via Split children) every shard store's
	// torn-tail lengths. Salt it off the study seed (collectorSeedSalt) so
	// fleet adversity never perturbs device streams.
	Rng *sim.Rand
	// OnRecord taps every acknowledged record on every shard. Calls are
	// serialised across shards under a fleet-level mutex; the same
	// at-least-once delivery caveats as ServerConfig.OnRecord apply.
	OnRecord func(deviceID string, r core.Record)
	// JoinAfter, when >0, adds one shard to the fleet after that many routed
	// requests (a mid-study scale-up with live rebalancing). LeaveAfter,
	// when >0, retires one shard after that many routed requests (draining
	// its devices to the survivors first). Both are one-shot and need
	// Servers > 1 (the degenerate fleet has no router to count requests).
	JoinAfter  int
	LeaveAfter int

	// Replicate is the write-time replication factor R: every acknowledged
	// UPLOAD/CHUNK is durable on R shards (capped at the live membership)
	// before the OK goes on the wire. 0 defaults to 3; 1 switches write-time
	// replication, heartbeats and quorum gating off entirely — byte-exact
	// the pre-quorum fleet. Ignored on the Servers==1 degenerate path.
	Replicate int
	// Quorum is the write quorum W: the ACK requires W of the R copies
	// (primary included) WAL-synced. 0 defaults to min(2, R). When fewer
	// than W shards are reachable the fleet refuses writes with a retryable
	// below-quorum ERR instead of making a durability promise it cannot
	// keep. Must satisfy 1 <= W <= R.
	Quorum int
	// BeatRng drives heartbeat jitter. It must be a dedicated stream (salt
	// it off the study seed) so beat cadence never perturbs kill schedules
	// or device streams; nil runs beats on a fixed, jitter-free cadence.
	BeatRng *sim.Rand
	// BeatEvery is the heartbeat period in routed requests: every BeatEvery
	// (+ jitter) requests the fleet probes every shard with a PING. The
	// detector is request-driven — no background goroutine, no host-time
	// clock — so a quiet fleet draws nothing and leaks nothing. Default 8.
	BeatEvery int
	// SuspectAfter is the consecutive-miss count (beats and routed-traffic
	// observations combined) at which a shard is suspected: routed around
	// and skipped as a replication target, but never declared dead. A
	// successful probe clears it. Default 3.
	SuspectAfter int
	// ConfirmAfter is the consecutive-miss count at which a suspected shard
	// is confirmed dead — but only with process-level evidence (its power
	// was cut or its supervisor's restart loop failed for good): misses
	// alone, however many, never kill a healthy shard. Confirmation bumps
	// the epoch and triggers anti-entropy repair. Default 12.
	ConfirmAfter int
}

// member is one shard: a supervised durable server with its own dataset and
// crash store. Members are never removed from the slice — a departed shard
// keeps live=false and its supervisor keeps answering the accounting and
// acked-ledger queries, so nothing it ever acknowledged can silently drop
// out of the invariant checks or the merged dataset.
type member struct {
	name  string
	sup   *collect.Supervisor
	ds    *collect.Dataset
	store *collect.CrashStore
	live  bool
	// armedAt is the routed-request count when a fleet kill was armed on
	// this shard, for the stall-repoint window.
	armedAt int

	// Failure-detector state (all under the fleet mutex). misses counts
	// consecutive failed probes/observations; suspected marks the shard
	// routed-around; cut marks a permanent power cut (the process is gone,
	// its dataset with it — only its acked ledger survives as the promise
	// the replicas must now keep); partitioned blocks the router (and the
	// router-co-located beat prober) from reaching an otherwise healthy
	// shard.
	misses      int
	suspected   bool
	cut         bool
	partitioned bool
}

// target is a replication destination snapshot (taken under the fleet
// mutex, used after it is released).
type target struct {
	name, addr string
}

// fleetRepointWindow mirrors the single-supervisor repointWindow: an armed
// kill that waits longer than this many routed requests for its crashpoint
// is repointed at the commit path so injection cannot stall on a shard that
// never compacts.
const fleetRepointWindow = 16

// Supervisor owns a sharded collection fleet across injected crashes: N
// supervised shards behind a device-hash router, fleet-level kill-subset
// injection, crash handoff from dying shards to surviving peers, and live
// join/leave rebalancing. The lifted PR 4 invariant it exists to defend:
// every record any incarnation of any shard ever acknowledged appears
// exactly once in the merged dataset.
type Supervisor struct {
	cfg  Config
	addr string

	// single is the Servers==1 degenerate path: one plain collect.Supervisor,
	// no router, no fleet-level machinery — byte-identical to PR 4.
	single   *collect.Supervisor
	singleDS *collect.Dataset

	tapMu sync.Mutex

	// routerMu serializes router restarts: two kills fired in quick
	// succession (untilKill can be drawn as low as 1) would otherwise race
	// two restart goroutines binding the same pinned address — the loser
	// burns its whole rebind budget on EADDRINUSE and reports a spurious
	// fleet error. Serialized, the second restart kills the first's fresh
	// incarnation and rebinds: two kills, two restarts, one address.
	routerMu sync.Mutex

	// replicateR/writeW are the resolved R/W (1/1 when replication is off);
	// the beat* fields are the resolved failure-detector calibration.
	replicateR   int
	writeW       int
	beatEvery    int
	suspectAfter int
	confirmAfter int

	mu             sync.Mutex
	rng            *sim.Rand
	beatRng        *sim.Rand
	members        []*member
	router         *Router
	epoch          int
	disarmed       bool
	requests       int
	untilKill      int
	untilBeat      int
	beating        bool
	belowQuorum    bool
	joinDone       bool
	leaveDone      bool
	routerKills    int
	routerRestarts int
	handoffs       int
	handoffFails   int
	aborted        int
	rebalances     int
	migrated       int
	suspicions     int
	falseSusp      int
	confirmedDead  int
	repairs        int
	degradedReqs   int
	degradedWins   int
	abortHandoff   map[*member]bool
	abortRebalance bool
	lastErr        error
}

// New starts a fleet. Servers==1 builds the exact single-server collector
// (no router); Servers>1 builds the shards serially — store RNGs split off
// cfg.Rng in shard order, so the layout is a pure function of the seed —
// then binds the router in front of them.
func New(cfg Config) (*Supervisor, error) {
	if cfg.Servers < 1 {
		return nil, errors.New("fleet: need at least one server")
	}
	if cfg.Crash.Enabled() && cfg.Rng == nil {
		return nil, errors.New("fleet: crash injection needs a sim.Rand")
	}
	r, w := cfg.Replicate, cfg.Quorum
	if r == 0 {
		r = 3
	}
	if w == 0 {
		if w = 2; w > r {
			w = r
		}
	}
	if r < 1 || w < 1 || w > r {
		return nil, fmt.Errorf("fleet: need 1 <= quorum W (%d) <= replication R (%d)", w, r)
	}
	if cfg.Servers == 1 {
		if cfg.JoinAfter > 0 || cfg.LeaveAfter > 0 {
			return nil, errors.New("fleet: join/leave needs Servers > 1")
		}
		ds := collect.NewDataset()
		sup, err := collect.NewSupervisor("127.0.0.1:0", ds, collect.SupervisorConfig{
			MaxStreamBytes: cfg.MaxStreamBytes,
			CompactEvery:   cfg.CompactEvery,
			Crash:          cfg.Crash,
			Rng:            cfg.Rng,
			OnRecord:       cfg.OnRecord,
		})
		if err != nil {
			return nil, err
		}
		return &Supervisor{cfg: cfg, single: sup, singleDS: ds, addr: sup.Addr()}, nil
	}
	f := &Supervisor{
		cfg:          cfg,
		rng:          cfg.Rng,
		beatRng:      cfg.BeatRng,
		replicateR:   r,
		writeW:       w,
		beatEvery:    cfg.BeatEvery,
		suspectAfter: cfg.SuspectAfter,
		confirmAfter: cfg.ConfirmAfter,
		abortHandoff: make(map[*member]bool),
	}
	if f.beatEvery <= 0 {
		f.beatEvery = 8
	}
	if f.suspectAfter <= 0 {
		f.suspectAfter = 3
	}
	if f.confirmAfter <= f.suspectAfter {
		f.confirmAfter = 12
	}
	fail := func(err error) (*Supervisor, error) {
		for _, m := range f.members {
			_ = m.sup.Close()
		}
		return nil, err
	}
	for i := 0; i < cfg.Servers; i++ {
		m, err := f.newMemberLocked()
		if err != nil {
			return fail(err)
		}
		f.members = append(f.members, m)
	}
	rt, err := newRouter("127.0.0.1:0", f.routerHooks())
	if err != nil {
		return fail(err)
	}
	f.router = rt
	f.addr = rt.Addr() // pinned: router restarts rebind this address
	f.mu.Lock()
	if cfg.Crash.Enabled() {
		f.drawKillLocked()
	}
	if f.quorumOn() {
		f.redrawBeatLocked()
	}
	f.mu.Unlock()
	return f, nil
}

// quorumOn reports whether write-time replication (and with it the failure
// detector and quorum gating) is active. R==1 is the pre-quorum fleet.
func (f *Supervisor) quorumOn() bool { return f.replicateR > 1 }

// routerHooks assembles the callbacks a router incarnation runs on. The
// detector hooks are withheld on the R==1 fleet so that path stays
// byte-identical to the pre-quorum router.
func (f *Supervisor) routerHooks() routerHooks {
	h := routerHooks{route: f.route, begin: f.beginRequest}
	if f.quorumOn() {
		h.gate = f.gate
		h.blocked = f.blockedAddr
		h.observe = f.observe
	}
	return h
}

// newMemberLocked builds one shard (fresh store, fresh dataset, supervised
// server). Fleet kills arrive via InjectKill, so the shard's own crash
// schedule stays disabled — its supervisor never draws from any RNG.
func (f *Supervisor) newMemberLocked() (*member, error) {
	name := fmt.Sprintf("shard-%02d", len(f.members)+1)
	var storeRng *sim.Rand
	if f.rng != nil {
		storeRng = f.rng.Split()
	}
	m := &member{
		name:  name,
		ds:    collect.NewDataset(),
		store: collect.NewCrashStore(storeRng),
		live:  true,
	}
	scfg := collect.SupervisorConfig{
		MaxStreamBytes: f.cfg.MaxStreamBytes,
		CompactEvery:   f.cfg.CompactEvery,
		Store:          m.store,
		OnCrash:        func() { f.shardCrashed(m) },
	}
	if f.quorumOn() {
		scfg.Replicate = f.replicaHook(m)
	}
	if f.cfg.OnRecord != nil {
		scfg.OnRecord = f.tap
	}
	sup, err := collect.NewSupervisor("127.0.0.1:0", m.ds, scfg)
	if err != nil {
		return nil, err
	}
	m.sup = sup
	return m, nil
}

// tap serialises the shards' record taps onto the caller's OnRecord: with
// one server the handlers already serialise per connection under the server
// mutex, but N shards acknowledge concurrently.
func (f *Supervisor) tap(deviceID string, r core.Record) {
	f.tapMu.Lock()
	defer f.tapMu.Unlock()
	f.cfg.OnRecord(deviceID, r)
}

// Addr returns the fleet's client-facing address (the router's, pinned
// across router kills; the lone server's on the degenerate path).
func (f *Supervisor) Addr() string { return f.addr }

// route resolves a device to its owning live shard's address under the
// current epoch (the router's routing callback).
func (f *Supervisor) route(deviceID string) (string, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.ownerLocked(deviceID)
	if m == nil {
		return "", false
	}
	return m.sup.Addr(), true
}

// ownerLocked is rendezvous hashing over the live members (see Owner), in
// two passes: suspected shards are routed around when any unsuspected live
// shard exists (their successors hold the data), but when everything is
// under suspicion the plain rendezvous owner still answers — degraded
// routing beats no routing.
func (f *Supervisor) ownerLocked(deviceID string) *member {
	if m := f.bestLocked(deviceID, false); m != nil {
		return m
	}
	return f.bestLocked(deviceID, true)
}

func (f *Supervisor) bestLocked(deviceID string, includeSuspected bool) *member {
	var best *member
	var bestScore uint64
	for _, m := range f.members {
		if !m.live || m.cut || (m.suspected && !includeSuspected) {
			continue
		}
		s := rendezvousScore(deviceID, m.name)
		if best == nil || s > bestScore || (s == bestScore && m.name < best.name) {
			best, bestScore = m, s
		}
	}
	return best
}

// liveLocked returns the members the fleet can still operate: live and not
// power-cut (a cut shard's process is gone for good; until the detector
// confirms it dead it is a zombie in the membership, not a peer).
func (f *Supervisor) liveLocked() []*member {
	var out []*member
	for _, m := range f.members {
		if m.live && !m.cut {
			out = append(out, m)
		}
	}
	return out
}

// targetsLocked snapshots the live replication destinations other than m.
func (f *Supervisor) targetsLocked(not *member) []target {
	var out []target
	for _, m := range f.liveLocked() {
		if m != not {
			out = append(out, target{name: m.name, addr: m.sup.Addr()})
		}
	}
	return out
}

// availableTargetsLocked is targetsLocked minus suspected shards — the
// destinations a write-time replication round may count toward its quorum.
func (f *Supervisor) availableTargetsLocked(not *member) []target {
	var out []target
	for _, m := range f.liveLocked() {
		if m != not && !m.suspected {
			out = append(out, target{name: m.name, addr: m.sup.Addr()})
		}
	}
	return out
}

// availableLocked counts the shards the fleet can currently make a write
// durable on (live, not cut, not suspected).
func (f *Supervisor) availableLocked() int {
	n := 0
	for _, m := range f.liveLocked() {
		if !m.suspected {
			n++
		}
	}
	return n
}

// memberByAddrLocked resolves a shard address (pinned across restarts) back
// to its member.
func (f *Supervisor) memberByAddrLocked(addr string) *member {
	for _, m := range f.members {
		if m.sup.Addr() == addr {
			return m
		}
	}
	return nil
}

// beginRequest is the router's per-request hook. It advances the fleet kill
// countdown, fires drawn kill subsets, repoints stalled shard kills, and
// triggers the one-shot join/leave rebalances. Returns whether the router
// itself was drawn into this request's kill subset — in which case the old
// router is already dead and a fresh one is listening on the pinned address
// by the time this returns.
func (f *Supervisor) beginRequest() bool {
	var doJoin, doLeave, routerDies bool
	f.mu.Lock()
	if f.disarmed {
		f.mu.Unlock()
		return false
	}
	f.requests++
	if f.cfg.JoinAfter > 0 && !f.joinDone && f.requests >= f.cfg.JoinAfter {
		f.joinDone = true
		doJoin = true
	}
	if f.cfg.LeaveAfter > 0 && !f.leaveDone && f.requests >= f.cfg.LeaveAfter {
		f.leaveDone = true
		doLeave = true
	}
	if f.cfg.Crash.Enabled() {
		for _, m := range f.members {
			// A kill armed for a crashpoint a quiet shard never reaches
			// (compaction, mostly) would wait forever; repoint it at the
			// commit path, like the single supervisor's repointWindow.
			if m.live && m.sup.KillArmed() && f.requests-m.armedAt > fleetRepointWindow {
				if m.sup.RepointKill(collect.CrashBeforeWALSync) {
					m.armedAt = f.requests
				}
			}
		}
		f.untilKill--
		if f.untilKill <= 0 {
			routerDies = f.fireKillsLocked()
			f.drawKillLocked()
		}
	}
	var doBeat bool
	var probes []*member
	if f.quorumOn() {
		f.untilBeat--
		if f.untilBeat <= 0 && !f.beating {
			// One beat round at a time: concurrent requests keep flowing
			// while this one carries the probes (request-driven detector —
			// no goroutine to leak, no host clock to drift).
			f.beating = true
			doBeat = true
			for _, m := range f.members {
				if m.live {
					probes = append(probes, m)
				}
			}
		}
	}
	f.mu.Unlock()
	if doBeat {
		f.runBeat(probes)
	}
	if doJoin {
		if err := f.Join(); err != nil {
			f.setErr(err)
		}
	}
	if doLeave {
		if err := f.Leave(); err != nil {
			f.setErr(err)
		}
	}
	if routerDies {
		f.restartRouter()
	}
	return routerDies
}

// drawKillLocked schedules the next fleet kill countdown.
func (f *Supervisor) drawKillLocked() {
	lo, hi := f.cfg.Crash.KillEveryMin, f.cfg.Crash.KillEveryMax
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	f.untilKill = lo + f.rng.Intn(hi-lo+1)
}

// fireKillsLocked draws a non-empty subset of {live shards..., router} and
// kills it. Shard kills are armed at a drawn crashpoint out of the five
// server-level points plus two fleet-level ones: "during handoff" (the
// shard dies at the commit path and its own crash handoff is then cut short
// partway, as if the dying process lost its failover race too) and "during
// rebalance" (the next join/leave migration aborts partway through its
// plan). Simultaneous kills — several shards, shards plus the router — are
// one mask draw, so they genuinely overlap.
func (f *Supervisor) fireKillsLocked() (routerDies bool) {
	live := f.liveLocked()
	bits := len(live) + 1 // the +1 bit is the router itself
	mask := 1 + f.rng.Intn((1<<bits)-1)
	for i, m := range live {
		if mask&(1<<i) == 0 {
			continue
		}
		k := f.rng.Intn(collect.NumCrashpoints + 2)
		switch {
		case k < collect.NumCrashpoints:
			if m.sup.InjectKill(collect.Crashpoint(k)) {
				m.armedAt = f.requests
			}
		case k == collect.NumCrashpoints:
			// During-handoff crashpoint: kill at the commit path, then cut
			// the dying shard's handoff short after a drawn prefix.
			f.abortHandoff[m] = true
			if m.sup.InjectKill(collect.CrashBeforeWALSync) {
				m.armedAt = f.requests
			}
		default:
			// During-rebalance crashpoint: the next join/leave migration
			// stops partway through its plan.
			f.abortRebalance = true
		}
	}
	if mask&(1<<len(live)) != 0 {
		routerDies = true
		f.routerKills++
	}
	return routerDies
}

// shardCrashed is every shard's OnCrash hook: it runs on the dying
// incarnation's goroutine in the window where the store holds the dead
// shard's synced state and no replacement is listening. It recovers the
// store read-only-in-effect (recovery normalises the medium, which is
// exactly what the restart's own recovery would do — the double recovery is
// byte-identical and write-free) and replicates the acked state to the
// surviving peers.
//
// Handoff is replication, not movement: the source WAL and dataset keep
// everything, so an aborted or failed handoff can lose nothing — the worst
// case is the same record reaching the merge from two shards, which the
// canonical merge deduplicates.
func (f *Supervisor) shardCrashed(m *member) {
	files, _ := collect.RecoverState(m.store)
	f.mu.Lock()
	if f.disarmed || !m.live || len(files) == 0 {
		delete(f.abortHandoff, m)
		f.mu.Unlock()
		return
	}
	targets := f.targetsLocked(m)
	devs := sortedKeys(files)
	cut := len(devs)
	if f.abortHandoff[m] {
		delete(f.abortHandoff, m)
		cut = f.rng.Intn(len(devs))
		f.aborted++
	}
	f.mu.Unlock()
	if len(targets) == 0 {
		return
	}
	for _, dev := range devs[:cut] {
		f.replicate(dev, collect.HandoffLog, files[dev], targets, 1, handoffAttempts)
	}
}

// Per-candidate retry budgets for the two replication callers. Repair-style
// replication (crash handoff, rebalance, anti-entropy) is already safe to
// abandon — the source keeps its copy — so it gives up quickly. Write-time
// replication is holding a client's ACK hostage, so it retries long enough
// (~0.6 s of host time per candidate) to ride out a peer's restart window
// without ever surfacing into simulated time.
const (
	handoffAttempts = 3
	writeAttempts   = 60
)

// replicate offers one device's bytes to targets in rendezvous order (the
// device's truest owners first) until want of them have taken durable
// custody; want <= 0 offers to every target. Each candidate gets bounded
// retries — a peer may itself be mid-restart (simultaneous kills) — and
// each candidate that still refuses counts one HandoffFailure, so a
// two-target round that loses one peer is visible as exactly one failed
// leg, not a lost round. Returns how many targets accepted. Crash handoff,
// join/leave rebalancing, anti-entropy repair and write-time quorum
// replication all funnel through here: one audited path, one counter set.
func (f *Supervisor) replicate(dev, kind string, data []byte, targets []target, want, attempts int) int {
	successes := 0
	for _, t := range rendezvousOrder(dev, targets) {
		ok := false
		for attempt := 0; attempt < attempts && !ok; attempt++ {
			if attempt > 0 {
				// Host-time pause while a real TCP peer rebinds; never
				// observable by the simulation.
				sleep := time.Duration(attempt*attempt) * 2 * time.Millisecond
				if sleep > 10*time.Millisecond {
					sleep = 10 * time.Millisecond
				}
				//symlint:allow determinism host-time backoff towards a real restarting TCP peer
				time.Sleep(sleep)
			}
			ok = collect.Handoff(t.addr, dev, kind, data) == nil
		}
		f.mu.Lock()
		if ok {
			f.handoffs++
			successes++
		} else {
			f.handoffFails++
		}
		f.mu.Unlock()
		if want > 0 && successes >= want {
			break
		}
	}
	return successes
}

// rendezvousOrder sorts targets by the device's rendezvous preference,
// highest score first (ties toward the lexically smaller name, like Owner).
func rendezvousOrder(dev string, targets []target) []target {
	ordered := append([]target(nil), targets...)
	sort.Slice(ordered, func(i, j int) bool {
		si, sj := rendezvousScore(dev, ordered[i].name), rendezvousScore(dev, ordered[j].name)
		if si != sj {
			return si > sj
		}
		return ordered[i].name < ordered[j].name
	})
	return ordered
}

// Join adds one shard mid-study and rebalances: the epoch bumps first (new
// requests for stolen devices route to the joiner immediately; uploaders
// renegotiate through OFFSET when their stream is elsewhere), then every
// device whose rendezvous owner moved to the joiner has its merged log —
// and live chunk stream, if any — replicated over. The donors keep their
// copies (replication, not movement), a deliberate over-approximation that
// makes an aborted rebalance safe by construction.
func (f *Supervisor) Join() error {
	f.mu.Lock()
	if f.single != nil {
		f.mu.Unlock()
		return errors.New("fleet: cannot join a single-server fleet")
	}
	if f.disarmed {
		f.mu.Unlock()
		return errors.New("fleet: closed")
	}
	joiner, err := f.newMemberLocked()
	if err != nil {
		f.mu.Unlock()
		return fmt.Errorf("fleet: join: %w", err)
	}
	donors := f.liveLocked()
	f.members = append(f.members, joiner)
	f.epoch++
	f.rebalances++
	f.updateQuorumLocked()
	names := make([]string, 0, len(donors)+1)
	for _, m := range donors {
		names = append(names, m.name)
	}
	names = append(names, joiner.name)
	type planEntry struct {
		dev  string
		from *member
	}
	var plan []planEntry
	for _, m := range donors {
		for _, dev := range m.ds.Devices() {
			if owner, ok := Owner(dev, names); ok && owner == joiner.name {
				plan = append(plan, planEntry{dev: dev, from: m})
			}
		}
	}
	sort.Slice(plan, func(i, j int) bool { return plan[i].dev < plan[j].dev })
	cut := len(plan)
	if f.abortRebalance && len(plan) > 0 {
		f.abortRebalance = false
		cut = f.rng.Intn(len(plan))
		f.aborted++
	}
	dst := []target{{name: joiner.name, addr: joiner.sup.Addr()}}
	f.mu.Unlock()
	for _, p := range plan[:cut] {
		data, ok := p.from.ds.Get(p.dev)
		if !ok {
			continue
		}
		if f.replicate(p.dev, collect.HandoffLog, data, dst, 1, handoffAttempts) == 0 {
			continue
		}
		if stream, ok := p.from.sup.Stream(p.dev); ok && len(stream) > 0 {
			f.replicate(p.dev, collect.HandoffStream, stream, dst, 1, handoffAttempts)
		}
		f.mu.Lock()
		f.migrated++
		f.mu.Unlock()
	}
	return nil
}

// Leave retires the longest-serving live shard mid-study. It drains first,
// while the leaver is still routable — every device's merged log and live
// stream replicate to its post-leave rendezvous owner — then flips the
// shard dead, bumps the epoch and closes its supervisor. Records that
// arrive mid-drain land in the leaver's dataset and stay there: departed
// shards' datasets are retained by the merge, so the drain/arrival race
// cannot lose acknowledged data.
func (f *Supervisor) Leave() error {
	f.mu.Lock()
	if f.single != nil {
		f.mu.Unlock()
		return errors.New("fleet: cannot leave a single-server fleet")
	}
	if f.disarmed {
		f.mu.Unlock()
		return errors.New("fleet: closed")
	}
	live := f.liveLocked()
	if len(live) < 2 {
		f.mu.Unlock()
		return errors.New("fleet: leave needs at least two live shards")
	}
	leaver := live[0]
	survivors := live[1:]
	names := make([]string, 0, len(survivors))
	targets := make([]target, 0, len(survivors))
	for _, m := range survivors {
		names = append(names, m.name)
		targets = append(targets, target{name: m.name, addr: m.sup.Addr()})
	}
	plan := leaver.ds.Devices()
	sort.Strings(plan)
	cut := len(plan)
	if f.abortRebalance && len(plan) > 0 {
		f.abortRebalance = false
		cut = f.rng.Intn(len(plan))
		f.aborted++
	}
	f.rebalances++
	f.mu.Unlock()
	for _, dev := range plan[:cut] {
		data, ok := leaver.ds.Get(dev)
		if !ok {
			continue
		}
		if f.replicate(dev, collect.HandoffLog, data, targets, 1, handoffAttempts) == 0 {
			continue
		}
		if stream, ok := leaver.sup.Stream(dev); ok && len(stream) > 0 {
			f.replicate(dev, collect.HandoffStream, stream, targets, 1, handoffAttempts)
		}
		f.mu.Lock()
		f.migrated++
		f.mu.Unlock()
	}
	f.mu.Lock()
	leaver.live = false
	f.epoch++
	f.updateQuorumLocked()
	f.mu.Unlock()
	// The leaver may be mid-crash — drain traffic traverses crashpoints, so
	// an armed kill can fire on the leave itself. Settle before closing: a
	// Close (or even a Disarm) that lands while serverDied is mid-cycle
	// makes it skip the restart, stranding a harvested crash with no
	// matching restart in the fleet's ledger. New kills cannot arm here —
	// fireKillsLocked only targets live members and the leaver just
	// stopped being one — and Settle cancels any kill still pending.
	leaver.sup.Settle(5 * time.Second)
	_ = leaver.sup.Close()
	return nil
}

// restartRouter replaces a killed router on the pinned address. Runs on the
// doomed request's handler goroutine, synchronously — by the time the
// killing request returns, clients dialing the fleet address reach the new
// incarnation (their in-flight requests died unanswered, like any crash).
func (f *Supervisor) restartRouter() {
	f.routerMu.Lock()
	defer f.routerMu.Unlock()
	f.mu.Lock()
	old := f.router
	f.mu.Unlock()
	if old != nil {
		old.kill()
	}
	var rt *Router
	var err error
	for attempt := 0; attempt < 100; attempt++ {
		if attempt > 0 {
			// Host-time pause for the dead listener's port to free up; on a
			// loaded single-CPU host the dying accept loop can hold the fd
			// well past the first few pauses, so the budget is generous.
			pause := time.Duration(attempt) * time.Millisecond
			if pause > 10*time.Millisecond {
				pause = 10 * time.Millisecond
			}
			//symlint:allow determinism host-time pause rebinding a real TCP listener
			time.Sleep(pause)
		}
		rt, err = newRouter(f.addr, f.routerHooks())
		if err == nil {
			break
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if err != nil {
		f.lastErr = fmt.Errorf("fleet: router restart: %w", err)
		f.router = nil
		return
	}
	if f.disarmed {
		go rt.Close() // Close raced the restart; do not leak the new router
		f.router = nil
		return
	}
	f.router = rt
	f.routerRestarts++
}

func (f *Supervisor) setErr(err error) {
	f.mu.Lock()
	if f.lastErr == nil {
		f.lastErr = err
	}
	f.mu.Unlock()
}

// MergedDataset folds every shard's dataset — live and departed — into one
// canonical dataset: the fleet-wide view a study analysis runs over. The
// union over all members is what makes the over-approximations (handoff as
// replication, drain races, retained departed datasets) correct: a record
// may exist on several shards, but the canonical merge emits it exactly
// once.
func (f *Supervisor) MergedDataset() *collect.Dataset {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single != nil {
		return f.singleDS
	}
	out := collect.NewDataset()
	for _, m := range f.members {
		if m.cut {
			// A power-cut shard's dataset died with its hardware. Its acked
			// ledger survives (AckedKeys) precisely so the invariant checks
			// can catch a replication level that failed to cover it.
			continue
		}
		for _, dev := range m.ds.Devices() {
			if data, ok := m.ds.Get(dev); ok {
				out.PutMerged(dev, data)
			}
		}
	}
	return out
}

// Err returns the first fleet-level failure (router restart, rebalance) or
// any shard supervisor's restart failure.
func (f *Supervisor) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single != nil {
		return f.single.Err()
	}
	if f.lastErr != nil {
		return f.lastErr
	}
	for _, m := range f.members {
		if err := m.sup.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Close disarms the fleet, shuts the router down (waiting for in-flight
// handlers) and closes every live shard.
func (f *Supervisor) Close() error {
	f.mu.Lock()
	f.disarmed = true
	single := f.single
	rt := f.router
	f.router = nil
	members := append([]*member(nil), f.members...)
	f.mu.Unlock()
	if single != nil {
		return single.Close()
	}
	if rt != nil {
		_ = rt.Close()
	}
	var first error
	for _, m := range members {
		if m.live {
			if err := m.sup.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Servers returns the live shard count (1 on the degenerate path).
func (f *Supervisor) Servers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single != nil {
		return 1
	}
	return len(f.liveLocked())
}

// Epoch returns the membership epoch (bumped by every join and leave).
func (f *Supervisor) Epoch() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// Members returns every member name ever admitted, live first then
// departed, each sorted — the fuzz corpus and tests key off these.
func (f *Supervisor) Members() (live, departed []string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, m := range f.members {
		if m.live {
			live = append(live, m.name)
		} else {
			departed = append(departed, m.name)
		}
	}
	sort.Strings(live)
	sort.Strings(departed)
	return live, departed
}

// Crashes sums injected kills fired across every shard.
func (f *Supervisor) Crashes() int { return f.sum((*collect.Supervisor).Crashes) }

// Restarts sums successful shard restarts.
func (f *Supervisor) Restarts() int { return f.sum((*collect.Supervisor).Restarts) }

// Quiesce waits (bounded host time) until every injected crash's restart
// has completed, reporting whether it did. With a write quorum W < R the
// client's ACK no longer waits for every replica, so a study can finish
// while a lagging replica incarnation is still replaying its WAL on its
// own goroutine; restarts always complete, but tests comparing Crashes()
// to Restarts() must let them land first.
func (f *Supervisor) Quiesce(timeout time.Duration) bool {
	//symlint:allow determinism host-time settle for real shard restarts; the simulation has already run
	deadline := time.Now().Add(timeout)
	for {
		if f.Crashes() == f.Restarts() {
			return true
		}
		//symlint:allow determinism host-time settle for real shard restarts; the simulation has already run
		if time.Now().After(deadline) {
			return false
		}
		//symlint:allow determinism host-time settle for real shard restarts; the simulation has already run
		time.Sleep(5 * time.Millisecond)
	}
}

// Uploads sums successful uploads served across every shard and incarnation.
func (f *Supervisor) Uploads() int { return f.sum((*collect.Supervisor).Uploads) }

// Compactions sums snapshot compactions across every shard and incarnation.
func (f *Supervisor) Compactions() int { return f.sum((*collect.Supervisor).Compactions) }

// ServerHandoffs sums the HANDOFF verbs accepted across every shard — the
// receiving side of crash handoffs and rebalance migrations.
func (f *Supervisor) ServerHandoffs() int { return f.sum((*collect.Supervisor).Handoffs) }

func (f *Supervisor) sum(get func(*collect.Supervisor) int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single != nil {
		return get(f.single)
	}
	n := 0
	for _, m := range f.members {
		n += get(m.sup)
	}
	return n
}

// RouterKills returns how many times the router was drawn into a kill
// subset; RouterRestarts how many replacement routers came up.
func (f *Supervisor) RouterKills() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.routerKills
}

// RouterRestarts returns the number of successful router rebinds.
func (f *Supervisor) RouterRestarts() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.routerRestarts
}

// Handoffs returns successful fleet-side replications (crash handoffs and
// rebalance migrations, per device payload); HandoffFailures the
// replications abandoned after every candidate refused; HandoffAborts the
// handoffs/rebalances cut short by the fleet-level crashpoints.
func (f *Supervisor) Handoffs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.handoffs
}

// HandoffFailures returns replications abandoned with no willing peer.
func (f *Supervisor) HandoffFailures() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.handoffFails
}

// HandoffAborts returns handoffs and rebalances cut short partway by the
// during-handoff / during-rebalance crashpoints.
func (f *Supervisor) HandoffAborts() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.aborted
}

// Migrated returns devices whose state was replicated by join/leave
// rebalancing.
func (f *Supervisor) Migrated() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.migrated
}

// Rebalances returns completed join/leave operations.
func (f *Supervisor) Rebalances() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rebalances
}

// CutPower permanently destroys a live shard by name: the process dies and
// never restarts, its dataset dies with the hardware, and — unlike an
// injected kill — the OnCrash handoff window never runs. This is the
// failure write-time replication exists for: with R >= 2 every record the
// shard ever acknowledged already lives on its rendezvous successors, so
// the cut is a non-event for the merged dataset; with R == 1 it is
// acknowledged data loss, on purpose. The fleet's own failure detector
// (not this call) is what eventually suspects the corpse, confirms it dead
// and bumps the epoch.
func (f *Supervisor) CutPower(name string) error {
	f.mu.Lock()
	if f.single != nil {
		f.mu.Unlock()
		return errors.New("fleet: cannot cut power on a single-server fleet")
	}
	var victim *member
	for _, m := range f.members {
		if m.name == name && m.live && !m.cut {
			victim = m
			break
		}
	}
	if victim == nil {
		f.mu.Unlock()
		return fmt.Errorf("fleet: no live shard %q to cut", name)
	}
	victim.cut = true
	f.updateQuorumLocked()
	f.mu.Unlock()
	// Close disarms the supervisor first, so OnCrash never fires: nobody
	// hands this shard's data anywhere. That is the point.
	return victim.sup.Close()
}

// Partition isolates (or reconnects) a live shard from the router: forwards
// and heartbeats to it fail without a dial, while the shard itself keeps
// running, WAL-syncing, and accepting peer traffic. The detector must
// suspect it — never confirm it dead — and routing must flow around it.
func (f *Supervisor) Partition(name string, isolated bool) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single != nil {
		return errors.New("fleet: cannot partition a single-server fleet")
	}
	for _, m := range f.members {
		if m.name == name && m.live && !m.cut {
			m.partitioned = isolated
			return nil
		}
	}
	return fmt.Errorf("fleet: no live shard %q to partition", name)
}

// ReplicationFactor returns the resolved write-time replication factor R
// (1 when replication is off); WriteQuorum the resolved write quorum W.
func (f *Supervisor) ReplicationFactor() int {
	if f.single != nil {
		return 1
	}
	return f.replicateR
}

// WriteQuorum returns the resolved write quorum W (1 when replication is off).
func (f *Supervisor) WriteQuorum() int {
	if f.single != nil {
		return 1
	}
	return f.writeW
}

// Suspicions counts suspicion episodes raised by the failure detector;
// FalseSuspicions the subset raised against a shard that a direct
// (partition-bypassing) probe found alive at that moment — the detector's
// measured false-positive count. ConfirmedDead counts shards declared dead
// (requires process-level evidence, never misses alone); Repairs the
// devices re-replicated by the anti-entropy pass a confirmation triggers.
func (f *Supervisor) Suspicions() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.suspicions
}

// FalseSuspicions counts suspicions of provably-alive shards.
func (f *Supervisor) FalseSuspicions() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.falseSusp
}

// ConfirmedDead counts shards the detector declared dead.
func (f *Supervisor) ConfirmedDead() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.confirmedDead
}

// Repairs counts devices re-replicated by anti-entropy repair.
func (f *Supervisor) Repairs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.repairs
}

// DegradedRequests counts writes refused with the retryable below-quorum
// ERR; DegradedWindows how many times the fleet entered a below-quorum
// window (the transition count, so a single two-shard outage is one window
// however many writes it refused).
func (f *Supervisor) DegradedRequests() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.degradedReqs
}

// DegradedWindows counts transitions into below-quorum operation.
func (f *Supervisor) DegradedWindows() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.degradedWins
}

// Suspected returns the names of currently-suspected shards, sorted.
func (f *Supervisor) Suspected() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var out []string
	for _, m := range f.members {
		if m.suspected {
			out = append(out, m.name)
		}
	}
	sort.Strings(out)
	return out
}

// AckedKeys unions the serialized form of every record any incarnation of
// any shard ever acknowledged for a device — the fleet-wide ground truth
// for the no-acknowledged-data-loss invariant.
func (f *Supervisor) AckedKeys(id string) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single != nil {
		return f.single.AckedKeys(id)
	}
	set := make(map[string]bool)
	for _, m := range f.members {
		for _, k := range m.sup.AckedKeys(id) {
			set[k] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// AckedDevices unions every device any shard ever acknowledged records for.
func (f *Supervisor) AckedDevices() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single != nil {
		return f.single.AckedDevices()
	}
	set := make(map[string]bool)
	for _, m := range f.members {
		for _, id := range m.sup.AckedDevices() {
			set[id] = true
		}
	}
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
