package core

import (
	"symfail/internal/phone"
	"symfail/internal/symbos"
)

// DExc is the baseline comparator the paper discusses in section 3: the
// D_EXC tool "enables collecting panic events generated on a phone.
// However, the tool does not relate panic events to failure manifestations,
// running applications, and phone activities as we do in our study."
//
// It is implemented here exactly at that capability level: a bare RDebug
// subscriber that appends (category, type, time) triples — no heartbeat, no
// running-application snapshot, no activity correlation. Feeding its output
// to the analysis pipeline reproduces Table 2 but yields empty Figures 4-6
// and Tables 3-4, which is the quantitative argument for the paper's richer
// logger design (see the core tests and BenchmarkBaselineDExc).
type DExc struct {
	dev  *phone.Device
	path string
}

// DefaultDExcPath is where D_EXC appends its panic log.
const DefaultDExcPath = "logs/dexc"

// InstallDExc attaches the baseline collector to a device. It can coexist
// with the full logger (both subscribe to RDebug).
func InstallDExc(d *phone.Device, path string) *DExc {
	if path == "" {
		path = DefaultDExcPath
	}
	x := &DExc{dev: d, path: path}
	d.OnBoot(x.startHook)
	return x
}

// Records parses the panic records D_EXC captured.
func (x *DExc) Records() []Record {
	data, ok := x.dev.FS().Read(x.path)
	if !ok {
		return nil
	}
	return ParseRecords(data)
}

// LogBytes returns the raw log for collection.
func (x *DExc) LogBytes() []byte {
	data, _ := x.dev.FS().Read(x.path)
	return data
}

func (x *DExc) startHook(d *phone.Device) {
	d.Kernel().SubscribeRDebug(func(p *symbos.Panic) {
		rec := Record{
			Kind:     KindPanic,
			Time:     int64(p.Time),
			Category: string(p.Category),
			PType:    p.Type,
			// Deliberately no Apps and no Activity: D_EXC cannot see them.
		}
		// Best-effort by design: the real D_EXC drops its record when flash
		// is full, and that loss is part of what the paper measures.
		//symlint:allow errdrop D_EXC log appends are deliberately lossy on full flash, mirroring the instrument being modeled
		d.FS().Append(x.path, FrameRecord(rec))
	})
}
