package analysis

import (
	"math"
	"sort"

	"symfail/internal/sim"
)

// Statistical goodness-of-fit for the failure process. Reporting a single
// MTBF (as section 6 does) implicitly treats failures as a Poisson
// process; this analysis checks how exponential the inter-failure times
// actually are, with a Kolmogorov-Smirnov test.

// ExpFit is the result of fitting an exponential distribution to the
// pooled inter-failure times.
type ExpFit struct {
	// N is the number of inter-failure intervals pooled across devices.
	N int
	// MeanHours is the MLE of the exponential mean.
	MeanHours float64
	// KS is the Kolmogorov-Smirnov statistic against Exp(1/MeanHours).
	KS float64
	// KSCritical05 is the 5% critical value (asymptotic, 1.36/sqrt(N)).
	KSCritical05 float64
	// PassesKS reports KS <= KSCritical05: the exponential hypothesis is
	// not rejected at the 5% level.
	PassesKS bool
}

// InterFailureTimesHours returns the wall-clock gaps between consecutive
// high-level failures (freezes and self-shutdowns), per device, pooled.
func (s *Study) InterFailureTimesHours() []float64 {
	var out []float64
	for _, id := range s.deviceIDs {
		var prev *HLEvent
		for _, hl := range s.hlByDevice[id] {
			if hl.Kind != HLFreeze && hl.Kind != HLSelfShutdown {
				continue
			}
			if prev != nil {
				out = append(out, hl.Time.Sub(prev.Time).Hours())
			}
			prev = hl
		}
	}
	return out
}

// InterFailureExpFit fits the exponential and runs the KS test.
func (s *Study) InterFailureExpFit() ExpFit {
	xs := s.InterFailureTimesHours()
	fit := ExpFit{N: len(xs)}
	if len(xs) == 0 {
		return fit
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	fit.MeanHours = sum / float64(len(xs))
	if fit.MeanHours <= 0 {
		return fit
	}
	sort.Float64s(xs)
	lambda := 1 / fit.MeanHours
	n := float64(len(xs))
	var d float64
	for i, x := range xs {
		f := 1 - math.Exp(-lambda*x)
		lo := math.Abs(f - float64(i)/n)
		hi := math.Abs(float64(i+1)/n - f)
		if lo > d {
			d = lo
		}
		if hi > d {
			d = hi
		}
	}
	fit.KS = d
	fit.KSCritical05 = 1.36 / math.Sqrt(n)
	fit.PassesKS = fit.KS <= fit.KSCritical05
	return fit
}

// BootstrapCI resamples the pooled inter-failure times to attach a
// confidence interval to the single-study MTBF estimate — the error bar
// the paper's section 6 numbers lack. The RNG is seeded for
// reproducibility.
func (s *Study) BootstrapCI(resamples int, seed uint64) (loHours, hiHours float64) {
	xs := s.InterFailureTimesHours()
	if len(xs) < 2 || resamples < 10 {
		return 0, 0
	}
	rng := sim.NewRand(seed)
	means := make([]float64, 0, resamples)
	for i := 0; i < resamples; i++ {
		var sum float64
		for j := 0; j < len(xs); j++ {
			sum += xs[rng.Intn(len(xs))]
		}
		means = append(means, sum/float64(len(xs)))
	}
	sort.Float64s(means)
	lo := means[quantileIndex(len(means), 0.025)]
	hi := means[quantileIndex(len(means), 0.975)]
	return lo, hi
}
