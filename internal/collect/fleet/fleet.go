package fleet

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"symfail/internal/collect"
	"symfail/internal/core"
	"symfail/internal/sim"
)

// Config calibrates a collection fleet.
type Config struct {
	// Servers is the initial shard count. 1 degenerates to exactly the
	// single-supervisor collector of PR 4: same construction, same RNG
	// consumption, no router in the path.
	Servers int
	// MaxStreamBytes / CompactEvery pass through to every shard's
	// SupervisorConfig.
	MaxStreamBytes int
	CompactEvery   int
	// Crash schedules fleet-level kills: every KillEveryMin..KillEveryMax
	// routed requests a non-empty RNG-drawn subset of {shards..., router}
	// dies. Requires Rng when enabled.
	Crash collect.CrashFaults
	// Rng drives the kill schedule, subset draws, crashpoint draws, handoff
	// and rebalance abort cuts, and (via Split children) every shard store's
	// torn-tail lengths. Salt it off the study seed (collectorSeedSalt) so
	// fleet adversity never perturbs device streams.
	Rng *sim.Rand
	// OnRecord taps every acknowledged record on every shard. Calls are
	// serialised across shards under a fleet-level mutex; the same
	// at-least-once delivery caveats as ServerConfig.OnRecord apply.
	OnRecord func(deviceID string, r core.Record)
	// JoinAfter, when >0, adds one shard to the fleet after that many routed
	// requests (a mid-study scale-up with live rebalancing). LeaveAfter,
	// when >0, retires one shard after that many routed requests (draining
	// its devices to the survivors first). Both are one-shot and need
	// Servers > 1 (the degenerate fleet has no router to count requests).
	JoinAfter  int
	LeaveAfter int
}

// member is one shard: a supervised durable server with its own dataset and
// crash store. Members are never removed from the slice — a departed shard
// keeps live=false and its supervisor keeps answering the accounting and
// acked-ledger queries, so nothing it ever acknowledged can silently drop
// out of the invariant checks or the merged dataset.
type member struct {
	name  string
	sup   *collect.Supervisor
	ds    *collect.Dataset
	store *collect.CrashStore
	live  bool
	// armedAt is the routed-request count when a fleet kill was armed on
	// this shard, for the stall-repoint window.
	armedAt int
}

// target is a replication destination snapshot (taken under the fleet
// mutex, used after it is released).
type target struct {
	name, addr string
}

// fleetRepointWindow mirrors the single-supervisor repointWindow: an armed
// kill that waits longer than this many routed requests for its crashpoint
// is repointed at the commit path so injection cannot stall on a shard that
// never compacts.
const fleetRepointWindow = 16

// Supervisor owns a sharded collection fleet across injected crashes: N
// supervised shards behind a device-hash router, fleet-level kill-subset
// injection, crash handoff from dying shards to surviving peers, and live
// join/leave rebalancing. The lifted PR 4 invariant it exists to defend:
// every record any incarnation of any shard ever acknowledged appears
// exactly once in the merged dataset.
type Supervisor struct {
	cfg  Config
	addr string

	// single is the Servers==1 degenerate path: one plain collect.Supervisor,
	// no router, no fleet-level machinery — byte-identical to PR 4.
	single   *collect.Supervisor
	singleDS *collect.Dataset

	tapMu sync.Mutex

	mu             sync.Mutex
	rng            *sim.Rand
	members        []*member
	router         *Router
	epoch          int
	disarmed       bool
	requests       int
	untilKill      int
	joinDone       bool
	leaveDone      bool
	routerKills    int
	routerRestarts int
	handoffs       int
	handoffFails   int
	aborted        int
	rebalances     int
	migrated       int
	abortHandoff   map[*member]bool
	abortRebalance bool
	lastErr        error
}

// New starts a fleet. Servers==1 builds the exact single-server collector
// (no router); Servers>1 builds the shards serially — store RNGs split off
// cfg.Rng in shard order, so the layout is a pure function of the seed —
// then binds the router in front of them.
func New(cfg Config) (*Supervisor, error) {
	if cfg.Servers < 1 {
		return nil, errors.New("fleet: need at least one server")
	}
	if cfg.Crash.Enabled() && cfg.Rng == nil {
		return nil, errors.New("fleet: crash injection needs a sim.Rand")
	}
	if cfg.Servers == 1 {
		if cfg.JoinAfter > 0 || cfg.LeaveAfter > 0 {
			return nil, errors.New("fleet: join/leave needs Servers > 1")
		}
		ds := collect.NewDataset()
		sup, err := collect.NewSupervisor("127.0.0.1:0", ds, collect.SupervisorConfig{
			MaxStreamBytes: cfg.MaxStreamBytes,
			CompactEvery:   cfg.CompactEvery,
			Crash:          cfg.Crash,
			Rng:            cfg.Rng,
			OnRecord:       cfg.OnRecord,
		})
		if err != nil {
			return nil, err
		}
		return &Supervisor{cfg: cfg, single: sup, singleDS: ds, addr: sup.Addr()}, nil
	}
	f := &Supervisor{
		cfg:          cfg,
		rng:          cfg.Rng,
		abortHandoff: make(map[*member]bool),
	}
	fail := func(err error) (*Supervisor, error) {
		for _, m := range f.members {
			_ = m.sup.Close()
		}
		return nil, err
	}
	for i := 0; i < cfg.Servers; i++ {
		m, err := f.newMemberLocked()
		if err != nil {
			return fail(err)
		}
		f.members = append(f.members, m)
	}
	rt, err := newRouter("127.0.0.1:0", f.route, f.beginRequest)
	if err != nil {
		return fail(err)
	}
	f.router = rt
	f.addr = rt.Addr() // pinned: router restarts rebind this address
	if cfg.Crash.Enabled() {
		f.mu.Lock()
		f.drawKillLocked()
		f.mu.Unlock()
	}
	return f, nil
}

// newMemberLocked builds one shard (fresh store, fresh dataset, supervised
// server). Fleet kills arrive via InjectKill, so the shard's own crash
// schedule stays disabled — its supervisor never draws from any RNG.
func (f *Supervisor) newMemberLocked() (*member, error) {
	name := fmt.Sprintf("shard-%02d", len(f.members)+1)
	var storeRng *sim.Rand
	if f.rng != nil {
		storeRng = f.rng.Split()
	}
	m := &member{
		name:  name,
		ds:    collect.NewDataset(),
		store: collect.NewCrashStore(storeRng),
		live:  true,
	}
	scfg := collect.SupervisorConfig{
		MaxStreamBytes: f.cfg.MaxStreamBytes,
		CompactEvery:   f.cfg.CompactEvery,
		Store:          m.store,
		OnCrash:        func() { f.shardCrashed(m) },
	}
	if f.cfg.OnRecord != nil {
		scfg.OnRecord = f.tap
	}
	sup, err := collect.NewSupervisor("127.0.0.1:0", m.ds, scfg)
	if err != nil {
		return nil, err
	}
	m.sup = sup
	return m, nil
}

// tap serialises the shards' record taps onto the caller's OnRecord: with
// one server the handlers already serialise per connection under the server
// mutex, but N shards acknowledge concurrently.
func (f *Supervisor) tap(deviceID string, r core.Record) {
	f.tapMu.Lock()
	defer f.tapMu.Unlock()
	f.cfg.OnRecord(deviceID, r)
}

// Addr returns the fleet's client-facing address (the router's, pinned
// across router kills; the lone server's on the degenerate path).
func (f *Supervisor) Addr() string { return f.addr }

// route resolves a device to its owning live shard's address under the
// current epoch (the router's routing callback).
func (f *Supervisor) route(deviceID string) (string, bool) {
	f.mu.Lock()
	defer f.mu.Unlock()
	m := f.ownerLocked(deviceID)
	if m == nil {
		return "", false
	}
	return m.sup.Addr(), true
}

// ownerLocked is rendezvous hashing over the live members (see Owner).
func (f *Supervisor) ownerLocked(deviceID string) *member {
	var best *member
	var bestScore uint64
	for _, m := range f.members {
		if !m.live {
			continue
		}
		s := rendezvousScore(deviceID, m.name)
		if best == nil || s > bestScore || (s == bestScore && m.name < best.name) {
			best, bestScore = m, s
		}
	}
	return best
}

func (f *Supervisor) liveLocked() []*member {
	var out []*member
	for _, m := range f.members {
		if m.live {
			out = append(out, m)
		}
	}
	return out
}

// targetsLocked snapshots the live replication destinations other than m.
func (f *Supervisor) targetsLocked(not *member) []target {
	var out []target
	for _, m := range f.members {
		if m.live && m != not {
			out = append(out, target{name: m.name, addr: m.sup.Addr()})
		}
	}
	return out
}

// beginRequest is the router's per-request hook. It advances the fleet kill
// countdown, fires drawn kill subsets, repoints stalled shard kills, and
// triggers the one-shot join/leave rebalances. Returns whether the router
// itself was drawn into this request's kill subset — in which case the old
// router is already dead and a fresh one is listening on the pinned address
// by the time this returns.
func (f *Supervisor) beginRequest() bool {
	var doJoin, doLeave, routerDies bool
	f.mu.Lock()
	if f.disarmed {
		f.mu.Unlock()
		return false
	}
	f.requests++
	if f.cfg.JoinAfter > 0 && !f.joinDone && f.requests >= f.cfg.JoinAfter {
		f.joinDone = true
		doJoin = true
	}
	if f.cfg.LeaveAfter > 0 && !f.leaveDone && f.requests >= f.cfg.LeaveAfter {
		f.leaveDone = true
		doLeave = true
	}
	if f.cfg.Crash.Enabled() {
		for _, m := range f.members {
			// A kill armed for a crashpoint a quiet shard never reaches
			// (compaction, mostly) would wait forever; repoint it at the
			// commit path, like the single supervisor's repointWindow.
			if m.live && m.sup.KillArmed() && f.requests-m.armedAt > fleetRepointWindow {
				if m.sup.RepointKill(collect.CrashBeforeWALSync) {
					m.armedAt = f.requests
				}
			}
		}
		f.untilKill--
		if f.untilKill <= 0 {
			routerDies = f.fireKillsLocked()
			f.drawKillLocked()
		}
	}
	f.mu.Unlock()
	if doJoin {
		if err := f.Join(); err != nil {
			f.setErr(err)
		}
	}
	if doLeave {
		if err := f.Leave(); err != nil {
			f.setErr(err)
		}
	}
	if routerDies {
		f.restartRouter()
	}
	return routerDies
}

// drawKillLocked schedules the next fleet kill countdown.
func (f *Supervisor) drawKillLocked() {
	lo, hi := f.cfg.Crash.KillEveryMin, f.cfg.Crash.KillEveryMax
	if lo < 1 {
		lo = 1
	}
	if hi < lo {
		hi = lo
	}
	f.untilKill = lo + f.rng.Intn(hi-lo+1)
}

// fireKillsLocked draws a non-empty subset of {live shards..., router} and
// kills it. Shard kills are armed at a drawn crashpoint out of the five
// server-level points plus two fleet-level ones: "during handoff" (the
// shard dies at the commit path and its own crash handoff is then cut short
// partway, as if the dying process lost its failover race too) and "during
// rebalance" (the next join/leave migration aborts partway through its
// plan). Simultaneous kills — several shards, shards plus the router — are
// one mask draw, so they genuinely overlap.
func (f *Supervisor) fireKillsLocked() (routerDies bool) {
	live := f.liveLocked()
	bits := len(live) + 1 // the +1 bit is the router itself
	mask := 1 + f.rng.Intn((1<<bits)-1)
	for i, m := range live {
		if mask&(1<<i) == 0 {
			continue
		}
		k := f.rng.Intn(collect.NumCrashpoints + 2)
		switch {
		case k < collect.NumCrashpoints:
			if m.sup.InjectKill(collect.Crashpoint(k)) {
				m.armedAt = f.requests
			}
		case k == collect.NumCrashpoints:
			// During-handoff crashpoint: kill at the commit path, then cut
			// the dying shard's handoff short after a drawn prefix.
			f.abortHandoff[m] = true
			if m.sup.InjectKill(collect.CrashBeforeWALSync) {
				m.armedAt = f.requests
			}
		default:
			// During-rebalance crashpoint: the next join/leave migration
			// stops partway through its plan.
			f.abortRebalance = true
		}
	}
	if mask&(1<<len(live)) != 0 {
		routerDies = true
		f.routerKills++
	}
	return routerDies
}

// shardCrashed is every shard's OnCrash hook: it runs on the dying
// incarnation's goroutine in the window where the store holds the dead
// shard's synced state and no replacement is listening. It recovers the
// store read-only-in-effect (recovery normalises the medium, which is
// exactly what the restart's own recovery would do — the double recovery is
// byte-identical and write-free) and replicates the acked state to the
// surviving peers.
//
// Handoff is replication, not movement: the source WAL and dataset keep
// everything, so an aborted or failed handoff can lose nothing — the worst
// case is the same record reaching the merge from two shards, which the
// canonical merge deduplicates.
func (f *Supervisor) shardCrashed(m *member) {
	files, _ := collect.RecoverState(m.store)
	f.mu.Lock()
	if f.disarmed || !m.live || len(files) == 0 {
		delete(f.abortHandoff, m)
		f.mu.Unlock()
		return
	}
	targets := f.targetsLocked(m)
	devs := sortedKeys(files)
	cut := len(devs)
	if f.abortHandoff[m] {
		delete(f.abortHandoff, m)
		cut = f.rng.Intn(len(devs))
		f.aborted++
	}
	f.mu.Unlock()
	if len(targets) == 0 {
		return
	}
	for _, dev := range devs[:cut] {
		f.replicate(dev, collect.HandoffLog, files[dev], targets)
	}
}

// replicate hands one device's bytes to the first target that takes them,
// preferring the device's rendezvous owner. A peer may itself be
// mid-restart (simultaneous kills), so each candidate gets bounded retries;
// when every candidate refuses, the failure is counted and abandoned —
// safe, because handoff is replication and the source keeps its copy.
func (f *Supervisor) replicate(dev, kind string, data []byte, targets []target) bool {
	ordered := append([]target(nil), targets...)
	sort.Slice(ordered, func(i, j int) bool {
		si, sj := rendezvousScore(dev, ordered[i].name), rendezvousScore(dev, ordered[j].name)
		if si != sj {
			return si > sj
		}
		return ordered[i].name < ordered[j].name
	})
	for _, t := range ordered {
		for attempt := 0; attempt < 3; attempt++ {
			if attempt > 0 {
				// Host-time pause while a real TCP peer rebinds; never
				// observable by the simulation.
				//symlint:allow determinism host-time backoff towards a real restarting TCP peer
				time.Sleep(time.Duration(attempt*attempt) * 2 * time.Millisecond)
			}
			if collect.Handoff(t.addr, dev, kind, data) == nil {
				f.mu.Lock()
				f.handoffs++
				f.mu.Unlock()
				return true
			}
		}
	}
	f.mu.Lock()
	f.handoffFails++
	f.mu.Unlock()
	return false
}

// Join adds one shard mid-study and rebalances: the epoch bumps first (new
// requests for stolen devices route to the joiner immediately; uploaders
// renegotiate through OFFSET when their stream is elsewhere), then every
// device whose rendezvous owner moved to the joiner has its merged log —
// and live chunk stream, if any — replicated over. The donors keep their
// copies (replication, not movement), a deliberate over-approximation that
// makes an aborted rebalance safe by construction.
func (f *Supervisor) Join() error {
	f.mu.Lock()
	if f.single != nil {
		f.mu.Unlock()
		return errors.New("fleet: cannot join a single-server fleet")
	}
	if f.disarmed {
		f.mu.Unlock()
		return errors.New("fleet: closed")
	}
	joiner, err := f.newMemberLocked()
	if err != nil {
		f.mu.Unlock()
		return fmt.Errorf("fleet: join: %w", err)
	}
	donors := f.liveLocked()
	f.members = append(f.members, joiner)
	f.epoch++
	f.rebalances++
	names := make([]string, 0, len(donors)+1)
	for _, m := range donors {
		names = append(names, m.name)
	}
	names = append(names, joiner.name)
	type planEntry struct {
		dev  string
		from *member
	}
	var plan []planEntry
	for _, m := range donors {
		for _, dev := range m.ds.Devices() {
			if owner, ok := Owner(dev, names); ok && owner == joiner.name {
				plan = append(plan, planEntry{dev: dev, from: m})
			}
		}
	}
	sort.Slice(plan, func(i, j int) bool { return plan[i].dev < plan[j].dev })
	cut := len(plan)
	if f.abortRebalance && len(plan) > 0 {
		f.abortRebalance = false
		cut = f.rng.Intn(len(plan))
		f.aborted++
	}
	dst := []target{{name: joiner.name, addr: joiner.sup.Addr()}}
	f.mu.Unlock()
	for _, p := range plan[:cut] {
		data, ok := p.from.ds.Get(p.dev)
		if !ok {
			continue
		}
		if !f.replicate(p.dev, collect.HandoffLog, data, dst) {
			continue
		}
		if stream, ok := p.from.sup.Stream(p.dev); ok && len(stream) > 0 {
			f.replicate(p.dev, collect.HandoffStream, stream, dst)
		}
		f.mu.Lock()
		f.migrated++
		f.mu.Unlock()
	}
	return nil
}

// Leave retires the longest-serving live shard mid-study. It drains first,
// while the leaver is still routable — every device's merged log and live
// stream replicate to its post-leave rendezvous owner — then flips the
// shard dead, bumps the epoch and closes its supervisor. Records that
// arrive mid-drain land in the leaver's dataset and stay there: departed
// shards' datasets are retained by the merge, so the drain/arrival race
// cannot lose acknowledged data.
func (f *Supervisor) Leave() error {
	f.mu.Lock()
	if f.single != nil {
		f.mu.Unlock()
		return errors.New("fleet: cannot leave a single-server fleet")
	}
	if f.disarmed {
		f.mu.Unlock()
		return errors.New("fleet: closed")
	}
	live := f.liveLocked()
	if len(live) < 2 {
		f.mu.Unlock()
		return errors.New("fleet: leave needs at least two live shards")
	}
	leaver := live[0]
	survivors := live[1:]
	names := make([]string, 0, len(survivors))
	targets := make([]target, 0, len(survivors))
	for _, m := range survivors {
		names = append(names, m.name)
		targets = append(targets, target{name: m.name, addr: m.sup.Addr()})
	}
	plan := leaver.ds.Devices()
	sort.Strings(plan)
	cut := len(plan)
	if f.abortRebalance && len(plan) > 0 {
		f.abortRebalance = false
		cut = f.rng.Intn(len(plan))
		f.aborted++
	}
	f.rebalances++
	f.mu.Unlock()
	for _, dev := range plan[:cut] {
		data, ok := leaver.ds.Get(dev)
		if !ok {
			continue
		}
		if !f.replicate(dev, collect.HandoffLog, data, targets) {
			continue
		}
		if stream, ok := leaver.sup.Stream(dev); ok && len(stream) > 0 {
			f.replicate(dev, collect.HandoffStream, stream, targets)
		}
		f.mu.Lock()
		f.migrated++
		f.mu.Unlock()
	}
	f.mu.Lock()
	leaver.live = false
	f.epoch++
	f.mu.Unlock()
	// The leaver may be mid-crash, its listener already torn down by the
	// kill — an already-closed connection is not a failure of the leave.
	_ = leaver.sup.Close()
	return nil
}

// restartRouter replaces a killed router on the pinned address. Runs on the
// doomed request's handler goroutine, synchronously — by the time the
// killing request returns, clients dialing the fleet address reach the new
// incarnation (their in-flight requests died unanswered, like any crash).
func (f *Supervisor) restartRouter() {
	f.mu.Lock()
	old := f.router
	f.mu.Unlock()
	if old != nil {
		old.kill()
	}
	var rt *Router
	var err error
	for attempt := 0; attempt < 10; attempt++ {
		if attempt > 0 {
			// Host-time pause for the dead listener's port to free up.
			//symlint:allow determinism host-time pause rebinding a real TCP listener
			time.Sleep(time.Duration(attempt) * time.Millisecond)
		}
		rt, err = newRouter(f.addr, f.route, f.beginRequest)
		if err == nil {
			break
		}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if err != nil {
		f.lastErr = fmt.Errorf("fleet: router restart: %w", err)
		f.router = nil
		return
	}
	if f.disarmed {
		go rt.Close() // Close raced the restart; do not leak the new router
		f.router = nil
		return
	}
	f.router = rt
	f.routerRestarts++
}

func (f *Supervisor) setErr(err error) {
	f.mu.Lock()
	if f.lastErr == nil {
		f.lastErr = err
	}
	f.mu.Unlock()
}

// MergedDataset folds every shard's dataset — live and departed — into one
// canonical dataset: the fleet-wide view a study analysis runs over. The
// union over all members is what makes the over-approximations (handoff as
// replication, drain races, retained departed datasets) correct: a record
// may exist on several shards, but the canonical merge emits it exactly
// once.
func (f *Supervisor) MergedDataset() *collect.Dataset {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single != nil {
		return f.singleDS
	}
	out := collect.NewDataset()
	for _, m := range f.members {
		for _, dev := range m.ds.Devices() {
			if data, ok := m.ds.Get(dev); ok {
				out.PutMerged(dev, data)
			}
		}
	}
	return out
}

// Err returns the first fleet-level failure (router restart, rebalance) or
// any shard supervisor's restart failure.
func (f *Supervisor) Err() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single != nil {
		return f.single.Err()
	}
	if f.lastErr != nil {
		return f.lastErr
	}
	for _, m := range f.members {
		if err := m.sup.Err(); err != nil {
			return err
		}
	}
	return nil
}

// Close disarms the fleet, shuts the router down (waiting for in-flight
// handlers) and closes every live shard.
func (f *Supervisor) Close() error {
	f.mu.Lock()
	f.disarmed = true
	single := f.single
	rt := f.router
	f.router = nil
	members := append([]*member(nil), f.members...)
	f.mu.Unlock()
	if single != nil {
		return single.Close()
	}
	if rt != nil {
		_ = rt.Close()
	}
	var first error
	for _, m := range members {
		if m.live {
			if err := m.sup.Close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Servers returns the live shard count (1 on the degenerate path).
func (f *Supervisor) Servers() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single != nil {
		return 1
	}
	return len(f.liveLocked())
}

// Epoch returns the membership epoch (bumped by every join and leave).
func (f *Supervisor) Epoch() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.epoch
}

// Members returns every member name ever admitted, live first then
// departed, each sorted — the fuzz corpus and tests key off these.
func (f *Supervisor) Members() (live, departed []string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, m := range f.members {
		if m.live {
			live = append(live, m.name)
		} else {
			departed = append(departed, m.name)
		}
	}
	sort.Strings(live)
	sort.Strings(departed)
	return live, departed
}

// Crashes sums injected kills fired across every shard.
func (f *Supervisor) Crashes() int { return f.sum((*collect.Supervisor).Crashes) }

// Restarts sums successful shard restarts.
func (f *Supervisor) Restarts() int { return f.sum((*collect.Supervisor).Restarts) }

// Uploads sums successful uploads served across every shard and incarnation.
func (f *Supervisor) Uploads() int { return f.sum((*collect.Supervisor).Uploads) }

// Compactions sums snapshot compactions across every shard and incarnation.
func (f *Supervisor) Compactions() int { return f.sum((*collect.Supervisor).Compactions) }

// ServerHandoffs sums the HANDOFF verbs accepted across every shard — the
// receiving side of crash handoffs and rebalance migrations.
func (f *Supervisor) ServerHandoffs() int { return f.sum((*collect.Supervisor).Handoffs) }

func (f *Supervisor) sum(get func(*collect.Supervisor) int) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single != nil {
		return get(f.single)
	}
	n := 0
	for _, m := range f.members {
		n += get(m.sup)
	}
	return n
}

// RouterKills returns how many times the router was drawn into a kill
// subset; RouterRestarts how many replacement routers came up.
func (f *Supervisor) RouterKills() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.routerKills
}

// RouterRestarts returns the number of successful router rebinds.
func (f *Supervisor) RouterRestarts() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.routerRestarts
}

// Handoffs returns successful fleet-side replications (crash handoffs and
// rebalance migrations, per device payload); HandoffFailures the
// replications abandoned after every candidate refused; HandoffAborts the
// handoffs/rebalances cut short by the fleet-level crashpoints.
func (f *Supervisor) Handoffs() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.handoffs
}

// HandoffFailures returns replications abandoned with no willing peer.
func (f *Supervisor) HandoffFailures() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.handoffFails
}

// HandoffAborts returns handoffs and rebalances cut short partway by the
// during-handoff / during-rebalance crashpoints.
func (f *Supervisor) HandoffAborts() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.aborted
}

// Migrated returns devices whose state was replicated by join/leave
// rebalancing.
func (f *Supervisor) Migrated() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.migrated
}

// Rebalances returns completed join/leave operations.
func (f *Supervisor) Rebalances() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.rebalances
}

// AckedKeys unions the serialized form of every record any incarnation of
// any shard ever acknowledged for a device — the fleet-wide ground truth
// for the no-acknowledged-data-loss invariant.
func (f *Supervisor) AckedKeys(id string) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single != nil {
		return f.single.AckedKeys(id)
	}
	set := make(map[string]bool)
	for _, m := range f.members {
		for _, k := range m.sup.AckedKeys(id) {
			set[k] = true
		}
	}
	out := make([]string, 0, len(set))
	for k := range set {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// AckedDevices unions every device any shard ever acknowledged records for.
func (f *Supervisor) AckedDevices() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.single != nil {
		return f.single.AckedDevices()
	}
	set := make(map[string]bool)
	for _, m := range f.members {
		for _, id := range m.sup.AckedDevices() {
			set[id] = true
		}
	}
	out := make([]string, 0, len(set))
	for id := range set {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
