package collect

import (
	"errors"
	"hash/crc32"
	"testing"
	"time"

	"symfail/internal/core"
	"symfail/internal/phone"
	"symfail/internal/sim"
)

// scriptTransport is an in-memory Transport whose failures are scripted one
// call at a time, so each uploader counter can be pinned to an exact value.
type scriptTransport struct {
	streams map[string][]byte

	refuseChunk  int // refuse the next N chunk calls (no bytes reach the wire)
	failChunk    int // fail the next N chunk calls after the bytes hit the wire
	refuseOffset int
	failOffset   int
}

func newScriptTransport() *scriptTransport {
	return &scriptTransport{streams: make(map[string][]byte)}
}

func (s *scriptTransport) UploadChunk(addr, id string, off int, chunk []byte) (int, error) {
	if s.refuseChunk > 0 {
		s.refuseChunk--
		return 0, ErrRefused
	}
	if s.failChunk > 0 {
		s.failChunk--
		return 0, errors.New("injected: connection dropped mid-transfer")
	}
	st := s.streams[id]
	if off > len(st) {
		return 0, errors.New("injected: gap")
	}
	st = append(st[:off:off], chunk...)
	s.streams[id] = st
	return len(st), nil
}

func (s *scriptTransport) Offset(addr, id string) (int, uint32, error) {
	if s.refuseOffset > 0 {
		s.refuseOffset--
		return 0, 0, ErrRefused
	}
	if s.failOffset > 0 {
		s.failOffset--
		return 0, 0, errors.New("injected: offset query failed")
	}
	st := s.streams[id]
	return len(st), crc32.Checksum(st, castagnoli), nil
}

// counterRig boots one quiet phone with a logger and returns it with an
// uploader wired to the script transport. The engine has run long enough
// that the log is non-empty; tests then call uploadNow directly to script
// the exact attempt sequence.
func counterRig(t *testing.T, seed uint64, cfg UploaderConfig) (*sim.Engine, *Uploader) {
	t.Helper()
	eng := sim.NewEngine()
	d := phone.NewDevice("ctr-dev", eng, quietConfig(seed))
	l := core.Install(d, core.Config{})
	u := AttachUploaderWith(d, "scripted", l.Config().LogPath, cfg)
	d.Enroll(sim.Epoch)
	if err := eng.Run(sim.Epoch.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}
	return eng, u
}

// TestUploaderRetriesCounter drives the backoff timer through two failures:
// the periodic tick fails, a first retry fails on the OFFSET renegotiation,
// a second retry succeeds. Retries counts exactly the timer-fired attempts.
func TestUploaderRetriesCounter(t *testing.T) {
	tr := newScriptTransport()
	tr.failChunk = 1
	tr.failOffset = 1
	eng := sim.NewEngine()
	d := phone.NewDevice("ctr-dev", eng, quietConfig(11))
	l := core.Install(d, core.Config{})
	u := AttachUploaderWith(d, "scripted", l.Config().LogPath, UploaderConfig{
		Every:     6 * time.Hour,
		RetryBase: 30 * time.Minute,
		RetryMax:  4 * time.Hour,
		Transport: tr,
	})
	d.Enroll(sim.Epoch)
	// Tick at 6 h fails; retry at 6 h 30 min fails on OFFSET; the backoff
	// doubles and the retry at 7 h 30 min succeeds. Stop before the next
	// periodic tick at 12 h.
	if err := eng.Run(sim.Epoch.Add(9 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if u.Attempts() != 3 || u.Successes() != 1 {
		t.Errorf("attempts=%d successes=%d, want 3/1", u.Attempts(), u.Successes())
	}
	if u.Retries() != 2 {
		t.Errorf("Retries = %d, want 2 (both timer-fired attempts)", u.Retries())
	}
	if u.Resumes() != 1 {
		t.Errorf("Resumes = %d, want 1 (one successful OFFSET renegotiation)", u.Resumes())
	}
	if u.Reconnects() != 1 {
		t.Errorf("Reconnects = %d, want 1 (one success directly after failures)", u.Reconnects())
	}
	if u.LastErr() != nil {
		t.Errorf("LastErr = %v after a successful upload", u.LastErr())
	}
}

// TestUploaderOffsetRegressionRewindsAndCounts scripts the crash-recovery
// protocol end to end: the server loses the un-synced half of the stream,
// the client renegotiates via OFFSET, rewinds to the server's authoritative
// offset and re-sends — and BytesRetransmitted counts exactly the rewound
// bytes, with a refused attempt in the middle contributing zero.
func TestUploaderOffsetRegressionRewindsAndCounts(t *testing.T) {
	tr := newScriptTransport()
	_, u := counterRig(t, 12, UploaderConfig{Every: 24 * time.Hour, Transport: tr})

	u.uploadNow() // clean first upload
	if u.Successes() != 1 {
		t.Fatalf("setup upload failed: %v", u.LastErr())
	}
	full := len(tr.streams["ctr-dev"])
	if full == 0 {
		t.Fatal("nothing uploaded")
	}
	if u.BytesRetransmitted() != 0 {
		t.Fatalf("BytesRetransmitted = %d before any re-send", u.BytesRetransmitted())
	}

	// The server crashes and loses the un-synced second half of the stream;
	// the client's next attempt fails, arming a resync.
	kept := full / 2
	tr.streams["ctr-dev"] = tr.streams["ctr-dev"][:kept]
	tr.failChunk = 1
	u.uploadNow()
	if u.LastErr() == nil {
		t.Fatal("scripted failure did not register")
	}

	// Resync sees the regression and rewinds, but the re-send itself is
	// refused: no bytes flowed, so nothing counts as retransmitted.
	tr.refuseChunk = 1
	u.uploadNow()
	if u.Resumes() != 1 {
		t.Errorf("Resumes = %d after the OFFSET renegotiation, want 1", u.Resumes())
	}
	if u.BytesRetransmitted() != 0 {
		t.Errorf("BytesRetransmitted = %d after a refused attempt, want 0", u.BytesRetransmitted())
	}

	// The next attempt reaches the wire and re-sends everything past the
	// server's offset — full-kept bytes below the sent high-water mark.
	u.uploadNow()
	if u.LastErr() != nil {
		t.Fatalf("final attempt failed: %v", u.LastErr())
	}
	if got, want := u.BytesRetransmitted(), int64(full-kept); got != want {
		t.Errorf("BytesRetransmitted = %d, want %d (the rewound tail)", got, want)
	}
	if len(tr.streams["ctr-dev"]) != full {
		t.Errorf("server stream = %d bytes after recovery, want %d", len(tr.streams["ctr-dev"]), full)
	}
	if u.Reconnects() != 1 {
		t.Errorf("Reconnects = %d, want 1", u.Reconnects())
	}
}

// TestUploaderLastErrClearedByEveryVerb: LastErr means "currently failing".
// Any successful round-trip — OFFSET included — clears it; a refusal sets
// it to the sentinel the caller can test with errors.Is.
func TestUploaderLastErrClearedByEveryVerb(t *testing.T) {
	tr := newScriptTransport()
	_, u := counterRig(t, 13, UploaderConfig{Every: 24 * time.Hour, Transport: tr})

	tr.refuseOffset = 1
	tr.failChunk = 1
	u.uploadNow() // chunk fails → currently failing
	u.uploadNow() // resync refused → still failing, with the refusal error
	if !errors.Is(u.LastErr(), ErrRefused) {
		t.Errorf("LastErr = %v, want the ErrRefused sentinel", u.LastErr())
	}
	u.uploadNow() // OFFSET and chunk both succeed
	if u.LastErr() != nil {
		t.Errorf("LastErr = %v after full success, want nil", u.LastErr())
	}
	if u.Reconnects() != 1 {
		t.Errorf("Reconnects = %d, want 1", u.Reconnects())
	}
}

// TestUploaderRotationResetsHighWater: a log that is rewritten wholesale (a
// master reset) gets a new identity — re-sending the fresh file from zero
// is new data, not retransmission.
func TestUploaderRotationResetsHighWater(t *testing.T) {
	tr := newScriptTransport()
	eng := sim.NewEngine()
	d := phone.NewDevice("ctr-dev", eng, quietConfig(14))
	l := core.Install(d, core.Config{})
	u := AttachUploaderWith(d, "scripted", l.Config().LogPath, UploaderConfig{
		Every: 24 * time.Hour, Transport: tr,
	})
	d.Enroll(sim.Epoch)
	if err := eng.Run(sim.Epoch.Add(time.Hour)); err != nil {
		t.Fatal(err)
	}

	u.uploadNow()
	if u.Successes() != 1 {
		t.Fatalf("setup upload failed: %v", u.LastErr())
	}

	// Rewrite the log with unrelated content: the acknowledged prefix no
	// longer matches, so the uploader detects the new identity and starts
	// the stream over from zero. The server lost the stream in the same
	// master reset. Without the high-water reset, this full send from
	// offset 0 would all sit below the old mark and be miscounted as
	// retransmission.
	fresh := walTestRecords(1000, 1001)
	if !d.FS().Write(l.Config().LogPath, fresh) {
		t.Fatal("FS.Write failed")
	}
	tr.streams["ctr-dev"] = nil
	u.uploadNow()
	if u.LastErr() != nil {
		t.Fatalf("re-send failed: %v", u.LastErr())
	}
	if u.BytesRetransmitted() != 0 {
		t.Errorf("BytesRetransmitted = %d after a rotation, want 0 — fresh bytes are not re-sends",
			u.BytesRetransmitted())
	}
	if string(tr.streams["ctr-dev"]) != string(fresh) {
		t.Errorf("server stream = %q, want the fresh log", tr.streams["ctr-dev"])
	}
}
