package phone

import (
	"fmt"
	"sort"
)

// FS is the phone's flash filesystem. It persists across reboots, freezes
// and battery pulls — which is precisely why the paper's logger can infer a
// freeze at the next boot: the last heartbeat record survives on flash.
type FS struct {
	files  map[string][]byte
	writes uint64
}

// NewFS returns an empty filesystem.
func NewFS() *FS {
	return &FS{files: make(map[string][]byte)}
}

// Write replaces the contents of path.
func (f *FS) Write(path string, data []byte) {
	f.files[path] = append([]byte(nil), data...)
	f.writes++
}

// Append adds data to the end of path, creating it if needed.
func (f *FS) Append(path string, data []byte) {
	f.files[path] = append(f.files[path], data...)
	f.writes++
}

// Read returns the contents of path and whether it exists. The returned
// slice is a copy; callers cannot corrupt the stored file.
func (f *FS) Read(path string) ([]byte, bool) {
	data, ok := f.files[path]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), data...), true
}

// Delete removes path (missing paths are fine).
func (f *FS) Delete(path string) { delete(f.files, path) }

// Exists reports whether path is present.
func (f *FS) Exists(path string) bool {
	_, ok := f.files[path]
	return ok
}

// Size returns the length of path in bytes (0 when missing).
func (f *FS) Size(path string) int { return len(f.files[path]) }

// TotalSize returns the number of bytes stored across all files.
func (f *FS) TotalSize() int {
	total := 0
	for _, d := range f.files {
		total += len(d)
	}
	return total
}

// Writes returns the cumulative number of write operations (flash wear).
func (f *FS) Writes() uint64 { return f.writes }

// List returns all paths in lexical order.
func (f *FS) List() []string {
	out := make([]string, 0, len(f.files))
	for p := range f.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// MasterReset wipes the filesystem — the "all settings are reset to the
// factory settings and the user's content is removed" recovery action the
// forum study describes for service-centre visits.
func (f *FS) MasterReset() {
	f.files = make(map[string][]byte)
}

// String summarises the filesystem for diagnostics.
func (f *FS) String() string {
	return fmt.Sprintf("fs{files=%d bytes=%d writes=%d}", len(f.files), f.TotalSize(), f.writes)
}
