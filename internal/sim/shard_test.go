package sim

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestRunShardsCoversEveryShard(t *testing.T) {
	for _, workers := range []int{0, 1, 2, 3, 7, 64} {
		const n = 20
		var ran [n]int32
		err := RunShards(n, workers, func(i int) error {
			atomic.AddInt32(&ran[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range ran {
			if c != 1 {
				t.Errorf("workers=%d: shard %d ran %d times, want 1", workers, i, c)
			}
		}
	}
}

func TestRunShardsSerialOrder(t *testing.T) {
	var order []int
	err := RunShards(5, 1, func(i int) error {
		order = append(order, i) // single worker: no synchronisation needed
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, got := range order {
		if got != i {
			t.Fatalf("serial run visited shards %v, want ascending order", order)
		}
	}
}

// TestRunShardsLowestIndexError pins the deterministic error contract: no
// matter which shard fails first in wall-clock time, the reported error is
// the lowest-indexed one, and every shard still runs.
func TestRunShardsLowestIndexError(t *testing.T) {
	errLow, errHigh := errors.New("low"), errors.New("high")
	var ran int32
	err := RunShards(8, 4, func(i int) error {
		atomic.AddInt32(&ran, 1)
		switch i {
		case 2:
			// Give the higher-indexed failure every chance to finish first.
			time.Sleep(5 * time.Millisecond)
			return errLow
		case 6:
			return errHigh
		}
		return nil
	})
	if err != errLow {
		t.Errorf("got error %v, want the lowest-indexed shard's (%v)", err, errLow)
	}
	if ran != 8 {
		t.Errorf("%d shards ran, want all 8 (a failing shard must not cancel its siblings)", ran)
	}
}

func TestRunShardsSerialStopsOnError(t *testing.T) {
	boom := errors.New("boom")
	var ran int
	err := RunShards(5, 1, func(i int) error {
		ran++
		if i == 2 {
			return boom
		}
		return nil
	})
	if err != boom {
		t.Fatalf("got %v, want %v", err, boom)
	}
	if ran != 3 {
		t.Errorf("serial run executed %d shards after the failure, want stop at shard 2", ran)
	}
}

func TestRunShardsZeroShards(t *testing.T) {
	if err := RunShards(0, 4, func(int) error { t.Error("fn called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

// TestRunShardsBoundedConcurrency checks the pool really is bounded: the
// number of simultaneously live shard functions never exceeds the worker
// count.
func TestRunShardsBoundedConcurrency(t *testing.T) {
	const workers = 3
	var live, peak int32
	var mu sync.Mutex
	err := RunShards(24, workers, func(int) error {
		now := atomic.AddInt32(&live, 1)
		mu.Lock()
		if now > peak {
			peak = now
		}
		mu.Unlock()
		time.Sleep(time.Millisecond)
		atomic.AddInt32(&live, -1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if peak > workers {
		t.Errorf("observed %d concurrent shards, want <= %d", peak, workers)
	}
}
