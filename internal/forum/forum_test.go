package forum

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"symfail/internal/sim"
)

func TestGenerateCounts(t *testing.T) {
	cfg := DefaultGeneratorConfig(1)
	posts := Generate(cfg)
	if len(posts) != cfg.FailureReports+cfg.NoisePosts {
		t.Fatalf("posts = %d", len(posts))
	}
	failures := 0
	for _, p := range posts {
		if p.IsFailure {
			failures++
		}
		if p.Vendor == "" || p.Model == "" || p.Text == "" || p.Forum == "" {
			t.Fatalf("incomplete post: %+v", p)
		}
	}
	if failures != cfg.FailureReports {
		t.Errorf("failure reports = %d", failures)
	}
	// IDs are unique and sequential.
	seen := make(map[int]bool)
	for _, p := range posts {
		if p.ID <= 0 || p.ID > len(posts) || seen[p.ID] {
			t.Fatalf("bad ID %d", p.ID)
		}
		seen[p.ID] = true
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultGeneratorConfig(7))
	b := Generate(DefaultGeneratorConfig(7))
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("post %d diverged", i)
		}
	}
	c := Generate(DefaultGeneratorConfig(8))
	same := 0
	for i := range a {
		if a[i].Text == c[i].Text {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical corpora")
	}
}

func TestClassifierAccuracy(t *testing.T) {
	posts := Generate(DefaultGeneratorConfig(3))
	acc := ClassificationAccuracy(posts)
	if acc < 0.97 {
		t.Errorf("classification accuracy = %.3f, want >= 0.97", acc)
	}
}

func TestClassifyExamplesFromPaper(t *testing.T) {
	// The two verbatim user reports quoted in section 4.
	c := Classify(Post{Text: "the phone freezes whenever I try to write a text message, and stays frozen until I take the battery out"})
	if !c.IsFailure || c.Type != Freeze || c.Recovery != RecBattery || c.Activity != ActText {
		t.Errorf("paper example 1 = %+v", c)
	}
	if c.Severity != SevMedium {
		t.Errorf("severity = %v", c.Severity)
	}
	c = Classify(Post{Text: "the phone exhibits random wallpaper disappearing and power cycling, due to UI memory leaks"})
	if !c.IsFailure || c.Type != Unstable {
		t.Errorf("paper example 2 = %+v", c)
	}
}

func TestClassifyNoiseRejected(t *testing.T) {
	c := Classify(Post{Text: "battery life on the Nokia 3310 is about two days for me, normal usage"})
	if c.IsFailure {
		t.Error("noise post classified as failure")
	}
	if Classify(Post{Text: ""}).IsFailure {
		t.Error("empty post classified as failure")
	}
}

func TestSeverityOf(t *testing.T) {
	cases := map[Recovery]Severity{
		RecService:    SevHigh,
		RecReboot:     SevMedium,
		RecBattery:    SevMedium,
		RecRepeat:     SevLow,
		RecWait:       SevLow,
		RecUnreported: SevUnknown,
	}
	for rec, want := range cases {
		if got := SeverityOf(rec); got != want {
			t.Errorf("SeverityOf(%s) = %s, want %s", rec, got, want)
		}
	}
}

func TestTable1TargetSumsTo100(t *testing.T) {
	var total float64
	for _, recs := range Table1Target {
		for _, v := range recs {
			total += v
		}
	}
	if math.Abs(total-100) > 0.2 {
		t.Errorf("Table 1 target sums to %v", total)
	}
}

func TestAnalyzeReproducesTable1Shape(t *testing.T) {
	posts := Generate(DefaultGeneratorConfig(5))
	rep := Analyze(posts)
	if rep.PostsScanned != len(posts) {
		t.Errorf("scanned = %d", rep.PostsScanned)
	}
	if rep.FailureReports < 500 || rep.FailureReports > 560 {
		t.Errorf("failure reports = %d, want ~533", rep.FailureReports)
	}
	// Marginals within a few points of the paper (sampling noise).
	wantTypes := map[FailureType]float64{
		OutputFail:   36.3,
		Freeze:       25.3,
		Unstable:     18.5,
		SelfShutdown: 16.9,
		InputFail:    3.0,
	}
	for ft, want := range wantTypes {
		got := rep.TypePercent[ft]
		if math.Abs(got-want) > 5 {
			t.Errorf("%s = %.1f%%, want ~%.1f%%", ft, got, want)
		}
	}
	order := rep.TypesByFrequency()
	if order[0] != OutputFail || order[len(order)-1] != InputFail {
		t.Errorf("frequency order = %v", order)
	}
	// Joint cells near target for the big cells.
	if got := rep.JointPercent[Freeze][RecBattery]; math.Abs(got-9.01) > 3.5 {
		t.Errorf("freeze/battery = %.2f, want ~9.01", got)
	}
	if got := rep.JointPercent[OutputFail][RecReboot]; math.Abs(got-8.80) > 3.5 {
		t.Errorf("output/reboot = %.2f, want ~8.80", got)
	}
	// Joint percentages sum to 100.
	var total float64
	for _, recs := range rep.JointPercent {
		for _, v := range recs {
			total += v
		}
	}
	if math.Abs(total-100) > 0.01 {
		t.Errorf("joint percent total = %v", total)
	}
}

func TestAnalyzeSeverityAndActivity(t *testing.T) {
	rep := Analyze(Generate(DefaultGeneratorConfig(9)))
	// Severity: medium = reboot+battery ~25%, high = service ~24.7%.
	if got := rep.SeverityPercent[SevHigh]; math.Abs(got-24.7) > 5 {
		t.Errorf("high severity = %.1f%%", got)
	}
	if got := rep.SeverityPercent[SevMedium]; math.Abs(got-25.1) > 5 {
		t.Errorf("medium severity = %.1f%%", got)
	}
	// Activity correlations of section 4.1.
	if got := rep.ActivityPercent[ActCall]; math.Abs(got-13) > 4 {
		t.Errorf("voice-call correlation = %.1f%%, want ~13%%", got)
	}
	if got := rep.ActivityPercent[ActText]; math.Abs(got-5.4) > 3 {
		t.Errorf("text correlation = %.1f%%, want ~5.4%%", got)
	}
	// Smart phones over-represented relative to their 6.3% market share.
	if rep.SmartShare < 0.15 || rep.SmartShare > 0.30 {
		t.Errorf("smart share = %.3f, want ~0.223", rep.SmartShare)
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	rep := Analyze(nil)
	if rep.FailureReports != 0 || rep.PostsScanned != 0 {
		t.Errorf("empty report = %+v", rep)
	}
	if ClassificationAccuracy(nil) != 0 {
		t.Error("accuracy of empty corpus should be 0")
	}
}

func TestSmartPhonesGetSmartModels(t *testing.T) {
	posts := Generate(DefaultGeneratorConfig(11))
	smartModels := map[string]bool{}
	for _, v := range vendors {
		for _, m := range v.smart {
			smartModels[m] = true
		}
	}
	for _, p := range posts {
		if p.Smart && !smartModels[p.Model] {
			t.Fatalf("smart post with non-smart model %q", p.Model)
		}
		if !p.Smart && smartModels[p.Model] {
			t.Fatalf("non-smart post with smart model %q", p.Model)
		}
	}
}

func TestFailureTextMentionsRecoveryUnlessUnreported(t *testing.T) {
	posts := Generate(GeneratorConfig{Seed: 13, FailureReports: 300})
	for _, p := range posts {
		if !p.IsFailure {
			continue
		}
		got := Classify(p)
		if p.TrueRecovery == RecUnreported && got.Recovery != RecUnreported {
			t.Errorf("unreported post classified as %s: %q", got.Recovery, p.Text)
		}
	}
}

func TestCorpusTextIsColloquialNotLabels(t *testing.T) {
	// The generator must not leak label strings into the text.
	posts := Generate(GeneratorConfig{Seed: 17, FailureReports: 100, NoisePosts: 50})
	for _, p := range posts {
		lower := strings.ToLower(p.Text)
		for _, label := range []string{"output-failure", "self-shutdown", "unstable-behavior", "recunreported"} {
			if strings.Contains(lower, label) {
				t.Fatalf("label %q leaked into text: %q", label, p.Text)
			}
		}
	}
}

func TestClassifierRobustToCase(t *testing.T) {
	c := Classify(Post{Text: "THE PHONE FREEZES AND STAYS FROZEN. ONLY PULLING THE BATTERY OUT BRINGS IT BACK."})
	if !c.IsFailure || c.Type != Freeze || c.Recovery != RecBattery {
		t.Errorf("uppercase post = %+v", c)
	}
}

func TestClassifierAccuracyAcrossSeedsProperty(t *testing.T) {
	f := func(seed uint64) bool {
		posts := Generate(GeneratorConfig{Seed: seed, FailureReports: 150, NoisePosts: 80})
		return ClassificationAccuracy(posts) >= 0.93
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestSwapTypoPreservesWordCount(t *testing.T) {
	r := sim.NewRand(1)
	text := "the quick brown fox jumps"
	for i := 0; i < 100; i++ {
		mutated := swapTypo(r, text)
		if len(strings.Fields(mutated)) != 5 {
			t.Fatalf("word count changed: %q", mutated)
		}
	}
	if swapTypo(r, "") != "" {
		t.Error("empty text mutated")
	}
}

func TestVendorBreakdownCoversMajorVendors(t *testing.T) {
	rep := Analyze(Generate(DefaultGeneratorConfig(19)))
	var total float64
	for _, pct := range rep.VendorPercent {
		total += pct
	}
	if math.Abs(total-100) > 0.01 {
		t.Errorf("vendor percentages sum to %v", total)
	}
	// All of the paper's major vendors must appear.
	for _, v := range []string{"Nokia", "Motorola", "Samsung", "Sony-Ericsson", "LG"} {
		if rep.VendorPercent[v] <= 0 {
			t.Errorf("vendor %s missing from breakdown", v)
		}
	}
	if rep.VendorPercent["Nokia"] < rep.VendorPercent["Danger"] {
		t.Error("vendor weighting inverted")
	}
}
