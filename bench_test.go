package symfail

// The benchmark harness regenerates every table and figure of the paper:
//
//	BenchmarkTable1ForumFailureRecovery   Table 1
//	BenchmarkSection41Marginals           section 4.1 marginals
//	BenchmarkFigure2RebootDurations       Figure 2
//	BenchmarkMTBF                         section 6 MTBFr / MTBS headline
//	BenchmarkTable2PanicDistribution      Table 2
//	BenchmarkFigure3PanicBursts           Figure 3
//	BenchmarkFigure4WindowSweep           Figure 4 (coalescence window)
//	BenchmarkFigure5Coalescence           Figure 5
//	BenchmarkTable3PanicActivity          Table 3
//	BenchmarkFigure6RunningApps           Figure 6
//	BenchmarkTable4PanicApps              Table 4
//
// plus the end-to-end simulation bench and the ablation sweeps DESIGN.md
// calls out. Paper-shape metrics are attached to each bench through
// b.ReportMetric, so `go test -bench=. -benchmem` doubles as the
// reproduction summary (see EXPERIMENTS.md for the paper-vs-measured
// comparison at full scale).

import (
	"sync"
	"testing"
	"time"

	"symfail/internal/analysis"
	"symfail/internal/collect"
	"symfail/internal/core"
	"symfail/internal/forum"
	"symfail/internal/phone"
	"symfail/internal/report"
)

// benchDataset runs one reduced field study (12 phones, 6 months) and
// caches the collected records: the table/figure benches re-run the
// analysis that regenerates each artefact, not the simulation.
var benchDataset = sync.OnceValue(func() map[string][]core.Record {
	fs, err := RunFieldStudy(FieldStudyConfig{
		Seed:       2007,
		Phones:     12,
		Duration:   6 * phone.StudyMonth,
		JoinWindow: phone.StudyMonth,
	})
	if err != nil {
		panic(err)
	}
	return fs.Dataset.AllRecords()
})

var benchCorpus = sync.OnceValue(func() []forum.Post {
	return forum.Generate(forum.DefaultGeneratorConfig(2007))
})

func benchStudy(b *testing.B) *analysis.Study {
	b.Helper()
	ds := benchDataset()
	b.ResetTimer()
	return analysis.New(ds, analysis.Options{})
}

// Table 1 — failure type x recovery action from the forum corpus.
func BenchmarkTable1ForumFailureRecovery(b *testing.B) {
	posts := benchCorpus()
	var rep *forum.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep = forum.Analyze(posts)
		_ = report.Table1(rep)
	}
	b.ReportMetric(rep.JointPercent[forum.Freeze][forum.RecBattery], "freeze-battery-pct")
	b.ReportMetric(rep.JointPercent[forum.OutputFail][forum.RecReboot], "output-reboot-pct")
}

// Section 4.1 — marginals, severity and activity correlation.
func BenchmarkSection41Marginals(b *testing.B) {
	posts := benchCorpus()
	var rep *forum.Report
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep = forum.Analyze(posts)
		_ = report.Section41(rep)
	}
	b.ReportMetric(rep.TypePercent[forum.OutputFail], "output-failure-pct")
	b.ReportMetric(rep.TypePercent[forum.Freeze], "freeze-pct")
	b.ReportMetric(100*rep.SmartShare, "smartphone-share-pct")
}

// Figure 2 — reboot-duration distribution and self-shutdown identification.
func BenchmarkFigure2RebootDurations(b *testing.B) {
	ds := benchDataset()
	var s *analysis.Study
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s = analysis.New(ds, analysis.Options{})
		_ = report.Figure2(s)
	}
	durs := s.RebootDurations()
	selfs := len(s.HLEvents(analysis.HLSelfShutdown))
	if len(durs) > 0 {
		b.ReportMetric(100*float64(selfs)/float64(len(durs)), "selfshutdown-share-pct")
	}
	h := s.RebootHistogram(0, 500, 20)
	if m := h.ModeBin(); m >= 0 {
		_, lo, _ := h.Bin(m)
		b.ReportMetric(lo, "zoom-mode-bin-lo-s")
	}
}

// Section 6 — MTBFr / MTBS headline numbers.
func BenchmarkMTBF(b *testing.B) {
	ds := benchDataset()
	var rep analysis.MTBFReport
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := analysis.New(ds, analysis.Options{})
		rep = s.MTBF()
	}
	b.ReportMetric(rep.MTBFrHours, "MTBFr-h")
	b.ReportMetric(rep.MTBSHours, "MTBS-h")
	b.ReportMetric(rep.FailureEveryDays, "failure-every-days")
}

// Table 2 — panic category/type distribution.
func BenchmarkTable2PanicDistribution(b *testing.B) {
	ds := benchDataset()
	var s *analysis.Study
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s = analysis.New(ds, analysis.Options{})
		_ = report.Table2(s)
	}
	rows := s.PanicTable()
	if len(rows) > 0 {
		b.ReportMetric(rows[0].Percent, "top-panic-pct")
	}
	b.ReportMetric(s.CategoryShare("E32USER-CBase"), "cbase-share-pct")
}

// Figure 3 — panic cascade sizes.
func BenchmarkFigure3PanicBursts(b *testing.B) {
	ds := benchDataset()
	var st analysis.BurstStats
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := analysis.New(ds, analysis.Options{})
		st = s.Bursts()
		_ = report.Figure3(s)
	}
	b.ReportMetric(100*st.PanicsInBursts, "panics-in-bursts-pct")
}

// Figure 4 — coalescence window sweep.
func BenchmarkFigure4WindowSweep(b *testing.B) {
	ds := benchDataset()
	windows := []time.Duration{
		30 * time.Second, time.Minute, 2 * time.Minute, 5 * time.Minute,
		15 * time.Minute, time.Hour,
	}
	var points []analysis.WindowSweepPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := analysis.New(ds, analysis.Options{})
		points = s.WindowSweep(windows)
	}
	if len(points) >= 4 {
		b.ReportMetric(float64(points[3].Related), "related-at-5min")
		b.ReportMetric(float64(points[len(points)-1].Related), "related-at-1h")
	}
}

// Figure 5 — panic / high-level event coalescence.
func BenchmarkFigure5Coalescence(b *testing.B) {
	ds := benchDataset()
	var st analysis.CoalescenceStats
	var all float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := analysis.New(ds, analysis.Options{})
		st = s.Coalesce()
		all = s.RelatedPercentWithAllShutdowns()
		_ = report.Figure5(s)
	}
	b.ReportMetric(st.RelatedPercent, "related-pct")
	b.ReportMetric(all, "related-all-shutdowns-pct")
}

// Table 3 — panic-activity relationship.
func BenchmarkTable3PanicActivity(b *testing.B) {
	ds := benchDataset()
	var s *analysis.Study
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s = analysis.New(ds, analysis.Options{})
		_ = report.Table3(s)
	}
	b.ReportMetric(s.RealTimeActivityShare(), "realtime-activity-pct")
}

// Figure 6 — running applications at panic time.
func BenchmarkFigure6RunningApps(b *testing.B) {
	ds := benchDataset()
	var hist map[int]int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := analysis.New(ds, analysis.Options{})
		hist = s.RunningAppsHistogram(8)
		_ = report.Figure6(s)
	}
	mode, best := 0, 0
	for n, c := range hist {
		if c > best {
			mode, best = n, c
		}
	}
	b.ReportMetric(float64(mode), "mode-apps")
}

// Table 4 — panic / running-application relationship.
func BenchmarkTable4PanicApps(b *testing.B) {
	ds := benchDataset()
	var s *analysis.Study
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s = analysis.New(ds, analysis.Options{})
		_ = report.Table4(s)
	}
	tops := s.TopPanicApps(1)
	if len(tops) > 0 {
		b.ReportMetric(tops[0].Percent, "top-app-pct")
	}
}

// End-to-end: the full instrumented simulation (fleet + logger + collect).
func BenchmarkFieldStudySimulation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		fs, err := RunFieldStudy(FieldStudyConfig{
			Seed:       uint64(i + 1),
			Phones:     5,
			Duration:   2 * phone.StudyMonth,
			JoinWindow: phone.StudyMonth / 2,
		})
		if err != nil {
			b.Fatal(err)
		}
		if len(fs.Study.HLEvents()) == 0 {
			b.Fatal("no events")
		}
	}
	b.ReportMetric(float64(5*2), "phone-months/op")
}

// BenchmarkCollectUpload measures the TCP log-transfer path.
func BenchmarkCollectUpload(b *testing.B) {
	ds := collect.NewDataset()
	srv, err := collect.NewServer("127.0.0.1:0", ds)
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	payload := make([]byte, 64<<10)
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := collect.Upload(srv.Addr(), "bench-phone", payload); err != nil {
			b.Fatal(err)
		}
	}
}

// Baseline: the D_EXC panic-only collector vs the paper's logger. The
// metric of interest is the capability gap: the baseline reproduces Table 2
// (panic counts) but can relate zero panics to failures.
func BenchmarkBaselineDExc(b *testing.B) {
	var fullRelated, baseRelated, panics int
	for i := 0; i < b.N; i++ {
		fs, err := RunFieldStudy(FieldStudyConfig{
			Seed:       13,
			Phones:     6,
			Duration:   3 * phone.StudyMonth,
			JoinWindow: 0,
			WithDExc:   true,
		})
		if err != nil {
			b.Fatal(err)
		}
		baseStudy := analysis.New(fs.BaselineDataset.AllRecords(), analysis.Options{})
		fullRelated = fs.Study.Coalesce().RelatedPanics
		baseRelated = baseStudy.Coalesce().RelatedPanics
		panics = len(baseStudy.Panics())
	}
	b.ReportMetric(float64(panics), "panics-captured")
	b.ReportMetric(float64(fullRelated), "full-logger-related")
	b.ReportMetric(float64(baseRelated), "dexc-related")
}

// Extension: the user-report channel for output failures — its coverage
// and bias, measured against the simulator oracle.
func BenchmarkExtensionUserReports(b *testing.B) {
	var coverage float64
	var reports int
	for i := 0; i < b.N; i++ {
		fs, err := RunFieldStudy(FieldStudyConfig{
			Seed:             17,
			Phones:           6,
			Duration:         3 * phone.StudyMonth,
			JoinWindow:       0,
			WithUserReporter: true,
		})
		if err != nil {
			b.Fatal(err)
		}
		st := analysis.UserReports(fs.Dataset.AllRecords())
		reports = st.Reports
		truth := 0
		for _, d := range fs.Fleet.Devices {
			truth += d.Oracle().Count(phone.TruthOutputFailure)
		}
		if truth > 0 {
			coverage = 100 * float64(st.Reports) / float64(truth)
		}
	}
	b.ReportMetric(float64(reports), "reports")
	b.ReportMetric(coverage, "coverage-pct")
}

// Ablation: heartbeat-period sweep — detection resolution vs flash wear.
func BenchmarkAblationHeartbeatPeriod(b *testing.B) {
	for _, period := range []time.Duration{30 * time.Second, 2 * time.Minute, 5 * time.Minute, 15 * time.Minute} {
		b.Run(period.String(), func(b *testing.B) {
			var writes uint64
			var freezes int
			var meanErr float64
			for i := 0; i < b.N; i++ {
				fs, err := RunFieldStudy(FieldStudyConfig{
					Seed:       7,
					Phones:     3,
					Duration:   phone.StudyMonth,
					JoinWindow: 0,
					Logger:     core.Config{HeartbeatPeriod: period},
				})
				if err != nil {
					b.Fatal(err)
				}
				writes = 0
				for _, d := range fs.Fleet.Devices {
					writes += d.FS().Writes()
				}
				freezes = len(fs.Study.HLEvents(analysis.HLFreeze))
				meanErr = freezeTimestampError(fs)
			}
			b.ReportMetric(float64(writes), "flash-writes")
			b.ReportMetric(float64(freezes), "freezes-detected")
			b.ReportMetric(meanErr, "freeze-ts-err-s")
		})
	}
}

// freezeTimestampError measures the logger's freeze-timestamp accuracy
// against the oracle: the reconstructed freeze time is the LAST heartbeat,
// so the mean error is about half the heartbeat period (the section 5.2
// tuning trade-off, quantified).
func freezeTimestampError(fs *FieldStudy) float64 {
	var sum float64
	var n int
	for di, d := range fs.Fleet.Devices {
		// Ground-truth freeze instants, in order.
		var truth []float64
		for _, e := range d.Oracle().Events {
			if e.Kind == phone.TruthFreeze {
				truth = append(truth, e.Time.Seconds())
			}
		}
		// Logger-reconstructed freeze instants, in order.
		var logged []float64
		for _, r := range fs.Loggers[di].Records() {
			if r.Kind == core.KindBoot && r.Detected == core.DetectedFreeze {
				logged = append(logged, float64(r.PrevTime)/1e9)
			}
		}
		for i := 0; i < len(truth) && i < len(logged); i++ {
			diff := truth[i] - logged[i]
			if diff < 0 {
				diff = -diff
			}
			sum += diff
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Ablation: self-shutdown threshold sweep — why 360 s.
func BenchmarkAblationSelfShutdownThreshold(b *testing.B) {
	ds := benchDataset()
	for _, thr := range []time.Duration{60 * time.Second, 360 * time.Second, 30 * time.Minute, 4 * time.Hour} {
		b.Run(thr.String(), func(b *testing.B) {
			var selfs int
			for i := 0; i < b.N; i++ {
				s := analysis.New(ds, analysis.Options{SelfShutdownThreshold: thr})
				selfs = len(s.HLEvents(analysis.HLSelfShutdown))
			}
			b.ReportMetric(float64(selfs), "self-shutdowns")
		})
	}
}

// Ablation: burst propagation on/off — what isolation between real-time
// and interactive tasks would buy.
func BenchmarkAblationBurstIsolation(b *testing.B) {
	for _, burst := range []struct {
		name string
		p    float64
	}{{"propagation-on", -1}, {"propagation-off", 0}} {
		b.Run(burst.name, func(b *testing.B) {
			var inBursts float64
			var panics int
			for i := 0; i < b.N; i++ {
				fs, err := RunFieldStudy(FieldStudyConfig{
					Seed:       11,
					Phones:     6,
					Duration:   3 * phone.StudyMonth,
					JoinWindow: 0,
					Device: func(seed uint64) phone.Config {
						cfg := phone.DefaultConfig(seed)
						if burst.p >= 0 {
							cfg.BurstProb = burst.p
						}
						return cfg
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				st := fs.Study.Bursts()
				inBursts = 100 * st.PanicsInBursts
				panics = st.TotalPanics
			}
			b.ReportMetric(inBursts, "panics-in-bursts-pct")
			b.ReportMetric(float64(panics), "panics")
		})
	}
}
