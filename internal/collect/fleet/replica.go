package fleet

import (
	"symfail/internal/collect"
)

// Write-time quorum replication (DESIGN.md §15). The primary shard — not
// the router — replicates each committed write: only the primary knows the
// full resulting state (a CHUNK's ACK covers the whole reassembled stream,
// not just the chunk's bytes), and shard-to-shard HANDOFF traffic stays off
// the routed path, so replication advances no kill schedule and draws no
// fleet RNG. HANDOFF handlers never replicate onward — fan-out is exactly
// one hop deep, so two shards replicating to each other cannot storm or
// deadlock.

// replicaHook builds the ServerConfig.Replicate callback for shard m: the
// write-time leg of quorum replication. Called by every incarnation of m's
// server after a local WAL sync with the server mutex released (see the
// contract on ServerConfig.Replicate). It forwards the committed state to
// the device's R-1 rendezvous successors and reports whether, counting the
// local copy, a write quorum of W shards now holds it durably.
func (f *Supervisor) replicaHook(m *member) func(op, deviceID string, state []byte) bool {
	return func(op, dev string, state []byte) bool {
		f.mu.Lock()
		if f.disarmed {
			// Shutdown raced the write. Nothing downstream reads the reply;
			// don't manufacture a quorum failure out of teardown ordering.
			f.mu.Unlock()
			return true
		}
		targets := f.availableTargetsLocked(m)
		need := f.writeW - 1 // the primary's own WAL-synced copy counts
		fanout := f.replicateR - 1
		f.mu.Unlock()
		if len(targets) > fanout {
			targets = rendezvousOrder(dev, targets)[:fanout]
		}
		if op == collect.ReplicateFin {
			// Stream retirement is bookkeeping, not durability: one
			// best-effort pass, no retries, result ignored by the caller.
			for _, t := range targets {
				_ = collect.Fin(t.addr, dev)
			}
			return true
		}
		if len(targets) < need {
			// Not enough reachable peers to ever meet W: refuse fast rather
			// than grind retries against a fleet that cannot help.
			f.mu.Lock()
			f.degradedReqs++
			f.mu.Unlock()
			return false
		}
		// Offer to every successor (want <= 0), not just W-1: the copies
		// beyond the quorum are what keep the *next* shard loss survivable
		// without waiting for repair. The ACK still only needs `need`.
		got := f.replicate(dev, collect.HandoffLog, state, targets, 0, writeAttempts)
		if got < need {
			f.mu.Lock()
			f.degradedReqs++
			f.mu.Unlock()
			return false
		}
		return true
	}
}
