package symbos

import "fmt"

// This file models the slivers of the application frameworks whose panics
// appear in Table 2: the eikon list box (EIKON-LISTBOX), the eikon editor
// control (EIKCOCTL), and the multimedia framework audio client
// (MMFAudioClient).

// ListBox is a CEikListBox. Using it with an invalid current item index
// raises EIKON-LISTBOX 5; drawing it with no view defined raises
// EIKON-LISTBOX 3.
type ListBox struct {
	kernel  *Kernel
	items   []string
	current int
	hasView bool
}

// NewListBox returns a list box attached to a view.
func NewListBox(k *Kernel) *ListBox {
	return &ListBox{kernel: k, hasView: true, current: -1}
}

// AddItem appends an entry.
func (l *ListBox) AddItem(s string) { l.items = append(l.items, s) }

// Count returns the number of entries.
func (l *ListBox) Count() int { return len(l.items) }

// CurrentItem returns the selected index (-1 when nothing is selected).
func (l *ListBox) CurrentItem() int { return l.current }

// DetachView removes the list box's view (a modelled defect).
func (l *ListBox) DetachView() { l.hasView = false }

// SetCurrentItem selects index i. An index outside the item range raises
// EIKON-LISTBOX 5.
func (l *ListBox) SetCurrentItem(i int) {
	if i < 0 || i >= len(l.items) {
		l.kernel.Raise(CatEikonListbox, TypeListboxInvalidIndex,
			fmt.Sprintf("invalid current item index %d for %d items", i, len(l.items)))
	}
	l.current = i
}

// Draw renders the list box. With no view defined it raises
// EIKON-LISTBOX 3.
func (l *ListBox) Draw() {
	if !l.hasView {
		l.kernel.Raise(CatEikonListbox, TypeListboxNoView,
			"list box used with no view defined to display the object")
	}
}

// Edwin is a CEikEdwin editor control. Inline editing with corrupted state
// raises EIKCOCTL 70.
type Edwin struct {
	kernel  *Kernel
	text    *Buf
	inline  bool
	corrupt bool
}

// NewEdwin returns an editor over a descriptor of the given capacity.
func NewEdwin(k *Kernel, max int) *Edwin {
	return &Edwin{kernel: k, text: NewBuf(k, max)}
}

// Text returns the editor's backing descriptor.
func (e *Edwin) Text() *Buf { return e.text }

// BeginInlineEdit starts an inline (predictive-input) editing transaction.
func (e *Edwin) BeginInlineEdit() { e.inline = true }

// CorruptInlineState damages the inline editing state (a modelled defect).
func (e *Edwin) CorruptInlineState() { e.corrupt = true }

// CommitInlineEdit finishes the transaction, appending s. Committing with
// corrupt state raises EIKCOCTL 70.
func (e *Edwin) CommitInlineEdit(s string) {
	if !e.inline {
		return
	}
	if e.corrupt {
		e.kernel.Raise(CatEikCoCtl, TypeEdwinCorrupt,
			"corrupt edwin state for inline editing")
	}
	e.text.Append(s)
	e.inline = false
}

// AudioClient is an RMMFAudioClient handle. SetVolume with a value of 10
// or more raises MMFAudioClient 4, exactly as the Table 2 note says.
type AudioClient struct {
	kernel *Kernel
	volume int
}

// NewAudioClient returns an audio client at volume 0.
func NewAudioClient(k *Kernel) *AudioClient {
	return &AudioClient{kernel: k}
}

// Volume returns the current volume.
func (a *AudioClient) Volume() int { return a.volume }

// SetVolume sets the playback volume. Values >= 10 raise MMFAudioClient 4.
func (a *AudioClient) SetVolume(v int) {
	if v >= 10 {
		a.kernel.Raise(CatMMFAudioClient, TypeVolumeOutOfRange,
			fmt.Sprintf("SetVolume(%d): value is 10 or more", v))
	}
	a.volume = v
}
