package symfail

// BenchmarkFleetScaling is the perf-regression harness for sharded fleet
// execution: it sweeps fleet size × worker count, reports simulated
// phone-hours per wall-clock second for every cell, and writes the whole
// grid (with per-fleet-size speedups vs the serial run) to
// BENCH_parallel.json so future PRs have a perf trajectory to compare
// against. Run it alone for stable numbers:
//
//	go test -bench BenchmarkFleetScaling -benchtime 1x .
//
// The observation window shrinks as the fleet grows so every cell does
// comparable total work; phone-hours/sec is the scale-free metric.
// Speedup is wall-clock-bound by the host: on a single-core machine every
// worker count measures ≈ 1.0×, which is itself the determinism story —
// the sharded path costs nothing when there is nothing to win.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"strings"
	"testing"
	"time"

	"symfail/internal/phone"
)

// scalingCell is one measured (phones, workers) point of the grid.
type scalingCell struct {
	Phones           int     `json:"phones"`
	Workers          int     `json:"workers"`
	Months           float64 `json:"months"`
	PhoneHours       float64 `json:"phoneHours"`
	WallSeconds      float64 `json:"wallSeconds"`
	PhoneHoursPerSec float64 `json:"phoneHoursPerSec"`
	// Speedup is PhoneHoursPerSec over the workers=1 cell of the same
	// fleet size (1.0 for the serial cell itself).
	Speedup float64 `json:"speedup"`
	// RSSMB is the process resident set right after the cell's last run,
	// before the fleet is released — the memory footprint of holding that
	// many simulated devices live at once.
	RSSMB float64 `json:"rssMB,omitempty"`
}

type scalingReport struct {
	GOMAXPROCS int           `json:"gomaxprocs"`
	GoVersion  string        `json:"goVersion"`
	Cells      []scalingCell `json:"cells"`
}

// scalingWorkerCounts returns the worker sweep: serial, 4 (the ISSUE's
// reference point), and the host's full width when that differs.
func scalingWorkerCounts() []int {
	counts := []int{1, 4}
	if n := runtime.GOMAXPROCS(0); n != 1 && n != 4 {
		counts = append(counts, n)
	}
	return counts
}

// benchGCPercent is the GOGC value for the ≥100k-phone cells; the
// BENCH_GOGC env var overrides it for headroom experiments.
func benchGCPercent() int {
	if s := os.Getenv("BENCH_GOGC"); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
	}
	return 400
}

// readRSSMB returns the process resident set size in MiB from
// /proc/self/statm, or 0 where that interface is unavailable.
func readRSSMB() float64 {
	data, err := os.ReadFile("/proc/self/statm")
	if err != nil {
		return 0
	}
	fields := strings.Fields(string(data))
	if len(fields) < 2 {
		return 0
	}
	pages, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return 0
	}
	return float64(pages) * float64(os.Getpagesize()) / (1 << 20)
}

func BenchmarkFleetScaling(b *testing.B) {
	grid := []struct {
		phones   int
		duration time.Duration
	}{
		{25, 2 * phone.StudyMonth},
		{100, phone.StudyMonth},
		{1000, phone.StudyMonth / 4},
		// The large-fleet cells run a short horizon so total simulated work
		// stays bounded; what they probe is that per-event cost and memory
		// stay flat as the device count grows three orders of magnitude.
		// Serial only: the sweep's worker story is told by the small cells.
		{100_000, phone.StudyMonth / 60},
		{1_000_000, phone.StudyMonth / 120},
	}
	report := scalingReport{GOMAXPROCS: runtime.GOMAXPROCS(0), GoVersion: runtime.Version()}
	for _, g := range grid {
		serialRate := 0.0
		workerCounts := scalingWorkerCounts()
		if g.phones >= 100_000 {
			workerCounts = []int{1}
		}
		for _, workers := range workerCounts {
			name := fmt.Sprintf("phones=%d/workers=%d", g.phones, workers)
			var cell scalingCell
			b.Run(name, func(b *testing.B) {
				if g.phones >= 100_000 {
					// A million live devices hold tens of GB; at the default
					// GOGC the collector re-marks that live set every couple
					// of GB of allocation and the mark, not the simulation,
					// dominates. Trade headroom (the host has far more RAM
					// than 4x the live set) for mark frequency.
					defer debug.SetGCPercent(debug.SetGCPercent(benchGCPercent()))
				}
				var hours float64
				for i := 0; i < b.N; i++ {
					fs, err := RunFieldStudy(FieldStudyConfig{
						Seed:       2007,
						Phones:     g.phones,
						Workers:    workers,
						Duration:   g.duration,
						JoinWindow: g.duration / 4,
					})
					if err != nil {
						b.Fatal(err)
					}
					hours += fs.Fleet.ObservedHours()
					if i == b.N-1 {
						cell.RSSMB = readRSSMB() // fleet still live: footprint, not garbage
					}
				}
				wall := b.Elapsed().Seconds()
				cell.Phones = g.phones
				cell.Workers = workers
				cell.Months = float64(g.duration) / float64(phone.StudyMonth)
				cell.PhoneHours = hours
				cell.WallSeconds = wall
				if wall > 0 {
					cell.PhoneHoursPerSec = hours / wall
				}
				b.ReportMetric(cell.PhoneHoursPerSec, "phone-hours/s")
				b.ReportMetric(cell.RSSMB, "RSS-MB")
			})
			if cell.Phones == 0 {
				continue // sub-bench filtered out by -bench
			}
			if workers == 1 {
				serialRate = cell.PhoneHoursPerSec
			}
			if serialRate > 0 {
				cell.Speedup = cell.PhoneHoursPerSec / serialRate
			}
			report.Cells = append(report.Cells, cell)
		}
	}
	if len(report.Cells) == 0 {
		return
	}
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		b.Fatal(err)
	}
	// BENCH_PARALLEL_OUT redirects the report so `make bench-check` can
	// measure a fresh grid without clobbering the committed baseline.
	out := os.Getenv("BENCH_PARALLEL_OUT")
	if out == "" {
		out = "BENCH_parallel.json"
	}
	if err := os.WriteFile(out, append(blob, '\n'), 0o644); err != nil {
		b.Fatal(err)
	}
	b.Logf("scaling grid written to %s (%d cells)", out, len(report.Cells))
}
