// Package enginesharefix is a symlint golden-test fixture for the
// engineshare analyzer: a *sim.Engine crossing a goroutine boundary.
package enginesharefix

import (
	"time"

	"symfail/internal/sim"
)

type shard struct {
	eng  *sim.Engine
	done chan error
}

func drive(e *sim.Engine, done chan<- error) {
	done <- e.Run(sim.Epoch.Add(time.Hour))
}

// Positive: the engine is the receiver of the spawned call.
func receiverEscapes(done chan error) {
	eng := sim.NewEngine()
	go eng.RunAll() // want: receiver crosses the boundary
	done <- nil
}

// Positive: the engine is captured by the goroutine closure.
func capturedEngine(done chan error) {
	eng := sim.NewEngine()
	go func() {
		done <- eng.Run(sim.Epoch.Add(time.Hour)) // want: captured engine
	}()
	_ = eng.Now()
}

// Positive: the engine is passed as a goroutine argument.
func passedEngine(done chan error) {
	eng := sim.NewEngine()
	go drive(eng, done) // want: passed engine
	_ = eng.Now()
}

// Positive: the engine rides into the goroutine inside a struct literal.
func structSmuggled(done chan error) {
	eng := sim.NewEngine()
	go func(s shard) {
		s.done <- s.eng.RunAll()
	}(shard{eng: eng, done: done}) // want: smuggled engine
	_ = eng.Now()
}

// Negative: an engine created inside the goroutine is owned by it.
func privateEngine(done chan error) {
	go func() {
		eng := sim.NewEngine()
		done <- eng.RunAll()
	}()
}

// Negative: the sanctioned hand-off — the worker owns whole shards and the
// engine never appears in the go statement (this is sim.RunShards' shape).
func shardHandoff(engines []*sim.Engine) error {
	return sim.RunShards(len(engines), 2, func(i int) error {
		return engines[i].RunAll()
	})
}
