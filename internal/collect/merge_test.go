package collect

import (
	"bytes"
	"testing"

	"symfail/internal/core"
	"symfail/internal/sim"
)

// genRecords produces a deterministic, deliberately nasty record stream:
// duplicated serialized forms, distinct records sharing a timestamp, and
// out-of-order times — everything the canonical merge must normalise.
func genRecords(seed uint64, n int) []core.Record {
	rng := sim.NewRand(seed)
	recs := make([]core.Record, 0, n)
	for i := 0; i < n; i++ {
		switch {
		case len(recs) > 0 && rng.Bool(0.2):
			// Exact duplicate of an earlier record (a re-sent chunk).
			recs = append(recs, recs[rng.Intn(len(recs))])
		case rng.Bool(0.3):
			recs = append(recs, core.Record{
				Kind:     core.KindPanic,
				Time:     int64(rng.Intn(50) * 1_000_000_000), // frequent time collisions
				Category: "KERN-EXEC",
				PType:    rng.Intn(4),
				Activity: "idle",
			})
		default:
			recs = append(recs, core.Record{
				Kind:      core.KindBoot,
				Time:      int64(rng.Intn(50) * 1_000_000_000),
				Boot:      rng.Intn(9) + 1,
				OSVersion: "8.0",
				Detected:  core.DetectedShutdown,
			})
		}
	}
	return recs
}

// partition deals the stream into k batches with a deterministic but
// uneven interleaving.
func partition(rng *sim.Rand, recs []core.Record, k int) [][]core.Record {
	batches := make([][]core.Record, k)
	for _, r := range recs {
		i := rng.Intn(k)
		batches[i] = append(batches[i], r)
	}
	return batches
}

// TestMergeRecordsOrderIndependent is the canonical-merge property the
// sharded fleet rests on: however the per-device record stream is split
// into batches, and whatever order those batches arrive in, the merged
// sequence is byte-identical.
func TestMergeRecordsOrderIndependent(t *testing.T) {
	recs := genRecords(1, 200)
	want := EncodeRecords(MergeRecords(recs))
	rng := sim.NewRand(2)
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(6)
		batches := partition(rng, recs, k)
		rng.Shuffle(len(batches), func(i, j int) { batches[i], batches[j] = batches[j], batches[i] })
		if rng.Bool(0.5) && k > 1 {
			// Re-send a batch wholesale: merging must be idempotent.
			batches = append(batches, batches[rng.Intn(k)])
		}
		got := EncodeRecords(MergeRecords(batches...))
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d (%d batches): merged bytes differ from the canonical order\n got: %q\nwant: %q",
				trial, len(batches), got, want)
		}
	}
}

func TestMergeRecordsIdempotent(t *testing.T) {
	merged := MergeRecords(genRecords(3, 120))
	again := MergeRecords(merged, merged[:40], merged[80:])
	if !bytes.Equal(EncodeRecords(again), EncodeRecords(merged)) {
		t.Error("re-merging a merged sequence with its own subsets changed the bytes")
	}
}

func TestMergeRecordsEmpty(t *testing.T) {
	if got := MergeRecords(); len(got) != 0 {
		t.Errorf("merging nothing yielded %d records", len(got))
	}
	if got := MergeRecords(nil, []core.Record{}); len(got) != 0 {
		t.Errorf("merging empty batches yielded %d records", len(got))
	}
}

// TestPutMergedOrderIndependent lifts the property to the Dataset: batches
// applied through PutMerged in any order converge to the same stored bytes
// (given at least two uploads, the first raw store is re-canonicalised by
// the first merge).
func TestPutMergedOrderIndependent(t *testing.T) {
	recs := MergeRecords(genRecords(4, 150)) // start from a clean stream
	rng := sim.NewRand(5)
	var want []byte
	for trial := 0; trial < 30; trial++ {
		batches := partition(rng, recs, 2+rng.Intn(4))
		rng.Shuffle(len(batches), func(i, j int) { batches[i], batches[j] = batches[j], batches[i] })
		ds := NewDataset()
		for _, b := range batches {
			ds.PutMerged("phone-01", EncodeRecords(b))
		}
		got, _ := ds.Get("phone-01")
		if want == nil {
			want = got
			continue
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d: dataset bytes depend on upload order", trial)
		}
	}
}

// FuzzMergeRecords fuzzes the partition/interleaving space: any way of
// dealing any generated stream into any number of batches, in any order,
// must merge to the reference canonical sequence.
func FuzzMergeRecords(f *testing.F) {
	f.Add(uint64(1), uint64(2), uint8(3))
	f.Add(uint64(42), uint64(7), uint8(1))
	f.Add(uint64(0), uint64(0), uint8(0))
	f.Fuzz(func(t *testing.T, genSeed, dealSeed uint64, k uint8) {
		n := 1 + int(genSeed%97)
		recs := genRecords(genSeed, n)
		want := EncodeRecords(MergeRecords(recs))

		rng := sim.NewRand(dealSeed)
		batches := partition(rng, recs, 1+int(k%8))
		rng.Shuffle(len(batches), func(i, j int) { batches[i], batches[j] = batches[j], batches[i] })
		if got := EncodeRecords(MergeRecords(batches...)); !bytes.Equal(got, want) {
			t.Fatalf("merge depends on interleaving\n got: %q\nwant: %q", got, want)
		}
		// Idempotence under self-merge.
		merged := MergeRecords(batches...)
		if got := EncodeRecords(MergeRecords(merged, merged)); !bytes.Equal(got, want) {
			t.Fatalf("self-merge changed the bytes")
		}
	})
}
