package collect

import (
	"testing"
	"time"

	"symfail/internal/core"
	"symfail/internal/phone"
	"symfail/internal/sim"
)

func quietConfig(seed uint64) phone.Config {
	cfg := phone.DefaultConfig(seed)
	cfg.PanicOpportunityPerHour = 0
	cfg.SpontaneousFreezePerHour = 0
	cfg.SpontaneousShutdownPerHour = 0
	cfg.OutputFailurePerHour = 0
	cfg.NightOffProb = 0
	cfg.DayOffPerHour = 0
	return cfg
}

func TestUploaderShipsLogsPeriodically(t *testing.T) {
	ds := NewDataset()
	srv, err := NewServer("127.0.0.1:0", ds)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	eng := sim.NewEngine()
	d := phone.NewDevice("upl-test", eng, quietConfig(1))
	l := core.Install(d, core.Config{})
	u := AttachUploader(d, srv.Addr(), l.Config().LogPath, 6*time.Hour)
	d.Enroll(sim.Epoch)
	if err := eng.Run(sim.Epoch.Add(48 * time.Hour)); err != nil {
		t.Fatal(err)
	}

	if u.Successes() < 7 {
		t.Errorf("successes = %d over 48 h at 6 h period", u.Successes())
	}
	if u.Attempts() != u.Successes() {
		t.Errorf("attempts %d != successes %d (lastErr %v)", u.Attempts(), u.Successes(), u.LastErr())
	}
	// Resumable uploads ship only the tail past the last ACK: total
	// traffic tracks the log's size, not successes × file size.
	final, _ := d.FS().Read(l.Config().LogPath)
	if u.BytesSent() == 0 {
		t.Error("BytesSent = 0 after successful uploads")
	}
	if naive := int64(u.Successes()) * int64(len(final)); u.BytesSent() > int64(2*len(final)) {
		t.Errorf("BytesSent = %d, want tail-only re-sends near %d (full-file per tick would be %d)",
			u.BytesSent(), len(final), naive)
	}
	// The server holds the device's latest log; it parses to the same
	// records as the on-flash file (modulo anything after the last upload).
	recs := ds.Records("upl-test")
	if len(recs) == 0 {
		t.Fatal("server has no records")
	}
	if recs[0].Kind != core.KindBoot || recs[0].Detected != core.DetectedFirstBoot {
		t.Errorf("first uploaded record = %+v", recs[0])
	}
}

func TestUploaderSurvivesReboots(t *testing.T) {
	ds := NewDataset()
	srv, err := NewServer("127.0.0.1:0", ds)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	eng := sim.NewEngine()
	d := phone.NewDevice("upl-reboot", eng, quietConfig(2))
	l := core.Install(d, core.Config{})
	u := AttachUploader(d, srv.Addr(), l.Config().LogPath, 2*time.Hour)
	d.Enroll(sim.Epoch)
	eng.Step()
	for i := 0; i < 3; i++ {
		if err := eng.Run(eng.Now().Add(5 * time.Hour)); err != nil {
			t.Fatal(err)
		}
		d.Shutdown(phone.ReasonUser, 30*time.Minute)
		if err := eng.Run(eng.Now().Add(time.Hour)); err != nil {
			t.Fatal(err)
		}
	}
	// Let the final boot's upload chain fire once more, so the server has
	// the complete reboot history.
	if err := eng.Run(eng.Now().Add(3 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if u.Successes() < 5 {
		t.Errorf("successes = %d across reboots", u.Successes())
	}
	// The uploaded log includes the reboot history.
	boots := 0
	for _, r := range ds.Records("upl-reboot") {
		if r.Kind == core.KindBoot {
			boots++
		}
	}
	if boots < 4 {
		t.Errorf("uploaded log has %d boots, want >= 4", boots)
	}
}

func TestUploaderToleratesDeadServer(t *testing.T) {
	ds := NewDataset()
	srv, err := NewServer("127.0.0.1:0", ds)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	_ = srv.Close() // server gone before the study starts

	eng := sim.NewEngine()
	d := phone.NewDevice("upl-dead", eng, quietConfig(3))
	l := core.Install(d, core.Config{})
	u := AttachUploader(d, addr, l.Config().LogPath, 3*time.Hour)
	d.Enroll(sim.Epoch)
	if err := eng.Run(sim.Epoch.Add(12 * time.Hour)); err != nil {
		t.Fatal(err)
	}
	if u.Successes() != 0 {
		t.Errorf("successes = %d against a dead server", u.Successes())
	}
	if u.Attempts() == 0 || u.LastErr() == nil {
		t.Error("uploader never tried / never recorded the failure")
	}
	if d.State() != phone.StateOn {
		t.Error("upload failures must not take the phone down")
	}
}
