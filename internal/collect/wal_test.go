package collect

import (
	"bytes"
	"reflect"
	"testing"

	"symfail/internal/core"
	"symfail/internal/sim"
)

// walTestRecords builds a canonical record log (one panic per timestamp) in
// the dataset's serialised form.
func walTestRecords(times ...int64) []byte {
	var recs []core.Record
	for _, tm := range times {
		recs = append(recs, core.Record{Kind: core.KindPanic, Category: "KERN-EXEC", PType: 3, Time: tm})
	}
	return EncodeRecords(recs)
}

func hasRecordAt(data []byte, tm int64) bool {
	for _, r := range core.ParseRecords(data) {
		if r.Time == tm {
			return true
		}
	}
	return false
}

// storeState snapshots every file's logical bytes, for byte-identity checks.
func storeState(s *CrashStore) map[string][]byte {
	out := make(map[string][]byte)
	for _, n := range s.Names() {
		out[n] = s.Read(n)
	}
	return out
}

func TestWALRecoveryRoundTrip(t *testing.T) {
	store := NewCrashStore(nil)
	logA := walTestRecords(1, 2, 3)
	logB := walTestRecords(10, 11)
	append2 := func(e walEntry) { store.Append(walName, encodeWALEntry(e)) }

	// Device a: two chunks split mid-record.
	append2(walEntry{Op: opChunk, Dev: "a", Off: 0, Data: logA[:5]})
	append2(walEntry{Op: opChunk, Dev: "a", Off: 5, Data: logA[5:]})
	// Device b: a chunk, then the study-end full upload, then FIN.
	append2(walEntry{Op: opChunk, Dev: "b", Off: 0, Data: logB[:4]})
	append2(walEntry{Op: opUpload, Dev: "b", Data: logB})
	append2(walEntry{Op: opFin, Dev: "b"})
	// Device c: a master reset rewinds the stream to zero with new history;
	// the already-acknowledged old records must survive in the merged log.
	append2(walEntry{Op: opChunk, Dev: "c", Off: 0, Data: walTestRecords(20, 21)})
	append2(walEntry{Op: opChunk, Dev: "c", Off: 0, Data: walTestRecords(30)})
	store.Sync(walName)

	files, streams := recoverServerState(store)
	if !bytes.Equal(files["a"], logA) {
		t.Errorf("a: recovered log = %q, want %q", files["a"], logA)
	}
	if !bytes.Equal(streams["a"], logA) {
		t.Errorf("a: recovered stream = %q, want %q", streams["a"], logA)
	}
	if !bytes.Equal(files["b"], logB) {
		t.Errorf("b: recovered log = %q, want %q", files["b"], logB)
	}
	if _, ok := streams["b"]; ok {
		t.Error("b: FIN-retired stream resurrected by recovery")
	}
	for _, tm := range []int64{20, 21, 30} {
		if !hasRecordAt(files["c"], tm) {
			t.Errorf("c: record at t=%d lost across the stream rewind", tm)
		}
	}
	if !bytes.Equal(streams["c"], walTestRecords(30)) {
		t.Errorf("c: stream after rewind = %q", streams["c"])
	}
}

func TestWALRecoveryEmptyStore(t *testing.T) {
	store := NewCrashStore(nil)
	files, streams := recoverServerState(store)
	if len(files) != 0 || len(streams) != 0 {
		t.Errorf("empty store recovered files=%v streams=%v", files, streams)
	}
	if names := store.Names(); len(names) != 0 {
		t.Errorf("recovery of an empty store created files: %v", names)
	}
}

// TestWALDoubleRecoveryByteIdentical is the recovery-idempotence contract:
// recovering a damaged store normalises it, and recovering the recovered
// store is byte-for-byte the same state without a single further write. The
// damage here is the worst compound case — a compaction that crashed after
// staging snapshot.tmp but before the rename commit point, plus a torn
// un-synced WAL tail.
func TestWALDoubleRecoveryByteIdentical(t *testing.T) {
	store := NewCrashStore(sim.NewRand(99))

	// Installed snapshot: device a with two acknowledged records.
	files0 := map[string][]byte{"a": walTestRecords(1, 2)}
	streams0 := map[string][]byte{"a": walTestRecords(1, 2)}
	store.Append(snapName, encodeSnapshot(files0, streams0))
	store.Sync(snapName)

	// One synced WAL entry past the snapshot.
	entry3 := walEntry{Op: opChunk, Dev: "a", Off: len(streams0["a"]), Data: walTestRecords(3)}
	store.Append(walName, encodeWALEntry(entry3))
	store.Sync(walName)

	// A compaction crashed mid-way: snapshot.tmp staged and synced, rename
	// never happened.
	store.Append(snapTmpName, []byte("half-written compaction output"))
	store.Sync(snapTmpName)

	// And one more WAL entry that never reached its sync barrier — the
	// crash tears it.
	store.Append(walName, encodeWALEntry(walEntry{Op: opChunk, Dev: "a", Off: 0, Data: walTestRecords(4)}))
	store.Crash()

	files1, streams1 := recoverServerState(store)
	for _, tm := range []int64{1, 2, 3} {
		if !hasRecordAt(files1["a"], tm) {
			t.Errorf("synced record at t=%d lost", tm)
		}
	}
	if hasRecordAt(files1["a"], 4) {
		t.Error("un-synced (torn) WAL entry surfaced after recovery")
	}
	state1 := storeState(store)
	if _, ok := state1[snapTmpName]; ok {
		t.Error("recovery left the stale snapshot.tmp behind")
	}
	appends1, syncs1 := store.Appends(), store.Syncs()

	files2, streams2 := recoverServerState(store)
	if !reflect.DeepEqual(files1, files2) || !reflect.DeepEqual(streams1, streams2) {
		t.Error("second recovery produced a different state")
	}
	if !reflect.DeepEqual(state1, storeState(store)) {
		t.Errorf("second recovery changed the medium.\nbefore: %v\nafter:  %v",
			state1, storeState(store))
	}
	if store.Appends() != appends1 || store.Syncs() != syncs1 {
		t.Errorf("second recovery wrote to the medium: appends %d→%d, syncs %d→%d",
			appends1, store.Appends(), syncs1, store.Syncs())
	}
}

// TestWALReplayAgainstFreshSnapshotIsNoOp covers the other compaction crash
// window: the rename commit point fired but the WAL truncation did not, so
// recovery replays a WAL whose effects the snapshot already contains.
func TestWALReplayAgainstFreshSnapshotIsNoOp(t *testing.T) {
	// Build a reference state the long way: snapshot + WAL.
	ref := NewCrashStore(nil)
	entry := walEntry{Op: opChunk, Dev: "a", Off: 0, Data: walTestRecords(1, 2, 3)}
	ref.Append(walName, encodeWALEntry(entry))
	ref.Append(walName, encodeWALEntry(walEntry{Op: opUpload, Dev: "b", Data: walTestRecords(9)}))
	ref.Sync(walName)
	filesRef, streamsRef := recoverServerState(ref)

	// Now the post-install crash state: the fresh snapshot holds the full
	// state and the same WAL is still there, un-truncated.
	store := NewCrashStore(nil)
	store.Append(snapName, encodeSnapshot(filesRef, streamsRef))
	store.Sync(snapName)
	store.Append(walName, encodeWALEntry(entry))
	store.Append(walName, encodeWALEntry(walEntry{Op: opUpload, Dev: "b", Data: walTestRecords(9)}))
	store.Sync(walName)

	files, streams := recoverServerState(store)
	if !reflect.DeepEqual(files, filesRef) || !reflect.DeepEqual(streams, streamsRef) {
		t.Errorf("replay against a snapshot containing its effects changed the state.\n got: %v / %v\nwant: %v / %v",
			files, streams, filesRef, streamsRef)
	}
}

// TestWALTornTailNormalised: recovery rewrites a dirty WAL to its clean
// prefix, so the medium converges instead of carrying damage forward.
func TestWALTornTailNormalised(t *testing.T) {
	store := NewCrashStore(sim.NewRand(5))
	good := encodeWALEntry(walEntry{Op: opUpload, Dev: "a", Data: walTestRecords(1)})
	store.Append(walName, good)
	store.Sync(walName)
	store.Append(walName, encodeWALEntry(walEntry{Op: opUpload, Dev: "a", Data: walTestRecords(2)}))
	store.Crash() // tears the second entry mid-frame

	if store.Size(walName) == len(good) {
		t.Skip("crash kept zero tail bytes — nothing to normalise with this seed")
	}
	files, _ := recoverServerState(store)
	if !hasRecordAt(files["a"], 1) || hasRecordAt(files["a"], 2) {
		t.Errorf("recovered log wrong: %q", files["a"])
	}
	if got := store.Read(walName); !bytes.Equal(got, good) {
		t.Errorf("WAL not normalised to its clean prefix: %d bytes, want %d", len(got), len(good))
	}
}
