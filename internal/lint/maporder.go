package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// NewMapOrder builds the maporder analyzer. Go map iteration order is
// deliberately randomized per process, so any map range whose body has an
// order-dependent effect — appending to an outer slice, writing output,
// sending on a channel, concatenating onto an outer string — injects
// nondeterminism unless the collected result is deterministically sorted
// afterwards in the same function.
func NewMapOrder() *Analyzer {
	a := &Analyzer{
		Name: "maporder",
		Doc:  "flag order-dependent effects inside map iteration without a subsequent sort",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			forEachFuncBody(f, func(body *ast.BlockStmt) {
				checkMapRanges(pass, body)
			})
		}
	}
	return a
}

// forEachFuncBody invokes fn for every function or method body in the file,
// including function literals.
func forEachFuncBody(f *ast.File, fn func(*ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				fn(n.Body)
			}
		case *ast.FuncLit:
			fn(n.Body)
		}
		return true
	})
}

func checkMapRanges(pass *Pass, funcBody *ast.BlockStmt) {
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false // nested function literals get their own visit
		}
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		t := pass.Pkg.Info.TypeOf(rs.X)
		if t == nil {
			return true
		}
		if _, isMap := t.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRangeBody(pass, funcBody, rs)
		return true
	})
}

// checkMapRangeBody inspects one map-range body for order-dependent effects.
func checkMapRangeBody(pass *Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt) {
	info := pass.Pkg.Info
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, funcBody, rs, n)
		case *ast.SendStmt:
			if declaredOutside(info, rootExpr(n.Chan), rs.Pos()) {
				pass.Reportf(n.Pos(), "channel send inside iteration over map: the receiver observes random map order; iterate sorted keys instead")
			}
		case *ast.CallExpr:
			checkMapRangeCall(pass, rs, n)
		}
		return true
	})
}

func checkMapRangeAssign(pass *Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt, as *ast.AssignStmt) {
	info := pass.Pkg.Info
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 {
		if bt, ok := info.TypeOf(as.Lhs[0]).(*types.Basic); ok && bt.Info()&types.IsString != 0 &&
			declaredOutside(info, as.Lhs[0], rs.Pos()) {
			pass.Reportf(as.Pos(), "string concatenation onto %s inside iteration over map: result depends on random map order; iterate sorted keys instead", exprName(as.Lhs[0]))
		}
		return
	}
	// x = append(x, ...) onto a slice declared before the range: map order
	// becomes element order unless the slice is sorted afterwards.
	for i, rhs := range as.Rhs {
		call, ok := rhs.(*ast.CallExpr)
		if !ok || !isBuiltinAppend(info, call) || i >= len(as.Lhs) {
			continue
		}
		target := as.Lhs[i]
		if !declaredOutside(info, target, rs.Pos()) {
			continue
		}
		if sortedAfter(info, funcBody, rs, target) {
			continue
		}
		pass.Reportf(as.Pos(), "append to %s inside iteration over map without a deterministic sort afterwards; sort the result (sort/slices) or iterate sorted keys", exprName(target))
	}
}

func checkMapRangeCall(pass *Pass, rs *ast.RangeStmt, call *ast.CallExpr) {
	info := pass.Pkg.Info
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	if x, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := info.Uses[x].(*types.PkgName); ok {
			if pn.Imported().Path() == "fmt" && (hasPrefix(sel.Sel.Name, "Print") || hasPrefix(sel.Sel.Name, "Fprint")) {
				// Fprint into a writer created inside the loop is fine.
				if hasPrefix(sel.Sel.Name, "Fprint") && len(call.Args) > 0 &&
					!declaredOutside(info, rootExpr(call.Args[0]), rs.Pos()) {
					return
				}
				pass.Reportf(call.Pos(), "fmt.%s inside iteration over map: output order follows random map order; iterate sorted keys instead", sel.Sel.Name)
			}
			return
		}
	}
	switch sel.Sel.Name {
	case "Write", "WriteString", "WriteByte", "WriteRune", "Print", "Printf", "Println":
		if declaredOutside(info, rootExpr(sel.X), rs.Pos()) {
			pass.Reportf(call.Pos(), "%s.%s inside iteration over map: output order follows random map order; iterate sorted keys instead", exprName(sel.X), sel.Sel.Name)
		}
	}
}

// sortedAfter reports whether target is passed to a sort/slices call located
// after the range statement in the same function body.
func sortedAfter(info *types.Info, funcBody *ast.BlockStmt, rs *ast.RangeStmt, target ast.Expr) bool {
	obj := exprObject(info, target)
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rs.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		x, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := info.Uses[x].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(info, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

// exprObject resolves the variable or field identity behind an lvalue.
func exprObject(info *types.Info, e ast.Expr) types.Object {
	switch e := e.(type) {
	case *ast.Ident:
		return info.ObjectOf(e)
	case *ast.SelectorExpr:
		return info.ObjectOf(e.Sel)
	case *ast.IndexExpr:
		return exprObject(info, e.X)
	case *ast.ParenExpr:
		return exprObject(info, e.X)
	case *ast.StarExpr:
		return exprObject(info, e.X)
	}
	return nil
}

func mentionsObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	if obj == nil {
		return false
	}
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && info.ObjectOf(id) == obj {
			found = true
			return false
		}
		return !found
	})
	return found
}

// declaredOutside reports whether the variable behind e exists before pos
// (package-level, field, or declared earlier in the function). Expressions
// whose storage cannot be pinned down are treated as outside, which errs on
// the side of reporting.
func declaredOutside(info *types.Info, e ast.Expr, pos token.Pos) bool {
	obj := exprObject(info, e)
	if obj == nil {
		return true
	}
	if v, ok := obj.(*types.Var); ok && v.IsField() {
		return true // struct fields outlive the loop iteration
	}
	if obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
		return true // package-level, possibly in another file
	}
	return obj.Pos() < pos
}

func rootExpr(e ast.Expr) ast.Expr {
	for {
		switch x := e.(type) {
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		default:
			return e
		}
	}
}

func exprName(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprName(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprName(e.X)
	case *ast.StarExpr:
		return "*" + exprName(e.X)
	case *ast.IndexExpr:
		return exprName(e.X) + "[...]"
	}
	return "expression"
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}
