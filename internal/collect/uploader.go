package collect

import (
	"time"

	"symfail/internal/phone"
)

// Uploader periodically pushes a device's Log File to the collection
// server while the phone is on — the paper's automated software
// infrastructure for transferring Log Files from the phones [1]. Uploads
// are full-file and idempotent, so a phone that dies between uploads only
// loses the tail the server never saw; the final collection at study end
// picks that up.
type Uploader struct {
	dev   *phone.Device
	addr  string
	every time.Duration
	path  string

	attempts  int
	successes int
	lastErr   error
}

// AttachUploader installs a periodic uploader on a device. path is the
// on-flash Log File to ship (the logger's LogPath); every is the upload
// period in simulated time. The schedule is anchored to the collection
// infrastructure, not to the phone's boot cycle: a tick that finds the
// phone off (or frozen) is skipped and the next one fires a period later,
// so reboots never silence the uploads. The TCP transfer itself happens in
// host time inside the simulation event, which is how a transfer that is
// near-instant relative to phone timescales should behave.
func AttachUploader(d *phone.Device, addr, path string, every time.Duration) *Uploader {
	u := &Uploader{dev: d, addr: addr, every: every, path: path}
	u.loop()
	return u
}

// Attempts returns how many uploads were tried.
func (u *Uploader) Attempts() int { return u.attempts }

// Successes returns how many uploads the server acknowledged.
func (u *Uploader) Successes() int { return u.successes }

// LastErr returns the most recent upload error (nil when clean).
func (u *Uploader) LastErr() error { return u.lastErr }

func (u *Uploader) loop() {
	u.dev.Engine().After(u.every, "upload "+u.dev.ID(), func() {
		if u.dev.State() == phone.StateOn {
			u.uploadNow()
		}
		u.loop()
	})
}

func (u *Uploader) uploadNow() {
	data, ok := u.dev.FS().Read(u.path)
	if !ok {
		return // nothing logged yet
	}
	u.attempts++
	if err := Upload(u.addr, u.dev.ID(), data); err != nil {
		// Flaky networks must not crash the phone; try again next period.
		u.lastErr = err
		return
	}
	u.successes++
}
