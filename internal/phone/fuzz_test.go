package phone

import "testing"

// FuzzDecodeActivity: the Database Log Server response parser must never
// panic, whatever a (possibly panicking) server handed back.
func FuzzDecodeActivity(f *testing.F) {
	f.Add("")
	f.Add("voice-call@100:200")
	f.Add("voice-call@100:-1;message@5:9")
	f.Add("garbage;;x@y;a@1:z;@:")
	f.Add("voice-call@:;@1:2")
	f.Fuzz(func(t *testing.T, s string) {
		recs := DecodeActivity(s)
		for _, r := range recs {
			// Whatever decodes must be internally consistent.
			if !r.Ongoing() && r.End < r.Start {
				// Possible with adversarial input: decode tolerates it,
				// but the record must still round-trip without panicking.
				_ = r
			}
		}
		// Round-trip what survived: encode->decode is stable.
		again := DecodeActivity(encodeActivity(recs))
		if len(again) != len(recs) {
			t.Fatalf("round trip changed record count: %d -> %d", len(recs), len(again))
		}
	})
}
