package collect

import (
	"fmt"
	"hash/crc32"
	"net"
	"runtime"
	"testing"
	"time"
)

// fuzzDial throws raw bytes at the server and drains whatever comes back.
// Errors are expected — the server rejects almost everything — the property
// under test is that it survives and stays responsive. The read deadline is
// short: on inputs that leave the server legitimately waiting for more
// bytes (a header with no newline, an undelivered body) there is no reply
// to drain, and the close is what unblocks the handler.
func fuzzDial(addr string, payload []byte) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(200 * time.Millisecond))
	_, _ = conn.Write(payload)
	buf := make([]byte, 256)
	for {
		if _, err := conn.Read(buf); err != nil {
			return
		}
	}
}

// fireAndClose writes the payload and hangs up without waiting for a reply
// — the abusive client whose handler goroutine must still exit promptly.
func fireAndClose(addr string, payload []byte) {
	conn, err := net.DialTimeout("tcp", addr, 5*time.Second)
	if err != nil {
		return
	}
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	_, _ = conn.Write(payload)
	_ = conn.Close()
}

// FuzzServerHeader feeds arbitrary bytes to a live durable server — header
// line, body, framing and all — and asserts the server neither panics nor
// wedges: after every input a well-formed OFFSET round-trip must still
// succeed. The corpus seeds every verb, valid and malformed.
func FuzzServerHeader(f *testing.F) {
	body := []byte("hello")
	sum := crc32.Checksum(body, castagnoli)
	f.Add([]byte(fmt.Sprintf("UPLOAD fuzzdev %d %08x\n%s", len(body), sum, body)))
	f.Add([]byte(fmt.Sprintf("CHUNK fuzzdev 0 %d %08x\n%s", len(body), sum, body)))
	f.Add([]byte("OFFSET fuzzdev\n"))
	f.Add([]byte("FIN fuzzdev\n"))
	f.Add([]byte("UPLOAD fuzzdev 5 00000000\nhello"))   // wrong checksum
	f.Add([]byte("UPLOAD fuzzdev 999 deadbeef\nshort")) // undelivered body
	f.Add([]byte("CHUNK fuzzdev 7 5 00000000\nhello"))  // gap
	f.Add([]byte("CHUNK fuzzdev -1 -1 zz\n"))           // unparsable numbers
	f.Add([]byte("UPLOAD a b c d e f\n"))               // too many fields
	f.Add([]byte("NOSUCHVERB x\n"))
	f.Add([]byte("\n"))
	f.Add([]byte{})
	f.Add([]byte("UPLOAD dev"))                 // no newline: header times out short
	f.Add([]byte{0x7e, 0x00, 0xff, 0x0a, 0x80}) // frame-magic garbage
	f.Add(make([]byte, MaxHeaderBytes+32))      // oversized header line

	ds := NewDataset()
	srv, err := NewServerWith("127.0.0.1:0", ds, ServerConfig{
		MaxStreamBytes: 1 << 16,
		Store:          NewCrashStore(nil),
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { _ = srv.Close() })
	addr := srv.Addr()

	f.Fuzz(func(t *testing.T, data []byte) {
		fuzzDial(addr, data)
		// Liveness: the server must still answer a well-formed query.
		if _, _, err := (NetTransport{}).Offset(addr, "liveness-probe"); err != nil {
			t.Fatalf("server unresponsive after fuzz input %q: %v", data, err)
		}
	})
}

// TestServerNoGoroutineLeakAfterBadTraffic closes the loop the fuzz target
// cannot: after a burst of malformed and abandoned connections, closing the
// server returns the process to its original goroutine count — every
// per-connection goroutine exited.
func TestServerNoGoroutineLeakAfterBadTraffic(t *testing.T) {
	before := runtime.NumGoroutine()

	ds := NewDataset()
	srv, err := NewServerWith("127.0.0.1:0", ds, ServerConfig{Store: NewCrashStore(nil)})
	if err != nil {
		t.Fatal(err)
	}
	inputs := [][]byte{
		[]byte("UPLOAD leakdev 999999 deadbeef\n"), // declared body never sent
		[]byte("CHUNK leakdev 0 5 00000000\nxx"),   // short body
		[]byte("garbage with no newline"),
		[]byte("OFFSET leakdev\n"),
		{},
	}
	for i := 0; i < 20; i++ {
		fireAndClose(srv.Addr(), inputs[i%len(inputs)])
	}
	// Abandon a few connections without writing anything; Close must not
	// wait forever on them (the read deadline reaps them) — but to keep the
	// test fast, close them client-side first.
	for i := 0; i < 5; i++ {
		if conn, err := net.Dial("tcp", srv.Addr()); err == nil {
			conn.Close()
		}
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}

	// Goroutine teardown is asynchronous after Close returns only for the
	// runtime's bookkeeping; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after close", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
