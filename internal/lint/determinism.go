package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// forbiddenFuncs maps package path -> function name -> why it is forbidden
// inside the simulation packages. Each of these injects ambient, run-varying
// state into what must be a pure function of the seed.
var forbiddenFuncs = map[string]map[string]string{
	"time": {
		"Now":       "wall clock; use the sim.Engine virtual clock",
		"Since":     "wall clock; use the sim.Engine virtual clock",
		"Until":     "wall clock; use the sim.Engine virtual clock",
		"Sleep":     "real-time blocking; schedule a sim.Engine event instead",
		"Tick":      "real-time ticker; schedule repeating sim.Engine events",
		"After":     "real-time timer; schedule a sim.Engine event instead",
		"AfterFunc": "real-time timer; schedule a sim.Engine event instead",
		"NewTimer":  "real-time timer; schedule a sim.Engine event instead",
		"NewTicker": "real-time ticker; schedule repeating sim.Engine events",
	},
	"os": {
		"Getenv":    "ambient environment; pass configuration explicitly",
		"LookupEnv": "ambient environment; pass configuration explicitly",
		"Environ":   "ambient environment; pass configuration explicitly",
		"Hostname":  "ambient host identity; pass identity explicitly",
		"Getpid":    "ambient process identity varies per run",
		"Getppid":   "ambient process identity varies per run",
	},
	"runtime": {
		"NumGoroutine": "scheduler-dependent value varies per run",
	},
}

// forbiddenImports are packages whose mere use inside the simulation is a
// determinism leak: their entire API draws on unseeded or ambient entropy.
var forbiddenImports = map[string]string{
	"math/rand":    "global unseeded RNG; use *sim.Rand (xoshiro256**) from the engine",
	"math/rand/v2": "global unseeded RNG; use *sim.Rand (xoshiro256**) from the engine",
	"crypto/rand":  "OS entropy source; use *sim.Rand from the engine",
}

// nondetSource reports why fn is a nondeterminism source, or "" when it is
// not one. It is the target predicate for the transitive reachability pass.
func nondetSource(fn *types.Func) string {
	pkg := fn.Pkg()
	if pkg == nil {
		return ""
	}
	if why, bad := forbiddenImports[pkg.Path()]; bad {
		return why
	}
	if byName := forbiddenFuncs[pkg.Path()]; byName != nil {
		return byName[fn.Name()]
	}
	return ""
}

// DeterminismConfig scopes the determinism rules to package import-path
// prefixes. The default covers every simulation package in the module.
type DeterminismConfig struct {
	RestrictedPrefixes []string
}

// DefaultDeterminismPrefixes is the set of packages under the determinism
// contract: everything that feeds the golden fingerprint, plus the
// collection subsystem whose exports must be replayable.
var DefaultDeterminismPrefixes = []string{
	"symfail/internal/",
}

// NewDeterminism builds the determinism analyzer. It has two layers:
//
// File-local: inside restricted packages, wall-clock reads, real timers,
// ambient environment lookups, and unseeded RNG packages are forbidden at
// the reference site — this catches direct calls and non-call references
// (e.g. `f := time.Now`) alike.
//
// Transitive: a restricted function must also not reach a nondeterminism
// source through code *outside* the restricted set. For every call from a
// restricted function into an analyzed-but-unrestricted function, the call
// graph is searched; if any chain ends at a source, the call site is
// flagged with the full chain. Calls into other restricted functions are
// not re-reported — those functions are judged on their own, so each leak
// is diagnosed exactly once, at the point where control leaves the
// contract's territory. Interface calls are over-approximated to every
// analyzed implementation (the diagnostic says so); dynamic func values
// are not resolved, but a closure's body is charged to the function that
// declares it, which the restricted root set covers.
//
// Virtual time (sim.Engine) and the seeded *sim.Rand are the only
// legitimate sources of time and randomness.
func NewDeterminism(cfg DeterminismConfig) *Analyzer {
	prefixes := cfg.RestrictedPrefixes
	if prefixes == nil {
		prefixes = DefaultDeterminismPrefixes
	}
	a := &Analyzer{
		Name: "determinism",
		Doc:  "forbid wall-clock, environment, and unseeded-RNG use in simulation packages, transitively through the call graph",
	}
	a.Run = func(pass *Pass) {
		if !pathHasPrefix(pass.Pkg.Path, prefixes) {
			return
		}
		for _, f := range pass.Pkg.Files {
			checkDeterminismFile(pass, f)
		}
		checkDeterminismTransitive(pass, prefixes)
	}
	return a
}

func pathHasPrefix(path string, prefixes []string) bool {
	for _, p := range prefixes {
		if strings.HasPrefix(path, p) || path == strings.TrimSuffix(p, "/") {
			return true
		}
	}
	return false
}

func checkDeterminismFile(pass *Pass, f *ast.File) {
	for _, imp := range f.Imports {
		path := strings.Trim(imp.Path.Value, `"`)
		if why, bad := forbiddenImports[path]; bad {
			pass.Reportf(imp.Pos(), "import of %s: %s", path, why)
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		ident, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pkgName, ok := pass.Pkg.Info.Uses[ident].(*types.PkgName)
		if !ok {
			return true
		}
		byName := forbiddenFuncs[pkgName.Imported().Path()]
		if byName == nil {
			return true
		}
		if why, bad := byName[sel.Sel.Name]; bad {
			pass.Reportf(sel.Pos(), "%s.%s: %s", pkgName.Imported().Path(), sel.Sel.Name, why)
		}
		return true
	})
}

// checkDeterminismTransitive flags calls from this (restricted) package
// into unrestricted analyzed code that transitively reaches a
// nondeterminism source, reporting the full call chain.
func checkDeterminismTransitive(pass *Pass, prefixes []string) {
	g := pass.Graph()
	reach := g.ReverseReach(nondetSource)
	for _, n := range g.FuncsOf(pass.Pkg) {
		for _, e := range n.Calls {
			c := e.Callee
			if c.Decl == nil || c.Pkg == nil {
				continue // external callee: direct sources are the file-local layer's job
			}
			if pathHasPrefix(c.Pkg.Path, prefixes) {
				continue // restricted callee is judged in its own package
			}
			if reach[c] == nil {
				continue
			}
			chain := append([]string{shortFuncName(n.Fn)}, ChainFrom(c, reach)...)
			via := ""
			if e.Iface {
				via = " (call resolved by interface over-approximation)"
			}
			pass.ReportChainf(e.Pos.Pos(), chain,
				"call to %s transitively reaches %s: %s%s",
				shortFuncName(c.Fn), chain[len(chain)-1], reachWhy(c, reach), via)
		}
	}
}
