package analysis

import (
	"math"
	"testing"
	"time"

	"symfail/internal/core"
	"symfail/internal/sim"
)

func TestPredictorOnSyntheticData(t *testing.T) {
	s := newSyntheticStudy(t)
	// Alarm on everything, 10-minute horizon: the two burst panics at 1h
	// and 1h02m precede the freeze at 1h03m; the listbox panic at 5h
	// precedes nothing.
	rep := s.EvaluatePredictor(PredictorConfig{Horizon: 10 * time.Minute})
	if rep.Alarms != 3 {
		t.Fatalf("alarms = %d", rep.Alarms)
	}
	if rep.TruePositives != 2 {
		t.Errorf("true positives = %d", rep.TruePositives)
	}
	if rep.HLTotal != 2 || rep.HLPredicted != 1 {
		t.Errorf("HL: total %d predicted %d", rep.HLTotal, rep.HLPredicted)
	}
	wantPrecision := 2.0 / 3.0
	if math.Abs(rep.Precision-wantPrecision) > 1e-9 {
		t.Errorf("precision = %v", rep.Precision)
	}
	if math.Abs(rep.Recall-0.5) > 1e-9 {
		t.Errorf("recall = %v", rep.Recall)
	}
	// Warning lead for the predicted freeze: first alarming panic at 1h,
	// freeze at 1h03m -> 180 s.
	if rep.MedianWarningSeconds != 180 {
		t.Errorf("median warning = %v", rep.MedianWarningSeconds)
	}
}

func TestPredictorCategoryFilter(t *testing.T) {
	s := newSyntheticStudy(t)
	// Only EIKON-LISTBOX alarms: one alarm, no hits.
	rep := s.EvaluatePredictor(PredictorConfig{
		AlarmCategories: []string{"EIKON-LISTBOX"},
		Horizon:         10 * time.Minute,
	})
	if rep.Alarms != 1 || rep.TruePositives != 0 || rep.Precision != 0 {
		t.Errorf("report = %+v", rep)
	}
}

func TestPredictorSweepMonotoneRecall(t *testing.T) {
	s := newSyntheticStudy(t)
	reports := s.PredictorSweep(nil, []time.Duration{
		time.Second, time.Minute, 5 * time.Minute, time.Hour,
	})
	prev := -1.0
	for _, r := range reports {
		if r.Recall < prev {
			t.Fatalf("recall not monotone in horizon: %+v", reports)
		}
		prev = r.Recall
	}
}

func TestPredictorEmpty(t *testing.T) {
	s := New(nil, Options{})
	rep := s.EvaluatePredictor(DefaultPredictorConfig())
	if rep.Alarms != 0 || rep.Precision != 0 || rep.Recall != 0 {
		t.Errorf("empty report = %+v", rep)
	}
}

func TestInterFailureTimes(t *testing.T) {
	s := newSyntheticStudy(t)
	xs := s.InterFailureTimesHours()
	// Two failures (freeze at 1h03m, self-shutdown at 9h): one interval.
	if len(xs) != 1 {
		t.Fatalf("intervals = %v", xs)
	}
	want := sim.Epoch.Add(9 * time.Hour).Sub(sim.Epoch.Add(time.Hour + 3*time.Minute)).Hours()
	if math.Abs(xs[0]-want) > 1e-9 {
		t.Errorf("interval = %v, want %v", xs[0], want)
	}
}

func TestExpFitOnExponentialData(t *testing.T) {
	// Build a dataset whose failures follow an exponential process; the KS
	// test must not reject it.
	r := sim.NewRand(5)
	recs := []coreBootRecord{}
	at := time.Duration(0)
	for i := 0; i < 200; i++ {
		at += r.ExpDuration(100 * time.Hour)
		recs = append(recs, coreBootRecord{at: at, off: 80}) // self-shutdowns
	}
	s := New(map[string][]coreRecordAlias{"p": bootRecsToRecords(recs)}, Options{})
	fit := s.InterFailureExpFit()
	if fit.N != 199 {
		t.Fatalf("N = %d", fit.N)
	}
	if math.Abs(fit.MeanHours-100) > 15 {
		t.Errorf("mean = %v, want ~100", fit.MeanHours)
	}
	if !fit.PassesKS {
		t.Errorf("KS rejected exponential data: D=%.4f crit=%.4f", fit.KS, fit.KSCritical05)
	}
}

func TestExpFitRejectsRegularData(t *testing.T) {
	// Perfectly periodic failures are maximally non-exponential.
	recs := []coreBootRecord{}
	for i := 1; i <= 200; i++ {
		recs = append(recs, coreBootRecord{at: time.Duration(i) * 100 * time.Hour, off: 80})
	}
	s := New(map[string][]coreRecordAlias{"p": bootRecsToRecords(recs)}, Options{})
	fit := s.InterFailureExpFit()
	if fit.PassesKS {
		t.Errorf("KS accepted periodic data: D=%.4f crit=%.4f", fit.KS, fit.KSCritical05)
	}
}

func TestExpFitEmpty(t *testing.T) {
	fit := New(nil, Options{}).InterFailureExpFit()
	if fit.N != 0 || fit.PassesKS {
		t.Errorf("empty fit = %+v", fit)
	}
}

// Test helpers: build self-shutdown boot records at given instants.

type coreBootRecord struct {
	at  time.Duration // when the failure (REBOOT beat) happened
	off float64       // reboot duration in seconds
}

type coreRecordAlias = core.Record

func bootRecsToRecords(recs []coreBootRecord) []core.Record {
	out := []core.Record{{Kind: core.KindBoot, Time: 0, Boot: 1, Detected: core.DetectedFirstBoot}}
	for i, r := range recs {
		bootAt := sim.Epoch.Add(r.at + time.Duration(r.off*float64(time.Second)))
		out = append(out, core.Record{
			Kind:       core.KindBoot,
			Time:       int64(bootAt),
			Boot:       i + 2,
			Detected:   core.DetectedShutdown,
			PrevBeat:   core.BeatReboot,
			PrevTime:   int64(sim.Epoch.Add(r.at)),
			OffSeconds: r.off,
		})
	}
	return out
}

func TestPredictorLeadSlackCatchesFreezeSkew(t *testing.T) {
	// A panic recorded AFTER the freeze's HL timestamp (which is the last
	// heartbeat, up to one period earlier than the actual freeze).
	ds := map[string][]core.Record{
		"p": {
			{Kind: core.KindBoot, Time: 0, Boot: 1, Detected: core.DetectedFirstBoot},
			panicRec(time.Hour+2*time.Minute, "KERN-EXEC", 3, "unspecified"),
			// Freeze whose last ALIVE beat was at 1h (2 min before the panic).
			bootRec(90*time.Minute, 2, core.DetectedFreeze, core.BeatAlive, time.Hour),
		},
	}
	s := New(ds, Options{})
	noSlack := s.EvaluatePredictor(PredictorConfig{Horizon: 10 * time.Minute})
	if noSlack.TruePositives != 0 {
		t.Errorf("without slack TP = %d, want 0 (skewed timestamps)", noSlack.TruePositives)
	}
	withSlack := s.EvaluatePredictor(PredictorConfig{Horizon: 10 * time.Minute, LeadSlack: 5 * time.Minute})
	if withSlack.TruePositives != 1 || withSlack.HLPredicted != 1 {
		t.Errorf("with slack report = %+v", withSlack)
	}
}

func TestBootstrapCI(t *testing.T) {
	r := sim.NewRand(9)
	recs := []coreBootRecord{}
	at := time.Duration(0)
	for i := 0; i < 150; i++ {
		at += r.ExpDuration(150 * time.Hour)
		recs = append(recs, coreBootRecord{at: at, off: 80})
	}
	s := New(map[string][]core.Record{"p": bootRecsToRecords(recs)}, Options{})
	lo, hi := s.BootstrapCI(500, 1)
	if lo <= 0 || hi <= lo {
		t.Fatalf("CI = [%v, %v]", lo, hi)
	}
	mean := s.InterFailureExpFit().MeanHours
	if mean < lo || mean > hi {
		t.Errorf("point estimate %v outside its own CI [%v, %v]", mean, lo, hi)
	}
	// The true mean (150 h) should usually be inside too.
	if 150 < lo || 150 > hi {
		t.Errorf("true mean outside CI [%v, %v]", lo, hi)
	}
	// Degenerate inputs.
	if lo, hi := New(nil, Options{}).BootstrapCI(500, 1); lo != 0 || hi != 0 {
		t.Error("empty study CI nonzero")
	}
	if lo, hi := s.BootstrapCI(2, 1); lo != 0 || hi != 0 {
		t.Error("too few resamples accepted")
	}
}
