// Forumstudy: the section 4 pipeline — generate a synthetic web-forum
// corpus, filter the failure reports out of the chatter, classify failure
// type / recovery / severity, and print Table 1.
package main

import (
	"fmt"

	"symfail/internal/forum"
	"symfail/internal/report"
)

func main() {
	posts := forum.Generate(forum.DefaultGeneratorConfig(2007))

	// Show what the raw data looks like: free text, not labels.
	fmt.Println("a few raw posts from the corpus:")
	shown := 0
	for _, p := range posts {
		if shown >= 4 {
			break
		}
		fmt.Printf("  [%s] %s\n", p.Forum, p.Text)
		shown++
	}

	rep := forum.Analyze(posts)
	fmt.Println()
	fmt.Println(report.Table1(rep))
	fmt.Println(report.Section41(rep))
	fmt.Printf("classifier accuracy vs generator ground truth: %.1f%%\n",
		100*forum.ClassificationAccuracy(posts))
}
