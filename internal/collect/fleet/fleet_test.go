package fleet

import (
	"bytes"
	"fmt"
	"runtime"
	"testing"
	"time"

	"symfail/internal/collect"
	"symfail/internal/core"
	"symfail/internal/sim"
)

// fleetTestLog builds a canonical record log (one panic per timestamp).
func fleetTestLog(times ...int64) []byte {
	var recs []core.Record
	for _, tm := range times {
		recs = append(recs, core.Record{Kind: core.KindPanic, Category: "KERN-EXEC", PType: 3, Time: tm})
	}
	return collect.EncodeRecords(recs)
}

// uploadRetry rides out injected kills the way the study uploader does: a
// dead connection is retried against the same (pinned) fleet address.
func uploadRetry(t *testing.T, addr, id string, data []byte) {
	t.Helper()
	var err error
	for attempt := 0; attempt < 32; attempt++ {
		if attempt > 0 {
			time.Sleep(time.Duration(attempt) * 2 * time.Millisecond)
		}
		if err = collect.Upload(addr, id, data); err == nil {
			return
		}
	}
	t.Fatalf("upload %s never succeeded: %v", id, err)
}

func TestOwnerProperties(t *testing.T) {
	members := []string{"shard-01", "shard-02", "shard-03"}
	seen := make(map[string]bool)
	for i := 0; i < 64; i++ {
		dev := fmt.Sprintf("phone-%02d", i)
		o1, ok := Owner(dev, members)
		if !ok {
			t.Fatalf("no owner for %s", dev)
		}
		o2, _ := Owner(dev, members)
		if o1 != o2 {
			t.Fatalf("owner of %s not deterministic: %s vs %s", dev, o1, o2)
		}
		valid := false
		for _, m := range members {
			valid = valid || m == o1
		}
		if !valid {
			t.Fatalf("owner %s of %s not a member", o1, dev)
		}
		seen[o1] = true
	}
	if len(seen) != len(members) {
		t.Errorf("64 devices landed on only %d of %d shards — the hash is not spreading", len(seen), len(members))
	}
	if _, ok := Owner("phone-01", nil); ok {
		t.Error("empty member list produced an owner")
	}
}

// TestFleetRoutesByDevice: every upload through the router lands on the
// device's rendezvous owner, and the merged dataset is the exact union.
func TestFleetRoutesByDevice(t *testing.T) {
	// Replicate: 1 pins the pre-quorum single-copy fleet: this test's whole
	// point is that exactly the rendezvous owner holds each device.
	f, err := New(Config{Servers: 3, Replicate: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	logs := make(map[string][]byte)
	for i := 0; i < 9; i++ {
		dev := fmt.Sprintf("phone-%02d", i+1)
		logs[dev] = fleetTestLog(int64(100*i+1), int64(100*i+2))
		if err := collect.Upload(f.Addr(), dev, logs[dev]); err != nil {
			t.Fatalf("upload %s: %v", dev, err)
		}
	}

	live, _ := f.Members()
	for dev, data := range logs {
		owner, _ := Owner(dev, live)
		for _, m := range f.members {
			got, ok := m.ds.Get(dev)
			if m.name == owner {
				if !ok || !bytes.Equal(got, data) {
					t.Errorf("%s: owner %s holds %q, want %q", dev, owner, got, data)
				}
			} else if ok {
				t.Errorf("%s: non-owner %s also holds the device", dev, m.name)
			}
		}
	}
	merged := f.MergedDataset()
	for dev, data := range logs {
		got, ok := merged.Get(dev)
		if !ok || !bytes.Equal(got, data) {
			t.Errorf("merged dataset: %s = %q, want %q", dev, got, data)
		}
	}
}

// TestFleetJoinMidUpload: a shard joining mid-study steals ~1/N of the
// devices; their merged logs and live chunk streams replicate to the
// joiner, the epoch bumps, and new traffic for a stolen device routes to
// the joiner — while the merged dataset keeps every record exactly once.
func TestFleetJoinMidUpload(t *testing.T) {
	f, err := New(Config{Servers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	// Find a device the future shard-03 will steal from the current two.
	oldNames := []string{"shard-01", "shard-02"}
	newNames := []string{"shard-01", "shard-02", "shard-03"}
	stolen := ""
	for i := 0; i < 64 && stolen == ""; i++ {
		dev := fmt.Sprintf("phone-%02d", i+1)
		if o, _ := Owner(dev, newNames); o == "shard-03" {
			stolen = dev
		}
	}
	if stolen == "" {
		t.Fatal("no device maps to shard-03 — rendezvous hash degenerate")
	}
	oldOwner, _ := Owner(stolen, oldNames)

	logBytes := fleetTestLog(1, 2, 3)
	if err := collect.Upload(f.Addr(), stolen, logBytes); err != nil {
		t.Fatal(err)
	}
	// A live chunk stream on the old owner: mid-upload state that must
	// follow the device to the joiner.
	streamBytes := fleetTestLog(7)
	if err := collect.Handoff(f.Addr(), stolen, collect.HandoffStream, streamBytes); err != nil {
		t.Fatal(err)
	}

	if err := f.Join(); err != nil {
		t.Fatal(err)
	}
	if got := f.Epoch(); got != 1 {
		t.Errorf("epoch after join = %d, want 1", got)
	}
	if got := f.Servers(); got != 3 {
		t.Errorf("live shards after join = %d, want 3", got)
	}
	if f.Migrated() == 0 {
		t.Error("join migrated no devices")
	}

	joiner := f.members[len(f.members)-1]
	if joiner.name != "shard-03" {
		t.Fatalf("joiner is %s, want shard-03", joiner.name)
	}
	if data, ok := joiner.ds.Get(stolen); !ok || len(data) == 0 {
		t.Errorf("stolen device %s has no log on the joiner", stolen)
	}
	if st, ok := joiner.sup.Stream(stolen); !ok || !bytes.Equal(st, streamBytes) {
		t.Errorf("stolen device %s stream on joiner = %q, want %q", stolen, st, streamBytes)
	}

	// The donor keeps its copy (replication, not movement) and new traffic
	// routes to the joiner.
	for _, m := range f.members {
		if m.name == oldOwner {
			if _, ok := m.ds.Get(stolen); !ok {
				t.Errorf("donor %s dropped its copy of %s", oldOwner, stolen)
			}
		}
	}
	more := fleetTestLog(9)
	if err := collect.Upload(f.Addr(), stolen, more); err != nil {
		t.Fatal(err)
	}
	after, _ := joiner.ds.Get(stolen)
	found := false
	for _, r := range core.ParseRecords(after) {
		found = found || r.Time == 9
	}
	if !found {
		t.Error("post-join upload for the stolen device did not land on the joiner")
	}

	// Exactly once in the merge, replicas and all.
	merged := f.MergedDataset()
	counts := make(map[string]int)
	for _, r := range merged.Records(stolen) {
		counts[string(core.EncodeRecord(r))]++
	}
	for key, n := range counts {
		if n != 1 {
			t.Errorf("record %q appears %d times in the merge", key, n)
		}
	}
	for _, tm := range []int64{1, 2, 3, 7, 9} {
		ok := false
		for _, r := range merged.Records(stolen) {
			ok = ok || r.Time == tm
		}
		if !ok {
			t.Errorf("record at t=%d missing from the merge after join", tm)
		}
	}
}

// TestFleetLeaveMidHandoffNoLoss: a shard leaving while its drain is cut
// short partway (the during-rebalance crashpoint) can lose nothing — the
// departed shard's dataset is retained by the merge.
func TestFleetLeaveMidHandoffNoLoss(t *testing.T) {
	f, err := New(Config{Servers: 3, Rng: sim.NewRand(42)})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()

	live, _ := f.Members()
	logs := make(map[string][]byte)
	leaverDevs := 0
	for i := 0; i < 24; i++ {
		dev := fmt.Sprintf("phone-%02d", i+1)
		logs[dev] = fleetTestLog(int64(10*i + 1))
		if err := collect.Upload(f.Addr(), dev, logs[dev]); err != nil {
			t.Fatal(err)
		}
		if o, _ := Owner(dev, live); o == "shard-01" {
			leaverDevs++
		}
	}
	if leaverDevs == 0 {
		t.Fatal("no device on the leaving shard — the drain is vacuous")
	}

	// Arm the during-rebalance crashpoint by hand: the drain stops after an
	// RNG-drawn prefix of its plan.
	f.mu.Lock()
	f.abortRebalance = true
	f.mu.Unlock()
	if err := f.Leave(); err != nil {
		t.Fatal(err)
	}
	if got := f.Servers(); got != 2 {
		t.Errorf("live shards after leave = %d, want 2", got)
	}
	if got := f.HandoffAborts(); got != 1 {
		t.Errorf("HandoffAborts = %d, want 1", got)
	}
	if f.members[0].live {
		t.Error("shard-01 still live after leave")
	}

	// Every acked record survives the aborted drain, exactly once.
	merged := f.MergedDataset()
	for dev, data := range logs {
		got, ok := merged.Get(dev)
		if !ok {
			t.Errorf("%s lost in the aborted leave", dev)
			continue
		}
		counts := make(map[string]int)
		for _, r := range core.ParseRecords(got) {
			counts[string(core.EncodeRecord(r))]++
		}
		for _, r := range core.ParseRecords(data) {
			if counts[string(core.EncodeRecord(r))] != 1 {
				t.Errorf("%s: record %d not exactly-once after leave", dev, r.Time)
			}
		}
	}

	// The survivors still serve every device, including the leaver's.
	for dev := range logs {
		uploadRetry(t, f.Addr(), dev, fleetTestLog(999))
	}
}

// TestFleetKillSubsetsAndRouterRestart: with kills drawn every 2-4 routed
// requests over {shards, router}, uploads with client retries still land
// every record exactly once, the router rebinds its pinned address, and
// crashed shards hand their state to peers.
func TestFleetKillSubsetsAndRouterRestart(t *testing.T) {
	f, err := New(Config{
		Servers: 3,
		Crash:   collect.CrashFaults{KillEveryMin: 2, KillEveryMax: 4},
		Rng:     sim.NewRand(7),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	addr := f.Addr()

	logs := make(map[string][]byte)
	for round := 0; round < 6; round++ {
		for i := 0; i < 6; i++ {
			dev := fmt.Sprintf("phone-%02d", i+1)
			logs[dev] = append(logs[dev], fleetTestLog(int64(100*round+i+1))...)
			uploadRetry(t, addr, dev, logs[dev])
		}
	}
	if err := f.Err(); err != nil {
		t.Fatalf("fleet error: %v", err)
	}
	if f.Crashes() == 0 {
		t.Error("no shard crashes fired")
	}
	if f.Restarts() != f.Crashes() {
		t.Errorf("crashes %d != restarts %d", f.Crashes(), f.Restarts())
	}
	if f.RouterKills() == 0 {
		t.Error("the router was never drawn into a kill subset")
	}
	if f.RouterRestarts() != f.RouterKills() {
		t.Errorf("router kills %d != restarts %d", f.RouterKills(), f.RouterRestarts())
	}
	if got := f.Addr(); got != addr {
		t.Errorf("fleet address moved across router restarts: %s -> %s", addr, got)
	}

	merged := f.MergedDataset()
	for _, dev := range f.AckedDevices() {
		counts := make(map[string]int)
		for _, r := range merged.Records(dev) {
			counts[string(core.EncodeRecord(r))]++
		}
		for _, key := range f.AckedKeys(dev) {
			if counts[key] != 1 {
				t.Errorf("%s: acked record present %d times after fleet kills", dev, counts[key])
			}
		}
	}
}

// TestFleetNoGoroutineLeak is the satellite leak check: after kill/restart
// cycles on every shard and the router, plus a join and a leave, closing
// the fleet returns the process to its original goroutine count — no
// acceptor survives a listener rebind, no handler survives its connection.
func TestFleetNoGoroutineLeak(t *testing.T) {
	before := runtime.NumGoroutine()

	f, err := New(Config{
		Servers: 3,
		Crash:   collect.CrashFaults{KillEveryMin: 2, KillEveryMax: 4},
		Rng:     sim.NewRand(11),
	})
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 4; round++ {
		for i := 0; i < 6; i++ {
			dev := fmt.Sprintf("phone-%02d", i+1)
			uploadRetry(t, f.Addr(), dev, fleetTestLog(int64(10*round+i+1)))
		}
	}
	if err := f.Join(); err != nil {
		t.Fatal(err)
	}
	if err := f.Leave(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		dev := fmt.Sprintf("phone-%02d", i+1)
		uploadRetry(t, f.Addr(), dev, fleetTestLog(int64(1000+i)))
	}
	kills := f.Crashes() + f.RouterKills()
	if kills == 0 {
		t.Fatal("leak check ran without a single kill/restart cycle")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after %d kills: %d before, %d after close",
				kills, before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
