package symfail

import (
	"testing"
	"time"

	"symfail/internal/collect"
	"symfail/internal/phone"
)

// TestAdversitySweepTable reproduces the salvaged/lost-record table in
// EXPERIMENTS.md ("Adversity layer"): run with -v to print the measured
// rates per fault calibration. It asserts nothing beyond the runs
// completing — the chaos tests own the invariants — so it is skipped in
// -short mode.
func TestAdversitySweepTable(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is for EXPERIMENTS.md reproduction; chaos tests cover the invariants")
	}
	for _, torn := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		for _, rot := range []float64{0, 0.002} {
			cfg := FieldStudyConfig{
				Seed:        555,
				Phones:      8,
				Workers:     4, // the sweep rides the sharded path, like CI's race run
				Duration:    4 * phone.StudyMonth,
				JoinWindow:  phone.StudyMonth / 2,
				UploadEvery: 3 * 24 * time.Hour,
				Adversity: AdversityConfig{
					Flash:     phone.FlashFaults{TornWriteProb: torn, BitRotPerWrite: rot},
					Net:       collect.NetFaults{RefuseProb: 0.08, DropProb: 0.04, CorruptProb: 0.04, DropAckProb: 0.04},
					RetryBase: 20 * time.Minute,
					RetryMax:  12 * time.Hour,
				},
			}
			fs, srv, err := RunFieldStudyWithCollector(cfg)
			if err != nil {
				t.Fatal(err)
			}
			var tornN, flips uint64
			for _, d := range fs.Fleet.Devices {
				tornN += d.FS().TornWrites()
				flips += d.FS().BitFlips()
			}
			salvaged, lost, total := 0, 0, 0
			for _, id := range fs.Dataset.Devices() {
				for _, r := range fs.Dataset.Records(id) {
					total++
					salvaged += r.LogSalvaged
					lost += r.LogLost
				}
			}
			rep := ValidateDetection(fs)
			t.Logf("torn=%.2f rot=%.3f | tornWrites=%d bitFlips=%d | salvaged=%d lost=%d totalRecs=%d | panicCapture=%.3f freezeRecall=%.3f",
				torn, rot, tornN, flips, salvaged, lost, total, rep.PanicCaptureRate, rep.FreezeRecall)
			srv.Close()
		}
	}
}
