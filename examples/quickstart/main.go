// Quickstart: instrument a single simulated Symbian phone with the failure
// data logger, run one month of virtual usage, and print what the logger
// detected — freezes, self-shutdowns, and panic records.
package main

import (
	"fmt"
	"time"

	"symfail/internal/core"
	"symfail/internal/phone"
	"symfail/internal/sim"
)

func main() {
	// One discrete-event engine drives everything; a month of phone life
	// simulates in a few milliseconds.
	eng := sim.NewEngine()

	// A phone with the default calibration (the paper-shaped one).
	dev := phone.NewDevice("demo-phone", eng, phone.DefaultConfig(42))

	// Install the paper's logger: Heartbeat, Panic Detector, Running
	// Applications Detector, Log Engine, Power Manager.
	logger := core.Install(dev, core.Config{})

	// Enrol the phone and simulate one month.
	dev.Enroll(sim.Epoch)
	if err := eng.Run(sim.Epoch.Add(30 * 24 * time.Hour)); err != nil {
		fmt.Println("run:", err)
		return
	}
	dev.Finalize()

	fmt.Printf("simulated 30 days; phone booted %d times, observed %.0f on-hours\n\n",
		dev.BootCount(), dev.Oracle().ObservedHours)

	fmt.Println("logger records (the consolidated Log File):")
	for _, r := range logger.Records() {
		switch r.Kind {
		case core.KindBoot:
			if r.Detected == core.DetectedFirstBoot {
				fmt.Printf("  %-12s boot #%d (first boot)\n", r.When(), r.Boot)
				continue
			}
			fmt.Printf("  %-12s boot #%d: previous session ended in %s (off %.0f s)\n",
				r.When(), r.Boot, r.Detected, r.OffSeconds)
		case core.KindPanic:
			fmt.Printf("  %-12s panic %-18s apps=%v activity=%s\n",
				r.When(), r.PanicKey(), r.Apps, r.Activity)
		}
	}

	// Ground truth from the simulator's oracle, for comparison: the
	// logger has no access to this.
	fmt.Printf("\nground truth: %d freezes, %d self-shutdowns, %d panics\n",
		dev.Oracle().Count(phone.TruthFreeze),
		dev.Oracle().Count(phone.TruthSelfShutdown),
		dev.Oracle().PanicCount())
}
