package symbos

import (
	"testing"
	"time"

	"symfail/internal/sim"
)

func TestActiveObjectRunsOnCompletion(t *testing.T) {
	k, proc := newTestKernel(t)
	var got []int
	ao := proc.Main().NewActiveObject("worker", 0, func(code int) {
		got = append(got, code)
	})
	k.Exec(proc.Main(), "issue", func() { ao.SetActive() })
	ao.Complete(KErrNone)
	if err := k.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0] != KErrNone {
		t.Errorf("RunL calls = %v", got)
	}
	if ao.Runs() != 1 {
		t.Errorf("Runs = %d", ao.Runs())
	}
	if ao.IsActive() {
		t.Error("still active after dispatch")
	}
}

func TestActiveSchedulerPriorityOrder(t *testing.T) {
	k, proc := newTestKernel(t)
	var order []string
	lo := proc.Main().NewActiveObject("lo", 1, func(int) { order = append(order, "lo") })
	hi := proc.Main().NewActiveObject("hi", 9, func(int) { order = append(order, "hi") })
	k.Exec(proc.Main(), "issue", func() {
		lo.SetActive()
		hi.SetActive()
	})
	// Complete low first; the scheduler must still run high first because
	// both completions are pending when dispatch happens.
	lo.Complete(KErrNone)
	hi.Complete(KErrNone)
	if err := k.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "hi" || order[1] != "lo" {
		t.Errorf("dispatch order = %v", order)
	}
}

func TestStraySignalPanics(t *testing.T) {
	k, proc := newTestKernel(t)
	var panics []string
	k.SubscribeRDebug(func(p *Panic) { panics = append(panics, p.Key()) })
	ao := proc.Main().NewActiveObject("stray", 0, func(int) {})
	// Complete without SetActive: a stray signal.
	ao.Complete(KErrNone)
	if err := k.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(panics) != 1 || panics[0] != "E32USER-CBase 46" {
		t.Errorf("panics = %v, want [E32USER-CBase 46]", panics)
	}
}

func TestRunLLeaveWithoutRunErrorPanics(t *testing.T) {
	k, proc := newTestKernel(t)
	var panics []string
	k.SubscribeRDebug(func(p *Panic) { panics = append(panics, p.Key()) })
	ao := proc.Main().NewActiveObject("leaver", 0, func(int) {
		proc.Main().Leave(KErrGeneral)
	})
	k.Exec(proc.Main(), "issue", func() { ao.SetActive() })
	ao.Complete(KErrNone)
	if err := k.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(panics) != 1 || panics[0] != "E32USER-CBase 47" {
		t.Errorf("panics = %v, want [E32USER-CBase 47]", panics)
	}
}

func TestRunLLeaveHandledByRunError(t *testing.T) {
	k, proc := newTestKernel(t)
	var panics []string
	k.SubscribeRDebug(func(p *Panic) { panics = append(panics, p.Key()) })
	handled := 0
	ao := proc.Main().NewActiveObject("leaver", 0, func(int) {
		proc.Main().Leave(KErrNoMemory)
	})
	ao.SetRunError(func(code int) bool {
		if code == KErrNoMemory {
			handled++
			return true
		}
		return false
	})
	k.Exec(proc.Main(), "issue", func() { ao.SetActive() })
	ao.Complete(KErrNone)
	if err := k.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if handled != 1 {
		t.Errorf("RunError handled %d times", handled)
	}
	if len(panics) != 0 {
		t.Errorf("unexpected panics %v", panics)
	}
}

func TestViewSrvStarvationPanics(t *testing.T) {
	k, proc := newTestKernel(t)
	var panics []string
	k.SubscribeRDebug(func(p *Panic) { panics = append(panics, p.Key()) })
	proc.Main().WatchViewSrv()
	ao := proc.Main().NewActiveObject("hog", 0, func(int) {})
	ao.SetCost(30 * time.Second) // beyond the 10 s ViewSrv timeout
	k.Exec(proc.Main(), "issue", func() { ao.SetActive() })
	ao.Complete(KErrNone)
	if err := k.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(panics) != 1 || panics[0] != "ViewSrv 11" {
		t.Errorf("panics = %v, want [ViewSrv 11]", panics)
	}
}

func TestViewSrvIgnoresUnwatchedThreads(t *testing.T) {
	k, proc := newTestKernel(t)
	var panics []string
	k.SubscribeRDebug(func(p *Panic) { panics = append(panics, p.Key()) })
	ao := proc.Main().NewActiveObject("hog", 0, func(int) {})
	ao.SetCost(30 * time.Second)
	k.Exec(proc.Main(), "issue", func() { ao.SetActive() })
	ao.Complete(KErrNone)
	if err := k.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if len(panics) != 0 {
		t.Errorf("panics = %v on unwatched thread", panics)
	}
}

func TestCancelPreventsDispatch(t *testing.T) {
	k, proc := newTestKernel(t)
	runs := 0
	ao := proc.Main().NewActiveObject("c", 0, func(int) { runs++ })
	k.Exec(proc.Main(), "issue", func() { ao.SetActive() })
	ao.Cancel()
	if err := k.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if runs != 0 {
		t.Errorf("RunL ran %d times after Cancel", runs)
	}
}

func TestTimerFiresAfterDelay(t *testing.T) {
	k, proc := newTestKernel(t)
	var firedAt sim.Time = sim.Never
	ao := proc.Main().NewActiveObject("tick", 0, func(int) { firedAt = k.Now() })
	tm := NewTimer(ao)
	k.Exec(proc.Main(), "arm", func() { tm.After(5 * time.Second) })
	if !tm.Outstanding() {
		t.Error("timer not outstanding after After")
	}
	if err := k.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if firedAt != sim.Epoch.Add(5*time.Second) {
		t.Errorf("fired at %v", firedAt)
	}
	if tm.Outstanding() {
		t.Error("timer still outstanding after firing")
	}
}

func TestTimerDoubleArmPanics(t *testing.T) {
	k, proc := newTestKernel(t)
	ao := proc.Main().NewActiveObject("tick", 0, func(int) {})
	tm := NewTimer(ao)
	p := k.Exec(proc.Main(), "double", func() {
		tm.After(time.Second)
		tm.After(time.Second)
	})
	if p == nil || p.Key() != "KERN-EXEC 15" {
		t.Fatalf("panic = %v, want KERN-EXEC 15", p)
	}
}

func TestTimerCancel(t *testing.T) {
	k, proc := newTestKernel(t)
	runs := 0
	ao := proc.Main().NewActiveObject("tick", 0, func(int) { runs++ })
	tm := NewTimer(ao)
	k.Exec(proc.Main(), "arm", func() { tm.After(time.Second) })
	tm.Cancel()
	tm.Cancel() // idempotent
	if err := k.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if runs != 0 {
		t.Errorf("cancelled timer ran %d times", runs)
	}
	// Re-arming after cancel must not raise KERN-EXEC 15.
	k.Exec(proc.Main(), "rearm", func() { tm.After(time.Second) })
	if err := k.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if runs != 1 {
		t.Errorf("re-armed timer ran %d times", runs)
	}
}

func TestPeriodicHeartbeatPattern(t *testing.T) {
	// The logger's heartbeat is an AO re-arming its own timer; make sure
	// the pattern works for many iterations.
	k, proc := newTestKernel(t)
	beats := 0
	var ao *ActiveObject
	var tm *Timer
	ao = proc.Main().NewActiveObject("heartbeat", 0, func(int) {
		beats++
		tm.After(30 * time.Second)
	})
	tm = NewTimer(ao)
	k.Exec(proc.Main(), "arm", func() { tm.After(30 * time.Second) })
	if err := k.Engine().Run(sim.Epoch.Add(10 * time.Minute)); err != nil {
		t.Fatal(err)
	}
	if beats != 20 {
		t.Errorf("beats = %d, want 20", beats)
	}
}

func TestTerminatedProcessStopsDispatch(t *testing.T) {
	k, proc := newTestKernel(t)
	runs := 0
	ao := proc.Main().NewActiveObject("w", 0, func(int) { runs++ })
	k.Exec(proc.Main(), "issue", func() { ao.SetActive() })
	ao.Complete(KErrNone)
	k.TerminateProcess(proc)
	if err := k.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if runs != 0 {
		t.Errorf("dead process dispatched %d RunLs", runs)
	}
	// Completing after death must be harmless.
	ao.Complete(KErrNone)
	if err := k.Engine().RunAll(); err != nil {
		t.Fatal(err)
	}
	if runs != 0 {
		t.Errorf("post-mortem completion dispatched %d RunLs", runs)
	}
}

func TestSchedulerLen(t *testing.T) {
	_, proc := newTestKernel(t)
	proc.Main().NewActiveObject("a", 0, func(int) {})
	proc.Main().NewActiveObject("b", 0, func(int) {})
	if proc.Main().Scheduler().Len() != 2 {
		t.Errorf("Len = %d", proc.Main().Scheduler().Len())
	}
	if proc.Main().Scheduler().Thread() != proc.Main() {
		t.Error("scheduler thread mismatch")
	}
}
