package collect

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"symfail/internal/core"
)

// Export/import of collected datasets to the host filesystem, so a study
// can be collected once and analysed many times (the cmd/analyze tool reads
// these directories).
//
// Layout:
//
//	<dir>/manifest.json          {"devices": {"phone-01": 12345, ...}}
//	<dir>/phone-01.log           raw Log File bytes
//	<dir>/phone-02.log
//	...

// manifest describes an exported dataset: device id -> log size in bytes.
type manifest struct {
	Devices map[string]int `json:"devices"`
}

// ExportDir writes the dataset to dir (created if needed). Existing files
// for the same devices are overwritten; unrelated files are left alone.
func ExportDir(ds *Dataset, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("collect: export: %w", err)
	}
	m := manifest{Devices: make(map[string]int)}
	for _, id := range ds.Devices() {
		data, _ := ds.Get(id)
		name, err := deviceFileName(id)
		if err != nil {
			return err
		}
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			return fmt.Errorf("collect: export %s: %w", id, err)
		}
		m.Devices[id] = len(data)
	}
	blob, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("collect: export manifest: %w", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "manifest.json"), blob, 0o644); err != nil {
		return fmt.Errorf("collect: export manifest: %w", err)
	}
	return nil
}

// ImportDir reads a dataset exported by ExportDir. Devices listed in the
// manifest but missing on disk are an error; size mismatches are an error
// (truncated copy).
func ImportDir(dir string) (*Dataset, error) {
	blob, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return nil, fmt.Errorf("collect: import: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("collect: import manifest: %w", err)
	}
	ds := NewDataset()
	ids := make([]string, 0, len(m.Devices))
	for id := range m.Devices {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		name, err := deviceFileName(id)
		if err != nil {
			return nil, err
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, fmt.Errorf("collect: import %s: %w", id, err)
		}
		if len(data) != m.Devices[id] {
			return nil, fmt.Errorf("collect: import %s: size %d, manifest says %d (truncated?)",
				id, len(data), m.Devices[id])
		}
		ds.Put(id, data)
	}
	return ds, nil
}

// StreamDir iterates a dataset exported by ExportDir without loading it
// whole: devices are visited in sorted manifest order, begin is called once
// per device, then fn once per record in log order, with only one device's
// log bytes in memory at a time — this is how cmd/analyze -stream feeds the
// accumulators. Either callback may be nil. Missing files and size
// mismatches are errors, exactly as in ImportDir; a callback error stops
// the iteration and is returned.
func StreamDir(dir string, begin func(deviceID string) error, fn func(deviceID string, r core.Record) error) error {
	blob, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		return fmt.Errorf("collect: stream: %w", err)
	}
	var m manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return fmt.Errorf("collect: stream manifest: %w", err)
	}
	ids := make([]string, 0, len(m.Devices))
	for id := range m.Devices {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		name, err := deviceFileName(id)
		if err != nil {
			return err
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return fmt.Errorf("collect: stream %s: %w", id, err)
		}
		if len(data) != m.Devices[id] {
			return fmt.Errorf("collect: stream %s: size %d, manifest says %d (truncated?)",
				id, len(data), m.Devices[id])
		}
		if begin != nil {
			if err := begin(id); err != nil {
				return err
			}
		}
		if fn == nil {
			continue
		}
		deviceID := id
		if err := core.ScanRecords(data, func(r core.Record) error {
			return fn(deviceID, r)
		}); err != nil {
			return err
		}
	}
	return nil
}

// deviceFileName maps a device id to its on-disk name, rejecting ids that
// would escape the export directory.
func deviceFileName(id string) (string, error) {
	if id == "" || strings.ContainsAny(id, "/\\:") || strings.Contains(id, "..") {
		return "", fmt.Errorf("collect: unsafe device id %q", id)
	}
	return id + ".log", nil
}
