package lint

import (
	"go/ast"
	"go/types"
)

// EngineConfig names the discrete-event engine type guarded by the
// engineshare analyzer.
type EngineConfig struct {
	SimPkg     string // import path of the package defining the engine
	EngineType string // named type, shared as a pointer
}

// DefaultEngineConfig guards *sim.Engine, the module's event scheduler.
var DefaultEngineConfig = EngineConfig{SimPkg: "symfail/internal/sim", EngineType: "Engine"}

// NewEngineShare builds the engineshare analyzer, the static half of the
// sim.Engine ownership contract: an engine and everything scheduled on it
// belong to exactly one goroutine at a time, and nothing in it is locked.
// Handing an engine across a `go` statement — as a call argument, a method
// receiver, a composite-literal field, or a closure capture — puts two
// goroutines in a position to advance or schedule on it concurrently,
// which is a data race and, worse, a determinism leak the race detector
// cannot always see. There is no Split()-style exemption: the only
// sanctioned hand-off is transferring a whole shard to a worker that owns
// it outright, e.g. through sim.RunShards, where the engine never appears
// in the go statement itself.
func NewEngineShare(cfg EngineConfig) *Analyzer {
	if cfg.SimPkg == "" {
		cfg = DefaultEngineConfig
	}
	a := &Analyzer{
		Name: "engineshare",
		Doc:  "flag a sim.Engine handed across a goroutine boundary (engines are single-owner; shard instead)",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkEngineGoStmt(pass, cfg, gs)
				return true
			})
		}
	}
	return a
}

func checkEngineGoStmt(pass *Pass, cfg EngineConfig, gs *ast.GoStmt) {
	report := func(pos ast.Node, name string) {
		pass.Reportf(pos.Pos(), "%s crosses a goroutine boundary; a sim.Engine is owned by exactly one goroutine — hand a whole shard to the worker (see sim.RunShards) instead", name)
	}
	// `go eng.Run(...)`: the receiver itself escapes into the goroutine.
	if sel, ok := gs.Call.Fun.(*ast.SelectorExpr); ok {
		if isEngineType(pass.Pkg.Info.TypeOf(sel.X), cfg) {
			report(sel.X, exprName(sel.X))
		}
	}
	// Engine-typed expressions anywhere in the arguments (including nested
	// composite-literal fields) escape too.
	for _, arg := range gs.Call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			if kv, ok := n.(*ast.KeyValueExpr); ok {
				if _, isIdent := kv.Key.(*ast.Ident); isIdent {
					ast.Inspect(kv.Value, func(m ast.Node) bool { return inspectEngineExpr(pass, cfg, m, report) })
					return false
				}
			}
			return inspectEngineExpr(pass, cfg, n, report)
		})
	}
	// Closure goroutines additionally capture outer engine variables.
	lit, ok := gs.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := pass.Pkg.Info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || !isEngineType(obj.Type(), cfg) {
			return true // fields are judged where the struct crosses the boundary
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // declared inside the goroutine: that goroutine owns it
		}
		report(id, id.Name)
		return true
	})
}

// inspectEngineExpr reports an engine-typed expression escaping through a
// go statement's arguments; it returns false to stop descending once judged.
func inspectEngineExpr(pass *Pass, cfg EngineConfig, n ast.Node, report func(ast.Node, string)) bool {
	e, ok := n.(ast.Expr)
	if !ok || !isEngineType(pass.Pkg.Info.TypeOf(e), cfg) {
		return true
	}
	report(e, exprName(e))
	return false
}

// isEngineType reports whether t is *Engine (or Engine) for the configured
// type.
func isEngineType(t types.Type, cfg EngineConfig) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == cfg.EngineType && obj.Pkg() != nil && obj.Pkg().Path() == cfg.SimPkg
}
