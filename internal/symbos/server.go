package symbos

import "fmt"

// Handler processes one client message inside the server's thread context.
type Handler func(*Message)

// Server is a Symbian system-server application: all system services are
// provided by server processes, and clients reach them through kernel
// message passing (section 2). A server created with system=true is a
// critical server — the paper observes that panics in such servers reboot
// the phone.
type Server struct {
	name    string
	proc    *Process
	handler Handler
	served  uint64
}

// NewServer starts a server process with the given message handler.
func NewServer(k *Kernel, name string, system bool, handler Handler) *Server {
	proc := k.StartProcess(name, system)
	return &Server{name: name, proc: proc, handler: handler}
}

// AdoptServer wraps an existing process as a server (used when an
// application exposes a service from its own process).
func AdoptServer(proc *Process, handler Handler) *Server {
	return &Server{name: proc.name, proc: proc, handler: handler}
}

// Name returns the server name.
func (s *Server) Name() string { return s.name }

// Process returns the server's process.
func (s *Server) Process() *Process { return s.proc }

// Served returns the number of messages processed.
func (s *Server) Served() uint64 { return s.served }

// Message is one client/server request (RMessage). Complete answers it; a
// null RMessagePtr raises USER 70, as does answering twice.
type Message struct {
	Op       int
	Payload  string
	Client   string
	Response string // set by Respond before Complete

	server  *Server
	kernel  *Kernel
	replied bool
	nullPtr bool
	onReply func(code int)
}

// NullifyPtr corrupts the message's RMessagePtr (a modelled defect): the
// next Complete raises USER 70.
func (m *Message) NullifyPtr() { m.nullPtr = true }

// Respond sets the reply payload written back into the client's descriptor
// when the request completes.
func (m *Message) Respond(s string) { m.Response = s }

// Complete answers the request with the given code.
func (m *Message) Complete(code int) {
	if m.nullPtr {
		m.kernel.Raise(CatUser, TypeNullMessageHandle,
			"completing a client/server request through a null RMessagePtr")
	}
	if m.replied {
		m.kernel.Raise(CatUser, TypeNullMessageHandle,
			fmt.Sprintf("message op %d completed twice", m.Op))
	}
	m.replied = true
	m.server.served++
	if m.onReply != nil {
		m.onReply(code)
	}
}

// Session is a client connection to a server, held in the client process's
// object index like any other kernel object.
type Session struct {
	server *Server
	client *Thread
	handle Handle
	open   bool
}

// Connect opens a session from the client thread to the server
// (RSessionBase::CreateSession).
func (s *Server) Connect(client *Thread) *Session {
	h := client.proc.OpenObject("session", s.name)
	return &Session{server: s, client: client, handle: h, open: true}
}

// Handle returns the session's raw handle in the client's object index.
func (sess *Session) Handle() Handle { return sess.handle }

// Connected reports whether the session is usable.
func (sess *Session) Connected() bool {
	return sess.open && sess.server.proc.alive
}

// SendReceive issues a synchronous request (RSessionBase::SendReceive).
// The handler runs in the server's thread context; if the server panics
// before replying, the client sees KErrDisconnected — this is how a panic
// in one process propagates an error (not a panic) into another.
func (sess *Session) SendReceive(op int, payload string) int {
	k := sess.server.proc.kernel
	if !sess.open {
		k.Raise(CatKernExec, TypeBadHandle,
			fmt.Sprintf("SendReceive on closed session to %q", sess.server.name))
	}
	if !sess.server.proc.alive {
		return KErrDisconnected
	}
	m := &Message{
		Op:      op,
		Payload: payload,
		Client:  sess.client.proc.name,
		server:  sess.server,
		kernel:  k,
	}
	code := KErrDisconnected
	m.onReply = func(c int) { code = c }
	k.Exec(sess.server.proc.main, "serve "+sess.server.name, func() {
		sess.server.handler(m)
	})
	return code
}

// Query is SendReceive for requests that carry a reply payload: it returns
// the server's Response alongside the completion code.
func (sess *Session) Query(op int, payload string) (string, int) {
	k := sess.server.proc.kernel
	if !sess.open {
		k.Raise(CatKernExec, TypeBadHandle,
			fmt.Sprintf("Query on closed session to %q", sess.server.name))
	}
	if !sess.server.proc.alive {
		return "", KErrDisconnected
	}
	m := &Message{
		Op:      op,
		Payload: payload,
		Client:  sess.client.proc.name,
		server:  sess.server,
		kernel:  k,
	}
	code := KErrDisconnected
	m.onReply = func(c int) { code = c }
	k.Exec(sess.server.proc.main, "serve "+sess.server.name, func() {
		sess.server.handler(m)
	})
	return m.Response, code
}

// SendAsync issues an asynchronous request whose reply completes ao. The
// server handler runs on the next engine tick, modelling the kernel's
// message queueing.
func (sess *Session) SendAsync(op int, payload string, ao *ActiveObject) {
	k := sess.server.proc.kernel
	if !sess.open {
		k.Raise(CatKernExec, TypeBadHandle,
			fmt.Sprintf("SendAsync on closed session to %q", sess.server.name))
	}
	ao.SetActive()
	m := &Message{
		Op:      op,
		Payload: payload,
		Client:  sess.client.proc.name,
		server:  sess.server,
		kernel:  k,
	}
	m.onReply = func(c int) { ao.Complete(c) }
	k.eng.After(0, "ipc "+sess.server.name, func() {
		if !sess.server.proc.alive {
			ao.Complete(KErrDisconnected)
			return
		}
		k.Exec(sess.server.proc.main, "serve "+sess.server.name, func() {
			sess.server.handler(m)
		})
		if !m.replied {
			// The server panicked mid-request; fail the client request.
			ao.Complete(KErrDisconnected)
		}
	})
}

// Close releases the session (RHandleBase::Close), going through the
// Kernel Server handle path so a corrupted handle raises KERN-SVR 0.
func (sess *Session) Close() {
	if !sess.open {
		return
	}
	sess.open = false
	sess.client.proc.CloseHandle(sess.handle)
}

// CorruptSessionHandle replaces the session's handle with one that does not
// resolve (a modelled defect): the next Close raises KERN-SVR 0.
func (sess *Session) CorruptSessionHandle() {
	sess.handle = sess.client.proc.CorruptHandle()
}
