package phone

import (
	"fmt"
	"sort"

	"symfail/internal/sim"
)

// FlashFaults calibrates the adversity model of the flash medium. The zero
// value is a perfect flash (the pre-adversity behaviour, bit for bit). All
// randomness comes from a Split() child of the device RNG, so fault
// injection is a pure function of the seed.
type FlashFaults struct {
	// TornWriteProb is the chance that the write in flight when power is
	// lost abruptly (a frozen phone's battery pull) persists only a
	// prefix. Orderly shutdowns flush and never tear.
	TornWriteProb float64
	// BitRotPerWrite is the per-write-operation chance that one stored
	// bit of the file being written flips at rest (worn NAND cells).
	BitRotPerWrite float64
	// QuotaBytes caps total flash occupancy; writes that would exceed it
	// are rejected (the file server reports KErrDiskFull). Zero means
	// unlimited.
	QuotaBytes int
}

// Enabled reports whether any fault mode is active.
func (c FlashFaults) Enabled() bool {
	return c.TornWriteProb > 0 || c.BitRotPerWrite > 0 || c.QuotaBytes > 0
}

// FS is the phone's flash filesystem. It persists across reboots, freezes
// and battery pulls — which is precisely why the paper's logger can infer a
// freeze at the next boot: the last heartbeat record survives on flash.
//
// With EnableFaults it also misbehaves the way study-era flash did: an
// abrupt power loss can tear the most recent write down to a prefix, worn
// cells flip bits, and the medium fills up.
type FS struct {
	files  map[string][]byte
	writes uint64

	faults FlashFaults
	rng    *sim.Rand

	// The most recent write is the one "in flight" when power vanishes:
	// a later write implicitly syncs it.
	lastPath string
	lastOff  int // file length before the last write landed
	lastN    int // bytes the last write added past lastOff

	tornWrites   uint64
	bitFlips     uint64
	quotaRejects uint64
}

// NewFS returns an empty, perfect filesystem.
func NewFS() *FS {
	return &FS{files: make(map[string][]byte)}
}

// EnableFaults arms the adversity model. rng must be a Split() child of
// the device RNG (the call order of Split is part of the deterministic
// contract); cfg's zero value disarms faults again.
func (f *FS) EnableFaults(cfg FlashFaults, rng *sim.Rand) {
	f.faults = cfg
	f.rng = rng
}

// Write replaces the contents of path. It reports false when the flash
// quota would be exceeded (the write is rejected whole, like a full
// medium).
func (f *FS) Write(path string, data []byte) bool {
	if !f.CanWrite(path, data) {
		f.quotaRejects++
		return false
	}
	f.files[path] = append([]byte(nil), data...)
	f.writes++
	f.noteWrite(path, 0, len(data))
	return true
}

// Append adds data to the end of path, creating it if needed. It reports
// false when the flash quota would be exceeded.
func (f *FS) Append(path string, data []byte) bool {
	if !f.CanAppend(path, data) {
		f.quotaRejects++
		return false
	}
	off := len(f.files[path])
	f.files[path] = append(f.files[path], data...)
	f.writes++
	f.noteWrite(path, off, len(data))
	return true
}

// CanWrite reports whether replacing path with data fits the quota.
func (f *FS) CanWrite(path string, data []byte) bool {
	return f.faults.QuotaBytes <= 0 ||
		f.TotalSize()-len(f.files[path])+len(data) <= f.faults.QuotaBytes
}

// CanAppend reports whether appending data to path fits the quota.
func (f *FS) CanAppend(path string, data []byte) bool {
	return f.faults.QuotaBytes <= 0 || f.TotalSize()+len(data) <= f.faults.QuotaBytes
}

// noteWrite tracks the in-flight write and applies bit rot to the file
// just written.
func (f *FS) noteWrite(path string, off, n int) {
	f.lastPath, f.lastOff, f.lastN = path, off, n
	if f.faults.BitRotPerWrite <= 0 || f.rng == nil {
		return
	}
	if file := f.files[path]; len(file) > 0 && f.rng.Bool(f.faults.BitRotPerWrite) {
		bit := f.rng.Intn(len(file) * 8)
		file[bit/8] ^= 1 << (bit % 8)
		f.bitFlips++
	}
}

// Crash models an abrupt power loss (battery pulled from a frozen phone):
// with TornWriteProb the most recent write persists only a prefix of what
// it wrote. Orderly shutdowns must not call this — Symbian flushes file
// buffers on the way down.
func (f *FS) Crash() {
	if f.rng == nil || f.lastN == 0 || !f.rng.Bool(f.faults.TornWriteProb) {
		return
	}
	file, ok := f.files[f.lastPath]
	if !ok || len(file) < f.lastOff+f.lastN {
		return // the file shrank since (rewrite/delete); nothing in flight
	}
	keep := f.rng.Intn(f.lastN) // strictly less than lastN: a true tear
	f.files[f.lastPath] = file[:f.lastOff+keep]
	f.tornWrites++
	f.lastN = 0
}

// TornWrites, BitFlips and QuotaRejects count injected flash faults
// (ground truth for experiments; the logger never reads these).
func (f *FS) TornWrites() uint64 { return f.tornWrites }

// BitFlips counts injected bit-rot events.
func (f *FS) BitFlips() uint64 { return f.bitFlips }

// QuotaRejects counts writes rejected by the flash-full quota.
func (f *FS) QuotaRejects() uint64 { return f.quotaRejects }

// Read returns the contents of path and whether it exists. The returned
// slice is a copy; callers cannot corrupt the stored file.
func (f *FS) Read(path string) ([]byte, bool) {
	data, ok := f.files[path]
	if !ok {
		return nil, false
	}
	return append([]byte(nil), data...), true
}

// Delete removes path (missing paths are fine).
func (f *FS) Delete(path string) { delete(f.files, path) }

// Exists reports whether path is present.
func (f *FS) Exists(path string) bool {
	_, ok := f.files[path]
	return ok
}

// Size returns the length of path in bytes (0 when missing).
func (f *FS) Size(path string) int { return len(f.files[path]) }

// TotalSize returns the number of bytes stored across all files.
func (f *FS) TotalSize() int {
	total := 0
	for _, d := range f.files {
		total += len(d)
	}
	return total
}

// Writes returns the cumulative number of write operations (flash wear).
func (f *FS) Writes() uint64 { return f.writes }

// List returns all paths in lexical order.
func (f *FS) List() []string {
	out := make([]string, 0, len(f.files))
	for p := range f.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// MasterReset wipes the filesystem — the "all settings are reset to the
// factory settings and the user's content is removed" recovery action the
// forum study describes for service-centre visits.
func (f *FS) MasterReset() {
	f.files = make(map[string][]byte)
}

// String summarises the filesystem for diagnostics.
func (f *FS) String() string {
	return fmt.Sprintf("fs{files=%d bytes=%d writes=%d}", len(f.files), f.TotalSize(), f.writes)
}
