// Faultinjection: a tour of the simulated Symbian OS. Every panic of the
// paper's Table 2 is raised here by the same API misuse that raises it on a
// real phone: null dereferences, corrupt handles, descriptor overflows,
// stray signals, starved active schedulers, and so on. An RDebug subscriber
// (the hook the paper's Panic Detector uses) captures each one.
package main

import (
	"fmt"
	"time"

	"symfail/internal/sim"
	"symfail/internal/symbos"
)

func main() {
	eng := sim.NewEngine()
	k := symbos.NewKernel(eng)

	// Keep processes alive across demonstrations (the default kernel
	// policy would terminate each offender).
	k.SetPanicHandler(func(*symbos.Panic, *symbos.Process) {})

	var captured []*symbos.Panic
	k.SubscribeRDebug(func(p *symbos.Panic) { captured = append(captured, p) })

	app := k.StartProcess("DemoApp", false)
	app.Main().WatchViewSrv()
	main := app.Main()

	demos := []struct {
		name string
		run  func()
	}{
		{"dereference NULL", func() {
			symbos.NullPtr(k).Deref()
		}},
		{"dereference freed memory", func() {
			c := app.Heap().AllocL(main, 64, "buffer")
			p := symbos.PtrTo(k, c)
			app.Heap().Free(c)
			p.Deref()
		}},
		{"resolve a corrupt handle", func() {
			app.FindObject(app.CorruptHandle())
		}},
		{"close a corrupt handle", func() {
			app.CloseHandle(app.CorruptHandle())
		}},
		{"overflow a descriptor", func() {
			b := symbos.NewBuf(k, 8)
			b.Copy("12345678")
			b.Append("9")
		}},
		{"descriptor position out of bounds", func() {
			b := symbos.NewBuf(k, 16)
			b.Copy("short")
			b.Mid(3, 10)
		}},
		{"delete a CObject with live references", func() {
			o := symbos.NewCObject(k, "shared")
			o.AddRef()
			o.Delete()
		}},
		{"double-arm an RTimer", func() {
			ao := main.NewActiveObject("poll", 1, func(int) {})
			tm := symbos.NewTimer(ao)
			tm.After(time.Second)
			tm.After(time.Second)
		}},
		{"use the cleanup stack with no trap handler", func() {
			w := app.SpawnThread("worker")
			w.DropCleanupStack()
			k.Exec(w, "demo", func() { w.PushL(func() {}) })
		}},
		{"list box with an invalid current item", func() {
			lb := symbos.NewListBox(k)
			lb.AddItem("only")
			lb.SetCurrentItem(5)
		}},
		{"audio volume out of range", func() {
			symbos.NewAudioClient(k).SetVolume(11)
		}},
	}

	for _, d := range demos {
		before := len(captured)
		k.Exec(main, d.name, d.run)
		// Some panics (active-object ones) fire on the next engine tick.
		_ = eng.RunAll()
		if len(captured) > before {
			p := captured[len(captured)-1]
			fmt.Printf("%-42s -> %-18s %s\n", d.name, p.Key(), trim(p.Reason, 52))
		} else {
			fmt.Printf("%-42s -> (no panic?)\n", d.name)
		}
	}

	// Deferred active-object panics: a stray signal and a leaving RunL.
	ao := main.NewActiveObject("notifier", 1, func(int) {})
	ao.Complete(symbos.KErrNone) // never SetActive: stray signal
	leaver := main.NewActiveObject("fetcher", 1, func(int) { main.Leave(symbos.KErrNoMemory) })
	k.Exec(main, "arm", func() { leaver.SetActive() })
	leaver.Complete(symbos.KErrNone)
	hog := main.NewActiveObject("redraw-loop", 1, func(int) {})
	hog.SetCost(45 * time.Second) // monopolise the scheduler
	k.Exec(main, "arm", func() { hog.SetActive() })
	hog.Complete(symbos.KErrNone)
	_ = eng.RunAll()

	fmt.Printf("\ncaptured %d panics in total; the last three (via the active scheduler):\n", len(captured))
	for _, p := range captured[len(captured)-3:] {
		fmt.Printf("  %-18s %s\n", p.Key(), trim(p.Reason, 60))
	}
}

func trim(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
