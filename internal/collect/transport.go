package collect

import (
	"bufio"
	"errors"
	"fmt"
	"hash/crc32"
	"net"
	"strconv"
	"strings"
	"time"

	"symfail/internal/sim"
)

// Transport is how the uploader talks to the collection server. The real
// implementation is NetTransport; FaultyTransport wraps any Transport with
// deterministic, seed-driven network adversity.
type Transport interface {
	// UploadChunk appends chunk at offset of the device's server-side
	// stream and returns the server's acknowledged stream length.
	UploadChunk(addr, deviceID string, offset int, chunk []byte) (ackedLen int, err error)
	// Offset asks the server how much of the device's stream it holds and
	// the CRC-32C of those bytes (for client-side resync).
	Offset(addr, deviceID string) (length int, sum uint32, err error)
}

// ErrRefused is the injected connection-refusal error: the connection
// never happened and no payload byte flowed (the uploader's
// BytesRetransmitted accounting relies on telling refusals apart from
// transfers that died mid-flight).
var ErrRefused = errors.New("collect: connection refused (injected)")

// rawChunkSender is the optional capability FaultyTransport uses to model
// in-flight damage: the header declares (length, checksum of) the intended
// chunk while the body bytes actually sent differ — a truncated prefix for
// a mid-transfer drop, a bit-flipped copy for payload corruption.
type rawChunkSender interface {
	uploadChunkRaw(addr, deviceID string, offset int, declared, body []byte) (int, error)
}

// NetTransport speaks the wire protocol over real TCP.
type NetTransport struct{}

func dialCollect(addr string) (net.Conn, error) {
	conn, err := net.DialTimeout("tcp", addr, 10*time.Second)
	if err != nil {
		return nil, fmt.Errorf("collect: dial %s: %w", addr, err)
	}
	//symlint:allow determinism network I/O deadline on a real socket, not simulated time
	if err := conn.SetDeadline(time.Now().Add(30 * time.Second)); err != nil {
		conn.Close()
		return nil, fmt.Errorf("collect: deadline: %w", err)
	}
	return conn, nil
}

// UploadChunk implements Transport.
func (t NetTransport) UploadChunk(addr, deviceID string, offset int, chunk []byte) (int, error) {
	return t.uploadChunkRaw(addr, deviceID, offset, chunk, chunk)
}

// uploadChunkRaw sends a header describing declared while putting body on
// the wire. UploadChunk passes the same slice for both; FaultyTransport
// passes a truncated or bit-flipped body to model in-flight damage.
func (NetTransport) uploadChunkRaw(addr, deviceID string, offset int, declared, body []byte) (int, error) {
	if err := checkChunkArgs(deviceID, offset, declared); err != nil {
		return 0, err
	}
	conn, err := dialCollect(addr)
	if err != nil {
		return 0, err
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "CHUNK %s %d %d %08x\n",
		deviceID, offset, len(declared), crc32.Checksum(declared, castagnoli)); err != nil {
		return 0, fmt.Errorf("collect: send header: %w", err)
	}
	if _, err := conn.Write(body); err != nil {
		return 0, fmt.Errorf("collect: send chunk: %w", err)
	}
	if len(body) < len(declared) {
		// A dropped connection never sees the server's reply.
		return 0, errors.New("collect: connection dropped mid-transfer (injected)")
	}
	reply, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return 0, fmt.Errorf("collect: read reply: %w", err)
	}
	fields := strings.Fields(strings.TrimSpace(reply))
	if len(fields) != 2 || fields[0] != "OK" {
		return 0, fmt.Errorf("collect: server rejected chunk: %s", strings.TrimSpace(reply))
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 0 {
		return 0, fmt.Errorf("collect: bad ack %q", reply)
	}
	return n, nil
}

// Offset implements Transport.
func (NetTransport) Offset(addr, deviceID string) (int, uint32, error) {
	if strings.ContainsAny(deviceID, " \n\t") || deviceID == "" {
		return 0, 0, fmt.Errorf("collect: invalid device id %q", deviceID)
	}
	conn, err := dialCollect(addr)
	if err != nil {
		return 0, 0, err
	}
	defer conn.Close()
	if _, err := fmt.Fprintf(conn, "OFFSET %s\n", deviceID); err != nil {
		return 0, 0, fmt.Errorf("collect: send header: %w", err)
	}
	reply, err := bufio.NewReader(conn).ReadString('\n')
	if err != nil {
		return 0, 0, fmt.Errorf("collect: read reply: %w", err)
	}
	fields := strings.Fields(strings.TrimSpace(reply))
	if len(fields) != 3 || fields[0] != "OK" {
		return 0, 0, fmt.Errorf("collect: server rejected offset query: %s", strings.TrimSpace(reply))
	}
	n, err := strconv.Atoi(fields[1])
	if err != nil || n < 0 {
		return 0, 0, fmt.Errorf("collect: bad offset %q", reply)
	}
	sum, err := strconv.ParseUint(fields[2], 16, 32)
	if err != nil {
		return 0, 0, fmt.Errorf("collect: bad stream checksum %q", reply)
	}
	return n, uint32(sum), nil
}

func checkChunkArgs(deviceID string, offset int, chunk []byte) error {
	if strings.ContainsAny(deviceID, " \n\t") || deviceID == "" {
		return fmt.Errorf("collect: invalid device id %q", deviceID)
	}
	if offset < 0 || offset+len(chunk) > MaxUploadBytes {
		return ErrTooLarge
	}
	return nil
}

// RetryNetTransport is NetTransport with bounded host-time retries on
// transport-level failures: dial errors, dead connections, lost replies.
// The sharded fleet path uses it so that shard and router kill windows —
// host-time phenomena measured in milliseconds — never surface to the
// simulated uploader, whose shortest retry is half an hour of simulated
// time; a window crossing a master reset would otherwise destroy records
// the single-server study delivered. Protocol rejections (a parsed ERR
// reply) are real answers, not windows, and pass through unretried; so
// does every injected FaultyTransport fault, which either never reaches
// this layer or arrives via the raw path below.
type RetryNetTransport struct{}

// transientNetErr reports whether an error means "no complete reply" — the
// connection failed somewhere between dial and the reply line — or the
// router gave up waiting for a shard; both heal with time.
func transientNetErr(err error) bool {
	if err == nil {
		return false
	}
	s := err.Error()
	return strings.Contains(s, "dial") || strings.Contains(s, "deadline") ||
		strings.Contains(s, "send header") || strings.Contains(s, "send chunk") ||
		strings.Contains(s, "read reply") || strings.Contains(s, "shard unavailable")
}

// IsBelowQuorum reports whether an error is the fleet's retryable
// below-quorum rejection: the write was refused (or committed locally but
// not replicated) because fewer than W shards were reachable. It is an
// honest "not yet durable enough" — the uploader's backoff, or this layer's
// host-time retry, absorbs it until quorum returns.
func IsBelowQuorum(err error) bool {
	return err != nil && strings.Contains(err.Error(), "quorum")
}

// IsTransient reports whether an error names a transport-level window — a
// dead connection or an unreachable shard — rather than a protocol answer.
// Callers with their own host-time retry loops (the end-of-study upload)
// use it to keep waiting out a slow server restart instead of failing fast.
func IsTransient(err error) bool { return transientNetErr(err) }

// The budget is deliberately generous (3s of host time): on a loaded
// single-CPU host a restarting shard's WAL replay competes with every
// simulation worker for the one core, and a kill window that outlives
// this loop surfaces a transport error the simulated uploader answers
// with half an hour of simulated backoff — changing the collected bytes.
func retryNet(do func() error) {
	for attempt := 0; attempt < 600; attempt++ {
		if attempt > 0 {
			// Host-time pause while a real router/shard rebinds; the
			// simulation never observes it.
			//symlint:allow determinism host-time pause while a real TCP peer rebinds
			time.Sleep(5 * time.Millisecond)
		}
		// A below-quorum ERR is a parsed protocol reply, but unlike other
		// rejections it names a transient fleet state (a shard restarting
		// inside its kill window), so it retries like a dead connection.
		if err := do(); !transientNetErr(err) && !IsBelowQuorum(err) {
			return
		}
	}
}

// UploadChunk implements Transport with transient-failure retries.
func (RetryNetTransport) UploadChunk(addr, deviceID string, offset int, chunk []byte) (n int, err error) {
	retryNet(func() error {
		n, err = NetTransport{}.UploadChunk(addr, deviceID, offset, chunk)
		return err
	})
	return n, err
}

// Offset implements Transport with transient-failure retries.
func (RetryNetTransport) Offset(addr, deviceID string) (n int, sum uint32, err error) {
	retryNet(func() error {
		n, sum, err = NetTransport{}.Offset(addr, deviceID)
		return err
	})
	return n, sum, err
}

// uploadChunkRaw passes injected in-flight damage through unretried: a
// truncated or corrupted body is a deterministic fault draw, and retrying
// it would turn injected adversity into a different experiment.
func (RetryNetTransport) uploadChunkRaw(addr, deviceID string, offset int, declared, body []byte) (int, error) {
	return NetTransport{}.uploadChunkRaw(addr, deviceID, offset, declared, body)
}

// NetFaults calibrates the network adversity model. The zero value is a
// perfect network.
type NetFaults struct {
	// RefuseProb is the chance a connection attempt is refused outright
	// (no bearer — the phone is out of coverage).
	RefuseProb float64
	// DropProb is the chance the connection dies mid-transfer: the server
	// receives a header and a prefix of the payload, then EOF.
	DropProb float64
	// CorruptProb is the chance one bit of the payload flips in flight
	// (the server's checksum rejects the chunk).
	CorruptProb float64
	// DropAckProb is the chance the transfer succeeds but the
	// acknowledgement never reaches the phone — the classic two-generals
	// hazard that makes idempotent merge mandatory.
	DropAckProb float64
}

// Enabled reports whether any network fault mode is active.
func (c NetFaults) Enabled() bool {
	return c.RefuseProb > 0 || c.DropProb > 0 || c.CorruptProb > 0 || c.DropAckProb > 0
}

// FaultyTransport injects deterministic network faults in front of an inner
// Transport. All randomness comes from the supplied RNG (a Split() child of
// the owning device's stream), so a given seed and fault config always
// produce the same failure sequence. Not safe for sharing across devices:
// give each device its own wrapper and RNG.
type FaultyTransport struct {
	inner  Transport
	faults NetFaults
	rng    *sim.Rand

	refused   int
	dropped   int
	corrupted int
	lostAcks  int
}

// NewFaultyTransport wraps inner (nil means NetTransport) with the given
// fault calibration.
func NewFaultyTransport(inner Transport, faults NetFaults, rng *sim.Rand) *FaultyTransport {
	if inner == nil {
		inner = NetTransport{}
	}
	return &FaultyTransport{inner: inner, faults: faults, rng: rng}
}

// UploadChunk implements Transport with injected adversity. The fault draws
// happen in a fixed order (refuse, drop, corrupt, ack-loss) so the stream
// consumption per call is reproducible.
func (t *FaultyTransport) UploadChunk(addr, deviceID string, offset int, chunk []byte) (int, error) {
	if t.rng.Bool(t.faults.RefuseProb) {
		t.refused++
		return 0, ErrRefused
	}
	if len(chunk) > 0 && t.rng.Bool(t.faults.DropProb) {
		t.dropped++
		sendOnly := t.rng.Intn(len(chunk))
		if rs, ok := t.inner.(rawChunkSender); ok {
			return rs.uploadChunkRaw(addr, deviceID, offset, chunk, chunk[:sendOnly])
		}
		return 0, errors.New("collect: connection dropped mid-transfer (injected)")
	}
	if len(chunk) > 0 && t.rng.Bool(t.faults.CorruptProb) {
		t.corrupted++
		bad := append([]byte(nil), chunk...)
		bit := t.rng.Intn(len(bad) * 8)
		bad[bit/8] ^= 1 << (bit % 8)
		// The header still describes the intended chunk — the damage is
		// in flight, so the server's checksum must catch it.
		if rs, ok := t.inner.(rawChunkSender); ok {
			return rs.uploadChunkRaw(addr, deviceID, offset, chunk, bad)
		}
		return 0, errors.New("collect: payload corrupted in flight (injected)")
	}
	acked, err := t.inner.UploadChunk(addr, deviceID, offset, chunk)
	if err == nil && t.rng.Bool(t.faults.DropAckProb) {
		t.lostAcks++
		return 0, errors.New("collect: acknowledgement lost (injected)")
	}
	return acked, err
}

// Offset implements Transport; only connection refusal applies (the reply
// is a dozen bytes — corruption there is a rounding error next to payload
// corruption, and modelling it would not exercise new recovery paths).
func (t *FaultyTransport) Offset(addr, deviceID string) (int, uint32, error) {
	if t.rng.Bool(t.faults.RefuseProb) {
		t.refused++
		return 0, 0, ErrRefused
	}
	return t.inner.Offset(addr, deviceID)
}

// Injected returns the per-mode injected fault counts (ground truth for
// experiments).
func (t *FaultyTransport) Injected() (refused, dropped, corrupted, lostAcks int) {
	return t.refused, t.dropped, t.corrupted, t.lostAcks
}
