// Command symfail runs the full reproduction: the web-forum preliminary
// study (section 4) and the 25-phone, 14-month instrumented field study
// (sections 5-6), printing every table and figure of the paper.
//
// Usage:
//
//	symfail [-seed N] [-phones N] [-months N] [-workers N] [-tcp] [-servers N] [-fleet-kill N] [-replicate R] [-quorum W] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"sort"
	"time"

	"symfail"
	"symfail/internal/analysis/stream"
	"symfail/internal/collect"
	"symfail/internal/collect/fleet"
	"symfail/internal/core"
	"symfail/internal/phone"
	"symfail/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "symfail:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("symfail", flag.ContinueOnError)
	var (
		seed       = fs.Uint64("seed", 2007, "random seed for the whole study")
		phones     = fs.Int("phones", 25, "number of instrumented phones")
		months     = fs.Int("months", 14, "observation window in months")
		workers    = fs.Int("workers", 0, "concurrent device shards (0 = GOMAXPROCS, 1 = serial; any value gives byte-identical results)")
		useTCP     = fs.Bool("tcp", false, "collect logs over a local TCP collection server")
		serverKill = fs.Int("server-kill", 0, "with -tcp: crash the collection server about every N uploads and recover it from its write-ahead log (0 = no crashes)")
		servers    = fs.Int("servers", 1, "with -tcp: shard the collection tier across N servers behind a device-hash router (1 = the single durable server)")
		fleetKill  = fs.Int("fleet-kill", 0, "with -tcp -servers N>1: about every N routed requests, kill an RNG-drawn subset of {shards, router} and recover/hand off (0 = no kills)")
		replicate  = fs.Int("replicate", 0, "with -tcp -servers N>1: write-time replication factor R — every ACK covers R durable copies (0 = fleet default 3 capped at the membership, 1 = replication off)")
		quorum     = fs.Int("quorum", 0, "with -replicate: write quorum W — the ACK needs W of the R copies WAL-synced; below W the fleet refuses writes with a retryable ERR (0 = min(2, R))")
		quick      = fs.Bool("quick", false, "shortcut: 8 phones, 4 months (for smoke runs)")
		extras     = fs.Bool("extras", false, "print beyond-the-paper analyses and the user-report extension")
		export     = fs.String("export", "", "export the collected dataset to this directory (for cmd/analyze)")
		streamMode = fs.Bool("stream", false, "print live collection progress from the streaming accumulators (and, with -tcp, the server's live record tap)")
		serveAddr  = fs.String("serve-queries", "", "after the study, keep serving the live query tier on this address (e.g. 127.0.0.1:7070) until interrupted; query it with cmd/symquery (status, mtbf, panics [n], freezerate [days])")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := symfail.DefaultFieldStudyConfig(*seed)
	cfg.Phones = *phones
	cfg.Workers = *workers
	cfg.Duration = time.Duration(*months) * phone.StudyMonth
	if *quick {
		cfg.Phones = 8
		cfg.Duration = 4 * phone.StudyMonth
		cfg.JoinWindow = phone.StudyMonth
	}
	cfg.WithUserReporter = *extras
	if *serverKill > 0 {
		if !*useTCP {
			return fmt.Errorf("-server-kill needs -tcp (crashes are injected into the TCP collection server)")
		}
		// A uniform window around N keeps kills irregular but centred on
		// the requested rate.
		cfg.Adversity.ServerCrash = collect.CrashFaults{
			KillEveryMin: (*serverKill + 1) / 2,
			KillEveryMax: *serverKill + (*serverKill+1)/2,
		}
		// Weekly uploads also enable periodic chunking, so crashes land on
		// a live stream, not only on the final collection.
		if cfg.UploadEvery <= 0 {
			cfg.UploadEvery = 7 * 24 * time.Hour
		}
	}
	if *servers > 1 && !*useTCP {
		return fmt.Errorf("-servers needs -tcp (the fleet shards the TCP collection tier)")
	}
	cfg.Servers = *servers
	if *fleetKill > 0 {
		if !*useTCP || *servers <= 1 {
			return fmt.Errorf("-fleet-kill needs -tcp and -servers > 1 (kills are drawn over the fleet)")
		}
		if *serverKill > 0 {
			return fmt.Errorf("-fleet-kill replaces -server-kill: the fleet supervisor owns the kill schedule")
		}
		cfg.Adversity.ServerCrash = collect.CrashFaults{
			KillEveryMin: (*fleetKill + 1) / 2,
			KillEveryMax: *fleetKill + (*fleetKill+1)/2,
		}
		if cfg.UploadEvery <= 0 {
			cfg.UploadEvery = 7 * 24 * time.Hour
		}
	}
	if *replicate != 0 || *quorum != 0 {
		if !*useTCP || *servers <= 1 {
			return fmt.Errorf("-replicate/-quorum need -tcp and -servers > 1 (replication spans fleet shards)")
		}
		r := *replicate
		if r == 0 {
			r = 3
		}
		w := *quorum
		if w == 0 {
			if w = 2; w > r {
				w = r
			}
		}
		if r < 1 || w < 1 || w > r || r > *servers {
			return fmt.Errorf("-replicate/-quorum need 1 <= W (%d) <= R (%d) <= servers (%d)", w, r, *servers)
		}
		cfg.Replicate = r
		cfg.Quorum = w
	}

	fmt.Println("=== Section 4: high-level failure characterisation (web forums) ===")
	fmt.Println()
	forumRep := symfail.RunForumStudy(*seed)
	fmt.Println(report.Table1(forumRep))
	fmt.Println(report.Section41(forumRep))

	if *streamMode {
		cfg.Progress = func(done, total int, p stream.Peek) {
			fmt.Printf("collected %d/%d devices: %d records, %d panics, %d HL events, %d reboots\n",
				done, total, p.Records, p.Panics, p.HLEvents, p.Reboots)
		}
		if *useTCP {
			cfg.Monitor = stream.NewMonitor()
		}
	}
	if *serveAddr != "" && *useTCP && *servers <= 1 {
		// On the single-collector path the live study rides the server's
		// record tap, so the queries served afterwards saw the study live
		// (crash replays included — LiveStudy deduplicates them).
		cfg.LiveStudy = stream.NewLiveStudy(cfg.Analysis)
	}

	fmt.Printf("=== Sections 5-6: field study (%d phones, %d months, seed %d) ===\n\n",
		cfg.Phones, int(cfg.Duration/phone.StudyMonth), *seed)
	start := time.Now()
	var study *symfail.FieldStudy
	var sup *collect.Supervisor
	var fl *fleet.Supervisor
	var err error
	switch {
	case *useTCP && *servers > 1:
		study, fl, err = symfail.RunFieldStudyWithFleet(cfg)
		if err == nil {
			defer fl.Close()
		}
	case *useTCP:
		study, sup, err = symfail.RunFieldStudyWithCollector(cfg)
		if err == nil {
			defer sup.Close()
		}
	default:
		study, err = symfail.RunFieldStudy(cfg)
	}
	if err != nil {
		return err
	}
	fmt.Printf("simulated %.0f phone-hours in %v wall-clock\n\n",
		study.Fleet.ObservedHours(), time.Since(start).Round(time.Millisecond))
	if sup != nil && *serverKill > 0 {
		fmt.Printf("collection server: %d injected crashes, %d restarts, %d uploads served, %d WAL compactions — zero acknowledged records lost\n\n",
			sup.Crashes(), sup.Restarts(), sup.Uploads(), sup.Compactions())
	}
	if fl != nil {
		fmt.Printf("collection fleet: %d shards live (epoch %d), %d uploads served\n",
			fl.Servers(), fl.Epoch(), fl.Uploads())
		if *fleetKill > 0 || cfg.Adversity.ServerCrash.Enabled() {
			fmt.Printf("  %d shard crashes, %d restarts, %d router kills, %d handoffs (%d aborted, %d unplaced), %d devices migrated — zero acknowledged records lost\n",
				fl.Crashes(), fl.Restarts(), fl.RouterKills(), fl.Handoffs(), fl.HandoffAborts(), fl.HandoffFailures(), fl.Migrated())
		}
		if fl.ReplicationFactor() > 1 {
			fmt.Printf("  write quorum R=%d W=%d: %d suspicions (%d false), %d confirmed dead, %d repairs, %d below-quorum refusals over %d windows\n",
				fl.ReplicationFactor(), fl.WriteQuorum(), fl.Suspicions(), fl.FalseSuspicions(),
				fl.ConfirmedDead(), fl.Repairs(), fl.DegradedRequests(), fl.DegradedWindows())
		}
		fmt.Println()
	}
	if cfg.Monitor != nil {
		ms := cfg.Monitor.Snapshot().(*stream.MonitorSnapshot)
		fmt.Printf("live server tap: %d devices, %d records acknowledged mid-study (%d panics)\n\n",
			ms.Devices, ms.Records, ms.ByKind[core.KindPanic])
	}

	s := study.Study
	fmt.Println(report.Figure2(s))
	fmt.Println(report.MTBF(s))
	fmt.Println(report.Table2(s))
	fmt.Println(report.Figure3(s))
	fmt.Println(report.Figure4Sweep(s, []time.Duration{
		30 * time.Second, time.Minute, 2 * time.Minute, 5 * time.Minute,
		15 * time.Minute, time.Hour, 4 * time.Hour,
	}))
	fmt.Println(report.Figure5(s))
	fmt.Println(report.Table3(s))
	fmt.Println(report.Figure6(s))
	fmt.Println(report.Table4(s))

	if *export != "" {
		if err := collect.ExportDir(study.Dataset, *export); err != nil {
			return err
		}
		fmt.Printf("dataset exported to %s (analyze with: go run ./cmd/analyze -data %s)\n\n", *export, *export)
	}
	if *extras {
		val := symfail.ValidateDetection(study)
		fmt.Println("Validation against the simulator oracle (unavailable to the original study):")
		fmt.Printf("  freeze recall %.3f, self-shutdown identification ratio %.3f, panic capture %.3f\n",
			val.FreezeRecall, val.SelfShutdownRatio, val.PanicCaptureRate)
		fmt.Printf("  (%d never-serviced phones compared)\n\n", val.PhonesCompared)
		fmt.Println(report.Extras(s))
		fmt.Println(report.Predictor(s))
		fmt.Println(report.ExpFit(s))
		fmt.Println(report.SeasonalityChart(s))
		fmt.Println(report.VersionTable(s, study.Dataset.AllRecords()))
		truthOutput := 0
		for _, d := range study.Fleet.Devices {
			truthOutput += d.Oracle().Count(phone.TruthOutputFailure)
		}
		fmt.Println(report.UserReportSummary(study.Dataset.AllRecords(), truthOutput))
	}
	if *serveAddr != "" {
		return serveQueries(*serveAddr, cfg.LiveStudy, cfg.Analysis, study)
	}
	return nil
}

// serveQueries keeps a collection server answering the QUERY verb from the
// live study until interrupted. When the study ran without a live tap (no
// -tcp, or a sharded fleet), the live study is rebuilt from the collected
// dataset — equivalent to having watched the study live, since the tier's
// dedup makes replayed deliveries and re-feeds converge.
func serveQueries(addr string, live *stream.LiveStudy, opts stream.Config, study *symfail.FieldStudy) error {
	if live == nil {
		live = stream.NewLiveStudy(opts)
		all := study.Dataset.AllRecords()
		ids := make([]string, 0, len(all))
		for id := range all {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			recs := append([]core.Record(nil), all[id]...)
			sort.SliceStable(recs, func(i, j int) bool { return recs[i].Time < recs[j].Time })
			for _, r := range recs {
				live.Observe(id, r)
			}
		}
	}
	srv, err := collect.NewServerWith(addr, collect.NewDataset(), collect.ServerConfig{Query: live.Query})
	if err != nil {
		return err
	}
	defer srv.Close()
	fmt.Printf("serving live queries on %s (%d devices, %d records; ^C to stop)\n",
		srv.Addr(), len(live.Tables().Devices), live.Records())
	fmt.Printf("  try: go run ./cmd/symquery -addr %s mtbf\n", srv.Addr())
	fmt.Printf("       go run ./cmd/symquery -addr %s panics 3\n", srv.Addr())
	fmt.Printf("       go run ./cmd/symquery -addr %s freezerate 30\n", srv.Addr())
	ch := make(chan os.Signal, 1)
	signal.Notify(ch, os.Interrupt)
	<-ch
	return nil
}
