// Command analyze re-runs the paper's analysis pipeline over a previously
// exported dataset (cmd/symfail -export <dir>), without re-simulating:
// collect once, analyse many times — with different thresholds, windows,
// or output formats.
//
// Usage:
//
//	analyze -data <dir> [-threshold 360s] [-window 5m] [-json] [-stream]
//
// With -stream the dataset is analysed in a single incremental pass through
// the streaming accumulators (internal/analysis/stream): one device's log is
// in memory at a time, and the printed tables are byte-identical to the
// batch path's.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"symfail/internal/analysis"
	"symfail/internal/analysis/stream"
	"symfail/internal/collect"
	"symfail/internal/report"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "analyze:", err)
		os.Exit(1)
	}
}

// summary is the machine-readable output of -json.
type summary struct {
	Devices        int                `json:"devices"`
	ObservedHours  float64            `json:"observedHours"`
	Freezes        int                `json:"freezes"`
	SelfShutdowns  int                `json:"selfShutdowns"`
	MTBFrHours     float64            `json:"mtbfrHours"`
	MTBSHours      float64            `json:"mtbsHours"`
	Panics         int                `json:"panics"`
	RelatedPercent float64            `json:"relatedPercent"`
	PanicsInBursts float64            `json:"panicsInBurstsPercent"`
	PanicShares    map[string]float64 `json:"panicShares"`
}

func run(args []string) error {
	fs := flag.NewFlagSet("analyze", flag.ContinueOnError)
	var (
		dataDir    = fs.String("data", "", "directory with an exported dataset (required)")
		threshold  = fs.Duration("threshold", 360*time.Second, "self-shutdown threshold")
		window     = fs.Duration("window", 5*time.Minute, "panic/HL coalescence window")
		asJSON     = fs.Bool("json", false, "emit a machine-readable summary instead of the tables")
		streamMode = fs.Bool("stream", false, "single-pass streaming analysis: one device's log in memory at a time")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *dataDir == "" {
		return fmt.Errorf("-data is required")
	}
	opts := analysis.Options{
		SelfShutdownThreshold: *threshold,
		CoalescenceWindow:     *window,
	}
	if *streamMode {
		return runStream(*dataDir, opts, *asJSON)
	}
	ds, err := collect.ImportDir(*dataDir)
	if err != nil {
		return err
	}
	study := analysis.New(ds.AllRecords(), opts)

	if *asJSON {
		rep := study.MTBF()
		sum := summary{
			Devices:        len(study.Devices()),
			ObservedHours:  rep.ObservedHours,
			Freezes:        rep.Freezes,
			SelfShutdowns:  rep.SelfShutdowns,
			MTBFrHours:     rep.MTBFrHours,
			MTBSHours:      rep.MTBSHours,
			Panics:         len(study.Panics()),
			RelatedPercent: study.Coalesce().RelatedPercent,
			PanicsInBursts: 100 * study.Bursts().PanicsInBursts,
			PanicShares:    make(map[string]float64),
		}
		for _, row := range study.PanicTable() {
			sum.PanicShares[row.Key] = row.Percent
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(sum)
	}

	fmt.Printf("dataset: %d devices from %s\n\n", len(study.Devices()), *dataDir)
	fmt.Println(report.Figure2(study))
	fmt.Println(report.MTBF(study))
	fmt.Println(report.Table2(study))
	fmt.Println(report.Figure3(study))
	fmt.Println(report.Figure5(study))
	fmt.Println(report.Table3(study))
	fmt.Println(report.Figure6(study))
	fmt.Println(report.Table4(study))
	fmt.Println(report.Extras(study))
	return nil
}

// runStream analyses the exported dataset in one incremental pass: StreamDir
// reads one device's log at a time into a sorting Feeder feeding the
// composite Tables accumulator, so peak memory is O(one device + bins)
// instead of O(dataset). The paper tables print byte-identically to the
// batch path; the beyond-the-paper extras need the full event set and are
// batch-only.
func runStream(dir string, opts analysis.Options, asJSON bool) error {
	acc := stream.NewTables(opts)
	f := &stream.Feeder{AddDevice: acc.AddDevice, Observe: acc.Observe}
	if err := collect.StreamDir(dir, f.Begin, f.Record); err != nil {
		return err
	}
	f.Flush()
	sn := acc.Tables()

	if asJSON {
		sum := summary{
			Devices:        len(sn.Devices),
			ObservedHours:  sn.MTBF.ObservedHours,
			Freezes:        sn.MTBF.Freezes,
			SelfShutdowns:  sn.MTBF.SelfShutdowns,
			MTBFrHours:     sn.MTBF.MTBFrHours,
			MTBSHours:      sn.MTBF.MTBSHours,
			Panics:         sn.Coalescence.TotalPanics,
			RelatedPercent: sn.Coalescence.RelatedPercent,
			PanicsInBursts: 100 * sn.Bursts.PanicsInBursts,
			PanicShares:    make(map[string]float64),
		}
		for _, row := range sn.PanicTable {
			sum.PanicShares[row.Key] = row.Percent
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(sum)
	}

	fmt.Printf("dataset: %d devices from %s (streamed)\n\n", len(sn.Devices), dir)
	fmt.Println(report.Figure2FromSnapshot(sn))
	fmt.Println(report.MTBFFromSnapshot(sn))
	fmt.Println(report.Table2FromSnapshot(sn))
	fmt.Println(report.Figure3FromSnapshot(sn))
	fmt.Println(report.Figure5FromSnapshot(sn))
	fmt.Println(report.Table3FromSnapshot(sn))
	fmt.Println(report.Figure6FromSnapshot(sn))
	fmt.Println(report.Table4FromSnapshot(sn))
	return nil
}
