package symbos

import "fmt"

// Handle is a raw handle number into a process's object index.
type Handle int

// KObject is a kernel-side object referenced through handles: a server
// session, a mutex, a timer channel, and so on. CObject-style reference
// counting is included because its misuse is one of the heap-management
// panics of Table 2 (E32USER-CBase 33).
type KObject struct {
	name string
	kind string
	refs int
	open bool
}

// Name returns the object name.
func (o *KObject) Name() string { return o.name }

// Kind returns the object kind (diagnostic only).
func (o *KObject) Kind() string { return o.kind }

// Refs returns the current reference count.
func (o *KObject) Refs() int { return o.refs }

// Open reports whether the object is still live in the index.
func (o *KObject) Open() bool { return o.open }

// OpenObject creates a kernel object in the process's object index with a
// reference count of one and returns its handle.
func (p *Process) OpenObject(kind, name string) Handle {
	p.nextH++
	h := p.nextH
	p.objs[h] = &KObject{name: name, kind: kind, refs: 1, open: true}
	return h
}

// FindObject resolves a raw handle through the Kernel Executive. An
// unknown handle raises KERN-EXEC 0: "the Kernel Executive cannot find an
// object in the object index ... using the specified object index number".
func (p *Process) FindObject(h Handle) *KObject {
	o, ok := p.objs[h]
	if !ok || !o.open {
		p.kernel.Raise(CatKernExec, TypeBadHandle,
			fmt.Sprintf("object index has no object for raw handle %d", h))
	}
	return o
}

// DuplicateHandle adds a reference to the object behind h and returns a new
// handle to it.
func (p *Process) DuplicateHandle(h Handle) Handle {
	o := p.FindObject(h)
	o.refs++
	p.nextH++
	p.objs[p.nextH] = o
	return p.nextH
}

// CloseHandle is RHandleBase::Close routed through the Kernel Server. A
// corrupt handle — one whose object cannot be found — raises KERN-SVR 0.
func (p *Process) CloseHandle(h Handle) {
	o, ok := p.objs[h]
	if !ok {
		p.kernel.Raise(CatKernSvr, TypeSvrBadHandle,
			fmt.Sprintf("Kernel Server cannot find object for handle %d (corrupt handle)", h))
	}
	delete(p.objs, h)
	o.refs--
	if o.refs <= 0 {
		o.open = false
	}
}

// CorruptHandle returns a handle value guaranteed not to resolve — the
// fault model uses it to plant the dangling-handle defects behind
// KERN-EXEC 0 and KERN-SVR 0.
func (p *Process) CorruptHandle() Handle {
	p.nextH++
	return p.nextH + 7919 // never entered into the index
}

// HandleCount returns the number of live handles in the process.
func (p *Process) HandleCount() int { return len(p.objs) }

// CObject is a reference-counted container object (class CObject). Its
// destructor panics with E32USER-CBase 33 when the reference count is not
// zero — "raised by the destructor of a CObject ... if an attempt is made
// to delete the CObject when the reference count is not zero".
type CObject struct {
	kernel *Kernel
	name   string
	refs   int
	dead   bool
}

// NewCObject creates a CObject with a single reference.
func NewCObject(k *Kernel, name string) *CObject {
	return &CObject{kernel: k, name: name, refs: 1}
}

// Name returns the object's name.
func (o *CObject) Name() string { return o.name }

// Refs returns the current reference count.
func (o *CObject) Refs() int { return o.refs }

// Dead reports whether the object has been destroyed.
func (o *CObject) Dead() bool { return o.dead }

// AddRef takes an additional reference (CObject::Open).
func (o *CObject) AddRef() { o.refs++ }

// Release drops a reference (CObject::Close), destroying the object when
// the count reaches zero.
func (o *CObject) Release() {
	o.refs--
	if o.refs <= 0 {
		o.dead = true
	}
}

// Delete runs the destructor directly. Deleting with references remaining
// raises E32USER-CBase 33.
func (o *CObject) Delete() {
	o.refs-- // the destructor consumes the caller's reference
	if o.refs > 0 {
		o.kernel.Raise(CatE32UserCBase, TypeObjectRefsRemain,
			fmt.Sprintf("CObject %q deleted with reference count %d", o.name, o.refs+1))
	}
	o.dead = true
}
