package lint

import (
	"go/ast"
	"go/types"
)

// RNGConfig names the deterministic generator type guarded by the rngshare
// analyzer.
type RNGConfig struct {
	RandPkg  string // import path of the package defining the RNG
	RandType string // named type, shared as a pointer
}

// DefaultRNGConfig guards *sim.Rand, the module's single randomness source.
var DefaultRNGConfig = RNGConfig{RandPkg: "symfail/internal/sim", RandType: "Rand"}

// NewRNGShare builds the rngshare analyzer. A *sim.Rand is a mutable stream:
// two goroutines drawing from the same instance race on its state and, even
// under a mutex, interleave nondeterministically. The only safe hand-off is
// a child stream derived via Split() in the spawning goroutine. The analyzer
// flags a *sim.Rand that crosses a `go` statement boundary — captured by the
// goroutine's closure, passed as a call argument, or embedded in a struct
// literal argument — unless the value is a fresh Split() result.
func NewRNGShare(cfg RNGConfig) *Analyzer {
	if cfg.RandPkg == "" {
		cfg = DefaultRNGConfig
	}
	a := &Analyzer{
		Name: "rngshare",
		Doc:  "flag a deterministic RNG shared with a goroutine without Split()",
	}
	a.Run = func(pass *Pass) {
		for _, f := range pass.Pkg.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				checkGoStmt(pass, f, cfg, gs)
				return true
			})
		}
	}
	return a
}

func checkGoStmt(pass *Pass, f *ast.File, cfg RNGConfig, gs *ast.GoStmt) {
	info := pass.Pkg.Info
	// RNG-typed expressions anywhere in the call arguments (including
	// nested composite-literal fields) escape into the new goroutine.
	for _, arg := range gs.Call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			// A bare-ident key in a composite literal is a field name, not
			// a value crossing the boundary.
			if kv, ok := n.(*ast.KeyValueExpr); ok {
				if _, isIdent := kv.Key.(*ast.Ident); isIdent {
					ast.Inspect(kv.Value, func(m ast.Node) bool { return inspectRandExpr(pass, f, cfg, m) })
					return false
				}
			}
			return inspectRandExpr(pass, f, cfg, n)
		})
	}
	// Closure goroutines additionally capture outer RNG variables.
	lit, ok := gs.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[id].(*types.Var)
		if !ok || obj.IsField() || !isRandType(obj.Type(), cfg) {
			return true // fields are judged where the struct crosses the boundary
		}
		if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
			return true // declared inside the goroutine: private stream
		}
		if splitSafe(pass, f, id, cfg) {
			return true
		}
		pass.Reportf(id.Pos(), "%s captured by a goroutine shares one RNG stream across threads; derive a child with Split() before the go statement", id.Name)
		return true
	})
}

// inspectRandExpr reports an RNG-typed expression escaping through a go
// statement's arguments; it returns false to stop descending once judged.
func inspectRandExpr(pass *Pass, f *ast.File, cfg RNGConfig, n ast.Node) bool {
	e, ok := n.(ast.Expr)
	if !ok || !isRandType(pass.Pkg.Info.TypeOf(e), cfg) {
		return true
	}
	if splitSafe(pass, f, e, cfg) {
		return false
	}
	pass.Reportf(e.Pos(), "%s passed to a goroutine shares one RNG stream across threads; derive a child with Split() before the go statement", exprName(e))
	return false
}

// isRandType reports whether t is *Rand (or Rand) for the configured type.
func isRandType(t types.Type, cfg RNGConfig) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == cfg.RandType && obj.Pkg() != nil && obj.Pkg().Path() == cfg.RandPkg
}

// splitSafe reports whether e is a fresh child stream: either a direct
// x.Split() call, or a variable whose (single) definition is one.
func splitSafe(pass *Pass, f *ast.File, e ast.Expr, cfg RNGConfig) bool {
	if isSplitCall(e) {
		return true
	}
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	obj := pass.Pkg.Info.ObjectOf(id)
	if obj == nil {
		return false
	}
	defined := false
	ast.Inspect(f, func(n ast.Node) bool {
		if defined {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				lid, ok := lhs.(*ast.Ident)
				if !ok || pass.Pkg.Info.ObjectOf(lid) != obj {
					continue
				}
				if i < len(n.Rhs) && isSplitCall(n.Rhs[i]) {
					defined = true
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				if pass.Pkg.Info.ObjectOf(name) != obj {
					continue
				}
				if i < len(n.Values) && isSplitCall(n.Values[i]) {
					defined = true
				}
			}
		}
		return !defined
	})
	return defined
}

func isSplitCall(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	return ok && sel.Sel.Name == "Split"
}
