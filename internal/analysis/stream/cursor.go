package stream

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"symfail/internal/core"
	"symfail/internal/sim"
)

// evsink receives the finalized events a deviceCursor emits. Per device,
// panics arrive in time order, HL events arrive in time order, and reboot
// durations arrive in record order — exactly the orders the batch ingest
// produced — so reducers fed from a cursor match reducers fed from the
// batch event slices.
type evsink interface {
	// panicDone delivers a panic with Burst, BurstLen and Related final.
	// relatedAll reports whether any HL event — user shutdowns included —
	// fell inside the coalescence window (the section 6 robustness check).
	panicDone(deviceID string, p *PanicEvent, relatedAll bool)
	// hlDone delivers an HL event after every panic that can coalesce
	// with it has been finalized, so p.refd is final.
	hlDone(deviceID string, hl *HLEvent)
	rebootDone(deviceID string, offSeconds float64)
	explainedDone(deviceID string)
	// uptimeDone delivers the device's total uptime estimate, exactly
	// once, when the cursor finishes.
	uptimeDone(deviceID string, hours float64)
}

// nopSink is embedded by reducers that only care about a subset of events.
type nopSink struct{}

func (nopSink) panicDone(string, *PanicEvent, bool) {}
func (nopSink) hlDone(string, *HLEvent)             {}
func (nopSink) rebootDone(string, float64)          {}
func (nopSink) explainedDone(string)                {}
func (nopSink) uptimeDone(string, float64)          {}

// pendingPanic is a panic whose burst or coalescence is not yet final.
type pendingPanic struct {
	ev        *PanicEvent
	burstOpen bool
	// best / bestGap track the nearest non-user HL event seen so far
	// (the standard coalescence); bestAll additionally admits user
	// shutdowns. Ties keep the earlier event, like the batch scan.
	best       *HLEvent
	bestGap    time.Duration
	bestAll    *HLEvent
	bestAllGap time.Duration
}

func (p *pendingPanic) consider(hl *HLEvent, window time.Duration) {
	gap := hl.Time.Sub(p.ev.Time)
	if gap < 0 {
		gap = -gap
	}
	if gap > window {
		return
	}
	if p.bestAll == nil || gap < p.bestAllGap {
		p.bestAll, p.bestAllGap = hl, gap
	}
	if hl.Kind == HLUserShutdown {
		return
	}
	if p.best == nil || gap < p.bestGap {
		p.best, p.bestGap = hl, gap
	}
}

// deviceCursor is the single-pass replacement for the batch
// ingest/markBursts/coalesce trio: it derives HL events, panics, reboot
// durations and uptime from one device's record stream, holding only the
// events whose burst or coalescence window is still open. An event is
// emitted once no later record can change it:
//
//   - a panic, once its burst is closed (a later panic arrived more than
//     BurstWindow after it, fixing BurstLen) and no future HL event can
//     fall inside its coalescence window — future down events happen no
//     earlier than max(latest HL time, current session start);
//   - an HL event, once the latest record time is more than the window
//     past it (later records, hence later panics, are at least that far
//     away) and no pending panic holds it as current best (so refd is
//     final when the event leaves the cursor).
type deviceCursor struct {
	id   string
	cfg  Config
	sink evsink

	sessionStart sim.Time
	lastSeen     sim.Time
	uptime       float64

	hls    []*HLEvent // open-window HL events, time-ordered
	lastHL sim.Time
	hasHL  bool

	panics    []*pendingPanic // not-yet-finalized panics, time-ordered
	open      []*pendingPanic // members of the still-open burst
	burst     int
	lastPanic sim.Time
	hasPanic  bool

	finished bool
}

func newCursor(id string, cfg Config, sink evsink) *deviceCursor {
	return &deviceCursor{id: id, cfg: cfg, sink: sink, sessionStart: sim.Never}
}

func (c *deviceCursor) observe(r core.Record) {
	if r.Time > int64(c.lastSeen) {
		c.lastSeen = sim.Time(r.Time)
	}
	switch r.Kind {
	case core.KindPanic:
		ev := &PanicEvent{
			Device:   c.id,
			Time:     r.When(),
			Category: r.Category,
			Type:     r.PType,
			Apps:     append([]string(nil), r.Apps...),
			Activity: r.Activity,
		}
		if !c.hasPanic || ev.Time.Sub(c.lastPanic) > c.cfg.BurstWindow {
			c.closeBurst()
			c.burst++
		}
		c.lastPanic, c.hasPanic = ev.Time, true
		ev.Burst = c.burst
		pp := &pendingPanic{ev: ev, burstOpen: true}
		for _, hl := range c.hls {
			pp.consider(hl, c.cfg.CoalescenceWindow)
		}
		c.open = append(c.open, pp)
		c.panics = append(c.panics, pp)
	case core.KindBoot:
		// Close the previous session for the uptime estimate.
		if c.sessionStart != sim.Never && r.PrevTime > int64(c.sessionStart) {
			c.uptime += sim.Time(r.PrevTime).Sub(c.sessionStart).Hours()
		}
		c.sessionStart = r.When()
		switch r.Detected {
		case core.DetectedFreeze:
			c.addHL(&HLEvent{Device: c.id, Kind: HLFreeze, Time: sim.Time(r.PrevTime), OffSeconds: r.OffSeconds})
		case core.DetectedShutdown:
			c.sink.rebootDone(c.id, r.OffSeconds)
			kind := HLUserShutdown
			if r.OffSeconds <= c.cfg.SelfShutdownThreshold.Seconds() {
				kind = HLSelfShutdown
			}
			c.addHL(&HLEvent{Device: c.id, Kind: kind, Time: sim.Time(r.PrevTime), OffSeconds: r.OffSeconds})
		case core.DetectedLowBattery, core.DetectedLoggerOff:
			c.sink.explainedDone(c.id)
		}
	}
	c.advance(false)
}

// addHL inserts the event keeping the open window time-ordered (stable:
// equal times keep arrival order, like the batch stable sort) and offers it
// to every pending panic.
func (c *deviceCursor) addHL(hl *HLEvent) {
	i := len(c.hls)
	for i > 0 && c.hls[i-1].Time > hl.Time {
		i--
	}
	c.hls = append(c.hls, nil)
	copy(c.hls[i+1:], c.hls[i:])
	c.hls[i] = hl
	if !c.hasHL || hl.Time > c.lastHL {
		c.lastHL, c.hasHL = hl.Time, true
	}
	for _, pp := range c.panics {
		pp.consider(hl, c.cfg.CoalescenceWindow)
	}
}

// closeBurst fixes BurstLen for the open cascade.
func (c *deviceCursor) closeBurst() {
	n := len(c.open)
	for _, pp := range c.open {
		pp.ev.BurstLen = n
		pp.burstOpen = false
	}
	c.open = c.open[:0]
}

// advance emits every event that can no longer change. With final set, the
// record stream has ended: everything pending is flushed, panics first so
// refd is final before the HL events leave.
func (c *deviceCursor) advance(final bool) {
	window := c.cfg.CoalescenceWindow
	for len(c.panics) > 0 {
		pp := c.panics[0]
		if !final {
			if pp.burstOpen {
				break
			}
			// The next down event can be no earlier than this floor;
			// past floor-window the candidate set is complete.
			floor := c.sessionStart
			if c.hasHL && c.lastHL > floor {
				floor = c.lastHL
			}
			if floor == sim.Never || floor.Sub(pp.ev.Time) <= window {
				break
			}
		}
		pp.ev.Related = pp.best
		if pp.best != nil {
			pp.best.refd = true
		}
		c.sink.panicDone(c.id, pp.ev, pp.bestAll != nil)
		c.panics[0] = nil
		c.panics = c.panics[1:]
	}
	for len(c.hls) > 0 {
		hl := c.hls[0]
		if !final && c.lastSeen.Sub(hl.Time) <= window {
			break
		}
		if c.pendingRefs(hl) {
			break
		}
		c.sink.hlDone(c.id, hl)
		c.hls[0] = nil
		c.hls = c.hls[1:]
	}
}

// clone deep-copies the cursor's pending state for an epoch snapshot,
// rebuilding the event graph: pending HL events and panic events are
// copied, and every pendingPanic's best pointer is remapped to the copy
// (best always lives in hls — hlDone refuses to emit an event a pending
// panic still holds). bestAll may point at an HL event that already left
// the cursor; only its nil-ness is ever read, so the clone keeps the
// original pointer rather than resurrecting the emitted event.
func (c *deviceCursor) clone(sink evsink) *deviceCursor {
	d := *c
	d.sink = sink
	hlMap := make(map[*HLEvent]*HLEvent, len(c.hls))
	d.hls = make([]*HLEvent, len(c.hls))
	for i, hl := range c.hls {
		cp := *hl
		d.hls[i] = &cp
		hlMap[hl] = &cp
	}
	ppMap := make(map[*pendingPanic]*pendingPanic, len(c.panics))
	d.panics = make([]*pendingPanic, len(c.panics))
	for i, pp := range c.panics {
		cp := *pp
		ev := *pp.ev
		cp.ev = &ev
		if pp.best != nil {
			cp.best = hlMap[pp.best]
		}
		if pp.bestAll != nil {
			if m := hlMap[pp.bestAll]; m != nil {
				cp.bestAll = m
			}
		}
		d.panics[i] = &cp
		ppMap[pp] = &cp
	}
	d.open = make([]*pendingPanic, len(c.open))
	for i, pp := range c.open {
		d.open[i] = ppMap[pp]
	}
	return &d
}

func (c *deviceCursor) pendingRefs(hl *HLEvent) bool {
	for _, pp := range c.panics {
		if pp.best == hl {
			return true
		}
	}
	return false
}

// finish flushes all pending state and reports the device's uptime. The
// final session runs until the last record seen. Idempotent.
func (c *deviceCursor) finish() {
	if c.finished {
		return
	}
	c.finished = true
	c.closeBurst()
	c.advance(true)
	if c.sessionStart != sim.Never && c.lastSeen > c.sessionStart {
		c.uptime += c.lastSeen.Sub(c.sessionStart).Hours()
	}
	c.sink.uptimeDone(c.id, c.uptime)
}

// cursorSet owns one deviceCursor per observed device.
type cursorSet struct {
	cfg      Config
	sink     evsink
	cursors  map[string]*deviceCursor
	records  int
	finished bool
}

func newCursorSet(cfg Config, sink evsink) *cursorSet {
	return &cursorSet{cfg: cfg, sink: sink, cursors: make(map[string]*deviceCursor)}
}

// add registers a device (so devices whose logs hold zero records still
// appear in snapshots) and returns its cursor.
func (cs *cursorSet) add(id string) *deviceCursor {
	c := cs.cursors[id]
	if c == nil {
		c = newCursor(id, cs.cfg, cs.sink)
		cs.cursors[id] = c
	}
	return c
}

func (cs *cursorSet) observe(id string, r core.Record) {
	cs.add(id).observe(r)
	cs.records++
}

// merge adopts the other set's cursors, which keep their pending state but
// emit into this set's sink from now on. Device sets must be disjoint.
func (cs *cursorSet) merge(other *cursorSet) error {
	var overlap []string
	for id := range other.cursors {
		if _, ok := cs.cursors[id]; ok {
			overlap = append(overlap, id)
		}
	}
	if len(overlap) > 0 {
		sort.Strings(overlap)
		return fmt.Errorf("%w: %s", ErrDeviceOverlap, strings.Join(overlap, ", "))
	}
	for id, c := range other.cursors {
		c.sink = cs.sink
		cs.cursors[id] = c
	}
	cs.records += other.records
	return nil
}

// clone deep-copies the set for an epoch snapshot; the clones emit into
// the given sink (the snapshot's own reducers).
func (cs *cursorSet) clone(sink evsink) *cursorSet {
	out := newCursorSet(cs.cfg, sink)
	out.records = cs.records
	out.finished = cs.finished
	for id, c := range cs.cursors {
		out.cursors[id] = c.clone(sink)
	}
	return out
}

// finish flushes every cursor, in sorted device order. Idempotent.
func (cs *cursorSet) finish() {
	if cs.finished {
		return
	}
	cs.finished = true
	for _, id := range cs.devices() {
		cs.cursors[id].finish()
	}
}

func (cs *cursorSet) devices() []string {
	if len(cs.cursors) == 0 {
		return nil
	}
	ids := make([]string, 0, len(cs.cursors))
	for id := range cs.cursors {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
